// Command figures regenerates every table and figure of the paper in one
// run and writes the artefacts (CSV + rendered text) into a results
// directory. This is the one-shot "reproduce the evaluation" entry point;
// see EXPERIMENTS.md for the expected shapes.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"periscope"
)

func main() {
	outDir := flag.String("out", "results", "output directory")
	scale := flag.Float64("scale", 1.0, "session/corpus scale factor (0.1 = quick pass)")
	seed := flag.Int64("seed", 1, "global seed")
	flag.Parse()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	var index strings.Builder
	start := time.Now()

	save := func(name, content string) {
		path := filepath.Join(*outDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(&index, "  %s\n", path)
	}

	// Table 1.
	save("table1.txt", periscope.APITable().Render())

	// Figures 1-2: usage patterns.
	ucfg := periscope.DefaultUsageStudyConfig()
	ucfg.Concurrent = int(2000 * *scale)
	ucfg.Seed = *seed
	usage, err := periscope.RunUsageStudy(ucfg)
	if err != nil {
		log.Fatalf("usage study: %v", err)
	}
	for _, f := range []periscope.Figure{usage.Figure1a, usage.Figure1b, usage.Figure2a, usage.Figure2b} {
		save(fileName(f.ID)+".csv", f.CSV())
		save(fileName(f.ID)+".txt", f.ASCII())
	}

	// Figures 3-5: QoE.
	qcfg := periscope.DefaultQoEStudyConfig()
	qcfg.UnlimitedSessions = int(3382 * *scale)
	qcfg.SessionsPerLimit = int(60 * *scale)
	if qcfg.SessionsPerLimit < 5 {
		qcfg.SessionsPerLimit = 5
	}
	qcfg.PopTarget = int(2000 * *scale)
	qcfg.Seed = *seed
	qoe := periscope.RunQoEStudy(qcfg)
	for _, f := range []periscope.Figure{qoe.Figure3a, qoe.Figure3b, qoe.Figure4a, qoe.Figure4b, qoe.Figure5} {
		save(fileName(f.ID)+".csv", f.CSV())
		save(fileName(f.ID)+".txt", f.ASCII())
	}

	// Figure 6 + §5.2: media quality.
	mcfg := periscope.DefaultMediaStudyConfig()
	mcfg.Videos = int(150 * *scale)
	if mcfg.Videos < 10 {
		mcfg.Videos = 10
	}
	mcfg.Seed = *seed
	media := periscope.RunMediaStudy(mcfg)
	save(fileName(media.Figure6a.ID)+".csv", media.Figure6a.CSV())
	save(fileName(media.Figure6a.ID)+".txt", media.Figure6a.ASCII())
	save(fileName(media.Figure6b.ID)+".csv", media.Figure6b.CSV())
	save(fileName(media.Figure6b.ID)+".txt", media.Figure6b.ASCII())
	save("section52.txt", media.Stats.Render())

	// Figure 7: power.
	save("figure7.txt", periscope.RunPowerStudy().Render())

	fmt.Printf("regenerated all artefacts in %v:\n%s", time.Since(start).Round(time.Millisecond), index.String())
}

func fileName(id string) string {
	s := strings.ToLower(id)
	s = strings.NewReplacer(" ", "", "(", "", ")", "", ".", "").Replace(s)
	return s
}
