// Command benchjson turns `go test -bench` output into a JSON artefact
// and gates perf regressions against a checked-in baseline: every metric
// line (ns/op, B/op, allocs/op and custom ReportMetric units like
// origin-fills/op) is parsed per benchmark, and with -baseline the tool
// exits non-zero when ns/op or allocs/op regressed beyond -max-regress
// percent — a zero-alloc baseline (the breaker closed path) admits no
// allocations at all.
//
// Usage:
//
//	go test -run NONE -bench . ./... | benchjson -o BENCH.json
//	benchjson -o BENCH.json -baseline BENCH_PR6.json -max-regress 20 bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result: the metric map holds every unit the
// bench reported (ns/op, B/op, allocs/op, MB/s, custom ReportMetric
// units).
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the JSON artefact: benchmarks keyed by normalized name.
type Report struct {
	Benchmarks map[string]Benchmark `json:"benchmarks"`
}

// cpuSuffix is the -GOMAXPROCS tail Go appends to benchmark names; it is
// stripped so baselines survive runners with different core counts.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

func normalizeName(name string) string {
	return cpuSuffix.ReplaceAllString(name, "")
}

// parseBench extracts benchmark result lines from `go test -bench`
// output. Lines look like:
//
//	BenchmarkFoo/case=1-8   1234   95.2 ns/op   0 B/op   0 allocs/op
//
// i.e. name, iteration count, then (value, unit) pairs. Duplicate
// normalized names (repeat runs via -count, or -cpu sweeps) keep the
// fastest occurrence — benchmarking noise is one-sided, so the minimum
// ns/op is the stable estimate to baseline and to gate.
func parseBench(r io.Reader) (Report, error) {
	rep := Report{Benchmarks: map[string]Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Name:       normalizeName(fields[0]),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		if len(b.Metrics) == 0 {
			continue
		}
		if prev, ok := rep.Benchmarks[b.Name]; ok && prev.Metrics["ns/op"] <= b.Metrics["ns/op"] {
			continue
		}
		rep.Benchmarks[b.Name] = b
	}
	return rep, sc.Err()
}

// compare gates cur against base: ns/op and allocs/op may grow at most
// maxRegressPct percent; a zero-alloc baseline admits no allocations at
// all; a benchmark present in the baseline must still exist. Returns the
// list of violations (empty means the gate passes).
func compare(base, cur Report, maxRegressPct float64) []string {
	var violations []string
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: present in baseline but missing from this run", name))
			continue
		}
		for _, unit := range []string{"ns/op", "allocs/op"} {
			bv, inBase := b.Metrics[unit]
			cv, inCur := c.Metrics[unit]
			if !inBase || !inCur {
				continue
			}
			if bv == 0 {
				if cv > 0 {
					violations = append(violations, fmt.Sprintf("%s: %s went %v -> %v (zero baseline admits none)", name, unit, bv, cv))
				}
				continue
			}
			if growth := (cv - bv) / bv * 100; growth > maxRegressPct {
				violations = append(violations,
					fmt.Sprintf("%s: %s regressed %.1f%% (%v -> %v, limit %.0f%%)", name, unit, growth, bv, cv, maxRegressPct))
			}
		}
	}
	return violations
}

func readReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		// A gate pointed at a baseline that was never checked in fails
		// with an actionable message, not a bare ENOENT: the fix is to
		// regenerate the artefact and commit it, or repoint the gate.
		return Report{}, fmt.Errorf(
			"benchjson: baseline %s does not exist — generate it from a trusted run (benchjson -o %s bench.txt) and check it in, or point -baseline at a committed artefact",
			path, path)
	}
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func main() {
	out := flag.String("o", "", "write the parsed benchmarks as JSON to this file (default stdout)")
	baseline := flag.String("baseline", "", "compare against this baseline JSON and fail on regressions")
	maxRegress := flag.Float64("max-regress", 20, "maximum allowed ns/op and allocs/op growth, percent")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	rep, err := parseBench(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines in input")
		os.Exit(2)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		os.Stdout.Write(data)
	}

	if *baseline == "" {
		return
	}
	base, err := readReport(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if violations := compare(base, rep, *maxRegress); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "REGRESSION:", v)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) within %.0f%% of baseline %s\n",
		len(base.Benchmarks), *maxRegress, *baseline)
}
