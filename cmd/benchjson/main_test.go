package main

import (
	"os"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: periscope/internal/service
cpu: Test CPU
BenchmarkHubFanout/viewers=10-8         	     100	  12345 ns/op	  2048 B/op	      12 allocs/op
BenchmarkPOPFill/viewers=100-8          	      50	 987654 ns/op	         1.000 origin-fills/op	 104857600 MB/s
BenchmarkBreakerOverhead-8              	12000000	     95.2 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	periscope/internal/service	4.2s
`

func TestParseBench(t *testing.T) {
	rep, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	fan, ok := rep.Benchmarks["BenchmarkHubFanout/viewers=10"]
	if !ok {
		t.Fatal("cpu suffix not stripped from fan-out bench name")
	}
	if fan.Iterations != 100 || fan.Metrics["ns/op"] != 12345 || fan.Metrics["allocs/op"] != 12 {
		t.Errorf("fan-out bench parsed as %+v", fan)
	}
	pop := rep.Benchmarks["BenchmarkPOPFill/viewers=100"]
	if pop.Metrics["origin-fills/op"] != 1.0 {
		t.Errorf("custom metric lost: %+v", pop.Metrics)
	}
	brk := rep.Benchmarks["BenchmarkBreakerOverhead"]
	if brk.Metrics["allocs/op"] != 0 || brk.Metrics["ns/op"] != 95.2 {
		t.Errorf("breaker bench parsed as %+v", brk)
	}
}

func TestParseBenchKeepsFastestRepeat(t *testing.T) {
	input := "BenchmarkA-8 100 200 ns/op\nBenchmarkA-8 100 150 ns/op\nBenchmarkA-8 100 180 ns/op\n"
	rep, err := parseBench(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Benchmarks["BenchmarkA"].Metrics["ns/op"]; got != 150 {
		t.Errorf("kept ns/op = %v, want the fastest repeat 150", got)
	}
}

func report(entries map[string]map[string]float64) Report {
	rep := Report{Benchmarks: map[string]Benchmark{}}
	for name, metrics := range entries {
		rep.Benchmarks[name] = Benchmark{Name: name, Iterations: 1, Metrics: metrics}
	}
	return rep
}

func TestCompareGatesRegressions(t *testing.T) {
	base := report(map[string]map[string]float64{
		"BenchmarkA":        {"ns/op": 1000, "allocs/op": 10},
		"BenchmarkBreaker":  {"ns/op": 100, "allocs/op": 0},
		"BenchmarkVanished": {"ns/op": 50},
	})

	// Within the limit: +15% ns/op, equal allocs, zero stays zero.
	ok := report(map[string]map[string]float64{
		"BenchmarkA":        {"ns/op": 1150, "allocs/op": 10},
		"BenchmarkBreaker":  {"ns/op": 110, "allocs/op": 0},
		"BenchmarkVanished": {"ns/op": 60},
	})
	if v := compare(base, ok, 20); len(v) != 0 {
		t.Errorf("clean run flagged: %v", v)
	}

	// Three violations: ns/op blowup, allocs on a zero-alloc baseline,
	// and a benchmark that disappeared.
	bad := report(map[string]map[string]float64{
		"BenchmarkA":       {"ns/op": 1500, "allocs/op": 10},
		"BenchmarkBreaker": {"ns/op": 100, "allocs/op": 2},
	})
	v := compare(base, bad, 20)
	if len(v) != 3 {
		t.Fatalf("got %d violations, want 3: %v", len(v), v)
	}
	for _, want := range []string{"BenchmarkA", "BenchmarkBreaker", "BenchmarkVanished"} {
		found := false
		for _, msg := range v {
			if strings.HasPrefix(msg, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no violation reported for %s: %v", want, v)
		}
	}
}

func TestCompareExtraCurrentBenchesIgnored(t *testing.T) {
	base := report(map[string]map[string]float64{"BenchmarkA": {"ns/op": 100}})
	cur := report(map[string]map[string]float64{
		"BenchmarkA":   {"ns/op": 90},
		"BenchmarkNew": {"ns/op": 1e9},
	})
	if v := compare(base, cur, 20); len(v) != 0 {
		t.Errorf("new benchmark flagged against empty baseline: %v", v)
	}
}

func TestReadReportMissingBaseline(t *testing.T) {
	_, err := readReport(t.TempDir() + "/BENCH_NEVER_COMMITTED.json")
	if err == nil {
		t.Fatal("readReport of a missing baseline did not error")
	}
	// The message must be actionable (how to regenerate), not a bare
	// ENOENT: a misconfigured CI gate should say what to fix.
	for _, want := range []string{"does not exist", "check it in", "BENCH_NEVER_COMMITTED.json"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("missing-baseline error %q does not mention %q", err, want)
		}
	}
}

func TestReadReportMalformedBaseline(t *testing.T) {
	path := t.TempDir() + "/bad.json"
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := readReport(path)
	if err == nil || !strings.Contains(err.Error(), path) {
		t.Errorf("malformed baseline error %v does not name the file", err)
	}
}
