// Command crawl reproduces the §4 usage-pattern study (Figures 1 and 2)
// and writes the figure data as CSV files plus ASCII previews on stdout.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"periscope"
)

func main() {
	concurrent := flag.Int("broadcasts", 2000, "steady-state live broadcasts (paper scale ~40000)")
	deep := flag.Int("deep-crawls", 4, "number of deep crawls")
	hours := flag.Float64("campaign-hours", 4, "targeted-crawl span in virtual hours")
	outDir := flag.String("out", "results", "output directory for CSV files")
	seed := flag.Int64("seed", 1, "population seed")
	flag.Parse()

	cfg := periscope.UsageStudyConfig{
		Concurrent:  *concurrent,
		DeepCrawls:  *deep,
		CrawlGap:    6 * time.Hour,
		CampaignDur: time.Duration(*hours * float64(time.Hour)),
		Seed:        *seed,
	}
	start := time.Now()
	res, err := periscope.RunUsageStudy(cfg)
	if err != nil {
		log.Fatalf("usage study: %v", err)
	}
	fmt.Printf("usage study finished in %v wall time\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("tracked %d broadcasts (%d completed during campaign)\n\n",
		len(res.Targeted.Records), len(res.Targeted.CompletedRecords()))

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, f := range []periscope.Figure{res.Figure1a, res.Figure1b, res.Figure2a, res.Figure2b} {
		path := filepath.Join(*outDir, sanitize(f.ID)+".csv")
		if err := os.WriteFile(path, []byte(f.CSV()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println(f.ASCII())
	}
	fmt.Printf("CSV data written to %s/\n", *outDir)
}

func sanitize(id string) string {
	out := make([]rune, 0, len(id))
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
