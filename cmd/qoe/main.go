// Command qoe reproduces the §5.1 QoE study (Figures 3, 4 and 5): the
// automated 60-second Teleport sessions with and without tc-style
// bandwidth limits.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"periscope"
)

func main() {
	unlimited := flag.Int("unlimited", 3382, "sessions without a bandwidth limit (paper: 3382)")
	perLimit := flag.Int("per-limit", 60, "sessions per bandwidth limit (paper: 18-91)")
	popTarget := flag.Int("broadcasts", 2000, "steady-state live broadcasts")
	outDir := flag.String("out", "results", "output directory for CSV files")
	seed := flag.Int64("seed", 1, "campaign seed")
	flag.Parse()

	cfg := periscope.DefaultQoEStudyConfig()
	cfg.UnlimitedSessions = *unlimited
	cfg.SessionsPerLimit = *perLimit
	cfg.PopTarget = *popTarget
	cfg.Seed = *seed

	start := time.Now()
	res := periscope.RunQoEStudy(cfg)
	fmt.Printf("%d sessions simulated in %v\n", len(res.Records), time.Since(start).Round(time.Millisecond))

	rtmp, hls := 0, 0
	for _, r := range res.Records {
		if r.BandwidthMbps == 0 {
			if r.Protocol == "RTMP" {
				rtmp++
			} else {
				hls++
			}
		}
	}
	fmt.Printf("unlimited: %d RTMP / %d HLS (paper: 1796 / 1586)\n\n", rtmp, hls)

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, f := range []periscope.Figure{res.Figure3a, res.Figure3b, res.Figure4a, res.Figure4b, res.Figure5} {
		path := filepath.Join(*outDir, sanitize(f.ID)+".csv")
		if err := os.WriteFile(path, []byte(f.CSV()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println(f.ASCII())
	}
	fmt.Printf("CSV data written to %s/\n", *outDir)
}

func sanitize(id string) string {
	out := make([]rune, 0, len(id))
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
