// Command periscopelint runs the repo's custom go/analysis suite
// (internal/lint): refpair, lockio, atomicmix, ctxdetach, plus the
// cross-package fact-driven checks lockorder, gostop and snapmono.
//
// It speaks the unitchecker protocol, so the canonical invocation is as
// a vet tool:
//
//	go vet -vettool=$(go env GOPATH)/bin/periscopelint ./...
//
// For convenience it also accepts package patterns directly and
// re-execs itself through the go command:
//
//	go run ./cmd/periscopelint ./...
//
// Exit status is non-zero when any diagnostic is reported.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"periscope/internal/lint"
)

func main() {
	// The unitchecker protocol invokes the tool with -V=full, -flags, or
	// a *.cfg file. Anything else is a user typing package patterns:
	// re-exec via `go vet -vettool=<self>` so the go command does the
	// loading and caching.
	if patterns := packagePatterns(os.Args[1:]); patterns != nil {
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, "periscopelint:", err)
			os.Exit(2)
		}
		args := append([]string{"vet", "-vettool=" + exe}, patterns...)
		cmd := exec.Command("go", args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				os.Exit(ee.ExitCode())
			}
			fmt.Fprintln(os.Stderr, "periscopelint:", err)
			os.Exit(2)
		}
		return
	}
	unitchecker.Main(lint.Analyzers()...)
}

// packagePatterns returns the arguments when they are plain package
// patterns (./..., ./internal/hls), or nil when the invocation is the
// unitchecker protocol (flags or a .cfg file).
func packagePatterns(args []string) []string {
	if len(args) == 0 {
		return nil
	}
	for _, a := range args {
		if strings.HasPrefix(a, "-") || strings.HasSuffix(a, ".cfg") {
			return nil
		}
	}
	return args
}
