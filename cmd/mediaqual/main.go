// Command mediaqual reproduces the §5.2 audio/video quality analysis
// (Figure 6 and the in-text statistics): it generates a capture corpus
// with the real encoder + container pipelines, then post-analyzes the
// bitstreams like the paper's wireshark/libav toolchain.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"periscope"
)

func main() {
	videos := flag.Int("videos", 150, "captured broadcasts per protocol")
	capSec := flag.Int("capture-sec", 60, "capture duration per broadcast")
	outDir := flag.String("out", "results", "output directory for CSV files")
	seed := flag.Int64("seed", 1, "corpus seed")
	flag.Parse()

	cfg := periscope.DefaultMediaStudyConfig()
	cfg.Videos = *videos
	cfg.CaptureDur = time.Duration(*capSec) * time.Second
	cfg.Seed = *seed

	start := time.Now()
	res := periscope.RunMediaStudy(cfg)
	fmt.Printf("analyzed %d RTMP captures and %d HLS segments in %v\n\n",
		len(res.RTMPReports), len(res.HLSReports), time.Since(start).Round(time.Millisecond))

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, f := range []periscope.Figure{res.Figure6a, res.Figure6b} {
		path := filepath.Join(*outDir, sanitize(f.ID)+".csv")
		if err := os.WriteFile(path, []byte(f.CSV()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println(f.ASCII())
	}
	fmt.Println(res.Stats.Render())
	fmt.Printf("CSV data written to %s/\n", *outDir)
}

func sanitize(id string) string {
	out := make([]rune, 0, len(id))
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
