// Command periscoped runs the full Periscope-like service on loopback —
// API, regional RTMP ingest fleet, geo-placed CDN origin tier + edge POPs
// and chat — and prints the endpoints. Point the other tools (or your own
// RTMP/HLS client) at it. The population churns in real time (scheduled
// broadcast ends tear their pipelines down end-to-end), and a
// delivery-plane snapshot (fan-out drops/resyncs, peer vs origin fills,
// playlist staleness) prints periodically and at shutdown.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"periscope"
	"periscope/internal/analysis"
	"periscope/internal/scenario"
)

// runScenario boots a fresh service, drives the named timeline through
// the scenario runner, prints the report, and exits non-zero if any SLO
// was breached (or the timeline could not run at all).
func runScenario(name string) {
	sc, err := scenario.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("running scenario %s — %s\n\n", sc.Name, sc.Description)
	res, err := scenario.Execute(sc)
	if err != nil {
		log.Fatalf("scenario did not complete: %v", err)
	}
	fmt.Println(res.Report)
	if len(res.Breaches) > 0 {
		fmt.Printf("FAIL: %d SLO breach(es)\n", len(res.Breaches))
		os.Exit(1)
	}
	fmt.Println("PASS: all asserted SLOs within limits")
}

func main() {
	concurrent := flag.Int("broadcasts", 300, "steady-state number of live broadcasts")
	threshold := flag.Int("hls-threshold", 100, "viewer count beyond which HLS is used")
	pops := flag.Int("pops", 2, "number of CDN edge POPs (placed round-robin over regions)")
	popRegions := flag.String("pop-regions", "", "comma-separated POP regions (e.g. us-west,us-west,eu-west); overrides -pops")
	churn := flag.Duration("churn", 2*time.Second, "population churn tick (0 freezes the population)")
	statsEvery := flag.Duration("stats", time.Minute, "delivery snapshot print interval (0 disables)")
	outageRegion := flag.String("outage-region", "", "run a scheduled outage drill: blackhole every POP in this region (e.g. us-west)")
	outageAfter := flag.Duration("outage-after", 30*time.Second, "delay before the scheduled outage begins")
	outageFor := flag.Duration("outage-for", 30*time.Second, "outage duration before the region is restored and re-warmed")
	scenarioName := flag.String("scenario", "", "run a scripted scenario timeline instead of serving (one of: "+strings.Join(scenario.Names(), ", ")+")")
	flag.Parse()

	if *scenarioName != "" {
		runScenario(*scenarioName)
		return
	}

	cfg := periscope.DefaultTestbedConfig()
	cfg.PopConfig.TargetConcurrent = *concurrent
	cfg.HLSViewerThreshold = *threshold
	cfg.CDNPOPs = *pops
	if *popRegions != "" {
		for _, name := range strings.Split(*popRegions, ",") {
			if name = strings.TrimSpace(name); name != "" {
				cfg.CDNPOPRegions = append(cfg.CDNPOPRegions, name)
			}
		}
	}
	cfg.ChurnInterval = *churn
	tb, err := periscope.StartTestbed(cfg)
	if err != nil {
		log.Fatalf("starting service: %v", err)
	}
	defer tb.Close()

	fmt.Printf("periscoped running with ~%d live broadcasts\n", *concurrent)
	fmt.Printf("  API:  %s  (POST /api/v2/{mapGeoBroadcastFeed,getBroadcasts,playbackMeta,accessVideo,teleport})\n", tb.APIBaseURL())
	fmt.Printf("  Chat: %s  (WebSocket /chat/<broadcastID>, heart taps POST /hearts/<broadcastID>, avatars at /avatars/)\n", tb.ChatBaseURL())
	fmt.Println("  RTMP ingest fleet (region-nearest to the broadcaster):")
	for name, rev := range tb.RTMPServerNames() {
		fmt.Printf("    %-34s %s\n", name, rev)
	}
	fmt.Println("  CDN topology (hierarchical fills: nearest peer, then origin):")
	for _, line := range tb.CDNTopology() {
		fmt.Printf("    %s\n", line)
	}
	// Scheduled outage drill: blackhole the region, let health-driven
	// steering re-route its viewers, then restore and re-warm. The
	// periodic snapshot shows the failover (health/down, re-routes,
	// breaker trips) while it runs.
	var outageC, restoreC <-chan time.Time
	if *outageRegion != "" {
		fmt.Printf("\nOutage drill: %s goes dark in %v for %v.\n", *outageRegion, *outageAfter, *outageFor)
		outageC = time.After(*outageAfter)
	}
	fmt.Println("\nCtrl-C to stop.")

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	var tick <-chan time.Time
	if *statsEvery > 0 {
		t := time.NewTicker(*statsEvery)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-outageC:
			outageC = nil
			n := tb.RegionOutage(*outageRegion)
			fmt.Printf("\n*** outage: %d POP(s) in %s blackholed; health: %v\n",
				n, *outageRegion, tb.POPHealthStates())
			restoreC = time.After(*outageFor)
		case <-restoreC:
			restoreC = nil
			n := tb.RestoreRegion(*outageRegion)
			fmt.Printf("\n*** recovery: %d POP(s) in %s restored and re-warming; health: %v\n",
				n, *outageRegion, tb.POPHealthStates())
		case <-tick:
			fmt.Println(analysis.DeliveryTable(tb.Snapshot()).Render())
		case <-ch:
			fmt.Println("\nshutting down; final delivery snapshot:")
			fmt.Println(analysis.DeliveryTable(tb.Snapshot()).Render())
			return
		}
	}
}
