// Command periscoped runs the full Periscope-like service on loopback —
// API, regional RTMP ingest fleet, CDN origin tier + edge POPs and chat —
// and prints the endpoints. Point the other tools (or your own RTMP/HLS
// client) at it. A delivery-plane snapshot (fan-out drops/resyncs, CDN
// fills, playlist staleness) prints periodically and at shutdown.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"periscope"
	"periscope/internal/analysis"
)

func main() {
	concurrent := flag.Int("broadcasts", 300, "steady-state number of live broadcasts")
	threshold := flag.Int("hls-threshold", 100, "viewer count beyond which HLS is used")
	statsEvery := flag.Duration("stats", time.Minute, "delivery snapshot print interval (0 disables)")
	flag.Parse()

	cfg := periscope.DefaultTestbedConfig()
	cfg.PopConfig.TargetConcurrent = *concurrent
	cfg.HLSViewerThreshold = *threshold
	tb, err := periscope.StartTestbed(cfg)
	if err != nil {
		log.Fatalf("starting service: %v", err)
	}
	defer tb.Close()

	fmt.Printf("periscoped running with ~%d live broadcasts\n", *concurrent)
	fmt.Printf("  API:  %s  (POST /api/v2/{mapGeoBroadcastFeed,getBroadcasts,playbackMeta,accessVideo,teleport})\n", tb.APIBaseURL())
	fmt.Printf("  Chat: %s  (WebSocket /chat/<broadcastID>, avatars at /avatars/)\n", tb.ChatBaseURL())
	fmt.Println("  RTMP ingest fleet (region-nearest to the broadcaster):")
	for name, rev := range tb.RTMPServerNames() {
		fmt.Printf("    %-34s %s\n", name, rev)
	}
	fmt.Println("\nCtrl-C to stop.")

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	var tick <-chan time.Time
	if *statsEvery > 0 {
		t := time.NewTicker(*statsEvery)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-tick:
			fmt.Println(analysis.DeliveryTable(tb.Snapshot()).Render())
		case <-ch:
			fmt.Println("\nshutting down; final delivery snapshot:")
			fmt.Println(analysis.DeliveryTable(tb.Snapshot()).Render())
			return
		}
	}
}
