// Command powersim reproduces the §5.3 power study (Figure 7): the seven
// measurement scenarios evaluated on WiFi and LTE through the component
// power model, side by side with the paper's Monsoon measurements.
package main

import (
	"fmt"

	"periscope"
)

func main() {
	fmt.Println(periscope.RunPowerStudy().Render())
	fmt.Println("Key effects the model reproduces:")
	fmt.Println("  - LTE costs more than WiFi in every active state (DRX tail);")
	fmt.Println("  - RTMP vs HLS playback differ only marginally;")
	fmt.Println("  - replay costs about the same as live playback;")
	fmt.Println("  - enabling chat raises draw close to broadcasting levels")
	fmt.Println("    (avatar traffic + ~1/3 higher CPU/GPU clocks).")
}
