module periscope

go 1.24
