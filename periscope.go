// Package periscope reproduces the measurement study "A First Look at
// Quality of Mobile Live Streaming Experience: the Case of Periscope"
// (Siekkinen, Masala, Kämäräinen — ACM IMC 2016) as a runnable system: a
// Periscope-like live-streaming backend built from scratch (RTMP ingest
// and relay, HLS packaging behind CDN edges, a rate-limited JSON API,
// WebSocket chat with avatar delivery) together with the paper's complete
// measurement apparatus (map crawler, automated viewer, capture analysis,
// and a smartphone power model).
//
// The package exposes four studies matching the paper's evaluation:
//
//   - RunUsageStudy  — §4, Figures 1 and 2 (crawling usage patterns);
//   - RunQoEStudy    — §5.1, Figures 3, 4 and 5 (stalling and latency);
//   - RunMediaStudy  — §5.2, Figure 6 (bitrate, QP, frame patterns);
//   - RunPowerStudy  — §5.3, Figure 7 (energy by scenario and network).
//
// StartTestbed launches the full wire-level service on loopback for
// interactive use and end-to-end experiments (see examples/).
package periscope

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"periscope/internal/analysis"
	"periscope/internal/api"
	"periscope/internal/broadcastmodel"
	"periscope/internal/crawler"
	"periscope/internal/mediaanalysis"
	"periscope/internal/service"
	"periscope/internal/session"
)

// Re-exported result types so downstream code can consume study outputs.
type (
	// Figure is a plot-ready artefact (series of points plus notes).
	Figure = analysis.Figure
	// Table is a textual table artefact.
	Table = analysis.Table
	// SessionRecord is one automated 60-second viewing session.
	SessionRecord = session.Record
	// MediaReport is the capture analysis of one video or segment.
	MediaReport = mediaanalysis.Report
	// Testbed is the running wire-level service.
	Testbed = service.Service
	// TestbedConfig tunes the wire-level service.
	TestbedConfig = service.Config
	// TestbedSnapshot is the service's delivery-plane snapshot: RTMP
	// fan-out counters next to the geo-placed CDN's origin/edge fill
	// metrics (peer vs origin fills, single-flight hits, playlist
	// staleness, warm-ups, fill-cap waits, evictions). Obtain one via
	// Testbed.Snapshot, render with analysis.DeliveryTable.
	TestbedSnapshot = service.Snapshot
	// WireSession configures a real (non-simulated) viewing session.
	WireSession = session.WireConfig
)

// StartTestbed launches the full service (API, regional RTMP ingest, CDN
// POPs, chat) on loopback ports.
func StartTestbed(cfg TestbedConfig) (*Testbed, error) { return service.Start(cfg) }

// DefaultTestbedConfig returns the service defaults.
func DefaultTestbedConfig() TestbedConfig { return service.DefaultConfig() }

// WatchBroadcast runs one wire-level Teleport viewing session against a
// testbed and returns the session record.
func WatchBroadcast(cfg WireSession) (SessionRecord, error) { return session.WatchOnce(cfg) }

// UsageStudyConfig tunes the §4 reproduction.
type UsageStudyConfig struct {
	// Concurrent is the steady-state number of live broadcasts (the real
	// service held ~40 000; the default 2 000 is a 1:20 scale).
	Concurrent int
	// DeepCrawls is the number of deep crawls at different times of day
	// (the paper shows several in Fig. 1).
	DeepCrawls int
	// CrawlGap separates the deep crawls in virtual time.
	CrawlGap time.Duration
	// CampaignDur is the targeted-crawl tracking span (4-10 h in §4).
	CampaignDur time.Duration
	Seed        int64
}

// DefaultUsageStudyConfig mirrors the paper's setup at reduced scale.
func DefaultUsageStudyConfig() UsageStudyConfig {
	return UsageStudyConfig{
		Concurrent:  2000,
		DeepCrawls:  4,
		CrawlGap:    6 * time.Hour,
		CampaignDur: 4 * time.Hour,
		Seed:        1,
	}
}

// UsageStudyResult carries the §4 outputs.
type UsageStudyResult struct {
	DeepCrawls []*crawler.DeepResult
	Targeted   *crawler.TargetedResult
	// APIMetrics is the gateway's view of the whole campaign: per-endpoint
	// request counts and how often the crawler tripped the rate limiter.
	APIMetrics api.MetricsSnapshot
	// Figures: 1(a), 1(b), 2(a), 2(b).
	Figure1a, Figure1b, Figure2a, Figure2b Figure
}

// RunUsageStudy reproduces the §4 crawling study in virtual time: the
// population evolves as the crawler paces its requests, so hours of
// crawling complete in seconds of wall time.
func RunUsageStudy(cfg UsageStudyConfig) (*UsageStudyResult, error) {
	if cfg.Concurrent <= 0 {
		cfg = DefaultUsageStudyConfig()
	}
	pc := broadcastmodel.DefaultConfig()
	pc.TargetConcurrent = cfg.Concurrent
	pc.Seed = cfg.Seed
	pop := broadcastmodel.New(pc, time.Date(2016, 3, 28, 0, 0, 0, 0, time.UTC))

	scfg := api.DefaultServerConfig()
	srv := api.NewServer(pop, nil, scfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	pacer := func(d time.Duration) { pop.Advance(d) }
	res := &UsageStudyResult{}

	// Deep crawls at different (virtual) times of day.
	for i := 0; i < cfg.DeepCrawls; i++ {
		cli := api.NewClient(base, fmt.Sprintf("deep-%d", i), nil)
		dr, err := crawler.DeepCrawl(cli, crawler.DefaultDeepConfig(), pacer)
		if err != nil {
			return nil, fmt.Errorf("deep crawl %d: %w", i, err)
		}
		res.DeepCrawls = append(res.DeepCrawls, dr)
		pop.Advance(cfg.CrawlGap)
	}

	// Targeted crawl over the most active areas, four parallel sessions.
	var clients []*api.Client
	for i := 0; i < 4; i++ {
		clients = append(clients, api.NewClient(base, fmt.Sprintf("targeted-%d", i), nil))
	}
	areas := res.DeepCrawls[len(res.DeepCrawls)-1].TopAreas(64)
	tcfg := crawler.DefaultTargetedConfig(areas)
	tcfg.CampaignDur = cfg.CampaignDur
	tres, err := crawler.TargetedCrawl(clients, tcfg, pop.Now, pacer)
	if err != nil {
		return nil, fmt.Errorf("targeted crawl: %w", err)
	}
	res.Targeted = tres
	res.APIMetrics = srv.Metrics()

	completed := tres.CompletedRecords()
	res.Figure1a, res.Figure1b = analysis.Figure1(res.DeepCrawls)
	res.Figure2a = analysis.Figure2a(completed)
	res.Figure2b = analysis.Figure2b(completed)
	return res, nil
}

// QoEStudyConfig tunes the §5.1 reproduction.
type QoEStudyConfig = session.CampaignConfig

// DefaultQoEStudyConfig mirrors the paper's dataset: 3 382 unlimited
// sessions plus bandwidth sweeps of 0.5-10 Mbps.
func DefaultQoEStudyConfig() QoEStudyConfig { return session.DefaultCampaignConfig() }

// QoEStudyResult carries the §5.1 outputs.
type QoEStudyResult struct {
	Records []SessionRecord
	// Figures: 3(a), 3(b), 4(a), 4(b), 5.
	Figure3a, Figure3b, Figure4a, Figure4b, Figure5 Figure
}

// RunQoEStudy reproduces the automated-viewing QoE study in the fast tier
// (transport simulators over the population; same playback engine as the
// wire tier).
func RunQoEStudy(cfg QoEStudyConfig) *QoEStudyResult {
	if cfg.UnlimitedSessions == 0 {
		cfg = DefaultQoEStudyConfig()
	}
	recs := session.NewCampaign(cfg).Run()
	return &QoEStudyResult{
		Records:  recs,
		Figure3a: analysis.Figure3a(recs),
		Figure3b: analysis.Figure3b(recs),
		Figure4a: analysis.Figure4a(recs),
		Figure4b: analysis.Figure4b(recs),
		Figure5:  analysis.Figure5(recs),
	}
}

// MediaStudyConfig tunes the §5.2 reproduction.
type MediaStudyConfig = mediaanalysis.CorpusConfig

// DefaultMediaStudyConfig returns the §5.2 corpus defaults.
func DefaultMediaStudyConfig() MediaStudyConfig { return mediaanalysis.DefaultCorpusConfig() }

// MediaStudyResult carries the §5.2 outputs.
type MediaStudyResult struct {
	RTMPReports []MediaReport
	HLSReports  []MediaReport
	SegmentDurs []time.Duration
	Figure6a    Figure
	Figure6b    Figure
	Stats       Table
}

// RunMediaStudy generates a capture corpus with the real encoder and
// container pipelines and post-analyzes it like the paper's
// wireshark/libav toolchain.
func RunMediaStudy(cfg MediaStudyConfig) *MediaStudyResult {
	if cfg.Videos == 0 {
		cfg = DefaultMediaStudyConfig()
	}
	rtmp, hlsSegs, segDurs := mediaanalysis.CorpusReports(cfg)
	return &MediaStudyResult{
		RTMPReports: rtmp,
		HLSReports:  hlsSegs,
		SegmentDurs: segDurs,
		Figure6a:    analysis.Figure6a(rtmp, hlsSegs),
		Figure6b:    analysis.Figure6b(rtmp, hlsSegs),
		Stats:       analysis.Section52Stats(rtmp, hlsSegs, segDurs),
	}
}

// RunPowerStudy evaluates the seven Fig. 7 scenarios on WiFi and LTE.
func RunPowerStudy() Table { return analysis.Figure7(time.Minute) }

// APITable returns Table 1 (the relevant API commands).
func APITable() Table { return analysis.Table1() }
