package periscope_test

import (
	"fmt"
	"time"

	"periscope"
)

// ExampleRunPowerStudy regenerates the Fig. 7 power table.
func ExampleRunPowerStudy() {
	tbl := periscope.RunPowerStudy()
	fmt.Println(tbl.ID)
	// Output: Figure 7
}

// ExampleAPITable prints the Table 1 commands.
func ExampleAPITable() {
	tbl := periscope.APITable()
	for _, row := range tbl.Rows {
		fmt.Println(row[0])
	}
	// Output:
	// mapGeoBroadcastFeed
	// getBroadcasts
	// playbackMeta
}

// ExampleRunQoEStudy runs a miniature QoE campaign and reports the dataset
// shape.
func ExampleRunQoEStudy() {
	cfg := periscope.DefaultQoEStudyConfig()
	cfg.UnlimitedSessions = 50
	cfg.LimitsMbps = []float64{2}
	cfg.SessionsPerLimit = 10
	cfg.PopTarget = 300
	cfg.SessionDur = 60 * time.Second
	res := periscope.RunQoEStudy(cfg)
	fmt.Println(len(res.Records) == 60)
	// Output: true
}
