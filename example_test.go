package periscope_test

import (
	"fmt"
	"time"

	"periscope"
	"periscope/internal/analysis"
)

// ExampleStartTestbed boots the wire-level service with a geo-placed CDN
// (one POP in San Francisco, one in Europe — the paper's two Fastly
// edges), starts one broadcast's pipeline, ends it through the lifecycle
// path, and renders the delivery-plane snapshot. Population-scheduled
// ends take the same path via Pop.Advance; EndBroadcast is the direct
// handle.
func ExampleStartTestbed() {
	cfg := periscope.DefaultTestbedConfig()
	cfg.PopConfig.TargetConcurrent = 60
	cfg.CDNPOPRegions = []string{"us-west", "eu-west"}
	cfg.CDNLinkRTTScale = -1 // example speed: keep the fill hierarchy, skip the modelled RTTs
	cfg.CDNUnregisterLinger = 0
	tb, err := periscope.StartTestbed(cfg)
	if err != nil {
		fmt.Println("start:", err)
		return
	}
	defer tb.Close()

	b := tb.Pop.Live()[0]
	if _, err := tb.AccessVideo(b.ID); err != nil {
		fmt.Println("access:", err)
		return
	}
	tb.EndBroadcast(b.ID)

	var snap periscope.TestbedSnapshot = tb.Snapshot()
	tbl := analysis.DeliveryTable(snap)
	fmt.Println(tbl.ID)
	fmt.Println("live hubs after end:", snap.Delivery.LiveHubs)
	fmt.Println("POPs:", len(snap.POPs), "in", snap.POPs[0].Region, "and", snap.POPs[1].Region)
	// Output:
	// Delivery
	// live hubs after end: 0
	// POPs: 2 in us-west and eu-west
}

// ExampleRunPowerStudy regenerates the Fig. 7 power table.
func ExampleRunPowerStudy() {
	tbl := periscope.RunPowerStudy()
	fmt.Println(tbl.ID)
	// Output: Figure 7
}

// ExampleAPITable prints the Table 1 commands.
func ExampleAPITable() {
	tbl := periscope.APITable()
	for _, row := range tbl.Rows {
		fmt.Println(row[0])
	}
	// Output:
	// mapGeoBroadcastFeed
	// getBroadcasts
	// playbackMeta
}

// ExampleRunQoEStudy runs a miniature QoE campaign and reports the dataset
// shape.
func ExampleRunQoEStudy() {
	cfg := periscope.DefaultQoEStudyConfig()
	cfg.UnlimitedSessions = 50
	cfg.LimitsMbps = []float64{2}
	cfg.SessionsPerLimit = 10
	cfg.PopTarget = 300
	cfg.SessionDur = 60 * time.Second
	res := periscope.RunQoEStudy(cfg)
	fmt.Println(len(res.Records) == 60)
	// Output: true
}
