// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablations for the design choices called out in
// DESIGN.md §5 and micro-benchmarks of the protocol substrates. Each
// figure benchmark reports the headline statistics of its artefact via
// b.ReportMetric, so `go test -bench=.` regenerates the evaluation's
// numbers in one run (see EXPERIMENTS.md for the paper-vs-measured
// comparison).
package periscope

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"periscope/internal/amf"
	"periscope/internal/api"
	"periscope/internal/avc"
	"periscope/internal/broadcastmodel"
	"periscope/internal/crawler"
	"periscope/internal/media"
	"periscope/internal/mediaanalysis"
	"periscope/internal/mpegts"
	"periscope/internal/player"
	"periscope/internal/power"
	"periscope/internal/rtmp"
	"periscope/internal/session"
	"periscope/internal/stats"
)

// --- Table 1 ---

// BenchmarkTable1APICommands exercises the three Table-1 API commands
// against a live API server and reports per-command latency.
func BenchmarkTable1APICommands(b *testing.B) {
	pc := broadcastmodel.DefaultConfig()
	pc.TargetConcurrent = 500
	pop := broadcastmodel.New(pc, time.Date(2016, 4, 1, 12, 0, 0, 0, time.UTC))
	srv := api.NewServer(pop, nil, api.ServerConfig{MapVisibleCap: 50})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()
	cli := api.NewClient("http://"+ln.Addr().String(), "bench", nil)

	var ids []string
	for _, bc := range pop.Live()[:10] {
		ids = append(ids, bc.ID)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.MapGeoBroadcastFeed(api.MapGeoBroadcastFeedRequest{
			P1Lat: -90, P1Lng: -180, P2Lat: 90, P2Lng: 180,
		}); err != nil {
			b.Fatal(err)
		}
		if _, err := cli.GetBroadcasts(ids); err != nil {
			b.Fatal(err)
		}
		if err := cli.PlaybackMeta(api.PlaybackMeta{BroadcastID: ids[0], Protocol: "RTMP"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAPIGateway hammers getBroadcasts with parallel sessions served
// in-process (no sockets), so what it measures is the gateway itself:
// middleware chain, rate-limiter table contention, JSON codec. Each
// goroutine is a distinct session token, i.e. a distinct limiter bucket —
// with a sharded limiter the parallel throughput scales instead of
// serializing on one global mutex.
func BenchmarkAPIGateway(b *testing.B) {
	pc := broadcastmodel.DefaultConfig()
	pc.TargetConcurrent = 500
	pop := broadcastmodel.New(pc, time.Date(2016, 4, 1, 12, 0, 0, 0, time.UTC))
	scfg := api.DefaultServerConfig()
	scfg.RateLimit = 1e9 // limiting on, never denies: measure the hot path
	scfg.Burst = 1e9
	srv := api.NewServer(pop, nil, scfg)

	var ids []string
	for _, bc := range pop.Live()[:10] {
		ids = append(ids, bc.ID)
	}
	body, err := json.Marshal(api.GetBroadcastsRequest{BroadcastIDs: ids})
	if err != nil {
		b.Fatal(err)
	}
	var sess atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Per-goroutine request and sink writer, reused across iterations
		// so the measurement is the gateway's own work, not harness
		// garbage.
		session := fmt.Sprintf("bench-sess-%d", sess.Add(1))
		rd := bytes.NewReader(body)
		req := httptest.NewRequest(http.MethodPost, "/api/v2/getBroadcasts", io.NopCloser(rd))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(api.SessionHeader, session)
		w := &sinkResponseWriter{header: http.Header{}}
		for pb.Next() {
			rd.Seek(0, io.SeekStart)
			w.status = 0
			srv.ServeHTTP(w, req)
			if w.status != http.StatusOK {
				b.Fatalf("status %d", w.status)
			}
		}
	})
}

// sinkResponseWriter discards the response body and records the status.
type sinkResponseWriter struct {
	header http.Header
	status int
}

func (w *sinkResponseWriter) Header() http.Header { return w.header }

func (w *sinkResponseWriter) WriteHeader(code int) { w.status = code }

func (w *sinkResponseWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return len(p), nil
}

// --- helpers shared by figure benches ---

func qoeRecords(b *testing.B, unlimited, perLimit int) []session.Record {
	b.Helper()
	cfg := session.DefaultCampaignConfig()
	cfg.UnlimitedSessions = unlimited
	cfg.LimitsMbps = []float64{0.5, 1, 2, 4, 10}
	cfg.SessionsPerLimit = perLimit
	cfg.PopTarget = 1000
	return session.NewCampaign(cfg).Run()
}

// --- Figure 2 ---

// BenchmarkFigure2aDurationViewers runs a targeted crawl campaign and
// reports the duration/viewer distribution statistics of Fig. 2(a).
func BenchmarkFigure2aDurationViewers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunUsageStudy(UsageStudyConfig{
			Concurrent:  800,
			DeepCrawls:  1,
			CrawlGap:    time.Hour,
			CampaignDur: 2 * time.Hour,
			Seed:        int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		completed := res.Targeted.CompletedRecords()
		var durs, viewers []float64
		for _, r := range completed {
			durs = append(durs, r.Duration().Minutes())
			if len(r.ViewerSamples) > 0 {
				viewers = append(viewers, r.AvgViewers())
			}
		}
		if len(durs) == 0 {
			b.Fatal("no completed broadcasts")
		}
		b.ReportMetric(stats.Median(durs), "median-duration-min")
		under20 := 0
		for _, v := range viewers {
			if v < 20 {
				under20++
			}
		}
		if len(viewers) > 0 {
			b.ReportMetric(float64(under20)/float64(len(viewers))*100, "pct-under-20-viewers")
		}
	}
}

// BenchmarkFigure2bDiurnal reproduces the local-hour viewer pattern and
// reports the slump-vs-evening contrast.
func BenchmarkFigure2bDiurnal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunUsageStudy(UsageStudyConfig{
			Concurrent:  800,
			DeepCrawls:  1,
			CrawlGap:    time.Hour,
			CampaignDur: 3 * time.Hour,
			Seed:        int64(i + 7),
		})
		if err != nil {
			b.Fatal(err)
		}
		f := res.Figure2b
		if len(f.Series) == 0 || len(f.Series[0].X) == 0 {
			b.Fatal("empty diurnal figure")
		}
		var night, evening float64
		var nightN, eveningN int
		for j, h := range f.Series[0].X {
			v := f.Series[0].Y[j]
			if h >= 3 && h <= 6 {
				night += v
				nightN++
			}
			if h >= 19 && h <= 23 {
				evening += v
				eveningN++
			}
		}
		if nightN > 0 && eveningN > 0 {
			b.ReportMetric(evening/float64(eveningN)/(night/float64(nightN)), "evening-over-night")
		}
	}
}

// --- Figure 3 ---

// BenchmarkFigure3aStallRatioCDF simulates the unlimited RTMP dataset and
// reports the stall-free share and the single-stall band mass.
func BenchmarkFigure3aStallRatioCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var ratios []float64
		for seed := int64(0); seed < 400; seed++ {
			cfg := player.DefaultSimConfig(seed + int64(i)*1000)
			m := player.SimulateRTMP(cfg)
			ratios = append(ratios, m.StallRatio)
		}
		stallFree, band := 0, 0
		for _, r := range ratios {
			if r == 0 {
				stallFree++
			}
			if r >= 0.05 && r <= 0.09 {
				band++
			}
		}
		b.ReportMetric(float64(stallFree)/float64(len(ratios))*100, "pct-stall-free")
		b.ReportMetric(float64(band)/float64(len(ratios))*100, "pct-in-0.05-0.09-band")
	}
}

// BenchmarkFigure3bStallVsBandwidth sweeps the tc-style limits and reports
// mean stall ratios at the boundary points.
func BenchmarkFigure3bStallVsBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mean := func(mbps float64) float64 {
			var sum float64
			const n = 80
			for seed := int64(0); seed < n; seed++ {
				cfg := player.DefaultSimConfig(seed + int64(i)*977)
				cfg.BandwidthBps = mbps * 1e6
				// RTMP broadcasts approach the 100-viewer boundary; their
				// chats add ~1-1.5 Mbps of avatar traffic (§5.1), which is
				// what pushes the stall boundary to 2 Mbps.
				cfg.Viewers = 80
				sum += player.SimulateRTMP(cfg).StallRatio
			}
			return sum / n
		}
		b.ReportMetric(mean(0.5), "stall-ratio-0.5Mbps")
		b.ReportMetric(mean(1), "stall-ratio-1Mbps")
		b.ReportMetric(mean(2), "stall-ratio-2Mbps")
		b.ReportMetric(mean(4), "stall-ratio-4Mbps")
	}
}

// --- Figure 4 ---

// BenchmarkFigure4aJoinTime reports median join time at the sweep points.
func BenchmarkFigure4aJoinTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		med := func(mbps float64) float64 {
			var xs []float64
			for seed := int64(0); seed < 60; seed++ {
				cfg := player.DefaultSimConfig(seed + int64(i)*1303)
				cfg.BandwidthBps = mbps * 1e6
				cfg.Viewers = 60 // typical watched RTMP broadcast with chat
				xs = append(xs, player.SimulateRTMP(cfg).JoinTime.Seconds())
			}
			return stats.Median(xs)
		}
		b.ReportMetric(med(0.5), "join-s-0.5Mbps")
		b.ReportMetric(med(2), "join-s-2Mbps")
		b.ReportMetric(med(0), "join-s-unlimited")
	}
}

// BenchmarkFigure4bPlaybackLatency reports median playback latency.
func BenchmarkFigure4bPlaybackLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		med := func(mbps float64) float64 {
			var xs []float64
			for seed := int64(0); seed < 60; seed++ {
				cfg := player.DefaultSimConfig(seed + int64(i)*509)
				cfg.BandwidthBps = mbps * 1e6
				cfg.Viewers = 60
				xs = append(xs, player.SimulateRTMP(cfg).PlaybackLatency.Seconds())
			}
			return stats.Median(xs)
		}
		b.ReportMetric(med(0.5), "latency-s-0.5Mbps")
		b.ReportMetric(med(0), "latency-s-unlimited")
	}
}

// --- Figure 5 ---

// BenchmarkFigure5DeliveryLatency compares delivery latency across the
// protocols on unlimited links.
func BenchmarkFigure5DeliveryLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var rtmpVals, hlsVals []float64
		for seed := int64(0); seed < 150; seed++ {
			cfg := player.DefaultSimConfig(seed + int64(i)*7919)
			rtmpVals = append(rtmpVals, player.SimulateRTMP(cfg).DeliveryLatency.Seconds())
			hlsVals = append(hlsVals, player.SimulateHLS(cfg).DeliveryLatency.Seconds())
		}
		b.ReportMetric(stats.Quantile(rtmpVals, 0.75)*1000, "rtmp-p75-ms")
		b.ReportMetric(stats.Mean(hlsVals), "hls-mean-s")
	}
}

// --- Figure 6 ---

// BenchmarkFigure6aBitrateCDF analyzes a capture corpus and reports the
// per-protocol bitrate medians.
func BenchmarkFigure6aBitrateCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := mediaanalysis.DefaultCorpusConfig()
		cfg.Videos = 30
		cfg.CaptureDur = 20 * time.Second
		cfg.Seed = int64(i + 1)
		rtmp, hlsSegs, _ := mediaanalysis.CorpusReports(cfg)
		med := func(reps []mediaanalysis.Report) float64 {
			var xs []float64
			for _, r := range reps {
				xs = append(xs, r.BitrateBps/1000)
			}
			return stats.Median(xs)
		}
		b.ReportMetric(med(rtmp), "rtmp-median-kbps")
		b.ReportMetric(med(hlsSegs), "hls-median-kbps")
	}
}

// BenchmarkFigure6bQPvsBitrate reports the QP range and the bitrate spread
// within a QP band (the scatter's key property).
func BenchmarkFigure6bQPvsBitrate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := mediaanalysis.DefaultCorpusConfig()
		cfg.Videos = 30
		cfg.CaptureDur = 20 * time.Second
		cfg.Seed = int64(i + 42)
		rtmp, hlsSegs, _ := mediaanalysis.CorpusReports(cfg)
		all := append(append([]mediaanalysis.Report{}, rtmp...), hlsSegs...)
		var qps, bandRates []float64
		for _, r := range all {
			qps = append(qps, r.AvgQP)
			if r.AvgQP >= 22 && r.AvgQP <= 32 {
				bandRates = append(bandRates, r.BitrateBps)
			}
		}
		b.ReportMetric(stats.Mean(qps), "mean-qp")
		if len(bandRates) > 2 {
			b.ReportMetric(stats.Max(bandRates)/stats.Min(bandRates), "bitrate-spread-at-same-qp")
		}
	}
}

// --- Figure 7 ---

// BenchmarkFigure7Power evaluates the seven scenarios on both networks and
// reports the worst relative error against the paper's bars.
func BenchmarkFigure7Power(b *testing.B) {
	m := power.NewModel()
	paper := power.PaperValues()
	for i := 0; i < b.N; i++ {
		scns := power.StandardScenarios(time.Minute)
		worst := 0.0
		for _, s := range scns {
			for _, nw := range []power.Network{power.WiFi, power.LTE} {
				got := m.Average(s, nw)
				want := paper[s.Name][nw]
				rel := (got - want) / want
				if rel < 0 {
					rel = -rel
				}
				if rel > worst {
					worst = rel
				}
			}
		}
		b.ReportMetric(worst*100, "worst-error-pct")
		chatOn := m.Average(scns[5], power.WiFi)
		chatOff := m.Average(scns[4], power.WiFi)
		b.ReportMetric(chatOn-chatOff, "chat-delta-mW-wifi")
	}
}

// --- In-text findings ---

// BenchmarkSection52FramePatterns reports the frame-pattern shares and
// I-frame period.
func BenchmarkSection52FramePatterns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := mediaanalysis.DefaultCorpusConfig()
		cfg.Videos = 100
		cfg.CaptureDur = 10 * time.Second
		cfg.Seed = int64(i + 3)
		rtmp, _, segDurs := mediaanalysis.CorpusReports(cfg)
		ip, ibp := 0, 0
		var iPeriods []float64
		for _, r := range rtmp {
			switch r.Pattern {
			case mediaanalysis.PatternIP:
				ip++
			case mediaanalysis.PatternIBP:
				ibp++
			}
			if r.IPeriod > 0 {
				iPeriods = append(iPeriods, r.IPeriod)
			}
		}
		b.ReportMetric(float64(ip)/float64(len(rtmp))*100, "ip-only-pct")
		b.ReportMetric(stats.Mean(iPeriods), "i-period-frames")
		var near36 int
		for _, d := range segDurs {
			if d >= 3400*time.Millisecond && d <= 3900*time.Millisecond {
				near36++
			}
		}
		if len(segDurs) > 0 {
			b.ReportMetric(float64(near36)/float64(len(segDurs))*100, "segdur-3.6s-pct")
		}
	}
}

// BenchmarkChatTraffic reproduces the §5.1 chat-traffic finding: aggregate
// rate with chat on vs off.
func BenchmarkChatTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rate := func(visible bool) float64 {
			var bytes int64
			const n = 40
			for seed := int64(0); seed < n; seed++ {
				cfg := player.DefaultSimConfig(seed + int64(i)*31)
				cfg.Viewers = 380 // active chat room
				cfg.ChatVisible = visible
				m := player.SimulateRTMP(cfg)
				bytes += m.Bytes
			}
			return float64(bytes) * 8 / (n * cfg60().Seconds()) / 1000
		}
		off := rate(false)
		on := rate(true) + avgChatOverheadKbps(int64(i))
		b.ReportMetric(off, "video-only-kbps")
		b.ReportMetric(on, "with-chat-kbps")
	}
}

func cfg60() time.Duration { return 60 * time.Second }

// avgChatOverheadKbps estimates the avatar-download rate the viewer's link
// carries for an active chat (the video bytes above exclude it).
func avgChatOverheadKbps(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	// ~95 chatters * 0.2 msg/s * 0.7 avatar fraction * ~47.5 KB.
	_ = rng
	return 95 * 0.2 * 0.7 * 47.5 * 8
}

// BenchmarkProtocolSelection reports the HLS session share and the
// per-protocol viewer means (the ~100-viewer boundary).
func BenchmarkProtocolSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		recs := qoeRecords(b, 600, 0)
		var hlsN, rtmpN, hlsV, rtmpV float64
		for _, r := range recs {
			if r.Protocol == "HLS" {
				hlsN++
				hlsV += float64(r.Viewers)
			} else {
				rtmpN++
				rtmpV += float64(r.Viewers)
			}
		}
		if hlsN > 0 {
			b.ReportMetric(hlsV/hlsN, "hls-mean-viewers")
		}
		if rtmpN > 0 {
			b.ReportMetric(rtmpV/rtmpN, "rtmp-mean-viewers")
		}
		b.ReportMetric(hlsN/(hlsN+rtmpN)*100, "hls-session-pct")
	}
}

// BenchmarkWelchDeviceComparison reports the S3-vs-S4 t-test p-values.
func BenchmarkWelchDeviceComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := session.DefaultCampaignConfig()
		cfg.UnlimitedSessions = 600
		cfg.LimitsMbps = nil
		cfg.PopTarget = 800
		cfg.Seed = int64(i + 1)
		recs := session.NewCampaign(cfg).Run()
		var fpsA, fpsB, stallA, stallB []float64
		for _, r := range recs {
			if r.Device == session.GalaxyS3.Name {
				fpsA = append(fpsA, r.MeasuredFPS)
				stallA = append(stallA, r.Metrics.StallRatio)
			} else {
				fpsB = append(fpsB, r.MeasuredFPS)
				stallB = append(stallB, r.Metrics.StallRatio)
			}
		}
		if fpsT, err := stats.WelchTTest(fpsA, fpsB); err == nil {
			b.ReportMetric(fpsT.P, "fps-p-value")
		}
		if stallT, err := stats.WelchTTest(stallA, stallB); err == nil {
			b.ReportMetric(stallT.P, "stall-p-value")
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationSegmentDuration sweeps the HLS segment target.
func BenchmarkAblationSegmentDuration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, target := range []time.Duration{2 * time.Second, 3600 * time.Millisecond, 6 * time.Second} {
			var lat float64
			var stalls int
			const n = 50
			for seed := int64(0); seed < n; seed++ {
				cfg := player.DefaultSimConfig(seed + int64(i)*131)
				cfg.SegmentTarget = target
				m := player.SimulateHLS(cfg)
				lat += m.DeliveryLatency.Seconds()
				stalls += m.StallCount
			}
			b.ReportMetric(lat/n, fmt.Sprintf("delivery-s-T%.1f", target.Seconds()))
			b.ReportMetric(float64(stalls)/n, fmt.Sprintf("stalls-T%.1f", target.Seconds()))
		}
	}
}

// BenchmarkAblationStartupBuffer sweeps the RTMP startup buffer depth.
func BenchmarkAblationStartupBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, startup := range []time.Duration{400 * time.Millisecond, 1500 * time.Millisecond, 4 * time.Second} {
			var join, stallSec float64
			const n = 60
			for seed := int64(0); seed < n; seed++ {
				cfg := player.DefaultSimConfig(seed + int64(i)*611)
				cfg.BroadcasterGapProb = 0.4
				m := player.SimulateRTMPWithEngine(cfg, player.Engine{Startup: startup, Resume: startup})
				join += m.JoinTime.Seconds()
				stallSec += m.StallTime.Seconds()
			}
			s := startup.Seconds()
			b.ReportMetric(join/n, fmt.Sprintf("join-s-buf%.1f", s))
			b.ReportMetric(stallSec/n, fmt.Sprintf("stall-s-buf%.1f", s))
		}
	}
}

// BenchmarkAblationLiveEdgeOffset sweeps how far behind live the HLS
// player starts.
func BenchmarkAblationLiveEdgeOffset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, off := range []int{0, 2, 4} {
			var lat float64
			var stalls int
			const n = 50
			for seed := int64(0); seed < n; seed++ {
				cfg := player.DefaultSimConfig(seed + int64(i)*733)
				cfg.LiveEdgeOffset = off
				cfg.BroadcasterGapProb = 0.4
				m := player.SimulateHLS(cfg)
				lat += m.DeliveryLatency.Seconds()
				stalls += m.StallCount
			}
			b.ReportMetric(lat/n, fmt.Sprintf("delivery-s-edge%d", off))
			b.ReportMetric(float64(stalls)/n, fmt.Sprintf("stalls-edge%d", off))
		}
	}
}

// BenchmarkAblationAvatarCache quantifies the caching mitigation the paper
// proposes for the chat traffic/energy overhead.
func BenchmarkAblationAvatarCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := func(cache bool) float64 {
			var stalls int
			const n = 60
			for seed := int64(0); seed < n; seed++ {
				cfg := player.DefaultSimConfig(seed + int64(i)*389)
				cfg.BandwidthBps = 1e6
				cfg.Viewers = 300
				cfg.AvatarCache = cache
				stalls += player.SimulateRTMP(cfg).StallCount
			}
			return float64(stalls) / n
		}
		b.ReportMetric(run(false), "stalls-no-cache")
		b.ReportMetric(run(true), "stalls-with-cache")
	}
}

// BenchmarkAblationDRXTail sweeps the LTE DRX tail length in the power
// model.
func BenchmarkAblationDRXTail(b *testing.B) {
	for i := 0; i < b.N; i++ {
		scn := power.StandardScenarios(time.Minute)[1] // app-on: bursty
		for _, tail := range []time.Duration{500 * time.Millisecond, 2500 * time.Millisecond, 5 * time.Second} {
			m := power.NewModel()
			m.LTE.Tail = tail
			b.ReportMetric(m.Average(scn, power.LTE), fmt.Sprintf("appon-mW-tail%.1fs", tail.Seconds()))
		}
	}
}

// --- Protocol substrate micro-benchmarks ---

// BenchmarkRTMPChunkThroughput measures chunk-layer mux+demux throughput
// in relay steady state: the consumed payload buffer is recycled into the
// chunk layer's pool, as the connection layer does for messages it fully
// consumes. (internal/rtmp has split write/read/no-recycle benchmarks.)
func BenchmarkRTMPChunkThroughput(b *testing.B) {
	payload := make([]byte, 4096)
	var buf bytes.Buffer
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		buf.Reset()
		cw := rtmp.NewChunkWriter(&buf)
		if err := cw.WriteMessage(7, rtmp.Message{TypeID: rtmp.TypeVideo, Timestamp: uint32(i), Payload: payload}); err != nil {
			b.Fatal(err)
		}
		cr := rtmp.NewChunkReader(&buf)
		msg, err := cr.ReadMessage()
		if err != nil {
			b.Fatal(err)
		}
		rtmp.RecycleMessagePayload(msg.Payload)
	}
}

// BenchmarkTSMuxDemux measures MPEG-TS packaging throughput.
func BenchmarkTSMuxDemux(b *testing.B) {
	frame := make([]byte, 8000)
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		m := mpegts.NewMuxer()
		m.WriteVideo(time.Duration(i)*time.Millisecond, 0, true, frame)
		if _, err := mpegts.DemuxAll(m.Bytes()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAMFMarshal measures command-message encoding.
func BenchmarkAMFMarshal(b *testing.B) {
	obj := amf.Object{"app": "live", "tcUrl": "rtmp://vidman.periscope.tv/live", "capabilities": 15.0}
	for i := 0; i < b.N; i++ {
		buf, err := amf.Marshal("connect", 1.0, obj)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := amf.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncoderFrame measures synthetic encoding with real NAL output.
func BenchmarkEncoderFrame(b *testing.B) {
	cfg := media.DefaultEncoderConfig()
	enc := media.NewEncoder(cfg, time.Unix(0, 0))
	for i := 0; i < b.N; i++ {
		f := enc.NextFrame()
		if len(f.NALs) == 0 && !f.Dropped {
			b.Fatal("no NALs")
		}
	}
}

// BenchmarkSliceHeaderParse measures QP extraction from slices.
func BenchmarkSliceHeaderParse(b *testing.B) {
	sps := avc.DefaultSPS()
	nal := avc.MarshalSlice(avc.SliceHeader{Type: avc.SliceP, FrameNum: 3, QPDelta: 2}, sps, make([]byte, 1200))
	for i := 0; i < b.N; i++ {
		if _, err := avc.ParseSliceHeader(nal, sps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionSimulation measures full 60-second session simulations
// per second (the fast tier's core operation).
func BenchmarkSessionSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := player.DefaultSimConfig(int64(i))
		if m := player.SimulateRTMP(cfg); m.Delivered == 0 {
			b.Fatal("empty session")
		}
	}
}

// BenchmarkFigure1DeepCrawl measures one complete deep crawl and reports
// the Fig. 1 discovery statistics.
func BenchmarkFigure1DeepCrawl(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pc := broadcastmodel.DefaultConfig()
		pc.TargetConcurrent = 800
		pc.Seed = int64(i + 1)
		pop := broadcastmodel.New(pc, time.Date(2016, 4, 1, 12, 0, 0, 0, time.UTC))
		srv := api.NewServer(pop, nil, api.ServerConfig{MapVisibleCap: 50})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		cli := api.NewClient("http://"+ln.Addr().String(), "bench", nil)
		pacer := func(d time.Duration) { pop.Advance(d) }
		b.StartTimer()

		res, err := crawler.DeepCrawl(cli, crawler.DefaultDeepConfig(), pacer)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		b.ReportMetric(float64(res.TotalFound()), "broadcasts-found")
		b.ReportMetric(float64(len(res.Areas)), "areas-queried")
		b.ReportMetric(res.TopAreaShare(0.5)*100, "top-half-share-pct")
		hs.Close()
		b.StartTimer()
	}
}
