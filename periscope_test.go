package periscope

import (
	"strings"
	"testing"
	"time"
)

func TestRunUsageStudySmall(t *testing.T) {
	cfg := DefaultUsageStudyConfig()
	cfg.Concurrent = 500
	cfg.DeepCrawls = 2
	cfg.CampaignDur = time.Hour
	res, err := RunUsageStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DeepCrawls) != 2 {
		t.Fatalf("deep crawls = %d", len(res.DeepCrawls))
	}
	for i, dc := range res.DeepCrawls {
		if dc.TotalFound() < 200 {
			t.Errorf("crawl %d found only %d", i, dc.TotalFound())
		}
	}
	if len(res.Targeted.Records) == 0 {
		t.Fatal("targeted crawl tracked nothing")
	}
	if len(res.Figure2a.Series) != 2 {
		t.Error("Figure 2(a) needs duration and viewer series")
	}
	if len(res.Figure2b.Series[0].X) < 5 {
		t.Error("Figure 2(b) has too few hours")
	}
}

func TestRunQoEStudySmall(t *testing.T) {
	cfg := DefaultQoEStudyConfig()
	cfg.UnlimitedSessions = 200
	cfg.LimitsMbps = []float64{0.5, 2, 10}
	cfg.SessionsPerLimit = 25
	cfg.PopTarget = 600
	res := RunQoEStudy(cfg)
	if len(res.Records) < 200 {
		t.Fatalf("records = %d", len(res.Records))
	}
	for _, f := range []Figure{res.Figure3a, res.Figure3b, res.Figure4a, res.Figure4b, res.Figure5} {
		if len(f.Series) == 0 {
			t.Errorf("%s is empty", f.ID)
		}
	}
	// Key finding 3: HLS delivery latency exceeds RTMP.
	var hlsSeries, rtmpSeries []float64
	for _, s := range res.Figure5.Series {
		switch s.Name {
		case "HLS":
			hlsSeries = s.X
		case "RTMP":
			rtmpSeries = s.X
		}
	}
	if len(hlsSeries) == 0 || len(rtmpSeries) == 0 {
		t.Skip("one protocol missing at this scale")
	}
	if hlsSeries[len(hlsSeries)/2] < rtmpSeries[len(rtmpSeries)/2] {
		t.Error("HLS delivery latency not above RTMP")
	}
}

func TestRunMediaStudySmall(t *testing.T) {
	cfg := DefaultMediaStudyConfig()
	cfg.Videos = 25
	cfg.CaptureDur = 15 * time.Second
	res := RunMediaStudy(cfg)
	if len(res.RTMPReports) < 20 || len(res.HLSReports) < 40 {
		t.Fatalf("corpus too small: %d/%d", len(res.RTMPReports), len(res.HLSReports))
	}
	if !strings.Contains(res.Stats.Render(), "I-frame period") {
		t.Error("stats table incomplete")
	}
}

func TestRunPowerStudy(t *testing.T) {
	tbl := RunPowerStudy()
	out := tbl.Render()
	for _, s := range []string{"home-screen", "video-hls-chat-on", "broadcast", "4540"} {
		if !strings.Contains(out, s) {
			t.Errorf("power table missing %q", s)
		}
	}
}

func TestAPITable(t *testing.T) {
	if !strings.Contains(APITable().Render(), "mapGeoBroadcastFeed") {
		t.Error("Table 1 incomplete")
	}
}

func TestTestbedSmoke(t *testing.T) {
	cfg := DefaultTestbedConfig()
	cfg.PopConfig.TargetConcurrent = 50
	// A 3-second watch cannot complete a 3.6-second HLS segment; keep the
	// smoke test on the RTMP path.
	cfg.HLSViewerThreshold = 1 << 30
	tb, err := StartTestbed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if tb.APIBaseURL() == "" || len(tb.RTMPServerNames()) == 0 {
		t.Error("testbed endpoints missing")
	}
	rec, err := WatchBroadcast(WireSession{
		APIBaseURL: tb.APIBaseURL(),
		Session:    "smoke",
		WatchFor:   3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Metrics.Delivered == 0 {
		t.Error("no media in smoke session")
	}
}
