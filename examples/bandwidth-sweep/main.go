// Bandwidth-sweep: reproduce the §5.1 QoE study — thousands of automated
// 60-second Teleport sessions with tc-style bandwidth limits — and print
// Figures 3, 4 and 5. The transport is simulated (fast tier) but the
// playback accounting is the same engine the wire-level player uses.
package main

import (
	"fmt"
	"time"

	"periscope"
)

func main() {
	cfg := periscope.DefaultQoEStudyConfig()
	cfg.UnlimitedSessions = 1000
	cfg.SessionsPerLimit = 50
	cfg.PopTarget = 1500

	fmt.Printf("Running %d unlimited + %d limited sessions...\n",
		cfg.UnlimitedSessions, cfg.SessionsPerLimit*len(cfg.LimitsMbps))
	start := time.Now()
	res := periscope.RunQoEStudy(cfg)
	fmt.Printf("done in %v (%d session records)\n\n",
		time.Since(start).Round(time.Millisecond), len(res.Records))

	rtmp, hls := 0, 0
	for _, r := range res.Records {
		if r.BandwidthMbps != 0 {
			continue
		}
		if r.Protocol == "RTMP" {
			rtmp++
		} else {
			hls++
		}
	}
	fmt.Printf("unlimited sessions: %d RTMP, %d HLS (paper: 1796 / 1586)\n\n", rtmp, hls)

	fmt.Println(res.Figure3a.ASCII())
	fmt.Println(res.Figure3b.ASCII())
	fmt.Println(res.Figure4a.ASCII())
	fmt.Println(res.Figure4b.ASCII())
	fmt.Println(res.Figure5.ASCII())
}
