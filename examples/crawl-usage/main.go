// Crawl-usage: reproduce the §4 usage-pattern study in virtual time —
// deep crawls with recursive map zooming (Fig. 1) and a targeted crawl
// tracking broadcast lifetimes and viewership (Fig. 2) — then print the
// figures as ASCII plots.
package main

import (
	"fmt"
	"log"
	"time"

	"periscope"
)

func main() {
	cfg := periscope.DefaultUsageStudyConfig()
	cfg.Concurrent = 1000 // ~1:40 scale of the live service
	cfg.DeepCrawls = 3    // different times of day
	cfg.CampaignDur = 2 * time.Hour

	fmt.Println("Running the usage-pattern study (virtual time)...")
	start := time.Now()
	res, err := periscope.RunUsageStudy(cfg)
	if err != nil {
		log.Fatalf("usage study: %v", err)
	}
	fmt.Printf("done in %v of wall time\n\n", time.Since(start).Round(time.Millisecond))

	for i, dc := range res.DeepCrawls {
		fmt.Printf("deep crawl %d: %d areas queried, %d broadcasts found, %d rate-limited requests, top-half share %.0f%%\n",
			i+1, len(dc.Areas), dc.TotalFound(), dc.RateLimited, dc.TopAreaShare(0.5)*100)
	}
	fmt.Printf("targeted crawl: %d broadcasts tracked, %d completed during the campaign, first round took %v\n\n",
		len(res.Targeted.Records), len(res.Targeted.CompletedRecords()), res.Targeted.RoundDuration)

	fmt.Println(res.Figure1a.ASCII())
	fmt.Println(res.Figure1b.ASCII())
	fmt.Println(res.Figure2a.ASCII())
	fmt.Println(res.Figure2b.ASCII())
}
