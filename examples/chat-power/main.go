// Chat-power: reproduce the §5.1/§5.3 chat findings over the real wire —
// join a busy chat room twice (display off, then on) and measure the
// traffic, then feed the scenarios through the power model (Fig. 7).
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"periscope"
	"periscope/internal/chat"
)

func main() {
	// A busy chat room on a real WebSocket server with an S3-like avatar
	// store behind it.
	srv := chat.NewServer()
	room := srv.Room("demo", chat.RoomConfig{
		Chatters: 40, MsgPerChatterSec: 1.0, AvatarFrac: 0.7, Seed: 7,
	})
	defer room.Close()
	hs := startHTTP(srv)
	defer hs.close()

	measure := func(display bool) chat.ClientStats {
		c, err := chat.Join(chat.ClientConfig{
			ChatURL:       "ws" + strings.TrimPrefix(hs.url, "http") + "/chat/demo",
			AvatarBaseURL: hs.url,
			DisplayChat:   display,
		})
		if err != nil {
			log.Fatalf("joining chat: %v", err)
		}
		defer c.Close()
		time.Sleep(4 * time.Second)
		return c.Stats()
	}

	off := measure(false)
	on := measure(true)
	rate := func(s chat.ClientStats) float64 {
		return float64(s.WSBytes+s.AvatarBytes) * 8 / 4 / 1000
	}
	fmt.Println("Chat traffic over 4 s of real wire time:")
	fmt.Printf("  chat off: %4d messages, %3d avatars, %8.1f kbps\n",
		off.MessagesReceived, off.AvatarDownloads, rate(off))
	fmt.Printf("  chat on:  %4d messages, %3d avatars, %8.1f kbps (%d re-downloads: no cache)\n",
		on.MessagesReceived, on.AvatarDownloads, rate(on), on.DuplicateAvatarDownloads)
	fmt.Printf("  paper: aggregate rate grew from ~500 kbps to 3.5 Mbps with chat on\n\n")

	fmt.Println(periscope.RunPowerStudy().Render())
}

// httpHandle is a loopback HTTP server for the chat demo.
type httpHandle struct {
	url   string
	close func()
}

func startHTTP(h http.Handler) *httpHandle {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return &httpHandle{
		url:   "http://" + ln.Addr().String(),
		close: func() { srv.Close() },
	}
}
