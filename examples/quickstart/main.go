// Quickstart: launch the Periscope-like testbed on loopback, watch one
// live broadcast over real RTMP for a few seconds (the app's Teleport
// flow: API → accessVideo → play), and print the QoE metrics the app
// would report via playbackMeta.
package main

import (
	"fmt"
	"log"
	"time"

	"periscope"
)

func main() {
	cfg := periscope.DefaultTestbedConfig()
	cfg.PopConfig.TargetConcurrent = 80
	tb, err := periscope.StartTestbed(cfg)
	if err != nil {
		log.Fatalf("starting testbed: %v", err)
	}
	defer tb.Close()

	fmt.Println("Periscope-like service running:")
	fmt.Printf("  API:  %s\n", tb.APIBaseURL())
	fmt.Printf("  Chat: %s\n", tb.ChatBaseURL())
	fmt.Println("  RTMP ingest fleet:")
	for name, rev := range tb.RTMPServerNames() {
		fmt.Printf("    %-34s -> %s\n", name, rev)
	}

	fmt.Println("\nTeleporting to a random broadcast and watching for 5 s...")
	rec, err := periscope.WatchBroadcast(periscope.WireSession{
		APIBaseURL: tb.APIBaseURL(),
		Session:    "quickstart",
		WatchFor:   5 * time.Second,
	})
	if err != nil {
		log.Fatalf("viewing session: %v", err)
	}

	m := rec.Metrics
	fmt.Printf("\nSession report (broadcast %s, %s, %d viewers):\n",
		rec.BroadcastID, rec.Protocol, rec.Viewers)
	fmt.Printf("  join time:        %v\n", m.JoinTime.Round(time.Millisecond))
	fmt.Printf("  play time:        %v\n", m.PlayTime.Round(time.Millisecond))
	fmt.Printf("  stalls:           %d (%.3f stall ratio)\n", m.StallCount, m.StallRatio)
	fmt.Printf("  playback latency: %v\n", m.PlaybackLatency.Round(time.Millisecond))
	fmt.Printf("  delivery latency: %v (from embedded NTP timestamps)\n",
		m.DeliveryLatency.Round(time.Millisecond))
	fmt.Printf("  media chunks:     %d\n", m.Delivered)
}
