package api

import "sync/atomic"

// EndpointMetrics counts one endpoint's traffic. All fields are atomic so
// the hot path never takes a lock.
type EndpointMetrics struct {
	Requests atomic.Int64
	Errors   atomic.Int64 // responses with status >= 400
}

// Metrics aggregates gateway counters. The per-endpoint table is built
// once at server construction from the endpoint registry and never
// mutated, so lookups are lock-free map reads.
type Metrics struct {
	Requests    atomic.Int64 // requests that reached the endpoint layer
	Errors      atomic.Int64 // 4xx/5xx from the endpoint layer
	RateLimited atomic.Int64 // requests rejected with 429
	Panics      atomic.Int64 // handler panics recovered
	byPath      map[string]*EndpointMetrics
}

func newMetrics(names []string) *Metrics {
	m := &Metrics{byPath: make(map[string]*EndpointMetrics, len(names))}
	for _, n := range names {
		m.byPath[PathPrefix+n] = &EndpointMetrics{}
	}
	return m
}

func (m *Metrics) endpoint(path string) *EndpointMetrics { return m.byPath[path] }

// EndpointSnapshot is a point-in-time copy of one endpoint's counters.
type EndpointSnapshot struct {
	Requests int64
	Errors   int64
}

// MetricsSnapshot is a point-in-time copy of the gateway counters.
type MetricsSnapshot struct {
	Requests    int64
	Errors      int64
	RateLimited int64
	Panics      int64
	PerEndpoint map[string]EndpointSnapshot // keyed by command name
}

// Snapshot copies the counters for reporting.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Requests:    m.Requests.Load(),
		Errors:      m.Errors.Load(),
		RateLimited: m.RateLimited.Load(),
		Panics:      m.Panics.Load(),
		PerEndpoint: make(map[string]EndpointSnapshot, len(m.byPath)),
	}
	for path, em := range m.byPath {
		s.PerEndpoint[path[len(PathPrefix):]] = EndpointSnapshot{
			Requests: em.Requests.Load(),
			Errors:   em.Errors.Load(),
		}
	}
	return s
}
