package api

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"periscope/internal/broadcastmodel"
)

// --- structured error envelope ---

func TestStructuredErrorCodes(t *testing.T) {
	cfg := broadcastmodel.DefaultConfig()
	cfg.TargetConcurrent = 200
	pop := broadcastmodel.New(cfg, time.Date(2016, 4, 1, 15, 0, 0, 0, time.UTC))
	scfg := DefaultServerConfig()
	scfg.RateLimit = 0
	scfg.MaxBroadcastIDs = 5
	srv := NewServer(pop, stubVideo{}, scfg)
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	c := NewClient(hs.URL, "sess", nil)

	// Invalid area → invalid_area from the endpoint's Validate.
	_, err := c.MapGeoBroadcastFeed(MapGeoBroadcastFeedRequest{P1Lat: 50, P1Lng: 0, P2Lat: 10, P2Lng: 10})
	assertCode(t, err, CodeInvalidArea, http.StatusBadRequest)

	// Unbounded ID list → too_many_ids from the handler's config cap.
	ids := make([]string, 6)
	for i := range ids {
		ids[i] = "id" + strconv.Itoa(i)
	}
	_, err = c.GetBroadcasts(ids)
	assertCode(t, err, CodeTooManyIDs, http.StatusBadRequest)

	// A capped list of unknown IDs is fine (skipped, not an error).
	if _, err := c.GetBroadcasts(ids[:5]); err != nil {
		t.Errorf("5 ids within cap: %v", err)
	}

	// Missing broadcast → not_found.
	_, err = c.AccessVideo("missing")
	assertCode(t, err, CodeNotFound, http.StatusNotFound)

	// Empty broadcast_id → bad_request from the endpoint's Validate.
	_, err = c.AccessVideo("")
	assertCode(t, err, CodeBadRequest, http.StatusBadRequest)

	// Malformed JSON body → bad_request from the decode layer.
	resp, err := hs.Client().Post(hs.URL+"/api/v2/teleport", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", resp.StatusCode)
	}
}

func assertCode(t *testing.T, err error, code string, status int) {
	t.Helper()
	var apiErr *Error
	if !errors.As(err, &apiErr) {
		t.Errorf("want *Error with code %s, got %v", code, err)
		return
	}
	if apiErr.Code != code || apiErr.HTTPStatus != status {
		t.Errorf("got code=%s status=%d, want %s/%d", apiErr.Code, apiErr.HTTPStatus, code, status)
	}
}

// --- 429 end-to-end: Retry-After emitted, client backs off and succeeds ---

func TestRateLimit429EndToEnd(t *testing.T) {
	cfg := broadcastmodel.DefaultConfig()
	cfg.TargetConcurrent = 200
	pop := broadcastmodel.New(cfg, time.Date(2016, 4, 1, 15, 0, 0, 0, time.UTC))
	scfg := DefaultServerConfig()
	scfg.RateLimit = 1
	scfg.Burst = 2
	srv := NewServer(pop, nil, scfg)
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)

	// First verify the raw 429 carries the Retry-After header.
	raw := NewClient(hs.URL, "raw-sess", nil)
	var sawRetryAfter time.Duration
	for i := 0; i < 10; i++ {
		_, err := raw.Teleport()
		var rl ErrRateLimited
		if errors.As(err, &rl) {
			sawRetryAfter = rl.RetryAfter
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if sawRetryAfter <= 0 {
		t.Fatal("429 did not carry a positive Retry-After")
	}

	// Now a retrying client: its Sleep hook advances the population's
	// virtual clock (the limiter's clock), so each backoff refills the
	// bucket and every call must eventually succeed within the attempt
	// budget.
	c := NewClient(hs.URL, "retry-sess", nil).WithRetry(RetryPolicy{
		MaxAttempts: 5,
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  5 * time.Second,
		Jitter:      0.2,
	})
	var slept []time.Duration
	c.Sleep = func(d time.Duration) {
		slept = append(slept, d)
		pop.Advance(d)
	}
	for i := 0; i < 10; i++ {
		if _, err := c.Teleport(); err != nil {
			t.Fatalf("call %d failed despite retry budget: %v", i, err)
		}
	}
	if c.RateLimited() == 0 {
		t.Error("client never saw a 429 — limiter not exercised")
	}
	if len(slept) == 0 {
		t.Fatal("client never backed off")
	}
	// Backoff must honour the server hint: with rate 1/s the hint is 1s,
	// so every sleep after a 429 must be at least that.
	for i, d := range slept {
		if d < time.Second {
			t.Errorf("sleep %d = %v, shorter than the 1s Retry-After hint", i, d)
		}
	}
	if got := srv.Metrics().RateLimited; got == 0 {
		t.Error("server metrics did not count 429s")
	}
}

// --- middleware ordering ---

func TestChainOrder(t *testing.T) {
	var order []string
	probe := func(name string) Middleware {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				order = append(order, name)
				next.ServeHTTP(w, r)
			})
		}
	}
	h := Chain(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		order = append(order, "handler")
	}), probe("outer"), probe("middle"), probe("inner"))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/x", nil))
	want := []string{"outer", "middle", "inner", "handler"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

type panicVideo struct{ calls atomic.Int64 }

func (p *panicVideo) AccessVideo(id string) (AccessVideoResponse, error) {
	p.calls.Add(1)
	panic("video plane exploded")
}

// TestRecoveryOutermost asserts a handler panic is converted into the
// structured 500 envelope and the server keeps serving.
func TestRecoveryOutermost(t *testing.T) {
	cfg := broadcastmodel.DefaultConfig()
	cfg.TargetConcurrent = 200
	pop := broadcastmodel.New(cfg, time.Date(2016, 4, 1, 15, 0, 0, 0, time.UTC))
	scfg := DefaultServerConfig()
	scfg.RateLimit = 0
	srv := NewServer(pop, &panicVideo{}, scfg)
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	c := NewClient(hs.URL, "sess", nil)

	_, err := c.AccessVideo("boom")
	assertCode(t, err, CodeInternal, http.StatusInternalServerError)
	if got := srv.Metrics().Panics; got != 1 {
		t.Errorf("Panics = %d, want 1", got)
	}
	// The gateway survived the panic.
	if _, err := c.Teleport(); err != nil {
		t.Errorf("server dead after panic: %v", err)
	}
}

type countingVideo struct{ calls atomic.Int64 }

func (v *countingVideo) AccessVideo(id string) (AccessVideoResponse, error) {
	v.calls.Add(1)
	return AccessVideoResponse{Protocol: "RTMP", StreamName: id}, nil
}

// TestRateLimitBeforeHandler asserts a 429 is decided before the handler
// runs: a limited request must not reach the video provider.
func TestRateLimitBeforeHandler(t *testing.T) {
	cfg := broadcastmodel.DefaultConfig()
	cfg.TargetConcurrent = 200
	pop := broadcastmodel.New(cfg, time.Date(2016, 4, 1, 15, 0, 0, 0, time.UTC))
	video := &countingVideo{}
	scfg := DefaultServerConfig()
	scfg.RateLimit = 0.001 // effectively no refill within the test
	scfg.Burst = 1
	srv := NewServer(pop, video, scfg)
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	c := NewClient(hs.URL, "sess", nil)

	if _, err := c.AccessVideo("someid"); err != nil {
		t.Fatal(err)
	}
	_, err := c.AccessVideo("someid")
	var rl ErrRateLimited
	if !errors.As(err, &rl) {
		t.Fatalf("second call: want ErrRateLimited, got %v", err)
	}
	if got := video.calls.Load(); got != 1 {
		t.Errorf("handler ran %d times; the rate-limited request reached it", got)
	}
}

// --- metrics ---

func TestMetricsPerEndpoint(t *testing.T) {
	cfg := broadcastmodel.DefaultConfig()
	cfg.TargetConcurrent = 200
	pop := broadcastmodel.New(cfg, time.Date(2016, 4, 1, 15, 0, 0, 0, time.UTC))
	scfg := DefaultServerConfig()
	scfg.RateLimit = 0
	srv := NewServer(pop, stubVideo{}, scfg)
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	c := NewClient(hs.URL, "sess", nil)

	c.Teleport()
	c.Teleport()
	c.AccessVideo("missing") // 404 → error counted
	m := srv.Metrics()
	if m.PerEndpoint["teleport"].Requests != 2 {
		t.Errorf("teleport requests = %d, want 2", m.PerEndpoint["teleport"].Requests)
	}
	if m.PerEndpoint["accessVideo"].Errors != 1 {
		t.Errorf("accessVideo errors = %d, want 1", m.PerEndpoint["accessVideo"].Errors)
	}
	if m.Requests != 3 {
		t.Errorf("total requests = %d, want 3", m.Requests)
	}
}
