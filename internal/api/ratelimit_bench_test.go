package api

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// globalMutexLimiter is the pre-gateway limiter design — one mutex and one
// bucket map for all sessions — kept here as the contention baseline the
// sharded limiter is measured against.
type globalMutexLimiter struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	buckets map[string]*rlBucket
}

func (g *globalMutexLimiter) allow(key string, now time.Time) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	b, ok := g.buckets[key]
	if !ok {
		b = &rlBucket{tokens: g.burst, lastFill: now}
		g.buckets[key] = b
	}
	b.tokens += g.rate * now.Sub(b.lastFill).Seconds()
	if b.tokens > g.burst {
		b.tokens = g.burst
	}
	b.lastFill = now
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// BenchmarkRateLimiterSharded measures Take under concurrent sessions,
// each goroutine a distinct key (a distinct logged-in session).
func BenchmarkRateLimiterSharded(b *testing.B) {
	for _, par := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("sessions-%d", par), func(b *testing.B) {
			rl := NewShardedRateLimiter(RateLimiterConfig{Rate: 1e9, Burst: 1e9, Shards: 32, IdleTTL: time.Minute})
			// Fixed clock, like the baseline below, so the comparison is
			// pure table contention, not time.Now cost.
			now := time.Date(2016, 4, 1, 12, 0, 0, 0, time.UTC)
			rl.SetNowFunc(func() time.Time { return now })
			var n int64
			var mu sync.Mutex
			b.SetParallelism(par)
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				n++
				key := fmt.Sprintf("sess-%d", n)
				mu.Unlock()
				for pb.Next() {
					if !rl.Allow(key) {
						b.Error("denied under huge budget")
						return
					}
				}
			})
		})
	}
}

// BenchmarkRateLimiterGlobalMutex is the same workload through the old
// single-mutex design.
func BenchmarkRateLimiterGlobalMutex(b *testing.B) {
	for _, par := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("sessions-%d", par), func(b *testing.B) {
			gl := &globalMutexLimiter{rate: 1e9, burst: 1e9, buckets: map[string]*rlBucket{}}
			now := time.Date(2016, 4, 1, 12, 0, 0, 0, time.UTC)
			var n int64
			var mu sync.Mutex
			b.SetParallelism(par)
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				n++
				key := fmt.Sprintf("sess-%d", n)
				mu.Unlock()
				for pb.Next() {
					if !gl.allow(key, now) {
						b.Error("denied under huge budget")
						return
					}
				}
			})
		})
	}
}
