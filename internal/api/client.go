package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// ErrRateLimited is returned when the server answers HTTP 429; the crawler
// paces itself on it.
type ErrRateLimited struct{}

func (ErrRateLimited) Error() string { return "api: HTTP 429 Too Many Requests" }

// Client is the app-side API client. Crawlers create one per logged-in
// session (distinct session tokens get distinct rate-limit buckets).
type Client struct {
	BaseURL string
	Session string
	HTTP    *http.Client
	// Requests counts issued API calls; RateLimited counts 429 responses.
	Requests    int
	RateLimited int
}

// NewClient creates a client for the API at baseURL with a session token.
func NewClient(baseURL, session string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{BaseURL: baseURL, Session: session, HTTP: hc}
}

func (c *Client) post(name string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	httpReq, err := http.NewRequest(http.MethodPost, c.BaseURL+"/api/v2/"+name, bytes.NewReader(body))
	if err != nil {
		return err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpReq.Header.Set(SessionHeader, c.Session)
	c.Requests++
	httpResp, err := c.HTTP.Do(httpReq)
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return err
	}
	switch httpResp.StatusCode {
	case http.StatusOK:
		if resp == nil {
			return nil
		}
		return json.Unmarshal(data, resp)
	case http.StatusTooManyRequests:
		c.RateLimited++
		return ErrRateLimited{}
	default:
		var e ErrorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("api: %s: %s (HTTP %d)", name, e.Error, httpResp.StatusCode)
		}
		return fmt.Errorf("api: %s: HTTP %d", name, httpResp.StatusCode)
	}
}

// MapGeoBroadcastFeed queries the broadcasts visible in an area.
func (c *Client) MapGeoBroadcastFeed(req MapGeoBroadcastFeedRequest) (MapGeoBroadcastFeedResponse, error) {
	var resp MapGeoBroadcastFeedResponse
	err := c.post("mapGeoBroadcastFeed", req, &resp)
	return resp, err
}

// GetBroadcasts fetches descriptions (with viewer counts) for IDs.
func (c *Client) GetBroadcasts(ids []string) (GetBroadcastsResponse, error) {
	var resp GetBroadcastsResponse
	err := c.post("getBroadcasts", GetBroadcastsRequest{BroadcastIDs: ids}, &resp)
	return resp, err
}

// PlaybackMeta uploads end-of-session statistics.
func (c *Client) PlaybackMeta(stats PlaybackMeta) error {
	return c.post("playbackMeta", PlaybackMetaRequest{Stats: stats}, nil)
}

// AccessVideo resolves the stream endpoint for a broadcast.
func (c *Client) AccessVideo(id string) (AccessVideoResponse, error) {
	var resp AccessVideoResponse
	err := c.post("accessVideo", AccessVideoRequest{BroadcastID: id}, &resp)
	return resp, err
}

// Teleport returns a random live broadcast id.
func (c *Client) Teleport() (string, error) {
	var resp TeleportResponse
	if err := c.post("teleport", struct{}{}, &resp); err != nil {
		return "", err
	}
	return resp.BroadcastID, nil
}
