package api

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// ErrRateLimited is returned when the server answers HTTP 429; the crawler
// paces itself on it. RetryAfter carries the server's Retry-After hint
// (zero when the server sent none).
type ErrRateLimited struct {
	RetryAfter time.Duration
}

func (ErrRateLimited) Error() string { return "api: HTTP 429 Too Many Requests" }

// RetryPolicy controls the client's 429 handling: exponential backoff with
// jitter, always at least the server's Retry-After hint. The zero value
// disables retries (one attempt), which is what virtual-time crawlers
// want — they pace themselves through the population clock instead of
// sleeping wall time.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, including the first.
	MaxAttempts int
	// BaseBackoff doubles per retry up to MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Jitter adds up to this fraction of the computed backoff (0.25 →
	// +0-25%), de-synchronizing herds of clients that got limited
	// together.
	Jitter float64
}

// DefaultRetryPolicy suits wire-tier sessions running in real time.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseBackoff: 200 * time.Millisecond, MaxBackoff: 3 * time.Second, Jitter: 0.25}
}

// backoffFor computes the wait before retry number `retry` (0-based),
// honouring the server hint. Doubling stops at the cap (or an hour when
// uncapped) so a deep retry index cannot overflow the duration.
func (p RetryPolicy) backoffFor(retry int, serverHint time.Duration) time.Duration {
	d := p.BaseBackoff
	for i := 0; i < retry; i++ {
		if (p.MaxBackoff > 0 && d >= p.MaxBackoff) || d > time.Hour {
			break
		}
		d *= 2
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if serverHint > d {
		d = serverHint
	}
	if p.Jitter > 0 && d > 0 {
		d += time.Duration(rand.Float64() * p.Jitter * float64(d))
	}
	return d
}

// defaultTransport reuses connections across all clients of a process:
// the crawler's four sessions and a bench's dozens of goroutines each
// keep their sockets warm instead of redialing per request.
var defaultTransport = &http.Transport{
	MaxIdleConns:        256,
	MaxIdleConnsPerHost: 64,
	IdleConnTimeout:     90 * time.Second,
}

// CloseIdleConnections drops the shared transport's idle connections.
// The warm sockets are a feature for the life of a process, but their
// readLoop/writeLoop goroutines would read as leaks to the leakcheck
// TestMain harness — test binaries call this at teardown.
func CloseIdleConnections() { defaultTransport.CloseIdleConnections() }

// Client is the app-side API client, built over the same typed endpoint
// definitions the server mounts. Crawlers create one per logged-in
// session (distinct session tokens get distinct rate-limit buckets).
type Client struct {
	BaseURL string
	Session string
	HTTP    *http.Client
	// Retry enables 429-aware retry with jittered backoff; the zero value
	// means a single attempt.
	Retry RetryPolicy
	// Sleep is the backoff clock, overridable in tests and virtual-time
	// setups; nil means time.Sleep.
	Sleep func(time.Duration)

	requests    atomic.Int64
	rateLimited atomic.Int64
}

// NewClient creates a client for the API at baseURL with a session token.
// A nil hc uses a shared keep-alive transport.
func NewClient(baseURL, session string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Transport: defaultTransport}
	}
	return &Client{BaseURL: baseURL, Session: session, HTTP: hc}
}

// WithRetry enables the given retry policy and returns the client.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	c.Retry = p
	return c
}

// Requests counts issued HTTP attempts (retries included).
func (c *Client) Requests() int { return int(c.requests.Load()) }

// RateLimited counts 429 responses received (retries included).
func (c *Client) RateLimited() int { return int(c.rateLimited.Load()) }

func (c *Client) sleep(d time.Duration) {
	if c.Sleep != nil {
		c.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Call issues one typed endpoint call: encode → POST → decode, with the
// client's retry policy applied to 429s. It is the only request path —
// every typed method goes through it, so client and server agree on
// paths, types, and the error envelope by construction.
func Call[Req, Resp any](c *Client, ep Endpoint[Req, Resp], req Req) (Resp, error) {
	var resp Resp
	attempts := c.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = c.do(ep.Name, req, &resp)
		var rl ErrRateLimited
		if !errors.As(err, &rl) || attempt+1 >= attempts {
			return resp, err
		}
		c.sleep(c.Retry.backoffFor(attempt, rl.RetryAfter))
	}
}

// do performs one HTTP attempt against the named endpoint.
func (c *Client) do(name string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	httpReq, err := http.NewRequest(http.MethodPost, c.BaseURL+PathPrefix+name, bytes.NewReader(body))
	if err != nil {
		return err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpReq.Header.Set(SessionHeader, c.Session)
	c.requests.Add(1)
	httpResp, err := c.HTTP.Do(httpReq)
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return err
	}
	switch httpResp.StatusCode {
	case http.StatusOK:
		if resp == nil {
			return nil
		}
		return json.Unmarshal(data, resp)
	case http.StatusTooManyRequests:
		c.rateLimited.Add(1)
		return ErrRateLimited{RetryAfter: parseRetryAfter(httpResp.Header.Get("Retry-After"))}
	default:
		var e ErrorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			code := e.Code
			if code == "" {
				code = CodeInternal
			}
			return &Error{HTTPStatus: httpResp.StatusCode, Code: code, Message: fmt.Sprintf("%s: %s", name, e.Error)}
		}
		return fmt.Errorf("api: %s: HTTP %d", name, httpResp.StatusCode)
	}
}

func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// MapGeoBroadcastFeed queries the broadcasts visible in an area.
func (c *Client) MapGeoBroadcastFeed(req MapGeoBroadcastFeedRequest) (MapGeoBroadcastFeedResponse, error) {
	return Call(c, MapGeoBroadcastFeedEndpoint, req)
}

// GetBroadcasts fetches descriptions (with viewer counts) for IDs.
func (c *Client) GetBroadcasts(ids []string) (GetBroadcastsResponse, error) {
	return Call(c, GetBroadcastsEndpoint, GetBroadcastsRequest{BroadcastIDs: ids})
}

// PlaybackMeta uploads end-of-session statistics.
func (c *Client) PlaybackMeta(stats PlaybackMeta) error {
	_, err := Call(c, PlaybackMetaEndpoint, PlaybackMetaRequest{Stats: stats})
	return err
}

// AccessVideo resolves the stream endpoint for a broadcast.
func (c *Client) AccessVideo(id string) (AccessVideoResponse, error) {
	return Call(c, AccessVideoEndpoint, AccessVideoRequest{BroadcastID: id})
}

// Teleport returns a random live broadcast id.
func (c *Client) Teleport() (string, error) {
	resp, err := Call(c, TeleportEndpoint, TeleportRequest{})
	return resp.BroadcastID, err
}
