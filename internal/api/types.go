// Package api is the typed endpoint gateway for the Periscope-style
// private JSON API of §3, Table 1: POST requests with JSON-encoded
// attributes to /api/v2/<apiRequest>.
//
// Every command is described once by a generic Endpoint[Req, Resp]
// definition (endpoint.go) that names the path, request/response types,
// and request-shape validation. The Server mounts handlers through these
// definitions — the endpoint layer owns decode → validate → handle →
// encode, so handlers are small typed functions — and the Client issues
// calls through the very same definitions, making the wire contract a
// single source of truth.
//
// Around the endpoints sits a composable middleware chain (middleware.go),
// applied outermost-first: panic recovery, POST-method enforcement,
// per-request context deadline, per-session auth keying, rate limiting,
// and metrics. Rate limiting is a sharded token-bucket table
// (ratelimit.go): keys hash to independent shards so concurrent sessions
// do not serialize on one lock, and idle buckets are evicted so the table
// stays bounded across long campaigns. Over-eager clients get the
// structured 429 envelope with a Retry-After hint — the behaviour that
// forced the crawler design of §4 — and the Client can retry with
// jittered backoff honouring that hint (RetryPolicy).
//
// Errors travel as a structured envelope (errors.go) with a stable code
// ("rate_limited", "too_many_ids", …) and message, decoded back into
// *Error on the client side.
//
// The commands the study relied on are implemented faithfully —
// mapGeoBroadcastFeed (map exploration with partial visibility),
// getBroadcasts (descriptions including viewer counts) and playbackMeta
// (end-of-session QoE statistics) — plus the supporting commands the app
// itself needs (accessVideo for stream URLs and teleport for
// random-broadcast discovery).
package api

import "time"

// BroadcastDesc is the description object returned for a broadcast.
type BroadcastDesc struct {
	ID                 string  `json:"id"`
	CreatedAt          string  `json:"created_at"` // RFC3339
	State              string  `json:"state"`      // RUNNING | ENDED
	Latitude           float64 `json:"latitude,omitempty"`
	Longitude          float64 `json:"longitude,omitempty"`
	LocationDisclosed  bool    `json:"location_disclosed"`
	AvailableForReplay bool    `json:"available_for_replay"`
	Region             string  `json:"region,omitempty"`
	// NumWatching is only populated by getBroadcasts.
	NumWatching int `json:"n_watching,omitempty"`
}

// StartTime parses the creation timestamp.
func (d BroadcastDesc) StartTime() (time.Time, error) {
	return time.Parse(time.RFC3339Nano, d.CreatedAt)
}

// MapGeoBroadcastFeedRequest queries broadcasts inside a rectangle; the
// crawler replays this request with modified coordinates.
type MapGeoBroadcastFeedRequest struct {
	P1Lat         float64 `json:"p1_lat"` // south
	P1Lng         float64 `json:"p1_lng"` // west
	P2Lat         float64 `json:"p2_lat"` // north
	P2Lng         float64 `json:"p2_lng"` // east
	IncludeReplay bool    `json:"include_replay"`
}

// MapGeoBroadcastFeedResponse lists broadcasts in the queried area.
type MapGeoBroadcastFeedResponse struct {
	Broadcasts []BroadcastDesc `json:"broadcasts"`
}

// GetBroadcastsRequest fetches descriptions for explicit broadcast IDs.
type GetBroadcastsRequest struct {
	BroadcastIDs []string `json:"broadcast_ids"`
}

// GetBroadcastsResponse carries the descriptions (including viewers).
type GetBroadcastsResponse struct {
	Broadcasts []BroadcastDesc `json:"broadcasts"`
}

// PlaybackMeta is the statistics blob the app posts when a viewing session
// ends. For RTMP sessions it includes stall durations and playback delay;
// after an HLS session the app reports only the number of stall events
// (§2) — the HLS-only fields are therefore zero for those sessions.
type PlaybackMeta struct {
	BroadcastID string `json:"broadcast_id"`
	Protocol    string `json:"protocol"` // RTMP | HLS
	// NStallEvents is reported for both protocols.
	NStallEvents int `json:"n_stall_events"`
	// AvgStallSec and PlaybackDelaySec are RTMP-only.
	AvgStallSec      float64 `json:"avg_stall_sec,omitempty"`
	PlaybackDelaySec float64 `json:"playback_delay_sec,omitempty"`
	PlayTimeSec      float64 `json:"play_time_sec"`
	StallTimeSec     float64 `json:"stall_time_sec,omitempty"`
}

// PlaybackMetaRequest wraps the stats upload.
type PlaybackMetaRequest struct {
	Stats PlaybackMeta `json:"stats"`
}

// PlaybackMetaResponse is the (empty) acknowledgement.
type PlaybackMetaResponse struct{}

// AccessVideoRequest asks where to fetch the stream for a broadcast.
type AccessVideoRequest struct {
	BroadcastID string `json:"broadcast_id"`
}

// AccessVideoResponse tells the app which protocol and endpoint to use:
// RTMP from a regional "EC2" server for unpopular casts, HLS from the CDN
// for popular ones (§5).
type AccessVideoResponse struct {
	Protocol   string `json:"protocol"` // RTMP | HLS
	RTMPAddr   string `json:"rtmp_addr,omitempty"`
	RTMPServer string `json:"rtmp_server,omitempty"` // vidman-…  DNS name
	StreamName string `json:"stream_name,omitempty"`
	HLSBaseURL string `json:"hls_base_url,omitempty"`
	ChatURL    string `json:"chat_url,omitempty"`
	// Replay marks a VOD replay of an ended broadcast (§5): the playlist
	// is ENDLIST from the start and live-only UI (chat, hearts) is off.
	Replay bool `json:"replay,omitempty"`
	// NumWatching lets the client log popularity at access time.
	NumWatching int `json:"n_watching"`
}

// TeleportRequest asks for a random live broadcast (the Teleport button);
// it carries no attributes.
type TeleportRequest struct{}

// TeleportResponse returns a random live broadcast id.
type TeleportResponse struct {
	BroadcastID string `json:"broadcast_id"`
}

// ErrorResponse is the JSON error envelope: a stable machine-readable
// code plus the human-readable message (kept in the legacy "error" field
// for compatibility with §3-era clients).
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}
