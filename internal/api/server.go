package api

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"periscope/internal/broadcastmodel"
	"periscope/internal/geo"
)

// SessionHeader carries the logged-in user's session token; the rate
// limiter keys on it.
const SessionHeader = "X-Periscope-Session"

// VideoAccessProvider resolves where a broadcast's stream can be fetched.
// The service layer implements it; API tests use a stub.
type VideoAccessProvider interface {
	AccessVideo(broadcastID string) (AccessVideoResponse, error)
}

// ServerConfig tunes the API endpoint.
type ServerConfig struct {
	// RateLimit is the sustained per-session request rate; Burst the
	// bucket depth. Zero rate disables limiting.
	RateLimit float64
	Burst     float64
	// MapVisibleCap bounds how many broadcasts one mapGeoBroadcastFeed
	// response reveals — the reason zooming in uncovers more broadcasts
	// and the deep crawl must recurse.
	MapVisibleCap int
	// Seed drives the teleport randomness.
	Seed int64
}

// DefaultServerConfig mirrors observed service behaviour.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{RateLimit: 2, Burst: 6, MapVisibleCap: 50, Seed: 1}
}

// Server is the Periscope-style API server.
type Server struct {
	Pop    *broadcastmodel.Population
	Video  VideoAccessProvider
	cfg    ServerConfig
	limit  *RateLimiter
	mux    *http.ServeMux
	rngMu  sync.Mutex
	rng    *rand.Rand
	metaMu sync.Mutex
	metas  []PlaybackMeta
}

// NewServer wires the API over a population. video may be nil (accessVideo
// then returns 503), letting usage-pattern studies run without the media
// plane.
func NewServer(pop *broadcastmodel.Population, video VideoAccessProvider, cfg ServerConfig) *Server {
	if cfg.MapVisibleCap <= 0 {
		cfg.MapVisibleCap = 50
	}
	s := &Server{
		Pop:   pop,
		Video: video,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.RateLimit > 0 {
		s.limit = NewRateLimiter(cfg.RateLimit, cfg.Burst)
		s.limit.SetNowFunc(func() time.Time { return pop.Now() })
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v2/mapGeoBroadcastFeed", s.handleMapGeo)
	mux.HandleFunc("/api/v2/getBroadcasts", s.handleGetBroadcasts)
	mux.HandleFunc("/api/v2/playbackMeta", s.handlePlaybackMeta)
	mux.HandleFunc("/api/v2/accessVideo", s.handleAccessVideo)
	mux.HandleFunc("/api/v2/teleport", s.handleTeleport)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.limit != nil && strings.HasPrefix(r.URL.Path, "/api/v2/") {
		key := r.Header.Get(SessionHeader)
		if key == "" {
			key = r.RemoteAddr
		}
		if !s.limit.Allow(key) {
			writeJSONError(w, http.StatusTooManyRequests, "Too many requests")
			return
		}
	}
	s.mux.ServeHTTP(w, r)
}

func writeJSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(ErrorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func decode[T any](w http.ResponseWriter, r *http.Request, into *T) bool {
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		writeJSONError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return false
	}
	return true
}

func (s *Server) desc(b *broadcastmodel.Broadcast, withViewers bool) BroadcastDesc {
	d := BroadcastDesc{
		ID:                 b.ID,
		CreatedAt:          b.Start.UTC().Format(time.RFC3339Nano),
		State:              "RUNNING",
		LocationDisclosed:  b.LocationDisclosed,
		AvailableForReplay: b.AvailableForReplay,
		Region:             b.Region,
	}
	if b.LocationDisclosed {
		d.Latitude = b.Location.Lat
		d.Longitude = b.Location.Lon
	}
	if withViewers {
		d.NumWatching = b.ViewersAt(s.Pop.Now())
	}
	return d
}

func (s *Server) handleMapGeo(w http.ResponseWriter, r *http.Request) {
	var req MapGeoBroadcastFeedRequest
	if !decode(w, r, &req) {
		return
	}
	rect := geo.Rect{South: req.P1Lat, West: req.P1Lng, North: req.P2Lat, East: req.P2Lng}
	if !rect.Valid() {
		writeJSONError(w, http.StatusBadRequest, "invalid area")
		return
	}
	// The map reveals only the top-ranked broadcasts per query; zooming
	// into a smaller area (fewer broadcasts inside) uncovers the rest.
	in := s.Pop.InArea(rect)
	if len(in) > s.cfg.MapVisibleCap {
		in = in[:s.cfg.MapVisibleCap]
	}
	resp := MapGeoBroadcastFeedResponse{}
	for _, b := range in {
		resp.Broadcasts = append(resp.Broadcasts, s.desc(b, false))
	}
	// The crawler sets include_replay=false "to only discover live
	// broadcasts"; the app's default query also surfaces replays.
	if req.IncludeReplay {
		replays := s.Pop.ReplayableInArea(rect)
		budget := s.cfg.MapVisibleCap - len(resp.Broadcasts)
		for i, b := range replays {
			if i >= budget {
				break
			}
			d := s.desc(b, false)
			d.State = "ENDED"
			resp.Broadcasts = append(resp.Broadcasts, d)
		}
	}
	writeJSON(w, resp)
}

func (s *Server) handleGetBroadcasts(w http.ResponseWriter, r *http.Request) {
	var req GetBroadcastsRequest
	if !decode(w, r, &req) {
		return
	}
	resp := GetBroadcastsResponse{}
	for _, id := range req.BroadcastIDs {
		if b, ok := s.Pop.Get(id); ok {
			resp.Broadcasts = append(resp.Broadcasts, s.desc(b, true))
		}
	}
	writeJSON(w, resp)
}

func (s *Server) handlePlaybackMeta(w http.ResponseWriter, r *http.Request) {
	var req PlaybackMetaRequest
	if !decode(w, r, &req) {
		return
	}
	s.metaMu.Lock()
	s.metas = append(s.metas, req.Stats)
	s.metaMu.Unlock()
	writeJSON(w, struct{}{})
}

// PlaybackMetas returns all statistics uploads received so far.
func (s *Server) PlaybackMetas() []PlaybackMeta {
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	return append([]PlaybackMeta(nil), s.metas...)
}

func (s *Server) handleAccessVideo(w http.ResponseWriter, r *http.Request) {
	var req AccessVideoRequest
	if !decode(w, r, &req) {
		return
	}
	if s.Video == nil {
		writeJSONError(w, http.StatusServiceUnavailable, "video plane not running")
		return
	}
	resp, err := s.Video.AccessVideo(req.BroadcastID)
	if err != nil {
		writeJSONError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, resp)
}

func (s *Server) handleTeleport(w http.ResponseWriter, r *http.Request) {
	s.rngMu.Lock()
	b := s.Pop.Teleport(s.rng)
	s.rngMu.Unlock()
	if b == nil {
		writeJSONError(w, http.StatusNotFound, "no live broadcasts")
		return
	}
	writeJSON(w, TeleportResponse{BroadcastID: b.ID})
}
