package api

import (
	"context"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"periscope/internal/broadcastmodel"
	"periscope/internal/geo"
)

// SessionHeader carries the logged-in user's session token; the rate
// limiter keys on it.
const SessionHeader = "X-Periscope-Session"

// VideoAccessProvider resolves where a broadcast's stream can be fetched.
// The service layer implements it; API tests use a stub.
type VideoAccessProvider interface {
	AccessVideo(broadcastID string) (AccessVideoResponse, error)
}

// ServerConfig tunes the API gateway.
type ServerConfig struct {
	// RateLimit is the sustained per-session request rate; Burst the
	// bucket depth. Zero rate disables limiting.
	RateLimit float64
	Burst     float64
	// RateLimitShards is the limiter's bucket-table shard count
	// (default 32).
	RateLimitShards int
	// RateLimitIdleTTL evicts per-session buckets idle this long
	// (default 5 minutes).
	RateLimitIdleTTL time.Duration
	// MapVisibleCap bounds how many broadcasts one mapGeoBroadcastFeed
	// response reveals — the reason zooming in uncovers more broadcasts
	// and the deep crawl must recurse.
	MapVisibleCap int
	// MaxBroadcastIDs caps the ids accepted per getBroadcasts request
	// (default 100); larger lists get a too_many_ids error.
	MaxBroadcastIDs int
	// RequestTimeout bounds each request's context deadline (default 10s).
	RequestTimeout time.Duration
	// Seed drives the teleport randomness.
	Seed int64
}

// DefaultServerConfig mirrors observed service behaviour.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		RateLimit:        2,
		Burst:            6,
		RateLimitShards:  32,
		RateLimitIdleTTL: 5 * time.Minute,
		MapVisibleCap:    50,
		MaxBroadcastIDs:  100,
		RequestTimeout:   10 * time.Second,
		Seed:             1,
	}
}

// Server is the Periscope-style API gateway: the five Table-1 endpoints
// mounted through the typed registry, wrapped by the middleware chain
// (recovery, method check, request deadline, session keying, rate
// limiting, metrics).
type Server struct {
	Pop     *broadcastmodel.Population
	Video   VideoAccessProvider
	cfg     ServerConfig
	limiter *RateLimiter
	metrics *Metrics
	handler http.Handler
	rngMu   sync.Mutex
	rng     *rand.Rand
	metaMu  sync.Mutex
	metas   []PlaybackMeta
}

// NewServer wires the API over a population. video may be nil (accessVideo
// then returns 503), letting usage-pattern studies run without the media
// plane.
func NewServer(pop *broadcastmodel.Population, video VideoAccessProvider, cfg ServerConfig) *Server {
	if cfg.MapVisibleCap <= 0 {
		cfg.MapVisibleCap = 50
	}
	if cfg.MaxBroadcastIDs <= 0 {
		cfg.MaxBroadcastIDs = 100
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	s := &Server{
		Pop:     pop,
		Video:   video,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		metrics: newMetrics(EndpointNames()),
	}
	if cfg.RateLimit > 0 {
		s.limiter = NewShardedRateLimiter(RateLimiterConfig{
			Rate:    cfg.RateLimit,
			Burst:   cfg.Burst,
			Shards:  cfg.RateLimitShards,
			IdleTTL: cfg.RateLimitIdleTTL,
		})
		s.limiter.SetNowFunc(func() time.Time { return pop.Now() })
	}

	mux := http.NewServeMux()
	mount(mux, MapGeoBroadcastFeedEndpoint, s.mapGeo)
	mount(mux, GetBroadcastsEndpoint, s.getBroadcasts)
	mount(mux, PlaybackMetaEndpoint, s.playbackMeta)
	mount(mux, AccessVideoEndpoint, s.accessVideo)
	mount(mux, TeleportEndpoint, s.teleport)

	s.handler = Chain(mux,
		Recovery(func(any) { s.metrics.Panics.Add(1) }),
		RequirePOST(),
		RequestContext(cfg.RequestTimeout),
		SessionAuth(),
		RateLimit(s.limiter, s.metrics),
		CollectMetrics(s.metrics),
	)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// Metrics returns a snapshot of the gateway counters.
func (s *Server) Metrics() MetricsSnapshot { return s.metrics.Snapshot() }

// Limiter exposes the rate limiter (nil when limiting is disabled) so the
// service layer and tests can inspect the bucket table.
func (s *Server) Limiter() *RateLimiter { return s.limiter }

// desc renders a broadcast description. A non-zero viewersNow samples the
// audience size at that instant; callers hoist Pop.Now() out of their
// loops so a batch request takes the population clock lock once, not once
// per id.
func (s *Server) desc(b *broadcastmodel.Broadcast, viewersNow time.Time) BroadcastDesc {
	d := BroadcastDesc{
		ID:                 b.ID,
		CreatedAt:          b.StartRFC3339(),
		State:              "RUNNING",
		LocationDisclosed:  b.LocationDisclosed,
		AvailableForReplay: b.AvailableForReplay,
		Region:             b.Region,
	}
	if b.LocationDisclosed {
		d.Latitude = b.Location.Lat
		d.Longitude = b.Location.Lon
	}
	if !viewersNow.IsZero() {
		d.NumWatching = b.ViewersAt(viewersNow)
	}
	return d
}

func (s *Server) mapGeo(_ context.Context, req *MapGeoBroadcastFeedRequest) (MapGeoBroadcastFeedResponse, *Error) {
	rect := geo.Rect{South: req.P1Lat, West: req.P1Lng, North: req.P2Lat, East: req.P2Lng}
	// The map reveals only the top-ranked broadcasts per query; zooming
	// into a smaller area (fewer broadcasts inside) uncovers the rest.
	in := s.Pop.InArea(rect)
	if len(in) > s.cfg.MapVisibleCap {
		in = in[:s.cfg.MapVisibleCap]
	}
	resp := MapGeoBroadcastFeedResponse{Broadcasts: make([]BroadcastDesc, 0, len(in))}
	for _, b := range in {
		resp.Broadcasts = append(resp.Broadcasts, s.desc(b, time.Time{}))
	}
	// The crawler sets include_replay=false "to only discover live
	// broadcasts"; the app's default query also surfaces replays.
	if req.IncludeReplay {
		replays := s.Pop.ReplayableInArea(rect)
		budget := s.cfg.MapVisibleCap - len(resp.Broadcasts)
		for i, b := range replays {
			if i >= budget {
				break
			}
			d := s.desc(b, time.Time{})
			d.State = "ENDED"
			resp.Broadcasts = append(resp.Broadcasts, d)
		}
	}
	return resp, nil
}

func (s *Server) getBroadcasts(_ context.Context, req *GetBroadcastsRequest) (GetBroadcastsResponse, *Error) {
	if len(req.BroadcastIDs) > s.cfg.MaxBroadcastIDs {
		return GetBroadcastsResponse{}, Errorf(http.StatusBadRequest, CodeTooManyIDs,
			"too many broadcast_ids: %d > %d", len(req.BroadcastIDs), s.cfg.MaxBroadcastIDs)
	}
	resp := GetBroadcastsResponse{Broadcasts: make([]BroadcastDesc, 0, len(req.BroadcastIDs))}
	now := s.Pop.Now()
	for _, id := range req.BroadcastIDs {
		if b, ok := s.Pop.Get(id); ok {
			resp.Broadcasts = append(resp.Broadcasts, s.desc(b, now))
		}
	}
	return resp, nil
}

func (s *Server) playbackMeta(_ context.Context, req *PlaybackMetaRequest) (PlaybackMetaResponse, *Error) {
	s.metaMu.Lock()
	s.metas = append(s.metas, req.Stats)
	s.metaMu.Unlock()
	return PlaybackMetaResponse{}, nil
}

// PlaybackMetas returns all statistics uploads received so far.
func (s *Server) PlaybackMetas() []PlaybackMeta {
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	return append([]PlaybackMeta(nil), s.metas...)
}

func (s *Server) accessVideo(_ context.Context, req *AccessVideoRequest) (AccessVideoResponse, *Error) {
	if s.Video == nil {
		return AccessVideoResponse{}, Errorf(http.StatusServiceUnavailable, CodeUnavailable, "video plane not running")
	}
	resp, err := s.Video.AccessVideo(req.BroadcastID)
	if err != nil {
		return AccessVideoResponse{}, Errorf(http.StatusNotFound, CodeNotFound, "%s", err.Error())
	}
	return resp, nil
}

func (s *Server) teleport(_ context.Context, _ *TeleportRequest) (TeleportResponse, *Error) {
	s.rngMu.Lock()
	b := s.Pop.Teleport(s.rng)
	s.rngMu.Unlock()
	if b == nil {
		return TeleportResponse{}, Errorf(http.StatusNotFound, CodeNotFound, "no live broadcasts")
	}
	return TeleportResponse{BroadcastID: b.ID}, nil
}
