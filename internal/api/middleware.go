package api

import (
	"context"
	"net/http"
	"strings"
	"time"
)

// Middleware wraps an http.Handler with one cross-cutting concern. The
// gateway composes them with Chain; handlers stay free of transport
// plumbing.
type Middleware func(http.Handler) http.Handler

// Chain applies middlewares around h so that mw[0] is the outermost layer
// (first to see the request, last to see the response). The gateway order
// is: recovery, method check, request context/deadline, session keying,
// rate limiting, metrics.
func Chain(h http.Handler, mw ...Middleware) http.Handler {
	for i := len(mw) - 1; i >= 0; i-- {
		h = mw[i](h)
	}
	return h
}

type ctxKey int

const sessionCtxKey ctxKey = iota

// SessionFromContext returns the rate-limit/auth key the SessionAuth
// middleware attached: the session token, or the remote address for
// anonymous callers.
func SessionFromContext(ctx context.Context) string {
	s, _ := ctx.Value(sessionCtxKey).(string)
	return s
}

// Recovery converts handler panics into a structured 500 instead of
// tearing down the connection. It is the outermost layer so a panic in any
// later middleware or handler is still answered. onPanic (optional)
// observes the recovered value, e.g. to bump a metric.
func Recovery(onPanic func(v any)) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				if v := recover(); v != nil {
					if onPanic != nil {
						onPanic(v)
					}
					writeError(w, Errorf(http.StatusInternalServerError, CodeInternal, "internal error"))
				}
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// RequirePOST rejects anything but POST — the whole §3 API is
// POST-with-JSON-body.
func RequirePOST() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				writeError(w, Errorf(http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST required"))
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

// RequestContext attaches a deadline to each request's context. net/http
// does not abort a running handler, so the deadline is advisory: handlers
// and downstream providers that block (remote video planes, databases)
// honour it via ctx. timeout <= 0 disables the deadline.
func RequestContext(timeout time.Duration) Middleware {
	return func(next http.Handler) http.Handler {
		if timeout <= 0 {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ctx, cancel := context.WithTimeout(r.Context(), timeout)
			defer cancel()
			next.ServeHTTP(w, r.WithContext(ctx))
		})
	}
}

// SessionAuth derives the per-session key (the X-Periscope-Session token,
// or the remote address as an anonymous fallback) and attaches it to the
// request context for the rate limiter and any later layer.
func SessionAuth() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			key := r.Header.Get(SessionHeader)
			if key == "" {
				key = r.RemoteAddr
			}
			next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), sessionCtxKey, key)))
		})
	}
}

// RateLimit answers over-budget sessions with the structured 429 envelope
// and a Retry-After hint before the request reaches any handler. Only API
// paths consume tokens — stray requests the mux will 404 must not drain a
// session's budget. A nil limiter disables the layer. m (optional) counts
// the rejections.
func RateLimit(rl *RateLimiter, m *Metrics) Middleware {
	return func(next http.Handler) http.Handler {
		if rl == nil {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if !strings.HasPrefix(r.URL.Path, PathPrefix) {
				next.ServeHTTP(w, r)
				return
			}
			ok, retryAfter := rl.Take(SessionFromContext(r.Context()))
			if !ok {
				if m != nil {
					m.RateLimited.Add(1)
				}
				e := Errorf(http.StatusTooManyRequests, CodeRateLimited, "Too many requests")
				e.RetryAfter = retryAfter
				writeError(w, e)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

// CollectMetrics records per-endpoint request and error counts. It sits
// innermost so it observes exactly the traffic that reached the endpoint
// layer (rate-limited requests are counted by the RateLimit layer
// instead).
func CollectMetrics(m *Metrics) Middleware {
	return func(next http.Handler) http.Handler {
		if m == nil {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			m.Requests.Add(1)
			em := m.endpoint(r.URL.Path)
			if em != nil {
				em.Requests.Add(1)
			}
			sw := statusWriter{ResponseWriter: w}
			next.ServeHTTP(&sw, r)
			if sw.status >= 400 {
				m.Errors.Add(1)
				if em != nil {
					em.Errors.Add(1)
				}
			}
		})
	}
}

// statusWriter captures the response status for the metrics layer.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}
