package api

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"time"
)

// Machine-readable error codes carried in the JSON envelope. Clients key
// behaviour on the code (the crawler backs off on rate_limited) rather
// than parsing message strings.
const (
	CodeBadRequest       = "bad_request"
	CodeInvalidArea      = "invalid_area"
	CodeTooManyIDs       = "too_many_ids"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeRateLimited      = "rate_limited"
	CodeNotFound         = "not_found"
	CodeUnavailable      = "unavailable"
	CodeInternal         = "internal"
)

// Error is the structured API error: an HTTP status, a stable code, and a
// human-readable message. Handlers return *Error; the endpoint layer
// encodes it as the JSON envelope, and the client decodes it back so both
// sides of an endpoint speak the same error vocabulary.
type Error struct {
	HTTPStatus int    `json:"-"`
	Code       string `json:"code"`
	Message    string `json:"message"`
	// RetryAfter, when set on a rate_limited error, is surfaced as the
	// Retry-After header (server) and honoured by the client's backoff.
	RetryAfter time.Duration `json:"-"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("api: %s: %s (HTTP %d)", e.Code, e.Message, e.HTTPStatus)
}

// Errorf builds a structured error.
func Errorf(status int, code, format string, args ...any) *Error {
	return &Error{HTTPStatus: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

// writeError encodes the envelope, setting Retry-After for 429s so
// well-behaved clients know exactly how long to back off.
func writeError(w http.ResponseWriter, e *Error) {
	w.Header().Set("Content-Type", "application/json")
	if e.RetryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(math.Ceil(e.RetryAfter.Seconds()))))
	}
	w.WriteHeader(e.HTTPStatus)
	json.NewEncoder(w).Encode(ErrorResponse{Error: e.Message, Code: e.Code})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
