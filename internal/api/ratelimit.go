package api

import (
	"sync"
	"time"
)

// RateLimiter is a non-blocking per-key token bucket: each API session
// (logged-in user) gets its own allowance, which is why the crawler ran
// four emulators "with different user logged in (avoids rate limiting)".
type RateLimiter struct {
	mu      sync.Mutex
	rate    float64 // requests per second
	burst   float64
	buckets map[string]*rlBucket
	nowFn   func() time.Time
}

type rlBucket struct {
	tokens   float64
	lastFill time.Time
}

// NewRateLimiter creates a limiter with the given sustained rate and burst.
func NewRateLimiter(rate, burst float64) *RateLimiter {
	return &RateLimiter{rate: rate, burst: burst, buckets: map[string]*rlBucket{}, nowFn: time.Now}
}

// SetNowFunc overrides the clock (virtual-time tests).
func (rl *RateLimiter) SetNowFunc(f func() time.Time) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	rl.nowFn = f
}

// Allow reports whether the key may issue one more request now.
func (rl *RateLimiter) Allow(key string) bool {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	now := rl.nowFn()
	b, ok := rl.buckets[key]
	if !ok {
		b = &rlBucket{tokens: rl.burst, lastFill: now}
		rl.buckets[key] = b
	}
	b.tokens += rl.rate * now.Sub(b.lastFill).Seconds()
	if b.tokens > rl.burst {
		b.tokens = rl.burst
	}
	b.lastFill = now
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}
