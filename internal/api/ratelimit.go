package api

import (
	"sync"
	"sync/atomic"
	"time"
)

// RateLimiter is a non-blocking per-key token bucket: each API session
// (logged-in user) gets its own allowance, which is why the crawler ran
// four emulators "with different user logged in (avoids rate limiting)".
//
// The bucket table is sharded: a key hashes to one of N shards, each with
// its own mutex and map, so concurrent sessions only contend when they
// land on the same shard — the limiter no longer serializes all API
// traffic through one global lock. Buckets idle longer than IdleTTL are
// evicted by an amortized per-shard sweep piggybacked on Take, so the
// table stays bounded over long campaigns without a background goroutine
// (which would not see virtual-time clocks anyway).
type RateLimiter struct {
	rate  float64 // requests per second
	burst float64
	ttl   time.Duration
	mask  uint32
	nowFn atomic.Pointer[func() time.Time]

	shards []rlShard
}

type rlShard struct {
	mu        sync.Mutex
	buckets   map[string]*rlBucket
	lastSweep time.Time
	// Pad shards apart so neighbouring locks do not share a cache line.
	_ [64]byte
}

type rlBucket struct {
	tokens   float64
	lastFill time.Time
}

// RateLimiterConfig tunes the sharded limiter.
type RateLimiterConfig struct {
	// Rate is the sustained per-key request rate (req/s); Burst the bucket
	// depth.
	Rate  float64
	Burst float64
	// Shards is the bucket-table shard count (rounded up to a power of
	// two). Default 32.
	Shards int
	// IdleTTL evicts buckets idle this long. <= 0 means the default of
	// five minutes; eviction cannot be disabled because the table would
	// grow with every session ever seen.
	IdleTTL time.Duration
}

// NewRateLimiter creates a limiter with the given sustained rate and burst
// and default sharding/eviction.
func NewRateLimiter(rate, burst float64) *RateLimiter {
	return NewShardedRateLimiter(RateLimiterConfig{Rate: rate, Burst: burst})
}

// NewShardedRateLimiter creates a limiter from an explicit config.
func NewShardedRateLimiter(cfg RateLimiterConfig) *RateLimiter {
	n := cfg.Shards
	if n <= 0 {
		n = 32
	}
	// Round up to a power of two for mask-based shard selection.
	p := 1
	for p < n {
		p <<= 1
	}
	ttl := cfg.IdleTTL
	if ttl <= 0 {
		ttl = 5 * time.Minute
	}
	rl := &RateLimiter{
		rate:   cfg.Rate,
		burst:  cfg.Burst,
		ttl:    ttl,
		mask:   uint32(p - 1),
		shards: make([]rlShard, p),
	}
	for i := range rl.shards {
		rl.shards[i].buckets = map[string]*rlBucket{}
	}
	now := time.Now
	rl.nowFn.Store(&now)
	return rl
}

// SetNowFunc overrides the clock (virtual-time tests and the population's
// simulated clock). Safe to call concurrently with Take.
func (rl *RateLimiter) SetNowFunc(f func() time.Time) { rl.nowFn.Store(&f) }

func (rl *RateLimiter) now() time.Time { return (*rl.nowFn.Load())() }

func hashKey(key string) uint32 {
	h := uint32(2166136261) // FNV-1a
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return h
}

// Allow reports whether the key may issue one more request now.
func (rl *RateLimiter) Allow(key string) bool {
	ok, _ := rl.Take(key)
	return ok
}

// Take attempts to consume one token for key. When denied it also returns
// how long the caller must wait for the next token — the Retry-After
// value the 429 response carries.
func (rl *RateLimiter) Take(key string) (bool, time.Duration) {
	now := rl.now()
	sh := &rl.shards[hashKey(key)&rl.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b, ok := sh.buckets[key]
	if !ok {
		b = &rlBucket{tokens: rl.burst, lastFill: now}
		sh.buckets[key] = b
	}
	if dt := now.Sub(b.lastFill); dt > 0 {
		b.tokens += rl.rate * dt.Seconds()
		if b.tokens > rl.burst {
			b.tokens = rl.burst
		}
	}
	b.lastFill = now
	if sh.lastSweep.IsZero() {
		sh.lastSweep = now
	} else if now.Sub(sh.lastSweep) >= rl.ttl {
		sh.sweep(now, rl.ttl)
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if rl.rate <= 0 {
		return false, rl.ttl
	}
	return false, time.Duration((1 - b.tokens) / rl.rate * float64(time.Second))
}

// sweep drops the shard's idle buckets; the caller holds sh.mu.
func (sh *rlShard) sweep(now time.Time, ttl time.Duration) {
	for k, b := range sh.buckets {
		if now.Sub(b.lastFill) >= ttl {
			delete(sh.buckets, k)
		}
	}
	sh.lastSweep = now
}

// EvictIdle forces a sweep of every shard and returns how many buckets
// remain. Tests use it for deterministic eviction; production relies on
// the amortized per-shard sweeps.
func (rl *RateLimiter) EvictIdle() int {
	now := rl.now()
	n := 0
	for i := range rl.shards {
		sh := &rl.shards[i]
		sh.mu.Lock()
		sh.sweep(now, rl.ttl)
		n += len(sh.buckets)
		sh.mu.Unlock()
	}
	return n
}

// Len returns the current bucket count across all shards.
func (rl *RateLimiter) Len() int {
	n := 0
	for i := range rl.shards {
		sh := &rl.shards[i]
		sh.mu.Lock()
		n += len(sh.buckets)
		sh.mu.Unlock()
	}
	return n
}
