package api

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// manualClock is a mutable test clock for the limiter.
type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func newManualClock() *manualClock {
	return &manualClock{now: time.Date(2016, 4, 1, 12, 0, 0, 0, time.UTC)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestRateLimiterPerKeyIsolation(t *testing.T) {
	rl := NewRateLimiter(1, 2)
	for i := 0; i < 2; i++ {
		if !rl.Allow("a") {
			t.Fatalf("a denied within burst (i=%d)", i)
		}
	}
	if rl.Allow("a") {
		t.Error("a allowed beyond burst")
	}
	if !rl.Allow("b") {
		t.Error("b denied despite fresh bucket")
	}
}

func TestRateLimiterRefill(t *testing.T) {
	clk := newManualClock()
	rl := NewRateLimiter(2, 1)
	rl.SetNowFunc(clk.Now)
	if !rl.Allow("k") {
		t.Fatal("first request denied")
	}
	if rl.Allow("k") {
		t.Fatal("bucket not empty after burst")
	}
	clk.Advance(time.Second) // 2 tokens accrue, capped at burst 1
	if !rl.Allow("k") {
		t.Error("no refill after 1s at 2 rps")
	}
}

func TestRateLimiterRetryAfter(t *testing.T) {
	clk := newManualClock()
	rl := NewRateLimiter(2, 1)
	rl.SetNowFunc(clk.Now)
	rl.Allow("k")
	ok, retry := rl.Take("k")
	if ok {
		t.Fatal("expected denial")
	}
	// Empty bucket at 2 rps: next token in 500ms.
	if retry < 400*time.Millisecond || retry > 600*time.Millisecond {
		t.Errorf("retryAfter = %v, want ~500ms", retry)
	}
}

func TestRateLimiterEvictIdle(t *testing.T) {
	clk := newManualClock()
	rl := NewShardedRateLimiter(RateLimiterConfig{Rate: 10, Burst: 10, Shards: 8, IdleTTL: time.Minute})
	rl.SetNowFunc(clk.Now)
	for i := 0; i < 100; i++ {
		rl.Allow(fmt.Sprintf("sess-%d", i))
	}
	if got := rl.Len(); got != 100 {
		t.Fatalf("Len = %d, want 100", got)
	}
	clk.Advance(30 * time.Second)
	rl.Allow("survivor") // recent activity must survive the sweep
	clk.Advance(45 * time.Second)
	if got := rl.EvictIdle(); got != 1 {
		t.Errorf("after eviction Len = %d, want 1 (only survivor)", got)
	}
	clk.Advance(2 * time.Minute)
	if got := rl.EvictIdle(); got != 0 {
		t.Errorf("after full idle Len = %d, want 0", got)
	}
}

// TestRateLimiterLazySweepBoundsTable exercises the amortized eviction
// path: a long stream of one-shot sessions with an advancing clock must
// not accumulate a bucket per session ever seen.
func TestRateLimiterLazySweepBoundsTable(t *testing.T) {
	clk := newManualClock()
	rl := NewShardedRateLimiter(RateLimiterConfig{Rate: 2, Burst: 6, Shards: 4, IdleTTL: time.Minute})
	rl.SetNowFunc(clk.Now)
	const sessions = 5000
	for i := 0; i < sessions; i++ {
		rl.Allow(fmt.Sprintf("one-shot-%d", i))
		if i%20 == 19 {
			clk.Advance(time.Second) // 250s total, >> TTL
		}
	}
	if got := rl.Len(); got >= sessions/2 {
		t.Errorf("lazy sweeps did not bound the table: %d buckets for %d sessions", got, sessions)
	}
}

func TestRateLimiterConcurrentAccess(t *testing.T) {
	rl := NewShardedRateLimiter(RateLimiterConfig{Rate: 1e6, Burst: 1e6, Shards: 16, IdleTTL: time.Minute})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("sess-%d", g)
			for i := 0; i < 2000; i++ {
				if !rl.Allow(key) {
					t.Errorf("denied under huge budget")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
