package api

import (
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"periscope/internal/broadcastmodel"
)

type stubVideo struct{}

func (stubVideo) AccessVideo(id string) (AccessVideoResponse, error) {
	if id == "missing" {
		return AccessVideoResponse{}, errors.New("no such broadcast")
	}
	return AccessVideoResponse{Protocol: "RTMP", RTMPAddr: "127.0.0.1:1935", StreamName: id}, nil
}

func newTestServer(t *testing.T, rateLimit float64) (*Server, *Client, *broadcastmodel.Population) {
	t.Helper()
	cfg := broadcastmodel.DefaultConfig()
	cfg.TargetConcurrent = 400
	pop := broadcastmodel.New(cfg, time.Date(2016, 4, 1, 15, 0, 0, 0, time.UTC))
	scfg := DefaultServerConfig()
	scfg.RateLimit = rateLimit
	srv := NewServer(pop, stubVideo{}, scfg)
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return srv, NewClient(hs.URL, "sess-1", nil), pop
}

func TestMapGeoReturnsCappedList(t *testing.T) {
	_, c, _ := newTestServer(t, 0)
	resp, err := c.MapGeoBroadcastFeed(MapGeoBroadcastFeedRequest{
		P1Lat: -90, P1Lng: -180, P2Lat: 90, P2Lng: 180,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Broadcasts) == 0 {
		t.Fatal("no broadcasts in world query")
	}
	if len(resp.Broadcasts) > 50 {
		t.Errorf("cap violated: %d", len(resp.Broadcasts))
	}
}

func TestZoomRevealsMore(t *testing.T) {
	// The defining crawler observation: querying the four quadrants of an
	// area yields at least as many distinct broadcasts as the single
	// coarse query, usually more.
	_, c, _ := newTestServer(t, 0)
	world, err := c.MapGeoBroadcastFeed(MapGeoBroadcastFeedRequest{
		P1Lat: -90, P1Lng: -180, P2Lat: 90, P2Lng: 180,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	quads := []MapGeoBroadcastFeedRequest{
		{P1Lat: -90, P1Lng: -180, P2Lat: 0, P2Lng: 0},
		{P1Lat: -90, P1Lng: 0, P2Lat: 0, P2Lng: 180},
		{P1Lat: 0, P1Lng: -180, P2Lat: 90, P2Lng: 0},
		{P1Lat: 0, P1Lng: 0, P2Lat: 90, P2Lng: 180},
	}
	for _, q := range quads {
		resp, err := c.MapGeoBroadcastFeed(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range resp.Broadcasts {
			seen[b.ID] = true
		}
	}
	if len(seen) < len(world.Broadcasts) {
		t.Errorf("zoom found %d < coarse %d", len(seen), len(world.Broadcasts))
	}
}

func TestGetBroadcastsViewers(t *testing.T) {
	_, c, pop := newTestServer(t, 0)
	var ids []string
	for _, b := range pop.Live() {
		ids = append(ids, b.ID)
		if len(ids) == 20 {
			break
		}
	}
	resp, err := c.GetBroadcasts(ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Broadcasts) != 20 {
		t.Fatalf("got %d descriptions", len(resp.Broadcasts))
	}
	for _, d := range resp.Broadcasts {
		if d.State != "RUNNING" {
			t.Errorf("state = %s", d.State)
		}
		if _, err := d.StartTime(); err != nil {
			t.Errorf("bad created_at: %v", err)
		}
	}
}

func TestGetBroadcastsUnknownIDsSkipped(t *testing.T) {
	_, c, _ := newTestServer(t, 0)
	resp, err := c.GetBroadcasts([]string{"doesnotexist42"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Broadcasts) != 0 {
		t.Errorf("got %d, want 0", len(resp.Broadcasts))
	}
}

func TestRateLimiting429(t *testing.T) {
	_, c, _ := newTestServer(t, 2) // 2 rps, burst 6
	var rateLimited bool
	for i := 0; i < 20; i++ {
		_, err := c.Teleport()
		if errors.As(err, &ErrRateLimited{}) {
			rateLimited = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !rateLimited {
		t.Error("burst of 20 requests never hit 429")
	}
	if c.RateLimited() == 0 {
		t.Error("client did not count 429s")
	}
}

func TestRateLimitPerSession(t *testing.T) {
	// Different session tokens have independent buckets — the 4-crawler
	// trick from §4.
	srv, c1, pop := newTestServer(t, 1)
	_ = srv
	hs := httptest.NewServer(srv)
	defer hs.Close()
	c2 := NewClient(hs.URL, "sess-2", nil)
	_ = pop
	// Exhaust c1's budget.
	for i := 0; i < 15; i++ {
		c1.Teleport()
	}
	if _, err := c2.Teleport(); err != nil {
		t.Errorf("fresh session should not be limited: %v", err)
	}
}

func TestPlaybackMetaStored(t *testing.T) {
	srv, c, _ := newTestServer(t, 0)
	stats := PlaybackMeta{
		BroadcastID: "abc", Protocol: "RTMP",
		NStallEvents: 2, AvgStallSec: 3.5, PlaybackDelaySec: 2.1,
		PlayTimeSec: 52.9, StallTimeSec: 7.0,
	}
	if err := c.PlaybackMeta(stats); err != nil {
		t.Fatal(err)
	}
	got := srv.PlaybackMetas()
	if len(got) != 1 || got[0] != stats {
		t.Errorf("stored = %+v", got)
	}
}

func TestAccessVideo(t *testing.T) {
	_, c, _ := newTestServer(t, 0)
	resp, err := c.AccessVideo("someid")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Protocol != "RTMP" || resp.StreamName != "someid" {
		t.Errorf("resp = %+v", resp)
	}
	if _, err := c.AccessVideo("missing"); err == nil {
		t.Error("want error for missing broadcast")
	}
}

func TestTeleportReturnsLiveID(t *testing.T) {
	_, c, pop := newTestServer(t, 0)
	id, err := c.Teleport()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pop.Get(id); !ok {
		t.Errorf("teleport returned unknown id %q", id)
	}
}

func TestInvalidArea(t *testing.T) {
	_, c, _ := newTestServer(t, 0)
	_, err := c.MapGeoBroadcastFeed(MapGeoBroadcastFeedRequest{P1Lat: 50, P1Lng: 0, P2Lat: 10, P2Lng: 10})
	if err == nil {
		t.Error("want error for inverted rectangle")
	}
}

func TestGETRejected(t *testing.T) {
	srv, _, _ := newTestServer(t, 0)
	hs := httptest.NewServer(srv)
	defer hs.Close()
	resp, err := hs.Client().Get(hs.URL + "/api/v2/teleport")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("status = %d, want 405", resp.StatusCode)
	}
}
