package api

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"periscope/internal/geo"
)

// PathPrefix is the API mount point: every Table-1 command is a POST to
// /api/v2/<apiRequest>.
const PathPrefix = "/api/v2/"

// Endpoint is the typed definition of one API command: its wire name and
// the request-shape invariants every caller must satisfy. The server mounts
// handlers through it (decode → validate → handle → encode) and the client
// issues calls through it, so paths, request/response types, and
// validation live in exactly one place.
type Endpoint[Req, Resp any] struct {
	// Name is the <apiRequest> path component, e.g. "getBroadcasts".
	Name string
	// Validate, if set, checks request invariants that do not depend on
	// server configuration. It runs on the server after decode; returning
	// a non-nil *Error short-circuits the handler.
	Validate func(*Req) *Error
}

// Path returns the endpoint's URL path.
func (e Endpoint[Req, Resp]) Path() string { return PathPrefix + e.Name }

// The five §3/Table-1 endpoint definitions — the single source of truth
// shared by Server (mounting) and Client (calling).
var (
	// MapGeoBroadcastFeedEndpoint is the map-exploration query the §4
	// crawler replays with modified coordinates.
	MapGeoBroadcastFeedEndpoint = Endpoint[MapGeoBroadcastFeedRequest, MapGeoBroadcastFeedResponse]{
		Name: "mapGeoBroadcastFeed",
		Validate: func(r *MapGeoBroadcastFeedRequest) *Error {
			rect := geo.Rect{South: r.P1Lat, West: r.P1Lng, North: r.P2Lat, East: r.P2Lng}
			if !rect.Valid() {
				return Errorf(http.StatusBadRequest, CodeInvalidArea, "invalid area")
			}
			return nil
		},
	}

	// GetBroadcastsEndpoint fetches descriptions (with viewer counts) for
	// explicit IDs. The per-request ID cap is server configuration, so it
	// is enforced in the handler, not here.
	GetBroadcastsEndpoint = Endpoint[GetBroadcastsRequest, GetBroadcastsResponse]{
		Name: "getBroadcasts",
	}

	// PlaybackMetaEndpoint uploads end-of-session QoE statistics.
	PlaybackMetaEndpoint = Endpoint[PlaybackMetaRequest, PlaybackMetaResponse]{
		Name: "playbackMeta",
	}

	// AccessVideoEndpoint resolves a broadcast's stream endpoint.
	AccessVideoEndpoint = Endpoint[AccessVideoRequest, AccessVideoResponse]{
		Name: "accessVideo",
		Validate: func(r *AccessVideoRequest) *Error {
			if r.BroadcastID == "" {
				return Errorf(http.StatusBadRequest, CodeBadRequest, "broadcast_id required")
			}
			return nil
		},
	}

	// TeleportEndpoint returns a random live broadcast id.
	TeleportEndpoint = Endpoint[TeleportRequest, TeleportResponse]{
		Name: "teleport",
	}
)

// EndpointNames lists the registered command names (Table 1 order); the
// metrics table is sized from it.
func EndpointNames() []string {
	return []string{
		MapGeoBroadcastFeedEndpoint.Name,
		GetBroadcastsEndpoint.Name,
		PlaybackMetaEndpoint.Name,
		AccessVideoEndpoint.Name,
		TeleportEndpoint.Name,
	}
}

// mount registers a typed handler for an endpoint on the mux. The wrapper
// owns the whole decode → validate → handle → encode cycle; handlers see
// only their typed request and return a typed response or a structured
// error.
func mount[Req, Resp any](mux *http.ServeMux, ep Endpoint[Req, Resp], fn func(context.Context, *Req) (Resp, *Error)) {
	mux.Handle(ep.Path(), http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req Req
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
			writeError(w, Errorf(http.StatusBadRequest, CodeBadRequest, "bad JSON: %v", err))
			return
		}
		if ep.Validate != nil {
			if e := ep.Validate(&req); e != nil {
				writeError(w, e)
				return
			}
		}
		resp, apiErr := fn(r.Context(), &req)
		if apiErr != nil {
			writeError(w, apiErr)
			return
		}
		writeJSON(w, resp)
	}))
}
