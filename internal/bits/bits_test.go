package bits

import (
	"testing"
	"testing/quick"
)

func TestWriteReadBits(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0b101, 3)
	w.WriteBits(0b0110, 4)
	w.WriteBit(1)
	w.WriteBits(0xAB, 8)
	b := w.Bytes()
	if len(b) != 2 {
		t.Fatalf("len = %d, want 2", len(b))
	}
	r := NewReader(b)
	if v, _ := r.ReadBits(3); v != 0b101 {
		t.Errorf("first 3 bits = %b, want 101", v)
	}
	if v, _ := r.ReadBits(4); v != 0b0110 {
		t.Errorf("next 4 bits = %b, want 0110", v)
	}
	if v, _ := r.ReadBit(); v != 1 {
		t.Errorf("bit = %d, want 1", v)
	}
	if v, _ := r.ReadBits(8); v != 0xAB {
		t.Errorf("byte = %x, want ab", v)
	}
}

func TestUEKnownCodes(t *testing.T) {
	// Known Exp-Golomb codewords from the H.264 spec, Table 9-1.
	cases := []struct {
		v    uint32
		bits string
	}{
		{0, "1"},
		{1, "010"},
		{2, "011"},
		{3, "00100"},
		{4, "00101"},
		{5, "00110"},
		{6, "00111"},
		{7, "0001000"},
		{8, "0001001"},
	}
	for _, c := range cases {
		w := &Writer{}
		w.WriteUE(c.v)
		got := bitString(w)
		if got != c.bits {
			t.Errorf("ue(%d) = %s, want %s", c.v, got, c.bits)
		}
	}
}

func TestSEKnownCodes(t *testing.T) {
	// se(v) mapping per Table 9-3: 0->0, 1->1, -1->2, 2->3, -2->4 ...
	cases := []struct {
		v    int32
		code uint32
	}{{0, 0}, {1, 1}, {-1, 2}, {2, 3}, {-2, 4}, {3, 5}, {-3, 6}}
	for _, c := range cases {
		w := &Writer{}
		w.WriteSE(c.v)
		w.ByteAlign()
		r := NewReader(w.Bytes())
		code, err := r.ReadUE()
		if err != nil {
			t.Fatal(err)
		}
		if code != c.code {
			t.Errorf("se(%d) codeNum = %d, want %d", c.v, code, c.code)
		}
	}
}

func TestUERoundTripProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		w := &Writer{}
		for _, v := range vals {
			w.WriteUE(v % (1 << 30))
		}
		w.TrailingBits()
		r := NewReader(w.Bytes())
		for _, v := range vals {
			got, err := r.ReadUE()
			if err != nil || got != v%(1<<30) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSERoundTripProperty(t *testing.T) {
	f := func(vals []int32) bool {
		w := &Writer{}
		for _, v := range vals {
			w.WriteSE(v % (1 << 28))
		}
		w.TrailingBits()
		r := NewReader(w.Bytes())
		for _, v := range vals {
			got, err := r.ReadSE()
			if err != nil || got != v%(1<<28) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitsRoundTripProperty(t *testing.T) {
	f := func(v uint64, n uint8) bool {
		n64 := uint(n%64) + 1
		masked := v & (1<<n64 - 1)
		w := &Writer{}
		w.WriteBits(masked, n64)
		w.ByteAlign()
		r := NewReader(w.Bytes())
		got, err := r.ReadBits(n64)
		return err == nil && got == masked
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReaderOutOfBits(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(9); err != ErrOutOfBits {
		t.Errorf("err = %v, want ErrOutOfBits", err)
	}
}

func TestByteAlign(t *testing.T) {
	r := NewReader([]byte{0xFF, 0x00})
	r.ReadBits(3)
	r.ByteAlign()
	if r.BitPos() != 8 {
		t.Errorf("pos = %d, want 8", r.BitPos())
	}
	r.ByteAlign() // already aligned: no-op
	if r.BitPos() != 8 {
		t.Errorf("pos after second align = %d, want 8", r.BitPos())
	}
}

func TestTrailingBits(t *testing.T) {
	w := &Writer{}
	w.WriteBits(0b10, 2)
	w.TrailingBits()
	b := w.Bytes()
	if len(b) != 1 || b[0] != 0b10100000 {
		t.Errorf("bytes = %08b, want 10100000", b[0])
	}
}

func bitString(w *Writer) string {
	w2 := *w
	w2.ByteAlign()
	n := w.BitLen()
	out := make([]byte, 0, n)
	r := NewReader(w2.Bytes())
	for i := 0; i < n; i++ {
		b, _ := r.ReadBit()
		out = append(out, byte('0'+b))
	}
	return string(out)
}
