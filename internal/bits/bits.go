// Package bits implements MSB-first bit-level readers and writers and the
// Exp-Golomb variable-length codes (ue(v)/se(v)) used throughout H.264/AVC
// syntax structures such as SPS, PPS and slice headers.
package bits

import (
	"errors"
	"fmt"
)

// ErrOutOfBits is returned when a read requires more bits than remain.
var ErrOutOfBits = errors.New("bits: out of bits")

// Writer accumulates bits MSB first into a byte slice.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  byte
	nCur uint // number of bits currently buffered in cur (0..7)
}

// NewWriter returns a Writer with capacity pre-allocated for n bytes.
func NewWriter(n int) *Writer {
	return &Writer{buf: make([]byte, 0, n)}
}

// WriteBit appends a single bit (the low bit of b).
func (w *Writer) WriteBit(b uint) {
	w.cur = w.cur<<1 | byte(b&1)
	w.nCur++
	if w.nCur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

// WriteBits appends the low n bits of v, MSB first. n must be <= 64.
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 64 {
		panic(fmt.Sprintf("bits: WriteBits n=%d > 64", n))
	}
	for i := int(n) - 1; i >= 0; i-- {
		w.WriteBit(uint(v >> uint(i) & 1))
	}
}

// WriteUE appends v encoded as an unsigned Exp-Golomb code (ue(v)).
func (w *Writer) WriteUE(v uint32) {
	// codeNum = v; write (leadingZeroBits) zeros, then the (leadingZeroBits+1)-bit
	// binary representation of codeNum+1.
	x := uint64(v) + 1
	n := bitLen(x)
	for i := uint(0); i < n-1; i++ {
		w.WriteBit(0)
	}
	w.WriteBits(x, n)
}

// WriteSE appends v encoded as a signed Exp-Golomb code (se(v)).
func (w *Writer) WriteSE(v int32) {
	// Mapping per H.264 9.1.1: v>0 -> 2v-1, v<=0 -> -2v.
	var code uint32
	if v > 0 {
		code = uint32(2*v - 1)
	} else {
		code = uint32(-2 * v)
	}
	w.WriteUE(code)
}

// ByteAlign pads the current partial byte with zero bits, if any.
func (w *Writer) ByteAlign() {
	for w.nCur != 0 {
		w.WriteBit(0)
	}
}

// TrailingBits writes the RBSP trailing bits: a 1 bit then zero padding to a
// byte boundary, per H.264 7.3.2.11.
func (w *Writer) TrailingBits() {
	w.WriteBit(1)
	w.ByteAlign()
}

// Len returns the number of whole bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// BitLen returns the total number of bits written so far.
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.nCur) }

// Bytes returns the accumulated bytes. The writer must be byte-aligned.
func (w *Writer) Bytes() []byte {
	if w.nCur != 0 {
		panic("bits: Bytes called on unaligned writer")
	}
	return w.buf
}

// Reader consumes bits MSB first from a byte slice.
type Reader struct {
	buf []byte
	pos uint // bit position from the start
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// ReadBit returns the next bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.pos >= uint(len(r.buf))*8 {
		return 0, ErrOutOfBits
	}
	b := r.buf[r.pos>>3]
	bit := uint(b>>(7-r.pos&7)) & 1
	r.pos++
	return bit, nil
}

// ReadBits returns the next n bits as an unsigned integer, MSB first.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		return 0, fmt.Errorf("bits: ReadBits n=%d > 64", n)
	}
	var v uint64
	for i := uint(0); i < n; i++ {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(bit)
	}
	return v, nil
}

// ReadUE reads an unsigned Exp-Golomb code.
func (r *Reader) ReadUE() (uint32, error) {
	var zeros uint
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		zeros++
		if zeros > 32 {
			return 0, errors.New("bits: ue(v) code too long")
		}
	}
	rest, err := r.ReadBits(zeros)
	if err != nil {
		return 0, err
	}
	return uint32(1<<zeros + rest - 1), nil
}

// ReadSE reads a signed Exp-Golomb code.
func (r *Reader) ReadSE() (int32, error) {
	code, err := r.ReadUE()
	if err != nil {
		return 0, err
	}
	// Inverse of the WriteSE mapping.
	if code%2 == 1 {
		return int32(code/2 + 1), nil
	}
	return -int32(code / 2), nil
}

// ByteAlign advances the position to the next byte boundary.
func (r *Reader) ByteAlign() {
	if rem := r.pos & 7; rem != 0 {
		r.pos += 8 - rem
	}
}

// BitsRemaining reports how many bits are left.
func (r *Reader) BitsRemaining() int { return len(r.buf)*8 - int(r.pos) }

// BitPos returns the current absolute bit position.
func (r *Reader) BitPos() uint { return r.pos }

// bitLen returns the number of bits needed to represent x (x >= 1).
func bitLen(x uint64) uint {
	var n uint
	for x > 0 {
		n++
		x >>= 1
	}
	return n
}
