package avc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEscapeUnescapeKnown(t *testing.T) {
	cases := []struct{ in, escaped []byte }{
		{[]byte{0, 0, 0}, []byte{0, 0, 3, 0}},
		{[]byte{0, 0, 1}, []byte{0, 0, 3, 1}},
		{[]byte{0, 0, 2}, []byte{0, 0, 3, 2}},
		{[]byte{0, 0, 3}, []byte{0, 0, 3, 3}},
		{[]byte{0, 0, 4}, []byte{0, 0, 4}},
		{[]byte{1, 2, 3}, []byte{1, 2, 3}},
		{[]byte{0, 0, 0, 0, 0}, []byte{0, 0, 3, 0, 0, 3, 0}},
	}
	for _, c := range cases {
		got := EscapeRBSP(c.in)
		if !bytes.Equal(got, c.escaped) {
			t.Errorf("Escape(%v) = %v, want %v", c.in, got, c.escaped)
		}
		back := UnescapeRBSP(got)
		if !bytes.Equal(back, c.in) {
			t.Errorf("Unescape(Escape(%v)) = %v", c.in, back)
		}
	}
}

func TestEscapeRoundTripProperty(t *testing.T) {
	f := func(in []byte) bool {
		return bytes.Equal(UnescapeRBSP(EscapeRBSP(in)), in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEscapeNoForbiddenPatterns(t *testing.T) {
	f := func(in []byte) bool {
		e := EscapeRBSP(in)
		for i := 0; i+2 < len(e); i++ {
			if e[i] == 0 && e[i+1] == 0 && e[i+2] <= 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAnnexBRoundTrip(t *testing.T) {
	units := []NALUnit{
		{RefIDC: 3, Type: NALSPS, RBSP: DefaultSPS().Marshal()},
		{RefIDC: 3, Type: NALPPS, RBSP: DefaultPPS().Marshal()},
		{RefIDC: 3, Type: NALSliceIDR, RBSP: []byte{0x88, 0, 0, 1, 0, 0, 0, 42}},
	}
	data := MarshalAnnexB(units)
	back, err := ParseAnnexB(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(units) {
		t.Fatalf("got %d units, want %d", len(back), len(units))
	}
	for i := range units {
		if back[i].Type != units[i].Type || back[i].RefIDC != units[i].RefIDC {
			t.Errorf("unit %d header mismatch: %v vs %v", i, back[i], units[i])
		}
		if !bytes.Equal(back[i].RBSP, units[i].RBSP) {
			t.Errorf("unit %d RBSP mismatch", i)
		}
	}
}

func TestAnnexBThreeByteStartCode(t *testing.T) {
	raw := append([]byte{0, 0, 1, 0x67}, DefaultSPS().Marshal()...)
	units, err := ParseAnnexB(raw)
	if err != nil || len(units) != 1 || units[0].Type != NALSPS {
		t.Fatalf("units=%v err=%v", units, err)
	}
}

func TestAVCCRoundTrip(t *testing.T) {
	units := []NALUnit{
		{RefIDC: 2, Type: NALSliceNonIDR, RBSP: []byte{1, 2, 3, 0, 0, 0, 7}},
		{RefIDC: 0, Type: NALSEI, RBSP: []byte{5, 1, 0xAA, 0x80}},
	}
	data := MarshalAVCC(units)
	back, err := ParseAVCC(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Type != NALSliceNonIDR || back[1].Type != NALSEI {
		t.Fatalf("bad units: %v", back)
	}
	if !bytes.Equal(back[0].RBSP, units[0].RBSP) {
		t.Error("RBSP 0 mismatch")
	}
}

func TestAVCCTruncated(t *testing.T) {
	if _, err := ParseAVCC([]byte{0, 0, 0, 200, 1}); err == nil {
		t.Error("want error on truncated AVCC")
	}
}

func TestSPSRoundTrip(t *testing.T) {
	s := DefaultSPS()
	s.VUITimingNum = 1
	s.VUIDen = 60 // time_scale = 2*fps
	got, err := ParseSPS(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Width != 320 || got.Height != 568 {
		t.Errorf("dimensions = %dx%d, want 320x568", got.Width, got.Height)
	}
	if got.ProfileIDC != 66 || got.LevelIDC != 31 {
		t.Errorf("profile/level = %d/%d", got.ProfileIDC, got.LevelIDC)
	}
	if got.Log2MaxFrameNum != 8 {
		t.Errorf("log2MaxFrameNum = %d", got.Log2MaxFrameNum)
	}
	if got.VUITimingNum != 1 || got.VUIDen != 60 {
		t.Errorf("VUI timing = %d/%d", got.VUITimingNum, got.VUIDen)
	}
}

func TestSPSPortraitLandscape(t *testing.T) {
	// "Video resolution is always 320x568 (or vice versa depending on
	// orientation)" — both must round-trip.
	s := DefaultSPS()
	s.Width, s.Height = 568, 320
	got, err := ParseSPS(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Width != 568 || got.Height != 320 {
		t.Errorf("dimensions = %dx%d, want 568x320", got.Width, got.Height)
	}
}

func TestPPSRoundTrip(t *testing.T) {
	for _, qp := range []int32{10, 20, 26, 35, 51} {
		p := PPS{PicInitQP: qp}
		got, err := ParsePPS(p.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if got.PicInitQP != qp {
			t.Errorf("PicInitQP = %d, want %d", got.PicInitQP, qp)
		}
	}
}

func TestSliceHeaderRoundTrip(t *testing.T) {
	sps := DefaultSPS()
	cases := []SliceHeader{
		{Type: SliceI, IDR: true, IDRPicID: 3, FrameNum: 0, QPDelta: 4},
		{Type: SliceP, FrameNum: 17, QPDelta: -3},
		{Type: SliceB, FrameNum: 18, QPDelta: 0},
		{Type: SliceI, FrameNum: 36, QPDelta: 12},
	}
	for _, h := range cases {
		nal := MarshalSlice(h, sps, []byte{0xDE, 0xAD, 0xBE, 0xEF})
		got, err := ParseSliceHeader(nal, sps)
		if err != nil {
			t.Fatalf("%+v: %v", h, err)
		}
		if got.Type != h.Type || got.FrameNum != h.FrameNum || got.QPDelta != h.QPDelta || got.IDR != h.IDR {
			t.Errorf("round trip %+v -> %+v", h, got)
		}
	}
}

func TestSliceQP(t *testing.T) {
	pps := PPS{PicInitQP: 30}
	h := SliceHeader{QPDelta: -5}
	if qp := h.QP(pps); qp != 25 {
		t.Errorf("QP = %d, want 25", qp)
	}
}

func TestSliceHeaderProperty(t *testing.T) {
	sps := DefaultSPS()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		h := SliceHeader{
			Type:     SliceType(rng.Intn(3)),
			FrameNum: uint32(rng.Intn(256)),
			QPDelta:  int32(rng.Intn(40) - 20),
		}
		if h.Type == SliceI && rng.Intn(2) == 0 {
			h.IDR = true
			h.IDRPicID = uint32(rng.Intn(16))
		}
		payload := make([]byte, rng.Intn(64))
		rng.Read(payload)
		nal := MarshalSlice(h, sps, payload)
		got, err := ParseSliceHeader(nal, sps)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if got.Type != h.Type || got.QPDelta != h.QPDelta || got.FrameNum != h.FrameNum {
			t.Fatalf("iter %d: %+v -> %+v", i, h, got)
		}
	}
}

func TestParseSliceHeaderWrongType(t *testing.T) {
	if _, err := ParseSliceHeader(NALUnit{Type: NALSEI}, DefaultSPS()); err == nil {
		t.Error("want error for non-slice NAL")
	}
}

func TestNTPConversion(t *testing.T) {
	ts := time.Date(2016, 11, 14, 9, 30, 15, 123456789, time.UTC)
	back := FromNTP(ToNTP(ts))
	if d := back.Sub(ts); d > time.Microsecond || d < -time.Microsecond {
		t.Errorf("NTP round trip drift %v", d)
	}
}

func TestTimestampSEIRoundTrip(t *testing.T) {
	ts := time.Date(2016, 5, 13, 12, 0, 0, 500000000, time.UTC)
	nal := MarshalTimestampSEI(ts)
	got, err := ParseTimestampSEI(nal)
	if err != nil {
		t.Fatal(err)
	}
	if d := got.Sub(ts); d > time.Microsecond || d < -time.Microsecond {
		t.Errorf("SEI timestamp drift %v", d)
	}
}

func TestTimestampSEISurvivesAnnexB(t *testing.T) {
	// The NTP value may contain forbidden byte patterns; the timestamp must
	// survive escaping and stream reassembly, because the latency analysis
	// depends on it.
	ts := time.Unix(0, 0).Add(257 * time.Second) // crafted to produce zero bytes
	units := []NALUnit{MarshalTimestampSEI(ts)}
	parsed, err := ParseAnnexB(MarshalAnnexB(units))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := FindTimestamp(parsed)
	if !ok {
		t.Fatal("timestamp lost in transit")
	}
	if d := got.Sub(ts); d > time.Microsecond || d < -time.Microsecond {
		t.Errorf("drift %v", d)
	}
}

func TestFindTimestampAbsent(t *testing.T) {
	units := []NALUnit{{Type: NALSliceIDR, RBSP: []byte{1}}}
	if _, ok := FindTimestamp(units); ok {
		t.Error("found timestamp where none exists")
	}
}

func TestNALTypeString(t *testing.T) {
	if NALSPS.String() != "SPS" || NALSliceIDR.String() != "IDR" {
		t.Error("NALType String broken")
	}
}
