package avc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"time"
)

// The paper (§5.1) observed that "the broadcasting client application
// regularly embeds an NTP timestamp into the video data, which is
// subsequently received by each viewing client"; subtracting it from the
// packet receive time yields the video delivery latency (Fig. 5). This file
// implements that channel as an H.264 SEI user_data_unregistered message.

// seiUserDataUnregistered is the SEI payload type carrying free-form data.
const seiUserDataUnregistered = 5

// TimestampUUID identifies our NTP-timestamp SEI messages (16 bytes).
var TimestampUUID = [16]byte{
	0x50, 0x53, 0x43, 0x50, 0x2d, 0x4e, 0x54, 0x50, // "PSCP-NTP"
	0x54, 0x53, 0x00, 0x01, 0x00, 0x00, 0x00, 0x01,
}

// ntpEpochOffset is the offset in seconds between the NTP era (1900) and
// the Unix epoch (1970).
const ntpEpochOffset = 2208988800

// ToNTP converts a time.Time to the 64-bit NTP timestamp format
// (32.32 fixed point seconds since 1900).
func ToNTP(t time.Time) uint64 {
	secs := uint64(t.Unix()) + ntpEpochOffset
	frac := uint64(t.Nanosecond()) << 32 / 1e9
	return secs<<32 | frac
}

// FromNTP converts a 64-bit NTP timestamp back to a time.Time (UTC).
func FromNTP(v uint64) time.Time {
	secs := int64(v>>32) - ntpEpochOffset
	frac := v & 0xFFFFFFFF
	nanos := frac * 1e9 >> 32
	return time.Unix(secs, int64(nanos)).UTC()
}

// MarshalTimestampSEI builds the SEI NAL unit embedding ts.
func MarshalTimestampSEI(ts time.Time) NALUnit {
	payload := make([]byte, 0, 24)
	payload = append(payload, TimestampUUID[:]...)
	var ntp [8]byte
	binary.BigEndian.PutUint64(ntp[:], ToNTP(ts))
	payload = append(payload, ntp[:]...)

	var rbsp bytes.Buffer
	rbsp.WriteByte(seiUserDataUnregistered) // payloadType < 255: single byte
	writeSEISize(&rbsp, len(payload))
	rbsp.Write(payload)
	rbsp.WriteByte(0x80) // rbsp_trailing_bits
	return NALUnit{RefIDC: 0, Type: NALSEI, RBSP: rbsp.Bytes()}
}

func writeSEISize(buf *bytes.Buffer, n int) {
	for n >= 255 {
		buf.WriteByte(255)
		n -= 255
	}
	buf.WriteByte(byte(n))
}

// ErrNoTimestamp indicates the NAL unit carries no recognised timestamp SEI.
var ErrNoTimestamp = errors.New("avc: no timestamp SEI payload")

// ParseTimestampSEI extracts the embedded NTP timestamp from a SEI NAL
// unit produced by MarshalTimestampSEI.
func ParseTimestampSEI(nal NALUnit) (time.Time, error) {
	if nal.Type != NALSEI {
		return time.Time{}, ErrNoTimestamp
	}
	data := nal.RBSP
	for len(data) >= 2 {
		// payload type
		pt := 0
		for len(data) > 0 && data[0] == 255 {
			pt += 255
			data = data[1:]
		}
		if len(data) == 0 {
			break
		}
		pt += int(data[0])
		data = data[1:]
		// payload size
		sz := 0
		for len(data) > 0 && data[0] == 255 {
			sz += 255
			data = data[1:]
		}
		if len(data) == 0 {
			break
		}
		sz += int(data[0])
		data = data[1:]
		if sz > len(data) {
			return time.Time{}, errors.New("avc: truncated SEI payload")
		}
		payload := data[:sz]
		data = data[sz:]
		if pt == seiUserDataUnregistered && sz >= 24 && bytes.Equal(payload[:16], TimestampUUID[:]) {
			ntp := binary.BigEndian.Uint64(payload[16:24])
			return FromNTP(ntp), nil
		}
		if len(data) > 0 && data[0] == 0x80 {
			break // trailing bits reached
		}
	}
	return time.Time{}, ErrNoTimestamp
}

// FindTimestamp scans a list of NAL units and returns the first embedded
// NTP timestamp found.
func FindTimestamp(units []NALUnit) (time.Time, bool) {
	for _, u := range units {
		if u.Type != NALSEI {
			continue
		}
		if ts, err := ParseTimestampSEI(u); err == nil {
			return ts, true
		}
	}
	return time.Time{}, false
}
