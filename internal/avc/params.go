package avc

import (
	"errors"
	"fmt"

	"periscope/internal/bits"
)

// SPS holds the sequence parameter set fields this implementation uses.
// The encoder always emits pic_order_cnt_type 2 and frame_mbs_only streams,
// matching the simple baseline/main encodes observed from mobile devices.
type SPS struct {
	ProfileIDC           uint8
	LevelIDC             uint8
	SPSID                uint32
	Log2MaxFrameNum      uint32 // log2_max_frame_num_minus4 + 4
	MaxNumRefFrames      uint32
	Width, Height        int // luma sample dimensions after cropping
	FrameCropBottomLuma  int // bottom crop in luma samples
	VUITimingNum, VUIDen uint32
}

// DefaultSPS returns the SPS for a Periscope-like 320x568 stream.
func DefaultSPS() SPS {
	return SPS{
		ProfileIDC:      66, // baseline
		LevelIDC:        31,
		SPSID:           0,
		Log2MaxFrameNum: 8,
		MaxNumRefFrames: 1,
		Width:           320,
		Height:          568,
	}
}

// Marshal encodes the SPS RBSP.
func (s SPS) Marshal() []byte {
	w := bits.NewWriter(32)
	w.WriteBits(uint64(s.ProfileIDC), 8)
	w.WriteBits(0, 8) // constraint flags + reserved
	w.WriteBits(uint64(s.LevelIDC), 8)
	w.WriteUE(s.SPSID)
	// profile_idc 66 is not in the high-profile list, so chroma fields are
	// absent.
	w.WriteUE(s.Log2MaxFrameNum - 4)
	w.WriteUE(2) // pic_order_cnt_type = 2: display order == decode order basis
	w.WriteUE(s.MaxNumRefFrames)
	w.WriteBit(0) // gaps_in_frame_num_value_allowed_flag

	widthMBs := (s.Width + 15) / 16
	heightMBs := (s.Height + 15) / 16
	cropRight := widthMBs*16 - s.Width
	cropBottom := heightMBs*16 - s.Height
	w.WriteUE(uint32(widthMBs - 1))
	w.WriteUE(uint32(heightMBs - 1))
	w.WriteBit(1) // frame_mbs_only_flag
	w.WriteBit(0) // direct_8x8_inference_flag
	if cropBottom > 0 || cropRight > 0 {
		w.WriteBit(1)                     // frame_cropping_flag
		w.WriteUE(0)                      // left
		w.WriteUE(uint32(cropRight / 2))  // right, in 2-sample units for 4:2:0
		w.WriteUE(0)                      // top
		w.WriteUE(uint32(cropBottom / 2)) // bottom
	} else {
		w.WriteBit(0)
	}
	if s.VUITimingNum > 0 && s.VUIDen > 0 {
		w.WriteBit(1) // vui_parameters_present_flag
		writeVUITiming(w, s.VUITimingNum, s.VUIDen)
	} else {
		w.WriteBit(0)
	}
	w.TrailingBits()
	return w.Bytes()
}

// writeVUITiming writes a minimal VUI with only timing info present.
func writeVUITiming(w *bits.Writer, num, den uint32) {
	w.WriteBit(0) // aspect_ratio_info_present_flag
	w.WriteBit(0) // overscan_info_present_flag
	w.WriteBit(0) // video_signal_type_present_flag
	w.WriteBit(0) // chroma_loc_info_present_flag
	w.WriteBit(1) // timing_info_present_flag
	w.WriteBits(uint64(num), 32)
	w.WriteBits(uint64(den), 32)
	w.WriteBit(0) // fixed_frame_rate_flag: Periscope frame rate is variable
	w.WriteBit(0) // nal_hrd_parameters_present_flag
	w.WriteBit(0) // vcl_hrd_parameters_present_flag
	w.WriteBit(0) // pic_struct_present_flag
	w.WriteBit(0) // bitstream_restriction_flag
}

// ParseSPS decodes an SPS RBSP produced by Marshal (or any SPS using
// pic_order_cnt_type 2, frame_mbs_only, non-high profile).
func ParseSPS(rbsp []byte) (SPS, error) {
	r := bits.NewReader(rbsp)
	var s SPS
	profile, err := r.ReadBits(8)
	if err != nil {
		return s, err
	}
	s.ProfileIDC = uint8(profile)
	if _, err := r.ReadBits(8); err != nil { // constraint flags
		return s, err
	}
	level, err := r.ReadBits(8)
	if err != nil {
		return s, err
	}
	s.LevelIDC = uint8(level)
	if s.SPSID, err = r.ReadUE(); err != nil {
		return s, err
	}
	switch s.ProfileIDC {
	case 100, 110, 122, 244, 44, 83, 86, 118, 128:
		return s, fmt.Errorf("avc: high-profile SPS (profile %d) not supported", s.ProfileIDC)
	}
	v, err := r.ReadUE()
	if err != nil {
		return s, err
	}
	s.Log2MaxFrameNum = v + 4
	poc, err := r.ReadUE()
	if err != nil {
		return s, err
	}
	if poc != 2 {
		return s, fmt.Errorf("avc: pic_order_cnt_type %d not supported (want 2)", poc)
	}
	if s.MaxNumRefFrames, err = r.ReadUE(); err != nil {
		return s, err
	}
	if _, err = r.ReadBit(); err != nil { // gaps allowed flag
		return s, err
	}
	wm, err := r.ReadUE()
	if err != nil {
		return s, err
	}
	hm, err := r.ReadUE()
	if err != nil {
		return s, err
	}
	frameMBsOnly, err := r.ReadBit()
	if err != nil {
		return s, err
	}
	if frameMBsOnly != 1 {
		return s, errors.New("avc: interlaced SPS not supported")
	}
	if _, err = r.ReadBit(); err != nil { // direct_8x8_inference_flag
		return s, err
	}
	s.Width = int(wm+1) * 16
	s.Height = int(hm+1) * 16
	crop, err := r.ReadBit()
	if err != nil {
		return s, err
	}
	if crop == 1 {
		l, _ := r.ReadUE()
		rr, _ := r.ReadUE()
		tp, _ := r.ReadUE()
		bt, err := r.ReadUE()
		if err != nil {
			return s, err
		}
		s.Width -= int(l+rr) * 2
		s.Height -= int(tp+bt) * 2
		s.FrameCropBottomLuma = int(bt) * 2
	}
	vui, err := r.ReadBit()
	if err != nil {
		return s, err
	}
	if vui == 1 {
		if err := parseVUITiming(r, &s); err != nil {
			return s, err
		}
	}
	return s, nil
}

func parseVUITiming(r *bits.Reader, s *SPS) error {
	for _, n := range []uint{1, 1, 1, 1} { // four absent-flag fields
		if _, err := r.ReadBits(n); err != nil {
			return err
		}
	}
	timing, err := r.ReadBit()
	if err != nil {
		return err
	}
	if timing == 1 {
		num, err := r.ReadBits(32)
		if err != nil {
			return err
		}
		den, err := r.ReadBits(32)
		if err != nil {
			return err
		}
		s.VUITimingNum = uint32(num)
		s.VUIDen = uint32(den)
		if _, err := r.ReadBit(); err != nil { // fixed_frame_rate_flag
			return err
		}
	}
	return nil
}

// PPS holds the picture parameter set fields this implementation uses.
type PPS struct {
	PPSID        uint32
	SPSID        uint32
	PicInitQP    int32 // pic_init_qp_minus26 + 26
	EntropyCABAC bool
}

// DefaultPPS returns a PPS referencing SPS 0 with pic_init_qp 26.
func DefaultPPS() PPS { return PPS{PicInitQP: 26} }

// Marshal encodes the PPS RBSP.
func (p PPS) Marshal() []byte {
	w := bits.NewWriter(8)
	w.WriteUE(p.PPSID)
	w.WriteUE(p.SPSID)
	if p.EntropyCABAC {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}
	w.WriteBit(0)               // bottom_field_pic_order_in_frame_present_flag
	w.WriteUE(0)                // num_slice_groups_minus1
	w.WriteUE(0)                // num_ref_idx_l0_default_active_minus1
	w.WriteUE(0)                // num_ref_idx_l1_default_active_minus1
	w.WriteBit(0)               // weighted_pred_flag
	w.WriteBits(0, 2)           // weighted_bipred_idc
	w.WriteSE(p.PicInitQP - 26) // pic_init_qp_minus26
	w.WriteSE(0)                // pic_init_qs_minus26
	w.WriteSE(0)                // chroma_qp_index_offset
	w.WriteBit(0)               // deblocking_filter_control_present_flag
	w.WriteBit(0)               // constrained_intra_pred_flag
	w.WriteBit(0)               // redundant_pic_cnt_present_flag
	w.TrailingBits()
	return w.Bytes()
}

// ParsePPS decodes a PPS RBSP.
func ParsePPS(rbsp []byte) (PPS, error) {
	r := bits.NewReader(rbsp)
	var p PPS
	var err error
	if p.PPSID, err = r.ReadUE(); err != nil {
		return p, err
	}
	if p.SPSID, err = r.ReadUE(); err != nil {
		return p, err
	}
	cabac, err := r.ReadBit()
	if err != nil {
		return p, err
	}
	p.EntropyCABAC = cabac == 1
	if _, err = r.ReadBit(); err != nil {
		return p, err
	}
	groups, err := r.ReadUE()
	if err != nil {
		return p, err
	}
	if groups != 0 {
		return p, errors.New("avc: slice groups not supported")
	}
	if _, err = r.ReadUE(); err != nil {
		return p, err
	}
	if _, err = r.ReadUE(); err != nil {
		return p, err
	}
	if _, err = r.ReadBit(); err != nil {
		return p, err
	}
	if _, err = r.ReadBits(2); err != nil {
		return p, err
	}
	qp, err := r.ReadSE()
	if err != nil {
		return p, err
	}
	p.PicInitQP = qp + 26
	return p, nil
}
