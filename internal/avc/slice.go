package avc

import (
	"fmt"

	"periscope/internal/bits"
)

// SliceType is the H.264 slice type (values 0-4; the encoder uses the
// non-repeated range).
type SliceType uint32

// Slice types.
const (
	SliceP SliceType = 0
	SliceB SliceType = 1
	SliceI SliceType = 2
)

func (t SliceType) String() string {
	switch t % 5 {
	case SliceP:
		return "P"
	case SliceB:
		return "B"
	case SliceI:
		return "I"
	default:
		return fmt.Sprintf("slice(%d)", uint32(t))
	}
}

// SliceHeader carries the fields of interest for the quality analysis: the
// slice type (frame-pattern classification, §5.2) and the QP (Fig. 6(b)).
type SliceHeader struct {
	Type     SliceType
	FrameNum uint32
	IDR      bool
	IDRPicID uint32
	QPDelta  int32
}

// QP returns the slice quantization parameter given the PPS it references.
func (h SliceHeader) QP(pps PPS) int32 { return pps.PicInitQP + h.QPDelta }

// MarshalSlice encodes a slice NAL unit consisting of the slice header
// (written with the restricted syntax produced by the synthetic encoder:
// CAVLC, no reference modifications, no weighted prediction) followed by
// payload bytes standing in for entropy-coded macroblock data.
func MarshalSlice(h SliceHeader, sps SPS, payload []byte) NALUnit {
	w := bits.NewWriter(16 + len(payload))
	w.WriteUE(0)              // first_mb_in_slice
	w.WriteUE(uint32(h.Type)) // slice_type
	w.WriteUE(0)              // pic_parameter_set_id
	w.WriteBits(uint64(h.FrameNum&(1<<sps.Log2MaxFrameNum-1)), uint(sps.Log2MaxFrameNum))
	if h.IDR {
		w.WriteUE(h.IDRPicID)
	}
	// pic_order_cnt_type == 2: no POC syntax in the slice header.
	switch h.Type % 5 {
	case SliceB:
		w.WriteBit(1) // direct_spatial_mv_pred_flag
		w.WriteBit(0) // num_ref_idx_active_override_flag
		w.WriteBit(0) // ref_pic_list_modification_flag_l0
		w.WriteBit(0) // ref_pic_list_modification_flag_l1
	case SliceP:
		w.WriteBit(0) // num_ref_idx_active_override_flag
		w.WriteBit(0) // ref_pic_list_modification_flag_l0
	}
	// dec_ref_pic_marking (nal_ref_idc != 0 for reference slices).
	if h.IDR {
		w.WriteBit(0) // no_output_of_prior_pics_flag
		w.WriteBit(0) // long_term_reference_flag
	} else if h.Type%5 != SliceB {
		w.WriteBit(0) // adaptive_ref_pic_marking_mode_flag
	}
	w.WriteSE(h.QPDelta) // slice_qp_delta
	// deblocking filter fields absent (PPS control flag is 0).
	w.ByteAlign()
	rbsp := append(w.Bytes(), payload...)

	typ := NALSliceNonIDR
	refIDC := uint8(2)
	if h.IDR {
		typ = NALSliceIDR
		refIDC = 3
	} else if h.Type%5 == SliceB {
		refIDC = 0 // non-reference B frames
	}
	return NALUnit{RefIDC: refIDC, Type: typ, RBSP: rbsp}
}

// ParseSliceHeader decodes the restricted slice-header syntax written by
// MarshalSlice. nal must be a slice NAL unit.
func ParseSliceHeader(nal NALUnit, sps SPS) (SliceHeader, error) {
	if nal.Type != NALSliceIDR && nal.Type != NALSliceNonIDR {
		return SliceHeader{}, fmt.Errorf("avc: NAL type %v is not a slice", nal.Type)
	}
	r := bits.NewReader(nal.RBSP)
	var h SliceHeader
	h.IDR = nal.Type == NALSliceIDR
	if _, err := r.ReadUE(); err != nil { // first_mb_in_slice
		return h, err
	}
	st, err := r.ReadUE()
	if err != nil {
		return h, err
	}
	h.Type = SliceType(st)
	if _, err := r.ReadUE(); err != nil { // pic_parameter_set_id
		return h, err
	}
	fn, err := r.ReadBits(uint(sps.Log2MaxFrameNum))
	if err != nil {
		return h, err
	}
	h.FrameNum = uint32(fn)
	if h.IDR {
		if h.IDRPicID, err = r.ReadUE(); err != nil {
			return h, err
		}
	}
	switch h.Type % 5 {
	case SliceB:
		if _, err := r.ReadBits(4); err != nil {
			return h, err
		}
	case SliceP:
		if _, err := r.ReadBits(2); err != nil {
			return h, err
		}
	}
	if h.IDR {
		if _, err := r.ReadBits(2); err != nil {
			return h, err
		}
	} else if h.Type%5 != SliceB {
		if _, err := r.ReadBit(); err != nil {
			return h, err
		}
	}
	if h.QPDelta, err = r.ReadSE(); err != nil {
		return h, err
	}
	return h, nil
}
