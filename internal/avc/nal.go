// Package avc implements the subset of H.264/AVC bitstream syntax that the
// measurement study relies on: NAL unit framing (Annex B start codes and
// AVCC length prefixes), emulation prevention, SPS/PPS parameter sets,
// slice headers carrying the quantization parameter (QP) the paper extracts
// for Fig. 6(b), and SEI user-data messages carrying the NTP timestamps the
// broadcaster embeds into the video (used for delivery-latency measurement,
// Fig. 5).
//
// Periscope streams are 320x568 AVC with a variable frame rate up to
// 30 fps; the synthetic encoder in internal/media emits bitstreams with
// exactly those properties.
package avc

import (
	"bytes"
	"errors"
	"fmt"
)

// NALType identifies the NAL unit type (low 5 bits of the NAL header).
type NALType uint8

// NAL unit types used in this implementation.
const (
	NALSliceNonIDR NALType = 1
	NALSliceIDR    NALType = 5
	NALSEI         NALType = 6
	NALSPS         NALType = 7
	NALPPS         NALType = 8
	NALAUD         NALType = 9
	NALFiller      NALType = 12
)

func (t NALType) String() string {
	switch t {
	case NALSliceNonIDR:
		return "slice"
	case NALSliceIDR:
		return "IDR"
	case NALSEI:
		return "SEI"
	case NALSPS:
		return "SPS"
	case NALPPS:
		return "PPS"
	case NALAUD:
		return "AUD"
	case NALFiller:
		return "filler"
	default:
		return fmt.Sprintf("NAL(%d)", uint8(t))
	}
}

// NALUnit is one network abstraction layer unit: header byte plus RBSP
// payload (unescaped).
type NALUnit struct {
	RefIDC uint8 // nal_ref_idc, 2 bits
	Type   NALType
	RBSP   []byte // raw byte sequence payload, without emulation prevention
}

// Header returns the one-byte NAL header.
func (n NALUnit) Header() byte { return n.RefIDC<<5 | byte(n.Type)&0x1F }

// ErrNoNAL is returned when scanning finds no NAL unit.
var ErrNoNAL = errors.New("avc: no NAL unit found")

// EscapeRBSP inserts emulation-prevention bytes (0x03) so that the byte
// patterns 0x000000, 0x000001 and 0x000002 never appear in the payload.
func EscapeRBSP(rbsp []byte) []byte {
	out := make([]byte, 0, len(rbsp)+len(rbsp)/64+8)
	zeros := 0
	for _, b := range rbsp {
		if zeros >= 2 && b <= 3 {
			out = append(out, 0x03)
			zeros = 0
		}
		out = append(out, b)
		if b == 0 {
			zeros++
		} else {
			zeros = 0
		}
	}
	return out
}

// UnescapeRBSP removes emulation-prevention bytes.
func UnescapeRBSP(ebsp []byte) []byte {
	out := make([]byte, 0, len(ebsp))
	zeros := 0
	for i := 0; i < len(ebsp); i++ {
		b := ebsp[i]
		if zeros >= 2 && b == 0x03 && i+1 < len(ebsp) && ebsp[i+1] <= 3 {
			zeros = 0
			continue // drop the emulation prevention byte
		}
		out = append(out, b)
		if b == 0 {
			zeros++
		} else {
			zeros = 0
		}
	}
	return out
}

// startCode is the 4-byte Annex B start code. (3-byte codes are also
// accepted when parsing.)
var startCode = []byte{0, 0, 0, 1}

// MarshalAnnexB serializes NAL units with 4-byte start codes and emulation
// prevention, the framing used inside MPEG-TS (HLS segments).
func MarshalAnnexB(units []NALUnit) []byte {
	var buf bytes.Buffer
	for _, u := range units {
		buf.Write(startCode)
		buf.WriteByte(u.Header())
		buf.Write(EscapeRBSP(u.RBSP))
	}
	return buf.Bytes()
}

// ParseAnnexB splits an Annex B stream into NAL units, accepting both
// 3- and 4-byte start codes.
func ParseAnnexB(data []byte) ([]NALUnit, error) {
	var units []NALUnit
	i := nextStartCode(data, 0)
	if i < 0 {
		return nil, ErrNoNAL
	}
	for i < len(data) {
		// Skip the start code itself.
		j := i
		if data[j] == 0 && data[j+1] == 0 && data[j+2] == 1 {
			j += 3
		} else {
			j += 4
		}
		end := nextStartCode(data, j)
		if end < 0 {
			end = len(data)
		}
		if j < end {
			u, err := decodeNAL(data[j:end])
			if err != nil {
				return units, err
			}
			units = append(units, u)
		}
		i = end
	}
	return units, nil
}

// nextStartCode returns the index of the next 3- or 4-byte start code at or
// after from, or -1.
func nextStartCode(data []byte, from int) int {
	for i := from; i+3 <= len(data); i++ {
		if data[i] == 0 && data[i+1] == 0 {
			if data[i+2] == 1 {
				// Prefer reporting the 4-byte form if a zero precedes.
				if i > from && data[i-1] == 0 {
					return i - 1
				}
				return i
			}
		}
	}
	return -1
}

func decodeNAL(ebsp []byte) (NALUnit, error) {
	if len(ebsp) == 0 {
		return NALUnit{}, ErrNoNAL
	}
	h := ebsp[0]
	if h&0x80 != 0 {
		return NALUnit{}, fmt.Errorf("avc: forbidden_zero_bit set in NAL header %#x", h)
	}
	return NALUnit{
		RefIDC: h >> 5 & 0x3,
		Type:   NALType(h & 0x1F),
		RBSP:   UnescapeRBSP(ebsp[1:]),
	}, nil
}

// MarshalAVCC serializes NAL units with 4-byte big-endian length prefixes,
// the framing used inside FLV/RTMP video tags.
func MarshalAVCC(units []NALUnit) []byte {
	var buf bytes.Buffer
	for _, u := range units {
		body := append([]byte{u.Header()}, EscapeRBSP(u.RBSP)...)
		var l [4]byte
		l[0] = byte(len(body) >> 24)
		l[1] = byte(len(body) >> 16)
		l[2] = byte(len(body) >> 8)
		l[3] = byte(len(body))
		buf.Write(l[:])
		buf.Write(body)
	}
	return buf.Bytes()
}

// ParseAVCC splits a length-prefixed NAL stream into units.
func ParseAVCC(data []byte) ([]NALUnit, error) {
	var units []NALUnit
	for len(data) > 0 {
		if len(data) < 4 {
			return units, errors.New("avc: truncated AVCC length")
		}
		n := int(data[0])<<24 | int(data[1])<<16 | int(data[2])<<8 | int(data[3])
		data = data[4:]
		if n > len(data) || n == 0 {
			return units, fmt.Errorf("avc: AVCC unit length %d exceeds remaining %d", n, len(data))
		}
		u, err := decodeNAL(data[:n])
		if err != nil {
			return units, err
		}
		units = append(units, u)
		data = data[n:]
	}
	return units, nil
}
