package vclock

import (
	"sync"
	"testing"
	"time"
)

func TestManualAdvance(t *testing.T) {
	start := time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC)
	c := NewManual(start)
	if !c.Now().Equal(start) {
		t.Fatal("initial time wrong")
	}
	c.Advance(90 * time.Second)
	if got := c.Now(); !got.Equal(start.Add(90 * time.Second)) {
		t.Errorf("Now = %v", got)
	}
	c.Set(start)
	if !c.Now().Equal(start) {
		t.Error("Set did not reset")
	}
}

func TestManualConcurrent(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Advance(time.Second)
			_ = c.Now()
		}()
	}
	wg.Wait()
	if got := c.Now(); !got.Equal(time.Unix(50, 0)) {
		t.Errorf("Now = %v, want 50s", got)
	}
}

func TestRealClock(t *testing.T) {
	var c Clock = Real{}
	before := time.Now().Add(-time.Second)
	if c.Now().Before(before) {
		t.Error("Real clock lagging")
	}
}
