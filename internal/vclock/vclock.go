// Package vclock abstracts time so population models and experiments can
// run in compressed virtual time (a 10-hour crawl simulates in
// milliseconds) while wire-protocol integration tests keep using the real
// clock.
package vclock

import (
	"sync"
	"time"
)

// Clock supplies the current time.
type Clock interface {
	Now() time.Time
}

// Real is the system clock.
type Real struct{}

// Now returns time.Now().
func (Real) Now() time.Time { return time.Now() }

// Manual is a virtual clock advanced explicitly by the test or simulation
// driver. It is safe for concurrent use.
type Manual struct {
	mu sync.Mutex
	t  time.Time
}

// NewManual returns a Manual clock set to start.
func NewManual(start time.Time) *Manual { return &Manual{t: start} }

// Now returns the current virtual time.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.t
}

// Advance moves the clock forward by d and returns the new time.
func (m *Manual) Advance(d time.Duration) time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.t = m.t.Add(d)
	return m.t
}

// Set jumps the clock to t.
func (m *Manual) Set(t time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.t = t
}
