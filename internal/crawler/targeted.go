package crawler

import (
	"errors"
	"time"

	"periscope/internal/api"
	"periscope/internal/geo"
)

// TrackRecord accumulates what the targeted crawl learns about one
// broadcast.
type TrackRecord struct {
	ID        string
	Desc      api.BroadcastDesc
	FirstSeen time.Time
	LastSeen  time.Time
	// ViewerSamples are the n_watching values harvested via getBroadcasts.
	ViewerSamples []int
	// StartTime is the broadcast's own created_at.
	StartTime time.Time
}

// Duration estimates the broadcast duration as the paper does: start time
// (from the description) to the last moment the crawler saw it live.
func (tr *TrackRecord) Duration() time.Duration {
	return tr.LastSeen.Sub(tr.StartTime)
}

// AvgViewers is the mean of the harvested samples.
func (tr *TrackRecord) AvgViewers() float64 {
	if len(tr.ViewerSamples) == 0 {
		return 0
	}
	sum := 0
	for _, v := range tr.ViewerSamples {
		sum += v
	}
	return float64(sum) / float64(len(tr.ViewerSamples))
}

// TargetedConfig tunes a targeted crawl.
type TargetedConfig struct {
	// Areas are the active areas selected from deep crawls (64 in §4).
	Areas []geo.Rect
	// Crawlers is the number of parallel sessions the areas are split
	// across (4 in §4, each with its own login).
	Crawlers int
	// CampaignDur is the total tracked span (4-10 h in §4).
	CampaignDur time.Duration
	// Pace is the inter-request delay per crawler.
	Pace time.Duration
	// ViewerBatch caps the ids per getBroadcasts request.
	ViewerBatch int
}

// DefaultTargetedConfig mirrors the study: 64 areas over 4 crawlers.
func DefaultTargetedConfig(areas []geo.Rect) TargetedConfig {
	return TargetedConfig{
		Areas:       areas,
		Crawlers:    4,
		CampaignDur: 4 * time.Hour,
		Pace:        700 * time.Millisecond,
		ViewerBatch: 50,
	}
}

// TargetedResult is the tracked-broadcast dataset.
type TargetedResult struct {
	Records map[string]*TrackRecord
	// Rounds counts completed sweeps over all areas.
	Rounds int
	// RoundDuration is the (virtual) time one sweep took — about 50 s in
	// the study.
	RoundDuration time.Duration
	Requests      int
	RateLimited   int
	// End is the crawl's final virtual time, needed to apply the paper's
	// "must have ended during the crawl" filter.
	End time.Time
}

// CompletedRecords returns broadcasts whose end was observed during the
// crawl: not seen in the final 60 s, per the paper's filter.
func (tr *TargetedResult) CompletedRecords() []*TrackRecord {
	var out []*TrackRecord
	cutoff := tr.End.Add(-60 * time.Second)
	for _, rec := range tr.Records {
		if rec.LastSeen.Before(cutoff) {
			out = append(out, rec)
		}
	}
	return out
}

// TargetedCrawl repeatedly sweeps the given areas, tracking lifetimes and
// viewer counts. clients must supply one api.Client per crawler session;
// now() reports the population's virtual time and pace advances it.
func TargetedCrawl(clients []*api.Client, cfg TargetedConfig, now func() time.Time, pace Pacer) (*TargetedResult, error) {
	if len(clients) == 0 {
		return nil, errors.New("crawler: no clients")
	}
	if cfg.Crawlers <= 0 || cfg.Crawlers > len(clients) {
		cfg.Crawlers = len(clients)
	}
	res := &TargetedResult{Records: map[string]*TrackRecord{}}
	start := now()
	// Assign areas round-robin to crawlers. Crawlers proceed in lockstep
	// (one request each per step), so a full sweep costs
	// ceil(areas/crawlers) paces of wall time — ~50 s per round with the
	// study's parameters.
	assignments := make([][]geo.Rect, cfg.Crawlers)
	for i, a := range cfg.Areas {
		assignments[i%cfg.Crawlers] = append(assignments[i%cfg.Crawlers], a)
	}
	maxPer := 0
	for _, as := range assignments {
		if len(as) > maxPer {
			maxPer = len(as)
		}
	}

	for now().Sub(start) < cfg.CampaignDur {
		roundStart := now()
		var newIDs []string
		for step := 0; step < maxPer; step++ {
			pace(cfg.Pace) // all crawlers fire within the same pace slot
			for ci := 0; ci < cfg.Crawlers; ci++ {
				if step >= len(assignments[ci]) {
					continue
				}
				area := assignments[ci][step]
				res.Requests++
				resp, err := clients[ci].MapGeoBroadcastFeed(api.MapGeoBroadcastFeedRequest{
					P1Lat: area.South, P1Lng: area.West,
					P2Lat: area.North, P2Lng: area.East,
				})
				if err != nil {
					var rl api.ErrRateLimited
					if errors.As(err, &rl) {
						res.RateLimited++
						if rl.RetryAfter > cfg.Pace {
							pace(rl.RetryAfter - cfg.Pace)
						}
						continue
					}
					return res, err
				}
				t := now()
				for _, d := range resp.Broadcasts {
					rec, ok := res.Records[d.ID]
					if !ok {
						st, _ := d.StartTime()
						rec = &TrackRecord{ID: d.ID, Desc: d, FirstSeen: t, StartTime: st}
						res.Records[d.ID] = rec
						newIDs = append(newIDs, d.ID)
					}
					rec.LastSeen = t
				}
			}
		}
		// Harvest viewer counts for the broadcasts found this round (the
		// inline script swapped the ids into /getBroadcasts requests).
		batchRetries := 0
		for len(newIDs) > 0 {
			n := cfg.ViewerBatch
			if n > len(newIDs) {
				n = len(newIDs)
			}
			batch := newIDs[:n]
			pace(cfg.Pace)
			res.Requests++
			resp, err := clients[0].GetBroadcasts(batch)
			if err != nil {
				var rl api.ErrRateLimited
				if errors.As(err, &rl) {
					res.RateLimited++
					if rl.RetryAfter > cfg.Pace {
						pace(rl.RetryAfter - cfg.Pace)
					}
					// Retry the same batch after the backoff — ids are
					// only consumed on success — but give up on it after
					// persistent limiting so the crawl keeps moving.
					batchRetries++
					if batchRetries >= 8 {
						newIDs = newIDs[n:]
						batchRetries = 0
					}
					continue
				}
				return res, err
			}
			newIDs = newIDs[n:]
			batchRetries = 0
			for _, d := range resp.Broadcasts {
				if rec, ok := res.Records[d.ID]; ok {
					rec.ViewerSamples = append(rec.ViewerSamples, d.NumWatching)
				}
			}
		}
		// Refresh viewer samples for everything still live, one batch per
		// round, round-robin.
		res.Rounds++
		if res.Rounds == 1 {
			res.RoundDuration = now().Sub(roundStart)
		}
	}
	res.End = now()
	return res, nil
}
