package crawler

import (
	"net/http/httptest"
	"testing"
	"time"

	"periscope/internal/api"
	"periscope/internal/broadcastmodel"
)

// testRig wires a population + API server + crawler clients with a virtual
// pacer.
type testRig struct {
	pop     *broadcastmodel.Population
	srv     *api.Server
	hs      *httptest.Server
	clients []*api.Client
}

func newRig(t *testing.T, concurrent int, rateLimit float64) *testRig {
	t.Helper()
	pc := broadcastmodel.DefaultConfig()
	pc.TargetConcurrent = concurrent
	pop := broadcastmodel.New(pc, time.Date(2016, 4, 2, 10, 0, 0, 0, time.UTC))
	scfg := api.DefaultServerConfig()
	scfg.RateLimit = rateLimit
	srv := api.NewServer(pop, nil, scfg)
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	rig := &testRig{pop: pop, srv: srv, hs: hs}
	for i := 0; i < 4; i++ {
		rig.clients = append(rig.clients, api.NewClient(hs.URL, "crawler-"+string(rune('a'+i)), nil))
	}
	return rig
}

func (r *testRig) pacer() Pacer {
	return func(d time.Duration) { r.pop.Advance(d) }
}

func TestDeepCrawlFindsMostBroadcasts(t *testing.T) {
	rig := newRig(t, 600, 0)
	res, err := DeepCrawl(rig.clients[0], DefaultDeepConfig(), rig.pacer())
	if err != nil {
		t.Fatal(err)
	}
	// Public + disclosed is ~85% of the population; the crawl churns the
	// population while running, so accept a broad band around it.
	found := res.TotalFound()
	if found < 300 {
		t.Errorf("deep crawl found only %d of ~510 visible", found)
	}
	if len(res.Cumulative) != len(res.Areas) {
		t.Fatal("cumulative/areas length mismatch")
	}
	// Cumulative curve must be non-decreasing and saturating.
	for i := 1; i < len(res.Cumulative); i++ {
		if res.Cumulative[i] < res.Cumulative[i-1] {
			t.Fatal("cumulative curve decreased")
		}
	}
	firstHalf := res.Cumulative[len(res.Cumulative)/2]
	if float64(firstHalf) < 0.5*float64(found) {
		t.Errorf("first half of requests found %d of %d; curve not front-loaded", firstHalf, found)
	}
}

func TestDeepCrawlZoomDiscoversMore(t *testing.T) {
	rig := newRig(t, 600, 0)
	res, err := DeepCrawl(rig.clients[0], DefaultDeepConfig(), rig.pacer())
	if err != nil {
		t.Fatal(err)
	}
	// The world query alone is capped at 50; recursion must beat it.
	if res.Cumulative[0] >= res.TotalFound() {
		t.Error("zooming discovered nothing beyond the root query")
	}
	if res.Cumulative[0] > 50 {
		t.Errorf("root query returned %d > visibility cap", res.Cumulative[0])
	}
}

func TestDeepCrawlSpatialConcentration(t *testing.T) {
	rig := newRig(t, 800, 0)
	res, err := DeepCrawl(rig.clients[0], DefaultDeepConfig(), rig.pacer())
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 1(b): half of the areas contain at least 80% of broadcasts.
	share := res.TopAreaShare(0.5)
	if share < 0.75 {
		t.Errorf("top-half area share = %.2f, paper reports >= 0.80", share)
	}
}

func TestDeepCrawlPacedByRateLimit(t *testing.T) {
	rig := newRig(t, 400, 2) // 2 rps server limit
	cfg := DefaultDeepConfig()
	cfg.Pace = 100 * time.Millisecond // crawl too fast on purpose
	res, err := DeepCrawl(rig.clients[0], cfg, rig.pacer())
	if err != nil {
		t.Fatal(err)
	}
	if res.RateLimited == 0 {
		t.Error("aggressive crawl never saw a 429")
	}
	if res.TotalFound() == 0 {
		t.Error("backoff failed to recover from rate limiting")
	}
}

func TestTargetedCrawlTracksLifetimes(t *testing.T) {
	rig := newRig(t, 600, 0)
	deep, err := DeepCrawl(rig.clients[0], DefaultDeepConfig(), rig.pacer())
	if err != nil {
		t.Fatal(err)
	}
	tcfg := DefaultTargetedConfig(deep.TopAreas(64))
	tcfg.CampaignDur = 2 * time.Hour
	res, err := TargetedCrawl(rig.clients, tcfg, rig.pop.Now, rig.pacer())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) < 200 {
		t.Fatalf("tracked only %d broadcasts", len(res.Records))
	}
	completed := res.CompletedRecords()
	if len(completed) < 50 {
		t.Fatalf("only %d completed broadcasts in 2h campaign", len(completed))
	}
	withViewers := 0
	for _, rec := range completed {
		if rec.Duration() <= 0 {
			t.Fatalf("broadcast %s has non-positive duration %v", rec.ID, rec.Duration())
		}
		if len(rec.ViewerSamples) > 0 {
			withViewers++
		}
	}
	if withViewers == 0 {
		t.Error("no viewer information harvested")
	}
}

func TestTargetedCrawlRoundDuration(t *testing.T) {
	// 64 areas over 4 crawlers at 0.7 s pace = 16 slots ~ 11s sweep plus
	// viewer harvesting; the paper reports ~50 s rounds with its pacing.
	rig := newRig(t, 600, 0)
	deep, err := DeepCrawl(rig.clients[0], DefaultDeepConfig(), rig.pacer())
	if err != nil {
		t.Fatal(err)
	}
	tcfg := DefaultTargetedConfig(deep.TopAreas(64))
	tcfg.CampaignDur = 30 * time.Minute
	res, err := TargetedCrawl(rig.clients, tcfg, rig.pop.Now, rig.pacer())
	if err != nil {
		t.Fatal(err)
	}
	if res.RoundDuration <= 0 || res.RoundDuration > 3*time.Minute {
		t.Errorf("round duration = %v", res.RoundDuration)
	}
	if res.Rounds < 5 {
		t.Errorf("only %d rounds in 30 virtual minutes", res.Rounds)
	}
}

func TestTargetedCrawlNoClients(t *testing.T) {
	if _, err := TargetedCrawl(nil, TargetedConfig{}, time.Now, func(time.Duration) {}); err == nil {
		t.Error("want error with no clients")
	}
}
