// Package crawler reimplements the §4 measurement apparatus: a deep crawl
// that recursively zooms the world map (each area split into four
// quadrants) until no substantially new broadcasts surface, and a targeted
// crawl in which four sessions (distinct logins, distinct rate-limit
// buckets) repeatedly query the most active areas to track broadcast
// lifetimes and viewership. Rate limiting (HTTP 429) forces request
// pacing, exactly as the paper describes; pacing advances the virtual
// population clock through the Pacer hook, so a ten-hour crawl simulates
// in milliseconds.
package crawler

import (
	"errors"
	"sort"
	"time"

	"periscope/internal/api"
	"periscope/internal/geo"
)

// Pacer advances time by d between requests: in experiments it advances
// the population's virtual clock; against a live service it would sleep.
type Pacer func(d time.Duration)

// DeepConfig tunes a deep crawl.
type DeepConfig struct {
	// Root is the starting area (the whole world by default).
	Root geo.Rect
	// MaxDepth bounds the quadtree recursion.
	MaxDepth int
	// SubdivideThreshold: recurse into an area's quadrants when the area
	// returned at least this many broadcasts (the visibility cap means a
	// full response hides more underneath).
	SubdivideThreshold int
	// Pace is the inter-request delay respected to stay under the rate
	// limit.
	Pace time.Duration
	// BackoffOn429 is the extra wait after a Too Many Requests response.
	BackoffOn429 time.Duration
}

// DefaultDeepConfig matches the study's crawler behaviour.
func DefaultDeepConfig() DeepConfig {
	return DeepConfig{
		Root:               geo.World(),
		MaxDepth:           6,
		SubdivideThreshold: 8,
		Pace:               600 * time.Millisecond,
		BackoffOn429:       3 * time.Second,
	}
}

// AreaResult is one queried area with its discovery count.
type AreaResult struct {
	Area geo.Rect
	// Found is the number of broadcasts returned for the area.
	Found int
	// NewFound is how many had not been seen earlier in this crawl.
	NewFound int
	Depth    int
}

// DeepResult is the outcome of a deep crawl.
type DeepResult struct {
	Areas []AreaResult
	// Cumulative[i] is the distinct-broadcast count after i+1 requests
	// (Fig. 1's y-axis).
	Cumulative []int
	Broadcasts map[string]api.BroadcastDesc
	// Duration is the crawl's span in (virtual) time.
	Duration time.Duration
	// Requests counts API calls, RateLimited the 429 responses.
	Requests    int
	RateLimited int
}

// TotalFound returns the number of distinct broadcasts discovered.
func (r *DeepResult) TotalFound() int { return len(r.Broadcasts) }

// TopAreaShare returns the fraction of discovered broadcasts contained in
// the top `frac` fraction of leaf areas (by per-area count). The paper
// reports that half of the areas hold at least 80% of the broadcasts.
func (r *DeepResult) TopAreaShare(frac float64) float64 {
	counts := make([]int, 0, len(r.Areas))
	total := 0
	for _, a := range r.Areas {
		counts = append(counts, a.NewFound)
		total += a.NewFound
	}
	if total == 0 {
		return 0
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	n := int(float64(len(counts)) * frac)
	if n < 1 {
		n = 1
	}
	top := 0
	for _, c := range counts[:n] {
		top += c
	}
	return float64(top) / float64(total)
}

// TopAreas returns the k leaf areas with the highest discovery counts, the
// input to a targeted crawl.
func (r *DeepResult) TopAreas(k int) []geo.Rect {
	areas := append([]AreaResult(nil), r.Areas...)
	sort.Slice(areas, func(i, j int) bool { return areas[i].NewFound > areas[j].NewFound })
	if k > len(areas) {
		k = len(areas)
	}
	out := make([]geo.Rect, 0, k)
	for _, a := range areas[:k] {
		out = append(out, a.Area)
	}
	return out
}

// DeepCrawl explores the map breadth-first with recursive subdivision.
func DeepCrawl(client *api.Client, cfg DeepConfig, pace Pacer) (*DeepResult, error) {
	if !cfg.Root.Valid() {
		cfg.Root = geo.World()
	}
	res := &DeepResult{Broadcasts: map[string]api.BroadcastDesc{}}
	type workItem struct {
		area  geo.Rect
		depth int
	}
	queue := []workItem{{cfg.Root, 0}}
	for len(queue) > 0 {
		item := queue[0]
		queue = queue[1:]
		resp, err := queryArea(client, item.area, cfg, pace, res)
		if err != nil {
			return res, err
		}
		newFound := 0
		for _, d := range resp.Broadcasts {
			if _, ok := res.Broadcasts[d.ID]; !ok {
				res.Broadcasts[d.ID] = d
				newFound++
			}
		}
		res.Areas = append(res.Areas, AreaResult{
			Area: item.area, Found: len(resp.Broadcasts), NewFound: newFound, Depth: item.depth,
		})
		res.Cumulative = append(res.Cumulative, len(res.Broadcasts))
		// Zoom in while responses stay rich: a capped response means the
		// area hides more broadcasts than it shows.
		if item.depth < cfg.MaxDepth && len(resp.Broadcasts) >= cfg.SubdivideThreshold {
			for _, q := range item.area.Quadrants() {
				queue = append(queue, workItem{q, item.depth + 1})
			}
		}
	}
	res.Duration = time.Duration(res.Requests) * cfg.Pace
	return res, nil
}

// queryArea issues one mapGeoBroadcastFeed request with pacing and 429
// backoff.
func queryArea(client *api.Client, area geo.Rect, cfg DeepConfig, pace Pacer, res *DeepResult) (api.MapGeoBroadcastFeedResponse, error) {
	req := api.MapGeoBroadcastFeedRequest{
		P1Lat: area.South, P1Lng: area.West,
		P2Lat: area.North, P2Lng: area.East,
		IncludeReplay: false, // live broadcasts only, like the inline script
	}
	for attempt := 0; attempt < 8; attempt++ {
		if pace != nil {
			pace(cfg.Pace)
		}
		res.Requests++
		resp, err := client.MapGeoBroadcastFeed(req)
		if err == nil {
			return resp, nil
		}
		var rl api.ErrRateLimited
		if errors.As(err, &rl) {
			res.RateLimited++
			if pace != nil {
				// Wait at least the server's Retry-After hint so the
				// token bucket has actually refilled when we come back.
				wait := cfg.BackoffOn429
				if rl.RetryAfter > wait {
					wait = rl.RetryAfter
				}
				pace(wait)
			}
			continue
		}
		return resp, err
	}
	return api.MapGeoBroadcastFeedResponse{}, errors.New("crawler: persistent rate limiting")
}
