package player

import (
	"math/rand"
	"time"

	"periscope/internal/media"
)

// SimConfig parameterises one simulated 60-second viewing session.
type SimConfig struct {
	// BandwidthBps is the access-link capacity in bits per second
	// (0 = the study's unlimited >100 Mbps tethered link).
	BandwidthBps float64
	// RTT is the path round-trip time.
	RTT time.Duration
	// SessionDur is the watch duration (60 s in the study).
	SessionDur time.Duration
	// Encoder describes the broadcast's media (sizes only; payloads are
	// not materialised in the fast tier).
	Encoder media.EncoderConfig
	// JoinPos is the broadcast media position when the viewer joins.
	JoinPos time.Duration
	// Viewers drives the chat-traffic intensity (avatars share the link).
	Viewers int
	// ChatVisible mirrors the app's default chat display; avatar
	// downloads then compete with video for the bottleneck (§5.1).
	ChatVisible bool
	// AvatarCache enables the mitigation the paper proposes ("the energy
	// overhead of chat could be mitigated by caching profile pictures"):
	// each chatter's picture is downloaded only once.
	AvatarCache bool
	// SegmentTarget is the HLS segment duration target.
	SegmentTarget time.Duration
	// PackagingDelay is the transcode/packaging lag before a finished HLS
	// segment appears on the CDN.
	PackagingDelay time.Duration
	// PlaylistTTL models CDN edge caching of the live playlist: a client
	// may see a stale playlist for up to this long after a segment lands.
	PlaylistTTL time.Duration
	// LiveEdgeOffset is how many complete segments behind the newest the
	// HLS player starts (players hold back for buffer safety).
	LiveEdgeOffset int
	// SyncErr models imperfect NTP synchronisation of the capture host.
	SyncErr time.Duration
	// BroadcasterGapProb is the chance the broadcaster's uplink hiccups
	// once during the session, pausing production for a few seconds. This
	// is what produces the single ~3-5 s stall visible as the 0.05-0.09
	// stall-ratio mass in Fig. 3(a) even on an unlimited viewer link —
	// and, because the HLS player buffers whole segments, why HLS rides
	// such gaps out with fewer stalls.
	BroadcasterGapProb float64
	Seed               int64
}

// DefaultSimConfig returns the study's baseline parameters.
func DefaultSimConfig(seed int64) SimConfig {
	rng := rand.New(rand.NewSource(seed))
	enc := media.RandomEncoderConfig(rng)
	enc.EmitPayload = false
	return SimConfig{
		BandwidthBps:       0,
		RTT:                40 * time.Millisecond,
		SessionDur:         60 * time.Second,
		Encoder:            enc,
		JoinPos:            time.Duration(rng.Float64() * float64(4*time.Minute)),
		Viewers:            10,
		ChatVisible:        true,
		SegmentTarget:      3600 * time.Millisecond,
		PackagingDelay:     400 * time.Millisecond,
		PlaylistTTL:        2 * time.Second,
		LiveEdgeOffset:     2,
		BroadcasterGapProb: 0.22,
		Seed:               seed,
	}
}

// sampleGap draws the broadcaster hiccup window (session-relative wall
// time), or (-1, -1) if none occurs.
func sampleGap(cfg SimConfig, rng *rand.Rand) (start, end time.Duration) {
	if rng.Float64() >= cfg.BroadcasterGapProb {
		return -1, -1
	}
	at := time.Duration(rng.Float64() * float64(cfg.SessionDur) * 0.8)
	gap := 3*time.Second + time.Duration(rng.Float64()*float64(3*time.Second))
	return at, at + gap
}

// unlimitedBps stands in for the >100 Mbps tethered access of §2.
const unlimitedBps = 100e6

// linkQueue serialises transmissions over the bottleneck access link.
type linkQueue struct {
	bps  float64
	free time.Duration // next instant the link is idle
}

// transmit sends n bytes that become ready at t; returns completion time.
func (q *linkQueue) transmit(ready time.Duration, n int) time.Duration {
	start := ready
	if q.free > start {
		start = q.free
	}
	q.free = start + time.Duration(float64(n)*8/q.bps*float64(time.Second))
	return q.free
}

// chatEvent is one avatar download competing for the link.
type chatEvent struct {
	at   time.Duration
	size int
}

// chatTraffic generates the avatar-download arrival process for a session.
// JSON chat messages themselves are tiny; the profile pictures dominate
// ("image downloads from Amazon S3 servers appear in the traffic").
func chatTraffic(cfg SimConfig, rng *rand.Rand) []chatEvent {
	if !cfg.ChatVisible || cfg.Viewers < 2 {
		return nil
	}
	chatters := cfg.Viewers / 4
	if chatters > 100 {
		chatters = 100
	}
	if chatters < 1 {
		chatters = 1
	}
	// One message per chatter every 5 s: an active room of 25 chatters
	// pulls ~1.3 Mbps of avatars, and a full room approaches the 3 Mbps
	// surge the paper measured with chat on.
	msgRate := float64(chatters) * 0.2 // msgs/s room-wide
	const avatarFrac = 0.7
	var events []chatEvent
	seen := map[int]bool{}
	// Join burst: on entering a broadcast the app renders the recent chat
	// history, fetching those senders' profile pictures immediately. On a
	// limited link this burst competes with the startup video and is the
	// main reason join time "grows dramatically when bandwidth drops to
	// 2 Mbps and below" (§5.1, Fig. 4(a)).
	historyUsers := chatters / 2
	if historyUsers > 0 {
		burst := int(float64(historyUsers) * avatarFrac * 47_500)
		events = append(events, chatEvent{at: 0, size: burst})
	}
	for t := time.Duration(0); t < cfg.SessionDur; {
		t += time.Duration(rng.ExpFloat64() / msgRate * float64(time.Second))
		if rng.Float64() >= avatarFrac {
			continue
		}
		user := rng.Intn(chatters)
		if cfg.AvatarCache && seen[user] {
			continue // cache hit: no download
		}
		seen[user] = true
		size := (15 + rng.Intn(66)) * 1024 // 15-80 KB
		events = append(events, chatEvent{at: t, size: size})
	}
	return events
}

// frameRecord is one produced frame in the fast tier.
type frameRecord struct {
	pts      time.Duration
	dur      time.Duration
	bytes    int
	keyframe bool
}

// produceFrames runs the synthetic encoder from the join position for the
// session duration plus slack, returning frames the relay would forward
// (starting at the first keyframe at or after the join position).
func produceFrames(cfg SimConfig, slack time.Duration) []frameRecord {
	enc := media.NewEncoder(cfg.Encoder, time.Unix(0, 0))
	interval := enc.FrameInterval()
	var frames []frameRecord
	horizon := cfg.JoinPos + cfg.SessionDur + slack
	started := false
	for {
		f := enc.NextFrame()
		if f.PTS > horizon {
			break
		}
		if f.PTS < cfg.JoinPos {
			continue
		}
		if !started {
			if !f.Keyframe {
				continue // relay waits for the next keyframe
			}
			started = true
		}
		if f.Dropped {
			continue
		}
		frames = append(frames, frameRecord{
			pts:      f.PTS,
			dur:      interval,
			bytes:    f.Bits / 8,
			keyframe: f.Keyframe,
		})
	}
	return frames
}

// SimulateRTMP models a push-based RTMP session: every frame is forwarded
// by the relay the moment the broadcaster produces it and queues on the
// viewer's access link.
func SimulateRTMP(cfg SimConfig) Metrics {
	return SimulateRTMPWithEngine(cfg, DefaultRTMPEngine())
}

// SimulateRTMPWithEngine runs the RTMP transport model through a custom
// playback-buffer engine (used by the startup-buffer ablation).
func SimulateRTMPWithEngine(cfg SimConfig, engine Engine) Metrics {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x52544d50))
	bps := cfg.BandwidthBps
	if bps <= 0 {
		bps = unlimitedBps
	}
	q := &linkQueue{bps: bps}

	// Connection setup: API accessVideo + TCP + RTMP handshake + connect +
	// createStream/play — about four round trips before media flows.
	setup := 4*cfg.RTT + 100*time.Millisecond

	frames := produceFrames(cfg, 2*time.Second)
	chat := chatTraffic(cfg, rng)
	gapStart, gapEnd := sampleGap(cfg, rng)

	var chunks []Chunk
	var bytes int64
	ci := 0
	for _, f := range frames {
		// Wall time the frame is produced, relative to session start.
		produced := f.pts - cfg.JoinPos + setup
		if gapStart >= 0 && produced >= gapStart && produced < gapEnd {
			// Uplink hiccup: frames from the gap window reach the relay in
			// a burst once the broadcaster recovers.
			produced = gapEnd
		}
		if produced > cfg.SessionDur {
			break
		}
		// Interleave chat downloads that became ready first.
		for ci < len(chat) && chat[ci].at <= produced {
			q.transmit(chat[ci].at, chat[ci].size)
			ci++
		}
		arrival := q.transmit(produced, f.bytes) + cfg.RTT/2
		bytes += int64(f.bytes)
		chunks = append(chunks, Chunk{
			Arrival:    arrival,
			MediaStart: f.pts,
			MediaEnd:   f.pts + f.dur,
			CaptureEnd: produced,
		})
	}
	m := engine.Run(chunks, cfg.SessionDur)
	m.Protocol = "RTMP"
	m.Bytes = bytes
	m.DeliveryLatency += cfg.SyncErr
	return m
}

// SimulateHLS models a pull-based HLS session: frames are cut into
// keyframe-aligned segments, each available PackagingDelay after its last
// frame; the client polls the playlist, starts LiveEdgeOffset segments
// behind the newest, and downloads sequentially over the same bottleneck.
func SimulateHLS(cfg SimConfig) Metrics {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x484c53))
	bps := cfg.BandwidthBps
	if bps <= 0 {
		bps = unlimitedBps
	}
	if cfg.SegmentTarget <= 0 {
		cfg.SegmentTarget = 3600 * time.Millisecond
	}
	q := &linkQueue{bps: bps}

	// Build segments from a stream that began well before the viewer
	// joined, so a live window already exists.
	backlog := time.Duration(cfg.LiveEdgeOffset+2) * cfg.SegmentTarget * 2
	pre := cfg
	pre.JoinPos = cfg.JoinPos - backlog
	if pre.JoinPos < 0 {
		pre.JoinPos = 0
	}
	frames := produceFrames(pre, backlog+6*time.Second)

	type segment struct {
		start, end time.Duration
		bytes      int
		avail      time.Duration // wall time it becomes visible to clients
	}
	var segs []segment
	var cur *segment
	for _, f := range frames {
		if cur != nil && f.keyframe && f.pts-cur.start >= cfg.SegmentTarget {
			cur = nil
		}
		if cur == nil {
			segs = append(segs, segment{start: f.pts})
			cur = &segs[len(segs)-1]
		}
		// ~4% MPEG-TS packaging overhead.
		cur.bytes += f.bytes + f.bytes/25
		cur.end = f.pts + f.dur
	}
	for i := range segs {
		// Availability = completion + packaging + stale-playlist lag at
		// the CDN edge.
		ttlLag := time.Duration(rng.Float64() * float64(cfg.PlaylistTTL))
		segs[i].avail = segs[i].end - cfg.JoinPos + cfg.PackagingDelay + ttlLag
	}

	// Broadcaster hiccups delay segment availability.
	gapStart, gapEnd := sampleGap(cfg, rng)
	if gapStart >= 0 {
		for i := range segs {
			if segs[i].avail >= gapStart && segs[i].avail < gapEnd {
				segs[i].avail = gapEnd
			}
		}
	}

	// Client setup: API + TCP + first playlist fetch. Playlist reloads
	// happen once per target duration, per the HLS spec.
	setup := 3*cfg.RTT + 150*time.Millisecond
	poll := cfg.SegmentTarget

	// Find the first segment to play: LiveEdgeOffset behind the newest
	// complete segment at join time.
	newest := -1
	for i, s := range segs {
		if s.avail <= setup {
			newest = i
		}
	}
	first := newest - cfg.LiveEdgeOffset
	if first < 0 {
		first = 0
	}

	chat := chatTraffic(cfg, rng)
	ci := 0
	var chunks []Chunk
	var bytes int64
	now := setup
	for i := first; i < len(segs); i++ {
		s := segs[i]
		// Wait (polling) until the segment is visible in the playlist.
		for s.avail > now {
			now += poll
		}
		if now > cfg.SessionDur {
			break
		}
		for ci < len(chat) && chat[ci].at <= now {
			q.transmit(chat[ci].at, chat[ci].size)
			ci++
		}
		// Playlist refresh costs one small transfer, the segment a large
		// one; both share the bottleneck.
		q.transmit(now, 600)
		arrival := q.transmit(now+cfg.RTT/2, s.bytes) + cfg.RTT/2
		bytes += int64(s.bytes)
		// The NTP-timestamp SEIs are spread across the segment, so the
		// mean latency sample corresponds to the segment midpoint.
		chunks = append(chunks, Chunk{
			Arrival:    arrival,
			MediaStart: s.start,
			MediaEnd:   s.end,
			CaptureEnd: (s.start+s.end)/2 - cfg.JoinPos,
		})
		if arrival > now {
			now = arrival
		}
	}
	m := DefaultHLSEngine(cfg.SegmentTarget).Run(chunks, cfg.SessionDur)
	m.Protocol = "HLS"
	m.Bytes = bytes
	m.DeliveryLatency += cfg.SyncErr
	return m
}
