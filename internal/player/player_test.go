package player

import (
	"testing"
	"time"
)

func sec(f float64) time.Duration { return time.Duration(f * float64(time.Second)) }

func TestEngineSmoothPlayback(t *testing.T) {
	// Chunks arriving ahead of consumption: no stalls, small join time.
	e := Engine{Startup: sec(1), Resume: sec(1)}
	var chunks []Chunk
	for i := 0; i < 60; i++ {
		chunks = append(chunks, Chunk{
			Arrival:    sec(float64(i) * 0.9), // slightly faster than real time
			MediaStart: sec(float64(i)),
			MediaEnd:   sec(float64(i) + 1),
			CaptureEnd: sec(float64(i) * 0.9),
		})
	}
	m := e.Run(chunks, sec(60))
	if m.StallCount != 0 {
		t.Errorf("stalls = %d, want 0", m.StallCount)
	}
	if m.JoinTime > sec(1) {
		t.Errorf("join = %v", m.JoinTime)
	}
	if m.PlayTime < sec(50) {
		t.Errorf("play time = %v", m.PlayTime)
	}
	if m.StallRatio != 0 {
		t.Errorf("stall ratio = %v", m.StallRatio)
	}
}

func TestEngineGapCausesStall(t *testing.T) {
	e := Engine{Startup: sec(1), Resume: sec(1)}
	var chunks []Chunk
	// 10 seconds of smooth media, then a 5-second delivery gap, then more.
	for i := 0; i < 10; i++ {
		chunks = append(chunks, Chunk{Arrival: sec(float64(i)), MediaStart: sec(float64(i)), MediaEnd: sec(float64(i) + 1), CaptureEnd: sec(float64(i))})
	}
	for i := 10; i < 40; i++ {
		chunks = append(chunks, Chunk{Arrival: sec(float64(i) + 5), MediaStart: sec(float64(i)), MediaEnd: sec(float64(i) + 1), CaptureEnd: sec(float64(i) + 5)})
	}
	m := e.Run(chunks, sec(45))
	if m.StallCount == 0 {
		t.Fatal("gap produced no stall")
	}
	if m.StallTime < sec(2) || m.StallTime > sec(8) {
		t.Errorf("stall time = %v, want ~4-5s", m.StallTime)
	}
	if m.AvgStall <= 0 {
		t.Error("avg stall not computed")
	}
}

func TestEngineLongestStallTracksWorstGap(t *testing.T) {
	e := Engine{Startup: sec(1), Resume: sec(1)}
	var chunks []Chunk
	// Smooth start, a ~2s gap, more smooth media, then a ~6s gap.
	for i := 0; i < 5; i++ {
		chunks = append(chunks, Chunk{Arrival: sec(float64(i)), MediaStart: sec(float64(i)), MediaEnd: sec(float64(i) + 1), CaptureEnd: sec(float64(i))})
	}
	for i := 5; i < 15; i++ {
		chunks = append(chunks, Chunk{Arrival: sec(float64(i) + 2), MediaStart: sec(float64(i)), MediaEnd: sec(float64(i) + 1), CaptureEnd: sec(float64(i) + 2)})
	}
	for i := 15; i < 30; i++ {
		chunks = append(chunks, Chunk{Arrival: sec(float64(i) + 8), MediaStart: sec(float64(i)), MediaEnd: sec(float64(i) + 1), CaptureEnd: sec(float64(i) + 8)})
	}
	m := e.Run(chunks, sec(40))
	if m.StallCount < 2 {
		t.Fatalf("stalls = %d, want >= 2", m.StallCount)
	}
	if m.LongestStall < sec(4) || m.LongestStall > sec(8) {
		t.Errorf("longest stall = %v, want ~6s", m.LongestStall)
	}
	if m.LongestStall > m.StallTime {
		t.Errorf("longest stall %v exceeds total stall time %v", m.LongestStall, m.StallTime)
	}
	if m.LongestStall < m.AvgStall {
		t.Errorf("longest stall %v below average %v", m.LongestStall, m.AvgStall)
	}
}

func TestEngineNeverStarts(t *testing.T) {
	e := Engine{Startup: sec(5), Resume: sec(5)}
	// Only 2 seconds of media ever arrive: playback never begins.
	chunks := []Chunk{{Arrival: sec(1), MediaStart: 0, MediaEnd: sec(2), CaptureEnd: sec(1)}}
	m := e.Run(chunks, sec(60))
	if m.JoinTime != sec(60) {
		t.Errorf("join = %v, want full session", m.JoinTime)
	}
	if m.PlayTime != 0 {
		t.Errorf("play = %v, want 0", m.PlayTime)
	}
}

func TestEngineAccountingIdentity(t *testing.T) {
	// join + play + stall must cover the session (the paper derives join
	// time as 60 − play − stall).
	e := Engine{Startup: sec(1), Resume: sec(1)}
	var chunks []Chunk
	for i := 0; i < 30; i++ {
		at := float64(i) * 1.8 // slower than real time: repeated stalls
		chunks = append(chunks, Chunk{Arrival: sec(at), MediaStart: sec(float64(i)), MediaEnd: sec(float64(i) + 1), CaptureEnd: sec(at)})
	}
	session := sec(60)
	m := e.Run(chunks, session)
	total := m.JoinTime + m.PlayTime + m.StallTime
	diff := total - session
	if diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("join %v + play %v + stall %v = %v != %v", m.JoinTime, m.PlayTime, m.StallTime, total, session)
	}
}

func TestEngineLatencyReflectsBuffering(t *testing.T) {
	// Chunks arrive instantly (capture == arrival): playback latency must
	// be dominated by the startup buffer depth.
	for _, startup := range []time.Duration{sec(1), sec(4)} {
		e := Engine{Startup: startup, Resume: startup}
		var chunks []Chunk
		for i := 0; i < 58; i++ {
			chunks = append(chunks, Chunk{Arrival: sec(float64(i)), MediaStart: sec(float64(i)), MediaEnd: sec(float64(i) + 1), CaptureEnd: sec(float64(i))})
		}
		m := e.Run(chunks, sec(60))
		if m.PlaybackLatency < startup-sec(0.5) {
			t.Errorf("startup %v: playback latency %v too small", startup, m.PlaybackLatency)
		}
	}
}

func TestSimulateRTMPUnlimited(t *testing.T) {
	stalls, joins := 0, time.Duration(0)
	n := 60
	for seed := int64(0); seed < int64(n); seed++ {
		cfg := DefaultSimConfig(seed)
		cfg.BroadcasterGapProb = 0 // isolate the network path
		m := SimulateRTMP(cfg)
		if m.Protocol != "RTMP" {
			t.Fatal("wrong protocol tag")
		}
		stalls += m.StallCount
		joins += m.JoinTime
		if m.Delivered == 0 {
			t.Fatalf("seed %d: no chunks delivered", seed)
		}
	}
	if avgJoin := joins / time.Duration(n); avgJoin > 4*time.Second {
		t.Errorf("avg join on unlimited link = %v, want small", avgJoin)
	}
	if float64(stalls)/float64(n) > 0.5 {
		t.Errorf("too many stalls on unlimited link: %d in %d sessions", stalls, n)
	}
}

func TestSimulateRTMPBandwidthBoundary(t *testing.T) {
	// The paper's headline: stalling grows sharply below 2 Mbps.
	avgRatio := func(mbps float64) float64 {
		var sum float64
		n := 80
		for seed := int64(0); seed < int64(n); seed++ {
			cfg := DefaultSimConfig(seed)
			cfg.BandwidthBps = mbps * 1e6
			cfg.Viewers = 40 // active chat competing for the link
			m := SimulateRTMP(cfg)
			sum += m.StallRatio
		}
		return sum / float64(n)
	}
	low := avgRatio(0.5)
	mid := avgRatio(1)
	high := avgRatio(4)
	if !(low > mid && mid > high) {
		t.Errorf("stall ratio not decreasing: 0.5Mbps=%.3f 1Mbps=%.3f 4Mbps=%.3f", low, mid, high)
	}
	if low < 0.1 {
		t.Errorf("0.5 Mbps stall ratio %.3f too small", low)
	}
	if high > 0.05 {
		t.Errorf("4 Mbps stall ratio %.3f too large", high)
	}
}

func TestSimulateHLSLatencyExceedsRTMP(t *testing.T) {
	var rtmpSum, hlsSum time.Duration
	n := 60
	for seed := int64(0); seed < int64(n); seed++ {
		cfg := DefaultSimConfig(seed)
		rtmpSum += SimulateRTMP(cfg).DeliveryLatency
		hlsSum += SimulateHLS(cfg).DeliveryLatency
	}
	rtmpAvg := rtmpSum / time.Duration(n)
	hlsAvg := hlsSum / time.Duration(n)
	if hlsAvg < 3*rtmpAvg {
		t.Errorf("HLS delivery %v not >> RTMP %v", hlsAvg, rtmpAvg)
	}
	if hlsAvg < 4*time.Second {
		t.Errorf("HLS delivery latency %v, paper reports >5s", hlsAvg)
	}
	if rtmpAvg > time.Second {
		t.Errorf("RTMP delivery latency %v, paper reports <300ms for 75%%", rtmpAvg)
	}
}

func TestSimulateHLSStallsRarer(t *testing.T) {
	// Same broadcaster gaps; HLS's segment buffer rides them out.
	var rtmpStalls, hlsStalls int
	n := 100
	for seed := int64(0); seed < int64(n); seed++ {
		cfg := DefaultSimConfig(seed)
		cfg.BroadcasterGapProb = 0.35
		rtmpStalls += SimulateRTMP(cfg).StallCount
		hlsStalls += SimulateHLS(cfg).StallCount
	}
	if hlsStalls >= rtmpStalls {
		t.Errorf("HLS stalls %d not < RTMP stalls %d", hlsStalls, rtmpStalls)
	}
}

func TestSimulateRTMPGapProducesCharacteristicStall(t *testing.T) {
	// With a forced gap, the stall ratio should land near the 0.05-0.09
	// band of Fig. 3(a) (a single ~3-5 s stall in a 60 s session).
	found := 0
	for seed := int64(0); seed < 60; seed++ {
		cfg := DefaultSimConfig(seed)
		cfg.BroadcasterGapProb = 1
		m := SimulateRTMP(cfg)
		if m.StallRatio >= 0.03 && m.StallRatio <= 0.12 {
			found++
		}
	}
	if found < 20 {
		t.Errorf("only %d/60 gap sessions in the 0.03-0.12 stall-ratio band", found)
	}
}

func TestSimJoinTimeGrowsWhenLimited(t *testing.T) {
	join := func(mbps float64) time.Duration {
		var sum time.Duration
		n := 50
		for seed := int64(0); seed < int64(n); seed++ {
			cfg := DefaultSimConfig(seed)
			cfg.BandwidthBps = mbps * 1e6
			sum += SimulateRTMP(cfg).JoinTime
		}
		return sum / 50
	}
	slow := join(0.5)
	fast := join(10)
	if slow <= fast {
		t.Errorf("join at 0.5Mbps %v not > join at 10Mbps %v", slow, fast)
	}
}

func TestSyncErrorShiftsDelivery(t *testing.T) {
	cfg := DefaultSimConfig(7)
	cfg.SyncErr = -50 * time.Millisecond
	base := DefaultSimConfig(7)
	withErr := SimulateRTMP(cfg)
	without := SimulateRTMP(base)
	if withErr.DeliveryLatency >= without.DeliveryLatency {
		t.Errorf("negative sync error did not lower measured delivery latency")
	}
}
