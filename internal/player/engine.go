// Package player implements the viewer-side playback machinery: a
// deterministic playback-buffer engine that turns media-arrival events
// into the QoE metrics the app reports via playbackMeta (join time, stall
// events and durations, playback latency, §5.1), and fast transport
// simulators for RTMP push and HLS segment delivery over a bandwidth-
// limited access link. The same engine serves both the wire-level player
// and the model-level sweeps, so the QoE accounting is identical in both
// tiers.
package player

import (
	"sort"
	"time"
)

// Chunk is one delivery of media to the player: a frame (RTMP) or a
// segment (HLS).
type Chunk struct {
	// Arrival is the session-relative wall time the chunk finished
	// arriving.
	Arrival time.Duration
	// MediaStart/MediaEnd are broadcast media positions covered.
	MediaStart, MediaEnd time.Duration
	// CaptureEnd is the session-relative wall time the chunk's last frame
	// was captured at the broadcaster (derived from the embedded NTP
	// timestamps in the wire tier).
	CaptureEnd time.Duration
}

// Metrics are the per-session QoE results.
type Metrics struct {
	Protocol string
	// JoinTime is the startup latency: session time before playback
	// first started (the paper computes it as 60 s − play − stall).
	JoinTime time.Duration
	PlayTime time.Duration
	// StallTime is the total mid-playback rebuffering time.
	StallTime  time.Duration
	StallCount int
	// LongestStall is the single worst rebuffering interval — the metric
	// the outage scenarios bound: failover is allowed to cost one stall,
	// but that stall must stay short.
	LongestStall time.Duration
	// StallRatio is stall / (stall + play), the Fig. 3 metric.
	StallRatio float64
	// AvgStall is the mean stall event duration (RTMP playbackMeta).
	AvgStall time.Duration
	// PlaybackLatency is the mean end-to-end latency from capture to
	// render (Fig. 4(b)).
	PlaybackLatency time.Duration
	// DeliveryLatency is the mean capture-to-arrival latency measured
	// from embedded NTP timestamps (Fig. 5). It may be negative for fast
	// paths when the NTP sync error dominates.
	DeliveryLatency time.Duration
	// Delivered counts media chunks that arrived within the session.
	Delivered int
	// Bytes is total media payload delivered (filled by simulators).
	Bytes int64
}

// Engine is the playback-buffer model: playback starts once Startup media
// is buffered, stalls when the buffer drains, and resumes at Resume.
type Engine struct {
	Startup time.Duration
	Resume  time.Duration
}

// DefaultRTMPEngine mirrors the app's RTMP jitter buffer: the paper finds
// "the majority of the few seconds of playback latency with those streams
// comes from buffering", so the buffer holds ~1.5 s of media.
func DefaultRTMPEngine() Engine {
	return Engine{Startup: 1500 * time.Millisecond, Resume: 1800 * time.Millisecond}
}

// DefaultHLSEngine starts playback after one segment and rebuffers a
// segment's worth — segment-granular buffering is what makes HLS stall
// less but lag more.
func DefaultHLSEngine(segment time.Duration) Engine {
	return Engine{Startup: segment * 8 / 10, Resume: segment * 8 / 10}
}

// Run replays the chunk arrivals through the buffer model for a session
// lasting sessionDur and returns the metrics.
func (e Engine) Run(chunks []Chunk, sessionDur time.Duration) Metrics {
	var m Metrics
	cs := append([]Chunk(nil), chunks...)
	sort.Slice(cs, func(i, j int) bool { return cs[i].Arrival < cs[j].Arrival })

	type buffered struct {
		dur        time.Duration
		captureEnd time.Duration
		arrival    time.Duration
	}
	var queue []buffered

	now := time.Duration(0)
	var buffer time.Duration
	playing := false
	started := false
	var stallStart time.Duration
	var latencySum time.Duration
	var latencyN int
	var deliverySum time.Duration
	var deliveryN int

	// endStall closes the stall interval that began at stallStart,
	// accumulating total stall time and tracking the single worst one.
	endStall := func(end time.Duration) {
		d := end - stallStart
		m.StallTime += d
		if d > m.LongestStall {
			m.LongestStall = d
		}
	}

	// consume advances playback by d, draining the buffer queue and
	// sampling playback latency as each chunk's tail is rendered.
	consume := func(until time.Duration) {
		for playing && now < until {
			if len(queue) == 0 {
				// Buffer empty: stall begins now.
				playing = false
				m.StallCount++
				stallStart = now
				break
			}
			head := &queue[0]
			step := head.dur
			if now+step > until {
				step = until - now
			}
			head.dur -= step
			buffer -= step
			now += step
			m.PlayTime += step
			if head.dur <= 0 {
				// Tail of this chunk rendered at wall time `now`.
				latencySum += now - head.captureEnd
				latencyN++
				queue = queue[1:]
			}
		}
		if now < until {
			now = until
		}
	}

	for _, c := range cs {
		if c.Arrival > sessionDur {
			break
		}
		if playing {
			consume(c.Arrival)
		} else {
			now = c.Arrival
		}
		// Account the stall/join interval endings at this arrival.
		dur := c.MediaEnd - c.MediaStart
		if dur < 0 {
			dur = 0
		}
		queue = append(queue, buffered{dur: dur, captureEnd: c.CaptureEnd, arrival: c.Arrival})
		buffer += dur
		m.Delivered++
		deliverySum += c.Arrival - c.CaptureEnd
		deliveryN++
		if !playing {
			threshold := e.Startup
			if started {
				threshold = e.Resume
			}
			if buffer >= threshold {
				if started {
					endStall(now)
				} else {
					m.JoinTime = now
					started = true
				}
				playing = true
			}
		}
	}
	// Run out the clock.
	if playing {
		consume(sessionDur)
		if !playing {
			// Stalled at the tail: the remaining time is rebuffering.
			endStall(sessionDur)
		}
	} else if started {
		endStall(sessionDur)
	} else {
		// Never started: the whole session was join time.
		m.JoinTime = sessionDur
	}

	if m.StallCount > 0 {
		m.AvgStall = m.StallTime / time.Duration(m.StallCount)
	}
	if total := m.PlayTime + m.StallTime; total > 0 {
		m.StallRatio = float64(m.StallTime) / float64(total)
	}
	if latencyN > 0 {
		m.PlaybackLatency = latencySum / time.Duration(latencyN)
	}
	if deliveryN > 0 {
		m.DeliveryLatency = deliverySum / time.Duration(deliveryN)
	}
	return m
}
