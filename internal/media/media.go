// Package media implements the synthetic video/audio source that stands in
// for real Periscope broadcast content. It reproduces the causal structure
// behind the paper's video-quality findings (§5.2):
//
//   - content complexity varies wildly between and within broadcasts (one
//     person talking in front of a static background vs. soccer matches
//     captured from a TV screen), modelled as a regime-switching process;
//   - a rate controller adjusts the quantization parameter (QP) to chase a
//     target bitrate, so static content drives QP down (and bitrate below
//     target) while complex content drives QP up — producing the
//     QP-vs-bitrate scatter of Fig. 6(b);
//   - GOP structure follows the observed patterns: mostly a repeated IBP
//     scheme with an I frame about every 36 frames, ~20% of encodings
//     using only I and P frames, and rare I-only streams with very poor
//     coding efficiency (explaining the RTMP bitrate outliers);
//   - the frame rate is variable up to 30 fps and frames are occasionally
//     dropped (the paper notes missing frames requiring concealment).
//
// The encoder emits real H.264 NAL units (internal/avc) whose slice
// headers carry the QP and whose SEI messages carry broadcaster NTP
// timestamps, so downstream capture analysis parses genuine bitstreams.
package media

import (
	"math"
	"math/rand"
	"time"

	"periscope/internal/avc"
)

// FrameType is the coded picture type.
type FrameType uint8

// Frame types.
const (
	FrameI FrameType = iota
	FrameP
	FrameB
)

func (t FrameType) String() string {
	switch t {
	case FrameI:
		return "I"
	case FrameP:
		return "P"
	default:
		return "B"
	}
}

// GOPPattern describes the frame-type sequence of a stream.
type GOPPattern uint8

// GOP patterns observed in the study (§5.2).
const (
	GOPIBP   GOPPattern = iota // repeated IBP scheme (most streams)
	GOPIP                      // I and P only (~20% of streams)
	GOPIOnly                   // I frames only (2 cases; very poor efficiency)
)

func (g GOPPattern) String() string {
	switch g {
	case GOPIBP:
		return "IBP"
	case GOPIP:
		return "IP"
	default:
		return "I-only"
	}
}

// PickGOPPattern draws a pattern with the shares reported in the paper.
func PickGOPPattern(rng *rand.Rand) GOPPattern {
	r := rng.Float64()
	switch {
	case r < 0.007: // "just I in 2 cases" out of a few hundred
		return GOPIOnly
	case r < 0.007+0.195: // 18.4-20.0% use I and P only
		return GOPIP
	default:
		return GOPIBP
	}
}

// ContentClass is the kind of scene being broadcast.
type ContentClass uint8

// Content classes spanning the variability the paper attributes the
// bitrate spread to.
const (
	ContentStatic     ContentClass = iota // person talking, static background
	ContentModerate                       // walking tour, moderate motion
	ContentHighMotion                     // sports/TV screen captures
)

func (c ContentClass) String() string {
	switch c {
	case ContentStatic:
		return "static"
	case ContentModerate:
		return "moderate"
	default:
		return "high-motion"
	}
}

// PickContentClass draws a class; static talkers dominate the service.
func PickContentClass(rng *rand.Rand) ContentClass {
	r := rng.Float64()
	switch {
	case r < 0.55:
		return ContentStatic
	case r < 0.85:
		return ContentModerate
	default:
		return ContentHighMotion
	}
}

// baseComplexity returns the mean complexity multiplier per class.
func (c ContentClass) baseComplexity() float64 {
	switch c {
	case ContentStatic:
		return 0.35
	case ContentModerate:
		return 1.0
	default:
		return 2.2
	}
}

// Complexity is a regime-switching AR(1) process modelling how hard the
// captured scene is to encode over time ("extreme time variability of the
// captured content").
type Complexity struct {
	rng   *rand.Rand
	class ContentClass
	cur   float64
	// sceneProb is the per-frame probability of an abrupt scene change.
	sceneProb float64
}

// NewComplexity creates the process for a content class.
func NewComplexity(class ContentClass, rng *rand.Rand) *Complexity {
	return &Complexity{rng: rng, class: class, cur: class.baseComplexity(), sceneProb: 0.004}
}

// Next advances the process one frame and returns the complexity in
// roughly [0.1, 4].
func (c *Complexity) Next() float64 {
	base := c.class.baseComplexity()
	if c.rng.Float64() < c.sceneProb {
		// Scene change: jump towards a new random level.
		c.cur = base * math.Exp(0.8*c.rng.NormFloat64())
	}
	// AR(1) pull towards the class mean with small per-frame noise.
	c.cur = c.cur + 0.05*(base-c.cur) + 0.04*base*c.rng.NormFloat64()
	if c.cur < 0.1 {
		c.cur = 0.1
	}
	if c.cur > 4 {
		c.cur = 4
	}
	return c.cur
}

// Rate-control constants.
const (
	MinQP = 12
	MaxQP = 48
	// refQP is the QP at which the size model is calibrated.
	refQP = 30
	// refBitsPerFrame is the bits a complexity-1.0 P frame costs at refQP
	// for 320x568 video. Calibrated so an IBP stream at ~24 fps and
	// complexity 1 lands near 320 kbps.
	refBitsPerFrame = 5300
)

// frameTypeWeight reflects the relative cost of each frame type.
func frameTypeWeight(t FrameType) float64 {
	switch t {
	case FrameI:
		return 6.0
	case FrameP:
		return 1.0
	default:
		return 0.55
	}
}

// FrameBits models the size in bits of a coded frame.
func FrameBits(t FrameType, complexity float64, qp int) int {
	bits := frameTypeWeight(t) * complexity * refBitsPerFrame * math.Exp2(float64(refQP-qp)/6)
	if bits < 256 {
		bits = 256
	}
	return int(bits)
}

// RateController adapts QP to keep the output near the target bitrate,
// mimicking the QP adjustment described in §5.2 ("the so called
// quantization parameter (QP) is dynamically adjusted").
type RateController struct {
	targetBps float64
	qp        float64
	ewmaBps   float64
	alpha     float64
}

// NewRateController returns a controller for the given target bitrate.
func NewRateController(targetBps int) *RateController {
	return &RateController{
		targetBps: float64(targetBps),
		qp:        refQP,
		ewmaBps:   float64(targetBps),
		alpha:     0.08,
	}
}

// QP returns the current integer QP.
func (rc *RateController) QP() int {
	q := int(math.Round(rc.qp))
	if q < MinQP {
		return MinQP
	}
	if q > MaxQP {
		return MaxQP
	}
	return q
}

// Observe feeds back the bits just produced over the given frame interval
// and nudges QP proportionally in the log-rate domain.
func (rc *RateController) Observe(bits int, frameInterval time.Duration) {
	if frameInterval <= 0 {
		return
	}
	inst := float64(bits) / frameInterval.Seconds()
	rc.ewmaBps = (1-rc.alpha)*rc.ewmaBps + rc.alpha*inst
	// +6 QP halves the rate, so log2 error maps directly to QP steps.
	err := math.Log2(rc.ewmaBps / rc.targetBps)
	rc.qp += 0.5 * err
	if rc.qp < MinQP {
		rc.qp = MinQP
	}
	if rc.qp > MaxQP {
		rc.qp = MaxQP
	}
}

// EncoderConfig configures a synthetic broadcast encoder.
type EncoderConfig struct {
	TargetBitrate int           // bits per second, typically 200k-400k
	FrameRate     float64       // nominal fps, up to 30
	Pattern       GOPPattern    // frame-type pattern
	Class         ContentClass  // content kind
	IDRPeriod     int           // frames between I frames (paper: ~36)
	SEIPeriod     time.Duration // how often to embed an NTP timestamp SEI
	DropProb      float64       // per-frame chance the frame goes missing
	EmitPayload   bool          // build real NAL bytes (wire paths) or sizes only
	Seed          int64
}

// DefaultEncoderConfig returns a configuration matching the typical stream
// the paper measured.
func DefaultEncoderConfig() EncoderConfig {
	return EncoderConfig{
		TargetBitrate: 320_000,
		FrameRate:     24,
		Pattern:       GOPIBP,
		Class:         ContentModerate,
		IDRPeriod:     36,
		SEIPeriod:     time.Second,
		DropProb:      0.002,
		EmitPayload:   true,
		Seed:          1,
	}
}

// RandomEncoderConfig draws a per-broadcast configuration from the
// population the paper describes: bitrate targets spread over
// ~200-400 kbps, variable frame rate, mostly IBP.
func RandomEncoderConfig(rng *rand.Rand) EncoderConfig {
	cfg := DefaultEncoderConfig()
	cfg.TargetBitrate = 200_000 + rng.Intn(200_001)
	cfg.FrameRate = 18 + rng.Float64()*12 // up to 30 fps, variable
	cfg.Pattern = PickGOPPattern(rng)
	cfg.Class = PickContentClass(rng)
	cfg.Seed = rng.Int63()
	if cfg.Pattern == GOPIOnly {
		// Poor-efficiency stream: no temporal prediction; these produce
		// the high-bitrate outliers seen for RTMP in Fig. 6(a).
		cfg.TargetBitrate = 600_000 + rng.Intn(650_001)
	}
	return cfg
}

// Frame is one encoded video frame.
type Frame struct {
	Index    int
	Type     FrameType
	PTS      time.Duration // presentation timestamp from stream start
	DTS      time.Duration // decode timestamp (B frames reorder)
	QP       int
	Bits     int
	Dropped  bool // frame went missing in capture (needs concealment)
	Keyframe bool
	// NALs is populated when EmitPayload is set: SEI/SPS/PPS headers on
	// IDR boundaries, then the slice NAL itself.
	NALs []avc.NALUnit
}

// Size returns the frame size in bytes including NAL overhead when payload
// is present.
func (f Frame) Size() int {
	if len(f.NALs) == 0 {
		return (f.Bits + 7) / 8
	}
	n := 0
	for _, u := range f.NALs {
		n += 1 + len(u.RBSP) + 4
	}
	return n
}

// Encoder produces the synthetic coded stream for one broadcast.
type Encoder struct {
	cfg        EncoderConfig
	rng        *rand.Rand
	complexity *Complexity
	rc         *RateController
	sps        avc.SPS
	pps        avc.PPS
	frameIdx   int
	frameNum   uint32
	idrID      uint32
	lastSEI    time.Duration
	// start is the broadcaster wall-clock time of stream start, used to
	// stamp SEI NTP timestamps.
	start time.Time
}

// NewEncoder creates an encoder. start anchors PTS 0 to wall-clock time
// for SEI timestamp embedding.
func NewEncoder(cfg EncoderConfig, start time.Time) *Encoder {
	if cfg.FrameRate <= 0 {
		cfg.FrameRate = 24
	}
	if cfg.IDRPeriod <= 0 {
		cfg.IDRPeriod = 36
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sps := avc.DefaultSPS()
	if rng.Intn(2) == 0 { // orientation: portrait or landscape
		sps.Width, sps.Height = sps.Height, sps.Width
	}
	return &Encoder{
		cfg:        cfg,
		rng:        rng,
		complexity: NewComplexity(cfg.Class, rng),
		rc:         NewRateController(cfg.TargetBitrate),
		sps:        sps,
		pps:        avc.DefaultPPS(),
		start:      start,
		lastSEI:    -cfg.SEIPeriod, // embed a timestamp immediately
	}
}

// SPS returns the stream's sequence parameter set.
func (e *Encoder) SPS() avc.SPS { return e.sps }

// PPS returns the stream's picture parameter set.
func (e *Encoder) PPS() avc.PPS { return e.pps }

// frameTypeAt returns the coded type for position i within the IDR period.
func (e *Encoder) frameTypeAt(i int) FrameType {
	pos := i % e.cfg.IDRPeriod
	if pos == 0 {
		return FrameI
	}
	switch e.cfg.Pattern {
	case GOPIOnly:
		return FrameI
	case GOPIP:
		return FrameP
	default: // IBP: alternate B and P after the I
		if pos%2 == 1 {
			return FrameB
		}
		return FrameP
	}
}

// NextFrame produces the next frame in decode order.
func (e *Encoder) NextFrame() Frame {
	i := e.frameIdx
	e.frameIdx++

	// Variable frame rate: jitter the nominal interval per frame.
	interval := time.Duration(float64(time.Second) / e.cfg.FrameRate)
	pts := time.Duration(i) * interval

	typ := e.frameTypeAt(i)
	complexity := e.complexity.Next()
	qp := e.rc.QP()
	bits := FrameBits(typ, complexity, qp)
	e.rc.Observe(bits, interval)

	f := Frame{
		Index:    i,
		Type:     typ,
		PTS:      pts,
		DTS:      pts,
		QP:       qp,
		Bits:     bits,
		Keyframe: typ == FrameI,
		Dropped:  e.rng.Float64() < e.cfg.DropProb,
	}
	if typ == FrameB {
		// One B frame of reordering delay (paper §5.2 notes the one-frame
		// latency cost of B frames).
		f.DTS = pts - interval
	}

	if e.cfg.EmitPayload && !f.Dropped {
		f.NALs = e.buildNALs(f)
	}
	return f
}

// buildNALs assembles the NAL units for a frame: parameter sets on IDR,
// periodic SEI timestamps, and the slice itself with filler payload sized
// by the rate model.
func (e *Encoder) buildNALs(f Frame) []avc.NALUnit {
	var units []avc.NALUnit
	idr := false
	if f.Type == FrameI {
		idr = true
		e.idrID++
		e.frameNum = 0
		units = append(units,
			avc.NALUnit{RefIDC: 3, Type: avc.NALSPS, RBSP: e.sps.Marshal()},
			avc.NALUnit{RefIDC: 3, Type: avc.NALPPS, RBSP: e.pps.Marshal()},
		)
	}
	if f.PTS-e.lastSEI >= e.cfg.SEIPeriod {
		e.lastSEI = f.PTS
		units = append(units, avc.MarshalTimestampSEI(e.start.Add(f.PTS)))
	}
	var st avc.SliceType
	switch f.Type {
	case FrameI:
		st = avc.SliceI
	case FrameP:
		st = avc.SliceP
	default:
		st = avc.SliceB
	}
	h := avc.SliceHeader{
		Type:     st,
		FrameNum: e.frameNum,
		IDR:      idr,
		IDRPicID: e.idrID % 16,
		QPDelta:  int32(f.QP) - e.pps.PicInitQP,
	}
	if f.Type != FrameB {
		e.frameNum++
	}
	payloadBytes := f.Bits / 8
	if payloadBytes < 8 {
		payloadBytes = 8
	}
	payload := make([]byte, payloadBytes)
	e.rng.Read(payload)
	units = append(units, avc.MarshalSlice(h, e.sps, payload))
	return units
}

// FrameInterval returns the nominal frame spacing.
func (e *Encoder) FrameInterval() time.Duration {
	return time.Duration(float64(time.Second) / e.cfg.FrameRate)
}
