package media

import (
	"math/rand"
	"testing"
	"time"

	"periscope/internal/avc"
)

func TestGOPPatternShares(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	counts := map[GOPPattern]int{}
	n := 20000
	for i := 0; i < n; i++ {
		counts[PickGOPPattern(rng)]++
	}
	ipShare := float64(counts[GOPIP]) / float64(n)
	if ipShare < 0.15 || ipShare < 0.10 || ipShare > 0.25 {
		t.Errorf("IP share = %v, want ~0.195", ipShare)
	}
	if counts[GOPIOnly] == 0 {
		t.Error("I-only pattern never drawn")
	}
	if float64(counts[GOPIOnly])/float64(n) > 0.03 {
		t.Errorf("I-only share too high: %v", float64(counts[GOPIOnly])/float64(n))
	}
}

func TestFrameTypeSequenceIBP(t *testing.T) {
	cfg := DefaultEncoderConfig()
	cfg.EmitPayload = false
	cfg.DropProb = 0
	e := NewEncoder(cfg, time.Unix(0, 0))
	var seq []FrameType
	for i := 0; i < 72; i++ {
		seq = append(seq, e.NextFrame().Type)
	}
	if seq[0] != FrameI || seq[36] != FrameI {
		t.Error("I frames must appear at the IDR period (36)")
	}
	if seq[1] != FrameB || seq[2] != FrameP {
		t.Errorf("IBP pattern broken: %v %v", seq[1], seq[2])
	}
	// No other I frames inside the GOP.
	for i := 1; i < 36; i++ {
		if seq[i] == FrameI {
			t.Errorf("unexpected I frame at %d", i)
		}
	}
}

func TestFrameTypeSequenceIPOnly(t *testing.T) {
	cfg := DefaultEncoderConfig()
	cfg.Pattern = GOPIP
	cfg.EmitPayload = false
	e := NewEncoder(cfg, time.Unix(0, 0))
	for i := 0; i < 100; i++ {
		f := e.NextFrame()
		if f.Type == FrameB {
			t.Fatal("IP pattern must not contain B frames")
		}
	}
}

func TestFrameTypeSequenceIOnly(t *testing.T) {
	cfg := DefaultEncoderConfig()
	cfg.Pattern = GOPIOnly
	cfg.EmitPayload = false
	e := NewEncoder(cfg, time.Unix(0, 0))
	for i := 0; i < 50; i++ {
		if f := e.NextFrame(); f.Type != FrameI {
			t.Fatal("I-only pattern produced a non-I frame")
		}
	}
}

func TestRateControlConverges(t *testing.T) {
	for _, target := range []int{200_000, 320_000, 400_000} {
		cfg := DefaultEncoderConfig()
		cfg.TargetBitrate = target
		cfg.Class = ContentModerate
		cfg.EmitPayload = false
		cfg.DropProb = 0
		e := NewEncoder(cfg, time.Unix(0, 0))
		// Warm up, then measure.
		for i := 0; i < 200; i++ {
			e.NextFrame()
		}
		var bits int
		n := 2000
		var dur time.Duration
		interval := e.FrameInterval()
		for i := 0; i < n; i++ {
			f := e.NextFrame()
			bits += f.Bits
			dur += interval
		}
		got := float64(bits) / dur.Seconds()
		if got < 0.7*float64(target) || got > 1.4*float64(target) {
			t.Errorf("target %d: measured %0.f", target, got)
		}
	}
}

func TestStaticContentLowersQPAndBitrate(t *testing.T) {
	// Static scenes should drive QP to a low value; the bitrate may fall
	// under target when QP floors out. High motion drives QP up.
	mkEnc := func(class ContentClass) (avgQP, bps float64) {
		cfg := DefaultEncoderConfig()
		cfg.Class = class
		cfg.EmitPayload = false
		cfg.DropProb = 0
		cfg.Seed = 99
		e := NewEncoder(cfg, time.Unix(0, 0))
		for i := 0; i < 300; i++ {
			e.NextFrame()
		}
		var qpSum, bits float64
		n := 1500
		for i := 0; i < n; i++ {
			f := e.NextFrame()
			qpSum += float64(f.QP)
			bits += float64(f.Bits)
		}
		return qpSum / float64(n), bits / (float64(n) * e.FrameInterval().Seconds())
	}
	staticQP, _ := mkEnc(ContentStatic)
	motionQP, _ := mkEnc(ContentHighMotion)
	if staticQP >= motionQP {
		t.Errorf("static QP %v should be < high-motion QP %v", staticQP, motionQP)
	}
}

func TestEncoderEmitsParseableNALs(t *testing.T) {
	cfg := DefaultEncoderConfig()
	cfg.DropProb = 0
	start := time.Date(2016, 4, 1, 12, 0, 0, 0, time.UTC)
	e := NewEncoder(cfg, start)
	sps := e.SPS()
	pps := e.PPS()
	sawSEI := false
	for i := 0; i < 80; i++ {
		f := e.NextFrame()
		if len(f.NALs) == 0 {
			t.Fatalf("frame %d has no NALs", i)
		}
		data := avc.MarshalAnnexB(f.NALs)
		units, err := avc.ParseAnnexB(data)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		for _, u := range units {
			switch u.Type {
			case avc.NALSliceIDR, avc.NALSliceNonIDR:
				h, err := avc.ParseSliceHeader(u, sps)
				if err != nil {
					t.Fatalf("frame %d slice: %v", i, err)
				}
				if got := h.QP(pps); got != int32(f.QP) {
					t.Errorf("frame %d: parsed QP %d != encoder QP %d", i, got, f.QP)
				}
			case avc.NALSEI:
				if ts, err := avc.ParseTimestampSEI(u); err == nil {
					sawSEI = true
					if ts.Before(start) {
						t.Error("SEI timestamp before stream start")
					}
				}
			}
		}
	}
	if !sawSEI {
		t.Error("no NTP timestamp SEI emitted in 80 frames")
	}
}

func TestIDRCarriesParameterSets(t *testing.T) {
	cfg := DefaultEncoderConfig()
	cfg.DropProb = 0
	e := NewEncoder(cfg, time.Unix(0, 0))
	f := e.NextFrame()
	if !f.Keyframe {
		t.Fatal("first frame must be a keyframe")
	}
	var hasSPS, hasPPS bool
	for _, u := range f.NALs {
		if u.Type == avc.NALSPS {
			hasSPS = true
		}
		if u.Type == avc.NALPPS {
			hasPPS = true
		}
	}
	if !hasSPS || !hasPPS {
		t.Error("IDR frame missing SPS/PPS")
	}
}

func TestBFrameReorderDelay(t *testing.T) {
	cfg := DefaultEncoderConfig()
	cfg.EmitPayload = false
	e := NewEncoder(cfg, time.Unix(0, 0))
	for i := 0; i < 40; i++ {
		f := e.NextFrame()
		if f.Type == FrameB && f.DTS >= f.PTS {
			t.Error("B frame must have DTS < PTS")
		}
		if f.Type != FrameB && f.DTS != f.PTS {
			t.Error("non-B frame must have DTS == PTS")
		}
	}
}

func TestFrameBitsMonotonicInQP(t *testing.T) {
	prev := FrameBits(FrameP, 1.0, MinQP)
	for qp := MinQP + 1; qp <= MaxQP; qp++ {
		cur := FrameBits(FrameP, 1.0, qp)
		if cur > prev {
			t.Fatalf("FrameBits not monotone at QP %d", qp)
		}
		prev = cur
	}
}

func TestFrameBitsTypeOrdering(t *testing.T) {
	i := FrameBits(FrameI, 1, 30)
	p := FrameBits(FrameP, 1, 30)
	b := FrameBits(FrameB, 1, 30)
	if !(i > p && p > b) {
		t.Errorf("frame cost ordering broken: I=%d P=%d B=%d", i, p, b)
	}
}

func TestComplexityBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewComplexity(ContentHighMotion, rng)
	for i := 0; i < 10000; i++ {
		v := c.Next()
		if v < 0.1 || v > 4 {
			t.Fatalf("complexity %v out of bounds", v)
		}
	}
}

func TestRandomEncoderConfigRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		cfg := RandomEncoderConfig(rng)
		if cfg.Pattern != GOPIOnly && (cfg.TargetBitrate < 200_000 || cfg.TargetBitrate > 400_000) {
			t.Errorf("bitrate %d outside 200-400k", cfg.TargetBitrate)
		}
		if cfg.FrameRate > 30 || cfg.FrameRate < 18 {
			t.Errorf("frame rate %v outside [18,30]", cfg.FrameRate)
		}
	}
}

func TestDroppedFramesOccur(t *testing.T) {
	cfg := DefaultEncoderConfig()
	cfg.DropProb = 0.05
	cfg.EmitPayload = true
	e := NewEncoder(cfg, time.Unix(0, 0))
	dropped := 0
	for i := 0; i < 2000; i++ {
		f := e.NextFrame()
		if f.Dropped {
			dropped++
			if len(f.NALs) != 0 {
				t.Fatal("dropped frame must carry no payload")
			}
		}
	}
	if dropped < 50 || dropped > 200 {
		t.Errorf("dropped = %d, want ~100", dropped)
	}
}

func TestOrientationVaries(t *testing.T) {
	// Both 320x568 and 568x320 must occur across seeds.
	seen := map[int]bool{}
	for seed := int64(0); seed < 20; seed++ {
		cfg := DefaultEncoderConfig()
		cfg.Seed = seed
		e := NewEncoder(cfg, time.Unix(0, 0))
		seen[e.SPS().Width] = true
	}
	if !seen[320] || !seen[568] {
		t.Errorf("orientations seen: %v", seen)
	}
}
