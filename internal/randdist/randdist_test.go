package randdist

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestLogNormalParams(t *testing.T) {
	mu, sigma := LogNormalParams(4, 30)
	if math.Exp(mu) != 4 {
		t.Errorf("median from mu = %v, want 4", math.Exp(mu))
	}
	// p90 = exp(mu + z90*sigma)
	p90 := math.Exp(mu + 1.2815515655446004*sigma)
	if math.Abs(p90-30) > 1e-9 {
		t.Errorf("p90 = %v, want 30", p90)
	}
}

func TestLogNormalMedianCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = LogNormalFromMedianP90(rng, 4, 30)
	}
	sort.Float64s(xs)
	med := xs[n/2]
	if med < 3.6 || med > 4.4 {
		t.Errorf("sample median = %v, want ~4", med)
	}
	p90 := xs[n*9/10]
	if p90 < 26 || p90 > 34 {
		t.Errorf("sample p90 = %v, want ~30", p90)
	}
}

func TestBoundedParetoRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		v := BoundedPareto(rng, 1.2, 10, 2000)
		if v < 10 || v > 2000 {
			t.Fatalf("value %v outside [10,2000]", v)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, lambda := range []float64{0.5, 3, 20, 120} {
		var sum float64
		n := 20000
		for i := 0; i < n; i++ {
			sum += float64(Poisson(rng, lambda))
		}
		mean := sum / float64(n)
		if math.Abs(mean-lambda) > 0.05*lambda+0.1 {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if Poisson(rng, 0) != 0 || Poisson(rng, -1) != 0 {
		t.Error("Poisson with lambda<=0 must be 0")
	}
}

func TestZipfRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		k := Zipf(rng, 1.1, 100)
		if k < 1 || k > 100 {
			t.Fatalf("Zipf rank %d outside [1,100]", k)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	counts := make([]int, 101)
	n := 50000
	for i := 0; i < n; i++ {
		counts[Zipf(rng, 1.0, 100)]++
	}
	// Rank 1 should dominate rank 10 roughly 10:1 for s=1.
	ratio := float64(counts[1]) / float64(counts[10]+1)
	if ratio < 5 || ratio > 20 {
		t.Errorf("rank1/rank10 = %v, want ~10", ratio)
	}
	// Top 10% of ranks should hold the majority of mass.
	var top, total int
	for r := 1; r <= 10; r++ {
		top += counts[r]
	}
	for r := 1; r <= 100; r++ {
		total += counts[r]
	}
	if float64(top)/float64(total) < 0.5 {
		t.Errorf("top-10 share = %v, want > 0.5", float64(top)/float64(total))
	}
}

func TestZipfOne(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if Zipf(rng, 1.2, 1) != 1 {
		t.Error("Zipf(n=1) must return 1")
	}
}

func TestDiurnalShape(t *testing.T) {
	// Paper, Fig 2(b): slump in early hours, morning peak, rise to midnight.
	slump := DiurnalRate(4)
	morning := DiurnalRate(9)
	midnight := DiurnalRate(23.5)
	noon := DiurnalRate(13)
	if !(slump < morning) {
		t.Errorf("slump %v !< morning %v", slump, morning)
	}
	if !(slump < midnight) {
		t.Errorf("slump %v !< midnight %v", slump, midnight)
	}
	if !(noon < midnight) {
		t.Errorf("noon %v !< midnight %v", noon, midnight)
	}
}

func TestDiurnalPositiveProperty(t *testing.T) {
	f := func(h float64) bool {
		if math.IsNaN(h) || math.IsInf(h, 0) {
			return true
		}
		v := DiurnalRate(h)
		return v > 0 && v < 5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightedChoice(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[WeightedChoice(rng, []float64{1, 2, 7})]++
	}
	if counts[2] < counts[1] || counts[1] < counts[0] {
		t.Errorf("counts not ordered by weight: %v", counts)
	}
	share2 := float64(counts[2]) / 30000
	if math.Abs(share2-0.7) > 0.03 {
		t.Errorf("weight-7 share = %v, want ~0.7", share2)
	}
}

func TestWeightedChoiceDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	if WeightedChoice(rng, []float64{0, 0}) != 0 {
		t.Error("all-zero weights should return 0")
	}
	if WeightedChoice(rng, []float64{-1, 5}) != 1 {
		t.Error("negative weights must get no mass")
	}
}

func TestExponentialMean(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += Exponential(rng, 4)
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.25) > 0.01 {
		t.Errorf("Exponential(rate=4) mean = %v, want 0.25", mean)
	}
}
