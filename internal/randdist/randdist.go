// Package randdist supplies the deterministic random distributions that
// drive the synthetic Periscope population and workloads: log-normal
// broadcast durations with a heavy tail, Zipf-like viewer popularity,
// Poisson arrival processes with diurnal rate modulation, and assorted
// helpers. All generators take an explicit *rand.Rand so experiments are
// reproducible from a seed.
package randdist

import (
	"math"
	"math/rand"
)

// LogNormal samples a log-normal variate with the given parameters of the
// underlying normal (mu, sigma in log space).
func LogNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*rng.NormFloat64())
}

// LogNormalFromMedianP90 derives (mu, sigma) such that the log-normal has
// the given median and 90th percentile, then samples from it. Convenient
// for calibrating "half the broadcasts are shorter than 4 minutes" style
// constraints.
func LogNormalFromMedianP90(rng *rand.Rand, median, p90 float64) float64 {
	mu, sigma := LogNormalParams(median, p90)
	return LogNormal(rng, mu, sigma)
}

// LogNormalParams converts a (median, p90) pair into log-normal (mu, sigma).
func LogNormalParams(median, p90 float64) (mu, sigma float64) {
	// z(0.90) of the standard normal.
	const z90 = 1.2815515655446004
	mu = math.Log(median)
	sigma = (math.Log(p90) - mu) / z90
	return mu, sigma
}

// BoundedPareto samples a Pareto variate with shape alpha truncated to
// [lo, hi] by inverse-transform sampling. Used for the long broadcast tail
// ("some broadcasts last for over a day").
func BoundedPareto(rng *rand.Rand, alpha, lo, hi float64) float64 {
	u := rng.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Exponential samples Exp(rate) — the inter-arrival time of a Poisson
// process with the given rate.
func Exponential(rng *rand.Rand, rate float64) float64 {
	return rng.ExpFloat64() / rate
}

// Poisson samples a Poisson variate with the given mean using Knuth's
// method for small lambda and a normal approximation for large lambda.
func Poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 50 {
		v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Zipf draws a rank in [1, n] following a Zipf distribution with exponent s.
// Rank 1 is the most popular. Implemented by rejection (Devroye) so it works
// for any s > 0 (stdlib rand.Zipf requires s > 1).
func Zipf(rng *rand.Rand, s float64, n int) int {
	if n <= 1 {
		return 1
	}
	// Inverse-CDF on the harmonic weights with a cached normalizer would
	// allocate per call; rejection sampling keeps this allocation-free.
	for {
		u := rng.Float64()
		x := math.Pow(float64(n)+0.5, 1-s)
		y := math.Pow(0.5, 1-s)
		var r float64
		if s == 1 {
			r = math.Exp(u*math.Log(float64(n)+0.5) + (1-u)*math.Log(0.5))
		} else {
			r = math.Pow(u*x+(1-u)*y, 1/(1-s))
		}
		k := int(r + 0.5)
		if k < 1 {
			k = 1
		}
		if k > n {
			continue
		}
		// Accept with probability proportional to the true mass over the
		// envelope; the envelope is tight so acceptance is high.
		ratio := math.Pow(float64(k), -s) / math.Pow(r, -s)
		if rng.Float64() < ratio {
			return k
		}
	}
}

// DiurnalRate models the paper's observed daily usage pattern: a slump in
// the early hours, a peak in the morning, and an increasing trend towards
// midnight (Fig. 2(b)). hour is the local hour in [0, 24). The returned
// multiplier is in (0, ~1.6] and averages roughly 1 over the day.
func DiurnalRate(hour float64) float64 {
	h := math.Mod(hour, 24)
	if h < 0 {
		h += 24
	}
	// Slump centred near 04:00, morning bump near 09:00, evening ramp
	// rising into midnight. Shapes chosen to match Fig. 2(b) qualitatively.
	slump := -0.65 * gauss(h, 4, 2.4)
	morning := 0.55 * gauss(h, 9, 1.8)
	evening := 0.8 * (0.5 + 0.5*math.Tanh((h-17)/3.0))
	base := 0.75
	v := base + slump + morning + evening
	if v < 0.05 {
		v = 0.05
	}
	return v
}

func gauss(x, mu, sigma float64) float64 {
	d := (x - mu) / sigma
	return math.Exp(-0.5 * d * d)
}

// WeightedChoice returns an index in [0, len(weights)) drawn with
// probability proportional to weights[i]. Zero or negative weights get no
// mass; if all weights are <= 0 it returns 0.
func WeightedChoice(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	r := rng.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		r -= w
		if r < 0 {
			return i
		}
	}
	return len(weights) - 1
}
