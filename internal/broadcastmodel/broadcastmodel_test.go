package broadcastmodel

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"periscope/internal/geo"
)

func testPop(t *testing.T, n int) *Population {
	t.Helper()
	cfg := DefaultConfig()
	cfg.TargetConcurrent = n
	return New(cfg, time.Date(2016, 4, 1, 12, 0, 0, 0, time.UTC))
}

func TestPrefillSize(t *testing.T) {
	p := testPop(t, 500)
	if got := p.LiveCount(); got != 500 {
		t.Errorf("LiveCount = %d, want 500", got)
	}
}

func TestSteadyState(t *testing.T) {
	p := testPop(t, 500)
	p.Advance(2 * time.Hour)
	got := p.LiveCount()
	if got < 300 || got > 800 {
		t.Errorf("LiveCount after 2h = %d, want ~500", got)
	}
}

func TestOnBroadcastEndHook(t *testing.T) {
	p := testPop(t, 200)
	var mu sync.Mutex
	seen := map[string]int{}
	p.OnBroadcastEnd(func(ended []*Broadcast) {
		mu.Lock()
		defer mu.Unlock()
		for _, b := range ended {
			seen[b.ID]++
			if b.End.After(p.Now()) {
				t.Errorf("broadcast %s reported ended before its End", b.ID)
			}
		}
	})
	p.Advance(time.Hour)
	mu.Lock()
	defer mu.Unlock()
	if len(seen) == 0 {
		t.Fatal("no scheduled ends reported over an hour")
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("broadcast %s reported ended %d times", id, n)
		}
	}
	// Every reported broadcast is in the ended archive, and the hook saw
	// every archived end.
	if got := len(p.Ended()); got != len(seen) {
		t.Errorf("hook saw %d ends, archive holds %d", len(seen), got)
	}
}

func TestEndAtSchedulesEnd(t *testing.T) {
	p := testPop(t, 100)
	b := p.Live()[0]
	if !p.EndAt(b.ID, p.Now().Add(30*time.Second)) {
		t.Fatal("EndAt on a live broadcast reported not found")
	}
	var endedIDs []string
	p.OnBroadcastEnd(func(ended []*Broadcast) {
		for _, e := range ended {
			endedIDs = append(endedIDs, e.ID)
		}
	})
	p.Advance(time.Minute)
	found := false
	for _, id := range endedIDs {
		if id == b.ID {
			found = true
		}
	}
	if !found {
		t.Error("EndAt-scheduled end not reported by the hook")
	}
	if _, live := p.Get(b.ID); live {
		t.Error("broadcast still live past its rescheduled end")
	}
	if p.EndAt("nope0000nope0", p.Now()) {
		t.Error("EndAt on an unknown broadcast reported success")
	}
}

func TestRelaunchRevivesEndedBroadcast(t *testing.T) {
	p := testPop(t, 100)
	b := p.Live()[0]
	p.EndAt(b.ID, p.Now().Add(10*time.Second))
	p.Advance(time.Minute)
	if _, live := p.Get(b.ID); live {
		t.Fatal("broadcast did not end")
	}
	rb, ok := p.Relaunch(b.ID, 5*time.Minute)
	if !ok || rb.ID != b.ID {
		t.Fatalf("Relaunch = %v, %v", rb, ok)
	}
	if got, live := p.Get(b.ID); !live || got != rb {
		t.Error("relaunched broadcast not live")
	}
	if !rb.End.After(p.Now()) {
		t.Errorf("relaunched End %v not in the future (now %v)", rb.End, p.Now())
	}
	// It is no longer in the ended archive.
	for _, e := range p.Ended() {
		if e.ID == b.ID {
			t.Error("relaunched broadcast still archived as ended")
		}
	}
	if _, ok := p.Relaunch("nope0000nope0", time.Minute); ok {
		t.Error("Relaunch invented a broadcast")
	}
}

func TestDurationDistribution(t *testing.T) {
	p := testPop(t, 800)
	p.Advance(6 * time.Hour)
	ended := p.Ended()
	if len(ended) < 1000 {
		t.Fatalf("only %d ended broadcasts", len(ended))
	}
	var durs []float64
	for _, b := range ended {
		durs = append(durs, b.Duration().Minutes())
	}
	sort.Float64s(durs)
	median := durs[len(durs)/2]
	// "roughly half are shorter than 4 minutes" — the overall median mixes
	// the short zero-viewer class in, so expect ~3-4 min.
	if median < 1.5 || median > 6 {
		t.Errorf("median duration = %.1f min, want ~4", median)
	}
	// Most broadcasts between 1 and 10 minutes.
	in1to10 := 0
	for _, d := range durs {
		if d >= 1 && d <= 10 {
			in1to10++
		}
	}
	if frac := float64(in1to10) / float64(len(durs)); frac < 0.5 {
		t.Errorf("1-10min fraction = %.2f, want majority", frac)
	}
}

func TestViewerDistribution(t *testing.T) {
	p := testPop(t, 3000)
	live := p.Live()
	now := p.Now()
	zero, under20, total := 0, 0, 0
	maxV := 0
	for _, b := range live {
		// Use the base level as the "average viewers" proxy.
		v := b.ViewersAt(now.Add(5 * time.Minute / 2))
		if b.BaseViewers == 0 {
			zero++
		}
		if b.BaseViewers < 20 {
			under20++
		}
		if v > maxV {
			maxV = v
		}
		total++
	}
	zf := float64(zero) / float64(total)
	if zf < 0.08 || zf > 0.25 {
		t.Errorf("zero-viewer fraction = %.2f, want >0.10", zf)
	}
	if uf := float64(under20) / float64(total); uf < 0.80 {
		t.Errorf("under-20 fraction = %.2f, want >0.80 (paper: >0.90)", uf)
	}
}

func TestSomePopularBroadcastsExist(t *testing.T) {
	p := testPop(t, 5000)
	count100 := 0
	for _, b := range p.Live() {
		if b.BaseViewers >= 100 {
			count100++
		}
	}
	if count100 == 0 {
		t.Error("no broadcasts above the 100-viewer HLS threshold in 5000")
	}
	if float64(count100)/5000 > 0.1 {
		t.Errorf("too many popular broadcasts: %d/5000", count100)
	}
}

func TestZeroViewerShorter(t *testing.T) {
	p := testPop(t, 800)
	p.Advance(8 * time.Hour)
	var zeroSum, zeroN, viewSum, viewN float64
	for _, b := range p.Ended() {
		if b.BaseViewers == 0 {
			zeroSum += b.Duration().Minutes()
			zeroN++
		} else {
			viewSum += b.Duration().Minutes()
			viewN++
		}
	}
	if zeroN == 0 || viewN == 0 {
		t.Fatal("missing classes in ended set")
	}
	zeroMean := zeroSum / zeroN
	viewMean := viewSum / viewN
	if zeroMean >= viewMean {
		t.Errorf("zero-viewer mean %.1f min !< viewed mean %.1f min", zeroMean, viewMean)
	}
}

func TestZeroViewerReplayMostlyUnavailable(t *testing.T) {
	p := testPop(t, 4000)
	noReplay, total := 0, 0
	for _, b := range p.Live() {
		if b.BaseViewers != 0 {
			continue
		}
		total++
		if !b.AvailableForReplay {
			noReplay++
		}
	}
	if total == 0 {
		t.Fatal("no zero-viewer broadcasts")
	}
	if frac := float64(noReplay) / float64(total); frac < 0.8 {
		t.Errorf("unavailable-for-replay fraction = %.2f, want > 0.8", frac)
	}
}

func TestViewersRampAndBounds(t *testing.T) {
	b := &Broadcast{
		Start:       time.Unix(0, 0),
		End:         time.Unix(3600, 0),
		BaseViewers: 50,
		Seed:        7,
	}
	if v := b.ViewersAt(time.Unix(-5, 0)); v != 0 {
		t.Errorf("viewers before start = %d", v)
	}
	early := b.ViewersAt(time.Unix(10, 0))
	late := b.ViewersAt(time.Unix(600, 0))
	if early >= late {
		t.Errorf("ramp broken: %d at 10s vs %d at 600s", early, late)
	}
	if v := b.ViewersAt(time.Unix(4000, 0)); v != 0 {
		t.Errorf("viewers after end = %d", v)
	}
}

func TestInAreaFiltersHidden(t *testing.T) {
	p := testPop(t, 2000)
	world := geo.World()
	visible := p.InArea(world)
	for _, b := range visible {
		if b.Private || !b.LocationDisclosed {
			t.Fatal("hidden broadcast leaked into map results")
		}
	}
	if len(visible) == 0 || len(visible) >= 2000 {
		t.Errorf("visible = %d of 2000", len(visible))
	}
	// Ordered by MapRank.
	for i := 1; i < len(visible); i++ {
		if visible[i].MapRank < visible[i-1].MapRank {
			t.Fatal("InArea not ordered by MapRank")
		}
	}
}

func TestRandomTeleport(t *testing.T) {
	p := testPop(t, 300)
	rng := rand.New(rand.NewSource(9))
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		b := p.Random(rng)
		if b == nil {
			t.Fatal("Random returned nil with live broadcasts present")
		}
		if b.Private {
			t.Fatal("teleport landed on a private broadcast")
		}
		seen[b.ID] = true
	}
	if len(seen) < 20 {
		t.Errorf("teleport diversity too low: %d distinct", len(seen))
	}
}

func TestRegionalPlacement(t *testing.T) {
	p := testPop(t, 3000)
	regions := geo.Regions()
	counts := map[string]int{}
	for _, b := range p.Live() {
		counts[b.Region]++
		// The location must lie inside the named region.
		for _, r := range regions {
			if r.Name == b.Region && !r.Bounds.Contains(b.Location) {
				t.Fatalf("broadcast outside its region %s: %+v", b.Region, b.Location)
			}
		}
	}
	if len(counts) < 6 {
		t.Errorf("only %d regions populated", len(counts))
	}
}

func TestIDsUniqueAndFormatted(t *testing.T) {
	p := testPop(t, 2000)
	seen := map[string]bool{}
	for _, b := range p.Live() {
		if len(b.ID) != 13 {
			t.Fatalf("ID %q not 13 chars", b.ID)
		}
		if seen[b.ID] {
			t.Fatalf("duplicate ID %q", b.ID)
		}
		seen[b.ID] = true
	}
}
