// Package broadcastmodel maintains the synthetic live-broadcast population
// the crawler measures. Its distributions are calibrated to §4 of the
// paper:
//
//   - most broadcasts last 1-10 minutes, roughly half under 4 minutes,
//     with a long tail reaching beyond a day;
//   - over 90% of broadcasts average fewer than 20 viewers, some attract
//     thousands, and over 10% have no viewers at all;
//   - zero-viewer broadcasts are much shorter (mean ~2 min vs ~13 min) and
//     over 80% of them are not available for replay;
//   - broadcast arrivals and viewer interest follow the broadcaster-local
//     diurnal pattern of Fig. 2(b) (early-morning slump, morning peak,
//     rise towards midnight);
//   - popularity correlates only weakly with duration.
//
// The population evolves in virtual time driven by Advance, so a 10-hour
// crawl simulates in milliseconds.
package broadcastmodel

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"periscope/internal/geo"
	"periscope/internal/randdist"
)

// Broadcast is one live (or ended) broadcast.
type Broadcast struct {
	ID       string
	Start    time.Time
	End      time.Time // scheduled end
	Location geo.Point
	Region   string
	// LocationDisclosed is false for broadcasts hidden from the map (the
	// deep crawl "misses private broadcasts and those with location
	// undisclosed").
	LocationDisclosed bool
	Private           bool
	// BaseViewers scales the viewer process; 0 marks a zero-viewer cast.
	BaseViewers float64
	// AvailableForReplay mirrors the replay flag in the API description.
	AvailableForReplay bool
	// MapRank orders visibility on the map: lower ranks surface first when
	// an area shows only a fraction of its broadcasts.
	MapRank float64
	// Seed derives per-broadcast media properties deterministically.
	Seed int64

	// startRFC3339 caches the RFC3339Nano rendering of Start. The API
	// serves it in every description, and formatting dominated the
	// getBroadcasts allocation profile before caching.
	startRFC3339 string
}

// StartRFC3339 returns Start formatted as RFC3339Nano (UTC), cached when
// the broadcast was spawned by a Population.
func (b *Broadcast) StartRFC3339() string {
	if b.startRFC3339 == "" {
		return b.Start.UTC().Format(time.RFC3339Nano)
	}
	return b.startRFC3339
}

// Duration returns the scheduled duration.
func (b *Broadcast) Duration() time.Duration { return b.End.Sub(b.Start) }

// ViewersAt returns the instantaneous viewer count at time t: a ramp-up to
// the base level, slow decay over long casts, and deterministic jitter.
func (b *Broadcast) ViewersAt(t time.Time) int {
	if b.BaseViewers <= 0 || t.Before(b.Start) || t.After(b.End) {
		return 0
	}
	age := t.Sub(b.Start).Seconds()
	ramp := 1 - math.Exp(-age/90) // viewers arrive over the first minutes
	decay := math.Exp(-age / (3 * 3600))
	jitter := 0.85 + 0.3*pseudo(b.Seed, int64(age/30))
	v := b.BaseViewers * ramp * decay * jitter
	return int(v + 0.5)
}

// pseudo returns a deterministic pseudo-random value in [0,1) from a seed
// and a step index, so repeated queries agree without storing state.
func pseudo(seed, step int64) float64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(step)*0xBF58476D1CE4E5B9
	x ^= x >> 31
	x *= 0x94D049BB133111EB
	x ^= x >> 29
	return float64(x>>11) / float64(1<<53)
}

// Config tunes the population.
type Config struct {
	// TargetConcurrent is the steady-state number of live broadcasts. The
	// real service held roughly 40 000; experiments default to a 1:20
	// scale (2 000) for speed. Statistics are scale-free.
	TargetConcurrent int
	// Seed makes the population reproducible.
	Seed int64
	// ZeroViewerFrac is the fraction of broadcasts nobody watches.
	ZeroViewerFrac float64
	// UndisclosedFrac is the fraction hidden from the map.
	UndisclosedFrac float64
	// PrivateFrac is the fraction of private broadcasts.
	PrivateFrac float64
}

// DefaultConfig returns the calibrated defaults.
func DefaultConfig() Config {
	return Config{
		TargetConcurrent: 2000,
		Seed:             1,
		ZeroViewerFrac:   0.12,
		UndisclosedFrac:  0.10,
		PrivateFrac:      0.05,
	}
}

// Population is the evolving set of broadcasts.
type Population struct {
	mu      sync.RWMutex
	cfg     Config
	rng     *rand.Rand
	regions []geo.Region
	live    map[string]*Broadcast
	ended   []*Broadcast // retained for analysis
	now     time.Time
	nextID  int64
	// meanDurationSec caches the scheduled-duration mean for arrival-rate
	// balancing (arrival rate = target / mean duration).
	meanDurationSec float64
	// endHook, when set, receives the broadcasts whose scheduled End
	// expired during an Advance call (invoked after the population lock is
	// released). It is how the wire tier learns about scheduled ends: the
	// service wires it to EndBroadcast so the CDN churns broadcasts
	// end-to-end without manual intervention.
	endHook func([]*Broadcast)
}

// New creates a population at virtual time start. The population begins
// pre-filled at the steady-state size.
func New(cfg Config, start time.Time) *Population {
	if cfg.TargetConcurrent <= 0 {
		cfg.TargetConcurrent = DefaultConfig().TargetConcurrent
	}
	p := &Population{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		regions: geo.Regions(),
		live:    map[string]*Broadcast{},
		now:     start,
	}
	// Estimate the mean duration empirically for arrival balancing.
	var sum float64
	probe := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
	for i := 0; i < 4000; i++ {
		zero := probe.Float64() < cfg.ZeroViewerFrac
		sum += p.sampleDuration(probe, zero).Seconds()
	}
	p.meanDurationSec = sum / 4000
	// Pre-fill: spawn broadcasts with starts in the past so the initial
	// population is mid-lifetime, as a crawler would find it.
	for i := 0; i < cfg.TargetConcurrent; i++ {
		b := p.spawn(start)
		dur := b.Duration()
		elapsed := time.Duration(p.rng.Float64() * float64(dur))
		b.Start = start.Add(-elapsed)
		b.End = b.Start.Add(dur)
		p.live[b.ID] = b
	}
	return p
}

// sampleDuration draws a scheduled duration. Zero-viewer broadcasts are
// much shorter.
func (p *Population) sampleDuration(rng *rand.Rand, zeroViewers bool) time.Duration {
	var minutes float64
	if zeroViewers {
		// mean ~2 min.
		minutes = randdist.LogNormalFromMedianP90(rng, 1.4, 4.5)
	} else {
		// median ~4 min, p90 ~20 min, occasional very long casts.
		minutes = randdist.LogNormalFromMedianP90(rng, 4, 20)
		if rng.Float64() < 0.004 {
			minutes = randdist.BoundedPareto(rng, 1.1, 600, 2000) // 10h .. 33h
		}
	}
	if minutes < 0.15 {
		minutes = 0.15
	}
	return time.Duration(minutes * float64(time.Minute))
}

// sampleViewers draws the base (peak) viewer level.
func (p *Population) sampleViewers(rng *rand.Rand) float64 {
	if rng.Float64() < p.cfg.ZeroViewerFrac {
		return 0
	}
	// Log-normal bulk: median ~4, p90 ~18 (so >90% under 20 including the
	// zero class), plus a thin Pareto tail into the thousands.
	v := randdist.LogNormalFromMedianP90(rng, 4, 18)
	if rng.Float64() < 0.015 {
		v = randdist.BoundedPareto(rng, 0.9, 100, 8000)
	}
	return v
}

// spawn creates one broadcast starting at t.
func (p *Population) spawn(t time.Time) *Broadcast {
	p.nextID++
	// 13-character broadcast IDs, like the real API's.
	id := fmt.Sprintf("%013x", (p.nextID*2654435761)%(int64(1)<<52))
	ri := randdist.WeightedChoice(p.rng, regionWeights(p.regions))
	reg := p.regions[ri]
	loc := geo.Point{
		Lat: reg.Bounds.South + p.rng.Float64()*(reg.Bounds.North-reg.Bounds.South),
		Lon: reg.Bounds.West + p.rng.Float64()*(reg.Bounds.East-reg.Bounds.West),
	}
	base := p.sampleViewers(p.rng)
	// Viewer interest follows the broadcaster-local time of day.
	localHour := geo.LocalHour(float64(t.UTC().Hour())+float64(t.UTC().Minute())/60, loc.Lon)
	base *= randdist.DiurnalRate(localHour)
	zero := base < 0.5
	if zero {
		base = 0
	}
	dur := p.sampleDuration(p.rng, zero)
	b := &Broadcast{
		ID:                id,
		Start:             t,
		End:               t.Add(dur),
		Location:          loc,
		Region:            reg.Name,
		LocationDisclosed: p.rng.Float64() >= p.cfg.UndisclosedFrac,
		Private:           p.rng.Float64() < p.cfg.PrivateFrac,
		BaseViewers:       base,
		MapRank:           p.rng.Float64(),
		Seed:              p.rng.Int63(),
		startRFC3339:      t.UTC().Format(time.RFC3339Nano),
	}
	// Replay availability: >80% of zero-viewer casts are unavailable;
	// watched casts are kept more often.
	if zero {
		b.AvailableForReplay = p.rng.Float64() < 0.15
	} else {
		b.AvailableForReplay = p.rng.Float64() < 0.6
	}
	return b
}

func regionWeights(regions []geo.Region) []float64 {
	w := make([]float64, len(regions))
	for i, r := range regions {
		w[i] = r.Weight
	}
	return w
}

// Now returns the population's current virtual time.
func (p *Population) Now() time.Time {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.now
}

// OnBroadcastEnd installs a listener invoked after each Advance call with
// the broadcasts whose scheduled End expired during it. The listener runs
// on the Advance caller's goroutine, outside the population lock, so it
// may call back into the population.
func (p *Population) OnBroadcastEnd(fn func([]*Broadcast)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.endHook = fn
}

// Advance moves virtual time forward, ending expired broadcasts and
// spawning arrivals at a diurnally modulated rate. Scheduled ends are
// reported to the OnBroadcastEnd listener.
func (p *Population) Advance(dt time.Duration) {
	p.mu.Lock()
	var endedNow []*Broadcast
	const step = 10 * time.Second
	remaining := dt
	for remaining > 0 {
		d := step
		if remaining < step {
			d = remaining
		}
		p.now = p.now.Add(d)
		remaining -= d
		// End expired casts.
		for id, b := range p.live {
			if !b.End.After(p.now) {
				delete(p.live, id)
				p.ended = append(p.ended, b)
				endedNow = append(endedNow, b)
			}
		}
		// Arrivals: rate balances departures at steady state, with a mild
		// global diurnal modulation (UTC-based; regional modulation comes
		// from viewer interest).
		ratePerSec := float64(p.cfg.TargetConcurrent) / p.meanDurationSec
		hour := float64(p.now.UTC().Hour()) + float64(p.now.UTC().Minute())/60
		ratePerSec *= 0.8 + 0.4*randdist.DiurnalRate(hour)/1.2
		n := randdist.Poisson(p.rng, ratePerSec*d.Seconds())
		for i := 0; i < n; i++ {
			b := p.spawn(p.now)
			p.live[b.ID] = b
		}
	}
	// Cap the ended archive to bound memory over very long simulations.
	if len(p.ended) > 500_000 {
		p.ended = p.ended[len(p.ended)-500_000:]
	}
	hook := p.endHook
	p.mu.Unlock()
	if hook != nil && len(endedNow) > 0 {
		hook(endedNow)
	}
}

// EndAt reschedules a live broadcast's end, the knob churn tests and
// scenario drivers use to make a scheduled end land at a chosen virtual
// time. It reports whether the broadcast was live.
func (p *Population) EndAt(id string, t time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.live[id]
	if !ok {
		return false
	}
	b.End = t
	return true
}

// Relaunch returns an ended broadcast to the live set with a fresh
// scheduled end dur from now — a broadcaster restarting the same stream,
// the case a CDN's end-of-broadcast linger must tolerate without tearing
// down the relaunched mounts.
func (p *Population) Relaunch(id string, dur time.Duration) (*Broadcast, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, b := range p.ended {
		if b.ID == id {
			p.ended = append(p.ended[:i], p.ended[i+1:]...)
			b.End = p.now.Add(dur)
			p.live[id] = b
			return b, true
		}
	}
	return nil, false
}

// LiveCount returns the number of currently live broadcasts.
func (p *Population) LiveCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.live)
}

// Get returns a broadcast by ID (live broadcasts only).
func (p *Population) Get(id string) (*Broadcast, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	b, ok := p.live[id]
	return b, ok
}

// InArea returns live, public, disclosed broadcasts inside the rectangle,
// ordered by MapRank (the order the map surfaces them in).
func (p *Population) InArea(r geo.Rect) []*Broadcast {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var out []*Broadcast
	for _, b := range p.live {
		if b.Private || !b.LocationDisclosed {
			continue
		}
		if r.Contains(b.Location) {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MapRank < out[j].MapRank })
	return out
}

// Random returns a uniformly random live public broadcast, or nil if none
// exist.
func (p *Population) Random(rng *rand.Rand) *Broadcast {
	p.mu.RLock()
	defer p.mu.RUnlock()
	ids := make([]string, 0, len(p.live))
	for id, b := range p.live {
		if !b.Private {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return nil
	}
	sort.Strings(ids) // deterministic iteration for a seeded rng
	return p.live[ids[rng.Intn(len(ids))]]
}

// Teleport returns a viewer-weighted random live public broadcast — the
// Teleport button's behaviour. The weighting is what reconciles the
// paper's session mix (1586 of 3382 unlimited sessions used HLS, i.e.
// landed on >100-viewer broadcasts) with the fact that over 90% of
// broadcasts have fewer than 20 viewers: teleport follows the audience,
// not the uniform broadcast distribution.
func (p *Population) Teleport(rng *rand.Rand) *Broadcast {
	p.mu.RLock()
	defer p.mu.RUnlock()
	ids := make([]string, 0, len(p.live))
	for id, b := range p.live {
		if !b.Private {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return nil
	}
	sort.Strings(ids)
	now := p.now
	total := 0.0
	weights := make([]float64, len(ids))
	for i, id := range ids {
		w := float64(p.live[id].ViewersAt(now)) + 0.2
		weights[i] = w
		total += w
	}
	r := rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r < 0 {
			return p.live[ids[i]]
		}
	}
	return p.live[ids[len(ids)-1]]
}

// Live returns a snapshot of all live broadcasts.
func (p *Population) Live() []*Broadcast {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]*Broadcast, 0, len(p.live))
	for _, b := range p.live {
		out = append(out, b)
	}
	return out
}

// Ended returns broadcasts that finished during the simulation.
func (p *Population) Ended() []*Broadcast {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]*Broadcast(nil), p.ended...)
}

// GetAny looks a broadcast up among both live and ended broadcasts. The
// second result reports whether it is still live.
func (p *Population) GetAny(id string) (b *Broadcast, live bool, ok bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if b, ok := p.live[id]; ok {
		return b, true, true
	}
	for _, e := range p.ended {
		if e.ID == id {
			return e, false, true
		}
	}
	return nil, false, false
}

// ReplayableInArea returns ended, replay-available, public broadcasts in
// the rectangle — what mapGeoBroadcastFeed returns additionally when the
// app leaves include_replay set.
func (p *Population) ReplayableInArea(r geo.Rect) []*Broadcast {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var out []*Broadcast
	for _, b := range p.ended {
		if b.Private || !b.LocationDisclosed || !b.AvailableForReplay {
			continue
		}
		if r.Contains(b.Location) {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MapRank < out[j].MapRank })
	return out
}
