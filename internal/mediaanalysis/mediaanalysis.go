// Package mediaanalysis is the wireshark/libav substitute of §2: it walks
// reconstructed streams — MPEG-TS segments for HLS, FLV video tags for
// RTMP — parses the H.264 syntax (SPS for resolution, slice headers for
// frame type and QP), and produces the per-video reports behind Fig. 6
// (bitrate CDFs and the QP-vs-bitrate scatter) and the §5.2 statistics
// (frame-type patterns, I-frame period, segment durations).
package mediaanalysis

import (
	"errors"
	"time"

	"periscope/internal/avc"
	"periscope/internal/flv"
	"periscope/internal/mpegts"
)

// Report is the analysis of one captured video (a whole RTMP capture or
// one HLS segment, matching the paper's per-video/per-segment granularity).
type Report struct {
	Protocol string
	// BitrateBps is total video bytes over the covered media duration.
	BitrateBps float64
	// AvgQP is the mean slice quantization parameter.
	AvgQP float64
	// Pattern classifies the frame-type sequence.
	Pattern FramePattern
	// IPeriod is the mean distance between I frames, in frames (§5.2
	// reports ~36).
	IPeriod float64
	// Width/Height from the SPS.
	Width, Height int
	// Duration is the covered media time.
	Duration time.Duration
	// Frames counts coded pictures seen.
	Frames int
	// FPS is Frames/Duration.
	FPS float64
}

// FramePattern is the §5.2 classification.
type FramePattern int

// Patterns.
const (
	PatternUnknown FramePattern = iota
	PatternIBP
	PatternIP
	PatternIOnly
)

func (p FramePattern) String() string {
	switch p {
	case PatternIBP:
		return "IBP"
	case PatternIP:
		return "IP"
	case PatternIOnly:
		return "I-only"
	default:
		return "unknown"
	}
}

// streamState accumulates per-stream parsing context.
type streamState struct {
	sps    *avc.SPS
	pps    *avc.PPS
	qpSum  float64
	qpN    int
	typesI int
	typesP int
	typesB int
	frames int
	bytes  int64
	iGaps  []int
	lastI  int
	sawI   bool
	width  int
	height int
}

func (st *streamState) addNALs(units []avc.NALUnit, payloadBytes int) {
	st.bytes += int64(payloadBytes)
	for _, u := range units {
		switch u.Type {
		case avc.NALSPS:
			if sps, err := avc.ParseSPS(u.RBSP); err == nil {
				st.sps = &sps
				st.width, st.height = sps.Width, sps.Height
			}
		case avc.NALPPS:
			if pps, err := avc.ParsePPS(u.RBSP); err == nil {
				st.pps = &pps
			}
		case avc.NALSliceIDR, avc.NALSliceNonIDR:
			if st.sps == nil || st.pps == nil {
				continue
			}
			h, err := avc.ParseSliceHeader(u, *st.sps)
			if err != nil {
				continue
			}
			st.frames++
			st.qpSum += float64(h.QP(*st.pps))
			st.qpN++
			switch h.Type % 5 {
			case avc.SliceI:
				st.typesI++
				if st.sawI {
					st.iGaps = append(st.iGaps, st.frames-st.lastI)
				}
				st.sawI = true
				st.lastI = st.frames
			case avc.SliceP:
				st.typesP++
			case avc.SliceB:
				st.typesB++
			}
		}
	}
}

func (st *streamState) report(protocol string, dur time.Duration) Report {
	r := Report{
		Protocol: protocol,
		Width:    st.width,
		Height:   st.height,
		Duration: dur,
		Frames:   st.frames,
	}
	if dur > 0 {
		r.BitrateBps = float64(st.bytes) * 8 / dur.Seconds()
		r.FPS = float64(st.frames) / dur.Seconds()
	}
	if st.qpN > 0 {
		r.AvgQP = st.qpSum / float64(st.qpN)
	}
	switch {
	case st.typesB > 0:
		r.Pattern = PatternIBP
	case st.typesP > 0:
		r.Pattern = PatternIP
	case st.typesI > 0:
		r.Pattern = PatternIOnly
	}
	if len(st.iGaps) > 0 {
		sum := 0
		for _, g := range st.iGaps {
			sum += g
		}
		r.IPeriod = float64(sum) / float64(len(st.iGaps))
	}
	return r
}

// ErrNoVideo indicates the capture contained no parsable video.
var ErrNoVideo = errors.New("mediaanalysis: no video found")

// AnalyzeTS analyzes one or more MPEG-TS buffers (HLS segments) as a
// single video.
func AnalyzeTS(segments ...[]byte) (Report, error) {
	st := &streamState{}
	var minPTS, maxPTS int64 = -1, -1
	var lastDur time.Duration
	for _, seg := range segments {
		units, err := mpegts.DemuxAll(seg)
		if err != nil {
			return Report{}, err
		}
		for _, u := range units {
			if u.PID != mpegts.PIDVideo {
				continue
			}
			if minPTS == -1 || u.PTS < minPTS {
				minPTS = u.PTS
			}
			if u.PTS > maxPTS {
				maxPTS = u.PTS
			}
			nals, err := avc.ParseAnnexB(u.Data)
			if err != nil {
				continue
			}
			st.addNALs(nals, len(u.Data))
		}
	}
	if st.frames == 0 || minPTS == -1 {
		return Report{}, ErrNoVideo
	}
	dur := mpegts.FromTicks(maxPTS - minPTS)
	if st.frames > 1 {
		// Add one nominal frame interval so N frames spanning (N-1)
		// intervals integrate to the true duration.
		lastDur = dur / time.Duration(st.frames-1)
	}
	return st.report("HLS", dur+lastDur), nil
}

// TimedVideoTag is one RTMP video message as reconstructed from a capture.
type TimedVideoTag struct {
	TimestampMS uint32
	Data        []byte // FLV video tag data
}

// AnalyzeFLV analyzes a sequence of RTMP video tags as one video.
func AnalyzeFLV(tags []TimedVideoTag) (Report, error) {
	st := &streamState{}
	var minTS, maxTS uint32
	first := true
	for _, tag := range tags {
		vt, err := flv.ParseVideoTagData(tag.Data)
		if err != nil {
			continue
		}
		switch vt.PacketType {
		case flv.AVCSeqHeader:
			if sps, pps, err := flv.ParseDecoderConfig(vt.Data); err == nil {
				st.sps, st.pps = &sps, &pps
				st.width, st.height = sps.Width, sps.Height
			}
		case flv.AVCNALU:
			units, err := avc.ParseAVCC(vt.Data)
			if err != nil {
				continue
			}
			st.addNALs(units, len(vt.Data))
			if first || tag.TimestampMS < minTS {
				minTS = tag.TimestampMS
			}
			if first || tag.TimestampMS > maxTS {
				maxTS = tag.TimestampMS
			}
			first = false
		}
	}
	if st.frames == 0 {
		return Report{}, ErrNoVideo
	}
	dur := time.Duration(maxTS-minTS) * time.Millisecond
	if st.frames > 1 {
		dur += dur / time.Duration(st.frames-1)
	}
	return st.report("RTMP", dur), nil
}

// SegmentDurations extracts per-segment media durations from TS segments,
// for the §5.2 segment-duration histogram (3.6 s mode, 3-6 s range).
func SegmentDurations(segments [][]byte) []time.Duration {
	var out []time.Duration
	for _, seg := range segments {
		units, err := mpegts.DemuxAll(seg)
		if err != nil {
			continue
		}
		var minPTS, maxPTS int64 = -1, -1
		frames := 0
		for _, u := range units {
			if u.PID != mpegts.PIDVideo {
				continue
			}
			frames++
			if minPTS == -1 || u.PTS < minPTS {
				minPTS = u.PTS
			}
			if u.PTS > maxPTS {
				maxPTS = u.PTS
			}
		}
		if minPTS >= 0 && frames > 1 {
			d := mpegts.FromTicks(maxPTS - minPTS)
			out = append(out, d+d/time.Duration(frames-1))
		}
	}
	return out
}
