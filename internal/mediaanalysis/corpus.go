package mediaanalysis

import (
	"math/rand"
	"time"

	"periscope/internal/avc"
	"periscope/internal/flv"
	"periscope/internal/hls"
	"periscope/internal/media"
)

// Corpus generation: synthesizes the captured-video dataset of §5.2 by
// running the real encoder/segmenter/FLV pipelines, so the analyzers parse
// genuine bitstreams rather than summaries.

// CorpusConfig tunes the synthetic capture corpus.
type CorpusConfig struct {
	// Videos is the number of distinct broadcasts captured per protocol.
	Videos int
	// CaptureDur is how much of each stream is captured (60 s sessions).
	CaptureDur time.Duration
	// SegmentTarget for the HLS side.
	SegmentTarget time.Duration
	Seed          int64
}

// DefaultCorpusConfig mirrors the study's scale per protocol.
func DefaultCorpusConfig() CorpusConfig {
	return CorpusConfig{
		Videos:        150,
		CaptureDur:    60 * time.Second,
		SegmentTarget: 3600 * time.Millisecond,
		Seed:          1,
	}
}

// RTMPCapture is one reconstructed RTMP video.
type RTMPCapture struct {
	Tags []TimedVideoTag
}

// GenerateRTMPCapture produces one RTMP capture with the encoder seeded
// from cfg.
func GenerateRTMPCapture(enc media.EncoderConfig, dur time.Duration) RTMPCapture {
	enc.EmitPayload = true
	e := media.NewEncoder(enc, time.Unix(0, 0))
	var cap RTMPCapture
	cap.Tags = append(cap.Tags, TimedVideoTag{
		TimestampMS: 0,
		Data: flv.VideoTagData{
			FrameType:  flv.VideoKeyFrame,
			PacketType: flv.AVCSeqHeader,
			Data:       flv.DecoderConfig(e.SPS(), e.PPS()),
		}.Marshal(),
	})
	for {
		f := e.NextFrame()
		if f.PTS > dur {
			break
		}
		if f.Dropped {
			continue
		}
		ft := flv.VideoInterFrame
		if f.Keyframe {
			ft = flv.VideoKeyFrame
		}
		cap.Tags = append(cap.Tags, TimedVideoTag{
			TimestampMS: uint32(f.DTS.Milliseconds()),
			Data: flv.VideoTagData{
				FrameType:       ft,
				PacketType:      flv.AVCNALU,
				CompositionTime: int32((f.PTS - f.DTS).Milliseconds()),
				Data:            avc.MarshalAVCC(f.NALs),
			}.Marshal(),
		})
	}
	return cap
}

// GenerateHLSCapture produces the TS segments of one HLS capture.
func GenerateHLSCapture(enc media.EncoderConfig, dur, target time.Duration) [][]byte {
	enc.EmitPayload = true
	e := media.NewEncoder(enc, time.Unix(0, 0))
	seg := hls.NewSegmenter(target, 1<<30) // keep every segment
	now := time.Unix(1000, 0)
	for {
		f := e.NextFrame()
		if f.PTS > dur {
			break
		}
		if f.Dropped {
			continue
		}
		seg.WriteVideo(now.Add(f.PTS), f.PTS, f.DTS, f.Keyframe, avc.MarshalAnnexB(f.NALs))
	}
	seg.Finish(now.Add(dur))
	var out [][]byte
	for i := 0; i < seg.SegmentCount(); i++ {
		if s, ok := seg.Segment(i); ok {
			out = append(out, s.Data)
		}
	}
	return out
}

// CorpusReports generates and analyzes the full §5.2 corpus: one Report
// per RTMP capture (whole video) and one per HLS segment, exactly the
// granularity of Fig. 6.
func CorpusReports(cfg CorpusConfig) (rtmp []Report, hlsSegs []Report, segDurs []time.Duration) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.Videos; i++ {
		enc := media.RandomEncoderConfig(rng)
		cap := GenerateRTMPCapture(enc, cfg.CaptureDur)
		if rep, err := AnalyzeFLV(cap.Tags); err == nil {
			rtmp = append(rtmp, rep)
		}
	}
	for i := 0; i < cfg.Videos; i++ {
		enc := media.RandomEncoderConfig(rng)
		segs := GenerateHLSCapture(enc, cfg.CaptureDur, cfg.SegmentTarget)
		segDurs = append(segDurs, SegmentDurations(segs)...)
		for _, s := range segs {
			if rep, err := AnalyzeTS(s); err == nil {
				hlsSegs = append(hlsSegs, rep)
			}
		}
	}
	return rtmp, hlsSegs, segDurs
}
