package mediaanalysis

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"periscope/internal/media"
	"periscope/internal/stats"
)

func TestAnalyzeRTMPCapture(t *testing.T) {
	enc := media.DefaultEncoderConfig()
	enc.TargetBitrate = 320_000
	enc.DropProb = 0
	cap := GenerateRTMPCapture(enc, 30*time.Second)
	rep, err := AnalyzeFLV(cap.Tags)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Protocol != "RTMP" {
		t.Error("protocol tag wrong")
	}
	// The analyzer must recover the configured stream properties.
	if !(rep.Width == 320 && rep.Height == 568) && !(rep.Width == 568 && rep.Height == 320) {
		t.Errorf("resolution = %dx%d", rep.Width, rep.Height)
	}
	if rep.Pattern != PatternIBP {
		t.Errorf("pattern = %v, want IBP", rep.Pattern)
	}
	if rep.IPeriod < 30 || rep.IPeriod > 42 {
		t.Errorf("I period = %.1f, want ~36", rep.IPeriod)
	}
	if rep.BitrateBps < 150_000 || rep.BitrateBps > 700_000 {
		t.Errorf("bitrate = %.0f", rep.BitrateBps)
	}
	if rep.AvgQP < float64(media.MinQP) || rep.AvgQP > float64(media.MaxQP) {
		t.Errorf("QP = %.1f", rep.AvgQP)
	}
	if rep.FPS < 10 || rep.FPS > 31 {
		t.Errorf("fps = %.1f", rep.FPS)
	}
}

func TestAnalyzeIPOnlyPattern(t *testing.T) {
	enc := media.DefaultEncoderConfig()
	enc.Pattern = media.GOPIP
	enc.DropProb = 0
	cap := GenerateRTMPCapture(enc, 15*time.Second)
	rep, err := AnalyzeFLV(cap.Tags)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pattern != PatternIP {
		t.Errorf("pattern = %v, want IP", rep.Pattern)
	}
}

func TestAnalyzeIOnlyPattern(t *testing.T) {
	enc := media.DefaultEncoderConfig()
	enc.Pattern = media.GOPIOnly
	enc.DropProb = 0
	cap := GenerateRTMPCapture(enc, 10*time.Second)
	rep, err := AnalyzeFLV(cap.Tags)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pattern != PatternIOnly {
		t.Errorf("pattern = %v, want I-only", rep.Pattern)
	}
}

func TestAnalyzeHLSSegments(t *testing.T) {
	enc := media.DefaultEncoderConfig()
	enc.DropProb = 0
	segs := GenerateHLSCapture(enc, 30*time.Second, 3600*time.Millisecond)
	if len(segs) < 5 {
		t.Fatalf("only %d segments", len(segs))
	}
	rep, err := AnalyzeTS(segs...)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Protocol != "HLS" {
		t.Error("protocol tag wrong")
	}
	if rep.BitrateBps < 150_000 || rep.BitrateBps > 700_000 {
		t.Errorf("bitrate = %.0f", rep.BitrateBps)
	}
	if rep.Pattern != PatternIBP {
		t.Errorf("pattern = %v", rep.Pattern)
	}
}

func TestSegmentDurations(t *testing.T) {
	enc := media.DefaultEncoderConfig()
	enc.DropProb = 0
	segs := GenerateHLSCapture(enc, 60*time.Second, 3600*time.Millisecond)
	durs := SegmentDurations(segs)
	if len(durs) < 10 {
		t.Fatalf("only %d durations", len(durs))
	}
	// All but the tail segment should land in the 3-6 s band of §5.2.
	inBand := 0
	for _, d := range durs {
		if d >= 2900*time.Millisecond && d <= 6100*time.Millisecond {
			inBand++
		}
	}
	if inBand < len(durs)-1 {
		t.Errorf("only %d/%d segment durations in [3,6]s", inBand, len(durs))
	}
}

func TestCorpusReproducesFigure6Shape(t *testing.T) {
	cfg := DefaultCorpusConfig()
	cfg.Videos = 40
	cfg.CaptureDur = 20 * time.Second
	rtmp, hlsSegs, segDurs := CorpusReports(cfg)
	if len(rtmp) < 35 || len(hlsSegs) < 100 {
		t.Fatalf("corpus too small: rtmp=%d hls=%d", len(rtmp), len(hlsSegs))
	}

	// Fig. 6(a): typical bitrates 200-400 kbps for both protocols.
	med := func(reps []Report) float64 {
		var xs []float64
		for _, r := range reps {
			xs = append(xs, r.BitrateBps)
		}
		return stats.Median(xs)
	}
	rtmpMed, hlsMed := med(rtmp), med(hlsSegs)
	if rtmpMed < 180_000 || rtmpMed > 520_000 {
		t.Errorf("RTMP median bitrate = %.0f, want ~200-400k", rtmpMed)
	}
	if hlsMed < 180_000 || hlsMed > 520_000 {
		t.Errorf("HLS median bitrate = %.0f, want ~200-400k", hlsMed)
	}

	// Fig. 6(b): at similar QP, bitrate varies widely (content classes).
	var lowQPRates []float64
	for _, r := range append(append([]Report{}, rtmp...), hlsSegs...) {
		if r.AvgQP >= 20 && r.AvgQP <= 32 {
			lowQPRates = append(lowQPRates, r.BitrateBps)
		}
	}
	if len(lowQPRates) > 10 {
		spread := stats.Max(lowQPRates) / stats.Min(lowQPRates)
		if spread < 2 {
			t.Errorf("QP-band bitrate spread = %.1fx, want wide (content variability)", spread)
		}
	}

	// Segment duration mode near 3.6 s.
	var secs []float64
	for _, d := range segDurs {
		secs = append(secs, d.Seconds())
	}
	m := stats.Median(secs)
	if m < 3.0 || m > 5.0 {
		t.Errorf("median segment duration = %.2f s, want ~3.6-4.5", m)
	}
}

func TestIOnlyCapturesFormTheBitrateTail(t *testing.T) {
	// The paper attributes the RTMP bitrate maxima to poor-efficiency
	// encodings (I-type frames only). An I-only capture must analyze to a
	// substantially higher bitrate than a typical IBP one.
	ibp := media.DefaultEncoderConfig()
	ibp.DropProb = 0
	ibpRep, err := AnalyzeFLV(GenerateRTMPCapture(ibp, 20*time.Second).Tags)
	if err != nil {
		t.Fatal(err)
	}
	ionly := media.DefaultEncoderConfig()
	ionly.Pattern = media.GOPIOnly
	ionly.TargetBitrate = 900_000 // the class RandomEncoderConfig assigns
	ionly.DropProb = 0
	ioRep, err := AnalyzeFLV(GenerateRTMPCapture(ionly, 20*time.Second).Tags)
	if err != nil {
		t.Fatal(err)
	}
	if ioRep.BitrateBps < 1.5*ibpRep.BitrateBps {
		t.Errorf("I-only bitrate %.0f not >> IBP %.0f", ioRep.BitrateBps, ibpRep.BitrateBps)
	}
}

func TestCorpusPatternShares(t *testing.T) {
	cfg := DefaultCorpusConfig()
	cfg.Videos = 120
	cfg.CaptureDur = 10 * time.Second
	rtmp, _, _ := CorpusReports(cfg)
	counts := map[FramePattern]int{}
	for _, r := range rtmp {
		counts[r.Pattern]++
	}
	ipShare := float64(counts[PatternIP]) / float64(len(rtmp))
	// Paper: 20.0% (RTMP) use I and P only.
	if ipShare < 0.08 || ipShare > 0.35 {
		t.Errorf("IP share = %.2f, want ~0.20", ipShare)
	}
	if counts[PatternIBP] < counts[PatternIP] {
		t.Error("IBP must dominate")
	}
}

func TestQPTracksContentComplexity(t *testing.T) {
	// Static content should analyze to lower QP than high-motion content
	// at the same target bitrate (the mechanism behind Fig. 6(b)).
	mk := func(class media.ContentClass) float64 {
		enc := media.DefaultEncoderConfig()
		enc.Class = class
		enc.DropProb = 0
		enc.Seed = 42
		cap := GenerateRTMPCapture(enc, 20*time.Second)
		rep, err := AnalyzeFLV(cap.Tags)
		if err != nil {
			t.Fatal(err)
		}
		return rep.AvgQP
	}
	if staticQP, motionQP := mk(media.ContentStatic), mk(media.ContentHighMotion); staticQP >= motionQP {
		t.Errorf("static QP %.1f !< high-motion QP %.1f", staticQP, motionQP)
	}
}

func TestAnalyzeEmptyInputs(t *testing.T) {
	if _, err := AnalyzeFLV(nil); err != ErrNoVideo {
		t.Errorf("err = %v, want ErrNoVideo", err)
	}
	if _, err := AnalyzeTS(); err == nil {
		t.Error("want error for empty TS input")
	}
}

func TestVariableFrameRateMeasured(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var fpsVals []float64
	for i := 0; i < 10; i++ {
		enc := media.RandomEncoderConfig(rng)
		cap := GenerateRTMPCapture(enc, 10*time.Second)
		rep, err := AnalyzeFLV(cap.Tags)
		if err != nil {
			continue
		}
		fpsVals = append(fpsVals, rep.FPS)
	}
	if len(fpsVals) < 8 {
		t.Fatal("too few analyzable captures")
	}
	lo, hi := stats.Min(fpsVals), stats.Max(fpsVals)
	if hi > 30.5 {
		t.Errorf("fps above 30: %v", hi)
	}
	if math.Abs(hi-lo) < 2 {
		t.Errorf("frame rate not variable: range [%v, %v]", lo, hi)
	}
}
