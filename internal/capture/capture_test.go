package capture

import (
	"io"
	"net"
	"testing"
	"time"
)

func TestRecorderAndTimeline(t *testing.T) {
	r := NewRecorder()
	base := time.Unix(100, 0)
	r.Record(base.Add(50*time.Millisecond), Down, 1000)
	r.Record(base.Add(150*time.Millisecond), Down, 2000)
	r.Record(base.Add(950*time.Millisecond), Up, 500)
	r.Record(base.Add(5*time.Second), Down, 999) // outside window

	tl := NewTimeline(r.Events(), base, time.Second, 100*time.Millisecond)
	if len(tl.Buckets) != 10 {
		t.Fatalf("buckets = %d", len(tl.Buckets))
	}
	if tl.Buckets[0] != 1000 || tl.Buckets[1] != 2000 || tl.Buckets[9] != 500 {
		t.Errorf("buckets = %v", tl.Buckets)
	}
	if tl.TotalBytes() != 3500 {
		t.Errorf("total = %d", tl.TotalBytes())
	}
	// 3500 bytes over 1s = 28 kbps.
	if r := tl.AvgRateBps(); r != 28000 {
		t.Errorf("avg rate = %v", r)
	}
	// Peak bucket 2000 B / 0.1 s = 160 kbps.
	if p := tl.PeakRateBps(); p != 160000 {
		t.Errorf("peak = %v", p)
	}
	if f := tl.ActiveFraction(); f != 0.3 {
		t.Errorf("active fraction = %v", f)
	}
}

func TestRecorderTotals(t *testing.T) {
	r := NewRecorder()
	r.Record(time.Now(), Down, 10)
	r.Record(time.Now(), Up, 7)
	r.Record(time.Now(), Down, 0) // ignored
	if r.TotalBytes(Down) != 10 || r.TotalBytes(Up) != 7 || r.TotalBytes(-1) != 17 {
		t.Errorf("totals: down=%d up=%d all=%d", r.TotalBytes(Down), r.TotalBytes(Up), r.TotalBytes(-1))
	}
}

func TestRecordedConn(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	rec := NewRecorder()
	wrapped := rec.Conn(a)
	go func() {
		b.Write([]byte("hello"))
		buf := make([]byte, 5)
		io.ReadFull(b, buf)
	}()
	buf := make([]byte, 5)
	if _, err := io.ReadFull(wrapped, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := wrapped.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if rec.TotalBytes(Down) != 5 || rec.TotalBytes(Up) != 5 {
		t.Errorf("down=%d up=%d", rec.TotalBytes(Down), rec.TotalBytes(Up))
	}
}

func TestSyntheticTimeline(t *testing.T) {
	tl := SyntheticTimeline(time.Second, []int64{125000, 0, 125000})
	if tl.Duration() != 3*time.Second {
		t.Errorf("duration = %v", tl.Duration())
	}
	// 250 KB over 3 s ≈ 666.7 kbps.
	if r := tl.AvgRateBps(); r < 666000 || r > 667000 {
		t.Errorf("rate = %v", r)
	}
}
