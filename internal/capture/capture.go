// Package capture is the tcpdump substitute: it records timestamped byte
// events per direction, builds traffic timelines (bytes per interval), and
// computes the windowed rates the paper quotes (e.g. the aggregate data
// rate rising from ~500 kbps to 3.5 Mbps when chat is enabled, §5.1). The
// power model consumes these timelines to drive its radio state machine.
package capture

import (
	"net"
	"sort"
	"sync"
	"time"
)

// Direction of a traffic event.
type Direction int

// Directions.
const (
	Down Direction = iota // towards the phone
	Up
)

// Event is one timestamped transfer.
type Event struct {
	At    time.Time
	Dir   Direction
	Bytes int
}

// Recorder accumulates events, like a pcap ring buffer.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record adds one event.
func (r *Recorder) Record(at time.Time, dir Direction, n int) {
	if n <= 0 {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, Event{At: at, Dir: dir, Bytes: n})
	r.mu.Unlock()
}

// Events returns a time-sorted snapshot.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	out := append([]Event(nil), r.events...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out
}

// TotalBytes sums a direction's bytes (-1 for both).
func (r *Recorder) TotalBytes(dir Direction) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, e := range r.events {
		if dir < 0 || e.Dir == dir {
			n += int64(e.Bytes)
		}
	}
	return n
}

// Conn wraps a net.Conn so all reads/writes are recorded.
func (r *Recorder) Conn(nc net.Conn) net.Conn { return &recConn{Conn: nc, rec: r} }

type recConn struct {
	net.Conn
	rec *Recorder
}

func (c *recConn) Read(b []byte) (int, error) {
	n, err := c.Conn.Read(b)
	if n > 0 {
		c.rec.Record(time.Now(), Down, n)
	}
	return n, err
}

func (c *recConn) Write(b []byte) (int, error) {
	n, err := c.Conn.Write(b)
	if n > 0 {
		c.rec.Record(time.Now(), Up, n)
	}
	return n, err
}

// Timeline is traffic bucketed into fixed intervals from a start instant.
type Timeline struct {
	Start    time.Time
	Interval time.Duration
	// Buckets holds bytes transferred per interval (both directions).
	Buckets []int64
}

// NewTimeline buckets events between start and end.
func NewTimeline(events []Event, start time.Time, dur, interval time.Duration) *Timeline {
	n := int(dur / interval)
	if n <= 0 {
		n = 1
	}
	tl := &Timeline{Start: start, Interval: interval, Buckets: make([]int64, n)}
	for _, e := range events {
		idx := int(e.At.Sub(start) / interval)
		if idx >= 0 && idx < n {
			tl.Buckets[idx] += int64(e.Bytes)
		}
	}
	return tl
}

// SyntheticTimeline builds a timeline directly from per-bucket byte counts
// (for model-tier scenarios with no real traffic).
func SyntheticTimeline(interval time.Duration, buckets []int64) *Timeline {
	return &Timeline{Interval: interval, Buckets: append([]int64(nil), buckets...)}
}

// Duration returns the covered time span.
func (tl *Timeline) Duration() time.Duration {
	return time.Duration(len(tl.Buckets)) * tl.Interval
}

// TotalBytes sums all buckets.
func (tl *Timeline) TotalBytes() int64 {
	var n int64
	for _, b := range tl.Buckets {
		n += b
	}
	return n
}

// AvgRateBps returns the mean rate in bits per second.
func (tl *Timeline) AvgRateBps() float64 {
	d := tl.Duration().Seconds()
	if d == 0 {
		return 0
	}
	return float64(tl.TotalBytes()) * 8 / d
}

// PeakRateBps returns the highest single-bucket rate in bits per second.
func (tl *Timeline) PeakRateBps() float64 {
	var peak int64
	for _, b := range tl.Buckets {
		if b > peak {
			peak = b
		}
	}
	return float64(peak) * 8 / tl.Interval.Seconds()
}

// ActiveFraction reports the fraction of buckets with any traffic — the
// radio duty cycle driver.
func (tl *Timeline) ActiveFraction() float64 {
	if len(tl.Buckets) == 0 {
		return 0
	}
	active := 0
	for _, b := range tl.Buckets {
		if b > 0 {
			active++
		}
	}
	return float64(active) / float64(len(tl.Buckets))
}
