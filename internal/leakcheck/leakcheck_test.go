package leakcheck

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeTB captures Errorf output so the tests can assert on what Check
// reports without failing themselves.
type fakeTB struct {
	mu   sync.Mutex
	errs []string
}

func (f *fakeTB) Errorf(format string, args ...any) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.errs = append(f.errs, fmt.Sprintf(format, args...))
}

func (f *fakeTB) Helper() {}

// leakyWait blocks until ch closes; its name identifies the goroutine
// in stack dumps.
func leakyWait(ch chan struct{}, started *sync.WaitGroup) {
	started.Done()
	<-ch
}

// TestCatchesLeak: a goroutine parked on a never-closed channel is
// reported, and the report carries its stack.
func TestCatchesLeak(t *testing.T) {
	ch := make(chan struct{})
	var started sync.WaitGroup
	started.Add(1)
	go leakyWait(ch, &started)
	started.Wait()

	fake := &fakeTB{}
	Check(fake, Retries(2, 10*time.Millisecond))

	close(ch) // clean up before asserting, so TestMain stays green
	if len(fake.errs) != 1 {
		t.Fatalf("want 1 leak report, got %d: %q", len(fake.errs), fake.errs)
	}
	if !strings.Contains(fake.errs[0], "leakyWait") {
		t.Errorf("leak report does not name the leaked frame: %s", fake.errs[0])
	}
	if !strings.Contains(fake.errs[0], "leaked goroutine(s)") {
		t.Errorf("unexpected report format: %s", fake.errs[0])
	}
	waitGone(t, "leakyWait")
}

// TestAllowlistedFrameNotReported: the same parked goroutine passes
// when its frame is allowlisted.
func TestAllowlistedFrameNotReported(t *testing.T) {
	ch := make(chan struct{})
	var started sync.WaitGroup
	started.Add(1)
	go leakyWait(ch, &started)
	started.Wait()

	fake := &fakeTB{}
	Check(fake, Retries(2, 10*time.Millisecond), Allow("leakcheck.leakyWait"))

	close(ch)
	if len(fake.errs) != 0 {
		t.Fatalf("allowlisted goroutine was reported: %q", fake.errs)
	}
	waitGone(t, "leakyWait")
}

// TestGracePeriodToleratesLateExit: a goroutine that is still draining
// when the check starts but exits within the retry window is not a
// leak.
func TestGracePeriodToleratesLateExit(t *testing.T) {
	ch := make(chan struct{})
	var started sync.WaitGroup
	started.Add(1)
	go leakyWait(ch, &started)
	started.Wait()
	go func() {
		time.Sleep(30 * time.Millisecond)
		close(ch)
	}()

	fake := &fakeTB{}
	Check(fake, Retries(30, 10*time.Millisecond))
	if len(fake.errs) != 0 {
		t.Fatalf("goroutine exiting within the grace window was reported: %q", fake.errs)
	}
}

// TestIgnoreCurrent: a goroutine alive before the option is applied is
// baseline, not a leak.
func TestIgnoreCurrent(t *testing.T) {
	ch := make(chan struct{})
	var started sync.WaitGroup
	started.Add(1)
	go leakyWait(ch, &started)
	started.Wait()

	fake := &fakeTB{}
	Check(fake, IgnoreCurrent(), Retries(2, 10*time.Millisecond))

	close(ch)
	if len(fake.errs) != 0 {
		t.Fatalf("baselined goroutine was reported: %q", fake.errs)
	}
	waitGone(t, "leakyWait")
}

// waitGone blocks until no goroutine stack mentions frame, so one
// test's deliberate leak cannot bleed into the next.
func waitGone(t *testing.T, frame string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		found := false
		for _, g := range stacks() {
			if strings.Contains(g.text, frame) {
				found = true
				break
			}
		}
		if !found {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutine with frame %s did not exit", frame)
}

// TestMain dogfoods the harness on this package's own tests.
func TestMain(m *testing.M) {
	Main(m)
}
