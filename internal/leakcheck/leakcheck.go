// Package leakcheck is the runtime half of the goroutine-lifecycle
// contract that periscopelint/gostop enforces statically: gostop proves
// every long-lived goroutine launched from a constructor path has a
// stop path, and leakcheck verifies at the end of a test binary that
// the stop paths were actually taken — no goroutine from the package
// under test survives the run.
//
// Wire it into a package by declaring
//
//	func TestMain(m *testing.M) {
//		leakcheck.Main(m)
//	}
//
// Main runs the tests and then snapshots all goroutine stacks,
// retrying over a grace window so goroutines that are mid-teardown
// (a worker draining its queue after its quit channel closed) are not
// false positives. Anything still alive after the window whose stack
// is not on the allowlist fails the binary.
//
// The allowlist covers the frames a clean test binary legitimately
// keeps: the testing harness itself, signal handling, and this
// package. Per-package exceptions are declared at the wiring site with
// Allow — every Allow in the tree should cite why the goroutine is
// expected to outlive the tests.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"
)

// TB is the subset of testing.TB that Check reports through; a local
// interface keeps the package importable without depending on testing.
type TB interface {
	Errorf(format string, args ...any)
	Helper()
}

// defaultAllow lists stack substrings a clean test binary is allowed to
// keep alive after the tests finish.
var defaultAllow = []string{
	// The testing harness: the main goroutine inside m.Run, parallel
	// test runners parked between phases.
	"testing.Main(",
	"testing.(*M).",
	"testing.tRunner(",
	"testing.runTests(",
	// Signal handling keeps one goroutine for the life of the process.
	"os/signal.signal_recv",
	"os/signal.loop",
	// The runtime's own helpers (trace reader, GC background work show
	// up without user frames). The checker itself needs no entry: it
	// runs on the calling goroutine, which is skipped by id.
	"runtime.ReadTrace",
	"runtime.goexit",
}

// config is the assembled option set for one check.
type config struct {
	allow    []string
	retries  int
	backoff  time.Duration
	baseline map[string]bool // goroutine ids to ignore (IgnoreCurrent)
	cleanup  []func()
}

// Option customizes a Check or Main call.
type Option func(*config)

// Allow exempts any goroutine whose stack contains substr. Use the
// narrowest frame that identifies the goroutine, and keep a comment at
// the call site saying why it legitimately outlives the tests.
func Allow(substr string) Option {
	return func(c *config) { c.allow = append(c.allow, substr) }
}

// Retries sets the grace window: up to n re-snapshots, sleeping backoff
// between attempts. The default (20 × 50ms, ≈1s) absorbs workers that
// are mid-teardown when the tests finish.
func Retries(n int, backoff time.Duration) Option {
	return func(c *config) { c.retries, c.backoff = n, backoff }
}

// Cleanup registers fn to run after the tests but before the first
// snapshot — the place to drop process-wide resources that park
// goroutines by design, like a shared HTTP transport's idle
// connections.
func Cleanup(fn func()) Option {
	return func(c *config) { c.cleanup = append(c.cleanup, fn) }
}

// IgnoreCurrent snapshots the goroutines alive right now and exempts
// them from the check: pre-existing background goroutines (a shared
// fixture started in init) are the caller's baseline, not a leak.
func IgnoreCurrent() Option {
	return func(c *config) {
		if c.baseline == nil {
			c.baseline = map[string]bool{}
		}
		for _, g := range stacks() {
			c.baseline[g.id] = true
		}
	}
}

func newConfig(opts []Option) *config {
	c := &config{
		allow:   append([]string{}, defaultAllow...),
		retries: 20,
		backoff: 50 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Check fails t if, after the grace window, any non-allowlisted
// goroutine is still alive. Use it from individual tests that construct
// and tear down a subsystem; use Main for whole-binary coverage.
func Check(t TB, opts ...Option) {
	t.Helper()
	if err := check(newConfig(opts)); err != nil {
		t.Errorf("%v", err)
	}
}

// mRunner is the piece of *testing.M that Main needs.
type mRunner interface{ Run() int }

// Main wraps testing.M.Run for use from TestMain: it runs the tests
// and, when they pass, fails the binary if goroutines leaked. It does
// not return.
func Main(m mRunner, opts ...Option) {
	code := m.Run()
	if code == 0 {
		if err := check(newConfig(opts)); err != nil {
			fmt.Fprintf(os.Stderr, "leakcheck: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

// check retries the snapshot until no interesting goroutines remain or
// the grace window is exhausted.
func check(c *config) error {
	for _, fn := range c.cleanup {
		fn()
	}
	var leaked []goroutine
	for attempt := 0; ; attempt++ {
		leaked = interesting(c)
		if len(leaked) == 0 {
			return nil
		}
		if attempt >= c.retries {
			break
		}
		time.Sleep(c.backoff)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d leaked goroutine(s) after %v grace window:",
		len(leaked), time.Duration(c.retries)*c.backoff)
	for _, g := range leaked {
		fmt.Fprintf(&b, "\n\ngoroutine %s [%s]:\n%s", g.id, g.state, g.text)
	}
	return fmt.Errorf("%s", b.String())
}

// interesting snapshots all goroutines and filters to the suspects.
func interesting(c *config) []goroutine {
	cur := currentID()
	var out []goroutine
	for _, g := range stacks() {
		if g.id == cur || c.baseline[g.id] {
			continue
		}
		allowed := false
		for _, a := range c.allow {
			if strings.Contains(g.text, a) {
				allowed = true
				break
			}
		}
		if !allowed {
			out = append(out, g)
		}
	}
	return out
}

// goroutine is one parsed stack block from runtime.Stack.
type goroutine struct {
	id    string
	state string
	text  string // frames, without the header line
}

// stacks captures and parses every goroutine's stack.
func stacks() []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []goroutine
	for _, block := range strings.Split(string(buf), "\n\n") {
		if g, ok := parseBlock(block); ok {
			out = append(out, g)
		}
	}
	return out
}

// parseBlock splits "goroutine N [state]:\nframes..." into its parts.
func parseBlock(block string) (goroutine, bool) {
	block = strings.TrimSpace(block)
	header, rest, found := strings.Cut(block, "\n")
	if !found {
		rest = ""
	}
	if !strings.HasPrefix(header, "goroutine ") {
		return goroutine{}, false
	}
	header = strings.TrimPrefix(header, "goroutine ")
	id, state, ok := strings.Cut(header, " ")
	if !ok {
		return goroutine{}, false
	}
	state = strings.TrimSuffix(strings.TrimPrefix(strings.TrimSpace(state), "["), "]:")
	return goroutine{id: id, state: state, text: rest}, true
}

// currentID returns the calling goroutine's id.
func currentID() string {
	buf := make([]byte, 64)
	n := runtime.Stack(buf, false)
	header := string(buf[:n])
	header = strings.TrimPrefix(header, "goroutine ")
	id, _, _ := strings.Cut(header, " ")
	return id
}
