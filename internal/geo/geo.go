// Package geo models the geographic side of the Periscope service: the
// world map the mobile app lets users explore, the rectangular query areas
// the crawler sends to /mapGeoBroadcastFeed, recursive quadtree subdivision
// for deep crawls, and longitude-based local-time estimation used to place
// broadcast start times in the broadcaster's time zone (Fig. 2(b)).
package geo

import (
	"fmt"
	"math"
	"time"
)

// Point is a geographic coordinate in degrees.
type Point struct {
	Lat float64 // [-90, 90]
	Lon float64 // [-180, 180)
}

// Rect is a latitude/longitude aligned rectangle. Rectangles never wrap the
// antimeridian; the world is covered by rectangles in [-180, 180).
type Rect struct {
	South, West float64 // lower-left corner
	North, East float64 // upper-right corner
}

// World returns the rectangle covering the whole map.
func World() Rect { return Rect{South: -90, West: -180, North: 90, East: 180} }

// Contains reports whether p lies inside r (south/west inclusive,
// north/east exclusive, so a tiling of rectangles covers every point once).
func (r Rect) Contains(p Point) bool {
	return p.Lat >= r.South && p.Lat < r.North && p.Lon >= r.West && p.Lon < r.East
}

// Valid reports whether the rectangle is well-formed and non-empty.
func (r Rect) Valid() bool {
	return r.South < r.North && r.West < r.East &&
		r.South >= -90 && r.North <= 90 && r.West >= -180 && r.East <= 180
}

// Area returns a simple solid-angle-free area proxy in square degrees.
func (r Rect) Area() float64 { return (r.North - r.South) * (r.East - r.West) }

// Center returns the rectangle's midpoint.
func (r Rect) Center() Point {
	return Point{Lat: (r.South + r.North) / 2, Lon: (r.West + r.East) / 2}
}

// Quadrants splits r into its four quadrants (SW, SE, NW, NE). This is the
// "zoom in" operation the deep crawler applies recursively.
func (r Rect) Quadrants() [4]Rect {
	c := r.Center()
	return [4]Rect{
		{South: r.South, West: r.West, North: c.Lat, East: c.Lon}, // SW
		{South: r.South, West: c.Lon, North: c.Lat, East: r.East}, // SE
		{South: c.Lat, West: r.West, North: r.North, East: c.Lon}, // NW
		{South: c.Lat, West: c.Lon, North: r.North, East: r.East}, // NE
	}
}

// Intersects reports whether two rectangles overlap.
func (r Rect) Intersects(o Rect) bool {
	return r.West < o.East && o.West < r.East && r.South < o.North && o.South < r.North
}

func (r Rect) String() string {
	return fmt.Sprintf("[%.2f,%.2f..%.2f,%.2f]", r.South, r.West, r.North, r.East)
}

// earthRadiusKm is the mean Earth radius used by DistanceKm.
const earthRadiusKm = 6371.0

// DistanceKm returns the great-circle (haversine) distance between two
// points in kilometres.
func DistanceKm(a, b Point) float64 {
	const rad = math.Pi / 180
	lat1, lat2 := a.Lat*rad, b.Lat*rad
	dLat := (b.Lat - a.Lat) * rad
	dLon := (b.Lon - a.Lon) * rad
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(s)))
}

// fiberKmPerSec is the signal propagation speed in optical fiber (~2/3 c),
// the standard first-order model for inter-datacenter latency.
const fiberKmPerSec = 200_000.0

// linkHopOverhead is the fixed per-path cost (routing, serialization,
// handshakes amortized over keep-alive) added on top of propagation delay.
// It is also the floor for co-located endpoints: two POPs in the same
// region are near, not free.
const linkHopOverhead = 2 * time.Millisecond

// LinkRTT estimates the round-trip time of a wide-area path between two
// points: great-circle propagation at fiber speed, doubled, plus a fixed
// hop overhead. §5.1 of the paper attributes much of the HLS latency
// spread to exactly this quantity — the RTT between viewer, edge, and
// origin.
func LinkRTT(a, b Point) time.Duration {
	oneWay := DistanceKm(a, b) / fiberKmPerSec
	return time.Duration(2*oneWay*float64(time.Second)) + linkHopOverhead
}

// LocalHourOffset estimates the broadcaster's UTC offset in hours from the
// longitude (15 degrees per hour, rounded to the nearest hour). The paper
// determines the local time of day from the broadcaster's time zone; this
// longitude rule is the standard approximation when only coordinates are
// available.
func LocalHourOffset(lon float64) int {
	return int(math.Round(lon / 15.0))
}

// LocalHour converts a UTC hour-of-day (fractional) at the given longitude
// into the local hour-of-day in [0, 24).
func LocalHour(utcHour, lon float64) float64 {
	h := math.Mod(utcHour+float64(LocalHourOffset(lon)), 24)
	if h < 0 {
		h += 24
	}
	return h
}

// Region is a named populated area of the world. The service simulator
// places broadcasters in regions, and regional RTMP ingest servers are
// selected by proximity ("at least one in each continent, except Africa").
type Region struct {
	Name   string
	Bounds Rect
	// Weight is the fraction of global broadcast activity originating in
	// this region.
	Weight float64
	// UTCOffset is the representative local-time offset for the region.
	UTCOffset int
}

// Regions returns the built-in world regions, loosely following where
// Periscope usage concentrated (US, Europe, Turkey/Middle East, Asia,
// South America, Oceania). Weights sum to 1.
func Regions() []Region {
	return []Region{
		{Name: "us-west", Bounds: Rect{South: 30, West: -125, North: 49, East: -100}, Weight: 0.14, UTCOffset: -8},
		{Name: "us-east", Bounds: Rect{South: 25, West: -100, North: 49, East: -66}, Weight: 0.18, UTCOffset: -5},
		{Name: "south-america", Bounds: Rect{South: -35, West: -80, North: 10, East: -35}, Weight: 0.11, UTCOffset: -3},
		{Name: "eu-west", Bounds: Rect{South: 36, West: -10, North: 59, East: 15}, Weight: 0.16, UTCOffset: 1},
		{Name: "eu-east", Bounds: Rect{South: 36, West: 15, North: 59, East: 40}, Weight: 0.12, UTCOffset: 2},
		{Name: "middle-east", Bounds: Rect{South: 12, West: 26, North: 42, East: 60}, Weight: 0.13, UTCOffset: 3},
		{Name: "asia-east", Bounds: Rect{South: 0, West: 95, North: 45, East: 145}, Weight: 0.12, UTCOffset: 8},
		{Name: "oceania", Bounds: Rect{South: -45, West: 110, North: -10, East: 155}, Weight: 0.04, UTCOffset: 10},
	}
}

// RegionByName looks a region up by name.
func RegionByName(regions []Region, name string) (Region, bool) {
	for _, r := range regions {
		if r.Name == name {
			return r, true
		}
	}
	return Region{}, false
}

// NearestRegion returns the region whose centre is closest to p, used for
// broadcaster-nearest RTMP server selection.
func NearestRegion(regions []Region, p Point) Region {
	best := regions[0]
	bestD := math.Inf(1)
	for _, r := range regions {
		c := r.Bounds.Center()
		d := sqDist(c, p)
		if d < bestD {
			bestD = d
			best = r
		}
	}
	return best
}

func sqDist(a, b Point) float64 {
	dl := a.Lat - b.Lat
	dn := math.Abs(a.Lon - b.Lon)
	if dn > 180 {
		dn = 360 - dn
	}
	return dl*dl + dn*dn
}

// GridCover tiles r with an n x n grid of equal rectangles, the shape of a
// coarse map exploration pass.
func GridCover(r Rect, n int) []Rect {
	out := make([]Rect, 0, n*n)
	dLat := (r.North - r.South) / float64(n)
	dLon := (r.East - r.West) / float64(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out = append(out, Rect{
				South: r.South + float64(i)*dLat,
				West:  r.West + float64(j)*dLon,
				North: r.South + float64(i+1)*dLat,
				East:  r.West + float64(j)*dLon + dLon,
			})
		}
	}
	return out
}
