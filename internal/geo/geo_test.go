package geo

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestWorldValid(t *testing.T) {
	w := World()
	if !w.Valid() {
		t.Fatal("world rect invalid")
	}
	if w.Area() != 180*360 {
		t.Errorf("area = %v", w.Area())
	}
}

func TestQuadrantsPartition(t *testing.T) {
	r := Rect{South: 0, West: 0, North: 40, East: 80}
	qs := r.Quadrants()
	var area float64
	for _, q := range qs {
		if !q.Valid() {
			t.Errorf("invalid quadrant %v", q)
		}
		area += q.Area()
	}
	if math.Abs(area-r.Area()) > 1e-9 {
		t.Errorf("quadrant area sum %v != %v", area, r.Area())
	}
	// Quadrants must not overlap.
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if qs[i].Intersects(qs[j]) {
				t.Errorf("quadrants %d and %d intersect", i, j)
			}
		}
	}
}

// Property: every point in a rect lands in exactly one quadrant.
func TestQuadrantContainsProperty(t *testing.T) {
	f := func(latSeed, lonSeed float64) bool {
		if math.IsNaN(latSeed) || math.IsNaN(lonSeed) || math.IsInf(latSeed, 0) || math.IsInf(lonSeed, 0) {
			return true
		}
		p := Point{
			Lat: math.Mod(math.Abs(latSeed), 180) - 90,
			Lon: math.Mod(math.Abs(lonSeed), 360) - 180,
		}
		w := World()
		if !w.Contains(p) {
			return true // north/east boundary points excluded by design
		}
		count := 0
		for _, q := range w.Quadrants() {
			if q.Contains(p) {
				count++
			}
		}
		return count == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestContainsEdges(t *testing.T) {
	r := Rect{South: 0, West: 0, North: 10, East: 10}
	if !r.Contains(Point{Lat: 0, Lon: 0}) {
		t.Error("south-west corner must be inside")
	}
	if r.Contains(Point{Lat: 10, Lon: 5}) {
		t.Error("north edge must be outside")
	}
	if r.Contains(Point{Lat: 5, Lon: 10}) {
		t.Error("east edge must be outside")
	}
}

func TestLocalHourOffset(t *testing.T) {
	cases := []struct {
		lon  float64
		want int
	}{{0, 0}, {15, 1}, {-15, -1}, {179, 12}, {-179, -12}, {7.4, 0}, {7.6, 1}}
	for _, c := range cases {
		if got := LocalHourOffset(c.lon); got != c.want {
			t.Errorf("LocalHourOffset(%v) = %d, want %d", c.lon, got, c.want)
		}
	}
}

func TestLocalHourWraps(t *testing.T) {
	if h := LocalHour(23, 30); h != 1 {
		t.Errorf("LocalHour(23, 30E) = %v, want 1", h)
	}
	if h := LocalHour(1, -45); h != 22 {
		t.Errorf("LocalHour(1, 45W) = %v, want 22", h)
	}
}

func TestRegionsWeights(t *testing.T) {
	var sum float64
	for _, r := range Regions() {
		if !r.Bounds.Valid() {
			t.Errorf("region %s bounds invalid", r.Name)
		}
		if r.Weight <= 0 {
			t.Errorf("region %s has non-positive weight", r.Name)
		}
		sum += r.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("region weights sum to %v, want 1", sum)
	}
}

func TestNearestRegion(t *testing.T) {
	regs := Regions()
	// San Francisco should map to us-west.
	if r := NearestRegion(regs, Point{Lat: 37.7, Lon: -122.4}); r.Name != "us-west" {
		t.Errorf("SF nearest = %s, want us-west", r.Name)
	}
	// Istanbul area should be middle-east or eu-east, not the Americas.
	r := NearestRegion(regs, Point{Lat: 41, Lon: 29})
	if r.Name == "us-west" || r.Name == "us-east" || r.Name == "south-america" {
		t.Errorf("Istanbul nearest = %s", r.Name)
	}
}

func TestDistanceKm(t *testing.T) {
	// Zero distance.
	p := Point{Lat: 48.9, Lon: 2.3}
	if d := DistanceKm(p, p); d != 0 {
		t.Errorf("DistanceKm(p, p) = %v, want 0", d)
	}
	// Paris ↔ New York is ~5840 km; accept a few percent (spherical model).
	ny := Point{Lat: 40.7, Lon: -74.0}
	d := DistanceKm(p, ny)
	if d < 5500 || d > 6100 {
		t.Errorf("Paris-NY = %v km, want ~5840", d)
	}
	if d2 := DistanceKm(ny, p); math.Abs(d-d2) > 1e-9 {
		t.Errorf("distance not symmetric: %v vs %v", d, d2)
	}
	// Antipodal points are half the circumference (~20015 km).
	a := Point{Lat: 0, Lon: 0}
	b := Point{Lat: 0, Lon: 180}
	if d := DistanceKm(a, b); math.Abs(d-math.Pi*earthRadiusKm) > 1 {
		t.Errorf("antipodal distance = %v", d)
	}
}

func TestLinkRTT(t *testing.T) {
	regs := Regions()
	usw, _ := RegionByName(regs, "us-west")
	euw, _ := RegionByName(regs, "eu-west")
	// Same point: only the hop overhead.
	if rtt := LinkRTT(usw.Bounds.Center(), usw.Bounds.Center()); rtt != linkHopOverhead {
		t.Errorf("co-located RTT = %v, want %v", rtt, linkHopOverhead)
	}
	// Transatlantic: tens of milliseconds, under a second.
	rtt := LinkRTT(usw.Bounds.Center(), euw.Bounds.Center())
	if rtt < 50*time.Millisecond || rtt > 200*time.Millisecond {
		t.Errorf("us-west↔eu-west RTT = %v, want 50-200 ms", rtt)
	}
	// Monotone in distance: the farther pair has the larger RTT.
	use, _ := RegionByName(regs, "us-east")
	if near := LinkRTT(euw.Bounds.Center(), use.Bounds.Center()); near >= rtt {
		t.Errorf("eu-west↔us-east RTT %v not below eu-west↔us-west %v", near, rtt)
	}
}

func TestRegionByName(t *testing.T) {
	regs := Regions()
	if r, ok := RegionByName(regs, "eu-west"); !ok || r.Name != "eu-west" {
		t.Errorf("RegionByName(eu-west) = %+v, %v", r, ok)
	}
	if _, ok := RegionByName(regs, "atlantis"); ok {
		t.Error("unknown region reported found")
	}
}

func TestGridCover(t *testing.T) {
	r := World()
	cells := GridCover(r, 8)
	if len(cells) != 64 {
		t.Fatalf("got %d cells, want 64", len(cells))
	}
	var area float64
	for _, c := range cells {
		if !c.Valid() {
			t.Errorf("invalid cell %v", c)
		}
		area += c.Area()
	}
	if math.Abs(area-r.Area()) > 1e-6 {
		t.Errorf("grid area %v != world %v", area, r.Area())
	}
}

func TestIntersects(t *testing.T) {
	a := Rect{South: 0, West: 0, North: 10, East: 10}
	b := Rect{South: 5, West: 5, North: 15, East: 15}
	c := Rect{South: 10, West: 10, North: 20, East: 20}
	if !a.Intersects(b) {
		t.Error("a and b should intersect")
	}
	if a.Intersects(c) {
		t.Error("a and c touch only at a corner; exclusive edges say no")
	}
}
