// Package websocket implements the subset of RFC 6455 that the Periscope
// chat uses ("The chat uses Websockets to deliver messages", §3): the
// HTTP Upgrade handshake with Sec-WebSocket-Accept validation, frame
// encoding/decoding with client-side masking, fragmentation reassembly,
// and text/binary/ping/pong/close opcodes.
package websocket

import (
	"bufio"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
)

// rfc6455GUID is the magic GUID concatenated with the key in the handshake.
const rfc6455GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// Opcodes.
const (
	OpContinuation = 0x0
	OpText         = 0x1
	OpBinary       = 0x2
	OpClose        = 0x8
	OpPing         = 0x9
	OpPong         = 0xA
)

// ErrClosed is returned after a close frame has been exchanged.
var ErrClosed = errors.New("websocket: connection closed")

// Conn is an established WebSocket connection.
type Conn struct {
	nc     net.Conn
	br     *bufio.Reader
	client bool // client connections mask outgoing frames
	// closed is atomic: Close may race the read loop's ReadMessage.
	closed atomic.Bool
	// BytesRead/BytesWritten count wire bytes for traffic accounting.
	// They are atomics because traffic snapshots (chat stats) read them
	// while the read/write loops are still running.
	BytesRead    atomic.Int64
	BytesWritten atomic.Int64
}

// AcceptKey computes the Sec-WebSocket-Accept value for a key.
func AcceptKey(key string) string {
	h := sha1.Sum([]byte(key + rfc6455GUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// Upgrade hijacks an HTTP request and completes the server handshake.
func Upgrade(w http.ResponseWriter, r *http.Request) (*Conn, error) {
	if !strings.EqualFold(r.Header.Get("Upgrade"), "websocket") {
		return nil, errors.New("websocket: not an upgrade request")
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		return nil, errors.New("websocket: missing Sec-WebSocket-Key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		return nil, errors.New("websocket: response writer cannot hijack")
	}
	nc, brw, err := hj.Hijack()
	if err != nil {
		return nil, err
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + AcceptKey(key) + "\r\n\r\n"
	if _, err := nc.Write([]byte(resp)); err != nil {
		nc.Close()
		return nil, err
	}
	return &Conn{nc: nc, br: brw.Reader}, nil
}

// Dial establishes a client connection to a ws:// URL using the given
// dialer (nil for net.Dial).
func Dial(rawURL string, dial func(network, addr string) (net.Conn, error)) (*Conn, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, err
	}
	if u.Scheme != "ws" {
		return nil, fmt.Errorf("websocket: unsupported scheme %q", u.Scheme)
	}
	host := u.Host
	if u.Port() == "" {
		host += ":80"
	}
	if dial == nil {
		dial = net.Dial
	}
	nc, err := dial("tcp", host)
	if err != nil {
		return nil, err
	}
	keyRaw := make([]byte, 16)
	if _, err := rand.Read(keyRaw); err != nil {
		nc.Close()
		return nil, err
	}
	key := base64.StdEncoding.EncodeToString(keyRaw)
	path := u.RequestURI()
	if path == "" {
		path = "/"
	}
	req := "GET " + path + " HTTP/1.1\r\n" +
		"Host: " + u.Host + "\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Key: " + key + "\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if _, err := nc.Write([]byte(req)); err != nil {
		nc.Close()
		return nil, err
	}
	br := bufio.NewReader(nc)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		nc.Close()
		return nil, err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols {
		nc.Close()
		return nil, fmt.Errorf("websocket: handshake status %d", resp.StatusCode)
	}
	if resp.Header.Get("Sec-WebSocket-Accept") != AcceptKey(key) {
		nc.Close()
		return nil, errors.New("websocket: bad Sec-WebSocket-Accept")
	}
	return &Conn{nc: nc, br: br, client: true}, nil
}

// PreparedMessage is a message framed once for delivery to many
// connections: fan-out paths (chat rooms) marshal and frame a broadcast a
// single time and hand every member the same immutable buffer, instead of
// re-encoding the frame header per member. Server connections write the
// prepared frame directly (one syscall, zero allocations); client
// connections fall back to a masked per-connection write, as RFC 6455
// masking is per-frame random.
type PreparedMessage struct {
	opcode  int
	payload []byte
	frame   []byte // unmasked server-side frame: header + payload
}

// PrepareMessage frames payload once for repeated unmasked writes. The
// payload is retained (not copied) — callers must not mutate it afterwards.
func PrepareMessage(opcode int, payload []byte) *PreparedMessage {
	hdr := make([]byte, 0, 10)
	hdr = append(hdr, 0x80|byte(opcode))
	switch {
	case len(payload) < 126:
		hdr = append(hdr, byte(len(payload)))
	case len(payload) <= 0xFFFF:
		hdr = append(hdr, 126)
		hdr = binary.BigEndian.AppendUint16(hdr, uint16(len(payload)))
	default:
		hdr = append(hdr, 127)
		hdr = binary.BigEndian.AppendUint64(hdr, uint64(len(payload)))
	}
	frame := make([]byte, 0, len(hdr)+len(payload))
	frame = append(frame, hdr...)
	frame = append(frame, payload...)
	return &PreparedMessage{opcode: opcode, payload: payload, frame: frame}
}

// Payload returns the prepared message's payload. Shared — callers must
// not mutate it.
func (pm *PreparedMessage) Payload() []byte { return pm.payload }

// WritePrepared sends a prepared message. On server connections this is a
// single write of the shared pre-framed buffer.
func (c *Conn) WritePrepared(pm *PreparedMessage) error {
	if c.client {
		return c.WriteMessage(pm.opcode, pm.payload)
	}
	if c.closed.Load() {
		return ErrClosed
	}
	n, err := c.nc.Write(pm.frame)
	c.BytesWritten.Add(int64(n))
	return err
}

// WriteMessage sends one unfragmented message with the given opcode.
func (c *Conn) WriteMessage(opcode int, payload []byte) error {
	if c.closed.Load() {
		return ErrClosed
	}
	hdr := make([]byte, 0, 14)
	hdr = append(hdr, 0x80|byte(opcode))
	maskBit := byte(0)
	if c.client {
		maskBit = 0x80
	}
	switch {
	case len(payload) < 126:
		hdr = append(hdr, maskBit|byte(len(payload)))
	case len(payload) <= 0xFFFF:
		hdr = append(hdr, maskBit|126)
		hdr = binary.BigEndian.AppendUint16(hdr, uint16(len(payload)))
	default:
		hdr = append(hdr, maskBit|127)
		hdr = binary.BigEndian.AppendUint64(hdr, uint64(len(payload)))
	}
	body := payload
	if c.client {
		var mask [4]byte
		if _, err := rand.Read(mask[:]); err != nil {
			return err
		}
		hdr = append(hdr, mask[:]...)
		body = make([]byte, len(payload))
		for i, b := range payload {
			body[i] = b ^ mask[i&3]
		}
	}
	if _, err := c.nc.Write(hdr); err != nil {
		return err
	}
	n, err := c.nc.Write(body)
	c.BytesWritten.Add(int64(len(hdr) + n))
	return err
}

// ReadMessage returns the next complete data message, transparently
// answering pings and reassembling fragmented messages.
func (c *Conn) ReadMessage() (opcode int, payload []byte, err error) {
	if c.closed.Load() {
		return 0, nil, ErrClosed
	}
	var assembled []byte
	msgOp := 0
	for {
		fin, op, data, err := c.readFrame()
		if err != nil {
			return 0, nil, err
		}
		switch op {
		case OpPing:
			if err := c.WriteMessage(OpPong, data); err != nil {
				return 0, nil, err
			}
			continue
		case OpPong:
			continue
		case OpClose:
			c.closed.Store(true)
			// Echo the close frame best-effort, then report closed.
			frameHdr := []byte{0x80 | OpClose, 0}
			c.nc.Write(frameHdr)
			return 0, nil, ErrClosed
		case OpContinuation:
			if msgOp == 0 {
				return 0, nil, errors.New("websocket: continuation without start")
			}
			assembled = append(assembled, data...)
		default:
			if msgOp != 0 {
				return 0, nil, errors.New("websocket: interleaved data frames")
			}
			msgOp = op
			assembled = append(assembled, data...)
		}
		if fin && msgOp != 0 {
			return msgOp, assembled, nil
		}
	}
}

func (c *Conn) readFrame() (fin bool, opcode int, payload []byte, err error) {
	var h [2]byte
	if _, err := io.ReadFull(c.br, h[:]); err != nil {
		return false, 0, nil, err
	}
	c.BytesRead.Add(2)
	fin = h[0]&0x80 != 0
	opcode = int(h[0] & 0x0F)
	masked := h[1]&0x80 != 0
	length := uint64(h[1] & 0x7F)
	switch length {
	case 126:
		var ext [2]byte
		if _, err := io.ReadFull(c.br, ext[:]); err != nil {
			return false, 0, nil, err
		}
		c.BytesRead.Add(2)
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err := io.ReadFull(c.br, ext[:]); err != nil {
			return false, 0, nil, err
		}
		c.BytesRead.Add(8)
		length = binary.BigEndian.Uint64(ext[:])
	}
	if length > 64<<20 {
		return false, 0, nil, fmt.Errorf("websocket: frame of %d bytes refused", length)
	}
	var mask [4]byte
	if masked {
		if _, err := io.ReadFull(c.br, mask[:]); err != nil {
			return false, 0, nil, err
		}
		c.BytesRead.Add(4)
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return false, 0, nil, err
	}
	c.BytesRead.Add(int64(length))
	if masked {
		for i := range payload {
			payload[i] ^= mask[i&3]
		}
	}
	return fin, opcode, payload, nil
}

// Close sends a close frame and closes the transport.
func (c *Conn) Close() error {
	if c.closed.CompareAndSwap(false, true) {
		c.writeRaw(0x80|OpClose, nil)
	}
	return c.nc.Close()
}

func (c *Conn) writeRaw(b0 byte, payload []byte) {
	hdr := []byte{b0, byte(len(payload))}
	if c.client {
		hdr[1] |= 0x80
		hdr = append(hdr, 0, 0, 0, 0)
	}
	c.nc.Write(append(hdr, payload...))
}
