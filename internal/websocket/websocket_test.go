package websocket

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestAcceptKeyRFCExample(t *testing.T) {
	// The worked example from RFC 6455 section 1.3.
	got := AcceptKey("dGhlIHNhbXBsZSBub25jZQ==")
	if got != "s3pPLMBiTxaQ9kYGzzhZRbK+xOo=" {
		t.Errorf("AcceptKey = %s", got)
	}
}

func startEchoServer(t *testing.T) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c, err := Upgrade(w, r)
		if err != nil {
			t.Logf("upgrade: %v", err)
			return
		}
		defer c.Close()
		for {
			op, msg, err := c.ReadMessage()
			if err != nil {
				return
			}
			if err := c.WriteMessage(op, msg); err != nil {
				return
			}
		}
	}))
}

func wsURL(s *httptest.Server) string {
	return "ws" + strings.TrimPrefix(s.URL, "http")
}

func TestEchoTextAndBinary(t *testing.T) {
	srv := startEchoServer(t)
	defer srv.Close()
	c, err := Dial(wsURL(srv), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.WriteMessage(OpText, []byte("hello chat")); err != nil {
		t.Fatal(err)
	}
	op, msg, err := c.ReadMessage()
	if err != nil || op != OpText || string(msg) != "hello chat" {
		t.Fatalf("op=%d msg=%q err=%v", op, msg, err)
	}

	big := bytes.Repeat([]byte{0xAB}, 70_000) // forces 64-bit length
	if err := c.WriteMessage(OpBinary, big); err != nil {
		t.Fatal(err)
	}
	op, msg, err = c.ReadMessage()
	if err != nil || op != OpBinary || !bytes.Equal(msg, big) {
		t.Fatalf("binary echo failed: op=%d len=%d err=%v", op, len(msg), err)
	}
}

func TestMediumFrame(t *testing.T) {
	srv := startEchoServer(t)
	defer srv.Close()
	c, err := Dial(wsURL(srv), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mid := bytes.Repeat([]byte("x"), 300) // forces 16-bit length
	if err := c.WriteMessage(OpBinary, mid); err != nil {
		t.Fatal(err)
	}
	_, msg, err := c.ReadMessage()
	if err != nil || !bytes.Equal(msg, mid) {
		t.Fatalf("len=%d err=%v", len(msg), err)
	}
}

func TestPingHandledTransparently(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c, err := Upgrade(w, r)
		if err != nil {
			return
		}
		defer c.Close()
		// Ping, then a data message: client must only surface the data.
		c.WriteMessage(OpPing, []byte("beat"))
		c.WriteMessage(OpText, []byte("after-ping"))
		// Expect the pong back.
		op, msg, err := c.ReadMessage()
		_ = op
		_ = msg
		_ = err
	}))
	defer srv.Close()
	c, err := Dial(wsURL(srv), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	op, msg, err := c.ReadMessage()
	if err != nil || op != OpText || string(msg) != "after-ping" {
		t.Fatalf("op=%d msg=%q err=%v", op, msg, err)
	}
}

func TestCloseHandshake(t *testing.T) {
	srv := startEchoServer(t)
	defer srv.Close()
	c, err := Dial(wsURL(srv), nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.WriteMessage(OpText, []byte("x")); err != ErrClosed {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv := startEchoServer(t)
	defer srv.Close()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(wsURL(srv), nil)
			if err != nil {
				t.Errorf("client %d: %v", id, err)
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				want := []byte{byte(id), byte(j)}
				if err := c.WriteMessage(OpBinary, want); err != nil {
					t.Errorf("client %d write: %v", id, err)
					return
				}
				_, got, err := c.ReadMessage()
				if err != nil || !bytes.Equal(got, want) {
					t.Errorf("client %d echo mismatch", id)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestTrafficAccounting(t *testing.T) {
	srv := startEchoServer(t)
	defer srv.Close()
	c, err := Dial(wsURL(srv), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.WriteMessage(OpText, bytes.Repeat([]byte("a"), 1000))
	c.ReadMessage()
	if c.BytesWritten.Load() < 1000 || c.BytesRead.Load() < 1000 {
		t.Errorf("accounting: wrote %d read %d", c.BytesWritten.Load(), c.BytesRead.Load())
	}
}

func TestDialRejectsHTTPURL(t *testing.T) {
	if _, err := Dial("http://example.com", nil); err == nil {
		t.Error("want error for non-ws scheme")
	}
}
