package rtmp

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"periscope/internal/amf"
)

func TestHandshake(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	errc := make(chan error, 1)
	go func() { errc <- HandshakeServer(srv) }()
	if err := HandshakeClient(cli); err != nil {
		t.Fatalf("client: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("server: %v", err)
	}
}

func TestHandshakeBadVersion(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	go func() {
		buf := make([]byte, 1+8+1528)
		buf[0] = 9 // wrong version
		cli.Write(buf)
	}()
	if err := HandshakeServer(srv); err == nil {
		t.Fatal("want error for wrong client version")
	}
}

func TestChunkRoundTripSmall(t *testing.T) {
	var buf bytes.Buffer
	cw := NewChunkWriter(&buf)
	msg := Message{TypeID: TypeCommandAMF0, StreamID: 1, Timestamp: 500, Payload: []byte("hello")}
	if err := cw.WriteMessage(3, msg); err != nil {
		t.Fatal(err)
	}
	cr := NewChunkReader(&buf)
	got, err := cr.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if got.TypeID != msg.TypeID || got.StreamID != 1 || got.Timestamp != 500 || !bytes.Equal(got.Payload, msg.Payload) {
		t.Errorf("got %+v", got)
	}
}

func TestChunkRoundTripLarge(t *testing.T) {
	// Payload spanning many default-size chunks.
	var buf bytes.Buffer
	cw := NewChunkWriter(&buf)
	payload := make([]byte, 10_000)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := cw.WriteMessage(7, Message{TypeID: TypeVideo, StreamID: 1, Timestamp: 40, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	cr := NewChunkReader(&buf)
	got, err := cr.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Error("payload corrupted across chunk boundaries")
	}
}

func TestChunkExtendedTimestamp(t *testing.T) {
	var buf bytes.Buffer
	cw := NewChunkWriter(&buf)
	ts := uint32(0x01000000) // exceeds 24 bits
	if err := cw.WriteMessage(7, Message{TypeID: TypeVideo, Timestamp: ts, Payload: make([]byte, 300)}); err != nil {
		t.Fatal(err)
	}
	cr := NewChunkReader(&buf)
	got, err := cr.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if got.Timestamp != ts {
		t.Errorf("timestamp = %#x, want %#x", got.Timestamp, ts)
	}
}

func TestChunkLargeCSID(t *testing.T) {
	for _, csid := range []uint32{2, 63, 64, 319, 320, 65599} {
		var buf bytes.Buffer
		cw := NewChunkWriter(&buf)
		if err := cw.WriteMessage(csid, Message{TypeID: TypeAudio, Payload: []byte{1}}); err != nil {
			t.Fatalf("csid %d: %v", csid, err)
		}
		cr := NewChunkReader(&buf)
		if _, err := cr.ReadMessage(); err != nil {
			t.Fatalf("csid %d read: %v", csid, err)
		}
	}
}

func TestChunkInvalidCSID(t *testing.T) {
	cw := NewChunkWriter(&bytes.Buffer{})
	if err := cw.WriteMessage(1, Message{}); err == nil {
		t.Error("csid 1 must be rejected")
	}
}

func TestChunkInterleavedStreams(t *testing.T) {
	// Audio chunks interleaved between video chunk continuations.
	var buf bytes.Buffer
	cw := NewChunkWriter(&buf)
	video := make([]byte, 200) // needs 2 chunks at size 128
	for i := range video {
		video[i] = byte(i)
	}
	audio := []byte{0xA, 0xB}
	// Write video header+first chunk manually via two writers is complex;
	// instead verify that two messages on different csids round trip.
	if err := cw.WriteMessage(7, Message{TypeID: TypeVideo, Payload: video}); err != nil {
		t.Fatal(err)
	}
	if err := cw.WriteMessage(6, Message{TypeID: TypeAudio, Payload: audio}); err != nil {
		t.Fatal(err)
	}
	cr := NewChunkReader(&buf)
	m1, err := cr.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := cr.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if m1.TypeID != TypeVideo || m2.TypeID != TypeAudio {
		t.Errorf("order/type wrong: %d %d", m1.TypeID, m2.TypeID)
	}
}

func TestSetChunkSizeApplied(t *testing.T) {
	var buf bytes.Buffer
	cw := NewChunkWriter(&buf)
	// Announce 4096 then send one 3000-byte message in a single chunk.
	if err := cw.WriteMessage(2, Message{TypeID: TypeSetChunkSize, Payload: uint32Payload(4096)}); err != nil {
		t.Fatal(err)
	}
	cw.SetChunkSize(4096)
	payload := make([]byte, 3000)
	if err := cw.WriteMessage(7, Message{TypeID: TypeVideo, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	cr := NewChunkReader(&buf)
	first, err := cr.ReadMessage()
	if err != nil || first.TypeID != TypeSetChunkSize {
		t.Fatalf("first = %+v err=%v", first, err)
	}
	second, err := cr.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Payload) != 3000 {
		t.Errorf("payload length %d", len(second.Payload))
	}
}

// echoHandler implements Handler for tests: publishers' media is fanned
// out to all players of the same stream name.
type echoHandler struct {
	mu      sync.Mutex
	players map[string][]*ServerConn
	media   map[string][]Message
}

func newEchoHandler() *echoHandler {
	return &echoHandler{players: map[string][]*ServerConn{}, media: map[string][]Message{}}
}

func (h *echoHandler) OnConnect(c *ServerConn, app string) error { return nil }
func (h *echoHandler) OnPlay(c *ServerConn, name string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.players[name] = append(h.players[name], c)
	// Replay buffered media so late joiners get everything (test determinism).
	for _, m := range h.media[name] {
		if m.TypeID == TypeVideo {
			//lint:ignore periscopelint/lockio test fan-out stays under mu so replay-then-live ordering is deterministic; loopback conns drain in their own read loops and cannot back-pressure into a deadlock
			c.SendVideo(m.Timestamp, m.Payload)
		} else {
			//lint:ignore periscopelint/lockio same as the video branch: ordering determinism in the test harness outweighs lock hold time
			c.SendAudio(m.Timestamp, m.Payload)
		}
	}
	return nil
}
func (h *echoHandler) OnPublish(c *ServerConn, name string) error { return nil }
func (h *echoHandler) OnMedia(c *ServerConn, msg Message) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.media[c.StreamName] = append(h.media[c.StreamName], msg)
	for _, p := range h.players[c.StreamName] {
		if msg.TypeID == TypeVideo {
			//lint:ignore periscopelint/lockio test fan-out stays under mu so a joining player never sees live media out of order with its replay; loopback conns drain independently
			p.SendVideo(msg.Timestamp, msg.Payload)
		} else {
			//lint:ignore periscopelint/lockio same as the video branch: the mutex is what serializes replay against live fan-out in this harness
			p.SendAudio(msg.Timestamp, msg.Payload)
		}
	}
}
func (h *echoHandler) OnClose(c *ServerConn) {}

func TestEndToEndPublishPlay(t *testing.T) {
	h := newEchoHandler()
	srv, err := ListenAndServe("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr().String()

	// Broadcaster publishes three video messages.
	pub, err := Dial(addr, "live")
	if err != nil {
		t.Fatalf("publisher dial: %v", err)
	}
	defer pub.Close()
	if err := pub.Publish("brdcst1"); err != nil {
		t.Fatal(err)
	}
	want := [][]byte{{1, 1, 1}, {2, 2}, {3, 3, 3, 3}}
	for i, p := range want {
		if err := pub.WriteVideo(uint32(i*33), p); err != nil {
			t.Fatal(err)
		}
	}

	// Give the server a moment to buffer the publisher's media.
	time.Sleep(100 * time.Millisecond)

	// Viewer plays and receives them.
	view, err := Dial(addr, "live")
	if err != nil {
		t.Fatalf("viewer dial: %v", err)
	}
	defer view.Close()
	if err := view.Play("brdcst1"); err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	view.nc.SetReadDeadline(time.Now().Add(3 * time.Second))
	for len(got) < 3 {
		msg, err := view.ReadMessage()
		if err != nil {
			t.Fatalf("viewer read: %v (got %d msgs)", err, len(got))
		}
		if msg.TypeID == TypeVideo {
			got = append(got, msg.Payload)
		}
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("media %d mismatch: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestCommandRoundTrip(t *testing.T) {
	payload, err := amf.Marshal("play", 0.0, nil, "stream1")
	if err != nil {
		t.Fatal(err)
	}
	cmd, err := ParseCommand(Message{TypeID: TypeCommandAMF0, Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Name != "play" || cmd.Transaction != 0 || cmd.Args[0] != "stream1" {
		t.Errorf("cmd = %+v", cmd)
	}
}

func TestParseCommandRejectsMediaMessage(t *testing.T) {
	if _, err := ParseCommand(Message{TypeID: TypeVideo}); err == nil {
		t.Error("want error for non-command message")
	}
}

func TestUserControlRoundTrip(t *testing.T) {
	p := MarshalUserControl(EventStreamBegin, 1)
	ev, err := ParseUserControl(p)
	if err != nil || ev.Event != EventStreamBegin || len(ev.Data) != 4 {
		t.Errorf("ev=%+v err=%v", ev, err)
	}
	if _, err := ParseUserControl([]byte{1}); err == nil {
		t.Error("want error for short payload")
	}
}
