package rtmp

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"
)

// roundTrip writes msgs on csid and reads them back, failing on any
// mismatch of type, stream id, timestamp or payload.
func roundTrip(t *testing.T, csid uint32, msgs []Message) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	cw := NewChunkWriter(&buf)
	for i, m := range msgs {
		if err := cw.WriteMessage(csid, m); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	wire := bytes.NewBuffer(append([]byte(nil), buf.Bytes()...))
	cr := NewChunkReader(wire)
	for i, want := range msgs {
		got, err := cr.ReadMessage()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got.TypeID != want.TypeID || got.StreamID != want.StreamID || got.Timestamp != want.Timestamp {
			t.Fatalf("message %d: got type=%d stream=%d ts=%d, want type=%d stream=%d ts=%d",
				i, got.TypeID, got.StreamID, got.Timestamp, want.TypeID, want.StreamID, want.Timestamp)
		}
		if !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("message %d: payload mismatch", i)
		}
	}
	return &buf
}

// naiveSize is the wire size if every message used a full type-0 header
// (the seed writer's behaviour): 12-byte header per message plus a 1-byte
// type-3 basic header per continuation chunk, plus extended timestamps.
func naiveSize(msgs []Message, chunkSize int) int {
	total := 0
	for _, m := range msgs {
		ext := 0
		if m.Timestamp >= extendedTimestampSentinel {
			ext = 4
		}
		chunks := (len(m.Payload) + chunkSize - 1) / chunkSize
		if chunks == 0 {
			chunks = 1
		}
		total += 12 + ext + len(m.Payload) + (chunks-1)*(1+ext)
	}
	return total
}

func TestCompressedHeadersSteadyStream(t *testing.T) {
	// A steady media stream: constant size, type and timestamp delta.
	// After the type-0 opener and one type-2 (delta change from 0), every
	// message should cost a single type-3 header byte.
	payload := make([]byte, 100)
	var msgs []Message
	for i := 0; i < 10; i++ {
		msgs = append(msgs, Message{TypeID: TypeVideo, StreamID: 1, Timestamp: uint32(i * 40), Payload: payload})
	}
	buf := roundTrip(t, 4, msgs)
	// type-0 (12) + type-2 (4) + 8 × type-3 (1) + payloads.
	want := 12 + 4 + 8*1 + 10*len(payload)
	if buf.Len() != want {
		t.Errorf("wire size = %d, want %d", buf.Len(), want)
	}
	if naive := naiveSize(msgs, DefaultChunkSize); buf.Len() >= naive {
		t.Errorf("compressed %d bytes !< all-type-0 %d bytes", buf.Len(), naive)
	}
}

func TestCompressedHeadersLengthChange(t *testing.T) {
	// A length change on the same stream downgrades to type 1, not type 0.
	msgs := []Message{
		{TypeID: TypeVideo, StreamID: 1, Timestamp: 0, Payload: make([]byte, 100)},
		{TypeID: TypeVideo, StreamID: 1, Timestamp: 40, Payload: make([]byte, 120)},
		{TypeID: TypeVideo, StreamID: 1, Timestamp: 80, Payload: make([]byte, 120)},
	}
	buf := roundTrip(t, 4, msgs)
	// type-0 (12) + type-1 (8) + type-3 (1) + payloads.
	want := 12 + 8 + 1 + 100 + 120 + 120
	if buf.Len() != want {
		t.Errorf("wire size = %d, want %d", buf.Len(), want)
	}
}

func TestCompressedHeadersTypeChange(t *testing.T) {
	// Audio interleaved on the SAME chunk stream forces type 1 headers.
	msgs := []Message{
		{TypeID: TypeVideo, StreamID: 1, Timestamp: 0, Payload: make([]byte, 50)},
		{TypeID: TypeAudio, StreamID: 1, Timestamp: 20, Payload: make([]byte, 50)},
	}
	buf := roundTrip(t, 4, msgs)
	if want := 12 + 8 + 100; buf.Len() != want {
		t.Errorf("wire size = %d, want %d", buf.Len(), want)
	}
}

func TestCompressedHeadersBackwardsTimestamp(t *testing.T) {
	// A timestamp jump backwards cannot be a delta: full type-0 again.
	msgs := []Message{
		{TypeID: TypeVideo, StreamID: 1, Timestamp: 5000, Payload: make([]byte, 10)},
		{TypeID: TypeVideo, StreamID: 1, Timestamp: 1000, Payload: make([]byte, 10)},
	}
	buf := roundTrip(t, 4, msgs)
	if want := 12 + 12 + 20; buf.Len() != want {
		t.Errorf("wire size = %d, want %d", buf.Len(), want)
	}
}

func TestCompressedHeadersStreamIDChange(t *testing.T) {
	// A message-stream id change requires a full type-0 header.
	msgs := []Message{
		{TypeID: TypeVideo, StreamID: 1, Timestamp: 0, Payload: make([]byte, 10)},
		{TypeID: TypeVideo, StreamID: 2, Timestamp: 40, Payload: make([]byte, 10)},
	}
	buf := roundTrip(t, 4, msgs)
	if want := 12 + 12 + 20; buf.Len() != want {
		t.Errorf("wire size = %d, want %d", buf.Len(), want)
	}
}

func TestCompressedHeadersExtendedDelta(t *testing.T) {
	// Deltas at and above the 24-bit sentinel use the extended timestamp
	// field in type-1/2 headers and in fresh type-3 messages.
	const big = uint32(extendedTimestampSentinel) + 5
	msgs := []Message{
		{TypeID: TypeVideo, StreamID: 1, Timestamp: 100, Payload: make([]byte, 30)},
		{TypeID: TypeVideo, StreamID: 1, Timestamp: 100 + big, Payload: make([]byte, 30)},
		{TypeID: TypeVideo, StreamID: 1, Timestamp: 100 + 2*big, Payload: make([]byte, 30)},
		// Back to a small delta: the extended field must disappear.
		{TypeID: TypeVideo, StreamID: 1, Timestamp: 100 + 2*big + 40, Payload: make([]byte, 30)},
	}
	buf := roundTrip(t, 4, msgs)
	// type-0 (12) + type-2+ext (4+4) + fresh type-3+ext (1+4) + type-2 (4).
	want := 12 + 8 + 5 + 4 + 4*30
	if buf.Len() != want {
		t.Errorf("wire size = %d, want %d", buf.Len(), want)
	}
}

func TestCompressedHeadersExtendedMultiChunk(t *testing.T) {
	// An extended-timestamp message spanning several chunks repeats the
	// 4-byte field after every continuation basic header.
	payload := make([]byte, 3*DefaultChunkSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	msgs := []Message{
		{TypeID: TypeVideo, StreamID: 1, Timestamp: 0x01000000, Payload: payload},
		{TypeID: TypeVideo, StreamID: 1, Timestamp: 0x02000000, Payload: payload},
	}
	buf := roundTrip(t, 4, msgs)
	// msg1: type-0+ext (16) + 2 continuations (1+4 each).
	// msg2: delta 0x01000000 ≥ sentinel: type-2+ext (8) + 2 continuations.
	want := 16 + 2*5 + 8 + 2*5 + 2*len(payload)
	if buf.Len() != want {
		t.Errorf("wire size = %d, want %d", buf.Len(), want)
	}
}

func TestCompressedHeadersInterleavedStreams(t *testing.T) {
	// Two chunk streams keep independent compression state.
	var buf bytes.Buffer
	cw := NewChunkWriter(&buf)
	payload := make([]byte, 64)
	for i := 0; i < 6; i++ {
		csid := uint32(4)
		typeID := uint8(TypeVideo)
		if i%2 == 1 {
			csid = 5
			typeID = TypeAudio
		}
		if err := cw.WriteMessage(csid, Message{TypeID: typeID, StreamID: 1, Timestamp: uint32(i / 2 * 40), Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	cr := NewChunkReader(&buf)
	for i := 0; i < 6; i++ {
		got, err := cr.ReadMessage()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		wantType := uint8(TypeVideo)
		if i%2 == 1 {
			wantType = TypeAudio
		}
		if got.TypeID != wantType || got.Timestamp != uint32(i/2*40) {
			t.Fatalf("message %d: type=%d ts=%d", i, got.TypeID, got.Timestamp)
		}
	}
}

func TestCompressedHeadersLargeChunkSize(t *testing.T) {
	// Direct-write path: payload segments above the staging threshold with
	// a negotiated 4096-byte chunk size.
	var buf bytes.Buffer
	cw := NewChunkWriter(&buf)
	cw.SetChunkSize(4096)
	payload := make([]byte, 10000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var msgs []Message
	for i := 0; i < 3; i++ {
		msgs = append(msgs, Message{TypeID: TypeVideo, StreamID: 1, Timestamp: uint32(i * 40), Payload: payload})
	}
	for i, m := range msgs {
		if err := cw.WriteMessage(7, m); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	cr := NewChunkReader(&buf)
	cr.SetChunkSize(4096)
	for i, want := range msgs {
		got, err := cr.ReadMessage()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got.Timestamp != want.Timestamp || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("message %d corrupted", i)
		}
	}
}

func TestShortPingRequestDoesNotPanic(t *testing.T) {
	// A ping request with no timestamp data must be answered (clamped),
	// not crash the read loop with a slice out of range.
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	ca, cb := NewConn(a), NewConn(b)
	done := make(chan error, 1)
	go func() {
		// Reader side: handles the ping internally, then sees the video.
		msg, err := cb.ReadMessage()
		if err == nil && msg.TypeID != TypeVideo {
			err = fmt.Errorf("got type %d, want video", msg.TypeID)
		}
		done <- err
	}()
	if err := ca.WriteMessage(Message{TypeID: TypeUserControl, Payload: MarshalUserControl(EventPingRequest)}); err != nil {
		t.Fatal(err)
	}
	// The reader writes the pong while we write the video; drain it.
	go ca.ReadMessage()
	if err := ca.WriteMessage(Message{TypeID: TypeVideo, Payload: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader did not complete")
	}
}
