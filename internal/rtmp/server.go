package rtmp

import (
	"errors"
	"log"
	"net"
	"sync"

	"periscope/internal/amf"
)

// Handler receives server-side RTMP events. Callbacks run on the
// connection's read goroutine; OnPlay typically starts a pusher goroutine
// that calls ServerConn.SendVideo/SendAudio.
type Handler interface {
	// OnConnect is called after the connect command; returning an error
	// rejects the session.
	OnConnect(c *ServerConn, app string) error
	// OnPlay is called when a viewer requests a stream.
	OnPlay(c *ServerConn, streamName string) error
	// OnPublish is called when a broadcaster starts publishing.
	OnPublish(c *ServerConn, streamName string) error
	// OnMedia delivers audio/video/data messages from a publisher.
	OnMedia(c *ServerConn, msg Message)
	// OnClose is called when the connection terminates.
	OnClose(c *ServerConn)
}

// Server accepts RTMP connections, mirroring the Amazon EC2 "vidman"
// machines that terminate Periscope RTMP sessions.
type Server struct {
	Handler Handler
	// Name optionally identifies the server instance (e.g. the simulated
	// region), surfaced to handlers via ServerConn.Server.
	Name string

	mu sync.Mutex
	ln net.Listener
}

// Serve accepts connections on ln until it is closed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.ln == nil {
		s.ln = ln
	}
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.serveConn(nc)
	}
}

// Close stops the listener.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

// Addr returns the listening address.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

func (s *Server) serveConn(nc net.Conn) {
	defer nc.Close()
	if err := HandshakeServer(nc); err != nil {
		return
	}
	sc := &ServerConn{Conn: NewConn(nc), Server: s}
	defer func() {
		if s.Handler != nil {
			s.Handler.OnClose(sc)
		}
	}()
	if err := sc.loop(); err != nil {
		return
	}
}

// ServerConn is the server side of one RTMP session.
type ServerConn struct {
	*Conn
	// Server is the owning server (nil for bare connections).
	Server *Server
	// App is the application name from connect.
	App string
	// Playing and Publishing record the negotiated role.
	Playing    bool
	Publishing bool
	// StreamName is the stream negotiated via play/publish.
	StreamName string

	streamID uint32
}

// loop runs the command dispatch until the connection drops.
func (sc *ServerConn) loop() error {
	for {
		msg, err := sc.ReadMessage()
		if err != nil {
			return err
		}
		switch msg.TypeID {
		case TypeCommandAMF0:
			cmd, err := ParseCommand(msg)
			// AMF decoding copies every value out of the payload, so the
			// buffer can go back to the chunk-layer pool immediately.
			RecycleMessagePayload(msg.Payload)
			if err != nil {
				continue
			}
			if err := sc.handleCommand(cmd); err != nil {
				return err
			}
		case TypeAudio, TypeVideo, TypeDataAMF0:
			if sc.Server != nil && sc.Server.Handler != nil {
				sc.Server.Handler.OnMedia(sc, msg)
			}
		}
	}
}

func (sc *ServerConn) handleCommand(cmd Command) error {
	h := handlerOf(sc)
	switch cmd.Name {
	case "connect":
		if app, ok := cmd.Object["app"].(string); ok {
			sc.App = app
		}
		if h != nil {
			if err := h.OnConnect(sc, sc.App); err != nil {
				sc.WriteCommand(0, "_error", cmd.Transaction, nil, amf.Object{
					"level": "error", "code": "NetConnection.Connect.Rejected",
					"description": err.Error(),
				})
				return err
			}
		}
		if err := sc.WriteMessage(Message{TypeID: TypeWindowAckSize, Payload: uint32Payload(DefaultWindowAckSize)}); err != nil {
			return err
		}
		// Set Peer Bandwidth: window, dynamic limit type (2).
		pb := append(uint32Payload(DefaultWindowAckSize), 2)
		if err := sc.WriteMessage(Message{TypeID: TypeSetPeerBandwidth, Payload: pb}); err != nil {
			return err
		}
		if err := sc.SetChunkSize(preferredChunkSize); err != nil {
			return err
		}
		return sc.WriteCommand(0, "_result", cmd.Transaction,
			amf.Object{"fmsVer": "FMS/3,5,7,7009", "capabilities": 31.0},
			amf.Object{"level": "status", "code": "NetConnection.Connect.Success",
				"description": "Connection succeeded."})
	case "createStream":
		sc.streamID = 1
		return sc.WriteCommand(0, "_result", cmd.Transaction, nil, float64(sc.streamID))
	case "play":
		if len(cmd.Args) < 1 {
			return errors.New("rtmp: play without stream name")
		}
		name, _ := cmd.Args[0].(string)
		sc.StreamName = name
		sc.Playing = true
		if err := sc.WriteMessage(Message{TypeID: TypeUserControl,
			Payload: MarshalUserControl(EventStreamBegin, sc.streamID)}); err != nil {
			return err
		}
		if err := sc.WriteCommand(sc.streamID, "onStatus", 0, nil, amf.Object{
			"level": "status", "code": "NetStream.Play.Start",
			"description": "Started playing " + name + ".",
		}); err != nil {
			return err
		}
		if h != nil {
			return h.OnPlay(sc, name)
		}
		return nil
	case "publish":
		if len(cmd.Args) < 1 {
			return errors.New("rtmp: publish without stream name")
		}
		name, _ := cmd.Args[0].(string)
		sc.StreamName = name
		sc.Publishing = true
		if err := sc.WriteCommand(sc.streamID, "onStatus", 0, nil, amf.Object{
			"level": "status", "code": "NetStream.Publish.Start",
			"description": "Publishing " + name + ".",
		}); err != nil {
			return err
		}
		if h != nil {
			return h.OnPublish(sc, name)
		}
		return nil
	case "deleteStream", "closeStream", "FCUnpublish":
		return nil
	default:
		// Unknown commands are ignored, as real servers do.
		return nil
	}
}

func handlerOf(sc *ServerConn) Handler {
	if sc.Server == nil {
		return nil
	}
	return sc.Server.Handler
}

// SendVideo pushes a video message to the viewer.
func (sc *ServerConn) SendVideo(timestamp uint32, data []byte) error {
	return sc.WriteMessage(Message{TypeID: TypeVideo, StreamID: sc.streamID, Timestamp: timestamp, Payload: data})
}

// SendAudio pushes an audio message to the viewer.
func (sc *ServerConn) SendAudio(timestamp uint32, data []byte) error {
	return sc.WriteMessage(Message{TypeID: TypeAudio, StreamID: sc.streamID, Timestamp: timestamp, Payload: data})
}

// SendEOF signals end of stream to the viewer.
func (sc *ServerConn) SendEOF() error {
	if err := sc.WriteMessage(Message{TypeID: TypeUserControl,
		Payload: MarshalUserControl(EventStreamEOF, sc.streamID)}); err != nil {
		return err
	}
	return sc.WriteCommand(sc.streamID, "onStatus", 0, nil, amf.Object{
		"level": "status", "code": "NetStream.Play.Stop", "description": "Stopped.",
	})
}

// ListenAndServe is a convenience helper used by the service simulator.
func ListenAndServe(addr string, h Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{Handler: h}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go func() {
		if err := s.Serve(ln); err != nil {
			log.Printf("rtmp server: %v", err)
		}
	}()
	return s, nil
}
