package rtmp

import (
	"crypto/tls"
	"crypto/x509"
	"testing"
	"time"
)

func TestRTMPSEndToEnd(t *testing.T) {
	cert, err := GenerateSelfSigned("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	h := newEchoHandler()
	srv, err := ListenAndServeTLS("127.0.0.1:0", h, cert)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	leaf, err := x509.ParseCertificate(cert.Certificate[0])
	if err != nil {
		t.Fatal(err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(leaf)
	tlsCfg := &tls.Config{RootCAs: pool, ServerName: "127.0.0.1"}

	pub, err := DialTLS(srv.Addr().String(), "private", tlsCfg)
	if err != nil {
		t.Fatalf("publisher: %v", err)
	}
	defer pub.Close()
	if err := pub.Publish("secret1"); err != nil {
		t.Fatal(err)
	}
	if err := pub.WriteVideo(0, []byte{0xDE, 0xAD}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)

	view, err := DialTLS(srv.Addr().String(), "private", tlsCfg)
	if err != nil {
		t.Fatalf("viewer: %v", err)
	}
	defer view.Close()
	if err := view.Play("secret1"); err != nil {
		t.Fatal(err)
	}
	view.nc.SetReadDeadline(time.Now().Add(3 * time.Second))
	for {
		msg, err := view.ReadMessage()
		if err != nil {
			t.Fatalf("viewer read: %v", err)
		}
		if msg.TypeID == TypeVideo {
			if msg.Payload[0] != 0xDE {
				t.Error("payload corrupted over TLS")
			}
			return
		}
	}
}

func TestDialTLSRejectsUnknownCert(t *testing.T) {
	cert, err := GenerateSelfSigned("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ListenAndServeTLS("127.0.0.1:0", newEchoHandler(), cert)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Default verification must refuse the self-signed cert.
	if _, err := DialTLS(srv.Addr().String(), "private", nil); err == nil {
		t.Error("expected certificate verification failure")
	}
}
