package rtmp

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// DefaultChunkSize is the protocol default before any Set Chunk Size.
const DefaultChunkSize = 128

// extendedTimestampSentinel marks the presence of the 4-byte extended
// timestamp field.
const extendedTimestampSentinel = 0xFFFFFF

// payloadPool recycles message payload buffers. ReadMessage draws payloads
// from the pool; callers that fully consume a message before reading the
// next one may hand the buffer back via RecycleMessagePayload. Callers
// that retain the payload (relays, caches) simply never recycle it.
var payloadPool sync.Pool

func getPayloadBuf(n uint32) []byte {
	if n == 0 {
		return nil
	}
	if v := payloadPool.Get(); v != nil {
		b := *v.(*[]byte)
		if uint32(cap(b)) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

// RecycleMessagePayload returns a payload buffer obtained from ReadMessage
// to the pool. The caller must not touch the slice afterwards.
func RecycleMessagePayload(p []byte) {
	if cap(p) == 0 {
		return
	}
	p = p[:0]
	payloadPool.Put(&p)
}

// chunkStreamState tracks the decoder state for one chunk stream ID.
type chunkStreamState struct {
	timestamp    uint32
	tsDelta      uint32
	length       uint32
	typeID       uint8
	streamID     uint32
	extendedTS   bool
	assembled    []byte
	bytesPending uint32
}

// readerBufSize is the inline read-buffer size: one bulk Read from the
// transport serves the chunk headers and small payloads of many chunks;
// larger payload stretches are read straight into the message buffer.
const readerBufSize = 1 << 10

// maxConsecutiveEmptyReads mirrors bufio's guard against a broken Reader
// returning (0, nil) forever.
const maxConsecutiveEmptyReads = 100

// ChunkReader reassembles messages from the chunk stream layer. It
// buffers the transport internally (a bulk Read serves many chunks) and
// reassembles each message into a single pre-sized, pooled buffer.
type ChunkReader struct {
	r         io.Reader
	chunkSize uint32
	// first holds the state of the first chunk stream seen inline; media
	// connections are dominated by one stream, so the common path touches
	// no map at all.
	first     chunkStreamState
	firstCSID uint32
	firstSet  bool
	streams   map[uint32]*chunkStreamState
	// BytesRead counts raw bytes for acknowledgement accounting.
	BytesRead uint64
	rpos      int
	rlen      int
	buf       [readerBufSize]byte
	scratch   [16]byte
}

// NewChunkReader wraps r with protocol-default chunk size.
func NewChunkReader(r io.Reader) *ChunkReader {
	return &ChunkReader{r: r, chunkSize: DefaultChunkSize}
}

// SetChunkSize updates the maximum chunk payload length (applied when the
// peer sends a Set Chunk Size message).
func (cr *ChunkReader) SetChunkSize(n uint32) { cr.chunkSize = n }

// refill issues one bulk Read into the internal buffer. It only runs when
// the buffer is empty and at least one more byte is needed, so it never
// blocks for data the decoder does not require.
func (cr *ChunkReader) refill() error {
	for i := 0; i < maxConsecutiveEmptyReads; i++ {
		n, err := cr.r.Read(cr.buf[:])
		if n > 0 {
			cr.rpos, cr.rlen = 0, n
			cr.BytesRead += uint64(n)
			return nil
		}
		if err != nil {
			return err
		}
	}
	return io.ErrNoProgress
}

func (cr *ChunkReader) readFull(dst []byte) error {
	for len(dst) > 0 {
		if cr.rpos == cr.rlen {
			// A remainder at least as large as the buffer skips it: read
			// straight into the destination, no double copy.
			if len(dst) >= len(cr.buf) {
				n, err := io.ReadFull(cr.r, dst)
				cr.BytesRead += uint64(n)
				return err
			}
			if err := cr.refill(); err != nil {
				return err
			}
		}
		n := copy(dst, cr.buf[cr.rpos:cr.rlen])
		cr.rpos += n
		dst = dst[n:]
	}
	return nil
}

// state returns the decoder state for csid, allocating lazily.
func (cr *ChunkReader) state(csid uint32) *chunkStreamState {
	if cr.firstSet {
		if cr.firstCSID == csid {
			return &cr.first
		}
	} else {
		cr.firstSet = true
		cr.firstCSID = csid
		return &cr.first
	}
	if cr.streams == nil {
		cr.streams = make(map[uint32]*chunkStreamState, 4)
	}
	st, ok := cr.streams[csid]
	if !ok {
		st = &chunkStreamState{}
		cr.streams[csid] = st
	}
	return st
}

// take returns a view of the next n buffered bytes when they are already
// contiguous in the internal buffer (the hot path — no copy), falling
// back to assembling them in the scratch array.
func (cr *ChunkReader) take(n int) ([]byte, error) {
	if cr.rlen-cr.rpos >= n {
		b := cr.buf[cr.rpos : cr.rpos+n]
		cr.rpos += n
		return b, nil
	}
	if err := cr.readFull(cr.scratch[:n]); err != nil {
		return nil, err
	}
	return cr.scratch[:n], nil
}

// ReadMessage returns the next complete message, transparently handling
// chunk interleaving. Set Chunk Size messages are applied AND returned, so
// the connection layer can account for them.
func (cr *ChunkReader) ReadMessage() (Message, error) {
	for {
		st, complete, err := cr.readChunk()
		if err != nil {
			return Message{}, err
		}
		if !complete {
			continue
		}
		msg := Message{
			TypeID:    st.typeID,
			StreamID:  st.streamID,
			Timestamp: st.timestamp,
			Payload:   st.assembled,
		}
		st.assembled = nil
		if msg.TypeID == TypeSetChunkSize {
			if v, err := parseUint32Payload(msg.Payload); err == nil && v > 0 {
				cr.chunkSize = v & 0x7FFFFFFF
			}
		}
		return msg, nil
	}
}

func (cr *ChunkReader) readChunk() (*chunkStreamState, bool, error) {
	b0, err := cr.take(1)
	if err != nil {
		return nil, false, err
	}
	format := b0[0] >> 6
	csid := uint32(b0[0] & 0x3F)
	switch csid {
	case 0:
		b, err := cr.take(1)
		if err != nil {
			return nil, false, err
		}
		csid = uint32(b[0]) + 64
	case 1:
		b, err := cr.take(2)
		if err != nil {
			return nil, false, err
		}
		csid = uint32(binary.LittleEndian.Uint16(b)) + 64
	}
	st := cr.state(csid)

	switch format {
	case 0:
		h, err := cr.take(11)
		if err != nil {
			return nil, false, err
		}
		ts := uint32(h[0])<<16 | uint32(h[1])<<8 | uint32(h[2])
		st.length = uint32(h[3])<<16 | uint32(h[4])<<8 | uint32(h[5])
		st.typeID = h[6]
		st.streamID = binary.LittleEndian.Uint32(h[7:11])
		st.extendedTS = ts == extendedTimestampSentinel
		if st.extendedTS {
			e, err := cr.take(4)
			if err != nil {
				return nil, false, err
			}
			ts = binary.BigEndian.Uint32(e)
		}
		st.timestamp = ts
		st.tsDelta = 0
	case 1:
		h, err := cr.take(7)
		if err != nil {
			return nil, false, err
		}
		delta := uint32(h[0])<<16 | uint32(h[1])<<8 | uint32(h[2])
		st.length = uint32(h[3])<<16 | uint32(h[4])<<8 | uint32(h[5])
		st.typeID = h[6]
		st.extendedTS = delta == extendedTimestampSentinel
		if st.extendedTS {
			e, err := cr.take(4)
			if err != nil {
				return nil, false, err
			}
			delta = binary.BigEndian.Uint32(e)
		}
		st.tsDelta = delta
		st.timestamp += delta
	case 2:
		h, err := cr.take(3)
		if err != nil {
			return nil, false, err
		}
		delta := uint32(h[0])<<16 | uint32(h[1])<<8 | uint32(h[2])
		st.extendedTS = delta == extendedTimestampSentinel
		if st.extendedTS {
			e, err := cr.take(4)
			if err != nil {
				return nil, false, err
			}
			delta = binary.BigEndian.Uint32(e)
		}
		st.tsDelta = delta
		st.timestamp += delta
	case 3:
		// Continuation chunks repeat the extended timestamp field when the
		// message header used one; fresh type-3 messages reuse the stored
		// delta.
		if st.extendedTS {
			e, err := cr.take(4)
			if err != nil {
				return nil, false, err
			}
			if st.bytesPending == 0 {
				st.tsDelta = binary.BigEndian.Uint32(e)
			}
		}
		if st.bytesPending == 0 {
			st.timestamp += st.tsDelta
		}
	}

	if st.bytesPending == 0 {
		// One pre-sized buffer per message: each chunk reads straight into
		// its slot, no per-chunk allocation or append copy.
		st.assembled = getPayloadBuf(st.length)
		st.bytesPending = st.length
	}
	n := st.bytesPending
	if n > cr.chunkSize {
		n = cr.chunkSize
	}
	off := st.length - st.bytesPending
	if n > 0 {
		if err := cr.readFull(st.assembled[off : off+n]); err != nil {
			return nil, false, err
		}
	}
	st.bytesPending -= n

	// Greedy continuation: while the next buffered byte is a type-3 basic
	// header for this chunk stream and a whole chunk is already buffered,
	// consume it inline instead of re-entering the per-chunk machinery.
	// (Chunk boundaries are deterministic, so peeking one byte suffices.)
	if csid < 64 && !st.extendedTS {
		cont := byte(3)<<6 | byte(csid)
		for st.bytesPending > 0 && cr.rpos < cr.rlen && cr.buf[cr.rpos] == cont {
			n := st.bytesPending
			if n > cr.chunkSize {
				n = cr.chunkSize
			}
			if uint32(cr.rlen-cr.rpos-1) < n {
				break // chunk not fully buffered: general path
			}
			cr.rpos++
			off := st.length - st.bytesPending
			copy(st.assembled[off:off+n], cr.buf[cr.rpos:cr.rpos+int(n)])
			cr.rpos += int(n)
			st.bytesPending -= n
		}
	}
	return st, st.bytesPending == 0, nil
}

// writerStreamState is the last header emitted on one outgoing chunk
// stream, the reference point for type-1/2/3 header compression.
type writerStreamState struct {
	timestamp uint32
	tsDelta   uint32
	length    uint32
	typeID    uint8
	streamID  uint32
	extended  bool // last header carried an extended timestamp field
	valid     bool
}

// directWriteThreshold is the payload-segment size above which the writer
// bypasses the staging buffer and writes the caller's slice directly,
// avoiding a copy.
const directWriteThreshold = 256

// stagedSize is the inline staging-buffer size.
const stagedSize = 1 << 10

// ChunkWriter splits messages into chunks, compressing message headers
// against per-chunk-stream delta state: a repeat message on the same
// stream costs a 1-byte type-3 header instead of 12 bytes. Chunk headers
// and small payload segments are staged and written out in one Write per
// message, so a multi-chunk message does not cost a Write per chunk.
type ChunkWriter struct {
	w         io.Writer
	chunkSize uint32
	// BytesWritten counts raw bytes for window accounting.
	BytesWritten uint64
	first        writerStreamState
	firstCSID    uint32
	firstSet     bool
	last         map[uint32]*writerStreamState
	stagedLen    int
	staged       [stagedSize]byte
	hdr          [18]byte // basic(≤3) + message header(≤11) + extended ts(4)
}

// NewChunkWriter wraps w with protocol-default chunk size.
func NewChunkWriter(w io.Writer) *ChunkWriter {
	return &ChunkWriter{w: w, chunkSize: DefaultChunkSize}
}

// SetChunkSize updates the outgoing chunk payload size. The caller must
// separately send the Set Chunk Size control message first.
func (cw *ChunkWriter) SetChunkSize(n uint32) { cw.chunkSize = n }

func (cw *ChunkWriter) write(b []byte) error {
	n, err := cw.w.Write(b)
	cw.BytesWritten += uint64(n)
	return err
}

func (cw *ChunkWriter) stage(b []byte) error {
	for len(b) > 0 {
		if cw.stagedLen == len(cw.staged) {
			if err := cw.flushStaged(); err != nil {
				return err
			}
		}
		n := copy(cw.staged[cw.stagedLen:], b)
		cw.stagedLen += n
		b = b[n:]
	}
	return nil
}

func (cw *ChunkWriter) flushStaged() error {
	if cw.stagedLen == 0 {
		return nil
	}
	err := cw.write(cw.staged[:cw.stagedLen])
	cw.stagedLen = 0
	return err
}

func (cw *ChunkWriter) state(csid uint32) *writerStreamState {
	if cw.firstSet {
		if cw.firstCSID == csid {
			return &cw.first
		}
	} else {
		cw.firstSet = true
		cw.firstCSID = csid
		return &cw.first
	}
	if cw.last == nil {
		cw.last = make(map[uint32]*writerStreamState, 4)
	}
	st, ok := cw.last[csid]
	if !ok {
		st = &writerStreamState{}
		cw.last[csid] = st
	}
	return st
}

// WriteMessage emits msg on the given chunk stream id using the most
// compact header format the previous message on that stream permits:
// type 0 on the first message, a stream-id change or a timestamp going
// backwards; type 1 when length or type changed; type 2 when only the
// timestamp delta changed; type 3 when everything repeats.
func (cw *ChunkWriter) WriteMessage(csid uint32, msg Message) error {
	if csid < 2 || csid > 65599 {
		return fmt.Errorf("rtmp: invalid chunk stream id %d", csid)
	}
	st := cw.state(csid)
	l := uint32(len(msg.Payload))
	format := byte(0)
	var delta uint32
	if st.valid && msg.StreamID == st.streamID && msg.Timestamp >= st.timestamp {
		delta = msg.Timestamp - st.timestamp
		switch {
		case l != st.length || msg.TypeID != st.typeID:
			format = 1
		case delta != st.tsDelta:
			format = 2
		default:
			format = 3
		}
	}

	hdr := appendBasicHeader(cw.hdr[:0], format, csid)
	var extended bool
	switch format {
	case 0:
		ts := msg.Timestamp
		extended = ts >= extendedTimestampSentinel
		h24 := ts
		if extended {
			h24 = extendedTimestampSentinel
		}
		hdr = append(hdr, byte(h24>>16), byte(h24>>8), byte(h24))
		hdr = append(hdr, byte(l>>16), byte(l>>8), byte(l))
		hdr = append(hdr, msg.TypeID)
		hdr = binary.LittleEndian.AppendUint32(hdr, msg.StreamID)
		if extended {
			hdr = binary.BigEndian.AppendUint32(hdr, ts)
		}
		st.tsDelta = 0
	case 1:
		extended = delta >= extendedTimestampSentinel
		h24 := delta
		if extended {
			h24 = extendedTimestampSentinel
		}
		hdr = append(hdr, byte(h24>>16), byte(h24>>8), byte(h24))
		hdr = append(hdr, byte(l>>16), byte(l>>8), byte(l))
		hdr = append(hdr, msg.TypeID)
		if extended {
			hdr = binary.BigEndian.AppendUint32(hdr, delta)
		}
		st.tsDelta = delta
	case 2:
		extended = delta >= extendedTimestampSentinel
		h24 := delta
		if extended {
			h24 = extendedTimestampSentinel
		}
		hdr = append(hdr, byte(h24>>16), byte(h24>>8), byte(h24))
		if extended {
			hdr = binary.BigEndian.AppendUint32(hdr, delta)
		}
		st.tsDelta = delta
	case 3:
		// A fresh type-3 message inherits the previous delta; when the
		// previous header was extended the reader expects the 4-byte field
		// again.
		extended = st.extended
		if extended {
			hdr = binary.BigEndian.AppendUint32(hdr, delta)
		}
	}
	st.timestamp = msg.Timestamp
	st.length = l
	st.typeID = msg.TypeID
	st.streamID = msg.StreamID
	st.extended = extended
	st.valid = true

	if err := cw.stage(hdr); err != nil {
		return err
	}
	extTS := msg.Timestamp
	if format != 0 {
		extTS = delta
	}
	payload := msg.Payload
	if !extended && csid < 64 {
		// Fast path: 1-byte continuation headers are a constant, so chunks
		// can be packed into the staging buffer in one tight loop.
		cont := byte(3)<<6 | byte(csid)
		for {
			n := uint32(len(payload))
			if n > cw.chunkSize {
				n = cw.chunkSize
			}
			if n >= directWriteThreshold {
				if err := cw.flushStaged(); err != nil {
					return err
				}
				if err := cw.write(payload[:n]); err != nil {
					return err
				}
			} else {
				if len(cw.staged)-cw.stagedLen < int(n) {
					if err := cw.flushStaged(); err != nil {
						return err
					}
				}
				copy(cw.staged[cw.stagedLen:], payload[:n])
				cw.stagedLen += int(n)
			}
			payload = payload[n:]
			if len(payload) == 0 {
				return cw.flushStaged()
			}
			if cw.stagedLen == len(cw.staged) {
				if err := cw.flushStaged(); err != nil {
					return err
				}
			}
			cw.staged[cw.stagedLen] = cont
			cw.stagedLen++
		}
	}
	for {
		n := uint32(len(payload))
		if n > cw.chunkSize {
			n = cw.chunkSize
		}
		if n >= directWriteThreshold {
			if err := cw.flushStaged(); err != nil {
				return err
			}
			if err := cw.write(payload[:n]); err != nil {
				return err
			}
		} else if err := cw.stage(payload[:n]); err != nil {
			return err
		}
		payload = payload[n:]
		if len(payload) == 0 {
			return cw.flushStaged()
		}
		cont := appendBasicHeader(cw.hdr[:0], 3, csid)
		if extended {
			cont = binary.BigEndian.AppendUint32(cont, extTS)
		}
		if err := cw.stage(cont); err != nil {
			return err
		}
	}
}

func appendBasicHeader(b []byte, format byte, csid uint32) []byte {
	switch {
	case csid < 64:
		return append(b, format<<6|byte(csid))
	case csid < 320:
		return append(b, format<<6, byte(csid-64))
	default:
		b = append(b, format<<6|1)
		return binary.LittleEndian.AppendUint16(b, uint16(csid-64))
	}
}
