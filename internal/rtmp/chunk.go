package rtmp

import (
	"encoding/binary"
	"fmt"
	"io"
)

// DefaultChunkSize is the protocol default before any Set Chunk Size.
const DefaultChunkSize = 128

// extendedTimestampSentinel marks the presence of the 4-byte extended
// timestamp field.
const extendedTimestampSentinel = 0xFFFFFF

// chunkStreamState tracks the decoder state for one chunk stream ID.
type chunkStreamState struct {
	timestamp    uint32
	tsDelta      uint32
	length       uint32
	typeID       uint8
	streamID     uint32
	extendedTS   bool
	assembled    []byte
	bytesPending uint32
}

// ChunkReader reassembles messages from the chunk stream layer.
type ChunkReader struct {
	r         io.Reader
	chunkSize uint32
	streams   map[uint32]*chunkStreamState
	// BytesRead counts raw bytes for acknowledgement accounting.
	BytesRead uint64
}

// NewChunkReader wraps r with protocol-default chunk size.
func NewChunkReader(r io.Reader) *ChunkReader {
	return &ChunkReader{r: r, chunkSize: DefaultChunkSize, streams: map[uint32]*chunkStreamState{}}
}

// SetChunkSize updates the maximum chunk payload length (applied when the
// peer sends a Set Chunk Size message).
func (cr *ChunkReader) SetChunkSize(n uint32) { cr.chunkSize = n }

func (cr *ChunkReader) readFull(b []byte) error {
	n, err := io.ReadFull(cr.r, b)
	cr.BytesRead += uint64(n)
	return err
}

// ReadMessage returns the next complete message, transparently handling
// chunk interleaving. Set Chunk Size messages are applied AND returned, so
// the connection layer can account for them.
func (cr *ChunkReader) ReadMessage() (Message, error) {
	for {
		msg, complete, err := cr.readChunk()
		if err != nil {
			return Message{}, err
		}
		if !complete {
			continue
		}
		if msg.TypeID == TypeSetChunkSize {
			if v, err := parseUint32Payload(msg.Payload); err == nil && v > 0 {
				cr.chunkSize = v & 0x7FFFFFFF
			}
		}
		return msg, nil
	}
}

func (cr *ChunkReader) readChunk() (Message, bool, error) {
	var b0 [1]byte
	if err := cr.readFull(b0[:]); err != nil {
		return Message{}, false, err
	}
	format := b0[0] >> 6
	csid := uint32(b0[0] & 0x3F)
	switch csid {
	case 0:
		var b [1]byte
		if err := cr.readFull(b[:]); err != nil {
			return Message{}, false, err
		}
		csid = uint32(b[0]) + 64
	case 1:
		var b [2]byte
		if err := cr.readFull(b[:]); err != nil {
			return Message{}, false, err
		}
		csid = uint32(binary.LittleEndian.Uint16(b[:])) + 64
	}
	st, ok := cr.streams[csid]
	if !ok {
		st = &chunkStreamState{}
		cr.streams[csid] = st
	}

	switch format {
	case 0:
		var h [11]byte
		if err := cr.readFull(h[:]); err != nil {
			return Message{}, false, err
		}
		ts := uint32(h[0])<<16 | uint32(h[1])<<8 | uint32(h[2])
		st.length = uint32(h[3])<<16 | uint32(h[4])<<8 | uint32(h[5])
		st.typeID = h[6]
		st.streamID = binary.LittleEndian.Uint32(h[7:11])
		st.extendedTS = ts == extendedTimestampSentinel
		if st.extendedTS {
			var e [4]byte
			if err := cr.readFull(e[:]); err != nil {
				return Message{}, false, err
			}
			ts = binary.BigEndian.Uint32(e[:])
		}
		st.timestamp = ts
		st.tsDelta = 0
	case 1:
		var h [7]byte
		if err := cr.readFull(h[:]); err != nil {
			return Message{}, false, err
		}
		delta := uint32(h[0])<<16 | uint32(h[1])<<8 | uint32(h[2])
		st.length = uint32(h[3])<<16 | uint32(h[4])<<8 | uint32(h[5])
		st.typeID = h[6]
		st.extendedTS = delta == extendedTimestampSentinel
		if st.extendedTS {
			var e [4]byte
			if err := cr.readFull(e[:]); err != nil {
				return Message{}, false, err
			}
			delta = binary.BigEndian.Uint32(e[:])
		}
		st.tsDelta = delta
		st.timestamp += delta
	case 2:
		var h [3]byte
		if err := cr.readFull(h[:]); err != nil {
			return Message{}, false, err
		}
		delta := uint32(h[0])<<16 | uint32(h[1])<<8 | uint32(h[2])
		st.extendedTS = delta == extendedTimestampSentinel
		if st.extendedTS {
			var e [4]byte
			if err := cr.readFull(e[:]); err != nil {
				return Message{}, false, err
			}
			delta = binary.BigEndian.Uint32(e[:])
		}
		st.tsDelta = delta
		st.timestamp += delta
	case 3:
		// Continuation chunks repeat the extended timestamp field when the
		// message header used one; fresh type-3 messages reuse the stored
		// delta.
		if st.extendedTS {
			var e [4]byte
			if err := cr.readFull(e[:]); err != nil {
				return Message{}, false, err
			}
			if st.bytesPending == 0 {
				st.tsDelta = binary.BigEndian.Uint32(e[:])
			}
		}
		if st.bytesPending == 0 {
			st.timestamp += st.tsDelta
		}
	}

	if st.bytesPending == 0 {
		st.assembled = make([]byte, 0, st.length)
		st.bytesPending = st.length
	}
	n := st.bytesPending
	if n > cr.chunkSize {
		n = cr.chunkSize
	}
	buf := make([]byte, n)
	if err := cr.readFull(buf); err != nil {
		return Message{}, false, err
	}
	st.assembled = append(st.assembled, buf...)
	st.bytesPending -= n
	if st.bytesPending > 0 {
		return Message{}, false, nil
	}
	msg := Message{
		TypeID:    st.typeID,
		StreamID:  st.streamID,
		Timestamp: st.timestamp,
		Payload:   st.assembled,
	}
	st.assembled = nil
	return msg, true, nil
}

// ChunkWriter splits messages into chunks.
type ChunkWriter struct {
	w         io.Writer
	chunkSize uint32
	// BytesWritten counts raw bytes for window accounting.
	BytesWritten uint64
	last         map[uint32]*chunkStreamState
}

// NewChunkWriter wraps w with protocol-default chunk size.
func NewChunkWriter(w io.Writer) *ChunkWriter {
	return &ChunkWriter{w: w, chunkSize: DefaultChunkSize, last: map[uint32]*chunkStreamState{}}
}

// SetChunkSize updates the outgoing chunk payload size. The caller must
// separately send the Set Chunk Size control message first.
func (cw *ChunkWriter) SetChunkSize(n uint32) { cw.chunkSize = n }

func (cw *ChunkWriter) write(b []byte) error {
	n, err := cw.w.Write(b)
	cw.BytesWritten += uint64(n)
	return err
}

// WriteMessage emits msg on the given chunk stream id, using a type-0
// header followed by type-3 continuation chunks.
func (cw *ChunkWriter) WriteMessage(csid uint32, msg Message) error {
	if csid < 2 || csid > 65599 {
		return fmt.Errorf("rtmp: invalid chunk stream id %d", csid)
	}
	hdr := make([]byte, 0, 18)
	hdr = appendBasicHeader(hdr, 0, csid)
	ts := msg.Timestamp
	extended := ts >= extendedTimestampSentinel
	h24 := ts
	if extended {
		h24 = extendedTimestampSentinel
	}
	hdr = append(hdr, byte(h24>>16), byte(h24>>8), byte(h24))
	l := len(msg.Payload)
	hdr = append(hdr, byte(l>>16), byte(l>>8), byte(l))
	hdr = append(hdr, msg.TypeID)
	hdr = binary.LittleEndian.AppendUint32(hdr, msg.StreamID)
	if extended {
		hdr = binary.BigEndian.AppendUint32(hdr, ts)
	}
	if err := cw.write(hdr); err != nil {
		return err
	}
	payload := msg.Payload
	for {
		n := uint32(len(payload))
		if n > cw.chunkSize {
			n = cw.chunkSize
		}
		if err := cw.write(payload[:n]); err != nil {
			return err
		}
		payload = payload[n:]
		if len(payload) == 0 {
			return nil
		}
		cont := appendBasicHeader(nil, 3, csid)
		if extended {
			cont = binary.BigEndian.AppendUint32(cont, ts)
		}
		if err := cw.write(cont); err != nil {
			return err
		}
	}
}

func appendBasicHeader(b []byte, format byte, csid uint32) []byte {
	switch {
	case csid < 64:
		return append(b, format<<6|byte(csid))
	case csid < 320:
		return append(b, format<<6, byte(csid-64))
	default:
		b = append(b, format<<6|1)
		return binary.LittleEndian.AppendUint16(b, uint16(csid-64))
	}
}
