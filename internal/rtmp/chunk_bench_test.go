package rtmp

import (
	"bytes"
	"testing"
)

// BenchmarkChunkWrite measures the chunk-layer mux path alone: header
// compression plus staged chunk packing into a memory sink.
func BenchmarkChunkWrite(b *testing.B) {
	payload := make([]byte, 4096)
	var buf bytes.Buffer
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		buf.Reset()
		cw := NewChunkWriter(&buf)
		if err := cw.WriteMessage(7, Message{TypeID: TypeVideo, Timestamp: uint32(i), Payload: payload}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChunkRead measures the demux path with a fresh payload buffer
// per message (a consumer that retains every payload).
func BenchmarkChunkRead(b *testing.B) {
	wire := chunkWireMessage(b, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cr := NewChunkReader(bytes.NewReader(wire))
		if _, err := cr.ReadMessage(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChunkReadRecycle measures the demux path in relay steady state:
// the payload buffer goes back to the pool once the message is consumed.
func BenchmarkChunkReadRecycle(b *testing.B) {
	wire := chunkWireMessage(b, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cr := NewChunkReader(bytes.NewReader(wire))
		msg, err := cr.ReadMessage()
		if err != nil {
			b.Fatal(err)
		}
		RecycleMessagePayload(msg.Payload)
	}
}

func chunkWireMessage(b *testing.B, n int) []byte {
	b.Helper()
	var buf bytes.Buffer
	cw := NewChunkWriter(&buf)
	if err := cw.WriteMessage(7, Message{TypeID: TypeVideo, Timestamp: 1, Payload: make([]byte, n)}); err != nil {
		b.Fatal(err)
	}
	return append([]byte(nil), buf.Bytes()...)
}
