package rtmp

import (
	"sync"
	"sync/atomic"
)

// AcquireMessagePayload returns an n-byte buffer drawn from the same pool
// ReadMessage fills payloads from. Relays and tests that synthesize
// messages use it so the payload can later travel the refcounted fan-out
// path and return to the pool via SharedPayload.Release or
// RecycleMessagePayload.
func AcquireMessagePayload(n int) []byte {
	return getPayloadBuf(uint32(n))
}

// SharedPayload is a reference-counted message payload. It lets one pooled
// buffer fan out to many concurrent consumers (viewer queues, shard
// workers, the HLS feed) without copying: each consumer holds one
// reference and calls Release when done; the last Release recycles the
// buffer into the message-payload pool. The wrapper itself is pooled too,
// so a steady-state relay allocates nothing per message.
type SharedPayload struct {
	p    []byte
	refs atomic.Int32
}

var sharedPayloadPool = sync.Pool{New: func() any { return new(SharedPayload) }}

// SharePayload wraps a payload obtained from ReadMessage (or
// AcquireMessagePayload) with an initial reference count of one, owned by
// the caller. The caller must not recycle p directly afterwards; the
// final Release does that.
func SharePayload(p []byte) *SharedPayload {
	sp := sharedPayloadPool.Get().(*SharedPayload)
	sp.p = p
	sp.refs.Store(1)
	return sp
}

// Bytes returns the wrapped payload. The slice is only valid while the
// caller holds a reference.
func (sp *SharedPayload) Bytes() []byte { return sp.p }

// Retain adds a reference on behalf of a new consumer.
func (sp *SharedPayload) Retain() { sp.refs.Add(1) }

// Release drops one reference; the last one recycles the payload into the
// pool and returns the wrapper for reuse. Releasing more times than
// retained is a bug and panics.
func (sp *SharedPayload) Release() {
	switch n := sp.refs.Add(-1); {
	case n == 0:
		p := sp.p
		sp.p = nil
		sharedPayloadPool.Put(sp)
		RecycleMessagePayload(p)
	case n < 0:
		panic("rtmp: SharedPayload over-released")
	}
}
