package rtmp

import (
	"fmt"
	"net"

	"periscope/internal/amf"
)

// Client is an RTMP client connection (the role the Periscope app plays
// both when broadcasting and when viewing an unpopular stream).
type Client struct {
	*Conn
	app      string
	streamID uint32
}

// Dial connects to addr, performs the handshake and the NetConnection
// connect exchange for the given application name.
func Dial(addr, app string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := NewClientConn(nc, app, "rtmp://"+addr+"/"+app)
	if err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

// NewClientConn runs the client handshake and connect command over an
// existing transport (lets tests and the bandwidth shaper supply the
// net.Conn).
func NewClientConn(nc net.Conn, app, tcURL string) (*Client, error) {
	if err := HandshakeClient(nc); err != nil {
		return nil, err
	}
	c := &Client{Conn: NewConn(nc), app: app}
	if err := c.SetChunkSize(preferredChunkSize); err != nil {
		return nil, err
	}
	if err := c.WriteMessage(Message{TypeID: TypeWindowAckSize, Payload: uint32Payload(DefaultWindowAckSize)}); err != nil {
		return nil, err
	}
	tx := c.nextTransaction()
	obj := amf.Object{
		"app":          app,
		"flashVer":     "LNX 11,2,202,280",
		"tcUrl":        tcURL,
		"fpad":         false,
		"capabilities": 15.0,
		"audioCodecs":  3191.0,
		"videoCodecs":  252.0,
	}
	if err := c.WriteCommand(0, "connect", tx, obj); err != nil {
		return nil, err
	}
	if _, err := c.waitResult(tx); err != nil {
		return nil, fmt.Errorf("rtmp: connect: %w", err)
	}
	return c, nil
}

// CreateStream allocates a message stream id on the server.
func (c *Client) CreateStream() (uint32, error) {
	tx := c.nextTransaction()
	if err := c.WriteCommand(0, "createStream", tx, nil); err != nil {
		return 0, err
	}
	res, err := c.waitResult(tx)
	if err != nil {
		return 0, err
	}
	if len(res.Args) < 1 {
		return 0, fmt.Errorf("rtmp: createStream result missing stream id")
	}
	id, ok := res.Args[0].(float64)
	if !ok {
		return 0, fmt.Errorf("rtmp: createStream returned %T", res.Args[0])
	}
	c.streamID = uint32(id)
	return c.streamID, nil
}

// Play requests playback of the named stream. After Play returns, media
// messages arrive via ReadMessage.
func (c *Client) Play(name string) error {
	if c.streamID == 0 {
		if _, err := c.CreateStream(); err != nil {
			return err
		}
	}
	return c.WriteCommand(c.streamID, "play", 0, nil, name)
}

// Publish announces a live publish of the named stream; afterwards feed
// media with WriteAudio/WriteVideo.
func (c *Client) Publish(name string) error {
	if c.streamID == 0 {
		if _, err := c.CreateStream(); err != nil {
			return err
		}
	}
	return c.WriteCommand(c.streamID, "publish", 0, nil, name, "live")
}

// StreamID returns the active message stream id.
func (c *Client) StreamID() uint32 { return c.streamID }

// WriteVideo sends a video message (FLV video tag data) at the given
// millisecond timestamp.
func (c *Client) WriteVideo(timestamp uint32, data []byte) error {
	return c.WriteMessage(Message{TypeID: TypeVideo, StreamID: c.streamID, Timestamp: timestamp, Payload: data})
}

// WriteAudio sends an audio message (FLV audio tag data).
func (c *Client) WriteAudio(timestamp uint32, data []byte) error {
	return c.WriteMessage(Message{TypeID: TypeAudio, StreamID: c.streamID, Timestamp: timestamp, Payload: data})
}
