// Package rtmp implements the Real Time Messaging Protocol as used by
// Periscope for low-latency live stream delivery (§3): the C0/C1/C2 -
// S0/S1/S2 handshake, the chunk stream layer with all four header formats
// and extended timestamps, protocol control messages (Set Chunk Size,
// Acknowledgement, Window Acknowledgement Size, Set Peer Bandwidth), user
// control events, and the AMF0 command flow (connect, createStream, play,
// publish, onStatus). Both the client (viewer/broadcaster app) and server
// (the "EC2 vidman" ingest/relay machines) sides are provided.
//
// The paper observes that public Periscope streams use plain-text RTMP on
// port 80; this implementation likewise runs over any net.Conn.
package rtmp

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// ProtocolVersion is the only RTMP version in deployment.
const ProtocolVersion = 3

// handshakeRandomLen is the length of the random block in C1/S1.
const handshakeRandomLen = 1528

// HandshakeClient performs the client side of the RTMP handshake.
func HandshakeClient(rw io.ReadWriter) error {
	// C0 + C1.
	c1 := make([]byte, 1+4+4+handshakeRandomLen)
	c1[0] = ProtocolVersion
	binary.BigEndian.PutUint32(c1[1:5], uint32(time.Now().UnixMilli()))
	if _, err := rand.Read(c1[9:]); err != nil {
		return err
	}
	if _, err := rw.Write(c1); err != nil {
		return fmt.Errorf("rtmp: writing C0C1: %w", err)
	}
	// S0 + S1 + S2.
	s0s1s2 := make([]byte, 1+2*(4+4+handshakeRandomLen))
	if _, err := io.ReadFull(rw, s0s1s2); err != nil {
		return fmt.Errorf("rtmp: reading S0S1S2: %w", err)
	}
	if s0s1s2[0] != ProtocolVersion {
		return fmt.Errorf("rtmp: server version %d", s0s1s2[0])
	}
	// C2 echoes S1.
	if _, err := rw.Write(s0s1s2[1 : 1+4+4+handshakeRandomLen]); err != nil {
		return fmt.Errorf("rtmp: writing C2: %w", err)
	}
	return nil
}

// HandshakeServer performs the server side of the RTMP handshake.
func HandshakeServer(rw io.ReadWriter) error {
	// C0 + C1.
	c0c1 := make([]byte, 1+4+4+handshakeRandomLen)
	if _, err := io.ReadFull(rw, c0c1); err != nil {
		return fmt.Errorf("rtmp: reading C0C1: %w", err)
	}
	if c0c1[0] != ProtocolVersion {
		return fmt.Errorf("rtmp: client version %d", c0c1[0])
	}
	// S0 + S1 + S2 (S2 echoes C1).
	s := make([]byte, 0, 1+2*(4+4+handshakeRandomLen))
	s = append(s, ProtocolVersion)
	s1 := make([]byte, 4+4+handshakeRandomLen)
	binary.BigEndian.PutUint32(s1[0:4], uint32(time.Now().UnixMilli()))
	if _, err := rand.Read(s1[8:]); err != nil {
		return err
	}
	s = append(s, s1...)
	s = append(s, c0c1[1:]...)
	if _, err := rw.Write(s); err != nil {
		return fmt.Errorf("rtmp: writing S0S1S2: %w", err)
	}
	// C2.
	c2 := make([]byte, 4+4+handshakeRandomLen)
	if _, err := io.ReadFull(rw, c2); err != nil {
		return fmt.Errorf("rtmp: reading C2: %w", err)
	}
	return nil
}
