package rtmp

import (
	"encoding/binary"
	"fmt"
)

// Message type IDs.
const (
	TypeSetChunkSize     = 1
	TypeAbort            = 2
	TypeAck              = 3
	TypeUserControl      = 4
	TypeWindowAckSize    = 5
	TypeSetPeerBandwidth = 6
	TypeAudio            = 8
	TypeVideo            = 9
	TypeDataAMF0         = 18
	TypeCommandAMF0      = 20
)

// Chunk stream IDs by convention.
const (
	csidProtocol = 2
	csidCommand  = 3
	csidAudio    = 6
	csidVideo    = 7
)

// Message is one complete RTMP message.
type Message struct {
	TypeID    uint8
	StreamID  uint32
	Timestamp uint32 // milliseconds
	Payload   []byte
}

// User control event types.
const (
	EventStreamBegin      = 0
	EventStreamEOF        = 1
	EventStreamDry        = 2
	EventSetBufferLength  = 3
	EventStreamIsRecorded = 4
	EventPingRequest      = 6
	EventPingResponse     = 7
)

// UserControlEvent is a parsed type-4 message.
type UserControlEvent struct {
	Event uint16
	Data  []byte
}

// MarshalUserControl builds a user control message payload.
func MarshalUserControl(event uint16, args ...uint32) []byte {
	out := make([]byte, 2, 2+4*len(args))
	binary.BigEndian.PutUint16(out, event)
	for _, a := range args {
		out = binary.BigEndian.AppendUint32(out, a)
	}
	return out
}

// ParseUserControl splits a user control payload.
func ParseUserControl(payload []byte) (UserControlEvent, error) {
	if len(payload) < 2 {
		return UserControlEvent{}, fmt.Errorf("rtmp: user control payload too short")
	}
	return UserControlEvent{Event: binary.BigEndian.Uint16(payload[:2]), Data: payload[2:]}, nil
}

// uint32Payload builds the 4-byte payload used by several control messages.
func uint32Payload(v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return b[:]
}

func parseUint32Payload(p []byte) (uint32, error) {
	if len(p) < 4 {
		return 0, fmt.Errorf("rtmp: control payload too short")
	}
	return binary.BigEndian.Uint32(p[:4]), nil
}
