package rtmp

import "testing"

// samePayloadBacking reports whether two non-empty payloads share a
// backing array.
func samePayloadBacking(a, b []byte) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// TestSharedPayloadRecyclesOnLastRelease verifies the refcount contract:
// the buffer must reach the pool exactly when the final reference is
// dropped, not before.
func TestSharedPayloadRecyclesOnLastRelease(t *testing.T) {
	// Retry a few times: sync.Pool identity is not guaranteed under a
	// concurrent GC cycle, but holding the buffer back is always a bug.
	reused := false
	for attempt := 0; attempt < 8 && !reused; attempt++ {
		p := AcquireMessagePayload(2048)
		//lint:ignore periscopelint/refpair the t.Fatal abort paths exit with references held by design; a failed test's buffers never reaching the pool is fine
		sp := SharePayload(p)
		sp.Retain()
		sp.Retain() // three holders: caller + two consumers

		sp.Release()
		if q := AcquireMessagePayload(2048); samePayloadBacking(p, q) {
			t.Fatal("payload recycled while two references were still held")
		}
		sp.Release()
		if q := AcquireMessagePayload(2048); samePayloadBacking(p, q) {
			t.Fatal("payload recycled while one reference was still held")
		}
		sp.Release() // last reference: recycle now
		reused = samePayloadBacking(p, AcquireMessagePayload(2048))
	}
	if !reused {
		t.Error("payload never returned to the pool after the last Release")
	}
}

func TestSharedPayloadOverReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	sp := SharePayload(AcquireMessagePayload(16))
	sp.Release()
	//lint:ignore periscopelint/refpair deliberate over-release: this test asserts the refcount guard panics
	sp.Release()
}
