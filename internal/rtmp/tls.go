package rtmp

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"log"
	"math/big"
	"net"
	"time"
)

// The paper observes that "public streams are delivered using plain-text
// RTMP and HTTP, whereas the private broadcast streams are encrypted
// using RTMPS and HTTPS for HLS" (§3). This file adds the RTMPS side:
// RTMP over TLS, with a self-signed certificate helper for the simulated
// service.

// GenerateSelfSigned creates a short-lived self-signed TLS certificate for
// the given host names, standing in for the service's CA-issued certs.
func GenerateSelfSigned(hosts ...string) (tls.Certificate, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, err
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return tls.Certificate{}, err
	}
	tmpl := x509.Certificate{
		SerialNumber: serial,
		Subject:      pkix.Name{CommonName: "vidman.periscope.tv"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
		} else {
			tmpl.DNSNames = append(tmpl.DNSNames, h)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return tls.Certificate{}, err
	}
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}, nil
}

// ListenAndServeTLS starts an RTMPS server (RTMP over TLS) with the given
// certificate.
func ListenAndServeTLS(addr string, h Handler, cert tls.Certificate) (*Server, error) {
	ln, err := tls.Listen("tcp", addr, &tls.Config{Certificates: []tls.Certificate{cert}})
	if err != nil {
		return nil, err
	}
	s := &Server{Handler: h}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go func() {
		if err := s.Serve(ln); err != nil {
			log.Printf("rtmps server: %v", err)
		}
	}()
	return s, nil
}

// DialTLS connects to an RTMPS endpoint. tlsCfg may be nil for system
// defaults; the simulated service's self-signed certificates need either
// InsecureSkipVerify or a RootCAs pool containing the cert.
func DialTLS(addr, app string, tlsCfg *tls.Config) (*Client, error) {
	nc, err := tls.Dial("tcp", addr, tlsCfg)
	if err != nil {
		return nil, err
	}
	c, err := NewClientConn(nc, app, "rtmps://"+addr+"/"+app)
	if err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}
