package rtmp

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"

	"periscope/internal/amf"
)

// DefaultWindowAckSize is the acknowledgement window both sides announce.
const DefaultWindowAckSize = 2_500_000

// preferredChunkSize is the chunk size announced after connect; 4096 keeps
// per-message overhead low for video.
const preferredChunkSize = 4096

// connBufSize sizes the buffered transport on each side: large enough to
// hold a whole video message's chunks, so one message costs one syscall
// instead of one per chunk header.
const connBufSize = 16 << 10

// Conn is an RTMP connection after a successful handshake. It layers
// message read/write over the chunk stream, maintains acknowledgement
// accounting and answers protocol pings transparently. Both directions
// are buffered; writes are flushed at message boundaries.
type Conn struct {
	nc net.Conn
	bw *bufio.Writer
	cr *ChunkReader
	cw *ChunkWriter

	writeMu sync.Mutex

	peerWindowAck uint32
	lastAcked     uint64

	txMu   sync.Mutex
	nextTx float64
}

// NewConn wraps an already-handshaken net.Conn.
func NewConn(nc net.Conn) *Conn {
	// The ChunkReader buffers reads internally; only the write side needs
	// the bufio layer to coalesce header/payload writes into one syscall.
	bw := bufio.NewWriterSize(nc, connBufSize)
	return &Conn{
		nc:            nc,
		bw:            bw,
		cr:            NewChunkReader(nc),
		cw:            NewChunkWriter(bw),
		peerWindowAck: DefaultWindowAckSize,
		nextTx:        1,
	}
}

// Close closes the underlying transport.
func (c *Conn) Close() error { return c.nc.Close() }

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// LocalAddr returns the local address.
func (c *Conn) LocalAddr() net.Addr { return c.nc.LocalAddr() }

// BytesRead reports raw bytes received (for traffic accounting).
func (c *Conn) BytesRead() uint64 { return c.cr.BytesRead }

// BytesWritten reports raw bytes sent.
func (c *Conn) BytesWritten() uint64 {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return c.cw.BytesWritten
}

// WriteMessage sends one message on an appropriate chunk stream.
func (c *Conn) WriteMessage(msg Message) error {
	csid := uint32(csidCommand)
	switch msg.TypeID {
	case TypeSetChunkSize, TypeAbort, TypeAck, TypeUserControl, TypeWindowAckSize, TypeSetPeerBandwidth:
		csid = csidProtocol
	case TypeAudio:
		csid = csidAudio
	case TypeVideo:
		csid = csidVideo
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if err := c.cw.WriteMessage(csid, msg); err != nil {
		return err
	}
	return c.bw.Flush()
}

// SetChunkSize announces and applies a new outgoing chunk size.
func (c *Conn) SetChunkSize(n uint32) error {
	if err := c.WriteMessage(Message{TypeID: TypeSetChunkSize, Payload: uint32Payload(n)}); err != nil {
		return err
	}
	c.writeMu.Lock()
	c.cw.SetChunkSize(n)
	c.writeMu.Unlock()
	return nil
}

// ReadMessage returns the next application-visible message. Protocol
// bookkeeping messages (Ack, ping, window size) are handled internally and
// not returned; Set Chunk Size is applied by the chunk reader.
func (c *Conn) ReadMessage() (Message, error) {
	for {
		msg, err := c.cr.ReadMessage()
		if err != nil {
			return Message{}, err
		}
		// Acknowledgement generation.
		if c.peerWindowAck > 0 && c.cr.BytesRead-c.lastAcked >= uint64(c.peerWindowAck) {
			c.lastAcked = c.cr.BytesRead
			if err := c.WriteMessage(Message{TypeID: TypeAck, Payload: uint32Payload(uint32(c.cr.BytesRead))}); err != nil {
				return Message{}, err
			}
		}
		// Messages consumed here never reach the caller, so their pooled
		// payload buffers can be recycled immediately.
		switch msg.TypeID {
		case TypeSetChunkSize, TypeAck, TypeAbort:
			RecycleMessagePayload(msg.Payload)
			continue
		case TypeWindowAckSize:
			if v, err := parseUint32Payload(msg.Payload); err == nil {
				c.peerWindowAck = v
			}
			RecycleMessagePayload(msg.Payload)
			continue
		case TypeSetPeerBandwidth:
			RecycleMessagePayload(msg.Payload)
			continue
		case TypeUserControl:
			ev, err := ParseUserControl(msg.Payload)
			if err == nil && ev.Event == EventPingRequest {
				// Echo at most the 4-byte timestamp; a short request must
				// not slice past what the peer actually sent.
				resp := MarshalUserControl(EventPingResponse)
				resp = append(resp, ev.Data...)
				if len(resp) > 6 {
					resp = resp[:6]
				}
				if err := c.WriteMessage(Message{TypeID: TypeUserControl, Payload: resp}); err != nil {
					return Message{}, err
				}
				RecycleMessagePayload(msg.Payload)
				continue
			}
			return msg, nil
		default:
			return msg, nil
		}
	}
}

// nextTransaction returns a fresh AMF command transaction id.
func (c *Conn) nextTransaction() float64 {
	c.txMu.Lock()
	defer c.txMu.Unlock()
	tx := c.nextTx
	c.nextTx++
	return tx
}

// Command is a decoded AMF0 command message.
type Command struct {
	Name        string
	Transaction float64
	Object      amf.Object // command object (may be nil)
	Args        []any      // remaining arguments
	StreamID    uint32
}

// ParseCommand decodes a type-20 message payload.
func ParseCommand(msg Message) (Command, error) {
	if msg.TypeID != TypeCommandAMF0 {
		return Command{}, fmt.Errorf("rtmp: message type %d is not a command", msg.TypeID)
	}
	vals, err := amf.Unmarshal(msg.Payload)
	if err != nil {
		return Command{}, err
	}
	if len(vals) < 2 {
		return Command{}, errors.New("rtmp: command too short")
	}
	name, ok := vals[0].(string)
	if !ok {
		return Command{}, errors.New("rtmp: command name not a string")
	}
	tx, ok := vals[1].(float64)
	if !ok {
		return Command{}, errors.New("rtmp: transaction id not a number")
	}
	cmd := Command{Name: name, Transaction: tx, StreamID: msg.StreamID}
	rest := vals[2:]
	if len(rest) > 0 {
		if obj, ok := rest[0].(amf.Object); ok {
			cmd.Object = obj
		}
		cmd.Args = rest[1:]
	}
	return cmd, nil
}

// WriteCommand sends an AMF0 command message.
func (c *Conn) WriteCommand(streamID uint32, name string, tx float64, object any, args ...any) error {
	vals := append([]any{name, tx, object}, args...)
	payload, err := amf.Marshal(vals...)
	if err != nil {
		return err
	}
	return c.WriteMessage(Message{TypeID: TypeCommandAMF0, StreamID: streamID, Payload: payload})
}

// waitResult reads messages until a _result/_error command for tx arrives.
// Non-command messages received meanwhile are discarded (none are expected
// during connection setup).
func (c *Conn) waitResult(tx float64) (Command, error) {
	for {
		msg, err := c.ReadMessage()
		if err != nil {
			return Command{}, err
		}
		if msg.TypeID != TypeCommandAMF0 {
			RecycleMessagePayload(msg.Payload)
			continue
		}
		cmd, err := ParseCommand(msg)
		RecycleMessagePayload(msg.Payload)
		if err != nil {
			return Command{}, err
		}
		if cmd.Name == "_result" && cmd.Transaction == tx {
			return cmd, nil
		}
		if cmd.Name == "_error" && cmd.Transaction == tx {
			return cmd, fmt.Errorf("rtmp: command rejected: %v", cmd.Args)
		}
	}
}
