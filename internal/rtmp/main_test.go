package rtmp

import (
	"testing"

	"periscope/internal/leakcheck"
)

// TestMain enforces the runtime half of the gostop contract: per-conn
// serve goroutines live exactly as long as their connections, and the
// accept loop dies with the listener.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
