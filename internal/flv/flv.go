// Package flv implements the FLV tag formats that RTMP message payloads
// use for audio and video data: AVC video tags (keyframe/interframe, AVC
// sequence headers with AVCDecoderConfigurationRecord, composition-time
// offsets for B-frame reordering) and AAC audio tags (AudioSpecificConfig
// sequence headers). A minimal FLV file reader/writer is included for
// dumping reconstructed RTMP streams to disk, mirroring the paper's use of
// the wireshark RTMP dissector to extract audio and video segments.
package flv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"periscope/internal/avc"
)

// Tag types.
const (
	TagAudio      = 8
	TagVideo      = 9
	TagScriptData = 18
)

// Video frame types (upper nibble of the first video-data byte).
const (
	VideoKeyFrame   = 1
	VideoInterFrame = 2
)

// CodecAVC is the FLV video codec id for H.264.
const CodecAVC = 7

// AVC packet types.
const (
	AVCSeqHeader = 0
	AVCNALU      = 1
	AVCEndOfSeq  = 2
)

// SoundFormatAAC is the FLV audio sound format for AAC.
const SoundFormatAAC = 10

// AAC packet types.
const (
	AACSeqHeader = 0
	AACRaw       = 1
)

// VideoTagData is the payload of an FLV video tag.
type VideoTagData struct {
	FrameType       int // VideoKeyFrame or VideoInterFrame
	PacketType      int // AVCSeqHeader, AVCNALU or AVCEndOfSeq
	CompositionTime int32
	Data            []byte // AVCC NALUs, or decoder config for seq header
}

// Marshal encodes the video tag data bytes.
func (v VideoTagData) Marshal() []byte {
	out := make([]byte, 5, 5+len(v.Data))
	out[0] = byte(v.FrameType<<4 | CodecAVC)
	out[1] = byte(v.PacketType)
	out[2] = byte(v.CompositionTime >> 16)
	out[3] = byte(v.CompositionTime >> 8)
	out[4] = byte(v.CompositionTime)
	return append(out, v.Data...)
}

// ParseVideoTagData decodes video tag data bytes.
func ParseVideoTagData(data []byte) (VideoTagData, error) {
	if len(data) < 5 {
		return VideoTagData{}, errors.New("flv: short video tag")
	}
	if codec := data[0] & 0x0F; codec != CodecAVC {
		return VideoTagData{}, fmt.Errorf("flv: unsupported video codec %d", codec)
	}
	ct := int32(data[2])<<16 | int32(data[3])<<8 | int32(data[4])
	if ct&0x800000 != 0 {
		ct |= ^int32(0xFFFFFF) // sign-extend 24-bit
	}
	return VideoTagData{
		FrameType:       int(data[0] >> 4),
		PacketType:      int(data[1]),
		CompositionTime: ct,
		Data:            data[5:],
	}, nil
}

// AudioTagData is the payload of an FLV audio tag.
type AudioTagData struct {
	PacketType int // AACSeqHeader or AACRaw
	Data       []byte
}

// Marshal encodes the audio tag data bytes (AAC, 44.1 kHz, stereo, 16-bit).
func (a AudioTagData) Marshal() []byte {
	out := make([]byte, 2, 2+len(a.Data))
	out[0] = SoundFormatAAC<<4 | 3<<2 | 1<<1 | 1 // 44k, 16-bit, stereo
	out[1] = byte(a.PacketType)
	return append(out, a.Data...)
}

// ParseAudioTagData decodes audio tag data bytes.
func ParseAudioTagData(data []byte) (AudioTagData, error) {
	if len(data) < 2 {
		return AudioTagData{}, errors.New("flv: short audio tag")
	}
	if f := data[0] >> 4; f != SoundFormatAAC {
		return AudioTagData{}, fmt.Errorf("flv: unsupported sound format %d", f)
	}
	return AudioTagData{PacketType: int(data[1]), Data: data[2:]}, nil
}

// DecoderConfig builds the AVCDecoderConfigurationRecord carried in an AVC
// sequence header tag.
func DecoderConfig(sps avc.SPS, pps avc.PPS) []byte {
	spsRBSP := sps.Marshal()
	spsNAL := append([]byte{avc.NALUnit{RefIDC: 3, Type: avc.NALSPS}.Header()}, avc.EscapeRBSP(spsRBSP)...)
	ppsRBSP := pps.Marshal()
	ppsNAL := append([]byte{avc.NALUnit{RefIDC: 3, Type: avc.NALPPS}.Header()}, avc.EscapeRBSP(ppsRBSP)...)

	out := []byte{
		1,              // configurationVersion
		sps.ProfileIDC, // AVCProfileIndication
		0,              // profile_compatibility
		sps.LevelIDC,   // AVCLevelIndication
		0xFF,           // lengthSizeMinusOne = 3 (4-byte lengths)
		0xE1,           // numOfSequenceParameterSets = 1
	}
	out = binary.BigEndian.AppendUint16(out, uint16(len(spsNAL)))
	out = append(out, spsNAL...)
	out = append(out, 1) // numOfPictureParameterSets
	out = binary.BigEndian.AppendUint16(out, uint16(len(ppsNAL)))
	out = append(out, ppsNAL...)
	return out
}

// ParseDecoderConfig extracts the SPS and PPS from a decoder configuration
// record.
func ParseDecoderConfig(data []byte) (avc.SPS, avc.PPS, error) {
	var sps avc.SPS
	var pps avc.PPS
	if len(data) < 7 || data[0] != 1 {
		return sps, pps, errors.New("flv: bad AVC decoder config")
	}
	numSPS := int(data[5] & 0x1F)
	p := 6
	for i := 0; i < numSPS; i++ {
		if len(data) < p+2 {
			return sps, pps, errors.New("flv: truncated SPS length")
		}
		n := int(binary.BigEndian.Uint16(data[p : p+2]))
		p += 2
		if len(data) < p+n || n == 0 {
			return sps, pps, errors.New("flv: truncated SPS")
		}
		var err error
		sps, err = avc.ParseSPS(avc.UnescapeRBSP(data[p+1 : p+n]))
		if err != nil {
			return sps, pps, err
		}
		p += n
	}
	if len(data) < p+1 {
		return sps, pps, errors.New("flv: missing PPS count")
	}
	numPPS := int(data[p])
	p++
	for i := 0; i < numPPS; i++ {
		if len(data) < p+2 {
			return sps, pps, errors.New("flv: truncated PPS length")
		}
		n := int(binary.BigEndian.Uint16(data[p : p+2]))
		p += 2
		if len(data) < p+n || n == 0 {
			return sps, pps, errors.New("flv: truncated PPS")
		}
		var err error
		pps, err = avc.ParsePPS(avc.UnescapeRBSP(data[p+1 : p+n]))
		if err != nil {
			return sps, pps, err
		}
		p += n
	}
	return sps, pps, nil
}

// Tag is a complete FLV tag as stored in a file.
type Tag struct {
	Type      uint8
	Timestamp uint32 // milliseconds
	Data      []byte
}

// fileHeader is the 9-byte FLV file header declaring audio+video presence.
var fileHeader = []byte{'F', 'L', 'V', 1, 0x05, 0, 0, 0, 9}

// Writer writes an FLV file.
type Writer struct {
	w       io.Writer
	started bool
}

// NewWriter returns an FLV file writer.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// WriteTag appends one tag (writing the file header first if needed).
func (fw *Writer) WriteTag(t Tag) error {
	if !fw.started {
		if _, err := fw.w.Write(fileHeader); err != nil {
			return err
		}
		if err := binary.Write(fw.w, binary.BigEndian, uint32(0)); err != nil {
			return err
		}
		fw.started = true
	}
	hdr := make([]byte, 11)
	hdr[0] = t.Type
	hdr[1] = byte(len(t.Data) >> 16)
	hdr[2] = byte(len(t.Data) >> 8)
	hdr[3] = byte(len(t.Data))
	hdr[4] = byte(t.Timestamp >> 16)
	hdr[5] = byte(t.Timestamp >> 8)
	hdr[6] = byte(t.Timestamp)
	hdr[7] = byte(t.Timestamp >> 24) // extended timestamp byte
	// stream id stays zero
	if _, err := fw.w.Write(hdr); err != nil {
		return err
	}
	if _, err := fw.w.Write(t.Data); err != nil {
		return err
	}
	return binary.Write(fw.w, binary.BigEndian, uint32(11+len(t.Data)))
}

// Reader reads an FLV file.
type Reader struct {
	r       io.Reader
	started bool
}

// NewReader returns an FLV file reader.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// ReadTag returns the next tag or io.EOF.
func (fr *Reader) ReadTag() (Tag, error) {
	if !fr.started {
		hdr := make([]byte, len(fileHeader)+4)
		if _, err := io.ReadFull(fr.r, hdr); err != nil {
			return Tag{}, err
		}
		if string(hdr[:3]) != "FLV" {
			return Tag{}, errors.New("flv: bad file signature")
		}
		fr.started = true
	}
	hdr := make([]byte, 11)
	if _, err := io.ReadFull(fr.r, hdr); err != nil {
		return Tag{}, err
	}
	size := int(hdr[1])<<16 | int(hdr[2])<<8 | int(hdr[3])
	ts := uint32(hdr[4])<<16 | uint32(hdr[5])<<8 | uint32(hdr[6]) | uint32(hdr[7])<<24
	data := make([]byte, size)
	if _, err := io.ReadFull(fr.r, data); err != nil {
		return Tag{}, err
	}
	var prev [4]byte
	if _, err := io.ReadFull(fr.r, prev[:]); err != nil {
		return Tag{}, err
	}
	return Tag{Type: hdr[0], Timestamp: ts, Data: data}, nil
}
