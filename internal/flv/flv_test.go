package flv

import (
	"bytes"
	"io"
	"testing"

	"periscope/internal/avc"
)

func TestVideoTagRoundTrip(t *testing.T) {
	v := VideoTagData{
		FrameType:       VideoKeyFrame,
		PacketType:      AVCNALU,
		CompositionTime: 42,
		Data:            []byte{1, 2, 3},
	}
	got, err := ParseVideoTagData(v.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.FrameType != VideoKeyFrame || got.PacketType != AVCNALU ||
		got.CompositionTime != 42 || !bytes.Equal(got.Data, v.Data) {
		t.Errorf("got %+v", got)
	}
}

func TestVideoTagNegativeCompositionTime(t *testing.T) {
	v := VideoTagData{FrameType: VideoInterFrame, PacketType: AVCNALU, CompositionTime: -40}
	got, err := ParseVideoTagData(v.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.CompositionTime != -40 {
		t.Errorf("composition time = %d, want -40", got.CompositionTime)
	}
}

func TestAudioTagRoundTrip(t *testing.T) {
	a := AudioTagData{PacketType: AACRaw, Data: []byte{9, 8, 7}}
	got, err := ParseAudioTagData(a.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.PacketType != AACRaw || !bytes.Equal(got.Data, a.Data) {
		t.Errorf("got %+v", got)
	}
}

func TestShortTags(t *testing.T) {
	if _, err := ParseVideoTagData([]byte{1}); err == nil {
		t.Error("want error for short video tag")
	}
	if _, err := ParseAudioTagData([]byte{}); err == nil {
		t.Error("want error for short audio tag")
	}
}

func TestWrongCodec(t *testing.T) {
	if _, err := ParseVideoTagData([]byte{0x12, 0, 0, 0, 0}); err == nil {
		t.Error("want error for non-AVC codec")
	}
	if _, err := ParseAudioTagData([]byte{0x2F, 0}); err == nil {
		t.Error("want error for non-AAC format")
	}
}

func TestDecoderConfigRoundTrip(t *testing.T) {
	sps := avc.DefaultSPS()
	pps := avc.PPS{PicInitQP: 28}
	rec := DecoderConfig(sps, pps)
	gotSPS, gotPPS, err := ParseDecoderConfig(rec)
	if err != nil {
		t.Fatal(err)
	}
	if gotSPS.Width != sps.Width || gotSPS.Height != sps.Height {
		t.Errorf("SPS %dx%d, want %dx%d", gotSPS.Width, gotSPS.Height, sps.Width, sps.Height)
	}
	if gotPPS.PicInitQP != 28 {
		t.Errorf("PPS QP = %d, want 28", gotPPS.PicInitQP)
	}
}

func TestDecoderConfigTruncated(t *testing.T) {
	rec := DecoderConfig(avc.DefaultSPS(), avc.DefaultPPS())
	for cut := 1; cut < len(rec); cut++ {
		ParseDecoderConfig(rec[:cut]) // must not panic
	}
}

func TestFileRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	tags := []Tag{
		{Type: TagVideo, Timestamp: 0, Data: VideoTagData{FrameType: VideoKeyFrame, PacketType: AVCSeqHeader, Data: DecoderConfig(avc.DefaultSPS(), avc.DefaultPPS())}.Marshal()},
		{Type: TagVideo, Timestamp: 33, Data: VideoTagData{FrameType: VideoInterFrame, PacketType: AVCNALU, Data: []byte{0, 0, 0, 1, 0x41}}.Marshal()},
		{Type: TagAudio, Timestamp: 23, Data: AudioTagData{PacketType: AACRaw, Data: []byte{0xFF}}.Marshal()},
	}
	for _, tag := range tags {
		if err := w.WriteTag(tag); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i, want := range tags {
		got, err := r.ReadTag()
		if err != nil {
			t.Fatalf("tag %d: %v", i, err)
		}
		if got.Type != want.Type || got.Timestamp != want.Timestamp || !bytes.Equal(got.Data, want.Data) {
			t.Errorf("tag %d mismatch", i)
		}
	}
	if _, err := r.ReadTag(); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
}

func TestLargeTimestamp(t *testing.T) {
	// Timestamps beyond 24 bits use the extended byte.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	ts := uint32(0x01FFFFFF)
	if err := w.WriteTag(Tag{Type: TagAudio, Timestamp: ts, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadTag()
	if err != nil {
		t.Fatal(err)
	}
	if got.Timestamp != ts {
		t.Errorf("timestamp = %#x, want %#x", got.Timestamp, ts)
	}
}

func TestBadSignature(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("NOTFLV_______")))
	if _, err := r.ReadTag(); err == nil {
		t.Error("want error for bad signature")
	}
}
