package session

import (
	"testing"
	"time"

	"periscope/internal/service"
	"periscope/internal/stats"
)

func smallCampaign(t *testing.T) []Record {
	t.Helper()
	cfg := DefaultCampaignConfig()
	cfg.UnlimitedSessions = 400
	cfg.LimitsMbps = []float64{0.5, 2, 10}
	cfg.SessionsPerLimit = 40
	cfg.PopTarget = 800
	recs := NewCampaign(cfg).Run()
	if len(recs) < 400 {
		t.Fatalf("only %d records", len(recs))
	}
	return recs
}

func TestCampaignProtocolMix(t *testing.T) {
	recs := smallCampaign(t)
	unlimited := Filter(recs, "", 0)
	rtmp := len(Filter(unlimited, "RTMP", 0))
	hlsN := len(Filter(unlimited, "HLS", 0))
	if rtmp == 0 || hlsN == 0 {
		t.Fatalf("degenerate mix: RTMP=%d HLS=%d", rtmp, hlsN)
	}
	// Paper: 1796 RTMP vs 1586 HLS — roughly balanced via viewer-weighted
	// teleport. Accept a broad band.
	frac := float64(hlsN) / float64(rtmp+hlsN)
	if frac < 0.15 || frac > 0.85 {
		t.Errorf("HLS share = %.2f, want in [0.15, 0.85] (paper ~0.47)", frac)
	}
}

func TestCampaignHLSOnlyForPopular(t *testing.T) {
	recs := smallCampaign(t)
	for _, r := range recs {
		if r.Protocol == "HLS" && r.Viewers < 100 {
			t.Fatalf("HLS session with %d viewers", r.Viewers)
		}
		if r.Protocol == "RTMP" && r.Viewers >= 100 {
			t.Fatalf("RTMP session with %d viewers", r.Viewers)
		}
	}
}

func TestCampaignViewerMeansSeparate(t *testing.T) {
	recs := smallCampaign(t)
	var rtmpSum, hlsSum, rtmpN, hlsN float64
	for _, r := range recs {
		if r.Protocol == "RTMP" {
			rtmpSum += float64(r.Viewers)
			rtmpN++
		} else {
			hlsSum += float64(r.Viewers)
			hlsN++
		}
	}
	if hlsN == 0 || rtmpN == 0 {
		t.Skip("degenerate mix")
	}
	if hlsSum/hlsN <= rtmpSum/rtmpN {
		t.Errorf("HLS mean viewers %.0f not > RTMP %.0f", hlsSum/hlsN, rtmpSum/rtmpN)
	}
}

func TestCampaignStallIncreasesWhenLimited(t *testing.T) {
	recs := smallCampaign(t)
	ratio := func(limit float64) float64 {
		rs := Filter(recs, "RTMP", limit)
		if len(rs) == 0 {
			return 0
		}
		var sum float64
		for _, r := range rs {
			sum += r.Metrics.StallRatio
		}
		return sum / float64(len(rs))
	}
	slow, fast := ratio(0.5), ratio(10)
	if slow <= fast {
		t.Errorf("stall ratio 0.5Mbps %.3f not > 10Mbps %.3f", slow, fast)
	}
}

func TestCampaignHLSReportsOnlyStallCount(t *testing.T) {
	recs := smallCampaign(t)
	for _, r := range recs {
		if r.Protocol == "HLS" {
			if r.Meta.AvgStallSec != 0 || r.Meta.StallTimeSec != 0 || r.Meta.PlaybackDelaySec != 0 {
				t.Fatalf("HLS meta leaked RTMP-only fields: %+v", r.Meta)
			}
		}
	}
}

func TestWelchOnlyFrameRateDiffers(t *testing.T) {
	// Reproduces the §5 device comparison: across S3/S4 session sets the
	// frame rate differs significantly, the QoE metrics do not.
	cfg := DefaultCampaignConfig()
	cfg.UnlimitedSessions = 700
	cfg.LimitsMbps = nil
	cfg.PopTarget = 800
	recs := NewCampaign(cfg).Run()

	var fpsS3, fpsS4, stallS3, stallS4, joinS3, joinS4 []float64
	for _, r := range recs {
		if r.Device == GalaxyS3.Name {
			fpsS3 = append(fpsS3, r.MeasuredFPS)
			stallS3 = append(stallS3, r.Metrics.StallRatio)
			joinS3 = append(joinS3, r.Metrics.JoinTime.Seconds())
		} else {
			fpsS4 = append(fpsS4, r.MeasuredFPS)
			stallS4 = append(stallS4, r.Metrics.StallRatio)
			joinS4 = append(joinS4, r.Metrics.JoinTime.Seconds())
		}
	}
	fpsTest, err := stats.WelchTTest(fpsS3, fpsS4)
	if err != nil {
		t.Fatal(err)
	}
	if !fpsTest.Significant(0.05) {
		t.Errorf("frame rate should differ between devices: p=%.4f", fpsTest.P)
	}
	stallTest, _ := stats.WelchTTest(stallS3, stallS4)
	if stallTest.Significant(0.01) {
		t.Errorf("stall ratio should NOT differ: p=%.4f", stallTest.P)
	}
	joinTest, _ := stats.WelchTTest(joinS3, joinS4)
	if joinTest.Significant(0.01) {
		t.Errorf("join time should NOT differ: p=%.4f", joinTest.P)
	}
}

func TestWireSessionRTMP(t *testing.T) {
	if testing.Short() {
		t.Skip("wire session needs real time")
	}
	scfg := service.DefaultConfig()
	scfg.PopConfig.TargetConcurrent = 60
	// Keep every broadcast unpopular so teleport lands on RTMP.
	scfg.HLSViewerThreshold = 1 << 30
	svc, err := service.Start(scfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	rec, err := WatchOnce(WireConfig{
		APIBaseURL: svc.APIBaseURL(),
		Session:    "wire-test",
		WatchFor:   5 * time.Second,
		Device:     GalaxyS4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Protocol != "RTMP" {
		t.Fatalf("protocol = %s", rec.Protocol)
	}
	if rec.Metrics.Delivered == 0 {
		t.Fatal("no media delivered")
	}
	if rec.Metrics.PlayTime == 0 {
		t.Error("no playback achieved in 5s")
	}
	// In-process loopback: delivery latency must be small and positive-ish.
	if rec.Metrics.DeliveryLatency > 2*time.Second || rec.Metrics.DeliveryLatency < -time.Second {
		t.Errorf("delivery latency = %v", rec.Metrics.DeliveryLatency)
	}
	// The playbackMeta upload must have landed at the service.
	metas := svc.API.PlaybackMetas()
	if len(metas) != 1 || metas[0].Protocol != "RTMP" {
		t.Errorf("service metas = %+v", metas)
	}
}

func TestWireSessionHLS(t *testing.T) {
	if testing.Short() {
		t.Skip("wire session needs real time")
	}
	scfg := service.DefaultConfig()
	scfg.PopConfig.TargetConcurrent = 60
	scfg.HLSViewerThreshold = 1 // any watched broadcast goes via HLS
	scfg.SegmentTarget = 700 * time.Millisecond
	svc, err := service.Start(scfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	rec, err := WatchOnce(WireConfig{
		APIBaseURL: svc.APIBaseURL(),
		Session:    "wire-test-hls",
		WatchFor:   6 * time.Second,
		Device:     GalaxyS3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Protocol != "HLS" {
		t.Fatalf("protocol = %s", rec.Protocol)
	}
	if rec.Metrics.Delivered == 0 {
		t.Fatal("no segments delivered")
	}
	if rec.Meta.AvgStallSec != 0 {
		t.Error("HLS meta must not include stall durations")
	}
}
