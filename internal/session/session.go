// Package session automates broadcast viewing the way §2 describes: push
// the Teleport button, watch for exactly 60 seconds, record the playback
// statistics, repeat. Two tiers exist: the fast tier drives the transport
// simulators (internal/player) against the broadcast population and
// regenerates the full 4 615-session dataset in milliseconds; the wire
// tier (wire.go) watches a real broadcast over real RTMP/HLS connections.
package session

import (
	"math/rand"
	"time"

	"periscope/internal/api"
	"periscope/internal/broadcastmodel"
	"periscope/internal/media"
	"periscope/internal/player"
)

// Device identifies the measurement phone. The paper's Welch t-tests found
// that only the frame rate differs significantly between the Galaxy S3 and
// S4 datasets; FPSScale models the S3's slightly lower decode rate.
type Device struct {
	Name     string
	FPSScale float64
}

// The two study devices.
var (
	GalaxyS3 = Device{Name: "galaxy-s3", FPSScale: 0.90}
	GalaxyS4 = Device{Name: "galaxy-s4", FPSScale: 1.0}
)

// Record is one completed viewing session.
type Record struct {
	BroadcastID   string
	Device        string
	Protocol      string
	BandwidthMbps float64 // 0 = unlimited (plotted as "100" in the paper)
	Viewers       int
	MeasuredFPS   float64
	Metrics       player.Metrics
	// Meta is the playbackMeta upload the app would issue: note HLS
	// reports only the stall count.
	Meta api.PlaybackMeta
}

// CampaignConfig drives a fast-tier campaign.
type CampaignConfig struct {
	// UnlimitedSessions is the no-limit session count (paper: 3 382 — of
	// which 1 796 were RTMP and 1 586 HLS).
	UnlimitedSessions int
	// LimitsMbps are the tc bandwidth limits; SessionsPerLimit sessions
	// are run at each (paper: 18-91).
	LimitsMbps       []float64
	SessionsPerLimit int
	// HLSViewerThreshold is the protocol-selection boundary (~100).
	HLSViewerThreshold int
	// SessionDur is the fixed watch time.
	SessionDur time.Duration
	// PopTarget is the concurrent population size.
	PopTarget int
	Seed      int64
}

// DefaultCampaignConfig mirrors the paper's dataset shape.
func DefaultCampaignConfig() CampaignConfig {
	return CampaignConfig{
		UnlimitedSessions:  3382,
		LimitsMbps:         []float64{0.5, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		SessionsPerLimit:   60,
		HLSViewerThreshold: 100,
		SessionDur:         60 * time.Second,
		PopTarget:          2000,
		Seed:               1,
	}
}

// Campaign runs the automated-viewing study in the fast tier.
type Campaign struct {
	cfg CampaignConfig
	pop *broadcastmodel.Population
	rng *rand.Rand
}

// NewCampaign builds the population and RNG.
func NewCampaign(cfg CampaignConfig) *Campaign {
	pc := broadcastmodel.DefaultConfig()
	pc.TargetConcurrent = cfg.PopTarget
	pc.Seed = cfg.Seed
	pop := broadcastmodel.New(pc, time.Date(2016, 4, 11, 8, 0, 0, 0, time.UTC))
	return &Campaign{cfg: cfg, pop: pop, rng: rand.New(rand.NewSource(cfg.Seed ^ 0x7e1e))}
}

// Population exposes the underlying population (analysis, tests).
func (c *Campaign) Population() *broadcastmodel.Population { return c.pop }

// watchOne teleports to a broadcast and simulates one session at the given
// bandwidth limit (0 = unlimited).
func (c *Campaign) watchOne(limitMbps float64, device Device) (Record, bool) {
	b := c.pop.Teleport(c.rng)
	if b == nil {
		return Record{}, false
	}
	now := c.pop.Now()
	viewers := b.ViewersAt(now)

	encRng := rand.New(rand.NewSource(b.Seed))
	enc := media.RandomEncoderConfig(encRng)
	enc.EmitPayload = false

	joinPos := now.Sub(b.Start)
	if joinPos < 0 {
		joinPos = 0
	}
	cfg := player.SimConfig{
		BandwidthBps:       limitMbps * 1e6,
		RTT:                30*time.Millisecond + time.Duration(c.rng.Intn(40))*time.Millisecond,
		SessionDur:         c.cfg.SessionDur,
		Encoder:            enc,
		JoinPos:            joinPos,
		Viewers:            viewers,
		ChatVisible:        true,
		SegmentTarget:      3600 * time.Millisecond,
		PackagingDelay:     400 * time.Millisecond,
		PlaylistTTL:        2 * time.Second,
		LiveEdgeOffset:     2,
		BroadcasterGapProb: 0.22,
		// Imperfect NTP sync: small residual error, sometimes negative.
		SyncErr: time.Duration(c.rng.NormFloat64() * float64(40*time.Millisecond)),
		Seed:    c.rng.Int63(),
	}

	var m player.Metrics
	if viewers >= c.cfg.HLSViewerThreshold {
		m = player.SimulateHLS(cfg)
	} else {
		m = player.SimulateRTMP(cfg)
	}

	rec := Record{
		BroadcastID:   b.ID,
		Device:        device.Name,
		Protocol:      m.Protocol,
		BandwidthMbps: limitMbps,
		Viewers:       viewers,
		MeasuredFPS:   enc.FrameRate*device.FPSScale + c.rng.NormFloat64()*0.5,
		Metrics:       m,
		Meta:          metaFor(b.ID, m),
	}

	// The next Teleport happens after the 60 s watch plus app overhead.
	c.pop.Advance(c.cfg.SessionDur + 15*time.Second)
	return rec, true
}

// metaFor builds the playbackMeta upload: HLS sessions report only the
// number of stall events (§2).
func metaFor(id string, m player.Metrics) api.PlaybackMeta {
	meta := api.PlaybackMeta{
		BroadcastID:  id,
		Protocol:     m.Protocol,
		NStallEvents: m.StallCount,
		PlayTimeSec:  m.PlayTime.Seconds(),
	}
	if m.Protocol == "RTMP" {
		meta.AvgStallSec = m.AvgStall.Seconds()
		meta.StallTimeSec = m.StallTime.Seconds()
		meta.PlaybackDelaySec = m.PlaybackLatency.Seconds()
	}
	return meta
}

// Run executes the whole campaign and returns every session record.
func (c *Campaign) Run() []Record {
	var out []Record
	devices := []Device{GalaxyS3, GalaxyS4}
	for i := 0; i < c.cfg.UnlimitedSessions; i++ {
		if rec, ok := c.watchOne(0, devices[i%2]); ok {
			out = append(out, rec)
		}
	}
	for _, limit := range c.cfg.LimitsMbps {
		for i := 0; i < c.cfg.SessionsPerLimit; i++ {
			if rec, ok := c.watchOne(limit, devices[i%2]); ok {
				out = append(out, rec)
			}
		}
	}
	return out
}

// Filter returns the records matching protocol ("" = all) and bandwidth
// (-1 = all, 0 = unlimited).
func Filter(recs []Record, protocol string, limitMbps float64) []Record {
	var out []Record
	for _, r := range recs {
		if protocol != "" && r.Protocol != protocol {
			continue
		}
		if limitMbps >= 0 && r.BandwidthMbps != limitMbps {
			continue
		}
		out = append(out, r)
	}
	return out
}
