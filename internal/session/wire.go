package session

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"periscope/internal/api"
	"periscope/internal/avc"
	"periscope/internal/flv"
	"periscope/internal/hls"
	"periscope/internal/mpegts"
	"periscope/internal/netem"
	"periscope/internal/player"
	"periscope/internal/rtmp"
)

// WireConfig drives a single wire-tier viewing session against a running
// service (internal/service or any RTMP/HLS endpoint speaking the same
// API).
type WireConfig struct {
	APIBaseURL string
	Session    string
	// WatchFor is the viewing duration (the study used 60 s; tests use
	// a few seconds).
	WatchFor time.Duration
	// Shaper, if non-nil, applies the tc-style bandwidth limit.
	Shaper *netem.Shaper
	Device Device
}

// WatchOnce performs one Teleport viewing session over real connections
// and returns the session record. The playback metrics come from the same
// buffer engine as the fast tier, fed with real arrival events; capture
// times are recovered from the broadcaster's embedded NTP timestamp SEIs.
func WatchOnce(cfg WireConfig) (Record, error) {
	if cfg.WatchFor <= 0 {
		cfg.WatchFor = 60 * time.Second
	}
	httpClient := netHTTPClient(cfg.Shaper)
	// Wire sessions run in real time, so the client's 429-aware retry
	// (jittered backoff honouring Retry-After) rides out the rate limiter
	// instead of failing the session.
	apiCli := api.NewClient(cfg.APIBaseURL, cfg.Session, httpClient).WithRetry(api.DefaultRetryPolicy())

	id, err := apiCli.Teleport()
	if err != nil {
		return Record{}, fmt.Errorf("session: teleport: %w", err)
	}
	acc, err := apiCli.AccessVideo(id)
	if err != nil {
		return Record{}, fmt.Errorf("session: accessVideo: %w", err)
	}

	var chunks []player.Chunk
	var engine player.Engine
	start := time.Now()
	switch acc.Protocol {
	case "RTMP":
		engine = player.DefaultRTMPEngine()
		chunks, err = watchRTMP(acc, cfg, start)
	case "HLS":
		engine = player.DefaultHLSEngine(hls.DefaultSegmentTarget)
		chunks, err = watchHLS(acc, cfg, start)
	default:
		return Record{}, fmt.Errorf("session: unknown protocol %q", acc.Protocol)
	}
	if err != nil {
		return Record{}, err
	}

	m := engine.Run(chunks, cfg.WatchFor)
	m.Protocol = acc.Protocol
	rec := Record{
		BroadcastID: id,
		Device:      cfg.Device.Name,
		Protocol:    acc.Protocol,
		Viewers:     acc.NumWatching,
		Metrics:     m,
		Meta:        metaFor(id, m),
	}
	if cfg.Shaper != nil {
		rec.BandwidthMbps = cfg.Shaper.DownlinkBps / 1e6
	}
	// Report the stats back, exactly as the app does at session end.
	if err := apiCli.PlaybackMeta(rec.Meta); err != nil {
		return rec, fmt.Errorf("session: playbackMeta upload: %w", err)
	}
	return rec, nil
}

func netHTTPClient(s *netem.Shaper) *http.Client {
	if s == nil {
		return nil
	}
	return s.HTTPClient()
}

// watchRTMP plays the stream over RTMP and converts received messages to
// player chunks.
func watchRTMP(acc api.AccessVideoResponse, cfg WireConfig, start time.Time) ([]player.Chunk, error) {
	dial := net.Dial
	if cfg.Shaper != nil {
		dial = cfg.Shaper.Dialer()
	}
	nc, err := dial("tcp", acc.RTMPAddr)
	if err != nil {
		return nil, err
	}
	cli, err := rtmp.NewClientConn(nc, "live", "rtmp://"+acc.RTMPServer+":80/live")
	if err != nil {
		nc.Close()
		return nil, err
	}
	defer cli.Close()
	if err := cli.Play(acc.StreamName); err != nil {
		return nil, err
	}

	deadline := start.Add(cfg.WatchFor)
	nc.SetReadDeadline(deadline)

	var chunks []player.Chunk
	// Capture-clock anchoring from SEI timestamps: capture(pts) =
	// seiWall + (pts − seiPTS).
	var seiWall time.Time
	var seiPTS time.Duration
	haveSEI := false
	var lastPTS time.Duration
	havePrev := false

	for time.Now().Before(deadline) {
		msg, err := cli.ReadMessage()
		if err != nil {
			break // deadline or stream end
		}
		if msg.TypeID != rtmp.TypeVideo {
			continue
		}
		vt, err := flv.ParseVideoTagData(msg.Payload)
		if err != nil || vt.PacketType != flv.AVCNALU {
			continue
		}
		arrival := time.Since(start)
		dts := time.Duration(msg.Timestamp) * time.Millisecond
		pts := dts + time.Duration(vt.CompositionTime)*time.Millisecond
		if units, err := avc.ParseAVCC(vt.Data); err == nil {
			if ts, ok := avc.FindTimestamp(units); ok {
				seiWall = ts
				seiPTS = pts
				haveSEI = true
			}
		}
		if !havePrev {
			// First frame anchors the media clock; it carries no span yet.
			havePrev = true
			lastPTS = pts
			continue
		}
		if pts <= lastPTS {
			continue // out-of-order delivery; no new media span
		}
		capture := arrival // fallback when no SEI seen yet
		if haveSEI {
			capture = seiWall.Add(pts - seiPTS).Sub(start)
		}
		chunks = append(chunks, player.Chunk{
			Arrival:    arrival,
			MediaStart: lastPTS,
			MediaEnd:   pts,
			CaptureEnd: capture,
		})
		lastPTS = pts
	}
	return chunks, nil
}

// watchHLS fetches segments and converts them to player chunks, pulling
// capture times from the SEI timestamps inside each segment.
func watchHLS(acc api.AccessVideoResponse, cfg WireConfig, start time.Time) ([]player.Chunk, error) {
	var chunks []player.Chunk
	client := hls.NewClient(hls.ClientConfig{
		BaseURL:     acc.HLSBaseURL,
		Parallelism: 2,
		HTTPClient:  netHTTPClient(cfg.Shaper),
		OnSegment: func(fs hls.FetchedSegment) {
			ch, ok := segmentToChunk(fs, start)
			if ok {
				chunks = append(chunks, ch)
			}
		},
	})
	ctx, cancel := context.WithDeadline(context.Background(), start.Add(cfg.WatchFor))
	defer cancel()
	if _, err := client.Run(ctx); err != nil {
		return chunks, err
	}
	return chunks, nil
}

// segmentToChunk demuxes one MPEG-TS segment into a player chunk.
func segmentToChunk(fs hls.FetchedSegment, start time.Time) (player.Chunk, bool) {
	units, err := mpegts.DemuxAll(fs.Data)
	if err != nil {
		return player.Chunk{}, false
	}
	var minPTS, maxPTS int64 = -1, -1
	var seiWall time.Time
	var seiPTS int64 = -1
	for _, u := range units {
		if u.PID != mpegts.PIDVideo {
			continue
		}
		if minPTS == -1 || u.PTS < minPTS {
			minPTS = u.PTS
		}
		if u.PTS > maxPTS {
			maxPTS = u.PTS
		}
		if seiPTS == -1 {
			if nals, err := avc.ParseAnnexB(u.Data); err == nil {
				if ts, ok := avc.FindTimestamp(nals); ok {
					seiWall = ts
					seiPTS = u.PTS
				}
			}
		}
	}
	if minPTS == -1 {
		return player.Chunk{}, false
	}
	mediaStart := mpegts.FromTicks(minPTS)
	mediaEnd := mpegts.FromTicks(maxPTS)
	arrival := fs.FetchEnd.Sub(start)
	capture := arrival
	if seiPTS >= 0 {
		capture = seiWall.Add(mpegts.FromTicks(maxPTS - seiPTS)).Sub(start)
	}
	return player.Chunk{
		Arrival:    arrival,
		MediaStart: mediaStart,
		MediaEnd:   mediaEnd,
		CaptureEnd: capture,
	}, true
}
