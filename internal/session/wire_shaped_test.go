package session

import (
	"testing"
	"time"

	"periscope/internal/netem"
	"periscope/internal/service"
)

// TestWireSessionShaped applies a tc-style bandwidth limit to a real wire
// session — the §2 methodology end to end: teleport over a shaped HTTP
// client, RTMP over a shaped TCP connection, playbackMeta upload at the
// end.
func TestWireSessionShaped(t *testing.T) {
	if testing.Short() {
		t.Skip("wire session needs real time")
	}
	scfg := service.DefaultConfig()
	scfg.PopConfig.TargetConcurrent = 60
	scfg.HLSViewerThreshold = 1 << 30 // RTMP path
	svc, err := service.Start(scfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// A generous limit (video fits easily): the session must still play.
	rec, err := WatchOnce(WireConfig{
		APIBaseURL: svc.APIBaseURL(),
		Session:    "shaped",
		WatchFor:   5 * time.Second,
		Shaper:     netem.NewShaper(netem.Mbps(4)),
		Device:     GalaxyS4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Metrics.Delivered == 0 {
		t.Fatal("no media over shaped link")
	}
	if rec.BandwidthMbps != 4 {
		t.Errorf("recorded limit = %v", rec.BandwidthMbps)
	}
	if rec.Metrics.PlayTime == 0 {
		t.Error("no playback at 4 Mbps")
	}
}

// TestWireSessionHeavilyShaped verifies that a link far below the video
// bitrate degrades the session (join dominates or stalls appear), the
// Fig. 3/4 mechanism on the real wire.
func TestWireSessionHeavilyShaped(t *testing.T) {
	if testing.Short() {
		t.Skip("wire session needs real time")
	}
	scfg := service.DefaultConfig()
	scfg.PopConfig.TargetConcurrent = 60
	scfg.HLSViewerThreshold = 1 << 30
	svc, err := service.Start(scfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	rec, err := WatchOnce(WireConfig{
		APIBaseURL: svc.APIBaseURL(),
		Session:    "throttled",
		WatchFor:   5 * time.Second,
		Shaper:     netem.NewShaper(100_000), // 100 kbps << video bitrate
		Device:     GalaxyS3,
	})
	if err != nil {
		t.Fatal(err)
	}
	degraded := rec.Metrics.JoinTime > 2*time.Second ||
		rec.Metrics.StallCount > 0 ||
		rec.Metrics.PlayTime < 3*time.Second
	if !degraded {
		t.Errorf("100 kbps session suspiciously healthy: %+v", rec.Metrics)
	}
}

func TestFilterHelper(t *testing.T) {
	recs := []Record{
		{Protocol: "RTMP", BandwidthMbps: 0},
		{Protocol: "HLS", BandwidthMbps: 0},
		{Protocol: "RTMP", BandwidthMbps: 2},
	}
	if n := len(Filter(recs, "RTMP", -1)); n != 2 {
		t.Errorf("RTMP all = %d", n)
	}
	if n := len(Filter(recs, "", 0)); n != 2 {
		t.Errorf("unlimited all = %d", n)
	}
	if n := len(Filter(recs, "RTMP", 2)); n != 1 {
		t.Errorf("RTMP@2 = %d", n)
	}
}
