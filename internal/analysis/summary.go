package analysis

import (
	"fmt"
	"time"

	"periscope/internal/player"
	"periscope/internal/stats"
)

// MetricsSummary folds a cohort of per-viewer player.Metrics into the
// distribution figures the paper reports per condition (§5): join-latency
// quantiles, stall-ratio spread, and the single worst rebuffering
// interval anywhere in the cohort. Scenario SLO checks consume these
// instead of re-deriving quantiles per assertion.
type MetricsSummary struct {
	Sessions int

	JoinP50 time.Duration
	JoinP95 time.Duration
	JoinMax time.Duration

	StallRatioMean float64
	StallRatioP95  float64
	StallRatioMax  float64

	// LongestStall is the worst single stall across all sessions, the
	// metric outage scenarios bound.
	LongestStall time.Duration
	// StallCount is the total number of stall events across sessions.
	StallCount int
	// Delivered is the total number of media chunks across sessions.
	Delivered int
}

// SummarizeMetrics computes the cohort summary. An empty input yields a
// zero summary with Sessions == 0 (callers treat that as "no data", not
// "perfect QoE").
func SummarizeMetrics(ms []player.Metrics) MetricsSummary {
	var s MetricsSummary
	s.Sessions = len(ms)
	if len(ms) == 0 {
		return s
	}
	joins := make([]float64, 0, len(ms))
	ratios := make([]float64, 0, len(ms))
	for _, m := range ms {
		joins = append(joins, m.JoinTime.Seconds())
		ratios = append(ratios, m.StallRatio)
		if m.JoinTime > s.JoinMax {
			s.JoinMax = m.JoinTime
		}
		if m.StallRatio > s.StallRatioMax {
			s.StallRatioMax = m.StallRatio
		}
		if m.LongestStall > s.LongestStall {
			s.LongestStall = m.LongestStall
		}
		s.StallCount += m.StallCount
		s.Delivered += m.Delivered
	}
	s.JoinP50 = secondsDur(stats.Quantile(joins, 0.5))
	s.JoinP95 = secondsDur(stats.Quantile(joins, 0.95))
	s.StallRatioMean = stats.Mean(ratios)
	s.StallRatioP95 = stats.Quantile(ratios, 0.95)
	return s
}

func secondsDur(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// CohortSummary names one cohort's summary for table rendering.
type CohortSummary struct {
	Label   string
	Summary MetricsSummary
}

// SummaryTable renders cohort summaries side by side — one row per
// cohort, quantiles as columns — for scenario reports and CI logs.
func SummaryTable(id, title string, cohorts []CohortSummary) Table {
	t := Table{
		ID:     id,
		Title:  title,
		Header: []string{"cohort", "sessions", "join p50", "join p95", "stall mean", "stall p95", "longest stall", "stalls"},
	}
	for _, c := range cohorts {
		s := c.Summary
		t.Rows = append(t.Rows, []string{
			c.Label,
			fmt.Sprintf("%d", s.Sessions),
			fmtDur(s.JoinP50),
			fmtDur(s.JoinP95),
			fmt.Sprintf("%.3f", s.StallRatioMean),
			fmt.Sprintf("%.3f", s.StallRatioP95),
			fmtDur(s.LongestStall),
			fmt.Sprintf("%d", s.StallCount),
		})
	}
	return t
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}
