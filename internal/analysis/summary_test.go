package analysis

import (
	"strings"
	"testing"
	"time"

	"periscope/internal/player"
)

func ms(d int) time.Duration { return time.Duration(d) * time.Millisecond }

func TestSummarizeMetrics(t *testing.T) {
	mk := func(join, longest int, ratio float64, stalls, delivered int) player.Metrics {
		return player.Metrics{
			JoinTime:     ms(join),
			LongestStall: ms(longest),
			StallRatio:   ratio,
			StallCount:   stalls,
			Delivered:    delivered,
		}
	}

	cases := []struct {
		name string
		in   []player.Metrics
		want MetricsSummary
	}{
		{
			name: "empty",
			in:   nil,
			want: MetricsSummary{},
		},
		{
			name: "single session",
			in:   []player.Metrics{mk(800, 1200, 0.25, 2, 30)},
			want: MetricsSummary{
				Sessions: 1,
				JoinP50:  ms(800), JoinP95: ms(800), JoinMax: ms(800),
				StallRatioMean: 0.25, StallRatioP95: 0.25, StallRatioMax: 0.25,
				LongestStall: ms(1200), StallCount: 2, Delivered: 30,
			},
		},
		{
			name: "uniform cohort collapses to the common value",
			in: []player.Metrics{
				mk(500, 0, 0, 0, 10),
				mk(500, 0, 0, 0, 10),
				mk(500, 0, 0, 0, 10),
			},
			want: MetricsSummary{
				Sessions: 3,
				JoinP50:  ms(500), JoinP95: ms(500), JoinMax: ms(500),
				Delivered: 30,
			},
		},
		{
			name: "spread cohort: p50 between extremes, p95 near max, maxes exact",
			in: []player.Metrics{
				mk(100, 0, 0.0, 0, 5),
				mk(200, 300, 0.1, 1, 5),
				mk(300, 600, 0.2, 2, 5),
				mk(400, 900, 0.3, 3, 5),
				mk(2000, 4000, 0.9, 7, 5),
			},
			want: MetricsSummary{
				Sessions: 5,
				JoinP50:  ms(300), JoinMax: ms(2000),
				StallRatioMean: 0.3, StallRatioMax: 0.9,
				LongestStall: ms(4000), StallCount: 13, Delivered: 25,
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := SummarizeMetrics(tc.in)
			if got.Sessions != tc.want.Sessions {
				t.Errorf("Sessions = %d, want %d", got.Sessions, tc.want.Sessions)
			}
			if got.JoinP50 != tc.want.JoinP50 {
				t.Errorf("JoinP50 = %v, want %v", got.JoinP50, tc.want.JoinP50)
			}
			if tc.want.JoinP95 != 0 && got.JoinP95 != tc.want.JoinP95 {
				t.Errorf("JoinP95 = %v, want %v", got.JoinP95, tc.want.JoinP95)
			}
			if got.JoinMax != tc.want.JoinMax {
				t.Errorf("JoinMax = %v, want %v", got.JoinMax, tc.want.JoinMax)
			}
			if diff := got.StallRatioMean - tc.want.StallRatioMean; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("StallRatioMean = %v, want %v", got.StallRatioMean, tc.want.StallRatioMean)
			}
			if got.StallRatioMax != tc.want.StallRatioMax {
				t.Errorf("StallRatioMax = %v, want %v", got.StallRatioMax, tc.want.StallRatioMax)
			}
			if got.LongestStall != tc.want.LongestStall {
				t.Errorf("LongestStall = %v, want %v", got.LongestStall, tc.want.LongestStall)
			}
			if got.StallCount != tc.want.StallCount {
				t.Errorf("StallCount = %d, want %d", got.StallCount, tc.want.StallCount)
			}
			if got.Delivered != tc.want.Delivered {
				t.Errorf("Delivered = %d, want %d", got.Delivered, tc.want.Delivered)
			}
		})
	}
}

func TestSummarizeMetricsQuantileOrdering(t *testing.T) {
	// Quantiles of a spread cohort must be monotone: p50 <= p95 <= max,
	// and p95 must sit above the bulk when one tail session dominates.
	var in []player.Metrics
	for i := 0; i < 19; i++ {
		in = append(in, player.Metrics{JoinTime: ms(100), StallRatio: 0.01})
	}
	in = append(in, player.Metrics{JoinTime: ms(5000), StallRatio: 0.8})
	s := SummarizeMetrics(in)
	if !(s.JoinP50 <= s.JoinP95 && s.JoinP95 <= s.JoinMax) {
		t.Errorf("join quantiles not monotone: p50=%v p95=%v max=%v", s.JoinP50, s.JoinP95, s.JoinMax)
	}
	if s.JoinP50 != ms(100) {
		t.Errorf("JoinP50 = %v, want 100ms (bulk)", s.JoinP50)
	}
	if s.JoinP95 <= ms(100) {
		t.Errorf("JoinP95 = %v, want above the bulk with a 5%% tail", s.JoinP95)
	}
	if !(s.StallRatioP95 <= s.StallRatioMax) {
		t.Errorf("stall quantiles not monotone: p95=%v max=%v", s.StallRatioP95, s.StallRatioMax)
	}
}

func TestSummaryTableRenders(t *testing.T) {
	tab := SummaryTable("scenario-qoe", "per-cohort QoE", []CohortSummary{
		{Label: "wifi", Summary: SummarizeMetrics([]player.Metrics{{JoinTime: ms(120)}})},
		{Label: "3g", Summary: SummarizeMetrics([]player.Metrics{{JoinTime: ms(900), StallRatio: 0.4, StallCount: 3, LongestStall: ms(2500)}})},
	})
	out := tab.Render()
	for _, want := range []string{"cohort", "wifi", "3g", "join p95", "longest stall", "0.400", "2.5s"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
