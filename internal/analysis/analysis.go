// Package analysis assembles the paper's tables and figures from the
// measurement outputs: it converts crawl records, session records, media
// reports and power scenarios into plot-ready series, and renders them as
// ASCII or CSV. Every figure builder corresponds to one artefact of the
// paper's evaluation; the benchmark harness in the repository root invokes
// these builders to regenerate each figure.
package analysis

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"periscope/internal/crawler"
	"periscope/internal/geo"
	"periscope/internal/mediaanalysis"
	"periscope/internal/power"
	"periscope/internal/service"
	"periscope/internal/session"
	"periscope/internal/stats"
)

// Series is one named line/point set of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a plot-ready artefact.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// CSV renders the figure as comma-separated series blocks.
func (f Figure) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", f.ID, f.Title)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "# series: %s (%s vs %s)\n", s.Name, f.XLabel, f.YLabel)
		for i := range s.X {
			fmt.Fprintf(&b, "%g,%g\n", s.X[i], s.Y[i])
		}
	}
	return b.String()
}

// ASCII renders a coarse text plot (good enough to eyeball shapes in CI
// logs and EXPERIMENTS.md).
func (f Figure) ASCII() string {
	const width, height = 64, 16
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	var minX, maxX, minY, maxY float64
	first := true
	for _, s := range f.Series {
		for i := range s.X {
			if first {
				minX, maxX, minY, maxY = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			minX = min(minX, s.X[i])
			maxX = max(maxX, s.X[i])
			minY = min(minY, s.Y[i])
			maxY = max(maxY, s.Y[i])
		}
	}
	if first || maxX == minX || maxY == minY {
		b.WriteString("(no data)\n")
		return b.String()
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := []byte{'*', 'o', '+', 'x', '#', '@'}
	for si, s := range f.Series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			px := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			py := int((s.Y[i] - minY) / (maxY - minY) * float64(height-1))
			grid[height-1-py][px] = mark
		}
	}
	for _, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "   x: %s [%.3g .. %.3g]   y: %s [%.3g .. %.3g]\n",
		f.XLabel, minX, maxX, f.YLabel, minY, maxY)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "   %c = %s\n", marks[si%len(marks)], s.Name)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "   note: %s\n", n)
	}
	return b.String()
}

// Table is a textual table artefact (Table 1, Fig. 7).
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// Render formats the table with aligned columns.
func (t Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "| %-*s ", widths[i], c)
		}
		b.WriteString("|\n")
	}
	writeRow(t.Header)
	for i, w := range widths {
		fmt.Fprintf(&b, "|%s", strings.Repeat("-", w+2))
		_ = i
	}
	b.WriteString("|\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// cdfSeries converts samples into CDF points.
func cdfSeries(name string, samples []float64) Series {
	c := stats.NewCDF(samples)
	xs, fs := c.Points()
	return Series{Name: name, X: xs, Y: fs}
}

// Table1 reproduces Table 1: the relevant Periscope API commands.
func Table1() Table {
	return Table{
		ID:     "Table 1",
		Title:  "Relevant Periscope API commands",
		Header: []string{"API request", "request contents", "response contents"},
		Rows: [][]string{
			{"mapGeoBroadcastFeed", "Coordinates of a rectangle shaped geographical area", "List of broadcasts located inside the area"},
			{"getBroadcasts", "List of 13-character broadcast IDs", "Descriptions of broadcast IDs (incl. nb of viewers)"},
			{"playbackMeta", "Playback statistics", "nothing"},
		},
	}
}

// Figure1 builds the cumulative-discovery curves from deep crawls: (a)
// absolute counts, (b) both axes normalised to percent.
func Figure1(crawls []*crawler.DeepResult) (abs, rel Figure) {
	abs = Figure{ID: "Figure 1(a)", Title: "Cumulative broadcasts discovered per crawled area",
		XLabel: "areas queried", YLabel: "live broadcasts found"}
	rel = Figure{ID: "Figure 1(b)", Title: "Cumulative broadcasts discovered (relative)",
		XLabel: "areas queried (%)", YLabel: "live broadcasts found (%)"}
	for i, c := range crawls {
		name := fmt.Sprintf("crawl %d", i+1)
		var xs, ys, xr, yr []float64
		total := float64(c.TotalFound())
		n := float64(len(c.Cumulative))
		for j, v := range c.Cumulative {
			xs = append(xs, float64(j+1))
			ys = append(ys, float64(v))
			xr = append(xr, float64(j+1)/n*100)
			yr = append(yr, float64(v)/total*100)
		}
		abs.Series = append(abs.Series, Series{Name: name, X: xs, Y: ys})
		rel.Series = append(rel.Series, Series{Name: name, X: xr, Y: yr})
		abs.Notes = append(abs.Notes, fmt.Sprintf("%s: %d areas, %d broadcasts, top-half share %.0f%%",
			name, len(c.Areas), c.TotalFound(), c.TopAreaShare(0.5)*100))
	}
	return abs, rel
}

// Figure2a builds the duration and average-viewer CDFs from a targeted
// crawl (x in minutes / viewers, log-scaled by the caller's plotting).
func Figure2a(records []*crawler.TrackRecord) Figure {
	var durations, viewers []float64
	for _, r := range records {
		d := r.Duration().Minutes()
		if d > 0 {
			durations = append(durations, d)
		}
		if len(r.ViewerSamples) > 0 {
			viewers = append(viewers, r.AvgViewers())
		}
	}
	f := Figure{ID: "Figure 2(a)", Title: "Broadcast duration and average viewers",
		XLabel: "duration (min) / avg viewers", YLabel: "fraction of broadcasts"}
	f.Series = append(f.Series, cdfSeries("duration", durations), cdfSeries("viewers", viewers))
	f.Notes = append(f.Notes,
		fmt.Sprintf("median duration %.1f min", stats.Median(durations)),
		fmt.Sprintf("share of tracked broadcasts with <20 avg viewers: %.0f%%",
			fracBelow(viewers, 20)*100))
	return f
}

func fracBelow(xs []float64, bound float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x < bound {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Figure2b builds average viewers per broadcast against the broadcaster's
// local start hour.
func Figure2b(records []*crawler.TrackRecord) Figure {
	sums := make([]float64, 24)
	counts := make([]float64, 24)
	for _, r := range records {
		if len(r.ViewerSamples) == 0 || !r.Desc.LocationDisclosed {
			continue
		}
		utcHour := float64(r.StartTime.UTC().Hour()) + float64(r.StartTime.UTC().Minute())/60
		lh := int(geo.LocalHour(utcHour, r.Desc.Longitude))
		sums[lh] += r.AvgViewers()
		counts[lh]++
	}
	var xs, ys []float64
	for h := 0; h < 24; h++ {
		if counts[h] == 0 {
			continue
		}
		xs = append(xs, float64(h))
		ys = append(ys, sums[h]/counts[h])
	}
	return Figure{ID: "Figure 2(b)", Title: "Average viewers vs local start hour",
		XLabel: "local time of day (h)", YLabel: "avg viewers per broadcast",
		Series: []Series{{Name: "viewers", X: xs, Y: ys}}}
}

// Figure3a builds the stall-ratio CDF for unlimited RTMP sessions.
func Figure3a(recs []session.Record) Figure {
	var ratios []float64
	for _, r := range session.Filter(recs, "RTMP", 0) {
		ratios = append(ratios, r.Metrics.StallRatio)
	}
	f := Figure{ID: "Figure 3(a)", Title: "Stall ratio CDF, RTMP, no bandwidth limit",
		XLabel: "stall ratio", YLabel: "fraction of broadcasts",
		Series: []Series{cdfSeries("RTMP", ratios)}}
	f.Notes = append(f.Notes,
		fmt.Sprintf("%.0f%% of sessions stall-free", fracBelow(ratios, 1e-9)*100),
		fmt.Sprintf("share in the 0.05-0.09 single-stall band: %.0f%%",
			(fracBelow(ratios, 0.09)-fracBelow(ratios, 0.05))*100))
	return f
}

// boxplotFigure renders per-bandwidth boxplot statistics as five series
// (min/q1/med/q3/max whisker summary).
func boxplotFigure(id, title, ylabel string, recs []session.Record, metric func(session.Record) float64) Figure {
	groups := map[float64][]float64{}
	for _, r := range recs {
		groups[r.BandwidthMbps] = append(groups[r.BandwidthMbps], metric(r))
	}
	var limits []float64
	for l := range groups {
		limits = append(limits, l)
	}
	sort.Float64s(limits)
	names := []string{"whiskerLo", "q1", "median", "q3", "whiskerHi"}
	series := make([]Series, len(names))
	for i := range series {
		series[i].Name = names[i]
	}
	f := Figure{ID: id, Title: title, XLabel: "bandwidth limit (Mbps; 100=unlimited)", YLabel: ylabel}
	for _, l := range limits {
		b, err := stats.Boxplot(groups[l])
		if err != nil {
			continue
		}
		x := l
		if x == 0 {
			x = 100 // the paper plots the unlimited case as "100"
		}
		vals := []float64{b.WhiskerLo, b.Q1, b.Med, b.Q3, b.WhiskerHi}
		for i := range series {
			series[i].X = append(series[i].X, x)
			series[i].Y = append(series[i].Y, vals[i])
		}
	}
	f.Series = series
	return f
}

// Figure3b builds stall ratio vs bandwidth limit for RTMP sessions.
func Figure3b(recs []session.Record) Figure {
	return boxplotFigure("Figure 3(b)", "Stall ratio vs bandwidth limit (RTMP)", "stall ratio",
		session.Filter(recs, "RTMP", -1),
		func(r session.Record) float64 { return r.Metrics.StallRatio })
}

// Figure4a builds join time vs bandwidth limit.
func Figure4a(recs []session.Record) Figure {
	return boxplotFigure("Figure 4(a)", "Join time vs bandwidth limit (RTMP)", "join time (s)",
		session.Filter(recs, "RTMP", -1),
		func(r session.Record) float64 { return r.Metrics.JoinTime.Seconds() })
}

// Figure4b builds playback latency vs bandwidth limit.
func Figure4b(recs []session.Record) Figure {
	return boxplotFigure("Figure 4(b)", "Playback latency vs bandwidth limit (RTMP)", "playback latency (s)",
		session.Filter(recs, "RTMP", -1),
		func(r session.Record) float64 { return r.Metrics.PlaybackLatency.Seconds() })
}

// Figure5 builds the delivery-latency CDFs for unlimited sessions.
func Figure5(recs []session.Record) Figure {
	var rtmp, hls []float64
	for _, r := range session.Filter(recs, "", 0) {
		v := r.Metrics.DeliveryLatency.Seconds()
		if r.Protocol == "RTMP" {
			rtmp = append(rtmp, v)
		} else {
			hls = append(hls, v)
		}
	}
	f := Figure{ID: "Figure 5", Title: "Video delivery latency CDF",
		XLabel: "video delivery latency (s)", YLabel: "fraction of broadcasts",
		Series: []Series{cdfSeries("HLS", hls), cdfSeries("RTMP", rtmp)}}
	if len(rtmp) > 0 {
		f.Notes = append(f.Notes, fmt.Sprintf("RTMP p75 = %.3f s (paper: <0.3 s)", stats.Quantile(rtmp, 0.75)))
	}
	if len(hls) > 0 {
		f.Notes = append(f.Notes, fmt.Sprintf("HLS mean = %.2f s (paper: >5 s)", stats.Mean(hls)))
	}
	return f
}

// Figure6a builds the per-video bitrate CDFs from capture analysis.
func Figure6a(rtmp, hlsSegs []mediaanalysis.Report) Figure {
	toMbit := func(reps []mediaanalysis.Report) []float64 {
		var out []float64
		for _, r := range reps {
			out = append(out, r.BitrateBps/1e6)
		}
		return out
	}
	return Figure{ID: "Figure 6(a)", Title: "Video bitrate CDF",
		XLabel: "bitrate (Mbit/s)", YLabel: "fraction of videos",
		Series: []Series{cdfSeries("HLS", toMbit(hlsSegs)), cdfSeries("RTMP", toMbit(rtmp))}}
}

// Figure6b builds the QP-vs-bitrate scatter.
func Figure6b(rtmp, hlsSegs []mediaanalysis.Report) Figure {
	var xs, ys []float64
	for _, r := range append(append([]mediaanalysis.Report{}, rtmp...), hlsSegs...) {
		xs = append(xs, r.BitrateBps/1e6)
		ys = append(ys, r.AvgQP)
	}
	return Figure{ID: "Figure 6(b)", Title: "Average QP vs bitrate per captured video",
		XLabel: "bitrate (Mbit/s)", YLabel: "avg QP",
		Series: []Series{{Name: "videos", X: xs, Y: ys}}}
}

// Figure7 builds the power table for the standard scenarios.
func Figure7(dur time.Duration) Table {
	m := power.NewModel()
	paper := power.PaperValues()
	t := Table{
		ID:     "Figure 7",
		Title:  "Average power consumption (mW), model vs paper",
		Header: []string{"scenario", "WiFi model", "WiFi paper", "LTE model", "LTE paper"},
	}
	for _, s := range power.StandardScenarios(dur) {
		t.Rows = append(t.Rows, []string{
			s.Name,
			fmt.Sprintf("%.0f", m.Average(s, power.WiFi)),
			fmt.Sprintf("%.0f", paper[s.Name][power.WiFi]),
			fmt.Sprintf("%.0f", m.Average(s, power.LTE)),
			fmt.Sprintf("%.0f", paper[s.Name][power.LTE]),
		})
	}
	return t
}

// Section52Stats summarises the in-text §5.2 statistics.
func Section52Stats(rtmp, hlsSegs []mediaanalysis.Report, segDurs []time.Duration) Table {
	pattern := func(reps []mediaanalysis.Report, p mediaanalysis.FramePattern) float64 {
		if len(reps) == 0 {
			return 0
		}
		n := 0
		for _, r := range reps {
			if r.Pattern == p {
				n++
			}
		}
		return float64(n) / float64(len(reps)) * 100
	}
	var iPeriods []float64
	for _, r := range rtmp {
		if r.IPeriod > 0 {
			iPeriods = append(iPeriods, r.IPeriod)
		}
	}
	var durSecs []float64
	for _, d := range segDurs {
		durSecs = append(durSecs, d.Seconds())
	}
	in36 := 0
	for _, d := range durSecs {
		if d >= 3.4 && d <= 3.9 {
			in36++
		}
	}
	mode36 := 0.0
	if len(durSecs) > 0 {
		mode36 = float64(in36) / float64(len(durSecs)) * 100
	}
	return Table{
		ID:     "Section 5.2",
		Title:  "Audio/video stream statistics, measured vs paper",
		Header: []string{"statistic", "measured", "paper"},
		Rows: [][]string{
			{"RTMP IP-only share", fmt.Sprintf("%.1f%%", pattern(rtmp, mediaanalysis.PatternIP)), "20.0%"},
			{"HLS IP-only share", fmt.Sprintf("%.1f%%", pattern(hlsSegs, mediaanalysis.PatternIP)), "18.4%"},
			{"mean I-frame period", fmt.Sprintf("%.1f frames", stats.Mean(iPeriods)), "~36 frames"},
			{"segments at ~3.6 s", fmt.Sprintf("%.0f%%", mode36), "60%"},
			{"segment duration range", fmt.Sprintf("%.1f-%.1f s", stats.Quantile(durSecs, 0.02), stats.Quantile(durSecs, 0.98)), "3-6 s"},
			{"audio", "AAC 44.1 kHz VBR 32/64 kbps", "same"},
			{"resolution", "320x568 (either orientation)", "always 320x568"},
		},
	}
}

// DeliveryTable renders a service delivery-plane snapshot: the RTMP
// fan-out counters (drops, resyncs, hopeless disconnects) next to the CDN
// origin/edge fill metrics (peer vs origin fills, coalesced requests,
// playlist staleness, warm-ups, evictions) — the operational view of the
// geo-placed Fastly-style delivery the paper measured from the outside.
func DeliveryTable(snap service.Snapshot) Table {
	t := Table{
		ID:     "Delivery",
		Title:  "Service delivery-plane snapshot",
		Header: []string{"tier", "metric", "value"},
	}
	add := func(tier, metric, value string) {
		t.Rows = append(t.Rows, []string{tier, metric, value})
	}
	d := snap.Delivery
	add("fan-out", "live hubs", fmt.Sprintf("%d", d.LiveHubs))
	add("fan-out", "attached viewers", fmt.Sprintf("%d", d.Viewers))
	add("fan-out", "queue drops", fmt.Sprintf("%d", d.Drops))
	add("fan-out", "keyframe resyncs", fmt.Sprintf("%d", d.Resyncs))
	add("fan-out", "hopeless disconnects", fmt.Sprintf("%d", d.HopelessDisconnects))
	o := snap.Origin
	origin := "origin"
	if o.Region != "" {
		origin = fmt.Sprintf("origin (%s)", o.Region)
	}
	add(origin, "registered broadcasts", fmt.Sprintf("%d", o.Broadcasts))
	add(origin, "fill requests (playlist/segment)",
		fmt.Sprintf("%d (%d/%d)", o.Requests, o.PlaylistRequests, o.SegmentRequests))
	add(origin, "fill bytes", fmt.Sprintf("%d", o.Bytes))
	for _, p := range snap.POPs {
		tier := fmt.Sprintf("pop %d", p.Index)
		if p.Region != "" {
			tier = fmt.Sprintf("pop %d (%s)", p.Index, p.Region)
		}
		add(tier, "viewer requests", fmt.Sprintf("%d", p.Requests))
		add(tier, "viewer bytes", fmt.Sprintf("%d", p.Bytes))
		health := p.Health
		if health == "" {
			health = "ok"
		}
		add(tier, "health", fmt.Sprintf("%s (windowed fill error rate %.2f)", health, p.FillErrorRate))
		if p.OriginBreaker != "" {
			add(tier, "breakers", fmt.Sprintf("origin %s, %d peer open (%d trips, %d rejects)",
				p.OriginBreaker, p.PeerBreakersOpen, p.BreakerTrips, p.BreakerRejects))
		}
		add(tier, "fill retries / negative hits", fmt.Sprintf("%d / %d", p.FillRetries, p.NegativeHits))
		add(tier, "failover re-routes", fmt.Sprintf("%d", p.Reroutes))
		add(tier, "replicas / cached segments", fmt.Sprintf("%d / %d", p.Broadcasts, p.CachedSegments))
		add(tier, "segment fills", fmt.Sprintf("%d (%d B, %d errors)", p.Fills, p.FillBytes, p.FillErrors))
		add(tier, "peer fills / origin fills",
			fmt.Sprintf("%d / %d (%d probe misses, %d breaker skips)",
				p.PeerFills, p.OriginFills, p.PeerMisses, p.PeerSkips))
		add(tier, "peer serves", fmt.Sprintf("%d of %d probes (%d B out)",
			p.PeerServes, p.PeerRequests, p.PeerBytesOut))
		add(tier, "single-flight hits", fmt.Sprintf("%d", p.SingleFlightHits))
		add(tier, "warm-ups", fmt.Sprintf("%d", p.Warmups))
		add(tier, "fill cap waits", fmt.Sprintf("%d (cap %d)", p.FillCapWaits, p.FillCap))
		add(tier, "playlist refreshes / stale serves",
			fmt.Sprintf("%d / %d", p.PlaylistRefreshes, p.StaleServes))
		add(tier, "evictions", fmt.Sprintf("%d", p.Evictions))
		add(tier, "max playlist age", p.MaxPlaylistAge.String())
	}
	c := snap.Chat
	add("chat", "rooms (open / opened / closed)",
		fmt.Sprintf("%d / %d / %d", c.Rooms, c.RoomsOpened, c.RoomsClosed))
	add("chat", "members (current / joined)", fmt.Sprintf("%d / %d", c.Members, c.MembersJoined))
	add("chat", "messages in / out", fmt.Sprintf("%d / %d", c.MessagesIn, c.MessagesOut))
	add("chat", "hearts (taps -> deltas)", fmt.Sprintf("%d -> %d", c.HeartTaps, c.HeartDeltas))
	add("chat", "presence updates", fmt.Sprintf("%d", c.PresenceUpdates))
	add("chat", "queue drops / hopeless / sampled out",
		fmt.Sprintf("%d / %d / %d", c.Drops, c.HopelessDisconnects, c.SampledOut))
	add("chat", "send-queue depth", fmt.Sprintf("%d", c.SendQueueDepth))
	return t
}
