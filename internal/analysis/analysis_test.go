package analysis

import (
	"strings"
	"testing"
	"time"

	"periscope/internal/crawler"
	"periscope/internal/mediaanalysis"
	"periscope/internal/player"
	"periscope/internal/service"
	"periscope/internal/session"
)

func sampleRecords() []session.Record {
	var recs []session.Record
	for i := 0; i < 40; i++ {
		proto := "RTMP"
		if i%3 == 0 {
			proto = "HLS"
		}
		limit := 0.0
		if i%4 == 0 {
			limit = 2
		}
		recs = append(recs, session.Record{
			Protocol:      proto,
			BandwidthMbps: limit,
			Metrics: player.Metrics{
				Protocol:        proto,
				StallRatio:      float64(i%7) / 20,
				StallCount:      i % 3,
				JoinTime:        time.Duration(i%5) * time.Second,
				PlaybackLatency: time.Duration(2+i%4) * time.Second,
				DeliveryLatency: time.Duration(100+i*10) * time.Millisecond,
			},
		})
	}
	return recs
}

func TestTable1Renders(t *testing.T) {
	out := Table1().Render()
	for _, cmd := range []string{"mapGeoBroadcastFeed", "getBroadcasts", "playbackMeta"} {
		if !strings.Contains(out, cmd) {
			t.Errorf("Table 1 missing %s", cmd)
		}
	}
}

func TestFigure1FromDeepResults(t *testing.T) {
	res := &crawler.DeepResult{Cumulative: []int{40, 70, 90, 100}}
	abs, rel := Figure1([]*crawler.DeepResult{res})
	if len(abs.Series) != 1 || len(rel.Series) != 1 {
		t.Fatal("series missing")
	}
	if abs.Series[0].Y[3] != 100 {
		t.Errorf("absolute curve wrong: %v", abs.Series[0].Y)
	}
	if rel.Series[0].X[3] != 100 {
		t.Errorf("relative x must end at 100%%: %v", rel.Series[0].X)
	}
}

func TestFigure3aNotes(t *testing.T) {
	f := Figure3a(sampleRecords())
	if len(f.Series) != 1 || len(f.Series[0].X) == 0 {
		t.Fatal("empty figure")
	}
	if !strings.Contains(f.ASCII(), "Figure 3(a)") {
		t.Error("ASCII header missing")
	}
}

func TestBoxplotFigureGroups(t *testing.T) {
	f := Figure3b(sampleRecords())
	if len(f.Series) != 5 {
		t.Fatalf("want 5 boxplot series, got %d", len(f.Series))
	}
	// Unlimited must be plotted at x=100.
	foundUnlimited := false
	for _, x := range f.Series[2].X {
		if x == 100 {
			foundUnlimited = true
		}
	}
	if !foundUnlimited {
		t.Error("unlimited bucket not plotted at 100")
	}
	// Median <= Q3 everywhere.
	for i := range f.Series[2].Y {
		if f.Series[2].Y[i] > f.Series[3].Y[i] {
			t.Error("median above Q3")
		}
	}
}

func TestFigure5SeparatesProtocols(t *testing.T) {
	f := Figure5(sampleRecords())
	if len(f.Series) != 2 {
		t.Fatalf("want 2 series, got %d", len(f.Series))
	}
}

func TestFigure6FromReports(t *testing.T) {
	rtmp := []mediaanalysis.Report{{BitrateBps: 300_000, AvgQP: 28}, {BitrateBps: 900_000, AvgQP: 30}}
	hls := []mediaanalysis.Report{{BitrateBps: 280_000, AvgQP: 27}}
	a := Figure6a(rtmp, hls)
	b := Figure6b(rtmp, hls)
	if len(a.Series) != 2 {
		t.Error("6a needs HLS and RTMP series")
	}
	if len(b.Series[0].X) != 3 {
		t.Errorf("6b scatter has %d points", len(b.Series[0].X))
	}
}

func TestFigure7Table(t *testing.T) {
	tbl := Figure7(time.Minute)
	if len(tbl.Rows) != 7 {
		t.Fatalf("want 7 scenarios, got %d", len(tbl.Rows))
	}
	out := tbl.Render()
	if !strings.Contains(out, "video-hls-chat-on") || !strings.Contains(out, "broadcast") {
		t.Error("scenarios missing from table")
	}
}

func TestCSVAndASCIIRender(t *testing.T) {
	f := Figure{
		ID: "T", Title: "test", XLabel: "x", YLabel: "y",
		Series: []Series{{Name: "s", X: []float64{0, 1, 2}, Y: []float64{0, 1, 4}}},
	}
	csv := f.CSV()
	if !strings.Contains(csv, "1,1") {
		t.Errorf("csv = %q", csv)
	}
	ascii := f.ASCII()
	if !strings.Contains(ascii, "*") {
		t.Error("ascii plot has no points")
	}
	empty := Figure{ID: "E"}
	if !strings.Contains(empty.ASCII(), "no data") {
		t.Error("empty figure must say so")
	}
}

func TestSection52Table(t *testing.T) {
	rtmp := []mediaanalysis.Report{
		{Pattern: mediaanalysis.PatternIBP, IPeriod: 36},
		{Pattern: mediaanalysis.PatternIP, IPeriod: 36},
	}
	hls := []mediaanalysis.Report{{Pattern: mediaanalysis.PatternIBP}}
	durs := []time.Duration{3600 * time.Millisecond, 3700 * time.Millisecond, 5 * time.Second}
	tbl := Section52Stats(rtmp, hls, durs)
	out := tbl.Render()
	if !strings.Contains(out, "50.0%") { // RTMP IP-only share
		t.Errorf("table:\n%s", out)
	}
}

func TestDeliveryTableRenders(t *testing.T) {
	snap := service.Snapshot{
		Delivery: service.DeliverySnapshot{LiveHubs: 2, Viewers: 150, Drops: 12, Resyncs: 4, HopelessDisconnects: 1},
		Origin:   service.OriginSnapshot{Region: "us-east", Broadcasts: 2, Requests: 30, Bytes: 1 << 20, PlaylistRequests: 10, SegmentRequests: 20},
		POPs: []service.POPSnapshot{{
			Index: 0, Region: "us-west", Requests: 500, Bytes: 5 << 20, Broadcasts: 2, CachedSegments: 8,
			Fills: 20, FillBytes: 1 << 20, SingleFlightHits: 480,
			PeerFills: 14, PeerFillBytes: 700_000, PeerMisses: 2, PeerSkips: 3, OriginFills: 6,
			PeerRequests: 9, PeerServes: 7, PeerBytesOut: 350_000,
			Warmups: 2, FillCapWaits: 5, FillCap: 4,
			PlaylistRefreshes: 10, StaleServes: 3, Evictions: 6,
			MaxPlaylistAge: 1700 * time.Millisecond,
			Health:         "degraded", FillErrorRate: 0.25,
			OriginBreaker: "half-open", PeerBreakersOpen: 1,
			BreakerTrips: 2, BreakerRejects: 40,
			FillRetries: 8, NegativeHits: 5, Reroutes: 11,
		}},
	}
	out := DeliveryTable(snap).Render()
	for _, want := range []string{
		"hopeless disconnects", "single-flight hits", "stale serves",
		"max playlist age", "1.7s", "pop 0 (us-west)", "origin (us-east)",
		"peer fills / origin fills", "14 / 6 (2 probe misses, 3 breaker skips)",
		"peer serves", "7 of 9 probes", "warm-ups", "fill cap waits", "5 (cap 4)",
		"degraded (windowed fill error rate 0.25)",
		"origin half-open, 1 peer open (2 trips, 40 rejects)",
		"fill retries / negative hits", "8 / 5",
		"failover re-routes", "11",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("delivery table missing %q:\n%s", want, out)
		}
	}
}
