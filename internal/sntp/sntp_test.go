package sntp

import (
	"testing"
	"time"
)

func TestNTPConversionRoundTrip(t *testing.T) {
	ts := time.Date(2016, 11, 14, 10, 0, 0, 987654321, time.UTC)
	got := FromNTP(ToNTP(ts))
	if d := got.Sub(ts); d > time.Microsecond || d < -time.Microsecond {
		t.Errorf("drift %v", d)
	}
}

func TestPacketRoundTrip(t *testing.T) {
	p := Packet{
		Version:   4,
		Mode:      ModeServer,
		Stratum:   2,
		Reference: 0x1111111122222222,
		Originate: 0x3333333344444444,
		Receive:   0x5555555566666666,
		Transmit:  0x7777777788888888,
	}
	got, err := ParsePacket(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Errorf("got %+v, want %+v", got, p)
	}
}

func TestPacketShort(t *testing.T) {
	if _, err := ParsePacket(make([]byte, 10)); err == nil {
		t.Error("want error for short packet")
	}
}

func TestQueryAgainstLocalServer(t *testing.T) {
	srv := &Server{}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := Query(addr.String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Same machine: offset should be small and delay near zero.
	if res.Offset > 100*time.Millisecond || res.Offset < -100*time.Millisecond {
		t.Errorf("offset = %v", res.Offset)
	}
	if res.Delay < 0 || res.Delay > time.Second {
		t.Errorf("delay = %v", res.Delay)
	}
}

func TestQueryDetectsServerClockError(t *testing.T) {
	srv := &Server{ClockError: 500 * time.Millisecond}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := Query(addr.String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// The estimated offset should reflect the server's skewed clock.
	if res.Offset < 400*time.Millisecond || res.Offset > 600*time.Millisecond {
		t.Errorf("offset = %v, want ~500ms", res.Offset)
	}
}

func TestSyncModelProducesNegatives(t *testing.T) {
	// With a ~30ms sigma some samples must be negative — the effect that
	// produced negative delivery latencies in Fig. 5.
	m := NewSyncModel(1, 30*time.Millisecond, 0)
	neg := 0
	for i := 0; i < 1000; i++ {
		if m.SampleError() < 0 {
			neg++
		}
	}
	if neg < 300 || neg > 700 {
		t.Errorf("negative samples = %d/1000, want ~500", neg)
	}
}

func TestSyncModelBias(t *testing.T) {
	m := NewSyncModel(2, 0, 5*time.Millisecond)
	for i := 0; i < 10; i++ {
		if m.SampleError() != 5*time.Millisecond {
			t.Fatal("zero-sigma model must return the bias exactly")
		}
	}
}
