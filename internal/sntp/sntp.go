// Package sntp implements the Simple Network Time Protocol (RFC 4330
// subset) that the measurement setup depends on: the paper NTP-synchronised
// the capture machine against the same server pool as the Periscope app so
// that broadcaster-embedded NTP timestamps could be subtracted from packet
// receive times (§2, §5.1). A server, a client with standard offset/delay
// estimation, and an imperfect-sync model (the paper "sometimes observed
// small negative time differences indicating that the synchronization was
// imperfect") are provided.
package sntp

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// PacketSize is the size of an SNTP packet without authentication.
const PacketSize = 48

// ntpEpochOffset converts between the NTP era (1900) and Unix epoch (1970).
const ntpEpochOffset = 2208988800

// ToNTP converts a time.Time to 64-bit NTP format.
func ToNTP(t time.Time) uint64 {
	secs := uint64(t.Unix()) + ntpEpochOffset
	frac := uint64(t.Nanosecond()) << 32 / 1e9
	return secs<<32 | frac
}

// FromNTP converts a 64-bit NTP timestamp to time.Time (UTC).
func FromNTP(v uint64) time.Time {
	secs := int64(v>>32) - ntpEpochOffset
	nanos := (v & 0xFFFFFFFF) * 1e9 >> 32
	return time.Unix(secs, int64(nanos)).UTC()
}

// Packet is a parsed SNTP packet.
type Packet struct {
	LeapIndicator uint8
	Version       uint8
	Mode          uint8
	Stratum       uint8
	Reference     uint64
	Originate     uint64
	Receive       uint64
	Transmit      uint64
}

// Modes.
const (
	ModeClient = 3
	ModeServer = 4
)

// Marshal encodes the packet.
func (p Packet) Marshal() []byte {
	b := make([]byte, PacketSize)
	b[0] = p.LeapIndicator<<6 | p.Version<<3 | p.Mode
	b[1] = p.Stratum
	b[2] = 6    // poll
	b[3] = 0xEC // precision (~2^-20)
	binary.BigEndian.PutUint64(b[16:24], p.Reference)
	binary.BigEndian.PutUint64(b[24:32], p.Originate)
	binary.BigEndian.PutUint64(b[32:40], p.Receive)
	binary.BigEndian.PutUint64(b[40:48], p.Transmit)
	return b
}

// ParsePacket decodes an SNTP packet.
func ParsePacket(b []byte) (Packet, error) {
	if len(b) < PacketSize {
		return Packet{}, errors.New("sntp: short packet")
	}
	return Packet{
		LeapIndicator: b[0] >> 6,
		Version:       b[0] >> 3 & 0x7,
		Mode:          b[0] & 0x7,
		Stratum:       b[1],
		Reference:     binary.BigEndian.Uint64(b[16:24]),
		Originate:     binary.BigEndian.Uint64(b[24:32]),
		Receive:       binary.BigEndian.Uint64(b[32:40]),
		Transmit:      binary.BigEndian.Uint64(b[40:48]),
	}, nil
}

// Server answers SNTP queries over UDP. ClockError, if non-zero, offsets
// the server's notion of time — used to study the effect of imperfect
// synchronization on latency measurements.
type Server struct {
	ClockError time.Duration

	mu   sync.Mutex
	conn *net.UDPConn
}

// Start begins serving on addr (e.g. "127.0.0.1:0") and returns the bound
// address.
func (s *Server) Start(addr string) (*net.UDPAddr, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.conn = conn
	s.mu.Unlock()
	go s.loop(conn)
	return conn.LocalAddr().(*net.UDPAddr), nil
}

func (s *Server) loop(conn *net.UDPConn) {
	buf := make([]byte, 256)
	for {
		n, raddr, err := conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		req, err := ParsePacket(buf[:n])
		if err != nil || req.Mode != ModeClient {
			continue
		}
		now := time.Now().Add(s.ClockError)
		resp := Packet{
			Version:   4,
			Mode:      ModeServer,
			Stratum:   2,
			Reference: ToNTP(now.Add(-10 * time.Second)),
			Originate: req.Transmit,
			Receive:   ToNTP(now),
			Transmit:  ToNTP(now),
		}
		conn.WriteToUDP(resp.Marshal(), raddr)
	}
}

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn != nil {
		return s.conn.Close()
	}
	return nil
}

// QueryResult is the outcome of one SNTP exchange.
type QueryResult struct {
	Offset time.Duration // estimated local-clock error (add to local time)
	Delay  time.Duration // round-trip delay
}

// Query performs one SNTP exchange with the server at addr.
func Query(addr string, timeout time.Duration) (QueryResult, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return QueryResult{}, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))

	t0 := time.Now()
	req := Packet{Version: 4, Mode: ModeClient, Transmit: ToNTP(t0)}
	if _, err := conn.Write(req.Marshal()); err != nil {
		return QueryResult{}, err
	}
	buf := make([]byte, 256)
	n, err := conn.Read(buf)
	if err != nil {
		return QueryResult{}, err
	}
	t3 := time.Now()
	resp, err := ParsePacket(buf[:n])
	if err != nil {
		return QueryResult{}, err
	}
	if resp.Mode != ModeServer {
		return QueryResult{}, errors.New("sntp: unexpected mode in response")
	}
	t1 := FromNTP(resp.Receive)
	t2 := FromNTP(resp.Transmit)
	// Standard NTP offset/delay computation (RFC 4330 §5).
	offset := (t1.Sub(t0) + t2.Sub(t3)) / 2
	delay := t3.Sub(t0) - t2.Sub(t1)
	return QueryResult{Offset: offset, Delay: delay}, nil
}

// SyncModel represents the residual clock error of an NTP-synchronised
// host. The paper saw occasional small negative delivery latencies caused
// by exactly this residual error.
type SyncModel struct {
	rng *rand.Rand
	// Sigma is the standard deviation of the residual error.
	Sigma time.Duration
	// Bias is a constant residual offset.
	Bias time.Duration
}

// NewSyncModel returns a model with the given residual parameters.
func NewSyncModel(seed int64, sigma, bias time.Duration) *SyncModel {
	return &SyncModel{rng: rand.New(rand.NewSource(seed)), Sigma: sigma, Bias: bias}
}

// SampleError draws one clock-error sample; measured_latency = true_latency
// + SampleError() in the delivery-latency pipeline.
func (m *SyncModel) SampleError() time.Duration {
	return m.Bias + time.Duration(m.rng.NormFloat64()*float64(m.Sigma))
}
