// Package aac implements the AAC-LC framing observed in Periscope streams:
// ADTS headers for transport inside MPEG-TS, the 2-byte AudioSpecificConfig
// for FLV/RTMP sequence headers, and a VBR frame-size model producing
// 44.1 kHz stereo audio at roughly 32 or 64 kbps — "which seems enough to
// transmit almost any type of audio content with the quality expected from
// capturing through a mobile device" (§5.2).
package aac

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// SamplesPerFrame is the number of PCM samples one AAC frame covers.
const SamplesPerFrame = 1024

// SampleRate is the only sampling rate the study observed.
const SampleRate = 44100

// FrameDuration is the wall-clock duration of one AAC frame at 44.1 kHz.
const FrameDuration = time.Duration(SamplesPerFrame * int64(time.Second) / SampleRate)

// samplingFreqIndex44100 is the MPEG-4 sampling_frequency_index for 44100 Hz.
const samplingFreqIndex44100 = 4

// profileLC is the ADTS profile value for AAC-LC (object type 2 - 1).
const profileLC = 1

// Config describes an AAC stream.
type Config struct {
	Channels int // 1 or 2
	Bitrate  int // target bits per second (VBR average), e.g. 32000 or 64000
}

// DefaultConfig matches the typical observed stream: stereo ~32 kbps VBR.
func DefaultConfig() Config { return Config{Channels: 2, Bitrate: 32000} }

// AudioSpecificConfig returns the 2-byte MPEG-4 AudioSpecificConfig for
// AAC-LC at 44.1 kHz: 5 bits object type, 4 bits frequency index, 4 bits
// channel configuration, 3 bits zero.
func (c Config) AudioSpecificConfig() []byte {
	const objectTypeLC = 2
	b0 := byte(objectTypeLC<<3 | samplingFreqIndex44100>>1)
	b1 := byte(samplingFreqIndex44100&1)<<7 | byte(c.Channels&0xF)<<3
	return []byte{b0, b1}
}

// ADTSHeaderLen is the length of an ADTS header without CRC.
const ADTSHeaderLen = 7

// MarshalADTS wraps one raw AAC frame in an ADTS header (protection
// absent). The frame length field covers header plus payload.
func MarshalADTS(c Config, payload []byte) []byte {
	frameLen := ADTSHeaderLen + len(payload)
	if frameLen >= 1<<13 {
		panic(fmt.Sprintf("aac: frame too large: %d", frameLen))
	}
	h := make([]byte, ADTSHeaderLen, frameLen)
	h[0] = 0xFF
	h[1] = 0xF1 // MPEG-4, layer 00, protection_absent=1
	h[2] = profileLC<<6 | samplingFreqIndex44100<<2 | byte(c.Channels>>2)&1
	h[3] = byte(c.Channels&3)<<6 | byte(frameLen>>11)&0x3
	h[4] = byte(frameLen >> 3)
	h[5] = byte(frameLen&0x7)<<5 | 0x1F // buffer fullness high bits (VBR: 0x7FF)
	h[6] = 0xFC                         // buffer fullness low + frames-1 = 0
	return append(h, payload...)
}

// ADTSFrame is a parsed ADTS frame.
type ADTSFrame struct {
	Channels int
	Payload  []byte
}

// ErrNotADTS is returned when the sync word is missing.
var ErrNotADTS = errors.New("aac: missing ADTS sync word")

// ParseADTS parses one ADTS frame from the front of data and returns the
// frame and the number of bytes consumed.
func ParseADTS(data []byte) (ADTSFrame, int, error) {
	if len(data) < ADTSHeaderLen {
		return ADTSFrame{}, 0, errors.New("aac: short ADTS header")
	}
	if data[0] != 0xFF || data[1]&0xF6 != 0xF0 {
		return ADTSFrame{}, 0, ErrNotADTS
	}
	protAbsent := data[1]&1 == 1
	headerLen := ADTSHeaderLen
	if !protAbsent {
		headerLen += 2
	}
	frameLen := int(data[3]&0x3)<<11 | int(data[4])<<3 | int(data[5])>>5
	if frameLen < headerLen {
		return ADTSFrame{}, 0, fmt.Errorf("aac: frame length %d shorter than header", frameLen)
	}
	if frameLen > len(data) {
		return ADTSFrame{}, 0, fmt.Errorf("aac: truncated frame: need %d have %d", frameLen, len(data))
	}
	channels := int(data[2]&1)<<2 | int(data[3])>>6
	return ADTSFrame{Channels: channels, Payload: data[headerLen:frameLen]}, frameLen, nil
}

// ParseADTSStream splits a concatenation of ADTS frames.
func ParseADTSStream(data []byte) ([]ADTSFrame, error) {
	var frames []ADTSFrame
	for len(data) > 0 {
		f, n, err := ParseADTS(data)
		if err != nil {
			return frames, err
		}
		frames = append(frames, f)
		data = data[n:]
	}
	return frames, nil
}

// FrameSizer produces VBR frame sizes averaging the configured bitrate.
// Sizes vary ±35% frame to frame, mimicking the variable bit rate mode the
// study observed.
type FrameSizer struct {
	cfg Config
	rng *rand.Rand
}

// NewFrameSizer returns a deterministic sizer seeded with seed.
func NewFrameSizer(cfg Config, seed int64) *FrameSizer {
	return &FrameSizer{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// NextSize returns the next frame's payload size in bytes.
func (s *FrameSizer) NextSize() int {
	mean := float64(s.cfg.Bitrate) / 8 * FrameDuration.Seconds()
	v := mean * (1 + 0.35*(2*s.rng.Float64()-1))
	if v < 8 {
		v = 8
	}
	return int(v)
}

// NextFrame returns the next synthetic ADTS frame.
func (s *FrameSizer) NextFrame() []byte {
	payload := make([]byte, s.NextSize())
	s.rng.Read(payload)
	return MarshalADTS(s.cfg, payload)
}
