package aac

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestAudioSpecificConfig(t *testing.T) {
	// AAC-LC, 44.1 kHz, stereo is the well-known 0x12 0x10 pair.
	got := Config{Channels: 2}.AudioSpecificConfig()
	if !bytes.Equal(got, []byte{0x12, 0x10}) {
		t.Errorf("ASC = %x, want 1210", got)
	}
	mono := Config{Channels: 1}.AudioSpecificConfig()
	if !bytes.Equal(mono, []byte{0x12, 0x08}) {
		t.Errorf("mono ASC = %x, want 1208", mono)
	}
}

func TestADTSRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	frame := MarshalADTS(cfg, payload)
	got, n, err := ParseADTS(frame)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(frame) {
		t.Errorf("consumed %d, want %d", n, len(frame))
	}
	if got.Channels != 2 {
		t.Errorf("channels = %d, want 2", got.Channels)
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Errorf("payload mismatch")
	}
}

func TestADTSStream(t *testing.T) {
	cfg := DefaultConfig()
	var stream []byte
	for i := 0; i < 5; i++ {
		stream = append(stream, MarshalADTS(cfg, make([]byte, 10+i))...)
	}
	frames, err := ParseADTSStream(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 5 {
		t.Fatalf("got %d frames, want 5", len(frames))
	}
	for i, f := range frames {
		if len(f.Payload) != 10+i {
			t.Errorf("frame %d payload len %d, want %d", i, len(f.Payload), 10+i)
		}
	}
}

func TestADTSBadSync(t *testing.T) {
	if _, _, err := ParseADTS([]byte{0, 0, 0, 0, 0, 0, 0}); err != ErrNotADTS {
		t.Errorf("err = %v, want ErrNotADTS", err)
	}
}

func TestADTSTruncated(t *testing.T) {
	frame := MarshalADTS(DefaultConfig(), make([]byte, 50))
	if _, _, err := ParseADTS(frame[:20]); err == nil {
		t.Error("want error on truncated frame")
	}
}

func TestADTSRoundTripProperty(t *testing.T) {
	cfg := DefaultConfig()
	f := func(payload []byte) bool {
		if len(payload) > 4000 {
			payload = payload[:4000]
		}
		frame := MarshalADTS(cfg, payload)
		got, n, err := ParseADTS(frame)
		return err == nil && n == len(frame) && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFrameSizerBitrate(t *testing.T) {
	for _, target := range []int{32000, 64000} {
		s := NewFrameSizer(Config{Channels: 2, Bitrate: target}, 1)
		var total int
		n := 2000
		for i := 0; i < n; i++ {
			total += s.NextSize()
		}
		gotBitrate := float64(total) * 8 / (float64(n) * FrameDuration.Seconds())
		if math.Abs(gotBitrate-float64(target)) > 0.05*float64(target) {
			t.Errorf("bitrate = %v, want ~%d", gotBitrate, target)
		}
	}
}

func TestFrameDuration(t *testing.T) {
	// 1024 samples at 44100 Hz is ~23.2 ms.
	ms := FrameDuration.Seconds() * 1000
	if math.Abs(ms-23.22) > 0.05 {
		t.Errorf("FrameDuration = %v ms", ms)
	}
}

func TestNextFrameParses(t *testing.T) {
	s := NewFrameSizer(DefaultConfig(), 2)
	for i := 0; i < 50; i++ {
		f := s.NextFrame()
		if _, n, err := ParseADTS(f); err != nil || n != len(f) {
			t.Fatalf("frame %d: err=%v n=%d len=%d", i, err, n, len(f))
		}
	}
}
