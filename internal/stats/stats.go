// Package stats provides the descriptive and inferential statistics used by
// the measurement analyses: empirical CDFs, quantiles, boxplot summaries,
// histograms, Pearson correlation, and Welch's unequal-variance t-test (the
// paper uses Welch's t-test to compare the Galaxy S3 and S4 datasets).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoData is returned by functions that need at least one observation.
var ErrNoData = errors.New("stats: no data")

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (n-1 denominator).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element. It panics on empty input.
func Min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element. It panics on empty input.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// xs need not be sorted; it is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Correlation returns the Pearson correlation coefficient of the paired
// samples xs and ys, which must have equal nonzero length.
func Correlation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, ErrNoData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample xs.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Inverse returns the q-quantile of the sample.
func (c *CDF) Inverse(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return quantileSorted(c.sorted, q)
}

// Len returns the sample size.
func (c *CDF) Len() int { return len(c.sorted) }

// Points returns (x, F(x)) pairs suitable for plotting: one point per
// distinct sample value. The slices are freshly allocated.
func (c *CDF) Points() (xs, fs []float64) {
	n := len(c.sorted)
	for i := 0; i < n; i++ {
		if i+1 < n && c.sorted[i+1] == c.sorted[i] {
			continue
		}
		xs = append(xs, c.sorted[i])
		fs = append(fs, float64(i+1)/float64(n))
	}
	return xs, fs
}

// BoxplotStats is the five-number summary (plus mean and count) drawn as one
// box in the paper's boxplot figures.
type BoxplotStats struct {
	N            int
	Min, Max     float64
	Q1, Med, Q3  float64
	Mean         float64
	WhiskerLo    float64 // lowest point within 1.5*IQR of Q1
	WhiskerHi    float64 // highest point within 1.5*IQR of Q3
	OutlierCount int
}

// Boxplot computes the boxplot summary of xs using the 1.5*IQR whisker rule.
func Boxplot(xs []float64) (BoxplotStats, error) {
	if len(xs) == 0 {
		return BoxplotStats{}, ErrNoData
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	b := BoxplotStats{
		N:    len(s),
		Min:  s[0],
		Max:  s[len(s)-1],
		Q1:   quantileSorted(s, 0.25),
		Med:  quantileSorted(s, 0.5),
		Q3:   quantileSorted(s, 0.75),
		Mean: Mean(s),
	}
	iqr := b.Q3 - b.Q1
	lo, hi := b.Q1-1.5*iqr, b.Q3+1.5*iqr
	b.WhiskerLo, b.WhiskerHi = b.Max, b.Min
	for _, x := range s {
		if x >= lo && x < b.WhiskerLo {
			b.WhiskerLo = x
		}
		if x <= hi && x > b.WhiskerHi {
			b.WhiskerHi = x
		}
		if x < lo || x > hi {
			b.OutlierCount++
		}
	}
	return b, nil
}

// Histogram bins xs into nbins equal-width bins over [lo, hi]. Values outside
// the range are clamped into the first/last bin.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	counts := make([]int, nbins)
	if hi <= lo || nbins == 0 {
		return counts
	}
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		counts[i]++
	}
	return counts
}

// TTestResult reports the outcome of Welch's two-sample t-test.
type TTestResult struct {
	T  float64 // test statistic
	DF float64 // Welch-Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
}

// Significant reports whether the difference is significant at level alpha.
func (r TTestResult) Significant(alpha float64) bool { return r.P < alpha }

// WelchTTest performs Welch's unequal-variance two-sample t-test on xs and
// ys and returns the two-sided p-value. This is the test the paper applies
// to decide whether the Galaxy S3 and S4 datasets can be pooled.
func WelchTTest(xs, ys []float64) (TTestResult, error) {
	if len(xs) < 2 || len(ys) < 2 {
		return TTestResult{}, ErrNoData
	}
	mx, my := Mean(xs), Mean(ys)
	vx, vy := Variance(xs), Variance(ys)
	nx, ny := float64(len(xs)), float64(len(ys))
	sx, sy := vx/nx, vy/ny
	se := math.Sqrt(sx + sy)
	if se == 0 {
		if mx == my {
			return TTestResult{T: 0, DF: nx + ny - 2, P: 1}, nil
		}
		return TTestResult{T: math.Inf(1), DF: nx + ny - 2, P: 0}, nil
	}
	t := (mx - my) / se
	df := (sx + sy) * (sx + sy) / (sx*sx/(nx-1) + sy*sy/(ny-1))
	p := 2 * studentTCDFUpper(math.Abs(t), df)
	return TTestResult{T: t, DF: df, P: p}, nil
}

// studentTCDFUpper returns P(T > t) for Student's t with df degrees of
// freedom, via the regularized incomplete beta function.
func studentTCDFUpper(t, df float64) float64 {
	if math.IsInf(t, 1) {
		return 0
	}
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes 6.4).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
