package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEq(m, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", m)
	}
	// Sample variance with n-1: sum sq dev = 32, /7.
	if v := Variance(xs); !almostEq(v, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", v, 32.0/7)
	}
}

func TestMeanEmpty(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); !almostEq(got, cse.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d, want 4", c.Len())
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	xs, fs := c.Points()
	if len(xs) != 3 || xs[1] != 2 || !almostEq(fs[1], 0.75, 1e-12) {
		t.Errorf("Points = %v %v", xs, fs)
	}
	if fs[len(fs)-1] != 1 {
		t.Error("last CDF point must be 1")
	}
}

// Property: CDF is monotone and bounded in [0,1].
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, probe []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		prevX, prevF := math.Inf(-1), 0.0
		ps := append([]float64(nil), probe...)
		for i := range ps {
			if math.IsNaN(ps[i]) || math.IsInf(ps[i], 0) {
				ps[i] = 0
			}
		}
		// sort the probes via insertion since the list is short
		for i := 1; i < len(ps); i++ {
			for j := i; j > 0 && ps[j] < ps[j-1]; j-- {
				ps[j], ps[j-1] = ps[j-1], ps[j]
			}
		}
		for _, p := range ps {
			f := c.At(p)
			if f < 0 || f > 1 {
				return false
			}
			if p >= prevX && f < prevF {
				return false
			}
			prevX, prevF = p, f
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoxplot(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 100}
	b, err := Boxplot(xs)
	if err != nil {
		t.Fatal(err)
	}
	if b.N != 9 || b.Min != 1 || b.Max != 100 {
		t.Errorf("N/Min/Max = %d/%v/%v", b.N, b.Min, b.Max)
	}
	if b.Med != 5 {
		t.Errorf("Med = %v, want 5", b.Med)
	}
	if b.OutlierCount != 1 {
		t.Errorf("OutlierCount = %d, want 1 (the 100)", b.OutlierCount)
	}
	if b.WhiskerHi == 100 {
		t.Error("whisker must exclude the outlier")
	}
}

func TestBoxplotEmpty(t *testing.T) {
	if _, err := Boxplot(nil); err != ErrNoData {
		t.Errorf("err = %v, want ErrNoData", err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.5, 0.9, -5, 10}
	h := Histogram(xs, 0, 1, 4)
	// -5 clamps to bin 0; 10 clamps to bin 3.
	want := []int{3, 0, 1, 2}
	for i := range want {
		if h[i] != want[i] {
			t.Errorf("bin %d = %d, want %d", i, h[i], want[i])
		}
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Correlation(xs, ys)
	if err != nil || !almostEq(r, 1, 1e-12) {
		t.Errorf("r = %v err=%v, want 1", r, err)
	}
	ys2 := []float64{10, 8, 6, 4, 2}
	r2, _ := Correlation(xs, ys2)
	if !almostEq(r2, -1, 1e-12) {
		t.Errorf("r = %v, want -1", r2)
	}
}

func TestCorrelationMismatch(t *testing.T) {
	if _, err := Correlation([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("want error on length mismatch")
	}
}

func TestWelchTTestSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 400)
	ys := make([]float64, 300)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	for i := range ys {
		ys[i] = rng.NormFloat64()
	}
	res, err := WelchTTest(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant(0.01) {
		t.Errorf("same-distribution samples flagged significant: p=%v", res.P)
	}
}

func TestWelchTTestDifferentMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	for i := range ys {
		ys[i] = rng.NormFloat64() + 1.0
	}
	res, err := WelchTTest(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant(0.001) {
		t.Errorf("shifted samples not flagged: p=%v", res.P)
	}
	if res.T >= 0 {
		t.Errorf("T = %v, want negative (mean x < mean y)", res.T)
	}
}

func TestWelchKnownValue(t *testing.T) {
	// Hand-computable example.
	// a: mean 2.5, var 5/3. b: mean 5, var 20/3.
	// se = sqrt(5/12 + 20/12) = sqrt(25/12); t = -2.5/se = -sqrt(3).
	// df = (25/12)^2 / ((5/12)^2/3 + (20/12)^2/3) = 625/(425/3) ~ 4.41176.
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.T, -math.Sqrt(3), 1e-9) {
		t.Errorf("T = %v, want -sqrt(3)", res.T)
	}
	if !almostEq(res.DF, 625.0/(425.0/3), 1e-9) {
		t.Errorf("DF = %v, want %v", res.DF, 625.0/(425.0/3))
	}
	// Two-sided p for |t|=1.732 at df~4.41 sits between the df=4 (0.158)
	// and df=5 (0.144) table values.
	if res.P < 0.13 || res.P > 0.17 {
		t.Errorf("P = %v, want in [0.13, 0.17]", res.P)
	}
}

func TestStudentTTableValues(t *testing.T) {
	// Standard t-table critical values: P(T > t_crit) = 0.025.
	cases := []struct{ tcrit, df float64 }{
		{2.776, 4}, {2.228, 10}, {2.042, 30},
	}
	for _, c := range cases {
		p := studentTCDFUpper(c.tcrit, c.df)
		if !almostEq(p, 0.025, 0.0015) {
			t.Errorf("P(T>%v; df=%v) = %v, want ~0.025", c.tcrit, c.df, p)
		}
	}
}

func TestStudentTUpperTail(t *testing.T) {
	// t=0 should give 0.5 for any df.
	if p := studentTCDFUpper(0, 10); !almostEq(p, 0.5, 1e-9) {
		t.Errorf("P(T>0) = %v, want 0.5", p)
	}
	// Large df approximates the normal: P(T>1.96) ~ 0.025.
	if p := studentTCDFUpper(1.96, 1e6); !almostEq(p, 0.025, 1e-3) {
		t.Errorf("P(T>1.96) = %v, want ~0.025", p)
	}
}

// Property: boxplot invariants min<=q1<=med<=q3<=max, whiskers within range.
func TestBoxplotInvariantsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		b, err := Boxplot(xs)
		if err != nil {
			return false
		}
		return b.Min <= b.Q1 && b.Q1 <= b.Med && b.Med <= b.Q3 && b.Q3 <= b.Max &&
			b.WhiskerLo >= b.Min && b.WhiskerHi <= b.Max && b.WhiskerLo <= b.WhiskerHi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
