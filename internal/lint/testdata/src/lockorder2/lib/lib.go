// Dependency fixture for cross-package lockorder: this package
// establishes Registry.Mu → Index.Mu and exports per-function acquire
// facts; the dependent app package closes the cycle.
package lib

import "sync"

type Registry struct{ Mu sync.Mutex }

type Index struct{ Mu sync.Mutex }

var (
	Reg Registry
	Idx Index
)

// Reindex establishes the edge Registry.Mu → Index.Mu.
func Reindex() {
	Reg.Mu.Lock()
	defer Reg.Mu.Unlock()
	Idx.Mu.Lock()
	Idx.Mu.Unlock()
}

// TouchRegistry's exported fact records that callers may end up holding
// Registry.Mu.
func TouchRegistry() { // want TouchRegistry:`acquires\(lib\.Registry\.Mu\)`
	Reg.Mu.Lock()
	defer Reg.Mu.Unlock()
}
