// Dependent fixture for cross-package lockorder: holding lib's Index
// lock while calling a lib function whose imported fact says it takes
// the Registry lock closes the Registry→Index→Registry cycle. The full
// chain names both packages' sites.
package app

import "lockorder2/lib"

// ReverseOrder completes the cross-package cycle.
func ReverseOrder() {
	lib.Idx.Mu.Lock()
	defer lib.Idx.Mu.Unlock()
	lib.TouchRegistry() // want `lock-order cycle \(potential deadlock\): lib\.Index\.Mu → lib\.Registry\.Mu \(ReverseOrder at .*app\.go:\d+\) → lib\.Index\.Mu \(Reindex at .*lib\.go:\d+\)`
}

// SameOrder touches both locks but never holds them together: no edge,
// no cycle.
func SameOrder() {
	lib.Reg.Mu.Lock()
	lib.Reg.Mu.Unlock()
	lib.Idx.Mu.Lock()
	lib.Idx.Mu.Unlock()
}
