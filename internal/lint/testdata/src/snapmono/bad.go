// Bad fixtures for periscopelint/snapmono: counters folded into a
// Stats/Snapshot aggregate being reset or overwritten — readers see
// the aggregate dip under churn.
package snapmono

import "sync"

type Stats struct {
	Fills  uint64
	Misses uint64
	Depth  int
}

type cache struct {
	mu     sync.Mutex
	fills  uint64
	misses uint64
	depth  int
	st     Stats
}

func (c *cache) fill()  { c.mu.Lock(); c.fills++; c.mu.Unlock() }
func (c *cache) miss()  { c.mu.Lock(); c.misses++; c.mu.Unlock() }
func (c *cache) push()  { c.mu.Lock(); c.depth++; c.mu.Unlock() }
func (c *cache) pop()   { c.mu.Lock(); c.depth--; c.mu.Unlock() }

// Snapshot folds the working counters into the aggregate.
func (c *cache) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.st.Fills += c.fills
	c.st.Misses += c.misses
	c.st.Depth = c.depth
	return c.st
}

// reset zeroes working counters that feed the snapshot: the next fold
// makes the aggregate under-count everything since the last reset.
func (c *cache) reset() {
	c.mu.Lock()
	c.fills = 0  // want `monotonic counter cache\.fills .* is reassigned to a constant`
	c.misses = 0 // want `monotonic counter cache\.misses .* is reassigned to a constant`
	c.depth = 0
	c.mu.Unlock()
}

// retire subtracts from the aggregate itself: snapshots dip.
func (c *cache) retire(gone Stats) {
	c.mu.Lock()
	c.st.Fills -= gone.Fills // want `monotonic counter Stats\.Fills .* is decremented`
	c.mu.Unlock()
}
