// Clean fixtures for periscopelint/snapmono: gauges may move both
// ways, and counters that never feed an aggregate are unconstrained.
package snapmono

import "sync"

type meter struct {
	mu      sync.Mutex
	inflight int
	scratch  uint64
	st       Stats
}

// inflight is a gauge: incremented and decremented, never folded as a
// monotonic total.
func (m *meter) begin() { m.mu.Lock(); m.inflight++; m.mu.Unlock() }
func (m *meter) end()   { m.mu.Lock(); m.inflight--; m.mu.Unlock() }

// scratch never reaches a Snapshot/Stats aggregate, so zeroing it is
// fine.
func (m *meter) bump()  { m.mu.Lock(); m.scratch++; m.mu.Unlock() }
func (m *meter) clear() { m.mu.Lock(); m.scratch = 0; m.mu.Unlock() }

// Snapshot reports the gauge as a point-in-time value.
func (m *meter) Snapshot() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.st.Depth = m.inflight
	return m.st
}
