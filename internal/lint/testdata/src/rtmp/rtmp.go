// Package rtmp is a fixture stub of periscope/internal/rtmp: just
// enough of the SharedPayload surface for the refpair analyzer, which
// matches by package base name and method names.
package rtmp

type SharedPayload struct{ p []byte }

func SharePayload(p []byte) *SharedPayload { return &SharedPayload{p: p} }

func (sp *SharedPayload) Bytes() []byte { return sp.p }
func (sp *SharedPayload) Retain()       {}
func (sp *SharedPayload) Release()      {}
