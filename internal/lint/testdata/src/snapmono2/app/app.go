// Dependent fixture for cross-package snapmono: resetting or
// subtracting a counter that lib marked monotonic is flagged here.
package app

import "snapmono2/lib"

type view struct {
	pool *lib.Pool
}

// trim subtracts from lib's monotonic counter: flagged via the
// imported fact.
func (v *view) trim(gone lib.Stats) {
	v.pool.Mu.Lock()
	v.pool.St.Fills -= gone.Fills // want `monotonic counter Stats\.Fills .* is decremented`
	v.pool.Mu.Unlock()
}

// wipe zeroes it outright.
func (v *view) wipe() {
	v.pool.Mu.Lock()
	v.pool.St.Fills = 0 // want `monotonic counter Stats\.Fills .* is reassigned to a constant`
	v.pool.Mu.Unlock()
}

// observe only reads: fine.
func (v *view) observe() uint64 {
	return v.pool.Snapshot().Fills
}
