// Dependency fixture for cross-package snapmono: Fills is marked as a
// monotonic counter and the fact crosses the package boundary.
package lib

import "sync"

type Stats struct {
	Fills uint64 // want Fills:`monotonic-counter`
}

type Pool struct {
	Mu sync.Mutex
	St Stats
}

// Record accumulates into the aggregate: Fills becomes a counter.
func (p *Pool) Record(n uint64) {
	p.Mu.Lock()
	p.St.Fills += n
	p.Mu.Unlock()
}

// Snapshot hands out the aggregate.
func (p *Pool) Snapshot() Stats {
	p.Mu.Lock()
	defer p.Mu.Unlock()
	return p.St
}
