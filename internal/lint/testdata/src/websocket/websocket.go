// Package websocket is a fixture stub of periscope/internal/websocket:
// the lockio analyzer treats Read*/Write* methods on conn types from a
// package with base name "websocket" as blocking socket I/O.
package websocket

type Conn struct{}

func (c *Conn) WriteMessage(opcode int, payload []byte) error { return nil }
func (c *Conn) ReadMessage() (int, []byte, error)             { return 0, nil, nil }
