// Bad fixture for periscopelint/lockorder: the hub/shard hierarchy
// acquired in both directions. attach establishes hub.mu → shard.mu;
// deliver holds shard.mu and calls back into the hub, which takes
// hub.mu — the classic AB/BA deadlock, visible only module-wide.
package lockorder

import "sync"

type hub struct {
	mu     sync.Mutex
	shards []*shard
	n      int
}

type shard struct {
	mu  sync.Mutex
	hub *hub
	n   int
}

// attach takes hub.mu then shard.mu. This is the first half of the
// cycle, and where the analyzer reports it (the lexically first edge of
// the cycle contributed by this package).
func (h *hub) attach(s *shard) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s.mu.Lock() // want `lock-order cycle \(potential deadlock\): lockorder\.hub\.mu → lockorder\.shard\.mu \(attach at .*\) → lockorder\.hub\.mu \(deliver at .*\)`
	s.n++
	s.mu.Unlock()
}

// deliver holds shard.mu across a call that may take hub.mu: the
// reverse order, closing the cycle through the call graph.
func (s *shard) deliver() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hub.forget(s)
}

func (h *hub) forget(s *shard) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.n--
}
