// Clean fixture for periscopelint/lockorder: the blessed idioms — a
// one-way hierarchy, and dropping the inner lock before calling back up.
package lockorder

import "sync"

type registry struct {
	mu    sync.Mutex
	rooms []*room
}

type room struct {
	mu  sync.Mutex
	reg *registry
	n   int
}

// sweep takes registry.mu then room.mu: a strict one-way hierarchy
// produces edges but no cycle.
func (g *registry) sweep() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, r := range g.rooms {
		r.mu.Lock()
		r.n++
		r.mu.Unlock()
	}
}

// leave releases room.mu before calling back into the registry, so no
// reverse edge exists: snapshot state under the lock, call after.
func (r *room) leave() {
	r.mu.Lock()
	r.n--
	empty := r.n == 0
	r.mu.Unlock()
	if empty {
		r.reg.drop(r)
	}
}

func (g *registry) drop(r *room) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, w := range g.rooms {
		if w == r {
			g.rooms = append(g.rooms[:i], g.rooms[i+1:]...)
			return
		}
	}
}
