// Bad fixtures for periscopelint/lockio, modeled on the seed chat bug:
// Room.Broadcast wrote every member's websocket synchronously while
// holding the room mutex, so one stalled member froze the room.
package lockio

import (
	"net"
	"net/http"
	"sync"
	"time"

	"websocket"
)

type member struct {
	conn *websocket.Conn
}

type room struct {
	mu      sync.Mutex
	members []*member
}

// broadcastBad is the seed bug verbatim: per-member socket writes under
// the shared room lock.
func (r *room) broadcastBad(msg []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.members {
		m.conn.WriteMessage(1, msg) // want `websocket conn WriteMessage while r\.mu is held`
	}
}

// sleepBad parks the whole room.
func (r *room) sleepBad() {
	r.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while r\.mu is held`
	r.mu.Unlock()
}

// sendBad blocks on a full channel with the lock held.
func (r *room) sendBad(ch chan int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ch <- 1 // want `channel send without a select\+default while r\.mu is held`
}

// selectSendBad: a select without default still blocks.
func (r *room) selectSendBad(ch chan int, quit chan struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case ch <- 1: // want `channel send without a select\+default while r\.mu is held`
	case <-quit:
	}
}

// httpBad holds a registry lock across an HTTP round trip.
func (r *room) httpBad(c *http.Client, req *http.Request) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c.Do(req) // want `net/http round trip \(http\.Client\.Do\) while r\.mu is held`
}

// netConnBad writes a foreign net.Conn under a lock.
func netConnBad(mu *sync.Mutex, nc net.Conn, b []byte) {
	mu.Lock()
	defer mu.Unlock()
	nc.Write(b) // want `conn Write \(net\.Conn\) while mu is held`
}
