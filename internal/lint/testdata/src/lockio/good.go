// Clean fixtures for periscopelint/lockio: snapshot-then-write, bounded
// handoffs, a conn's own write lock, and a justified suppression.
package lockio

import (
	"net"
	"sync"
	"time"
)

// broadcastGood snapshots the member list under the lock and writes
// outside it — the PR 7 fix shape.
func (r *room) broadcastGood(msg []byte) {
	r.mu.Lock()
	members := append([]*member(nil), r.members...)
	r.mu.Unlock()
	for _, m := range members {
		m.conn.WriteMessage(1, msg)
	}
}

// offerGood: a drop-oldest bounded handoff never blocks under the lock.
func (r *room) offerGood(ch chan int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case ch <- 1:
	default:
	}
}

// lockedConn serializes its own writes under its own mutex, like
// rtmp.Conn.writeMu: the lock guards exactly this connection, so the
// write is the critical section's purpose, not a victim of it.
type lockedConn struct {
	writeMu sync.Mutex
	nc      net.Conn
}

func (c *lockedConn) write(b []byte) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	_, err := c.nc.Write(b)
	return err
}

// unlockThenSleep: sequential unlock clears the held state.
func (r *room) unlockThenSleep() {
	r.mu.Lock()
	n := len(r.members)
	r.mu.Unlock()
	if n > 0 {
		time.Sleep(time.Millisecond)
	}
}

// suppressedSleep shows the escape hatch: justified exceptions pass.
func (r *room) suppressedSleep() {
	r.mu.Lock()
	defer r.mu.Unlock()
	//lint:ignore periscopelint/lockio fixture: a deliberate 1µs pause, bounded and test-only
	time.Sleep(time.Microsecond)
}
