// Clean fixtures for periscopelint/refpair: the idiomatic ownership
// patterns from the hub fan-out must not be flagged.
package refpair

import (
	"errors"

	"rtmp"
)

// releaseAllPaths releases on both the error and the success path.
func releaseAllPaths(p []byte, fail bool) error {
	sp := rtmp.SharePayload(p)
	if fail {
		sp.Release()
		return errors.New("failed")
	}
	sp.Release()
	return nil
}

// deferredRelease covers every exit path at once.
func deferredRelease(p []byte, fail bool) error {
	sp := rtmp.SharePayload(p)
	defer sp.Release()
	if fail {
		return errors.New("failed")
	}
	_ = sp.Bytes()
	return nil
}

// retainPerHandoff is the hub idiom: one retain per queue handoff, the
// queue owns the handed-off reference, and the creating reference is
// dropped at the end. The handoff transfers ownership, so the analysis
// trusts the receiver to release it.
func retainPerHandoff(p []byte, queues []chan *rtmp.SharedPayload) {
	sp := rtmp.SharePayload(p)
	for _, q := range queues {
		sp.Retain()
		q <- sp
	}
	sp.Release()
}

// descriptor handoff through a composite literal, as hub.onMedia does.
type shardMsg struct {
	sp *rtmp.SharedPayload
}

func publishDescriptor(p []byte, shard chan shardMsg) {
	sp := rtmp.SharePayload(p)
	sp.Retain()
	shard <- shardMsg{sp: sp}
	sp.Release()
}
