// Bad fixtures for periscopelint/refpair, modeled on the PR 3 bug
// class: refcounted payloads leaked on early error returns, and pooled
// buffers recycled twice.
package refpair

import (
	"errors"

	"rtmp"
)

var errFill = errors.New("fill failed")

// leakOnError mirrors the historical bug: the error path returns before
// the creating reference is released, leaking a pooled buffer.
func leakOnError(p []byte, fail bool) error {
	sp := rtmp.SharePayload(p)
	if fail {
		return errFill // want `leaks a rtmp\.SharedPayload reference`
	}
	sp.Release()
	return nil
}

// leakNoRelease never releases at all.
func leakNoRelease(p []byte) int {
	sp := rtmp.SharePayload(p)
	n := len(sp.Bytes())
	return n // want `leaks a rtmp\.SharedPayload reference`
}

// doubleRelease recycles the buffer while the first release's consumer
// may still read it.
func doubleRelease(p []byte) {
	sp := rtmp.SharePayload(p)
	sp.Release()
	sp.Release() // want `Release with no reference held`
}

// releaseAfterRetainImbalance: one retain, three releases.
func releaseAfterRetainImbalance(p []byte) {
	sp := rtmp.SharePayload(p)
	sp.Retain()
	sp.Release()
	sp.Release()
	sp.Release() // want `Release with no reference held`
}
