// Dependent fixture for cross-package gostop: a constructor launching
// lib's unstoppable loop is flagged here, through lib's exported fact.
package app

import "gostop2/lib"

type churnBox struct {
	c    *lib.Churner
	quit chan struct{}
}

// NewChurn launches lib's unstoppable loop from a constructor.
func NewChurn() *churnBox {
	b := &churnBox{c: &lib.Churner{}}
	go b.c.Spin() // want `long-lived goroutine launched from constructor path NewChurn has no stop path`
	return b
}

// NewTicker launches lib's stoppable loop: the fact says Tick watches
// its quit channel, and Close closes it.
func NewTicker() *churnBox {
	b := &churnBox{c: &lib.Churner{}, quit: make(chan struct{})}
	go b.c.Tick(b.quit)
	return b
}

func (b *churnBox) Close() { close(b.quit) }
