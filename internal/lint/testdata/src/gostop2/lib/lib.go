// Dependency fixture for cross-package gostop: the classification of
// Spin (long-lived, no stop path) crosses the package boundary as an
// exported fact.
package lib

import "time"

type Churner struct{ N int }

// Spin loops forever with no stop path.
func (c *Churner) Spin() { // want Spin:`long-lived\(no stop path\)`
	for {
		time.Sleep(time.Millisecond)
		c.N++
	}
}

// Tick loops forever but watches its quit channel.
func (c *Churner) Tick(quit chan struct{}) { // want Tick:`long-lived\(stoppable`
	for {
		select {
		case <-quit:
			return
		case <-time.After(time.Millisecond):
			c.N++
		}
	}
}
