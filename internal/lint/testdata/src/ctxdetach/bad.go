// Bad fixtures for periscopelint/ctxdetach, modeled on the PR 4
// initiator-disconnect bug: the coalesced demand fill ran on the first
// requester's context, so that viewer hanging up failed the fill for
// every other waiter parked on the same single-flight entry.
package ctxdetach

import (
	"context"
	"time"
)

type fillResult struct {
	done chan struct{}
	data []byte
	err  error
}

type source interface {
	FetchSegment(ctx context.Context, seq int) ([]byte, error)
}

type replica struct {
	src source
}

// SegmentBad threads the inbound request context straight into the
// shared fill goroutine.
func (r *replica) SegmentBad(ctx context.Context, seq int) ([]byte, error) {
	f := &fillResult{done: make(chan struct{})}
	go func() { // want `captures the request-scoped context "ctx"`
		f.data, f.err = r.src.FetchSegment(ctx, seq)
		close(f.done)
	}()
	select {
	case <-f.done:
		return f.data, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// SegmentDerivedBad is no better: the timeout context still inherits
// the request's cancellation.
func (r *replica) SegmentDerivedBad(ctx context.Context, seq int) ([]byte, error) {
	fctx, cancel := context.WithTimeout(ctx, time.Second)
	f := &fillResult{done: make(chan struct{})}
	go func() { // want `captures the request-scoped context "fctx"`
		defer cancel()
		f.data, f.err = r.src.FetchSegment(fctx, seq)
		close(f.done)
	}()
	select {
	case <-f.done:
		return f.data, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
