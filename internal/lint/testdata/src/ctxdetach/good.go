// Clean fixtures for periscopelint/ctxdetach: the detached-fill idiom
// the PR 4 fix introduced, and a per-request worker pattern that
// legitimately shares the caller's context.
package ctxdetach

import (
	"context"
	"sync"
	"time"
)

// SegmentGood detaches the fill: waiters select on the request context,
// but the fetch itself runs on a Background-derived timeout and
// survives any one requester disconnecting.
func (r *replica) SegmentGood(ctx context.Context, seq int) ([]byte, error) {
	f := &fillResult{done: make(chan struct{})}
	go func() {
		fctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		f.data, f.err = r.src.FetchSegment(fctx, seq)
		close(f.done)
	}()
	select {
	case <-f.done:
		return f.data, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// PlayerGood is a viewer fetching its own segments: the goroutines are
// the caller's own work, joined unconditionally with wg.Wait, so they
// cancel with the caller — no coalesced waiters are harmed.
func (r *replica) PlayerGood(ctx context.Context, seqs []int) error {
	var wg sync.WaitGroup
	for _, s := range seqs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = r.src.FetchSegment(ctx, s)
		}()
	}
	wg.Wait()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(time.Millisecond):
		return nil
	}
}
