// Bad fixtures for periscopelint/gostop: background loops launched
// from constructor paths with no way to stop them — the goroutine
// outlives its owner on every construct/teardown cycle.
package gostop

import "time"

type pump struct{ n int }

// NewPump launches a ticker loop with no stop path: no context, no
// quit channel, no WaitGroup join.
func NewPump() *pump {
	p := &pump{}
	go p.loop() // want `long-lived goroutine launched from constructor path NewPump has no stop path`
	return p
}

func (p *pump) loop() {
	for {
		time.Sleep(time.Millisecond)
		p.n++
	}
}

// StartDrip launches an unstoppable ticker closure from a Start path.
func (p *pump) StartDrip() {
	go func() { // want `long-lived goroutine launched from constructor path StartDrip has no stop path`
		t := time.NewTicker(time.Millisecond)
		for range t.C {
			p.n++
		}
	}()
}

// newFeeder reaches the launch through a helper: the constructor path
// includes everything the constructor calls inside the package.
func newFeeder() *pump {
	p := &pump{}
	p.arm()
	return p
}

func (p *pump) arm() {
	go p.loop() // want `long-lived goroutine launched from constructor path arm has no stop path`
}
