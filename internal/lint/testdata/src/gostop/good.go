// Clean fixtures for periscopelint/gostop: every blessed stop idiom in
// this repo — quit channels closed on teardown, contexts, WaitGroup
// joins, and conn-lifetime read loops.
package gostop

import (
	"context"
	"sync"
	"time"
)

type worker struct {
	quit chan struct{}
	wg   sync.WaitGroup
	n    int
}

// NewWorker's loop selects on a quit channel that Close closes.
func NewWorker() *worker {
	w := &worker{quit: make(chan struct{})}
	go w.run()
	return w
}

func (w *worker) run() {
	for {
		select {
		case <-w.quit:
			return
		case <-time.After(time.Millisecond):
			w.n++
		}
	}
}

func (w *worker) Close() { close(w.quit) }

// NewCtxWorker's loop watches the context it captured.
func NewCtxWorker(ctx context.Context) *worker {
	w := &worker{}
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Millisecond):
				w.n++
			}
		}
	}()
	return w
}

// NewCtxArg passes the context at the launch site; the callee side is
// checked in its own right.
func NewCtxArg(ctx context.Context) *worker {
	w := &worker{}
	go w.runCtx(ctx)
	return w
}

func (w *worker) runCtx(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// NewPool's workers drain a jobs channel and are joined via WaitGroup.
func NewPool(jobs chan func()) *worker {
	w := &worker{}
	w.wg.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			defer w.wg.Done()
			for job := range jobs {
				job()
			}
		}()
	}
	return w
}

type conn interface {
	ReadMessage() ([]byte, error)
	Close() error
}

// StartEcho's loop blocks on conn reads: closing the conn is the stop
// path (conn-lifetime goroutine; leakcheck owns the runtime half).
func StartEcho(c conn) *worker {
	w := &worker{}
	go func() {
		for {
			if _, err := c.ReadMessage(); err != nil {
				return
			}
			w.n++
		}
	}()
	return w
}

// handle is not a constructor path: per-request launches are
// leakcheck's concern, not gostop's.
func (w *worker) handle() {
	go w.spin()
}

func (w *worker) spin() {
	for {
		time.Sleep(time.Millisecond)
	}
}
