// Dependency fixture for the multi-package suppression regression: a
// reasonless //lint:ignore in a dependency must still be rejected when
// the dependency is analyzed as part of a dependent's closure. (No
// // want comments here — the marker would parse as the suppression's
// reason — so lint_test checks the diagnostics directly.)
package dep

import "sync"

type Box struct {
	mu sync.Mutex
	n  int
	ch chan int
}

// Tick sends on a channel while holding the lock; the ignore has no
// reason, so it does not suppress and is itself flagged.
func (b *Box) Tick() {
	b.mu.Lock()
	//lint:ignore periscopelint/lockio
	b.ch <- b.n
	b.mu.Unlock()
}
