// Dependent fixture for the multi-package suppression regression: the
// interesting diagnostics live in dep, loaded as part of this
// package's closure.
package app

import "suppressmulti/dep"

// Run exercises dep so the import is real.
func Run(b *dep.Box) {
	b.Tick()
}
