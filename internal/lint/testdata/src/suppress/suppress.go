// Fixture for the suppression mechanism itself: an //lint:ignore with
// no reason must not suppress, and must be reported in its own right.
// (This cannot use a // want comment — the marker would parse as the
// suppression's reason — so lint_test checks the diagnostics directly.)
package suppress

import (
	"sync"
	"time"
)

var mu sync.Mutex

func noReason() {
	mu.Lock()
	//lint:ignore periscopelint/lockio
	time.Sleep(time.Millisecond)
	mu.Unlock()
}
