// Clean fixtures for periscopelint/atomicmix.
package atomicmix

import (
	"sync"
	"sync/atomic"
)

// consistent uses sync/atomic for every access of its counter.
type consistent struct {
	n int64
}

func (c *consistent) inc()       { atomic.AddInt64(&c.n, 1) }
func (c *consistent) get() int64 { return atomic.LoadInt64(&c.n) }

// typed uses the atomic wrapper types, which make plain access
// unrepresentable — the conversion the diagnostic recommends.
type typed struct {
	n atomic.Int64
}

func (t *typed) inc()       { t.n.Add(1) }
func (t *typed) get() int64 { return t.n.Load() }

// guarded fields never touch sync/atomic at all; plain access under the
// mutex is fine and none of this is the analyzer's business.
type guarded struct {
	mu sync.Mutex
	n  int64
}

func (g *guarded) inc() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}
