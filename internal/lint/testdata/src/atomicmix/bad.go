// Bad fixtures for periscopelint/atomicmix, modeled on the PR 3
// websocket races: BytesRead/BytesWritten updated atomically by the I/O
// loops but read plainly by stats snapshots, and a closed flag stored
// atomically but tested plainly.
package atomicmix

import "sync/atomic"

type conn struct {
	bytesWritten int64
	closed       int32
}

func (c *conn) add(n int64) {
	atomic.AddInt64(&c.bytesWritten, n)
}

// snapshot reads the counter without the atomic: racy, and the race
// detector only sees it when a test actually collides.
func (c *conn) snapshot() int64 {
	return c.bytesWritten // want `plain access to field bytesWritten`
}

func (c *conn) markClosed() {
	atomic.StoreInt32(&c.closed, 1)
}

func (c *conn) reopen() {
	c.closed = 0 // want `plain access to field closed`
}

func (c *conn) isClosed() bool {
	return c.closed == 1 // want `plain access to field closed`
}
