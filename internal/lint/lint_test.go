package lint_test

import (
	"strings"
	"testing"

	"periscope/internal/lint"
	"periscope/internal/lint/linttest"
)

// Each analyzer must fire on its golden bad fixture (the historical bug
// class, one want comment per diagnostic) and stay quiet on the clean
// fixture exercising the idiomatic pattern. Both files live in the same
// fixture package, so a single Run covers red and green together.

func TestRefPair(t *testing.T) {
	linttest.Run(t, lint.RefPairAnalyzer, "refpair")
}

func TestLockIO(t *testing.T) {
	linttest.Run(t, lint.LockIOAnalyzer, "lockio")
}

func TestAtomicMix(t *testing.T) {
	linttest.Run(t, lint.AtomicMixAnalyzer, "atomicmix")
}

func TestCtxDetach(t *testing.T) {
	linttest.Run(t, lint.CtxDetachAnalyzer, "ctxdetach")
}

func TestLockOrder(t *testing.T) {
	linttest.Run(t, lint.LockOrderAnalyzer, "lockorder")
}

// TestLockOrderCrossPackage: the dependency establishes Registry.Mu →
// Index.Mu and exports acquire facts; the dependent package closes the
// cycle and reports it with the full chain naming both packages' sites.
func TestLockOrderCrossPackage(t *testing.T) {
	linttest.Run(t, lint.LockOrderAnalyzer, "lockorder2/app")
}

func TestGoStop(t *testing.T) {
	linttest.Run(t, lint.GoStopAnalyzer, "gostop")
}

// TestGoStopCrossPackage: lib classifies its loops and exports
// long-lived facts; the dependent constructor launching the unstoppable
// one is flagged at the launch site.
func TestGoStopCrossPackage(t *testing.T) {
	linttest.Run(t, lint.GoStopAnalyzer, "gostop2/app")
}

func TestSnapMono(t *testing.T) {
	linttest.Run(t, lint.SnapMonoAnalyzer, "snapmono")
}

// TestSnapMonoCrossPackage: lib marks Stats.Fills as a monotonic
// counter; the dependent package's reset and decrement are flagged via
// the imported fact.
func TestSnapMonoCrossPackage(t *testing.T) {
	linttest.Run(t, lint.SnapMonoAnalyzer, "snapmono2/app")
}

// TestSuppressionRequiresReason: an //lint:ignore with no reason does
// not suppress, and is reported in its own right. (Not expressible as a
// want comment: the marker would parse as the reason.)
func TestSuppressionRequiresReason(t *testing.T) {
	got := linttest.Diagnostics(t, lint.LockIOAnalyzer, "suppress")
	if len(got) != 2 {
		t.Fatalf("want 2 diagnostics (reasonless suppression + unsuppressed sleep), got %d: %q", len(got), got)
	}
	if !strings.Contains(got[0], "suppression of periscopelint/lockio without a reason") {
		t.Errorf("missing reasonless-suppression diagnostic: %q", got[0])
	}
	if !strings.Contains(got[1], "time.Sleep while mu is held") {
		t.Errorf("sleep was suppressed by a reasonless //lint:ignore: %q", got[1])
	}
}

// TestSuppressionMultiPackage: the reasonless-ignore rule holds for
// dependency packages analyzed as part of a dependent's closure — the
// fixture's findings live in dep, the target is app.
func TestSuppressionMultiPackage(t *testing.T) {
	got := linttest.Diagnostics(t, lint.LockIOAnalyzer, "suppressmulti/app")
	if len(got) != 2 {
		t.Fatalf("want 2 diagnostics (reasonless suppression + unsuppressed send in dep), got %d: %q", len(got), got)
	}
	if !strings.Contains(got[0], "dep.go") || !strings.Contains(got[0], "suppression of periscopelint/lockio without a reason") {
		t.Errorf("missing reasonless-suppression diagnostic from dependency package: %q", got[0])
	}
	if !strings.Contains(got[1], "channel send") || !strings.Contains(got[1], "b.mu is held") {
		t.Errorf("send was suppressed by a reasonless //lint:ignore in a dependency: %q", got[1])
	}
}

// TestSuiteComplete pins the suite composition CI runs.
func TestSuiteComplete(t *testing.T) {
	want := []string{"refpair", "lockio", "atomicmix", "ctxdetach", "lockorder", "gostop", "snapmono"}
	got := lint.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() = %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d] = %s, want %s", i, a.Name, want[i])
		}
	}
}
