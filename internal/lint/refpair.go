package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"
)

// RefPairAnalyzer checks Retain/Release pairing on *rtmp.SharedPayload
// references created in a function via rtmp.SharePayload.
//
// The analysis is flow-sensitive over the function's CFG and tracks a
// per-path reference balance: SharePayload opens one reference,
// Retain adds one, Release drops one. A path that reaches a return with
// a positive balance leaks a pooled buffer; a Release with no reference
// held on some path is a double release (it would panic the pool at
// runtime, or worse, recycle a buffer another consumer still reads).
//
// Ownership handoffs are recognized structurally: as soon as the
// reference escapes the function's hands — passed to a call, stored in
// a composite literal or another variable, sent on a channel, returned,
// or captured by a closure — the receiving queue is assumed to own it
// (the hub/feed convention) and the path is no longer tracked. The
// idiomatic hot path therefore stays quiet: Retain before each handoff,
// one final Release of the creating reference.
var RefPairAnalyzer = &analysis.Analyzer{
	Name:     "refpair",
	Doc:      "check SharePayload/Retain/Release pairing on every exit path of a function",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      runRefPair,
}

// refpair abstract states, per tracked variable along one path.
const (
	balMax = 3 // clamp: balances above this are treated as "many"
)

type refState struct {
	bal          int8 // held references on this path
	deferRelease bool // a defer sp.Release() is pending on this path
}

func runRefPair(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		var g *cfg.CFG
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
			if body != nil {
				g = cfgs.FuncDecl(fn)
			}
		case *ast.FuncLit:
			body = fn.Body
			g = cfgs.FuncLit(fn)
		}
		if body == nil || g == nil {
			return
		}
		for _, tv := range refPairTargets(pass, body) {
			refPairCheck(pass, sup, g, tv)
		}
	})
	return nil, nil
}

// tracked is one local variable holding a SharePayload-created reference.
type tracked struct {
	obj     *types.Var
	created *ast.CallExpr // the SharePayload call
	assign  *ast.AssignStmt
}

// refPairTargets finds `sp := rtmp.SharePayload(...)` in this exact
// function body (not nested literals) where sp is assigned exactly once.
func refPairTargets(pass *analysis.Pass, body *ast.BlockStmt) []tracked {
	var out []tracked
	assignCount := map[*types.Var]int{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var); ok {
				assignCount[v]++
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested functions have their own CFG and pass
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isSharePayloadCall(pass, call) {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
		if !ok || assignCount[v] != 1 {
			return true // reassigned references are beyond this analysis
		}
		out = append(out, tracked{obj: v, created: call, assign: as})
		return true
	})
	return out
}

// isSharePayloadCall reports whether call invokes rtmp.SharePayload.
func isSharePayloadCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch f := call.Fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return false
	}
	fn, ok := pass.TypesInfo.ObjectOf(id).(*types.Func)
	return ok && fn.Name() == "SharePayload" && fn.Pkg() != nil && pkgBase(fn.Pkg().Path()) == "rtmp"
}

// isSharedPayloadMethod reports whether call is sp.<name>() on the
// tracked variable, for name in Retain/Release/Bytes.
func refPairMethod(pass *analysis.Pass, tv tracked, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || pass.TypesInfo.ObjectOf(id) != tv.obj {
		return "", false
	}
	switch sel.Sel.Name {
	case "Retain", "Release", "Bytes":
		return sel.Sel.Name, true
	}
	return "", false
}

// refPairCheck runs the balance interpretation for one tracked variable.
func refPairCheck(pass *analysis.Pass, sup *suppressor, g *cfg.CFG, tv tracked) {
	// Locate the creating assignment's block and node index.
	startBlock, startNode := -1, -1
	for bi, b := range g.Blocks {
		for ni, n := range b.Nodes {
			if n == ast.Node(tv.assign) {
				startBlock, startNode = bi, ni
			}
		}
	}
	if startBlock < 0 {
		return // unreachable code or a CFG shape we do not model
	}

	type work struct {
		block int
		node  int // first node index to interpret
		st    refState
	}
	seen := map[work]bool{}
	// doubleReported/leakReported dedupe diagnostics per position.
	reported := map[token.Pos]bool{}

	var queue []work
	push := func(w work) {
		if !seen[w] {
			seen[w] = true
			queue = append(queue, w)
		}
	}
	push(work{startBlock, startNode, refState{}})

	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		b := g.Blocks[w.block]
		st := w.st
		transferred := false
		for ni := w.node; ni < len(b.Nodes); ni++ {
			n := b.Nodes[ni]
			if n == ast.Node(tv.assign) {
				st.bal = 1
				continue
			}
			use, kind := refPairUse(pass, tv, n)
			if !use {
				continue
			}
			switch kind {
			case "Retain":
				if st.bal < balMax {
					st.bal++
				}
			case "Release":
				if st.bal <= 0 {
					pos := n.Pos()
					if !reported[pos] {
						reported[pos] = true
						sup.report(pass, pos, "%s.Release with no reference held on this path (SharePayload at %s): double release recycles a buffer another consumer may still read",
							tv.obj.Name(), pass.Fset.Position(tv.created.Pos()))
					}
					transferred = true // stop: avoid cascading reports
				} else {
					st.bal--
				}
			case "Bytes":
				// reading the payload does not move the reference
			case "defer-release":
				st.deferRelease = true
			case "handoff":
				// Ownership may have moved to a queue/callee; the
				// convention says the receiver releases it. Stop tracking
				// this path.
				transferred = true
			}
			if transferred {
				break
			}
		}
		if transferred {
			continue
		}
		if len(b.Succs) == 0 {
			if !b.Live {
				continue
			}
			eff := int(st.bal)
			if st.deferRelease {
				eff--
			}
			if eff > 0 && st.bal > 0 {
				pos := tv.created.Pos()
				// Prefer the return statement position if present.
				for _, n := range b.Nodes {
					if r, ok := n.(*ast.ReturnStmt); ok {
						pos = r.Pos()
					}
				}
				if !reported[pos] {
					reported[pos] = true
					sup.report(pass, pos, "this path leaks a rtmp.SharedPayload reference to %s (SharePayload at %s): Release it or hand it off before returning",
						tv.obj.Name(), pass.Fset.Position(tv.created.Pos()))
				}
			}
			continue
		}
		for _, s := range b.Succs {
			push(work{int(s.Index), 0, st})
		}
	}
}

// refPairUse classifies one CFG node's use of the tracked variable:
// Retain/Release/Bytes method calls, a deferred Release, or any other
// appearance (a handoff). Nodes not mentioning the variable return false.
func refPairUse(pass *analysis.Pass, tv tracked, n ast.Node) (bool, string) {
	// A defer sp.Release() keeps the balance until function exit.
	if d, ok := n.(*ast.DeferStmt); ok {
		if name, ok := refPairMethod(pass, tv, d.Call); ok && name == "Release" {
			return true, "defer-release"
		}
	}
	mentions := false
	kind := ""
	ast.Inspect(n, func(x ast.Node) bool {
		if kind == "handoff" {
			return false
		}
		if _, ok := x.(*ast.FuncLit); ok {
			// Capture by a closure is a handoff: the closure may run later.
			if refPairMentions(pass, tv, x) {
				mentions, kind = true, "handoff"
			}
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok {
			if name, ok := refPairMethod(pass, tv, call); ok {
				mentions = true
				if kind == "" {
					kind = name
				}
				// Do not descend: sp in sp.Release() is not a handoff.
				return false
			}
		}
		if id, ok := x.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == tv.obj {
			mentions, kind = true, "handoff"
		}
		return true
	})
	return mentions, kind
}

// refPairMentions reports whether the subtree references the variable.
func refPairMentions(pass *analysis.Pass, tv tracked, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == tv.obj {
			found = true
		}
		return !found
	})
	return found
}
