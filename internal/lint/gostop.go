package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// GoStopAnalyzer checks that every long-lived goroutine launched from a
// constructor path (New*/Open*/Start*/Dial* and everything those reach
// inside the package) is provably stoppable. A background loop with no
// stop path outlives its owner: the fill workers, churn loops and
// heart/presence tickers this testbed runs by the thousand must all die
// with their subsystem, or a test fleet (and eventually a production
// fleet) leaks goroutines on every construct/teardown cycle.
//
// A goroutine counts as long-lived when its body (or a same-package
// function it calls) loops without a bound: `for {}`, `for` over a
// channel. It counts as stoppable when any of these hold:
//
//   - it selects on or receives from a channel that some function in
//     the defining package closes (quit/stop/done channels);
//   - it watches a context.Context (ctx.Done()/ctx.Err()), or the
//     launch site passes a context in;
//   - it is joined via sync.WaitGroup (defer wg.Done());
//   - its loop performs a blocking Accept/Read/Recv and exits on error:
//     the goroutine's lifetime is its connection's, and closing the conn
//     is the stop path (the runtime half of that contract is
//     internal/leakcheck's to enforce).
//
// Cross-package launches (`go pkgtype.Run()`) resolve through an
// exported fact: the defining package classifies the method, the
// launching package reads the verdict.
var GoStopAnalyzer = &analysis.Analyzer{
	Name:      "gostop",
	Doc:       "check that long-lived goroutines launched from constructor/Start paths have a stop path",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*goStopFact)(nil)},
	Run:       runGoStop,
}

// goStopFact is exported on every long-lived function so launch sites
// in other packages can check stoppability.
type goStopFact struct {
	Stoppable bool
	Why       string
}

func (*goStopFact) AFact() {}

func (f *goStopFact) String() string {
	if f.Stoppable {
		return "long-lived(stoppable: " + f.Why + ")"
	}
	return "long-lived(no stop path)"
}

// verdict is one function's lifecycle classification.
type verdict struct {
	longLived bool
	stoppable bool
	why       string
}

func runGoStop(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Package-wide context: which channel objects does anything close,
	// and which functions exist.
	closed := map[*types.Var]bool{}
	decls := map[*types.Func]*ast.FuncDecl{}
	insp.Preorder([]ast.Node{(*ast.CallExpr)(nil), (*ast.FuncDecl)(nil)}, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "close" && len(x.Args) == 1 {
				if _, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin); isBuiltin {
					if v := chanVar(pass, x.Args[0]); v != nil {
						closed[v] = true
					}
				}
			}
		case *ast.FuncDecl:
			if fn, ok := pass.TypesInfo.ObjectOf(x.Name).(*types.Func); ok {
				decls[fn] = x
			}
		}
	})

	gs := &goStop{pass: pass, closed: closed, decls: decls, verdicts: map[*types.Func]*verdict{}}

	// Classify and export a fact for every long-lived function, whether
	// or not this package launches it: a dependent package might.
	for fn := range decls {
		if v := gs.classifyFunc(fn); v.longLived {
			pass.ExportObjectFact(fn, &goStopFact{Stoppable: v.stoppable, Why: v.why})
		}
	}

	// Constructor paths: New*/Open*/Start*/Dial* roots and every
	// same-package function they reach.
	onPath := map[*types.Func]bool{}
	var reach func(fn *types.Func)
	reach = func(fn *types.Func) {
		if fn == nil || onPath[fn] || fn.Pkg() != pass.Pkg {
			return
		}
		onPath[fn] = true
		decl := decls[fn]
		if decl == nil || decl.Body == nil {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				reach(staticCallee(pass, call))
			}
			return true
		})
	}
	for fn, decl := range decls {
		if decl.Body != nil && isConstructorName(fn.Name()) {
			reach(fn)
		}
	}

	// Check every go statement lexically inside a constructor-path body.
	for fn, decl := range decls {
		if !onPath[fn] || decl.Body == nil {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			v := gs.classifyLaunch(g.Call)
			if v.longLived && !v.stoppable {
				sup.report(pass, g.Pos(), "long-lived goroutine launched from constructor path %s has no stop path: %s; give it a context, a quit channel closed on teardown, or a WaitGroup join",
					fn.Name(), launchDesc(pass, g.Call))
			}
			return true
		})
	}
	return nil, nil
}

type goStop struct {
	pass     *analysis.Pass
	closed   map[*types.Var]bool
	decls    map[*types.Func]*ast.FuncDecl
	verdicts map[*types.Func]*verdict
}

// classifyLaunch classifies the function a go statement launches.
func (gs *goStop) classifyLaunch(call *ast.CallExpr) verdict {
	// A context handed to the goroutine is a stop path regardless of
	// what the callee does with it (the callee side is checked in its
	// own package).
	for _, arg := range call.Args {
		if isContextType(gs.pass.TypesInfo.TypeOf(arg)) {
			return verdict{longLived: true, stoppable: true, why: "context passed at launch"}
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return gs.classifyBody(lit.Body, nil)
	}
	callee := staticCallee(gs.pass, call)
	if callee == nil {
		return verdict{} // dynamic launch: unknown, stay quiet
	}
	return gs.classifyFunc(callee)
}

// classifyFunc classifies a function by object: same-package functions
// by body, cross-package ones by imported fact (no fact = not known to
// be long-lived = quiet).
func (gs *goStop) classifyFunc(fn *types.Func) verdict {
	if fn.Pkg() != gs.pass.Pkg {
		var fact goStopFact
		if gs.pass.ImportObjectFact(fn, &fact) {
			return verdict{longLived: true, stoppable: fact.Stoppable, why: fact.Why}
		}
		return verdict{}
	}
	if v, ok := gs.verdicts[fn]; ok {
		if v == nil {
			return verdict{} // recursion: break the cycle conservatively
		}
		return *v
	}
	gs.verdicts[fn] = nil
	decl := gs.decls[fn]
	v := verdict{}
	if decl != nil && decl.Body != nil {
		v = gs.classifyBody(decl.Body, decl.Type)
	}
	gs.verdicts[fn] = &v
	return v
}

// classifyBody inspects one function body. ftype carries the declared
// parameters (nil for literals): receiving from a parameter channel is
// stoppable — the launcher owns it.
func (gs *goStop) classifyBody(body *ast.BlockStmt, ftype *ast.FuncType) verdict {
	params := map[*types.Var]bool{}
	if ftype != nil && ftype.Params != nil {
		for _, f := range ftype.Params.List {
			for _, name := range f.Names {
				if v, ok := gs.pass.TypesInfo.ObjectOf(name).(*types.Var); ok {
					params[v] = true
				}
			}
		}
	}
	v := verdict{}
	evid := func(ok bool, why string) {
		if ok && !v.stoppable {
			v.stoppable = true
			v.why = why
		}
	}
	// Direct classification of this body. Nested function literals are
	// skipped: a loop inside a closure this body launches or stores is
	// not this body's loop (launched literals are classified directly at
	// their go statement).
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if x.Cond == nil {
				v.longLived = true
			}
		case *ast.RangeStmt:
			if t := gs.pass.TypesInfo.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					v.longLived = true
					ch := chanVar(gs.pass, x.X)
					evid(ch != nil && (gs.closed[ch] || params[ch]), "ranges over a closable channel")
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				ch := chanVar(gs.pass, x.X)
				evid(ch != nil && (gs.closed[ch] || params[ch]), "receives from a channel closed in package")
				evid(isDoneCall(gs.pass, x.X), "watches a context")
			}
		case *ast.CallExpr:
			evid(isDoneCall(gs.pass, x), "watches a context")
			if name, isMethod := calleeName(gs.pass, x); isMethod {
				evid(strings.HasPrefix(name, "Accept") || strings.HasPrefix(name, "Read") || strings.HasPrefix(name, "Recv"),
					"loops on blocking conn I/O; closing the conn stops it")
			}
		case *ast.DeferStmt:
			if name, isMethod := calleeName(gs.pass, x.Call); isMethod && name == "Done" {
				if isWaitGroup(gs.pass.TypesInfo.TypeOf(selRecv(x.Call))) {
					evid(true, "joined via WaitGroup")
				}
			}
		}
		return true
	})
	if v.longLived {
		return v
	}
	// No loop of its own: the long-lived loop may live in a same-package
	// helper this body calls (e.g. run() → loop()).
	var out verdict
	ast.Inspect(body, func(n ast.Node) bool {
		if out.longLived {
			return false
		}
		switch n.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			// A goroutine or closure the body hands off is not the
			// body's own loop.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := staticCallee(gs.pass, call)
		if callee == nil || callee.Pkg() != gs.pass.Pkg {
			return true
		}
		if cv := gs.classifyFunc(callee); cv.longLived {
			out = cv
			// The wrapper's own evidence also counts (e.g. it passed a
			// quit channel down, or holds the WaitGroup join).
			if !out.stoppable && v.stoppable {
				out.stoppable, out.why = true, v.why
			}
		}
		return true
	})
	if out.longLived {
		return out
	}
	return v
}

// launchDesc names what a go statement launches, for the diagnostic.
func launchDesc(pass *analysis.Pass, call *ast.CallExpr) string {
	if _, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return "the launched func literal runs an unbounded loop"
	}
	if fn := staticCallee(pass, call); fn != nil {
		return fn.FullName() + " runs an unbounded loop"
	}
	return "it runs an unbounded loop"
}

// chanVar resolves a channel expression to the field or variable that
// holds it: sh.quit → the quit field var, done → the local/param var.
func chanVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := pass.TypesInfo.ObjectOf(x).(*types.Var)
		return v
	case *ast.SelectorExpr:
		v, _ := pass.TypesInfo.ObjectOf(x.Sel).(*types.Var)
		return v
	}
	return nil
}

// isDoneCall reports whether e is ctx.Done() or ctx.Err() on a
// context.Context value.
func isDoneCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Done" && sel.Sel.Name != "Err") {
		return false
	}
	return isContextType(pass.TypesInfo.TypeOf(sel.X))
}

func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// calleeName returns a method call's selector name; ok is false for
// non-selector calls.
func calleeName(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	return sel.Sel.Name, true
}

// selRecv returns a method call's receiver expression, or nil.
func selRecv(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// staticCallee resolves a call to its static *types.Func (same or other
// package); nil for dynamic calls.
func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		if s, ok := pass.TypesInfo.Selections[fun]; ok {
			if _, isIface := s.Recv().Underlying().(*types.Interface); isIface {
				return nil
			}
		}
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.ObjectOf(id).(*types.Func)
	return fn
}

// isConstructorName reports whether a function name opens a
// constructor/lifecycle path for a long-lived type.
func isConstructorName(name string) bool {
	for _, p := range []string{"New", "Open", "Start", "Dial", "new", "open", "start", "dial"} {
		if strings.HasPrefix(name, p) {
			rest := name[len(p):]
			// "new" alone, or followed by an upper-case/word boundary:
			// newHub yes, newspaperRoute no.
			if rest == "" || rest[0] >= 'A' && rest[0] <= 'Z' {
				return true
			}
		}
	}
	return false
}
