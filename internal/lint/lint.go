// Package lint is periscopelint: a go/analysis suite enforcing the
// concurrency and ownership invariants this codebase has already been
// burned by. Each analyzer encodes one historical bug class:
//
//   - refpair: a *rtmp.SharedPayload reference created with SharePayload
//     must be Released on every exit path or handed off exactly once
//     (PR 3's refcounted fan-out; a missed Release leaks a pooled buffer,
//     an extra one corrupts the pool).
//   - lockio: no blocking operation (conn reads/writes, HTTP round
//     trips, bare channel sends, time.Sleep) may run while a
//     sync.Mutex/RWMutex is held, unless the mutex guards that very
//     connection (the seed chat bug: room.Broadcast wrote every member's
//     websocket under the room lock).
//   - atomicmix: a struct field accessed through sync/atomic must never
//     also be read or written plainly anywhere in the package (the PR 3
//     websocket races on BytesRead/BytesWritten/closed).
//   - ctxdetach: a goroutine whose result is awaited by coalesced
//     waiters (single-flight fills) must not capture the initiating
//     request's context.Context (the PR 4 initiator-disconnect bug: one
//     viewer hanging up failed the fill for everyone).
//   - lockorder: the module-wide lock acquisition graph must be acyclic.
//     Functions export the lock classes they may acquire and packages
//     export their accumulated edges as facts, so a cycle split across
//     packages (service holding its shard lock while hls takes a replica
//     lock, and vice versa elsewhere) is reported with its full chain.
//   - gostop: every long-lived goroutine launched from a constructor
//     path (New*/Open*/Start*/Dial*) must be provably stoppable — a
//     context, a quit channel closed on teardown, a WaitGroup join, or a
//     conn-lifetime read loop. The runtime half of this contract is
//     internal/leakcheck's TestMain harness.
//   - snapmono: counter fields folded into Snapshot/Stats aggregates
//     must only accumulate — no zeroing, decrementing or atomic Store —
//     so snapshots never dip under churn (the monotonicity invariant the
//     service and hls stats tests rely on).
//
// Deliberate exceptions are suppressed inline with
//
//	//lint:ignore periscopelint/<name> <reason>
//
// on (or immediately above) the offending line; the reason is mandatory.
// The suite runs in CI via cmd/periscopelint.
package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Analyzers returns the full periscopelint suite in a stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		RefPairAnalyzer,
		LockIOAnalyzer,
		AtomicMixAnalyzer,
		CtxDetachAnalyzer,
		LockOrderAnalyzer,
		GoStopAnalyzer,
		SnapMonoAnalyzer,
	}
}

// ignorePrefix introduces an inline suppression comment.
const ignorePrefix = "//lint:ignore "

// suppressor records, per file, the lines on which one analyzer's
// diagnostics are suppressed by //lint:ignore comments.
type suppressor struct {
	fset  *token.FileSet
	lines map[string]map[int]bool // filename -> suppressed lines
}

// newSuppressor scans every comment in the pass for suppressions naming
// this analyzer ("periscopelint/<name>", comma-separated lists allowed).
// A suppression covers the comment's own line (trailing form) and the
// line immediately after it (standalone form). A suppression with no
// reason is itself reported: exceptions must say why they are safe.
func newSuppressor(pass *analysis.Pass) *suppressor {
	s := &suppressor{fset: pass.Fset, lines: map[string]map[int]bool{}}
	target := "periscopelint/" + pass.Analyzer.Name
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				names := strings.Split(fields[0], ",")
				match := false
				for _, n := range names {
					if n == target {
						match = true
					}
				}
				if !match {
					continue
				}
				if len(fields) < 2 {
					pass.Reportf(c.Pos(), "suppression of %s without a reason; write //lint:ignore %s <why this exception is safe>", target, target)
					continue
				}
				pos := s.fset.Position(c.Pos())
				m := s.lines[pos.Filename]
				if m == nil {
					m = map[int]bool{}
					s.lines[pos.Filename] = m
				}
				end := s.fset.Position(c.End())
				m[pos.Line] = true
				m[end.Line+1] = true
			}
		}
	}
	return s
}

// suppressed reports whether a diagnostic at pos is covered by an
// inline suppression.
func (s *suppressor) suppressed(pos token.Pos) bool {
	p := s.fset.Position(pos)
	return s.lines[p.Filename][p.Line]
}

// report emits a diagnostic unless suppressed.
func (s *suppressor) report(pass *analysis.Pass, pos token.Pos, format string, args ...any) {
	if s.suppressed(pos) {
		return
	}
	pass.Reportf(pos, format, args...)
}

// pkgBase returns the last element of a package path ("periscope/internal/rtmp"
// -> "rtmp"). Analyzer fixtures live under flat import paths, so rules
// that key on repo packages match by base name.
func pkgBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// baseIdent walks a selector chain (c.cw.buf -> c) to its base
// identifier; it returns nil for anything more exotic.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		default:
			return nil
		}
	}
}
