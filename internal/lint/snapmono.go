package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// SnapMonoAnalyzer enforces the "counters never dip under churn"
// invariant from PRs 4–7: a counter field that folds into a snapshot
// aggregate must only ever accumulate. A retired POP, a closed chat
// room, an unregistered replica all fold their totals into an aggregate
// precisely so that Service.Snapshot stays monotonic; one stray
// `c.fills = 0` on teardown silently un-counts history and every
// monotonicity test downstream starts flaking.
//
// A field is classified as a monotonic counter when all three hold:
//
//   - it accumulates: `f += x`, `f++`, atomic.AddT(&f, x) or
//     f.Add(x) on a sync/atomic wrapper;
//   - it folds into a snapshot: its value is read while building or
//     updating a struct whose type name contains "Stats" or "Snapshot",
//     or it is itself a field of such a struct;
//   - the defining package never decrements it (fields with negative
//     adds are gauges — member counts, queue depths — and exempt).
//
// Violations are plain reassignment to a constant (`f = 0`), decrements
// (`f--`, `f -= x`, negative adds), and atomic Store/Swap. Counter
// classification is exported as an object fact on the field, so a
// package folding another package's Stats cannot zero or subtract from
// those fields either.
var SnapMonoAnalyzer = &analysis.Analyzer{
	Name:      "snapmono",
	Doc:       "forbid resets and decrements of counter fields that fold into Snapshot/Stats aggregates",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*counterFact)(nil)},
	Run:       runSnapMono,
}

// counterFact marks a struct field as a monotonic snapshot counter.
type counterFact struct{}

func (*counterFact) AFact() {}

func (*counterFact) String() string { return "monotonic-counter" }

// fieldUse is one write-ish operation on a field, recorded during the
// package scan and judged after classification.
type fieldUse struct {
	pos  token.Pos
	what string // diagnostic verb: "zeroed", "decremented", ...
}

func runSnapMono(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	incremented := map[*types.Var]bool{}
	decremented := map[*types.Var]bool{}
	folded := map[*types.Var]bool{}
	resets := map[*types.Var][]fieldUse{}

	addReset := func(v *types.Var, pos token.Pos, what string) {
		resets[v] = append(resets[v], fieldUse{pos: pos, what: what})
	}

	// fieldOf resolves an expression to a struct-field var.
	fieldOf := func(e ast.Expr) *types.Var {
		e = ast.Unparen(e)
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = ast.Unparen(u.X)
		}
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		v, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Var)
		if !ok || !v.IsField() {
			return nil
		}
		return v
	}

	// markReads records every field read inside e as snapshot-folded.
	markReads := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				if v, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Var); ok && v.IsField() {
					folded[v] = true
				}
			}
			return true
		})
	}

	constSign := func(e ast.Expr) (isConst bool, negative bool) {
		tv, ok := pass.TypesInfo.Types[e]
		if !ok || tv.Value == nil {
			return false, false
		}
		if tv.Value.Kind() != constant.Int && tv.Value.Kind() != constant.Float {
			return true, false
		}
		return true, constant.Sign(tv.Value) < 0
	}

	insp.Preorder([]ast.Node{(*ast.AssignStmt)(nil), (*ast.IncDecStmt)(nil), (*ast.CallExpr)(nil), (*ast.CompositeLit)(nil)}, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				v := fieldOf(lhs)
				if v == nil {
					continue
				}
				var rhs ast.Expr
				if i < len(x.Rhs) {
					rhs = x.Rhs[i]
				} else if len(x.Rhs) == 1 {
					rhs = x.Rhs[0]
				}
				switch x.Tok {
				case token.ADD_ASSIGN:
					incremented[v] = true
					if isSnapshotOwner(pass, lhs) && rhs != nil {
						markReads(rhs)
					}
				case token.SUB_ASSIGN:
					decremented[v] = true
					addReset(v, x.Pos(), "decremented")
				case token.ASSIGN:
					if rhs == nil {
						continue
					}
					if isConst, _ := constSign(rhs); isConst {
						addReset(v, x.Pos(), "reassigned to a constant")
					}
					if isSnapshotOwner(pass, lhs) {
						markReads(rhs)
					}
				}
			}
		case *ast.IncDecStmt:
			v := fieldOf(x.X)
			if v == nil {
				return
			}
			if x.Tok == token.INC {
				incremented[v] = true
			} else {
				decremented[v] = true
				addReset(v, x.Pos(), "decremented")
			}
		case *ast.CompositeLit:
			if t := pass.TypesInfo.TypeOf(x); t != nil && isSnapshotName(typeName(t)) {
				for _, el := range x.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						markReads(kv.Value)
					} else {
						markReads(el)
					}
				}
			}
		case *ast.CallExpr:
			snapMonoCall(pass, x, fieldOf, constSign, incremented, decremented, addReset)
		}
	})

	// Classify this package's counters and export facts. A field of a
	// Stats/Snapshot struct is the aggregate itself: decrementing it IS
	// the dip bug, so decrements cannot reclassify it as a gauge. A
	// working field outside a snapshot struct that the package
	// decrements is a gauge (member count, queue depth) and exempt.
	isCounter := func(v *types.Var) bool {
		if v.Pkg() != pass.Pkg {
			// Cross-package: the defining package's verdict arrives as a
			// fact.
			var fact counterFact
			return pass.ImportObjectFact(v, &fact)
		}
		if !incremented[v] {
			return false
		}
		if ownerIsSnapshot(v) {
			return true
		}
		return !decremented[v] && folded[v]
	}
	for v := range incremented {
		if v.Pkg() == pass.Pkg && isCounter(v) {
			pass.ExportObjectFact(v, &counterFact{})
		}
	}

	// Judge the recorded writes.
	for v, uses := range resets {
		if !isCounter(v) {
			continue
		}
		owner := ""
		if o := fieldOwnerName(v); o != "" {
			owner = o + "."
		}
		for _, u := range uses {
			sup.report(pass, u.pos, "monotonic counter %s%s (folded into a Snapshot/Stats aggregate) is %s; counters must only accumulate so snapshots never dip under churn — fold into an aggregate instead of resetting",
				owner, v.Name(), u.what)
		}
	}
	return nil, nil
}

// snapMonoCall handles the sync/atomic surface: package functions
// (atomic.AddInt64, atomic.StoreInt64) and wrapper methods
// (atomic.Int64.Add/Store/Swap).
func snapMonoCall(pass *analysis.Pass, call *ast.CallExpr,
	fieldOf func(ast.Expr) *types.Var,
	constSign func(ast.Expr) (bool, bool),
	incremented, decremented map[*types.Var]bool,
	addReset func(*types.Var, token.Pos, string)) {

	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		// Wrapper method: x.f.Add(n), x.f.Store(n), x.f.Swap(n).
		v := fieldOf(sel.X)
		if v == nil {
			return
		}
		switch fn.Name() {
		case "Add":
			if len(call.Args) == 1 {
				if isConst, neg := constSign(call.Args[0]); isConst && neg {
					decremented[v] = true
					addReset(v, call.Pos(), "decremented (negative atomic Add)")
					return
				}
			}
			incremented[v] = true
		case "Store":
			addReset(v, call.Pos(), "overwritten (atomic Store)")
		case "Swap":
			addReset(v, call.Pos(), "reset (atomic Swap)")
		}
		return
	}
	// Package function: atomic.AddT(&x.f, n), atomic.StoreT(&x.f, n).
	if len(call.Args) < 1 {
		return
	}
	v := fieldOf(call.Args[0])
	if v == nil {
		return
	}
	switch {
	case strings.HasPrefix(fn.Name(), "Add"):
		if len(call.Args) == 2 {
			if isConst, neg := constSign(call.Args[1]); isConst && neg {
				decremented[v] = true
				addReset(v, call.Pos(), "decremented (negative atomic Add)")
				return
			}
		}
		incremented[v] = true
	case strings.HasPrefix(fn.Name(), "Store"):
		addReset(v, call.Pos(), "overwritten (atomic Store)")
	case strings.HasPrefix(fn.Name(), "Swap"):
		addReset(v, call.Pos(), "reset (atomic Swap)")
	}
}

// isSnapshotOwner reports whether the assignment target hangs off a
// struct whose type name marks it as a snapshot aggregate.
func isSnapshotOwner(pass *analysis.Pass, lhs ast.Expr) bool {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return false
	}
	return isSnapshotName(typeName(s.Recv()))
}

// ownerIsSnapshot reports whether the field's declaring struct is
// itself a Stats/Snapshot type (its fields are the aggregate).
func ownerIsSnapshot(v *types.Var) bool {
	return isSnapshotName(fieldOwnerName(v))
}

// fieldOwnerName finds the named struct type declaring field v.
func fieldOwnerName(v *types.Var) string {
	if v.Pkg() == nil {
		return ""
	}
	scope := v.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return tn.Name()
			}
		}
	}
	return ""
}

func typeName(t types.Type) string {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func isSnapshotName(name string) bool {
	return strings.Contains(name, "Stats") || strings.Contains(name, "Snapshot")
}
