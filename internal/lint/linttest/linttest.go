// Package linttest is a minimal analysistest replacement for the
// periscopelint suite.
//
// The canonical golang.org/x/tools/go/analysis/analysistest depends on
// go/packages, which is not part of the toolchain-vendored subset of
// x/tools this repo builds against. This harness reimplements the part
// the lint tests need: load a GOPATH-style fixture package from
// testdata/src/<path>, run an analyzer (and its Requires graph) over
// it, and compare the diagnostics against // want "regexp" comments.
//
// Fixture imports resolve against testdata/src first (so fixtures can
// import stub packages like testdata/src/rtmp), then fall back to the
// compiler's source importer for the standard library.
//
// Multi-package fixtures: when the fixture imports other packages under
// testdata/src, the analyzer runs over every fixture package in
// dependency order before the target, with object and package facts
// flowing across the boundary exactly as under go vet. Diagnostics and
// // want comments are checked across the whole fixture closure, so a
// dependency package asserts its own findings.
//
// Fact assertions: a comment of the form
//
//	// want Name:"regexp"
//
// asserts that the analyzer exported an object fact on the object Name
// declared on that line, and that the fact's String() matches the
// regexp. Diagnostic and fact expectations can share one want comment.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads testdata/src/<pkgpath> (relative to the calling test's
// package directory) and checks a's diagnostics and exported facts
// against the fixture closure's // want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	res := analyze(t, a, pkgpath)
	checkWants(t, a, res)
}

// Diagnostics loads the fixture and returns the analyzer's diagnostics
// (across the whole fixture closure) as "basename:line: message"
// strings, for expectations that cannot be written as // want comments
// (e.g. diagnostics about the suppression comments themselves).
func Diagnostics(t *testing.T, a *analysis.Analyzer, pkgpath string) []string {
	t.Helper()
	res := analyze(t, a, pkgpath)
	var out []string
	for _, d := range res.diags {
		pos := res.fset.Position(d.Pos)
		out = append(out, fmt.Sprintf("%s:%d: %s", filepath.Base(pos.Filename), pos.Line, d.Message))
	}
	sort.Strings(out)
	return out
}

// sharedLoaders caches fixture loaders per root so the (expensive)
// source-importing of the standard library runs once per test binary.
var (
	loaderMu      sync.Mutex
	sharedLoaders = map[string]*loader{}
)

// result is everything one analysis run produced: the fixture closure's
// files, the analyzer's diagnostics across the closure, and the
// exported object facts.
type result struct {
	fset     *token.FileSet
	files    []*ast.File
	diags    []analysis.Diagnostic
	objFacts map[objFactKey]analysis.Fact
}

func analyze(t *testing.T, a *analysis.Analyzer, pkgpath string) *result {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Join(wd, "testdata", "src")
	loaderMu.Lock()
	defer loaderMu.Unlock()
	ld := sharedLoaders[root]
	if ld == nil {
		ld = newLoader(root)
		sharedLoaders[root] = ld
	}
	if _, err := ld.load(pkgpath); err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}
	// The target's fixture closure, in dependency-first load order: the
	// loader appends a package only after its imports finished loading,
	// so filtering the load order by reachability yields a topological
	// order with dependencies compiled (and analyzed) first.
	closure := ld.closure(pkgpath)
	res, err := runAnalyzer(a, ld, closure)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgpath, err)
	}
	return res
}

// loadedPackage bundles one type-checked fixture package.
type loadedPackage struct {
	path  string
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader resolves fixture imports from a testdata/src root, falling
// back to the source importer for the standard library.
type loader struct {
	root     string
	fset     *token.FileSet
	fallback types.Importer
	loaded   map[string]*loadedPackage
	order    []string // fixture paths in load-completion (topological) order
}

func newLoader(root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:     root,
		fset:     fset,
		fallback: importer.ForCompiler(fset, "source", nil),
		loaded:   map[string]*loadedPackage{},
	}
}

// Import implements types.Importer over the fixture tree.
func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.root, path); dirExists(dir) {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return l.fallback.Import(path)
}

func (l *loader) load(path string) (*loadedPackage, error) {
	if p, ok := l.loaded[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, path)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &loadedPackage{path: path, pkg: pkg, files: files, info: info}
	l.loaded[path] = p
	// Imports load recursively through conf.Check, so by the time we get
	// here every fixture dependency is already in l.order.
	l.order = append(l.order, path)
	return p, nil
}

// closure returns the fixture packages reachable from target (including
// target itself), dependency-first.
func (l *loader) closure(target string) []*loadedPackage {
	reach := map[string]bool{}
	var mark func(path string)
	mark = func(path string) {
		if reach[path] {
			return
		}
		reach[path] = true
		p := l.loaded[path]
		if p == nil {
			return
		}
		for _, imp := range p.pkg.Imports() {
			if _, ok := l.loaded[imp.Path()]; ok {
				mark(imp.Path())
			}
		}
	}
	mark(target)
	var out []*loadedPackage
	for _, path := range l.order {
		if reach[path] {
			out = append(out, l.loaded[path])
		}
	}
	return out
}

// runAnalyzer executes a and its Requires closure over every package in
// pkgs (dependency-first), sharing fact stores so object and package
// facts exported by a dependency are importable downstream. It returns
// a's diagnostics across the whole closure.
func runAnalyzer(a *analysis.Analyzer, ld *loader, pkgs []*loadedPackage) (*result, error) {
	res := &result{fset: ld.fset, objFacts: map[objFactKey]analysis.Fact{}}
	pkgFacts := map[pkgFactKey]analysis.Fact{}

	for _, pkg := range pkgs {
		res.files = append(res.files, pkg.files...)
		results := map[*analysis.Analyzer]any{}
		running := map[*analysis.Analyzer]bool{}
		var run func(an *analysis.Analyzer) error
		run = func(an *analysis.Analyzer) error {
			if _, done := results[an]; done {
				return nil
			}
			if running[an] {
				return fmt.Errorf("analyzer dependency cycle at %s", an.Name)
			}
			running[an] = true
			for _, req := range an.Requires {
				if err := run(req); err != nil {
					return err
				}
			}
			resultOf := map[*analysis.Analyzer]any{}
			for _, req := range an.Requires {
				resultOf[req] = results[req]
			}
			pkg := pkg
			pass := &analysis.Pass{
				Analyzer:   an,
				Fset:       ld.fset,
				Files:      pkg.files,
				Pkg:        pkg.pkg,
				TypesInfo:  pkg.info,
				TypesSizes: types.SizesFor("gc", "amd64"),
				ResultOf:   resultOf,
				Report: func(d analysis.Diagnostic) {
					if an == a {
						res.diags = append(res.diags, d)
					}
				},
				ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
					f, ok := res.objFacts[objFactKey{obj, factType(fact)}]
					if ok {
						reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(f).Elem())
					}
					return ok
				},
				ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
					res.objFacts[objFactKey{obj, factType(fact)}] = fact
				},
				ImportPackageFact: func(p *types.Package, fact analysis.Fact) bool {
					f, ok := pkgFacts[pkgFactKey{p, factType(fact)}]
					if ok {
						reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(f).Elem())
					}
					return ok
				},
				ExportPackageFact: func(fact analysis.Fact) {
					pkgFacts[pkgFactKey{pkg.pkg, factType(fact)}] = fact
				},
				AllObjectFacts: func() []analysis.ObjectFact {
					var out []analysis.ObjectFact
					for k, f := range res.objFacts {
						out = append(out, analysis.ObjectFact{Object: k.obj, Fact: f})
					}
					return out
				},
				AllPackageFacts: func() []analysis.PackageFact {
					var out []analysis.PackageFact
					for k, f := range pkgFacts {
						out = append(out, analysis.PackageFact{Package: k.pkg, Fact: f})
					}
					return out
				},
				ReadFile: os.ReadFile,
			}
			r, err := an.Run(pass)
			if err != nil {
				return fmt.Errorf("%s: %w", an.Name, err)
			}
			results[an] = r
			return nil
		}
		if err := run(a); err != nil {
			return nil, fmt.Errorf("package %s: %w", pkg.path, err)
		}
	}
	return res, nil
}

type objFactKey struct {
	obj types.Object
	t   reflect.Type
}

type pkgFactKey struct {
	pkg *types.Package
	t   reflect.Type
}

func factType(f analysis.Fact) reflect.Type { return reflect.TypeOf(f) }

// want is one expectation parsed from a // want comment: a diagnostic
// regexp, or (when obj is non-empty) an object-fact assertion.
type want struct {
	file    string
	line    int
	obj     string // fact expectation: object name declared on this line
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRe = regexp.MustCompile("// want (.*)$")

// checkWants compares diagnostics and exported facts to // want
// comments across the whole fixture closure, using the same per-line
// convention as analysistest.
func checkWants(t *testing.T, a *analysis.Analyzer, res *result) {
	t.Helper()
	fset := res.fset
	var wants []*want
	for _, f := range res.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitWantPatterns(m[1]) {
					re, err := regexp.Compile(pat.re)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat.re, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, obj: pat.obj, re: re, raw: pat.re})
				}
			}
		}
	}

	for _, d := range res.diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if w.obj == "" && !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected %s diagnostic: %s", pos.Filename, pos.Line, a.Name, d.Message)
		}
	}

	// Fact expectations: the object named w.obj, declared on w's line,
	// must carry an exported fact whose String() matches.
	for _, w := range wants {
		if w.obj == "" {
			continue
		}
		for k, f := range res.objFacts {
			if k.obj == nil || k.obj.Name() != w.obj {
				continue
			}
			pos := fset.Position(k.obj.Pos())
			if pos.Filename == w.file && pos.Line == w.line && w.re.MatchString(fmt.Sprint(f)) {
				w.matched = true
				break
			}
		}
	}

	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if w.matched {
			continue
		}
		if w.obj != "" {
			t.Errorf("%s:%d: expected fact on %s matching %q, got none", w.file, w.line, w.obj, w.raw)
			continue
		}
		t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
	}
}

// wantPattern is one element of a want comment: a plain diagnostic
// regexp, or an obj:"regexp" fact assertion.
type wantPattern struct {
	obj string
	re  string
}

// splitWantPatterns parses the quoted/backquoted regexps after // want.
// An element of the form name:"re" (or name:`re`) asserts an object
// fact instead of a diagnostic.
func splitWantPatterns(s string) []wantPattern {
	var out []wantPattern
	s = strings.TrimSpace(s)
	for s != "" {
		var obj string
		if i := factPrefixLen(s); i > 0 {
			obj = s[:i-1] // drop the ':'
			s = s[i:]
		}
		if s == "" {
			return out
		}
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
			if end >= len(s) {
				return out
			}
			if unq, err := strconv.Unquote(s[:end+1]); err == nil {
				out = append(out, wantPattern{obj: obj, re: unq})
			}
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.Index(s[1:], "`")
			if end < 0 {
				return out
			}
			out = append(out, wantPattern{obj: obj, re: s[1 : end+1]})
			s = strings.TrimSpace(s[end+2:])
		default:
			return out
		}
	}
	return out
}

// factPrefixLen reports the length of a leading `identifier:` fact
// prefix (including the colon), or 0 when s starts with a quote.
func factPrefixLen(s string) int {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ':' {
			if i > 0 && i+1 < len(s) && (s[i+1] == '"' || s[i+1] == '`') {
				return i + 1
			}
			return 0
		}
		if !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || i > 0 && c >= '0' && c <= '9') {
			return 0
		}
	}
	return 0
}

func dirExists(dir string) bool {
	fi, err := os.Stat(dir)
	return err == nil && fi.IsDir()
}
