// Package linttest is a minimal analysistest replacement for the
// periscopelint suite.
//
// The canonical golang.org/x/tools/go/analysis/analysistest depends on
// go/packages, which is not part of the toolchain-vendored subset of
// x/tools this repo builds against. This harness reimplements the part
// the lint tests need: load a GOPATH-style fixture package from
// testdata/src/<path>, run an analyzer (and its Requires graph) over
// it, and compare the diagnostics against // want "regexp" comments.
//
// Fixture imports resolve against testdata/src first (so fixtures can
// import stub packages like testdata/src/rtmp), then fall back to the
// compiler's source importer for the standard library.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads testdata/src/<pkgpath> (relative to the calling test's
// package directory) and checks a's diagnostics against the fixture's
// // want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	ld, pkg, diags := analyze(t, a, pkgpath)
	_ = ld
	checkWants(t, a, ld.fset, pkg.files, diags)
}

// Diagnostics loads the fixture and returns the analyzer's diagnostics
// as "basename:line: message" strings, for expectations that cannot be
// written as // want comments (e.g. diagnostics about the suppression
// comments themselves).
func Diagnostics(t *testing.T, a *analysis.Analyzer, pkgpath string) []string {
	t.Helper()
	ld, _, diags := analyze(t, a, pkgpath)
	var out []string
	for _, d := range diags {
		pos := ld.fset.Position(d.Pos)
		out = append(out, fmt.Sprintf("%s:%d: %s", filepath.Base(pos.Filename), pos.Line, d.Message))
	}
	sort.Strings(out)
	return out
}

// sharedLoaders caches fixture loaders per root so the (expensive)
// source-importing of the standard library runs once per test binary.
var (
	loaderMu      sync.Mutex
	sharedLoaders = map[string]*loader{}
)

func analyze(t *testing.T, a *analysis.Analyzer, pkgpath string) (*loader, *loadedPackage, []analysis.Diagnostic) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Join(wd, "testdata", "src")
	loaderMu.Lock()
	defer loaderMu.Unlock()
	ld := sharedLoaders[root]
	if ld == nil {
		ld = newLoader(root)
		sharedLoaders[root] = ld
	}
	pkg, err := ld.load(pkgpath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}
	diags, err := runAnalyzer(a, ld, pkg)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgpath, err)
	}
	return ld, pkg, diags
}

// loadedPackage bundles one type-checked fixture package.
type loadedPackage struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader resolves fixture imports from a testdata/src root, falling
// back to the source importer for the standard library.
type loader struct {
	root     string
	fset     *token.FileSet
	fallback types.Importer
	loaded   map[string]*loadedPackage
}

func newLoader(root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:     root,
		fset:     fset,
		fallback: importer.ForCompiler(fset, "source", nil),
		loaded:   map[string]*loadedPackage{},
	}
}

// Import implements types.Importer over the fixture tree.
func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.root, path); dirExists(dir) {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return l.fallback.Import(path)
}

func (l *loader) load(path string) (*loadedPackage, error) {
	if p, ok := l.loaded[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, path)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &loadedPackage{pkg: pkg, files: files, info: info}
	l.loaded[path] = p
	return p, nil
}

// runAnalyzer executes a and its Requires closure in dependency order
// and returns a's diagnostics.
func runAnalyzer(a *analysis.Analyzer, ld *loader, pkg *loadedPackage) ([]analysis.Diagnostic, error) {
	results := map[*analysis.Analyzer]any{}
	var diags []analysis.Diagnostic
	objFacts := map[objFactKey]analysis.Fact{}
	pkgFacts := map[pkgFactKey]analysis.Fact{}

	var run func(an *analysis.Analyzer) error
	running := map[*analysis.Analyzer]bool{}
	run = func(an *analysis.Analyzer) error {
		if _, done := results[an]; done {
			return nil
		}
		if running[an] {
			return fmt.Errorf("analyzer dependency cycle at %s", an.Name)
		}
		running[an] = true
		for _, req := range an.Requires {
			if err := run(req); err != nil {
				return err
			}
		}
		resultOf := map[*analysis.Analyzer]any{}
		for _, req := range an.Requires {
			resultOf[req] = results[req]
		}
		pass := &analysis.Pass{
			Analyzer:   an,
			Fset:       ld.fset,
			Files:      pkg.files,
			Pkg:        pkg.pkg,
			TypesInfo:  pkg.info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   resultOf,
			Report: func(d analysis.Diagnostic) {
				if an == a {
					diags = append(diags, d)
				}
			},
			ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
				f, ok := objFacts[objFactKey{obj, factType(fact)}]
				if ok {
					reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(f).Elem())
				}
				return ok
			},
			ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
				objFacts[objFactKey{obj, factType(fact)}] = fact
			},
			ImportPackageFact: func(p *types.Package, fact analysis.Fact) bool {
				f, ok := pkgFacts[pkgFactKey{p, factType(fact)}]
				if ok {
					reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(f).Elem())
				}
				return ok
			},
			ExportPackageFact: func(fact analysis.Fact) {
				pkgFacts[pkgFactKey{pkg.pkg, factType(fact)}] = fact
			},
			AllObjectFacts:  func() []analysis.ObjectFact { return nil },
			AllPackageFacts: func() []analysis.PackageFact { return nil },
			ReadFile:        os.ReadFile,
		}
		res, err := an.Run(pass)
		if err != nil {
			return fmt.Errorf("%s: %w", an.Name, err)
		}
		results[an] = res
		return nil
	}
	if err := run(a); err != nil {
		return nil, err
	}
	return diags, nil
}

type objFactKey struct {
	obj types.Object
	t   reflect.Type
}

type pkgFactKey struct {
	pkg *types.Package
	t   reflect.Type
}

func factType(f analysis.Fact) reflect.Type { return reflect.TypeOf(f) }

// want is one expectation parsed from a // want comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRe = regexp.MustCompile("// want (.*)$")

// checkWants compares diagnostics to // want "regexp" comments, using
// the same per-line convention as analysistest.
func checkWants(t *testing.T, a *analysis.Analyzer, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitWantPatterns(m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected %s diagnostic: %s", pos.Filename, pos.Line, a.Name, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// splitWantPatterns parses the quoted/backquoted regexps after // want.
func splitWantPatterns(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
			if end >= len(s) {
				return out
			}
			if unq, err := strconv.Unquote(s[:end+1]); err == nil {
				out = append(out, unq)
			}
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.Index(s[1:], "`")
			if end < 0 {
				return out
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			return out
		}
	}
	return out
}

func dirExists(dir string) bool {
	fi, err := os.Stat(dir)
	return err == nil && fi.IsDir()
}
