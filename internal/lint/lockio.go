package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"
)

// LockIOAnalyzer reports blocking operations reachable while a
// sync.Mutex or sync.RWMutex is held in the same function body.
//
// Blocking operations are: reads/writes on values implementing
// net.Conn, read/write/send methods on the repo's websocket/rtmp
// connection types, net/http round trips, time.Sleep,
// sync.WaitGroup.Wait, and channel sends that are not guarded by a
// select with a default case.
//
// One shape is exempt: a connection may serialize its own writes under
// its own mutex (rtmp.Conn.writeMu). The exemption applies when the
// lock and the blocking receiver hang off the same base identifier
// (c.writeMu guards c.cw/c.nc); holding any broader lock — a room, hub,
// or registry mutex — across per-member I/O is exactly the seed chat
// bug and is always flagged.
//
// The check is intra-procedural: calls into other functions are not
// followed, so a helper that blocks must keep its own body clean.
var LockIOAnalyzer = &analysis.Analyzer{
	Name:     "lockio",
	Doc:      "report blocking I/O, sleeps and bare channel sends while a mutex is held",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      runLockIO,
}

func runLockIO(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	netConn := findNetConn(pass.Pkg)

	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		var g *cfg.CFG
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
			if body != nil {
				g = cfgs.FuncDecl(fn)
			}
		case *ast.FuncLit:
			body = fn.Body
			g = cfgs.FuncLit(fn)
		}
		if body == nil || g == nil {
			return
		}
		lockIOCheck(pass, sup, g, body, netConn)
	})
	return nil, nil
}

// lockKey is one distinct mutex expression locked in a function.
type lockKey struct {
	key  string     // types.ExprString of the receiver (e.g. "sh.mu")
	base *types.Var // base identifier's object, for the same-conn exemption
	pos  token.Pos  // first Lock site, for the message
	rw   bool       // RLock/RUnlock family
}

// syncLockCall matches m.Lock/RLock/Unlock/RUnlock where the method is
// sync.Mutex's or sync.RWMutex's, and returns the receiver expression.
func syncLockCall(pass *analysis.Pass, call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	fn, isFn := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		recvType := fn.Type().(*types.Signature).Recv().Type()
		s := recvType.String()
		if !strings.HasSuffix(s, "sync.Mutex") && !strings.HasSuffix(s, "sync.RWMutex") {
			return nil, "", false
		}
		return sel.X, fn.Name(), true
	}
	return nil, "", false
}

// lockIOCheck runs a may-held forward dataflow over the CFG: a bitmask
// of locks possibly held reaches every node, and blocking operations
// found in a node with any foreign lock held are reported.
func lockIOCheck(pass *analysis.Pass, sup *suppressor, g *cfg.CFG, body *ast.BlockStmt, netConn *types.Interface) {
	// Pass 1 (syntactic, this body only): enumerate lock keys and the
	// channel sends exempted by the select+default pattern.
	keys := []*lockKey{}
	keyIndex := map[string]int{}
	exemptSends := map[*ast.SendStmt]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != ast.Node(body) {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if recv, name, ok := syncLockCall(pass, x); ok && (name == "Lock" || name == "RLock") {
				k := types.ExprString(recv)
				if _, dup := keyIndex[k]; !dup {
					var base *types.Var
					if id := baseIdent(recv); id != nil {
						base, _ = pass.TypesInfo.ObjectOf(id).(*types.Var)
					}
					keyIndex[k] = len(keys)
					keys = append(keys, &lockKey{key: k, base: base, pos: x.Pos(), rw: name == "RLock"})
				}
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if hasDefault {
				for _, c := range x.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						if send, ok := cc.Comm.(*ast.SendStmt); ok {
							exemptSends[send] = true
						}
					}
				}
			}
		}
		return true
	})
	if len(keys) == 0 || len(keys) > 62 {
		return
	}

	// Pass 2: dataflow. in[b] = union over preds of out[pred].
	// cfg.Block only records successors, so derive the predecessors.
	preds := make([][]int, len(g.Blocks))
	for i, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s.Index] = append(preds[s.Index], i)
		}
	}
	in := make([]uint64, len(g.Blocks))
	out := make([]uint64, len(g.Blocks))
	changed := true
	transfer := func(b *cfg.Block, held uint64) uint64 {
		for _, n := range b.Nodes {
			held = lockIOTransferNode(pass, n, keyIndex, held)
		}
		return held
	}
	for changed {
		changed = false
		for i, b := range g.Blocks {
			var newIn uint64
			for _, p := range preds[i] {
				newIn |= out[p]
			}
			newOut := transfer(b, newIn)
			if newIn != in[i] || newOut != out[i] {
				in[i], out[i] = newIn, newOut
				changed = true
			}
		}
	}

	// Pass 3: report blocking ops under a may-held foreign lock.
	for i, b := range g.Blocks {
		held := in[i]
		for _, n := range b.Nodes {
			if held != 0 {
				lockIOScanNode(pass, sup, n, keys, held, exemptSends, netConn)
			}
			held = lockIOTransferNode(pass, n, keyIndex, held)
		}
	}
}

// lockIOTransferNode updates the held bitmask for one CFG node. A defer
// of Unlock does not clear the bit: the lock stays held until return.
func lockIOTransferNode(pass *analysis.Pass, n ast.Node, keyIndex map[string]int, held uint64) uint64 {
	ast.Inspect(n, func(x ast.Node) bool {
		switch y := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			return false // deferred unlocks release only at return
		case *ast.CallExpr:
			if recv, name, ok := syncLockCall(pass, y); ok {
				if idx, ok := keyIndex[types.ExprString(recv)]; ok {
					switch name {
					case "Lock", "RLock":
						held |= 1 << idx
					case "Unlock", "RUnlock":
						held &^= 1 << idx
					}
				}
			}
		}
		return true
	})
	return held
}

// lockIOScanNode reports blocking operations in one node.
func lockIOScanNode(pass *analysis.Pass, sup *suppressor, n ast.Node, keys []*lockKey, held uint64, exemptSends map[*ast.SendStmt]bool, netConn *types.Interface) {
	heldDesc := func(connBase *types.Var) (string, token.Pos, bool) {
		for i, k := range keys {
			if held&(1<<i) == 0 {
				continue
			}
			if connBase != nil && k.base != nil && k.base == connBase {
				continue // a conn may serialize its own I/O under its own lock
			}
			return k.key, k.pos, true
		}
		return "", token.NoPos, false
	}
	report := func(pos token.Pos, what string, connBase *types.Var) {
		key, lockPos, foreign := heldDesc(connBase)
		if !foreign {
			return
		}
		sup.report(pass, pos, "%s while %s is held (locked at %s); move the blocking operation outside the critical section or hand off through a bounded queue",
			what, key, pass.Fset.Position(lockPos))
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch y := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			if !exemptSends[y] {
				report(y.Pos(), "channel send without a select+default", nil)
			}
		case *ast.CallExpr:
			if what, connBase, ok := blockingCall(pass, y, netConn); ok {
				report(y.Pos(), what, connBase)
			}
		}
		return true
	})
}

// blockingCall classifies call as a blocking operation. For connection
// I/O it also returns the receiver's base identifier object so the
// same-conn exemption can apply.
func blockingCall(pass *analysis.Pass, call *ast.CallExpr, netConn *types.Interface) (string, *types.Var, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil, false
	}
	fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", nil, false
	}
	pkgPath := fn.Pkg().Path()
	name := fn.Name()
	sig, _ := fn.Type().(*types.Signature)

	// Package-level calls: time.Sleep, http.Get/Post/PostForm/Head.
	if sig != nil && sig.Recv() == nil {
		if pkgPath == "time" && name == "Sleep" {
			return "time.Sleep", nil, true
		}
		if pkgPath == "net/http" {
			switch name {
			case "Get", "Post", "PostForm", "Head":
				return "net/http round trip (http." + name + ")", nil, true
			}
		}
		return "", nil, false
	}
	if sig == nil || sig.Recv() == nil {
		return "", nil, false
	}
	recvType := sig.Recv().Type()

	// sync.WaitGroup.Wait.
	if pkgPath == "sync" && name == "Wait" && strings.HasSuffix(recvType.String(), "sync.WaitGroup") {
		return "sync.WaitGroup.Wait", nil, true
	}

	// http.Client round trips.
	if pkgPath == "net/http" && strings.HasSuffix(recvType.String(), "http.Client") {
		switch name {
		case "Do", "Get", "Post", "PostForm", "Head":
			return "net/http round trip (http.Client." + name + ")", nil, true
		}
	}

	var connBase *types.Var
	if id := baseIdent(sel.X); id != nil {
		connBase, _ = pass.TypesInfo.ObjectOf(id).(*types.Var)
	}

	// Reads/writes on net.Conn implementations.
	if netConn != nil && (strings.HasPrefix(name, "Read") || strings.HasPrefix(name, "Write")) {
		t := pass.TypesInfo.TypeOf(sel.X)
		if t != nil && (types.Implements(t, netConn) || types.Implements(types.NewPointer(t), netConn)) {
			return "conn " + name + " (net.Conn)", connBase, true
		}
	}

	// The repo's own connection types: websocket.Conn, rtmp conns.
	base := pkgBase(pkgPath)
	if (base == "websocket" || base == "rtmp") &&
		(strings.HasPrefix(name, "Read") || strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Send")) {
		return base + " conn " + name, connBase, true
	}
	return "", nil, false
}

// findNetConn locates the net.Conn interface through the package's
// transitive imports; nil when the package cannot reach net.
func findNetConn(pkg *types.Package) *types.Interface {
	seen := map[*types.Package]bool{}
	var find func(p *types.Package) *types.Interface
	find = func(p *types.Package) *types.Interface {
		if seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == "net" {
			if obj, ok := p.Scope().Lookup("Conn").(*types.TypeName); ok {
				if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
					return iface
				}
			}
			return nil
		}
		for _, imp := range p.Imports() {
			if iface := find(imp); iface != nil {
				return iface
			}
		}
		return nil
	}
	return find(pkg)
}
