package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// AtomicMixAnalyzer reports struct fields that are accessed both through
// sync/atomic functions and plainly in the same package.
//
// Mixed access is exactly the PR 3 websocket bug class: a field like
// BytesWritten updated with atomic.AddInt64 on the write path but read
// plainly by a stats snapshot races — the race detector only catches it
// when the snapshot and the writer actually collide in a test run.
// A field is either always atomic (better: declare it atomic.Int64 and
// make plain access unrepresentable) or always guarded; never both.
var AtomicMixAnalyzer = &analysis.Analyzer{
	Name:     "atomicmix",
	Doc:      "report struct fields accessed both via sync/atomic and plainly in the same package",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runAtomicMix,
}

func runAtomicMix(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Pass 1: fields passed by address to a sync/atomic function.
	atomicFields := map[*types.Var]token.Pos{} // field -> first atomic site
	atomicUses := map[ast.Expr]bool{}          // the &field operands themselves
	insp.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return
		}
		for _, arg := range call.Args {
			un, ok := arg.(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			if v := fieldVar(pass, un.X); v != nil {
				if _, seen := atomicFields[v]; !seen {
					atomicFields[v] = call.Pos()
				}
				atomicUses[un.X] = true
			}
		}
	})
	if len(atomicFields) == 0 {
		return nil, nil
	}

	// Pass 2: every other mention of those fields is a plain access.
	insp.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		if atomicUses[sel] {
			return
		}
		v := fieldVar(pass, sel)
		if v == nil {
			return
		}
		site, ok := atomicFields[v]
		if !ok {
			return
		}
		sup.report(pass, sel.Pos(), "plain access to field %s, which is accessed atomically at %s: mixed atomic/plain access races; use sync/atomic everywhere or an atomic.%s field",
			v.Name(), pass.Fset.Position(site), atomicTypeFor(v.Type()))
	})
	return nil, nil
}

// fieldVar resolves expr to a struct field variable, or nil.
func fieldVar(pass *analysis.Pass, expr ast.Expr) *types.Var {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	v, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// atomicTypeFor suggests the sync/atomic wrapper type for a field type.
func atomicTypeFor(t types.Type) string {
	switch t.String() {
	case "int32":
		return "Int32"
	case "int64":
		return "Int64"
	case "uint32":
		return "Uint32"
	case "uint64":
		return "Uint64"
	case "bool":
		return "Bool"
	default:
		return "Value"
	}
}
