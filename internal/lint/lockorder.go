package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"
)

// LockOrderAnalyzer builds the module-wide lock acquisition graph and
// reports cycles — the potential deadlocks a per-function analysis
// cannot see.
//
// Locks are keyed by class, not instance: a struct-field mutex is named
// "pkg.Type.field" (service.hub.mu, chat.chatShard.mu) and a
// package-level mutex "pkg.var", so the report reads as the named
// hierarchy the code was designed around. Within one function a
// may-held CFG dataflow (the lockio machinery) tracks which classes are
// held; acquiring class B or calling a function that may acquire B
// while class A is held contributes the edge A → B.
//
// Cross-package and cross-function propagation uses go/analysis facts:
// every function exports the transitive set of lock classes it may
// acquire (an object fact), and every package exports its accumulated
// edge list (a package fact), so each pass sees the full graph of its
// import closure and the topmost package assembles the module-wide
// graph. A cycle is reported in the package contributing its final
// edge, with the full acquisition chain and the site of every edge.
//
// Same-class nesting (holding one shard's mu while taking another's) is
// reported as a one-edge cycle: with unkeyed instances it is a
// self-deadlock on the same instance and an ordering hazard across
// instances.
var LockOrderAnalyzer = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "detect lock-order cycles (potential deadlocks) across the whole module",
	Requires:  []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	FactTypes: []analysis.Fact{(*lockOrderFact)(nil), (*lockGraphFact)(nil)},
	Run:       runLockOrder,
}

// lockOrderFact is exported on every function that may (transitively)
// acquire at least one named lock class.
type lockOrderFact struct {
	Acquires []string // sorted lock classes
}

func (*lockOrderFact) AFact() {}

func (f *lockOrderFact) String() string {
	return "acquires(" + strings.Join(f.Acquires, ", ") + ")"
}

// LockEdge is one acquisition-order edge: To was (or may be) acquired
// while From was held, at Site inside Fn.
type LockEdge struct {
	From, To string
	Site     string // "file:line", stable across packages
	Fn       string
}

// lockGraphFact accumulates a package's own edges plus every edge
// imported from its dependencies, so the graph flows up the import DAG.
type lockGraphFact struct {
	Edges []LockEdge
}

func (*lockGraphFact) AFact() {}

func (f *lockGraphFact) String() string {
	parts := make([]string, len(f.Edges))
	for i, e := range f.Edges {
		parts[i] = e.From + "→" + e.To
	}
	return "lockgraph(" + strings.Join(parts, ", ") + ")"
}

// ownEdge is a LockEdge contributed by the current package, with the
// position to report at.
type ownEdge struct {
	LockEdge
	pos token.Pos
}

// fnSummary is the per-function result of the CFG walk.
type fnSummary struct {
	direct    map[string]bool         // classes locked directly
	calls     []*types.Func           // every resolvable callee (for transitive acquires)
	heldCalls []heldCall              // resolvable calls made while holding locks
	edges     []ownEdge               // direct Lock-while-held edges
	obj       *types.Func
	name      string
}

type heldCall struct {
	held   []string // classes held at the call site
	callee *types.Func
	pos    token.Pos
}

func runLockOrder(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	// Phase A: per-function CFG walk → direct acquires, held-call sites,
	// direct edges. Function literals are walked as anonymous functions
	// (their own held state) but do not contribute to any enclosing
	// summary: a closure usually runs on another goroutine, where the
	// launcher's locks are not held.
	var sums []*fnSummary
	byObj := map[*types.Func]*fnSummary{}
	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		var g *cfg.CFG
		var obj *types.Func
		name := "func literal"
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
			if body != nil {
				g = cfgs.FuncDecl(fn)
			}
			obj, _ = pass.TypesInfo.ObjectOf(fn.Name).(*types.Func)
			name = fn.Name.Name
		case *ast.FuncLit:
			body = fn.Body
			g = cfgs.FuncLit(fn)
		}
		if body == nil || g == nil {
			return
		}
		sum := lockOrderWalk(pass, g, body)
		sum.obj = obj
		sum.name = name
		for i := range sum.edges {
			sum.edges[i].Fn = name
		}
		sums = append(sums, sum)
		if obj != nil {
			byObj[obj] = sum
		}
	})

	// Phase B: transitive may-acquire fixpoint over the package call
	// graph, seeded with imported facts for cross-package callees.
	acquiresOf := func(callee *types.Func, mayAcq map[*types.Func]map[string]bool) map[string]bool {
		if callee.Pkg() == pass.Pkg {
			if s := byObj[callee]; s != nil {
				return mayAcq[callee]
			}
			return nil
		}
		var fact lockOrderFact
		if pass.ImportObjectFact(callee, &fact) {
			set := map[string]bool{}
			for _, c := range fact.Acquires {
				set[c] = true
			}
			return set
		}
		return nil
	}
	mayAcq := map[*types.Func]map[string]bool{}
	for _, s := range sums {
		if s.obj != nil {
			set := map[string]bool{}
			for c := range s.direct {
				set[c] = true
			}
			mayAcq[s.obj] = set
		}
	}
	for changed := true; changed; {
		changed = false
		for _, s := range sums {
			if s.obj == nil {
				continue
			}
			set := mayAcq[s.obj]
			for _, callee := range s.calls {
				for c := range acquiresOf(callee, mayAcq) {
					if !set[c] {
						set[c] = true
						changed = true
					}
				}
			}
		}
	}

	// Phase C: edges from calls made while holding locks.
	var edges []ownEdge
	for _, s := range sums {
		edges = append(edges, s.edges...)
		for _, hc := range s.heldCalls {
			for c2 := range acquiresOf(hc.callee, mayAcq) {
				for _, c1 := range hc.held {
					edges = append(edges, ownEdge{
						LockEdge: LockEdge{From: c1, To: c2, Site: siteString(pass.Fset, hc.pos), Fn: s.name},
						pos:      hc.pos,
					})
				}
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].pos < edges[j].pos })

	// Phase D: export facts. Object facts carry each function's
	// transitive acquire set; the package fact carries our edges merged
	// with every dependency's.
	for _, s := range sums {
		if s.obj == nil || len(mayAcq[s.obj]) == 0 {
			continue
		}
		var classes []string
		for c := range mayAcq[s.obj] {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		pass.ExportObjectFact(s.obj, &lockOrderFact{Acquires: classes})
	}
	all := []LockEdge{}
	seen := map[[2]string]bool{}
	addEdge := func(e LockEdge) {
		k := [2]string{e.From, e.To}
		if seen[k] {
			return
		}
		seen[k] = true
		all = append(all, e)
	}
	for _, e := range edges {
		addEdge(e.LockEdge)
	}
	imports := append([]*types.Package{}, pass.Pkg.Imports()...)
	sort.Slice(imports, func(i, j int) bool { return imports[i].Path() < imports[j].Path() })
	for _, imp := range imports {
		var gf lockGraphFact
		if pass.ImportPackageFact(imp, &gf) {
			for _, e := range gf.Edges {
				addEdge(e)
			}
		}
	}
	pass.ExportPackageFact(&lockGraphFact{Edges: all})

	// Cycle detection over the assembled graph: report each cycle that
	// one of our own edges closes, once, at that edge's site.
	reportCycles(pass, sup, edges, all)
	return nil, nil
}

// reportCycles finds, for each own edge A→B, a shortest B→…→A path in
// the full graph; the concatenation is a cycle the current package
// completes. Cycles are deduplicated by their canonical rotation.
func reportCycles(pass *analysis.Pass, sup *suppressor, own []ownEdge, all []LockEdge) {
	next := map[string][]LockEdge{}
	for _, e := range all {
		next[e.From] = append(next[e.From], e)
	}
	for _, es := range next {
		sort.Slice(es, func(i, j int) bool { return es[i].To < es[j].To })
	}
	reported := map[string]bool{}
	ownSeen := map[[2]string]bool{}
	for _, oe := range own {
		if ownSeen[[2]string{oe.From, oe.To}] {
			continue // one report per distinct own edge
		}
		ownSeen[[2]string{oe.From, oe.To}] = true
		path := shortestPath(next, oe.To, oe.From)
		if path == nil {
			continue
		}
		cycle := append([]LockEdge{oe.LockEdge}, path...)
		key := canonicalCycle(cycle)
		if reported[key] {
			continue
		}
		reported[key] = true
		sup.report(pass, oe.pos, "lock-order cycle (potential deadlock): %s; acquiring %s while %s is held completes the cycle — pick one module-wide order for these locks",
			chainString(cycle), oe.To, oe.From)
	}
}

// shortestPath BFSes from -> to over the edge lists, returning the edge
// sequence, or nil. A zero-length path (from == to) returns an empty,
// non-nil slice so self-edges close one-edge cycles.
func shortestPath(next map[string][]LockEdge, from, to string) []LockEdge {
	if from == to {
		return []LockEdge{}
	}
	type visit struct {
		node string
		via  []LockEdge
	}
	queue := []visit{{node: from}}
	seen := map[string]bool{from: true}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range next[v.node] {
			if e.To == to {
				return append(append([]LockEdge{}, v.via...), e)
			}
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, visit{node: e.To, via: append(append([]LockEdge{}, v.via...), e)})
			}
		}
	}
	return nil
}

// canonicalCycle keys a cycle by its rotation starting at the smallest
// class name, so the same cycle found from different edges dedups.
func canonicalCycle(cycle []LockEdge) string {
	min := 0
	for i := range cycle {
		if cycle[i].From < cycle[min].From {
			min = i
		}
	}
	var b strings.Builder
	for i := range cycle {
		e := cycle[(min+i)%len(cycle)]
		b.WriteString(e.From)
		b.WriteString("→")
	}
	b.WriteString(cycle[min].From)
	return b.String()
}

// chainString renders a cycle with per-edge provenance:
// A → B (fn at file:line) → A (fn at file:line).
func chainString(cycle []LockEdge) string {
	var b strings.Builder
	b.WriteString(cycle[0].From)
	for _, e := range cycle {
		fmt.Fprintf(&b, " → %s (%s at %s)", e.To, e.Fn, e.Site)
	}
	return b.String()
}

func siteString(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", shortFile(p.Filename), p.Line)
}

// shortFile trims a file path to its last two elements so sites stay
// readable and stable across checkouts.
func shortFile(path string) string {
	parts := strings.Split(path, "/")
	if len(parts) <= 2 {
		return path
	}
	return strings.Join(parts[len(parts)-2:], "/")
}

// lockClass names the lock behind a Lock/RLock receiver expression:
// "pkg.Type.field" for struct-field mutexes, "pkg.var" for
// package-level ones, "" for locks with no stable class (locals,
// parameters) — those are instance-anonymous and excluded from the
// graph.
func lockClass(pass *analysis.Pass, recv ast.Expr) string {
	switch e := recv.(type) {
	case *ast.ParenExpr:
		return lockClass(pass, e.X)
	case *ast.SelectorExpr:
		obj, ok := pass.TypesInfo.ObjectOf(e.Sel).(*types.Var)
		if !ok {
			return ""
		}
		if obj.IsField() {
			if owner := fieldOwner(pass, e); owner != "" {
				return owner + "." + obj.Name()
			}
			return ""
		}
		// Qualified package-level var: pkg.Mu.
		if obj.Parent() == obj.Pkg().Scope() {
			return pkgBase(obj.Pkg().Path()) + "." + obj.Name()
		}
		return ""
	case *ast.Ident:
		obj, ok := pass.TypesInfo.ObjectOf(e).(*types.Var)
		if !ok || obj.Pkg() == nil {
			return ""
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return pkgBase(obj.Pkg().Path()) + "." + obj.Name()
		}
		return ""
	}
	return ""
}

// fieldOwner names the struct type a field selector hangs off:
// "pkg.Type". The receiver type (not the field's declaring type) keys
// the class, so embedded mutexes name the embedding type.
func fieldOwner(pass *analysis.Pass, sel *ast.SelectorExpr) string {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return ""
	}
	t := s.Recv()
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return pkgBase(named.Obj().Pkg().Path()) + "." + named.Obj().Name()
}

// lockOrderWalk runs the may-held dataflow over one function body and
// collects its summary.
func lockOrderWalk(pass *analysis.Pass, g *cfg.CFG, body *ast.BlockStmt) *fnSummary {
	sum := &fnSummary{direct: map[string]bool{}}

	// Enumerate this body's lock expressions (keyed like lockio, by
	// receiver expression string) and map each to its class.
	keys := []string{}
	keyIndex := map[string]int{}
	classOf := []string{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != ast.Node(body) {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, name, ok := syncLockCall(pass, call); ok && (name == "Lock" || name == "RLock") {
			k := types.ExprString(recv)
			if _, dup := keyIndex[k]; !dup {
				keyIndex[k] = len(keys)
				keys = append(keys, k)
				classOf = append(classOf, lockClass(pass, recv))
			}
		}
		return true
	})
	for i := range keys {
		if classOf[i] != "" {
			sum.direct[classOf[i]] = true
		}
	}
	if len(keys) > 62 {
		return sum
	}

	heldClasses := func(held uint64, exclude int) []string {
		var out []string
		for i := range keys {
			if i == exclude || held&(1<<i) == 0 || classOf[i] == "" {
				continue
			}
			out = append(out, classOf[i])
		}
		sort.Strings(out)
		return out
	}

	// May-held dataflow, identical in structure to lockio's.
	preds := make([][]int, len(g.Blocks))
	for i, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s.Index] = append(preds[s.Index], i)
		}
	}
	in := make([]uint64, len(g.Blocks))
	out := make([]uint64, len(g.Blocks))
	for changed := true; changed; {
		changed = false
		for i, b := range g.Blocks {
			var newIn uint64
			for _, p := range preds[i] {
				newIn |= out[p]
			}
			newOut := newIn
			for _, n := range b.Nodes {
				newOut = lockIOTransferNode(pass, n, keyIndex, newOut)
			}
			if newIn != in[i] || newOut != out[i] {
				in[i], out[i] = newIn, newOut
				changed = true
			}
		}
	}

	// Scan every node with its entry-held set: direct acquires while
	// held become edges; resolvable calls are recorded (held and not).
	for i, b := range g.Blocks {
		held := in[i]
		for _, n := range b.Nodes {
			ast.Inspect(n, func(x ast.Node) bool {
				switch y := x.(type) {
				case *ast.FuncLit:
					return false
				case *ast.CallExpr:
					if recv, name, ok := syncLockCall(pass, y); ok {
						if name != "Lock" && name != "RLock" {
							return true
						}
						idx := keyIndex[types.ExprString(recv)]
						cls := classOf[idx]
						if cls == "" {
							return true
						}
						for _, from := range heldClasses(held, idx) {
							sum.edges = append(sum.edges, ownEdge{
								LockEdge: LockEdge{From: from, To: cls, Site: siteString(pass.Fset, y.Pos())},
								pos:      y.Pos(),
							})
						}
						return true
					}
					if callee := resolvedCallee(pass, y); callee != nil {
						sum.calls = append(sum.calls, callee)
						if hc := heldClasses(held, -1); len(hc) > 0 {
							sum.heldCalls = append(sum.heldCalls, heldCall{held: hc, callee: callee, pos: y.Pos()})
						}
					}
				}
				return true
			})
			held = lockIOTransferNode(pass, n, keyIndex, held)
		}
	}
	// Edge Fn names are filled by the caller once the summary is named.
	return sum
}

// resolvedCallee returns the static *types.Func a call resolves to, or
// nil for dynamic calls (interface methods, function values), which the
// analysis conservatively skips.
func resolvedCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		if s, ok := pass.TypesInfo.Selections[fun]; ok {
			// Interface method calls are dynamic: no single callee.
			if _, isIface := s.Recv().Underlying().(*types.Interface); isIface {
				return nil
			}
		}
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.ObjectOf(id).(*types.Func)
	if fn == nil {
		return nil
	}
	// Builtins and locks are handled elsewhere; skip sync itself.
	if fn.Pkg() == nil || fn.Pkg().Path() == "sync" {
		return nil
	}
	return fn
}
