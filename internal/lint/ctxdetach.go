package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// CtxDetachAnalyzer reports coalesced-fill goroutines that capture the
// initiating request's context.
//
// The shape it looks for is the single-flight demand fill (hls.Replica
// segment/playlist fills, TieredSource probes): a function takes an
// inbound context.Context, spawns the fill in a goroutine, and joins it
// with
//
//	select {
//	case <-f.done:      // fill finished (f shared with the goroutine)
//	case <-ctx.Done():  // this caller gave up waiting
//	}
//
// The ctx.Done case means the caller can abandon the wait while other
// coalesced waiters still depend on the fill — so the fill itself must
// not run on that caller's context. A goroutine that is joined this way
// and also references the inbound ctx (or a context derived from it) is
// exactly the PR 4 initiator-disconnect bug: one viewer hanging up
// cancels the fetch for everybody. Detach with
// context.WithTimeout(context.Background(), ...) instead.
//
// Goroutines whose completion is not select-joined against ctx.Done
// (e.g. a player fetching its own segments and wg.Wait-ing) are the
// caller's own work, legitimately cancel with it, and are not flagged.
var CtxDetachAnalyzer = &analysis.Analyzer{
	Name:     "ctxdetach",
	Doc:      "report single-flight fill goroutines that capture a request-scoped context",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runCtxDetach,
}

func runCtxDetach(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if fn.Body == nil {
			return
		}
		ctxDetachCheck(pass, sup, fn.Type, fn.Body)
	})
	return nil, nil
}

func ctxDetachCheck(pass *analysis.Pass, sup *suppressor, ft *ast.FuncType, body *ast.BlockStmt) {
	tainted := taintedContexts(pass, ft, body)
	if len(tainted) == 0 {
		return
	}

	// Collect the function's selects that join on a tainted ctx.Done()
	// plus at least one other channel; remember the locals those other
	// channels hang off.
	type joinSelect struct {
		sel    *ast.SelectStmt
		ctxVar *types.Var
		locals map[*types.Var]bool // channel-bearing locals in other cases
	}
	var joins []joinSelect
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		j := joinSelect{sel: sel, locals: map[*types.Var]bool{}}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			ch := commChannel(cc.Comm)
			if ch == nil {
				continue
			}
			if v := doneCallOn(pass, ch, tainted); v != nil {
				j.ctxVar = v
				continue
			}
			for _, lv := range channelLocals(pass, ch, body) {
				j.locals[lv] = true
			}
		}
		if j.ctxVar != nil && len(j.locals) > 0 {
			joins = append(joins, j)
		}
		return true
	})
	if len(joins) == 0 {
		return
	}

	// Any goroutine that references a tainted context AND shares a
	// channel-bearing local with such a join is a coalesced fill running
	// on a request context.
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		var taintedRef *types.Var
		locals := map[*types.Var]bool{}
		ast.Inspect(g.Call, func(x ast.Node) bool {
			id, ok := x.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
			if !ok {
				return true
			}
			if tainted[v] {
				taintedRef = v
			}
			if isFuncLocal(v, body) && typeBearsChan(v.Type()) {
				locals[v] = true
			}
			return true
		})
		if taintedRef == nil {
			return true
		}
		for _, j := range joins {
			for lv := range j.locals {
				if locals[lv] {
					sup.report(pass, g.Pos(), "fill goroutine is awaited by coalesced waiters (select on <-%s.Done() at %s) but captures the request-scoped context %q; derive the upstream context from context.Background() so one disconnecting waiter cannot fail the fill for the rest",
						j.ctxVar.Name(), pass.Fset.Position(j.sel.Pos()), taintedRef.Name())
					return true
				}
			}
		}
		return true
	})
}

// taintedContexts returns the function's inbound context variables: ctx
// parameters plus locals derived from them via context.With* (and
// contexts obtained from an *http.Request parameter's Context method).
func taintedContexts(pass *analysis.Pass, ft *ast.FuncType, body *ast.BlockStmt) map[*types.Var]bool {
	tainted := map[*types.Var]bool{}
	if ft.Params != nil {
		for _, f := range ft.Params.List {
			for _, name := range f.Names {
				v, ok := pass.TypesInfo.ObjectOf(name).(*types.Var)
				if ok && isContextType(v.Type()) {
					tainted[v] = true
				}
			}
		}
	}
	reqParams := map[*types.Var]bool{}
	if ft.Params != nil {
		for _, f := range ft.Params.List {
			for _, name := range f.Names {
				if v, ok := pass.TypesInfo.ObjectOf(name).(*types.Var); ok {
					if ptr, ok := v.Type().(*types.Pointer); ok {
						if named, ok := ptr.Elem().(*types.Named); ok &&
							named.Obj().Name() == "Request" && named.Obj().Pkg() != nil &&
							named.Obj().Pkg().Path() == "net/http" {
							reqParams[v] = true
						}
					}
				}
			}
		}
	}
	// Propagate through derivations to a fixpoint.
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				if i >= len(as.Lhs) && len(as.Rhs) != 1 {
					break
				}
				if !derivesFromTainted(pass, rhs, tainted, reqParams) {
					continue
				}
				for _, lhs := range as.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
					if ok && isContextType(v.Type()) && !tainted[v] {
						tainted[v] = true
						changed = true
					}
				}
			}
			return true
		})
	}
	return tainted
}

// derivesFromTainted reports whether expr produces a context derived
// from a tainted one: the tainted ident itself, context.With*(tainted,
// ...), or req.Context().
func derivesFromTainted(pass *analysis.Pass, expr ast.Expr, tainted, reqParams map[*types.Var]bool) bool {
	found := false
	ast.Inspect(expr, func(x ast.Node) bool {
		switch y := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if v, ok := pass.TypesInfo.ObjectOf(y).(*types.Var); ok && tainted[v] {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := y.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Context" {
				if id, ok := sel.X.(*ast.Ident); ok {
					if v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var); ok && reqParams[v] {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// commChannel extracts the channel expression of a select comm clause.
func commChannel(comm ast.Stmt) ast.Expr {
	switch s := comm.(type) {
	case *ast.ExprStmt:
		if un, ok := s.X.(*ast.UnaryExpr); ok {
			return un.X
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if un, ok := s.Rhs[0].(*ast.UnaryExpr); ok {
				return un.X
			}
		}
	case *ast.SendStmt:
		return s.Chan
	}
	return nil
}

// doneCallOn matches ch == v.Done() for a tainted v.
func doneCallOn(pass *analysis.Pass, ch ast.Expr, tainted map[*types.Var]bool) *types.Var {
	call, ok := ch.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var); ok && tainted[v] {
		return v
	}
	return nil
}

// channelLocals returns the channel-bearing function-local variables a
// select case's channel expression hangs off (f in <-f.done).
func channelLocals(pass *analysis.Pass, ch ast.Expr, body *ast.BlockStmt) []*types.Var {
	var out []*types.Var
	ast.Inspect(ch, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
		if !ok {
			return true
		}
		if isFuncLocal(v, body) && typeBearsChan(v.Type()) {
			out = append(out, v)
		}
		return true
	})
	return out
}

// isFuncLocal reports whether v is declared inside the function body
// (parameters and receivers are not: they are visible everywhere in the
// function and would make the join linkage meaningless).
func isFuncLocal(v *types.Var, body *ast.BlockStmt) bool {
	return v.Pos() >= body.Pos() && v.Pos() <= body.End()
}

// typeBearsChan reports whether t is, points to, or contains (one
// struct level deep) a channel — the done-channel carriers that link a
// spawned fill to its join select.
func typeBearsChan(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Chan:
		return true
	case *types.Pointer:
		return typeBearsChan(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if _, ok := u.Field(i).Type().Underlying().(*types.Chan); ok {
				return true
			}
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
