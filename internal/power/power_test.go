package power

import (
	"math"
	"testing"
	"time"

	"periscope/internal/capture"
)

func TestHomeScreenMatchesPaper(t *testing.T) {
	m := NewModel()
	s := StandardScenarios(time.Minute)[0]
	wifi := m.Average(s, WiFi)
	lte := m.Average(s, LTE)
	if math.Abs(wifi-1067) > 5 {
		t.Errorf("home WiFi = %.0f, paper 1067", wifi)
	}
	if math.Abs(lte-1006) > 5 {
		t.Errorf("home LTE = %.0f, paper 1006", lte)
	}
}

func TestAllScenariosWithinTolerance(t *testing.T) {
	m := NewModel()
	paper := PaperValues()
	const tolerance = 0.08 // 8%
	for _, s := range StandardScenarios(time.Minute) {
		for _, net := range []Network{WiFi, LTE} {
			got := m.Average(s, net)
			want := paper[s.Name][net]
			if want == 0 {
				t.Fatalf("no paper value for %s/%v", s.Name, net)
			}
			if rel := math.Abs(got-want) / want; rel > tolerance {
				t.Errorf("%s on %v: model %.0f vs paper %.0f (%.1f%% off)",
					s.Name, net, got, want, rel*100)
			}
		}
	}
}

func TestChatDominatesPower(t *testing.T) {
	// §5.3: enabling chat raises power dramatically — close to
	// broadcasting levels.
	m := NewModel()
	scns := StandardScenarios(time.Minute)
	byName := map[string]Scenario{}
	for _, s := range scns {
		byName[s.Name] = s
	}
	for _, net := range []Network{WiFi, LTE} {
		off := m.Average(byName[ScenarioHLS], net)
		on := m.Average(byName[ScenarioHLSChat], net)
		bcast := m.Average(byName[ScenarioBroadcast], net)
		if on < off+1000 {
			t.Errorf("%v: chat on %.0f not >> chat off %.0f", net, on, off)
		}
		if math.Abs(on-bcast) > 0.35*bcast {
			t.Errorf("%v: chat on %.0f should approach broadcast %.0f", net, on, bcast)
		}
	}
}

func TestLTECostlierWhenActive(t *testing.T) {
	m := NewModel()
	for _, s := range StandardScenarios(time.Minute) {
		if s.Name == ScenarioHomeScreen {
			continue // idle LTE is cheaper, as in the paper
		}
		wifi := m.Average(s, WiFi)
		lte := m.Average(s, LTE)
		if lte <= wifi {
			t.Errorf("%s: LTE %.0f not > WiFi %.0f", s.Name, lte, wifi)
		}
	}
}

func TestRTMPvsHLSSmallDifference(t *testing.T) {
	// "The power consumption difference of RTMP vs HLS is very small."
	m := NewModel()
	scns := StandardScenarios(time.Minute)
	var rtmp, hlsOff Scenario
	for _, s := range scns {
		switch s.Name {
		case ScenarioRTMP:
			rtmp = s
		case ScenarioHLS:
			hlsOff = s
		}
	}
	for _, net := range []Network{WiFi, LTE} {
		a, b := m.Average(rtmp, net), m.Average(hlsOff, net)
		if math.Abs(a-b)/a > 0.10 {
			t.Errorf("%v: RTMP %.0f vs HLS %.0f differ more than 10%%", net, a, b)
		}
	}
}

func TestRadioTailBehaviour(t *testing.T) {
	// One burst then silence: LTE must burn tail power far longer.
	buckets := make([]int64, 50) // 5 s
	buckets[0] = 100_000
	tl := capture.SyntheticTimeline(100*time.Millisecond, buckets)
	wifi := WiFiRadio().Average(tl)
	lte := LTERadio().Average(tl)
	if lte < 2*wifi {
		t.Errorf("LTE burst+tail avg %.0f not >> WiFi %.0f", lte, wifi)
	}
	// And an empty timeline sits at idle.
	idleTL := capture.SyntheticTimeline(100*time.Millisecond, make([]int64, 50))
	if got := LTERadio().Average(idleTL); math.Abs(got-LTERadio().IdleMW) > 0.01 {
		t.Errorf("idle LTE = %v", got)
	}
}

func TestRadioThroughputScaling(t *testing.T) {
	slow := WiFiRadio().Average(constantRate(time.Minute, 300_000))
	fast := WiFiRadio().Average(constantRate(time.Minute, 3_000_000))
	if fast <= slow {
		t.Error("radio power must grow with throughput")
	}
}

func TestReplayEqualsLivePlayback(t *testing.T) {
	// "Playing back old recorded videos consume an equal amount of power
	// as playing back live videos" — within ~10%.
	m := NewModel()
	scns := StandardScenarios(time.Minute)
	var replay, rtmp Scenario
	for _, s := range scns {
		switch s.Name {
		case ScenarioReplay:
			replay = s
		case ScenarioRTMP:
			rtmp = s
		}
	}
	for _, net := range []Network{WiFi, LTE} {
		a, b := m.Average(replay, net), m.Average(rtmp, net)
		if math.Abs(a-b)/b > 0.12 {
			t.Errorf("%v: replay %.0f vs live %.0f", net, a, b)
		}
	}
}

func TestClamp(t *testing.T) {
	d := GalaxyS4()
	if d.cpu(-1) != d.CPUIdleMW || d.cpu(2) != d.CPUMaxMW {
		t.Error("load clamping broken")
	}
}
