// Package power replaces the Monsoon Power Monitor setup of §5.3 with a
// component power model of the Galaxy S4 class device: screen at full
// brightness, SoC base, DVFS-scaled CPU and GPU, and a WiFi or LTE radio
// whose state (active / tail / idle) is driven by the traffic timeline of
// the scenario (internal/capture). LTE uses a long DRX tail, which is why
// the periodic 5-second feed refreshes make "app on" so much more
// expensive on LTE, and why chat traffic nearly doubles total draw.
//
// Constants are calibrated so the seven Fig. 7 scenarios land within a few
// percent of the paper's bars; the *differences* between scenarios emerge
// from traffic and load, not from per-scenario constants.
package power

import (
	"time"

	"periscope/internal/capture"
)

// Network selects the radio.
type Network int

// Networks measured in the study.
const (
	WiFi Network = iota
	LTE
)

func (n Network) String() string {
	if n == WiFi {
		return "WiFi"
	}
	return "LTE"
}

// RadioModel is a three-state radio power model.
type RadioModel struct {
	IdleMW    float64
	ActiveMW  float64 // while transferring in a bucket
	PerMbpsMW float64 // throughput-proportional extra
	TailMW    float64 // after activity (WiFi PSM exit / LTE DRX tail)
	Tail      time.Duration
}

// WiFiRadio returns the calibrated WiFi model.
func WiFiRadio() RadioModel {
	return RadioModel{IdleMW: 67, ActiveMW: 560, PerMbpsMW: 130, TailMW: 300, Tail: time.Second}
}

// LTERadio returns the calibrated LTE model (DRX enabled with typical
// timer configuration, per the paper's footnote).
func LTERadio() RadioModel {
	return RadioModel{IdleMW: 6, ActiveMW: 1250, PerMbpsMW: 52, TailMW: 1100, Tail: 2500 * time.Millisecond}
}

// Average computes the radio's mean power over a traffic timeline.
func (r RadioModel) Average(tl *capture.Timeline) float64 {
	if tl == nil || len(tl.Buckets) == 0 {
		return r.IdleMW
	}
	var sum float64
	tailLeft := time.Duration(0)
	for _, b := range tl.Buckets {
		switch {
		case b > 0:
			mbps := float64(b) * 8 / tl.Interval.Seconds() / 1e6
			sum += r.ActiveMW + r.PerMbpsMW*mbps
			tailLeft = r.Tail
		case tailLeft > 0:
			sum += r.TailMW
			tailLeft -= tl.Interval
		default:
			sum += r.IdleMW
		}
	}
	return sum / float64(len(tl.Buckets))
}

// Device holds the non-radio component constants.
type Device struct {
	ScreenMW  float64 // full brightness, as in the study
	BaseMW    float64 // SoC/rails base
	CPUIdleMW float64
	CPUMaxMW  float64
	GPUIdleMW float64
	GPUMaxMW  float64
}

// GalaxyS4 returns the calibrated device constants.
func GalaxyS4() Device {
	return Device{ScreenMW: 830, BaseMW: 60, CPUIdleMW: 80, CPUMaxMW: 1500, GPUIdleMW: 30, GPUMaxMW: 1000}
}

// cpu returns CPU power at a DVFS load in [0,1].
func (d Device) cpu(load float64) float64 {
	return d.CPUIdleMW + clamp01(load)*(d.CPUMaxMW-d.CPUIdleMW)
}

func (d Device) gpu(load float64) float64 {
	return d.GPUIdleMW + clamp01(load)*(d.GPUMaxMW-d.GPUIdleMW)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Scenario is one Fig. 7 measurement condition.
type Scenario struct {
	Name    string
	CPULoad float64
	GPULoad float64
	Traffic *capture.Timeline
}

// Model evaluates scenarios.
type Model struct {
	Device Device
	WiFi   RadioModel
	LTE    RadioModel
}

// NewModel returns the calibrated model.
func NewModel() Model {
	return Model{Device: GalaxyS4(), WiFi: WiFiRadio(), LTE: LTERadio()}
}

// Average returns the scenario's mean power in mW on the given network.
func (m Model) Average(s Scenario, net Network) float64 {
	radio := m.WiFi
	if net == LTE {
		radio = m.LTE
	}
	return m.Device.ScreenMW + m.Device.BaseMW +
		m.Device.cpu(s.CPULoad) + m.Device.gpu(s.GPULoad) +
		radio.Average(s.Traffic)
}

// Timeline builders for the standard scenarios. All use 100 ms buckets.

const bucketInterval = 100 * time.Millisecond

// constantRate builds a timeline with a constant bitrate.
func constantRate(dur time.Duration, bps float64) *capture.Timeline {
	n := int(dur / bucketInterval)
	perBucket := int64(bps / 8 * bucketInterval.Seconds())
	buckets := make([]int64, n)
	for i := range buckets {
		buckets[i] = perBucket
	}
	return capture.SyntheticTimeline(bucketInterval, buckets)
}

// periodicBurst builds a timeline with one burst every period.
func periodicBurst(dur, period time.Duration, burstBytes int64) *capture.Timeline {
	n := int(dur / bucketInterval)
	buckets := make([]int64, n)
	step := int(period / bucketInterval)
	for i := 0; i < n; i += step {
		buckets[i] = burstBytes
	}
	return capture.SyntheticTimeline(bucketInterval, buckets)
}

// Standard Fig. 7 scenario names.
const (
	ScenarioHomeScreen = "home-screen"
	ScenarioAppOn      = "app-on"
	ScenarioReplay     = "video-not-live"
	ScenarioRTMP       = "video-rtmp-chat-off"
	ScenarioHLS        = "video-hls-chat-off"
	ScenarioHLSChat    = "video-hls-chat-on"
	ScenarioBroadcast  = "broadcast"
)

// StandardScenarios builds the seven Fig. 7 conditions over the given
// duration:
//
//   - home screen: idle, no traffic;
//   - app on: the app refreshes the available videos every 5 seconds;
//   - replay: non-live playback (no live pacing, slightly higher rate);
//   - RTMP live, chat off: continuous ~330 kbps push;
//   - HLS live, chat off: ~480 kbps segments + playlist polling;
//   - HLS live, chat on: the §5.1 chat surge (~3.5 Mbps aggregate) plus
//     CPU/GPU clocks raised by roughly one third (modelled as the higher
//     DVFS loads);
//   - broadcast: camera + encoder + uplink.
func StandardScenarios(dur time.Duration) []Scenario {
	return []Scenario{
		{Name: ScenarioHomeScreen, CPULoad: 0, GPULoad: 0, Traffic: nil},
		{Name: ScenarioAppOn, CPULoad: 0.33, GPULoad: 0.10,
			Traffic: periodicBurst(dur, 5*time.Second, 50_000)},
		{Name: ScenarioReplay, CPULoad: 0.26, GPULoad: 0.33,
			Traffic: constantRate(dur, 800_000)},
		{Name: ScenarioRTMP, CPULoad: 0.26, GPULoad: 0.33,
			Traffic: constantRate(dur, 330_000)},
		{Name: ScenarioHLS, CPULoad: 0.33, GPULoad: 0.33,
			Traffic: constantRate(dur, 480_000)},
		{Name: ScenarioHLSChat, CPULoad: 0.95, GPULoad: 0.80,
			Traffic: constantRate(dur, 3_500_000)},
		{Name: ScenarioBroadcast, CPULoad: 0.90, GPULoad: 0.75,
			Traffic: constantRate(dur, 600_000)},
	}
}

// PaperValues returns the Fig. 7 bar heights (mW) for comparison in
// EXPERIMENTS.md and the benchmarks.
func PaperValues() map[string]map[Network]float64 {
	return map[string]map[Network]float64{
		ScenarioHomeScreen: {WiFi: 1067, LTE: 1006},
		ScenarioAppOn:      {WiFi: 1673, LTE: 2159},
		ScenarioReplay:     {WiFi: 2303, LTE: 3120},
		ScenarioRTMP:       {WiFi: 2268, LTE: 2959},
		ScenarioHLS:        {WiFi: 2400, LTE: 3033},
		ScenarioHLSChat:    {WiFi: 4169, LTE: 4540},
		ScenarioBroadcast:  {WiFi: 3594, LTE: 4383},
	}
}
