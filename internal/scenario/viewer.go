package scenario

import (
	"io"
	"net/http"
	"time"

	"periscope/internal/hls"
	"periscope/internal/netem"
	"periscope/internal/player"
	"periscope/internal/service"
)

// viewerSession is one HLS viewer's life: resolve an edge via the real
// AccessVideo policy, poll the playlist, fetch new segments, re-resolve
// when the edge stops answering (which is where health-driven steering
// hands out a live POP), and stop at the session deadline or when the
// playlist goes ENDLIST. Fetched segments are recorded as player chunks;
// QoE is replayed through player.Engine afterwards.
type viewerSession struct {
	cohort string
	dur    time.Duration

	// Written only by the session goroutine; read after wg.Wait.
	chunks      []player.Chunk
	reresolves  int
	lastArrival time.Duration
	ended       bool
}

func (vs *viewerSession) run(svc *service.Service, id string, profile *netem.AccessProfile, seed int64) {
	// Each viewer gets its own transport so its keep-alive sockets die
	// with the session (leakcheck would flag a shared pool's strays).
	var httpc *http.Client
	var closeIdle func()
	if profile != nil {
		link := profile.NewLink(seed)
		tr := link.Transport(nil)
		httpc = &http.Client{Transport: tr, Timeout: 4 * time.Second}
		closeIdle = func() {
			if c, ok := tr.(interface{ CloseIdleConnections() }); ok {
				c.CloseIdleConnections()
			}
		}
	} else {
		tr := &http.Transport{MaxIdleConnsPerHost: 4}
		httpc = &http.Client{Transport: tr, Timeout: 2 * time.Second}
		closeIdle = tr.CloseIdleConnections
	}
	defer closeIdle()

	start := time.Now()
	stop := start.Add(vs.dur)
	var base string
	var media time.Duration
	next := -1
	get := func(path string) ([]byte, bool) {
		resp, err := httpc.Get(base + "/" + path)
		if err != nil {
			return nil, false
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			return nil, false
		}
		return body, true
	}
	for time.Now().Before(stop) {
		if base == "" {
			acc, err := svc.AccessVideo(id)
			if err != nil || acc.HLSBaseURL == "" {
				if err != nil && vs.ended {
					// Broadcast gone and we saw its ENDLIST: done.
					return
				}
				time.Sleep(100 * time.Millisecond)
				continue
			}
			if acc.Replay {
				// The broadcast ended and access now resolves to its VOD
				// replay; a live session stops rather than silently
				// switching streams.
				vs.ended = true
				return
			}
			base = acc.HLSBaseURL
		}
		body, ok := get("playlist.m3u8")
		if !ok {
			// Edge dark (or an access-link drop): fail over through a
			// fresh AccessVideo.
			base = ""
			vs.reresolves++
			continue
		}
		pl, err := hls.ParseMediaPlaylist(body)
		if err != nil {
			continue
		}
		for _, s := range pl.Segments {
			if s.Sequence < next {
				continue
			}
			if _, ok := get(s.URI); !ok {
				base = ""
				vs.reresolves++
				break
			}
			dur := time.Duration(s.Duration * float64(time.Second))
			arr := time.Since(start)
			vs.chunks = append(vs.chunks, player.Chunk{
				Arrival:    arr,
				MediaStart: media,
				MediaEnd:   media + dur,
				CaptureEnd: arr,
			})
			vs.lastArrival = arr
			media += dur
			next = s.Sequence + 1
		}
		if pl.Ended && base != "" {
			// Final playlist fully drained: the broadcast ended mid-session.
			vs.ended = true
			return
		}
		time.Sleep(120 * time.Millisecond)
	}
}

// metrics replays the session through the playback-buffer model.
func (vs *viewerSession) metrics(segment time.Duration) player.Metrics {
	dur := vs.dur
	if vs.ended && vs.lastArrival > 0 && vs.lastArrival < dur {
		// The broadcast ended before the session deadline: judge QoE over
		// the time media was actually available, not the idle tail.
		dur = vs.lastArrival
	}
	return player.DefaultHLSEngine(segment).Run(vs.chunks, dur)
}
