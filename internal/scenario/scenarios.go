package scenario

import (
	"fmt"
	"sort"
	"time"

	"periscope/internal/broadcastmodel"
	"periscope/internal/netem"
	"periscope/internal/service"
)

// testbedConfig is the shared scenario service shape: two two-POP
// clusters (us-west, eu-west), short segments so timelines fit in test
// time, modelled link RTT disabled (access profiles supply the latency
// where a scenario wants it), tight fill retries and breakers so
// failover happens on a player timescale.
func testbedConfig() service.Config {
	cfg := service.DefaultConfig()
	cfg.PopConfig.TargetConcurrent = 120
	cfg.SegmentTarget = 800 * time.Millisecond
	cfg.CDNPOPRegions = []string{"us-west", "us-west", "eu-west", "eu-west"}
	cfg.CDNLinkRTTScale = -1
	cfg.CDNFillAttempts = 2
	cfg.CDNBreakerFailures = 2
	cfg.CDNBreakerCooldown = 400 * time.Millisecond
	return cfg
}

// FlashCrowd is the promotion-burst scenario: one broadcast crosses the
// HLS threshold, a viewer burst lands on its preferred POP while chat
// ramps on the same broadcast, and the fill hierarchy must hold — anchor
// warm-up on promotion, peer-first fills inside the cluster, origin
// egress O(clusters) per segment rather than O(viewers).
func FlashCrowd() Scenario {
	const sessionDur = 6 * time.Second
	return Scenario{
		Name:        "flash-crowd",
		Description: "promotion burst → fill-cap pressure → anchor warm-up → peer fills",
		Config:      testbedConfig,
		Steps: []Step{
			// A non-anchor preferred POP makes the peer-fill path load-
			// bearing: the burst POP probes its (warmed) cluster anchor
			// before falling back to origin. Anchors are the lowest index
			// per region cluster — 0 and 2 in the testbed topology.
			PickBroadcastWhere(0, "hot", true, func(r *Run, b *broadcastmodel.Broadcast) bool {
				idx := r.Svc.PreferredPOPIndex(b.ID)
				return idx == 1 || idx == 3
			}),
			Access(0, "hot"),
			WaitSegments(0, "hot", 1, 5*time.Second),
			// The anchors re-warm asynchronously once the first segment is
			// cut; hold the burst until the cluster anchor actually holds
			// it, so the followers' probes peer-fill instead of racing a
			// still-cold anchor straight to the origin.
			WaitUntil(0, "cluster anchor warmed", 5*time.Second, func(r *Run) bool {
				b, err := r.Broadcast("hot")
				if err != nil {
					return false
				}
				snap := r.Svc.Snapshot()
				region := snap.POPs[r.Svc.PreferredPOPIndex(b.ID)].Region
				for _, p := range snap.POPs {
					if p.Region == region {
						// Lowest-indexed POP in the region is the anchor.
						return p.CachedSegments >= 1
					}
				}
				return false
			}),
			SpawnViewers(200*time.Millisecond, "crowd", "hot", 12, nil, sessionDur),
			RampChat(400*time.Millisecond, "hot", 6, 3),
		},
		SLO: SLO{
			MaxJoinP95:               map[string]time.Duration{"crowd": 3 * time.Second},
			MaxLongestStall:          map[string]time.Duration{"crowd": 3 * time.Second},
			MinDelivered:             map[string]int{"crowd": 3},
			MaxOriginFillsPerSegment: 2,
			OriginFillSlack:          24,
			OriginFillSlot:           "hot",
			MinPeerFills:             1,
			MinWarmups:               1,
			MinChatMessages:          12,
			MonotonicCounters:        true,
		},
	}
}

// MassChurn is the lifecycle scenario: broadcasts end and relaunch in a
// staggered sequence through the population's end hook (the real
// ENDLIST → linger → unregister → room-close path), with viewers
// mid-stream. Afterwards nothing may leak: no registered origins, no
// open chat rooms, and no cumulative counter may ever have dipped. The
// package's leakcheck TestMain guards the goroutine side.
func MassChurn() Scenario {
	cfgFn := func() service.Config {
		cfg := testbedConfig()
		// A real (but short) linger so deferred unregister/room-close
		// timers and mid-linger relaunches are exercised.
		cfg.CDNUnregisterLinger = 500 * time.Millisecond
		return cfg
	}
	const sessionDur = 5 * time.Second
	return Scenario{
		Name:        "mass-churn",
		Description: "staggered end/relaunch across broadcasts; no leaked rooms or origins",
		Config:      cfgFn,
		Steps: []Step{
			PickBroadcast(0, "hot1", true),
			PickBroadcast(0, "hot2", true),
			PickBroadcast(0, "quiet", false),
			Access(0, "hot1"),
			Access(0, "hot2"),
			Access(0, "quiet"),
			// Pin ends far out so Advance calls that fire one broadcast's
			// end don't take the others down as a side effect.
			PinEnd(0, "hot2", time.Hour),
			PinEnd(0, "quiet", time.Hour),
			WaitSegments(0, "hot1", 1, 5*time.Second),
			WaitSegments(0, "hot2", 1, 5*time.Second),
			SpawnViewers(300*time.Millisecond, "churned", "hot1", 3, nil, sessionDur),
			SpawnViewers(300*time.Millisecond, "survivors", "hot2", 3, nil, sessionDur),
			RampChat(500*time.Millisecond, "quiet", 4, 3),
			// hot1 ends mid-stream through the population hook (the delay
			// is virtual time: ScheduleEnd advances the population and the
			// end fires inline). Segments land roughly every 1.5s (keyframe
			// alignment stretches the 800ms target), so ending at 3.8s
			// leaves the churned cohort at least two fetched segments.
			ScheduleEnd(3800*time.Millisecond, "hot1", 2*time.Second),
			// ...and relaunches inside its unregister linger, reclaiming
			// the chat room and re-registering on next access.
			Relaunch(4100*time.Millisecond, "hot1", time.Hour),
			Access(4200*time.Millisecond, "hot1"),
			// Then the full staggered teardown: hot1 again, quiet, hot2.
			ScheduleEnd(4600*time.Millisecond, "hot1", time.Second),
			ScheduleEnd(5000*time.Millisecond, "quiet", time.Second),
			ScheduleEnd(5400*time.Millisecond, "hot2", time.Second),
			// Lingers fire, unregisters land, rooms close. Replay (VOD)
			// mounts are not counted: they outlive a broadcast by design.
			WaitUntil(5600*time.Millisecond, "all origins unregistered", 6*time.Second, func(r *Run) bool {
				return r.Svc.Snapshot().Origin.Broadcasts == 0
			}),
			WaitUntil(5600*time.Millisecond, "all chat rooms closed", 6*time.Second, func(r *Run) bool {
				return r.Svc.Snapshot().Chat.Rooms == 0
			}),
		},
		SLO: SLO{
			MinDelivered:      map[string]int{"churned": 2, "survivors": 2},
			MonotonicCounters: true,
			NoResidualOrigins: true,
			NoResidualRooms:   true,
			MinChatMessages:   10,
		},
	}
}

// MobileProfiles replays the paper's access-network sweep: three cohorts
// watch the same broadcast through 3G / 4G / WiFi access links
// (bandwidth, per-request RTT, seeded loss) and the QoE must reproduce
// the measured shape — stall ratio ordered 3G >= 4G >= WiFi with the
// congested 3G cohort genuinely stalling, and join latency strictly
// ordered by access RTT.
func MobileProfiles() Scenario {
	cfgFn := func() service.Config {
		cfg := testbedConfig()
		cfg.CDNPOPRegions = []string{"us-west", "eu-west"}
		return cfg
	}
	const sessionDur = 6 * time.Second
	p3g, p4g, wifi := netem.Profile3G, netem.Profile4G, netem.ProfileWiFi
	return Scenario{
		Name:        "mobile-profiles",
		Description: "3G/4G/WiFi access profiles; stall-ratio ordering per the paper",
		Config:      cfgFn,
		Steps: []Step{
			PickBroadcast(0, "hot", true),
			Access(0, "hot"),
			// Two segments before anyone joins: cohorts start with a real
			// startup buffer, so residual stalls measure the access link,
			// not live-edge jitter shared by every profile.
			WaitSegments(0, "hot", 2, 8*time.Second),
			SpawnViewers(200*time.Millisecond, "3g", "hot", 4, &p3g, sessionDur),
			SpawnViewers(200*time.Millisecond, "4g", "hot", 4, &p4g, sessionDur),
			SpawnViewers(200*time.Millisecond, "wifi", "hot", 4, &wifi, sessionDur),
		},
		SLO: SLO{
			StallRatioOrdering: []string{"3g", "4g", "wifi"},
			JoinOrdering:       []string{"3g", "4g", "wifi"},
			MinStallRatioMean:  map[string]float64{"3g": 0.01},
			MaxStallRatioP95:   map[string]float64{"wifi": 0.05},
			MaxJoinP95:         map[string]time.Duration{"wifi": 1 * time.Second},
			MinDelivered:       map[string]int{"3g": 2, "4g": 3, "wifi": 3},
		},
	}
}

// RegionalOutage is PR 6's resilience scenario on the shared harness:
// viewers watch from their hash-preferred region, the whole region goes
// dark mid-stream, health-driven steering re-routes everyone to the
// surviving cluster with a bounded stall, and recovery re-warms the dead
// POPs before viewers return — all while counters stay cumulative and
// origin egress stays O(clusters).
func RegionalOutage() Scenario {
	const sessionDur = 9 * time.Second
	return Scenario{
		Name:        "regional-outage",
		Description: "regional blackhole → steering failover (bounded stall) → re-warmed recovery",
		Config:      testbedConfig,
		Steps: []Step{
			PickBroadcast(0, "hot", true),
			Access(0, "hot"),
			WaitSegments(0, "hot", 1, 5*time.Second),
			SpawnViewers(100*time.Millisecond, "viewers", "hot", 8, nil, sessionDur),
			// Steady state, then the preferred region goes dark.
			RegionOutage(2100*time.Millisecond, "hot", 2),
			// Hold the outage across a few segment periods, then lift it.
			RestoreOutage(4600*time.Millisecond, "hot", 2),
			WaitHealthy(4600*time.Millisecond, 5*time.Second),
			WaitRewarmed(4600*time.Millisecond, "hot", 5*time.Second),
		},
		SLO: SLO{
			MaxLongestStall:          map[string]time.Duration{"viewers": 4 * time.Second},
			MinDelivered:             map[string]int{"viewers": 5},
			MinProgress:              map[string]time.Duration{"viewers": 6 * time.Second},
			MinReroutes:              1,
			MinWarmups:               1,
			MaxOriginFillsPerSegment: 2,
			OriginFillSlack:          24,
			OriginFillSlot:           "hot",
			MonotonicCounters:        true,
		},
	}
}

// registry maps scenario names to their builders, for tests and the
// periscoped -scenario flag.
var registry = map[string]func() Scenario{
	"flash-crowd":     FlashCrowd,
	"mass-churn":      MassChurn,
	"mobile-profiles": MobileProfiles,
	"regional-outage": RegionalOutage,
}

// ByName returns the named scenario.
func ByName(name string) (Scenario, error) {
	fn, ok := registry[name]
	if !ok {
		return Scenario{}, fmt.Errorf("unknown scenario %q (have: %v)", name, Names())
	}
	return fn(), nil
}

// Names lists the registered scenario names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
