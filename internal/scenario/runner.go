package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"periscope/internal/analysis"
	"periscope/internal/api"
	"periscope/internal/broadcastmodel"
	"periscope/internal/player"
	"periscope/internal/service"
)

// Result is everything a finished scenario produced: per-cohort QoE
// summaries, the step-boundary snapshot sequence, the SLO breaches (empty
// on success) and the rendered report.
type Result struct {
	Scenario  string
	Cohorts   []analysis.CohortSummary
	Snapshots []LabeledSnapshot
	Breaches  []Breach
	Report    string
}

// Execute boots a fresh service from the scenario's config, runs the
// timeline, evaluates the SLO block and renders the report. A non-nil
// error means the scenario could not run (a step failed); SLO breaches
// are not errors — they come back in Result.Breaches.
func Execute(sc Scenario) (*Result, error) {
	svc, err := service.Start(sc.Config())
	if err != nil {
		return nil, fmt.Errorf("scenario %s: starting service: %w", sc.Name, err)
	}
	defer svc.Close()

	r := &Run{
		Svc:     svc,
		Cfg:     sc.Config(),
		start:   time.Now(),
		slots:   map[string]*broadcastmodel.Broadcast{},
		access:  map[string]api.AccessVideoResponse{},
		regions: map[string]string{},
		cohorts: map[string][]*viewerSession{},
	}

	steps := append([]Step(nil), sc.Steps...)
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].At < steps[j].At })

	var snaps []LabeledSnapshot
	snap := func(label string) {
		snaps = append(snaps, LabeledSnapshot{Label: label, At: r.Elapsed(), Snap: svc.Snapshot()})
	}
	snap("start")
	for _, st := range steps {
		if wait := st.At - r.Elapsed(); wait > 0 {
			time.Sleep(wait)
		}
		if err := st.Do(r); err != nil {
			return nil, fmt.Errorf("scenario %s: step %q (t=%v): %w", sc.Name, st.Name, st.At, err)
		}
		snap(st.Name)
	}
	// Drain: every viewer session and chat sender finishes, then the chat
	// clients detach.
	r.wg.Wait()
	for _, cli := range r.chatters {
		cli.Close()
	}
	snap("final")

	res := &Result{Scenario: sc.Name, Snapshots: snaps}
	res.Cohorts = r.summarize()
	res.Breaches = evaluate(sc, r, res)
	res.Report = render(sc, res)
	return res, nil
}

// RunT executes the scenario under a test: step failures are fatal, the
// report is always logged, and every SLO breach is a test error. On
// breach, the report is also written to $SCENARIO_ARTIFACT_DIR (when
// set) so CI can upload the delta tables.
func RunT(t *testing.T, sc Scenario) *Result {
	t.Helper()
	res, err := Execute(sc)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Report)
	if len(res.Breaches) > 0 {
		if dir := os.Getenv("SCENARIO_ARTIFACT_DIR"); dir != "" {
			if err := os.MkdirAll(dir, 0o755); err == nil {
				os.WriteFile(filepath.Join(dir, sc.Name+".txt"), []byte(res.Report), 0o644)
			}
		}
		for _, b := range res.Breaches {
			t.Errorf("SLO breach: %s", b)
		}
	}
	return res
}

// summarize folds each cohort's sessions into a MetricsSummary, in
// first-spawn order.
func (r *Run) summarize() []analysis.CohortSummary {
	var out []analysis.CohortSummary
	for _, label := range r.order {
		sum := analysis.SummarizeMetrics(r.cohortMetrics(label))
		out = append(out, analysis.CohortSummary{Label: label, Summary: sum})
	}
	return out
}

func (r *Run) cohortMetrics(label string) []player.Metrics {
	var ms []player.Metrics
	for _, vs := range r.sessions(label) {
		ms = append(ms, vs.metrics(r.segmentTarget()))
	}
	return ms
}

// sessions returns the cohort's sessions; label "" means all sessions.
func (r *Run) sessions(label string) []*viewerSession {
	if label == "" {
		var all []*viewerSession
		for _, l := range r.order {
			all = append(all, r.cohorts[l]...)
		}
		return all
	}
	return r.cohorts[label]
}

func (r *Run) segmentTarget() time.Duration {
	if r.Cfg.SegmentTarget > 0 {
		return r.Cfg.SegmentTarget
	}
	return 3600 * time.Millisecond
}

// evaluate checks every asserted SLO and returns the breaches.
func evaluate(sc Scenario, r *Run, res *Result) []Breach {
	var breaches []Breach
	fail := func(check, cohort, observed, limit string) {
		breaches = append(breaches, Breach{Check: check, Cohort: cohort, Observed: observed, Limit: limit})
	}
	slo := sc.SLO
	summary := func(label string) analysis.MetricsSummary {
		return analysis.SummarizeMetrics(r.cohortMetrics(label))
	}

	for cohort, max := range slo.MaxJoinP95 {
		if s := summary(cohort); s.Sessions == 0 {
			fail("join-p95", cohort, "no sessions", "≥1 session")
		} else if s.JoinP95 > max {
			fail("join-p95", cohort, s.JoinP95.String(), "≤ "+max.String())
		}
	}
	for cohort, max := range slo.MaxStallRatioP95 {
		if s := summary(cohort); s.Sessions == 0 {
			fail("stall-ratio-p95", cohort, "no sessions", "≥1 session")
		} else if s.StallRatioP95 > max {
			fail("stall-ratio-p95", cohort, fmt.Sprintf("%.3f", s.StallRatioP95), fmt.Sprintf("≤ %.3f", max))
		}
	}
	for cohort, min := range slo.MinStallRatioMean {
		if s := summary(cohort); s.StallRatioMean < min {
			fail("stall-ratio-mean", cohort, fmt.Sprintf("%.3f", s.StallRatioMean), fmt.Sprintf("≥ %.3f", min))
		}
	}
	for cohort, max := range slo.MaxLongestStall {
		if s := summary(cohort); s.LongestStall > max {
			fail("longest-stall", cohort, s.LongestStall.String(), "≤ "+max.String())
		}
	}
	for cohort, min := range slo.MinDelivered {
		for i, vs := range r.sessions(cohort) {
			if len(vs.chunks) < min {
				fail("delivered", cohort, fmt.Sprintf("session %d fetched %d segments", i, len(vs.chunks)), fmt.Sprintf("≥ %d", min))
			}
		}
	}
	for cohort, min := range slo.MinProgress {
		for i, vs := range r.sessions(cohort) {
			if vs.lastArrival < min {
				fail("progress", cohort, fmt.Sprintf("session %d last media at %v", i, vs.lastArrival.Round(time.Millisecond)), "≥ "+min.String())
			}
		}
	}

	if len(slo.StallRatioOrdering) > 1 {
		for i := 0; i+1 < len(slo.StallRatioOrdering); i++ {
			worse, better := slo.StallRatioOrdering[i], slo.StallRatioOrdering[i+1]
			if summary(worse).StallRatioMean < summary(better).StallRatioMean {
				fail("stall-ordering", worse+"≥"+better,
					fmt.Sprintf("%.3f < %.3f", summary(worse).StallRatioMean, summary(better).StallRatioMean),
					"mean stall non-increasing along "+strings.Join(slo.StallRatioOrdering, " ≥ "))
			}
		}
	}
	if len(slo.JoinOrdering) > 1 {
		for i := 0; i+1 < len(slo.JoinOrdering); i++ {
			slower, faster := slo.JoinOrdering[i], slo.JoinOrdering[i+1]
			if summary(slower).JoinP50 <= summary(faster).JoinP50 {
				fail("join-ordering", slower+">"+faster,
					fmt.Sprintf("%v ≤ %v", summary(slower).JoinP50, summary(faster).JoinP50),
					"p50 join strictly decreasing along "+strings.Join(slo.JoinOrdering, " > "))
			}
		}
	}

	final := res.Snapshots[len(res.Snapshots)-1].Snap
	if slo.MaxOriginFillsPerSegment > 0 {
		slot := slo.OriginFillSlot
		segs := 0
		if b, err := r.Broadcast(slot); err == nil {
			segs = r.Svc.BroadcastSegments(b.ID)
		}
		if segs == 0 {
			fail("origin-egress", slot, "0 segments produced", "≥1 segment")
		} else {
			limit := int64(slo.MaxOriginFillsPerSegment*float64(segs)) + slo.OriginFillSlack
			if got := final.Origin.SegmentRequests; got > limit {
				fail("origin-egress", slot,
					fmt.Sprintf("%d origin fills for %d segments", got, segs),
					fmt.Sprintf("≤ %.1f/segment + %d", slo.MaxOriginFillsPerSegment, slo.OriginFillSlack))
			}
		}
	}

	if slo.MonotonicCounters {
		for i := 1; i < len(res.Snapshots); i++ {
			prev, cur := res.Snapshots[i-1], res.Snapshots[i]
			for _, dip := range counterDips(prev.Snap, cur.Snap) {
				fail("monotonic", dip, fmt.Sprintf("dipped between %q and %q", prev.Label, cur.Label), "never decreases")
			}
		}
	}

	if slo.NoResidualOrigins && final.Origin.Broadcasts != 0 {
		fail("residual-origins", "", fmt.Sprintf("%d broadcasts still registered", final.Origin.Broadcasts), "0")
	}
	if slo.NoResidualRooms && final.Chat.Rooms != 0 {
		fail("residual-rooms", "", fmt.Sprintf("%d rooms still open", final.Chat.Rooms), "0")
	}

	var reroutes, peerFills, warmups int64
	for _, p := range final.POPs {
		reroutes += p.Reroutes
		peerFills += p.PeerFills
		warmups += p.Warmups
	}
	if slo.MinReroutes > 0 && reroutes < slo.MinReroutes {
		fail("reroutes", "", fmt.Sprintf("%d", reroutes), fmt.Sprintf("≥ %d", slo.MinReroutes))
	}
	if slo.MinPeerFills > 0 && peerFills < slo.MinPeerFills {
		fail("peer-fills", "", fmt.Sprintf("%d", peerFills), fmt.Sprintf("≥ %d", slo.MinPeerFills))
	}
	if slo.MinWarmups > 0 && warmups < slo.MinWarmups {
		fail("warmups", "", fmt.Sprintf("%d", warmups), fmt.Sprintf("≥ %d", slo.MinWarmups))
	}
	if slo.MinChatMessages > 0 && final.Chat.MessagesIn < slo.MinChatMessages {
		fail("chat-messages", "", fmt.Sprintf("%d", final.Chat.MessagesIn), fmt.Sprintf("≥ %d", slo.MinChatMessages))
	}
	return breaches
}

// counterDips compares the cumulative counters of two snapshots and names
// every one that went backwards.
func counterDips(a, b service.Snapshot) []string {
	var dips []string
	dip := func(name string, x, y int64) {
		if y < x {
			dips = append(dips, fmt.Sprintf("%s (%d → %d)", name, x, y))
		}
	}
	dip("delivery.drops", a.Delivery.Drops, b.Delivery.Drops)
	dip("delivery.resyncs", a.Delivery.Resyncs, b.Delivery.Resyncs)
	dip("delivery.hopeless", a.Delivery.HopelessDisconnects, b.Delivery.HopelessDisconnects)
	dip("origin.requests", a.Origin.Requests, b.Origin.Requests)
	dip("origin.bytes", a.Origin.Bytes, b.Origin.Bytes)
	dip("origin.segment-requests", a.Origin.SegmentRequests, b.Origin.SegmentRequests)
	for i := range a.POPs {
		if i >= len(b.POPs) {
			break
		}
		p, q := a.POPs[i], b.POPs[i]
		pre := fmt.Sprintf("pop%d.", i)
		dip(pre+"requests", p.Requests, q.Requests)
		dip(pre+"fills", p.Fills, q.Fills)
		dip(pre+"peer-fills", p.PeerFills, q.PeerFills)
		dip(pre+"origin-fills", p.OriginFills, q.OriginFills)
		dip(pre+"reroutes", p.Reroutes, q.Reroutes)
		dip(pre+"fill-retries", p.FillRetries, q.FillRetries)
		dip(pre+"breaker-trips", p.BreakerTrips, q.BreakerTrips)
		dip(pre+"warmups", p.Warmups, q.Warmups)
		dip(pre+"fill-cap-waits", p.FillCapWaits, q.FillCapWaits)
	}
	dip("chat.rooms-opened", a.Chat.RoomsOpened, b.Chat.RoomsOpened)
	dip("chat.rooms-closed", a.Chat.RoomsClosed, b.Chat.RoomsClosed)
	dip("chat.members-joined", a.Chat.MembersJoined, b.Chat.MembersJoined)
	dip("chat.messages-in", a.Chat.MessagesIn, b.Chat.MessagesIn)
	dip("chat.messages-out", a.Chat.MessagesOut, b.Chat.MessagesOut)
	dip("chat.heart-taps", a.Chat.HeartTaps, b.Chat.HeartTaps)
	return dips
}

// render builds the scenario report: per-cohort QoE summaries plus the
// SLO delta table (every breach with observed vs. limit).
func render(sc Scenario, res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s — %s\n\n", sc.Name, sc.Description)
	if len(res.Cohorts) > 0 {
		b.WriteString(analysis.SummaryTable("scenario-qoe", "per-cohort QoE ("+sc.Name+")", res.Cohorts).Render())
		b.WriteString("\n")
	}
	status := analysis.Table{
		ID:     "scenario-slo",
		Title:  fmt.Sprintf("SLO deltas (%s): %d breach(es)", sc.Name, len(res.Breaches)),
		Header: []string{"check", "cohort", "observed", "limit", "status"},
	}
	for _, br := range res.Breaches {
		status.Rows = append(status.Rows, []string{br.Check, br.Cohort, br.Observed, br.Limit, "BREACH"})
	}
	if len(res.Breaches) == 0 {
		status.Rows = append(status.Rows, []string{"all asserted SLOs", "", "within limits", "", "ok"})
	}
	b.WriteString(status.Render())
	b.WriteString("\n")
	last := res.Snapshots[len(res.Snapshots)-1]
	b.WriteString(analysis.DeliveryTable(last.Snap).Render())
	return b.String()
}
