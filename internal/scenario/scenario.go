// Package scenario is the declarative timeline runner for the full
// testbed: a Scenario is a list of timestamped steps (pick/promote a
// broadcast, spawn viewer cohorts, inject faults, blackhole a region,
// end/relaunch broadcasts through the population, ramp chat load) plus an
// SLO block. The runner boots a real service, executes the steps against
// real HTTP viewers and WebSocket chat members, samples
// Service.Snapshot() at every step boundary, folds per-viewer
// player.Metrics into analysis.MetricsSummary per cohort, and evaluates
// the SLOs — failing with a rendered delta table on any breach.
//
// The paper measured QoE under real network conditions (§5); the named
// scenarios in scenarios.go replay its measurement axes as repeatable
// tier-1 tests: flash crowd, mass churn, mobile access profiles, and
// regional outage.
package scenario

import (
	"fmt"
	"sync"
	"time"

	"periscope/internal/api"
	"periscope/internal/broadcastmodel"
	"periscope/internal/chat"
	"periscope/internal/service"
)

// Step is one timestamped action on the running testbed. At is the
// offset from scenario start; steps execute sequentially in At order, and
// the runner samples a labelled snapshot after each one.
type Step struct {
	At   time.Duration
	Name string
	Do   func(r *Run) error
}

// SLO is the assertion block evaluated once the timeline has drained.
// Map keys are cohort labels from SpawnViewers; the empty label ""
// applies to every session across all cohorts. Zero values mean "not
// asserted".
type SLO struct {
	// MaxJoinP95 bounds the cohort's p95 join latency.
	MaxJoinP95 map[string]time.Duration
	// MaxStallRatioP95 bounds the cohort's p95 stall ratio.
	MaxStallRatioP95 map[string]float64
	// MinStallRatioMean asserts the cohort really did stall — the
	// congested-profile half of the paper's ordering observation.
	MinStallRatioMean map[string]float64
	// MaxLongestStall bounds the single worst rebuffering interval in the
	// cohort (the failover bound).
	MaxLongestStall map[string]time.Duration
	// MinDelivered requires every session in the cohort to have fetched
	// at least this many segments.
	MinDelivered map[string]int
	// MinProgress requires every session in the cohort to still be
	// receiving media at or after this session offset (no viewer silently
	// gave up mid-scenario).
	MinProgress map[string]time.Duration

	// StallRatioOrdering lists cohorts worst-first: mean stall ratios
	// must be non-increasing along the list (the paper's 3G >= 4G >= WiFi
	// observation).
	StallRatioOrdering []string
	// JoinOrdering lists cohorts slowest-first: p50 join latencies must
	// be strictly decreasing along the list.
	JoinOrdering []string

	// MaxOriginFillsPerSegment bounds origin segment egress at
	// MaxOriginFillsPerSegment × segments(OriginFillSlot) +
	// OriginFillSlack — the O(clusters)-not-O(viewers) assertion.
	MaxOriginFillsPerSegment float64
	OriginFillSlack          int64
	OriginFillSlot           string

	// MonotonicCounters asserts no cumulative snapshot counter ever dips
	// across the step-boundary snapshot sequence.
	MonotonicCounters bool

	// NoResidualOrigins asserts the final snapshot holds zero registered
	// origin broadcasts; NoResidualRooms zero open chat rooms — the
	// leaked-state checks for churn scenarios.
	NoResidualOrigins bool
	NoResidualRooms   bool

	// MinReroutes requires at least this many steering re-routes summed
	// across POPs; MinPeerFills this many peer-sourced segment fills;
	// MinWarmups this many scheduled replica warm-ups; MinChatMessages
	// this many chat messages ingested.
	MinReroutes     int64
	MinPeerFills    int64
	MinWarmups      int64
	MinChatMessages int64
}

// Scenario is a named, self-contained timeline: its own service config,
// its steps, and the SLOs that define success.
type Scenario struct {
	Name        string
	Description string
	Config      func() service.Config
	Steps       []Step
	SLO         SLO
}

// LabeledSnapshot is one step-boundary sample of the service counters.
type LabeledSnapshot struct {
	Label string
	At    time.Duration
	Snap  service.Snapshot
}

// Breach is one failed SLO check.
type Breach struct {
	Check    string
	Cohort   string
	Observed string
	Limit    string
}

func (b Breach) String() string {
	where := b.Check
	if b.Cohort != "" {
		where += "[" + b.Cohort + "]"
	}
	return fmt.Sprintf("%s: observed %s, limit %s", where, b.Observed, b.Limit)
}

// Run is the mutable state a step operates on. Steps run sequentially on
// one goroutine; only viewer/chat goroutines touch the guarded fields
// concurrently.
type Run struct {
	Svc *service.Service
	Cfg service.Config

	start time.Time

	mu       sync.Mutex
	slots    map[string]*broadcastmodel.Broadcast
	access   map[string]api.AccessVideoResponse
	regions  map[string]string // slot -> region a RegionOutage step downed
	cohorts  map[string][]*viewerSession
	order    []string // cohort labels in first-spawn order
	chatters []*chat.Client

	wg sync.WaitGroup // viewer sessions and chat senders
}

// Broadcast returns the broadcast bound to slot by a PickBroadcast step.
func (r *Run) Broadcast(slot string) (*broadcastmodel.Broadcast, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.slots[slot]
	if !ok {
		return nil, fmt.Errorf("slot %q not bound by any PickBroadcast step", slot)
	}
	return b, nil
}

func (r *Run) bind(slot string, b *broadcastmodel.Broadcast) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.slots[slot] = b
}

// Elapsed is the time since scenario start.
func (r *Run) Elapsed() time.Duration { return time.Since(r.start) }
