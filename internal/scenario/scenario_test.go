package scenario

import (
	"strings"
	"testing"
	"time"

	"periscope/internal/netem"
	"periscope/internal/service"
)

// The four shipped timelines, each through the shared runner. Every
// scenario asserts at least three SLOs (see scenarios.go); a breach
// fails the test with the rendered delta table in the log.

func TestScenarioFlashCrowd(t *testing.T) {
	res := RunT(t, FlashCrowd())
	// Beyond the SLO block: the burst must actually have exercised the
	// fill hierarchy (the whole point of the scenario).
	final := res.Snapshots[len(res.Snapshots)-1].Snap
	var fills int64
	for _, p := range final.POPs {
		fills += p.Fills
	}
	if fills == 0 {
		t.Error("flash crowd produced no edge fills at all")
	}
}

func TestScenarioMassChurn(t *testing.T) {
	res := RunT(t, MassChurn())
	final := res.Snapshots[len(res.Snapshots)-1].Snap
	// The churn was real: rooms opened, rooms closed, and everything
	// opened was closed by the end.
	if final.Chat.RoomsOpened < 3 {
		t.Errorf("only %d rooms ever opened, want >= 3", final.Chat.RoomsOpened)
	}
	if final.Chat.RoomsClosed != final.Chat.RoomsOpened {
		t.Errorf("rooms closed %d != opened %d", final.Chat.RoomsClosed, final.Chat.RoomsOpened)
	}
}

func TestScenarioMobileProfiles(t *testing.T) {
	res := RunT(t, MobileProfiles())
	if len(res.Cohorts) != 3 {
		t.Fatalf("got %d cohorts, want 3", len(res.Cohorts))
	}
	// The report carries the per-cohort table the SLOs were judged on.
	for _, label := range []string{"3g", "4g", "wifi"} {
		if !strings.Contains(res.Report, label) {
			t.Errorf("report missing cohort %q:\n%s", label, res.Report)
		}
	}
}

func TestScenarioRegionalOutage(t *testing.T) {
	res := RunT(t, RegionalOutage())
	final := res.Snapshots[len(res.Snapshots)-1].Snap
	// Recovery must have re-warmed the downed cluster (warmups counted on
	// its POPs beyond the promotion-time warm-up).
	var warm int64
	for _, p := range final.POPs {
		warm += p.Warmups
	}
	if warm < 2 {
		t.Errorf("only %d warmups across POPs; recovery re-warm missing", warm)
	}
}

// TestScenarioHarnessFailsOnBreach is the deliberately-broken fixture:
// a timeline whose SLO block cannot be satisfied (an impossible join
// bound, plus an injected origin fault to make the degradation real)
// must come back with breaches and a rendered delta table — proving the
// harness actually fails on breach rather than rubber-stamping.
func TestScenarioHarnessFailsOnBreach(t *testing.T) {
	broken := Scenario{
		Name:        "broken-fixture",
		Description: "impossible SLOs over a degraded fill path",
		Config: func() service.Config {
			cfg := testbedConfig()
			cfg.CDNPOPRegions = []string{"us-west", "eu-west"}
			return cfg
		},
		Steps: []Step{
			PickBroadcast(0, "hot", true),
			Access(0, "hot"),
			WaitSegments(0, "hot", 1, 5*time.Second),
			InjectOriginFault(0, netem.FaultProfile{LossProb: 0.3, Seed: 11}),
			SpawnViewers(100*time.Millisecond, "crowd", "hot", 2, nil, 2*time.Second),
		},
		SLO: SLO{
			// No real viewer joins in under a nanosecond.
			MaxJoinP95: map[string]time.Duration{"crowd": time.Nanosecond},
			// And no session can deliver a million segments.
			MinDelivered: map[string]int{"crowd": 1_000_000},
		},
	}
	res, err := Execute(broken)
	if err != nil {
		t.Fatalf("broken fixture failed to run (want SLO breaches, not a step error): %v", err)
	}
	if len(res.Breaches) == 0 {
		t.Fatal("broken fixture reported zero breaches — the harness does not fail on breach")
	}
	checks := map[string]bool{}
	for _, b := range res.Breaches {
		checks[b.Check] = true
	}
	if !checks["join-p95"] || !checks["delivered"] {
		t.Errorf("expected join-p95 and delivered breaches, got %v", res.Breaches)
	}
	if !strings.Contains(res.Report, "BREACH") {
		t.Errorf("report does not render the breach delta table:\n%s", res.Report)
	}
}

// TestScenarioRegistry pins the registry the -scenario flag resolves.
func TestScenarioRegistry(t *testing.T) {
	want := []string{"flash-crowd", "mass-churn", "mobile-profiles", "regional-outage"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, name := range want {
		sc, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
		if sc.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, sc.Name)
		}
	}
	if _, err := ByName("no-such-timeline"); err == nil {
		t.Error("ByName of an unknown scenario did not error")
	}
}
