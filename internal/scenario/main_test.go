package scenario

import (
	"net/http"
	"testing"

	"periscope/internal/api"
	"periscope/internal/leakcheck"
)

// TestMain makes the mass-churn "no leaked goroutines" guarantee real:
// after every scenario has torn its service down, any non-allowlisted
// goroutine still alive fails the binary. The cleanup drops idle
// keep-alive sockets first — the api package's shared transport and
// http.DefaultClient (chat members' heart taps) hold warm connections by
// design, and their readLoop/writeLoop goroutines are not leaks.
func TestMain(m *testing.M) {
	leakcheck.Main(m, leakcheck.Cleanup(func() {
		api.CloseIdleConnections()
		http.DefaultClient.CloseIdleConnections()
	}))
}
