package scenario

import (
	"fmt"
	"time"

	"periscope/internal/broadcastmodel"
	"periscope/internal/chat"
	"periscope/internal/netem"
)

// PickBroadcast binds a live broadcast of the given popularity class to a
// named slot. A popular pick past the arrival ramp is promoted the way
// the service tests do (base level raised, start backdated) — promotion
// happens here, strictly before any viewer goroutines touch the
// broadcast, so the mutation cannot race ViewersAt.
func PickBroadcast(at time.Duration, slot string, popular bool) Step {
	return PickBroadcastWhere(at, slot, popular, nil)
}

// PickBroadcastWhere is PickBroadcast with an extra predicate over the
// candidates (e.g. "its preferred POP must not be a cluster anchor").
// Already-bound broadcasts are never re-picked.
func PickBroadcastWhere(at time.Duration, slot string, popular bool, where func(*Run, *broadcastmodel.Broadcast) bool) Step {
	return Step{At: at, Name: "pick " + slot, Do: func(r *Run) error {
		bound := map[string]bool{}
		r.mu.Lock()
		for _, b := range r.slots {
			bound[b.ID] = true
		}
		r.mu.Unlock()
		now := r.Svc.Pop.Now()
		th := r.Cfg.HLSViewerThreshold
		ok := func(b *broadcastmodel.Broadcast) bool {
			return !b.Private && !bound[b.ID] && (where == nil || where(r, b))
		}
		if !popular {
			for _, b := range r.Svc.Pop.Live() {
				// Jitter peaks at 1.15x the base level; stay clear of it.
				if ok(b) && b.BaseViewers*1.2 < float64(th) {
					r.bind(slot, b)
					return nil
				}
			}
			return fmt.Errorf("pick %s: no unpopular broadcast available", slot)
		}
		for _, b := range r.Svc.Pop.Live() {
			if ok(b) && b.ViewersAt(now) >= 2*th {
				r.bind(slot, b)
				return nil
			}
		}
		// Popular casts are rare at small scale: promote one, backdating
		// the start past the viewer-arrival ramp.
		for _, b := range r.Svc.Pop.Live() {
			if !ok(b) {
				continue
			}
			b.BaseViewers = 500
			if age := now.Sub(b.Start); age < 10*time.Minute {
				b.Start = now.Add(-10 * time.Minute)
			}
			if v := b.ViewersAt(now); v < th {
				return fmt.Errorf("pick %s: promoted broadcast still has %d < %d viewers", slot, v, th)
			}
			r.bind(slot, b)
			return nil
		}
		return fmt.Errorf("pick %s: no candidate broadcast", slot)
	}}
}

// Access resolves the slot's broadcast through the real AccessVideo
// policy, starting its pipeline (and, for popular casts, HLS + CDN
// registration). The response is kept for later steps (chat URL, HLS
// base).
func Access(at time.Duration, slot string) Step {
	return Step{At: at, Name: "access " + slot, Do: func(r *Run) error {
		b, err := r.Broadcast(slot)
		if err != nil {
			return err
		}
		resp, err := r.Svc.AccessVideo(b.ID)
		if err != nil {
			return fmt.Errorf("access %s: %w", slot, err)
		}
		r.mu.Lock()
		r.access[slot] = resp
		r.mu.Unlock()
		return nil
	}}
}

// WaitSegments polls until the slot's segmenter has produced at least n
// segments, erroring after the within budget — the "first segment is out,
// the CDN has something to serve" barrier.
func WaitSegments(at time.Duration, slot string, n int, within time.Duration) Step {
	return WaitUntil(at, fmt.Sprintf("%s has %d segments", slot, n), within, func(r *Run) bool {
		b, err := r.Broadcast(slot)
		return err == nil && r.Svc.BroadcastSegments(b.ID) >= n
	})
}

// WaitUntil polls cond every 20 ms until it holds, erroring after the
// within budget. All scenario waits go through here — polling with a
// deadline, never a bare sleep-and-hope.
func WaitUntil(at time.Duration, what string, within time.Duration, cond func(*Run) bool) Step {
	return Step{At: at, Name: "wait: " + what, Do: func(r *Run) error {
		deadline := time.Now().Add(within)
		for time.Now().Before(deadline) {
			if cond(r) {
				return nil
			}
			time.Sleep(20 * time.Millisecond)
		}
		return fmt.Errorf("timeout after %v waiting for %s", within, what)
	}}
}

// SpawnViewers starts n concurrent HLS viewer sessions on the slot's
// broadcast under the given cohort label, each lasting dur. A non-nil
// access profile shapes every viewer's HTTP path through its own
// netem.Link (per-request RTT, bandwidth pacing, seeded loss), seeded
// per viewer so drop sequences replay.
func SpawnViewers(at time.Duration, cohort, slot string, n int, profile *netem.AccessProfile, dur time.Duration) Step {
	return Step{At: at, Name: fmt.Sprintf("spawn %d %s viewers on %s", n, cohort, slot), Do: func(r *Run) error {
		b, err := r.Broadcast(slot)
		if err != nil {
			return err
		}
		r.mu.Lock()
		if _, seen := r.cohorts[cohort]; !seen {
			r.order = append(r.order, cohort)
		}
		for i := 0; i < n; i++ {
			vs := &viewerSession{cohort: cohort, dur: dur}
			r.cohorts[cohort] = append(r.cohorts[cohort], vs)
			r.wg.Add(1)
			seed := int64(len(r.cohorts[cohort]))
			go func(vs *viewerSession, seed int64) {
				defer r.wg.Done()
				vs.run(r.Svc, b.ID, profile, seed)
			}(vs, seed)
		}
		r.mu.Unlock()
		return nil
	}}
}

// RampChat joins members real WebSocket chat clients to the slot's room
// (the room the slot's Access step created) and has each send msgs
// messages plus a burst of hearts — flash crowds exercise chat and media
// together. Clients stay attached until the timeline drains.
func RampChat(at time.Duration, slot string, members, msgs int) Step {
	return Step{At: at, Name: fmt.Sprintf("ramp chat on %s: %d members", slot, members), Do: func(r *Run) error {
		b, err := r.Broadcast(slot)
		if err != nil {
			return err
		}
		r.mu.Lock()
		resp, ok := r.access[slot]
		r.mu.Unlock()
		if !ok || resp.ChatURL == "" {
			return fmt.Errorf("ramp chat %s: no Access step resolved a chat URL", slot)
		}
		heartsURL := r.Svc.ChatBaseURL() + "/hearts/" + b.ID
		for i := 0; i < members; i++ {
			cli, err := chat.Join(chat.ClientConfig{
				ChatURL:   resp.ChatURL,
				HeartsURL: heartsURL,
			})
			if err != nil {
				return fmt.Errorf("ramp chat %s: member %d join: %w", slot, i, err)
			}
			r.mu.Lock()
			r.chatters = append(r.chatters, cli)
			r.mu.Unlock()
			r.wg.Add(1)
			go func(cli *chat.Client, member int) {
				defer r.wg.Done()
				for m := 0; m < msgs; m++ {
					if err := cli.Send(fmt.Sprintf("msg %d from member %d", m, member)); err != nil {
						return
					}
					time.Sleep(60 * time.Millisecond)
				}
				cli.Heart(3)
			}(cli, i)
		}
		return nil
	}}
}

// ScheduleEnd schedules the slot's broadcast to end after the given
// virtual delay, then advances the population far enough for the end to
// fire — the real end path: Population.OnBroadcastEnd drives
// Service.EndBroadcast (ENDLIST, linger, unregister, chat-room close).
func ScheduleEnd(at time.Duration, slot string, delay time.Duration) Step {
	return Step{At: at, Name: "end " + slot, Do: func(r *Run) error {
		b, err := r.Broadcast(slot)
		if err != nil {
			return err
		}
		if !r.Svc.Pop.EndAt(b.ID, r.Svc.Pop.Now().Add(delay)) {
			return fmt.Errorf("end %s: broadcast %s not live", slot, b.ID)
		}
		r.Svc.Pop.Advance(delay + time.Second)
		return nil
	}}
}

// PinEnd pushes the slot's scheduled end far into the virtual future, so
// Advance calls made to fire *other* broadcasts' ends cannot take this
// one down as a side effect.
func PinEnd(at time.Duration, slot string, keepFor time.Duration) Step {
	return Step{At: at, Name: "pin " + slot, Do: func(r *Run) error {
		b, err := r.Broadcast(slot)
		if err != nil {
			return err
		}
		if !r.Svc.Pop.EndAt(b.ID, r.Svc.Pop.Now().Add(keepFor)) {
			return fmt.Errorf("pin %s: broadcast %s not live", slot, b.ID)
		}
		return nil
	}}
}

// Relaunch brings the slot's ended broadcast back live for dur (the
// mid-linger relaunch path: the chat room is reclaimed, a fresh pipeline
// starts on next access).
func Relaunch(at time.Duration, slot string, dur time.Duration) Step {
	return Step{At: at, Name: "relaunch " + slot, Do: func(r *Run) error {
		b, err := r.Broadcast(slot)
		if err != nil {
			return err
		}
		nb, ok := r.Svc.Pop.Relaunch(b.ID, dur)
		if !ok {
			return fmt.Errorf("relaunch %s: broadcast %s not relaunchable", slot, b.ID)
		}
		r.bind(slot, nb)
		return nil
	}}
}

// RegionOutage blackholes every POP in the slot's hash-preferred region
// (the region actually serving its viewers) and verifies the steering
// plane reports those POPs down. The downed region is remembered for
// RestoreOutage / WaitRewarmed.
func RegionOutage(at time.Duration, slot string, wantDown int) Step {
	return Step{At: at, Name: "region outage for " + slot, Do: func(r *Run) error {
		b, err := r.Broadcast(slot)
		if err != nil {
			return err
		}
		region := r.Svc.PreferredPOPRegion(b.ID)
		if downed := r.Svc.RegionOutage(region); downed != wantDown {
			return fmt.Errorf("region outage %s: downed %d POPs in %s, want %d", slot, downed, region, wantDown)
		}
		snap := r.Svc.Snapshot()
		for i, st := range r.Svc.POPHealthStates() {
			if snap.POPs[i].Region == region && st != "down" {
				return fmt.Errorf("region outage %s: POP %d in %s reports %q, want down", slot, i, region, st)
			}
		}
		r.mu.Lock()
		r.regions[slot] = region
		r.mu.Unlock()
		return nil
	}}
}

// RestoreOutage lifts the regional outage a RegionOutage step opened for
// this slot, re-warming the recovered POPs.
func RestoreOutage(at time.Duration, slot string, wantUp int) Step {
	return Step{At: at, Name: "restore region for " + slot, Do: func(r *Run) error {
		r.mu.Lock()
		region, ok := r.regions[slot]
		r.mu.Unlock()
		if !ok {
			return fmt.Errorf("restore %s: no prior RegionOutage step", slot)
		}
		if restored := r.Svc.RestoreRegion(region); restored != wantUp {
			return fmt.Errorf("restore %s: restored %d POPs in %s, want %d", slot, restored, region, wantUp)
		}
		return nil
	}}
}

// WaitHealthy polls until every POP steers as "ok".
func WaitHealthy(at, within time.Duration) Step {
	return WaitUntil(at, "all POPs healthy", within, func(r *Run) bool {
		for _, st := range r.Svc.POPHealthStates() {
			if st != "ok" {
				return false
			}
		}
		return true
	})
}

// WaitRewarmed polls until every POP in the slot's downed-then-restored
// region holds cached segments again — recovery must return edges warm,
// not cold.
func WaitRewarmed(at time.Duration, slot string, within time.Duration) Step {
	return WaitUntil(at, slot+" region re-warmed", within, func(r *Run) bool {
		r.mu.Lock()
		region, ok := r.regions[slot]
		r.mu.Unlock()
		if !ok {
			return false
		}
		warm := false
		for _, p := range r.Svc.Snapshot().POPs {
			if p.Region != region {
				continue
			}
			if p.CachedSegments < 1 {
				return false
			}
			warm = true
		}
		return warm
	})
}

// InjectOriginFault installs a fault profile on every POP's origin fill
// link — the partial-degradation lever (and the one the broken-SLO
// fixture pulls to force a breach).
func InjectOriginFault(at time.Duration, profile netem.FaultProfile) Step {
	return Step{At: at, Name: "inject origin fault", Do: func(r *Run) error {
		for i := range r.Svc.Snapshot().POPs {
			r.Svc.SetPOPOriginFault(i, profile)
		}
		return nil
	}}
}
