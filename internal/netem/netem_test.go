package netem

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestTokenBucketUnlimited(t *testing.T) {
	tb := NewTokenBucket(0, 0)
	done := make(chan struct{})
	go func() {
		tb.Take(1 << 30)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("unlimited bucket blocked")
	}
}

func TestTokenBucketRate(t *testing.T) {
	// 1 MB/s, tiny burst: taking 200 KB must take roughly 0.2 s.
	tb := NewTokenBucket(1e6, 10_000)
	start := time.Now()
	for i := 0; i < 20; i++ {
		tb.Take(10_000)
	}
	elapsed := time.Since(start)
	if elapsed < 120*time.Millisecond || elapsed > 600*time.Millisecond {
		t.Errorf("200KB at 1MB/s took %v, want ~190ms", elapsed)
	}
}

func TestShaperLimitsThroughput(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	payload := make([]byte, 400_000) // 3.2 Mbit
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		c.Write(payload)
	}()

	s := NewShaper(Mbps(8)) // 8 Mbps => ~0.4 s for 3.2 Mbit
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	shaped := s.Conn(nc)
	defer shaped.Close()
	start := time.Now()
	got, err := io.ReadAll(shaped)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if len(got) != len(payload) {
		t.Fatalf("read %d bytes", len(got))
	}
	if elapsed < 250*time.Millisecond {
		t.Errorf("download finished in %v; shaping ineffective", elapsed)
	}
	if s.BytesIn() != int64(len(payload)) {
		t.Errorf("BytesIn = %d", s.BytesIn())
	}
}

func TestShaperLatency(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		c.Write([]byte("x"))
	}()
	s := &Shaper{Latency: 100 * time.Millisecond}
	nc, _ := net.Dial("tcp", ln.Addr().String())
	shaped := s.Conn(nc)
	defer shaped.Close()
	start := time.Now()
	buf := make([]byte, 1)
	if _, err := io.ReadFull(shaped, buf); err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e < 90*time.Millisecond {
		t.Errorf("first byte after %v, want >= 100ms", e)
	}
}

func TestLinkRTTAndMetering(t *testing.T) {
	payload := []byte("segment-bytes")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	}))
	defer srv.Close()

	l := &Link{RTT: 60 * time.Millisecond}
	cli := l.Client()
	for i := 0; i < 2; i++ {
		// Every request pays the RTT, including ones reusing a keep-alive
		// connection — that is the difference from Shaper's per-conn delay.
		start := time.Now()
		resp, err := cli.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || string(body) != string(payload) {
			t.Fatalf("body = %q, err = %v", body, err)
		}
		if e := time.Since(start); e < 55*time.Millisecond {
			t.Errorf("request %d completed in %v, want >= 60ms", i, e)
		}
	}
	if got := l.Requests(); got != 2 {
		t.Errorf("Requests = %d, want 2", got)
	}
	if got := l.Bytes(); got != int64(2*len(payload)) {
		t.Errorf("Bytes = %d, want %d", got, 2*len(payload))
	}
}

func TestLinkBandwidthPacesBody(t *testing.T) {
	payload := make([]byte, 200_000) // 1.6 Mbit
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	}))
	defer srv.Close()

	l := &Link{Bandwidth: Mbps(8)} // ~0.2 s for 1.6 Mbit
	start := time.Now()
	resp, err := l.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(got) != len(payload) {
		t.Fatalf("read %d bytes, err %v", len(got), err)
	}
	if e := time.Since(start); e < 100*time.Millisecond {
		t.Errorf("download finished in %v; link pacing ineffective", e)
	}
}

func TestLinkCancelledDuringRTT(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	l := &Link{RTT: 5 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	if _, err := l.Client().Do(req); err == nil {
		t.Fatal("want context error during RTT wait")
	}
	if e := time.Since(start); e > time.Second {
		t.Errorf("cancellation took %v; RTT sleep not interruptible", e)
	}
	if l.Requests() != 0 {
		t.Errorf("cancelled request was counted")
	}
}

func TestLinkBlackholeWindow(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	l := &Link{}
	cli := l.Client()
	l.BlackholeFor(time.Hour)
	if !l.Blackholed() {
		t.Fatal("link not blackholed after BlackholeFor")
	}
	if _, err := cli.Get(srv.URL); !errors.Is(err, ErrBlackhole) {
		t.Fatalf("err = %v, want ErrBlackhole", err)
	}
	if l.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", l.Dropped())
	}
	if l.Requests() != 0 {
		t.Errorf("blackholed request was counted as traversing the link")
	}
	l.Restore()
	if l.Blackholed() {
		t.Fatal("link still blackholed after Restore")
	}
	resp, err := cli.Get(srv.URL)
	if err != nil {
		t.Fatalf("request after Restore: %v", err)
	}
	resp.Body.Close()
}

func TestLinkFaultProfileLossIsDeterministic(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	run := func(seed int64) []bool {
		l := &Link{}
		l.SetFault(FaultProfile{LossProb: 0.5, Seed: seed})
		cli := l.Client()
		var outcomes []bool
		for i := 0; i < 40; i++ {
			resp, err := cli.Get(srv.URL)
			if err != nil {
				if !errors.Is(err, ErrInjectedLoss) {
					t.Fatalf("unexpected error: %v", err)
				}
				outcomes = append(outcomes, false)
				continue
			}
			resp.Body.Close()
			outcomes = append(outcomes, true)
		}
		return outcomes
	}

	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d", i)
		}
	}
	var losses int
	for _, ok := range a {
		if !ok {
			losses++
		}
	}
	if losses < 8 || losses > 32 {
		t.Errorf("losses = %d of 40 at p=0.5; RNG not applied per request", losses)
	}

	l := &Link{}
	l.SetFault(FaultProfile{LossProb: 0.5, Seed: 7})
	cli := l.Client()
	for range a {
		if resp, err := cli.Get(srv.URL); err == nil {
			resp.Body.Close()
		}
	}
	if got := l.Dropped(); got != int64(losses) {
		t.Errorf("Dropped = %d, want %d", got, losses)
	}
}

func TestLinkLatencySpike(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	l := &Link{}
	// SpikeProb 1: every request pays the spike.
	l.SetFault(FaultProfile{SpikeProb: 1, Spike: 80 * time.Millisecond, Seed: 1})
	start := time.Now()
	resp, err := l.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if e := time.Since(start); e < 70*time.Millisecond {
		t.Errorf("spiked request completed in %v, want >= 80ms", e)
	}
	if l.Spikes() != 1 {
		t.Errorf("Spikes = %d, want 1", l.Spikes())
	}
	// Clearing the profile removes the spike.
	l.SetFault(FaultProfile{})
	start = time.Now()
	resp, err = l.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if e := time.Since(start); e > 60*time.Millisecond {
		t.Errorf("request after clearing profile took %v", e)
	}
}

func TestLinkBlackholeZeroDuration(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	l := &Link{}
	// A zero-duration window sets blackholeUntil to now: by the time any
	// request evaluates admit(), the window has already closed. The link
	// must not drop anything and must not report Blackholed.
	l.BlackholeFor(0)
	if l.Blackholed() {
		t.Fatal("zero-duration window left the link blackholed")
	}
	resp, err := l.Client().Get(srv.URL)
	if err != nil {
		t.Fatalf("request after zero-duration window: %v", err)
	}
	resp.Body.Close()
	if l.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", l.Dropped())
	}

	// Same for a negative duration (a window that closed in the past).
	l.BlackholeFor(-time.Hour)
	if l.Blackholed() {
		t.Fatal("negative-duration window left the link blackholed")
	}
}

func TestLinkBlackholeOverlappingWindows(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	// Windows are absolute deadlines, not accumulating timers: the latest
	// call wins outright. A long window followed by a short one shrinks
	// the outage.
	l := &Link{}
	l.BlackholeFor(time.Hour)
	l.BlackholeFor(30 * time.Millisecond)
	if !l.Blackholed() {
		t.Fatal("link should be blackholed inside the second window")
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.Blackholed() {
		if time.Now().After(deadline) {
			t.Fatal("short overlapping window never expired; the hour window survived")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := l.Client().Get(srv.URL)
	if err != nil {
		t.Fatalf("request after shortened window: %v", err)
	}
	resp.Body.Close()

	// And a short window followed by a long one extends it.
	l2 := &Link{}
	l2.BlackholeFor(time.Millisecond)
	l2.BlackholeFor(time.Hour)
	time.Sleep(10 * time.Millisecond)
	if !l2.Blackholed() {
		t.Fatal("extending window was clipped by the earlier short window")
	}
	if _, err := l2.Client().Get(srv.URL); !errors.Is(err, ErrBlackhole) {
		t.Fatalf("err = %v, want ErrBlackhole inside extended window", err)
	}
}

func TestLinkLossProbabilityBoundaries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	// LossProb 0 must never drop: the admit path guards on > 0 before
	// consuming randomness, so an explicit zero profile behaves exactly
	// like no profile at all.
	l0 := &Link{}
	l0.SetFault(FaultProfile{LossProb: 0, Seed: 42})
	cli := l0.Client()
	for i := 0; i < 50; i++ {
		resp, err := cli.Get(srv.URL)
		if err != nil {
			t.Fatalf("request %d dropped at LossProb=0: %v", i, err)
		}
		resp.Body.Close()
	}
	if l0.Dropped() != 0 {
		t.Errorf("Dropped = %d at LossProb=0, want 0", l0.Dropped())
	}

	// LossProb 1 must always drop: Float64 is in [0, 1), strictly below 1.
	l1 := &Link{}
	l1.SetFault(FaultProfile{LossProb: 1, Seed: 42})
	cli = l1.Client()
	for i := 0; i < 50; i++ {
		if _, err := cli.Get(srv.URL); !errors.Is(err, ErrInjectedLoss) {
			t.Fatalf("request %d survived LossProb=1: err = %v", i, err)
		}
	}
	if got := l1.Dropped(); got != 50 {
		t.Errorf("Dropped = %d at LossProb=1, want 50", got)
	}
	if got := l1.Requests(); got != 0 {
		t.Errorf("Requests = %d; dropped requests must not count as traversals", got)
	}
}

func TestAccessProfilePresets(t *testing.T) {
	for _, name := range []string{"3g", "4g", "wifi"} {
		p, ok := Profiles[name]
		if !ok {
			t.Fatalf("preset %q missing from Profiles", name)
		}
		if p.Name != name {
			t.Errorf("preset %q has Name %q", name, p.Name)
		}
	}
	// The stall-ratio ordering the scenario asserts needs monotone knobs.
	if !(Profile3G.RTT > Profile4G.RTT && Profile4G.RTT > ProfileWiFi.RTT) {
		t.Error("RTT not strictly decreasing 3G > 4G > WiFi")
	}
	if !(Profile3G.Bandwidth < Profile4G.Bandwidth && Profile4G.Bandwidth < ProfileWiFi.Bandwidth) {
		t.Error("bandwidth not strictly increasing 3G < 4G < WiFi")
	}
	if !(Profile3G.LossProb >= Profile4G.LossProb && Profile4G.LossProb >= ProfileWiFi.LossProb) {
		t.Error("loss not monotone 3G >= 4G >= WiFi")
	}

	l := Profile3G.NewLink(7)
	if l.RTT != Profile3G.RTT || l.Bandwidth != Profile3G.Bandwidth {
		t.Errorf("NewLink produced RTT %v bandwidth %v", l.RTT, l.Bandwidth)
	}
	// Loss must be armed and deterministic per seed.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer srv.Close()
	run := func(seed int64) []bool {
		lk := AccessProfile{Name: "lossy", LossProb: 0.5}.NewLink(seed)
		cli := lk.Client()
		var out []bool
		for i := 0; i < 30; i++ {
			resp, err := cli.Get(srv.URL)
			if err == nil {
				resp.Body.Close()
			}
			out = append(out, err == nil)
		}
		return out
	}
	a, b := run(3), run(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed profile links diverged at request %d", i)
		}
	}
}

func TestRateMeter(t *testing.T) {
	m := NewRateMeter(time.Second)
	base := time.Unix(100, 0)
	// 125000 bytes over one second = 1 Mbps.
	for i := 0; i < 10; i++ {
		m.Add(base.Add(time.Duration(i)*100*time.Millisecond), 12_500)
	}
	rate := m.RateBps(base.Add(time.Second))
	if rate < 0.8e6 || rate > 1.2e6 {
		t.Errorf("rate = %v, want ~1e6", rate)
	}
	if m.Total() != 125_000 {
		t.Errorf("total = %d", m.Total())
	}
	// Old samples age out.
	rate = m.RateBps(base.Add(5 * time.Second))
	if rate != 0 {
		t.Errorf("rate after window = %v, want 0", rate)
	}
}

func TestMbps(t *testing.T) {
	if Mbps(2) != 2e6 {
		t.Errorf("Mbps(2) = %v", Mbps(2))
	}
}
