// Package netem emulates the access-network conditions the study imposed
// with the Linux tc command (§2): token-bucket bandwidth limiting,
// propagation delay, and byte metering on arbitrary net.Conn transports.
// Experiments wrap the viewer's connections in a Shaper to sweep the
// 0.5-10 Mbps limits of Figures 3 and 4.
package netem

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"
)

// TokenBucket is a thread-safe token bucket. Tokens are bytes.
type TokenBucket struct {
	mu       sync.Mutex
	rate     float64 // bytes per second
	burst    float64
	tokens   float64
	lastFill time.Time
}

// NewTokenBucket creates a bucket with the given rate (bytes/s) and burst
// size (bytes). A rate of 0 means unlimited.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	return &TokenBucket{rate: rate, burst: burst, tokens: burst, lastFill: time.Now()}
}

// Take consumes n bytes of tokens, sleeping long enough to keep the
// long-run rate at the configured limit. Debt is allowed (a single request
// larger than the burst is paced rather than dead-locked), matching how a
// tc token-bucket qdisc drains an oversized backlog.
func (tb *TokenBucket) Take(n int) {
	if tb == nil || tb.rate <= 0 {
		return
	}
	tb.mu.Lock()
	now := time.Now()
	tb.tokens += tb.rate * now.Sub(tb.lastFill).Seconds()
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	tb.lastFill = now
	tb.tokens -= float64(n)
	var wait time.Duration
	if tb.tokens < 0 {
		wait = time.Duration(-tb.tokens / tb.rate * float64(time.Second))
	}
	tb.mu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
}

// Shaper bundles the downlink/uplink rate limits and extra latency applied
// to a connection, plus shared byte meters.
type Shaper struct {
	// DownlinkBps and UplinkBps are limits in bits per second (0 = none).
	DownlinkBps float64
	UplinkBps   float64
	// Latency is one-way extra delay added to the first byte of each Read.
	Latency time.Duration

	downBucket *TokenBucket
	upBucket   *TokenBucket
	once       sync.Once

	mu       sync.Mutex
	bytesIn  int64
	bytesOut int64
}

// NewShaper builds a shaper limiting both directions to bps bits/second
// (the paper applied tc limits on the tethering host).
func NewShaper(bps float64) *Shaper {
	return &Shaper{DownlinkBps: bps, UplinkBps: bps}
}

func (s *Shaper) init() {
	s.once.Do(func() {
		if s.DownlinkBps > 0 {
			// Burst of 32 KB approximates a typical queue depth.
			s.downBucket = NewTokenBucket(s.DownlinkBps/8, 32*1024)
		}
		if s.UplinkBps > 0 {
			s.upBucket = NewTokenBucket(s.UplinkBps/8, 32*1024)
		}
	})
}

// BytesIn reports total bytes read through shaped connections.
func (s *Shaper) BytesIn() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytesIn
}

// BytesOut reports total bytes written through shaped connections.
func (s *Shaper) BytesOut() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytesOut
}

// Conn wraps nc with this shaper. Multiple conns share the same buckets,
// modelling a single bottleneck access link.
func (s *Shaper) Conn(nc net.Conn) net.Conn {
	s.init()
	return &shapedConn{Conn: nc, s: s}
}

type shapedConn struct {
	net.Conn
	s       *Shaper
	delayed bool
}

func (c *shapedConn) Read(b []byte) (int, error) {
	n, err := c.Conn.Read(b)
	if n > 0 {
		if !c.delayed && c.s.Latency > 0 {
			time.Sleep(c.s.Latency)
			c.delayed = true
		}
		c.s.downBucket.Take(n)
		c.s.mu.Lock()
		c.s.bytesIn += int64(n)
		c.s.mu.Unlock()
	}
	return n, err
}

func (c *shapedConn) Write(b []byte) (int, error) {
	c.s.upBucket.Take(len(b))
	n, err := c.Conn.Write(b)
	if n > 0 {
		c.s.mu.Lock()
		c.s.bytesOut += int64(n)
		c.s.mu.Unlock()
	}
	return n, err
}

// Dialer returns a net.Dial-compatible function routing through the shaper.
func (s *Shaper) Dialer() func(network, addr string) (net.Conn, error) {
	return func(network, addr string) (net.Conn, error) {
		nc, err := net.Dial(network, addr)
		if err != nil {
			return nil, err
		}
		return s.Conn(nc), nil
	}
}

// HTTPClient returns an *http.Client whose connections pass through the
// shaper (used by the HLS client and the API/chat clients).
func (s *Shaper) HTTPClient() *http.Client {
	dial := s.Dialer()
	return &http.Client{
		Transport: &http.Transport{
			DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
				return dial(network, addr)
			},
			// One bottleneck link: keep connection reuse on, as phones do.
			MaxIdleConnsPerHost: 8,
		},
	}
}

// Mbps converts megabits/second to bits/second for Shaper fields.
func Mbps(v float64) float64 { return v * 1e6 }

// AccessProfile bundles the bandwidth / RTT / loss figures for one class
// of mobile access network, matching the measurement conditions the paper
// swept in §5 (WiFi vs. cellular, tc-shaped bandwidth tiers). A profile
// is a template: NewLink stamps out an independently-seeded Link per
// viewer so cohorts on the same profile don't share a token bucket.
type AccessProfile struct {
	// Name identifies the profile in scenario reports ("3g", "wifi", ...).
	Name string
	// Bandwidth caps the downlink in bits per second (0 = uncapped).
	Bandwidth float64
	// RTT is the per-request round-trip time to the edge.
	RTT time.Duration
	// LossProb is the per-request loss probability (retried client-side).
	LossProb float64
}

// Canonical access profiles. The 3G figures model the congested cell the
// paper's worst stall ratios came from: per-request RTTs long enough that
// sequential playlist-poll + segment-fetch cycles fall behind real time,
// plus sub-bitrate bandwidth. 4G and WiFi step the same knobs toward the
// paper's low-stall conditions, so the expected stall-ratio ordering is
// 3G >= 4G >= WiFi.
var (
	Profile3G   = AccessProfile{Name: "3g", Bandwidth: Mbps(0.2), RTT: 250 * time.Millisecond, LossProb: 0.02}
	Profile4G   = AccessProfile{Name: "4g", Bandwidth: Mbps(4), RTT: 60 * time.Millisecond, LossProb: 0.005}
	ProfileWiFi = AccessProfile{Name: "wifi", Bandwidth: Mbps(20), RTT: 15 * time.Millisecond, LossProb: 0}
)

// Profiles maps profile names to presets for flag / scenario lookup.
var Profiles = map[string]AccessProfile{
	Profile3G.Name:   Profile3G,
	Profile4G.Name:   Profile4G,
	ProfileWiFi.Name: ProfileWiFi,
}

// NewLink stamps out a fresh Link shaped like the profile. seed fixes the
// loss RNG so one viewer's drop sequence replays exactly; distinct
// viewers should pass distinct seeds.
func (p AccessProfile) NewLink(seed int64) *Link {
	l := &Link{RTT: p.RTT, Bandwidth: p.Bandwidth}
	if p.LossProb > 0 {
		l.SetFault(FaultProfile{LossProb: p.LossProb, Seed: seed})
	}
	return l
}

// Link models one fixed wide-area path between two datacenters (POP →
// origin, POP → peer POP): a round-trip latency charged once per HTTP
// request plus an optional bandwidth cap paced over the response body,
// with request/byte metering. Where Shaper emulates a viewer's access
// link at the connection layer, Link shapes the CDN's internal fill
// paths at the request layer — keep-alive connection reuse must not let
// later fills skip the propagation delay.
type Link struct {
	// RTT is the modelled round-trip time charged to every request.
	RTT time.Duration
	// Bandwidth caps the response-body rate in bits per second (0 = no
	// cap). The bucket is shared by all requests on the link, modelling
	// one bottleneck path.
	Bandwidth float64

	once   sync.Once
	bucket *TokenBucket

	mu       sync.Mutex
	requests int64
	bytes    int64

	faultMu        sync.Mutex
	fault          FaultProfile
	rng            *rand.Rand
	blackholeUntil time.Time
	dropped        int64
	spikes         int64
}

// ErrBlackhole is the terminal error returned for every request sent
// while the link is inside a blackhole window.
var ErrBlackhole = errors.New("netem: link blackholed")

// ErrInjectedLoss is the transient error returned for a request the
// link's fault profile randomly dropped.
var ErrInjectedLoss = errors.New("netem: injected request loss")

// FaultProfile describes probabilistic degradation applied to a Link.
// All probabilities are in [0, 1] and evaluated per request with a
// deterministic seeded RNG so failure sequences replay exactly.
type FaultProfile struct {
	// LossProb drops a request outright with this probability; the
	// caller sees ErrInjectedLoss before any RTT is charged, modelling a
	// lost packet that times out client-side.
	LossProb float64
	// SpikeProb adds Spike extra latency to a request with this
	// probability, modelling transient congestion on the path.
	SpikeProb float64
	// Spike is the extra one-shot delay charged when a spike fires.
	Spike time.Duration
	// Seed fixes the RNG sequence (0 seeds from the profile itself so
	// two identical profiles still behave identically).
	Seed int64
}

// SetFault installs (or, with a zero profile, clears) the link's fault
// profile. Safe to call while requests are in flight.
func (l *Link) SetFault(p FaultProfile) {
	l.faultMu.Lock()
	defer l.faultMu.Unlock()
	l.fault = p
	l.rng = rand.New(rand.NewSource(p.Seed + 1))
}

// BlackholeFor opens a hard outage window: every request on the link
// fails immediately with ErrBlackhole until d elapses or Restore is
// called. Windows are timestamps, not timers, so they need no cleanup.
func (l *Link) BlackholeFor(d time.Duration) {
	l.faultMu.Lock()
	defer l.faultMu.Unlock()
	l.blackholeUntil = time.Now().Add(d)
}

// Restore closes any open blackhole window immediately.
func (l *Link) Restore() {
	l.faultMu.Lock()
	defer l.faultMu.Unlock()
	l.blackholeUntil = time.Time{}
}

// Blackholed reports whether the link is currently inside an outage
// window.
func (l *Link) Blackholed() bool {
	l.faultMu.Lock()
	defer l.faultMu.Unlock()
	return time.Now().Before(l.blackholeUntil)
}

// Dropped reports how many requests the link has failed by fault
// injection (loss and blackhole combined).
func (l *Link) Dropped() int64 {
	l.faultMu.Lock()
	defer l.faultMu.Unlock()
	return l.dropped
}

// Spikes reports how many requests were hit with a latency spike.
func (l *Link) Spikes() int64 {
	l.faultMu.Lock()
	defer l.faultMu.Unlock()
	return l.spikes
}

// admit applies the fault profile to one request: it returns a non-nil
// error for dropped requests and otherwise the extra latency to charge.
func (l *Link) admit() (time.Duration, error) {
	l.faultMu.Lock()
	defer l.faultMu.Unlock()
	if !l.blackholeUntil.IsZero() && time.Now().Before(l.blackholeUntil) {
		l.dropped++
		return 0, ErrBlackhole
	}
	if l.rng == nil {
		return 0, nil
	}
	if l.fault.LossProb > 0 && l.rng.Float64() < l.fault.LossProb {
		l.dropped++
		return 0, ErrInjectedLoss
	}
	if l.fault.SpikeProb > 0 && l.rng.Float64() < l.fault.SpikeProb {
		l.spikes++
		return l.fault.Spike, nil
	}
	return 0, nil
}

func (l *Link) init() {
	l.once.Do(func() {
		if l.Bandwidth > 0 {
			l.bucket = NewTokenBucket(l.Bandwidth/8, 64*1024)
		}
	})
}

// Requests reports how many HTTP requests traversed the link.
func (l *Link) Requests() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.requests
}

// Bytes reports response-body bytes transferred over the link.
func (l *Link) Bytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// Client returns an *http.Client whose requests pay the link's RTT and
// whose response bodies are paced at the link's bandwidth. Each Link has
// its own connection pool so per-link keep-alive mirrors a persistent
// inter-datacenter path.
func (l *Link) Client() *http.Client {
	return &http.Client{Transport: l.Transport(nil)}
}

// Transport wraps base (http.DefaultTransport-equivalent when nil) with
// the link's shaping.
func (l *Link) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = &http.Transport{MaxIdleConnsPerHost: 8}
	}
	return &linkTransport{l: l, base: base}
}

type linkTransport struct {
	l    *Link
	base http.RoundTripper
}

// CloseIdleConnections forwards to the underlying transport, so
// http.Client.CloseIdleConnections works through the shaping wrapper:
// a decommissioned POP must not strand its keep-alive sockets (their
// readLoop/writeLoop goroutines would outlive the owner).
func (t *linkTransport) CloseIdleConnections() {
	if c, ok := t.base.(interface{ CloseIdleConnections() }); ok {
		c.CloseIdleConnections()
	}
}

func (t *linkTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.l.init()
	extra, err := t.l.admit()
	if err != nil {
		return nil, err
	}
	if delay := t.l.RTT + extra; delay > 0 {
		// One round trip covers request propagation plus first response
		// byte; body pacing below accounts for the rest.
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(delay):
		}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	t.l.mu.Lock()
	t.l.requests++
	t.l.mu.Unlock()
	resp.Body = &linkBody{ReadCloser: resp.Body, l: t.l}
	return resp, nil
}

// linkBody paces and meters a response body.
type linkBody struct {
	io.ReadCloser
	l *Link
}

func (b *linkBody) Read(p []byte) (int, error) {
	n, err := b.ReadCloser.Read(p)
	if n > 0 {
		b.l.bucket.Take(n)
		b.l.mu.Lock()
		b.l.bytes += int64(n)
		b.l.mu.Unlock()
	}
	return n, err
}

// RateMeter computes a windowed throughput estimate from byte timestamps,
// the tool behind "we saw an increase of the aggregate data rate from
// roughly 500kbps to 3.5Mbps" (§5.1).
type RateMeter struct {
	mu      sync.Mutex
	window  time.Duration
	samples []rateSample
	total   int64
}

type rateSample struct {
	t time.Time
	n int64
}

// NewRateMeter creates a meter with the given averaging window.
func NewRateMeter(window time.Duration) *RateMeter {
	if window <= 0 {
		window = time.Second
	}
	return &RateMeter{window: window}
}

// Add records n bytes at time t.
func (m *RateMeter) Add(t time.Time, n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.samples = append(m.samples, rateSample{t, n})
	m.total += n
	m.gc(t)
}

func (m *RateMeter) gc(now time.Time) {
	cut := now.Add(-m.window)
	i := 0
	for i < len(m.samples) && m.samples[i].t.Before(cut) {
		i++
	}
	m.samples = m.samples[i:]
}

// RateBps returns the current windowed rate in bits per second.
func (m *RateMeter) RateBps(now time.Time) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gc(now)
	var bytes int64
	for _, s := range m.samples {
		bytes += s.n
	}
	return float64(bytes) * 8 / m.window.Seconds()
}

// Total returns all bytes ever recorded.
func (m *RateMeter) Total() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}
