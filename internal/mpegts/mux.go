package mpegts

import (
	"bytes"
	"time"
)

// Muxer writes a single-program transport stream with one AVC video and
// one AAC audio elementary stream, the layout observed in Periscope HLS
// segments.
type Muxer struct {
	buf       bytes.Buffer
	cc        map[uint16]*uint8
	pat       PAT
	pmt       PMT
	wrotePSI  bool
	psiPeriod int // access units between PSI refreshes
	auCount   int
}

// NewMuxer returns a muxer ready to accept access units.
func NewMuxer() *Muxer {
	m := &Muxer{
		cc: map[uint16]*uint8{},
		pat: PAT{
			TransportStreamID: 1,
			ProgramNumber:     1,
			PMTPID:            PIDPMT,
		},
		pmt: PMT{
			ProgramNumber: 1,
			PCRPID:        PIDVideo,
			Streams: []PMTStream{
				{StreamType: StreamTypeAVC, PID: PIDVideo},
				{StreamType: StreamTypeAAC, PID: PIDAudio},
			},
		},
		psiPeriod: 64,
	}
	for _, pid := range []uint16{PIDPAT, PIDPMT, PIDVideo, PIDAudio} {
		var c uint8
		m.cc[pid] = &c
	}
	return m
}

func (m *Muxer) nextCC(pid uint16) uint8 {
	c := m.cc[pid]
	v := *c
	*c = (v + 1) & 0x0F
	return v
}

// writePSI emits the PAT and PMT, each in its own packet with a pointer
// field.
func (m *Muxer) writePSI() {
	for _, t := range []struct {
		pid uint16
		sec []byte
	}{{PIDPAT, m.pat.Marshal()}, {PIDPMT, m.pmt.Marshal()}} {
		payload := append([]byte{0}, t.sec...) // pointer_field = 0
		for len(payload) > 0 {
			pkt, n := buildPacket(t.pid, len(payload) == len(t.sec)+1, m.nextCC(t.pid), false, nil, payload)
			m.buf.Write(pkt[:])
			payload = payload[n:]
		}
	}
	m.wrotePSI = true
}

// WriteVideo writes one video access unit (Annex B NAL stream) with the
// given timestamps. Keyframes set the random-access indicator and carry a
// PCR derived from the DTS.
func (m *Muxer) WriteVideo(pts, dts time.Duration, keyframe bool, annexB []byte) {
	m.maybePSI()
	pes := PES{StreamID: StreamIDVideo, PTS: ToTicks(pts), DTS: ToTicks(dts), Data: annexB}
	pcr := uint64(ToTicks(dts)) * 300
	m.writePES(PIDVideo, pes, keyframe, &pcr)
}

// WriteAudio writes one audio access unit (ADTS frame).
func (m *Muxer) WriteAudio(pts time.Duration, adts []byte) {
	m.maybePSI()
	pes := PES{StreamID: StreamIDAudio, PTS: ToTicks(pts), DTS: NoTimestamp, Data: adts}
	m.writePES(PIDAudio, pes, false, nil)
}

func (m *Muxer) maybePSI() {
	if !m.wrotePSI || m.auCount%m.psiPeriod == 0 {
		m.writePSI()
	}
	m.auCount++
}

func (m *Muxer) writePES(pid uint16, pes PES, rai bool, pcr *uint64) {
	payload := pes.Marshal()
	first := true
	for len(payload) > 0 {
		var pkt [PacketSize]byte
		var n int
		if first {
			pkt, n = buildPacket(pid, true, m.nextCC(pid), rai, pcr, payload)
			first = false
		} else {
			pkt, n = buildPacket(pid, false, m.nextCC(pid), false, nil, payload)
		}
		m.buf.Write(pkt[:])
		payload = payload[n:]
	}
}

// Bytes returns the muxed stream so far and resets the internal buffer
// (continuity counters persist, so successive calls produce splice-able
// chunks — exactly how a live HLS segmenter drains the muxer per segment).
func (m *Muxer) Bytes() []byte {
	out := append([]byte(nil), m.buf.Bytes()...)
	m.buf.Reset()
	return out
}

// Len reports the bytes currently buffered.
func (m *Muxer) Len() int { return m.buf.Len() }
