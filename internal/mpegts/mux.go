package mpegts

import (
	"time"
)

// pidLimit bounds the 13-bit PID space for the continuity-counter array.
const pidLimit = 0x2000

// Muxer writes a single-program transport stream with one AVC video and
// one AAC audio elementary stream, the layout observed in Periscope HLS
// segments. Packets are appended to an internal buffer that Bytes() hands
// off without copying; PES packets are marshalled straight into TS
// packets with no intermediate full-payload allocation.
type Muxer struct {
	out       []byte
	cc        [pidLimit]uint8
	pat       PAT
	pmt       PMT
	wrotePSI  bool
	psiPeriod int // access units between PSI refreshes
	auCount   int
}

// NewMuxer returns a muxer ready to accept access units.
func NewMuxer() *Muxer {
	return &Muxer{
		pat: PAT{
			TransportStreamID: 1,
			ProgramNumber:     1,
			PMTPID:            PIDPMT,
		},
		pmt: PMT{
			ProgramNumber: 1,
			PCRPID:        PIDVideo,
			Streams: []PMTStream{
				{StreamType: StreamTypeAVC, PID: PIDVideo},
				{StreamType: StreamTypeAAC, PID: PIDAudio},
			},
		},
		psiPeriod: 64,
	}
}

func (m *Muxer) nextCC(pid uint16) uint8 {
	v := m.cc[pid]
	m.cc[pid] = (v + 1) & 0x0F
	return v
}

// writePSI emits the PAT and PMT, each in its own packet with a pointer
// field.
func (m *Muxer) writePSI() {
	for _, t := range []struct {
		pid uint16
		sec []byte
	}{{PIDPAT, m.pat.Marshal()}, {PIDPMT, m.pmt.Marshal()}} {
		var sec [1 + PacketSize]byte // pointer_field = 0, then the section
		var payload []byte
		if len(t.sec) < len(sec) {
			payload = sec[: 1+copy(sec[1:], t.sec) : len(sec)]
		} else {
			// Oversized section (many streams/descriptors): fall back to a
			// heap buffer rather than truncating.
			payload = append(make([]byte, 1, 1+len(t.sec)), t.sec...)
		}
		first := true
		for len(payload) > 0 {
			var pkt [PacketSize]byte
			n := fillPacket(&pkt, t.pid, first, m.nextCC(t.pid), false, nil, payload, nil)
			m.out = append(m.out, pkt[:]...)
			payload = payload[n:]
			first = false
		}
	}
	m.wrotePSI = true
}

// WriteVideo writes one video access unit (Annex B NAL stream) with the
// given timestamps. Keyframes set the random-access indicator and carry a
// PCR derived from the DTS.
func (m *Muxer) WriteVideo(pts, dts time.Duration, keyframe bool, annexB []byte) {
	m.maybePSI()
	pes := PES{StreamID: StreamIDVideo, PTS: ToTicks(pts), DTS: ToTicks(dts), Data: annexB}
	pcr := uint64(ToTicks(dts)) * 300
	m.writePES(PIDVideo, pes, keyframe, &pcr)
}

// WriteAudio writes one audio access unit (ADTS frame).
func (m *Muxer) WriteAudio(pts time.Duration, adts []byte) {
	m.maybePSI()
	pes := PES{StreamID: StreamIDAudio, PTS: ToTicks(pts), DTS: NoTimestamp, Data: adts}
	m.writePES(PIDAudio, pes, false, nil)
}

func (m *Muxer) maybePSI() {
	if !m.wrotePSI || m.auCount%m.psiPeriod == 0 {
		m.writePSI()
	}
	m.auCount++
}

// writePES packetizes one PES directly into TS packets: the PES header is
// marshalled into a stack buffer and the elementary payload is consumed
// in place, so the access unit is copied exactly once (into the output).
func (m *Muxer) writePES(pid uint16, pes PES, rai bool, pcr *uint64) {
	var hdr [pesMaxHeaderLen]byte
	head := hdr[:pes.marshalHeader(hdr[:])]
	data := pes.Data

	// Reserve output space for every packet of this PES in one step.
	total := len(head) + len(data)
	pkts := (total + PacketSize - 5) / (PacketSize - 4)
	if need := len(m.out) + pkts*PacketSize; cap(m.out) < need {
		grown := make([]byte, len(m.out), need+need/2)
		copy(grown, m.out)
		m.out = grown
	}

	first := true
	for len(head)+len(data) > 0 {
		var pkt [PacketSize]byte
		var n int
		if first {
			n = fillPacket(&pkt, pid, true, m.nextCC(pid), rai, pcr, head, data)
			first = false
		} else {
			n = fillPacket(&pkt, pid, false, m.nextCC(pid), false, nil, head, data)
		}
		m.out = append(m.out, pkt[:]...)
		if h := len(head); n <= h {
			head = head[n:]
			n = 0
		} else {
			head = nil
			n -= h
		}
		data = data[n:]
	}
}

// Bytes returns the muxed stream accumulated since the last call, handing
// off ownership of the returned slice without a copy; the muxer starts a
// fresh buffer. Continuity counters persist, so successive calls produce
// splice-able chunks — exactly how a live HLS segmenter drains the muxer
// per segment.
func (m *Muxer) Bytes() []byte {
	out := m.out
	m.out = nil
	return out
}

// Len reports the bytes currently buffered.
func (m *Muxer) Len() int { return len(m.out) }
