// Package mpegts implements the MPEG-2 Transport Stream container
// (ISO/IEC 13818-1) used by HLS video segments: 188-byte packets, PAT/PMT
// program tables with CRC32/MPEG-2, PES packetization with PTS/DTS, PCR
// clock references and adaptation-field stuffing. The paper reconstructs
// "an MPEG-TS file ready to be played" from each HTTP GET response; this
// package is both the segment producer (service side) and the analyzer
// substrate (measurement side).
package mpegts

import (
	"errors"
	"fmt"
)

// PacketSize is the fixed TS packet size.
const PacketSize = 188

// SyncByte starts every TS packet.
const SyncByte = 0x47

// Well-known PIDs used by this single-program implementation.
const (
	PIDPAT   = 0x0000
	PIDPMT   = 0x1000
	PIDVideo = 0x0100
	PIDAudio = 0x0101
	PIDNull  = 0x1FFF
)

// Stream types carried in the PMT.
const (
	StreamTypeAVC = 0x1B // H.264 video
	StreamTypeAAC = 0x0F // AAC audio in ADTS
)

// Packet is a parsed TS packet header plus its payload view.
type Packet struct {
	PID             uint16
	PUSI            bool // payload_unit_start_indicator
	ContinuityCount uint8
	RandomAccess    bool // adaptation-field random_access_indicator
	HasPCR          bool
	PCR             uint64 // 27 MHz ticks
	Payload         []byte
}

// ErrSync is returned when a packet does not begin with the sync byte.
var ErrSync = errors.New("mpegts: missing sync byte")

// ParsePacket decodes one 188-byte TS packet.
func ParsePacket(b []byte) (Packet, error) {
	if len(b) != PacketSize {
		return Packet{}, fmt.Errorf("mpegts: packet size %d, want %d", len(b), PacketSize)
	}
	if b[0] != SyncByte {
		return Packet{}, ErrSync
	}
	p := Packet{
		PUSI:            b[1]&0x40 != 0,
		PID:             uint16(b[1]&0x1F)<<8 | uint16(b[2]),
		ContinuityCount: b[3] & 0x0F,
	}
	afc := b[3] >> 4 & 0x3
	pos := 4
	if afc&0x2 != 0 { // adaptation field present
		afLen := int(b[4])
		pos = 5 + afLen
		if pos > PacketSize {
			return Packet{}, errors.New("mpegts: adaptation field overflows packet")
		}
		if afLen > 0 {
			flags := b[5]
			p.RandomAccess = flags&0x40 != 0
			if flags&0x10 != 0 && afLen >= 7 { // PCR flag
				p.HasPCR = true
				base := uint64(b[6])<<25 | uint64(b[7])<<17 | uint64(b[8])<<9 |
					uint64(b[9])<<1 | uint64(b[10])>>7
				ext := uint64(b[10]&1)<<8 | uint64(b[11])
				p.PCR = base*300 + ext
			}
		}
	}
	if afc&0x1 != 0 { // payload present
		p.Payload = b[pos:]
	}
	return p, nil
}

// header writes the 4-byte TS header into b.
func header(b []byte, pid uint16, pusi bool, cc uint8, afc uint8) {
	b[0] = SyncByte
	b[1] = byte(pid >> 8 & 0x1F)
	if pusi {
		b[1] |= 0x40
	}
	b[2] = byte(pid)
	b[3] = afc<<4 | cc&0x0F
}

// buildPacket assembles one TS packet from a single contiguous payload.
// It returns the packet and the number of payload bytes consumed.
func buildPacket(pid uint16, pusi bool, cc uint8, rai bool, pcr *uint64, payload []byte) ([PacketSize]byte, int) {
	var pkt [PacketSize]byte
	n := fillPacket(&pkt, pid, pusi, cc, rai, pcr, payload, nil)
	return pkt, n
}

// fillPacket assembles one TS packet in place: header, optional adaptation
// field with PCR/random-access flags and stuffing, then as much payload as
// fits, drawn first from head and then from tail (the PES header and its
// elementary payload, without requiring them to be contiguous). It returns
// the number of payload bytes consumed.
func fillPacket(pkt *[PacketSize]byte, pid uint16, pusi bool, cc uint8, rai bool, pcr *uint64, head, tail []byte) int {
	needAF := rai || pcr != nil
	afLen := 0 // length byte value, excluding the length byte itself
	if needAF {
		afLen = 1 // flags byte
		if pcr != nil {
			afLen += 6
		}
	}
	// Space left for payload after header (+ adaptation field if present).
	space := PacketSize - 4
	if needAF {
		space -= 1 + afLen
	}
	n := len(head) + len(tail)
	if n > space {
		n = space
	}
	if n < space {
		// Stuff the gap by (possibly creating and) growing the adaptation
		// field with 0xFF bytes.
		pad := space - n
		if !needAF {
			needAF = true
			if pad == 1 {
				afLen = 0 // a zero-length adaptation field eats exactly 1 byte
				pad = 0
			} else {
				afLen = 1
				pad -= 2 // length byte + flags byte
			}
		}
		afLen += pad
	}
	afc := uint8(0x1)
	if needAF {
		afc = 0x3
	}
	header(pkt[:], pid, pusi, cc, afc)
	pos := 4
	if needAF {
		pkt[pos] = byte(afLen)
		pos++
		if afLen > 0 {
			flags := byte(0)
			if rai {
				flags |= 0x40
			}
			if pcr != nil {
				flags |= 0x10
			}
			pkt[pos] = flags
			pos++
			if pcr != nil {
				base := *pcr / 300
				ext := *pcr % 300
				pkt[pos] = byte(base >> 25)
				pkt[pos+1] = byte(base >> 17)
				pkt[pos+2] = byte(base >> 9)
				pkt[pos+3] = byte(base >> 1)
				pkt[pos+4] = byte(base<<7) | 0x7E | byte(ext>>8)
				pkt[pos+5] = byte(ext)
				pos += 6
			}
			for pos < PacketSize-n {
				pkt[pos] = 0xFF
				pos++
			}
		}
	}
	c := copy(pkt[pos:], head)
	if c < n {
		copy(pkt[pos+c:], tail[:n-c])
	}
	return n
}

// crcTable holds the byte-at-a-time lookup table for CRC-32/MPEG-2.
var crcTable = func() (t [256]uint32) {
	for i := range t {
		crc := uint32(i) << 24
		for j := 0; j < 8; j++ {
			if crc&0x80000000 != 0 {
				crc = crc<<1 ^ 0x04C11DB7
			} else {
				crc <<= 1
			}
		}
		t[i] = crc
	}
	return
}()

// CRC32 computes the CRC-32/MPEG-2 checksum used by PSI sections
// (polynomial 0x04C11DB7, init 0xFFFFFFFF, no reflection, no final xor).
func CRC32(data []byte) uint32 {
	crc := uint32(0xFFFFFFFF)
	for _, b := range data {
		crc = crc<<8 ^ crcTable[byte(crc>>24)^b]
	}
	return crc
}
