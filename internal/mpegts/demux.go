package mpegts

import (
	"errors"
	"fmt"
)

// AccessUnit is one reassembled PES payload with its stream context.
type AccessUnit struct {
	PID      uint16
	StreamID uint8
	PTS      int64
	DTS      int64
	Keyframe bool // random-access indicator seen on the first packet
	Data     []byte
}

// Demuxer reassembles elementary streams from TS packets.
type Demuxer struct {
	pat     *PAT
	pmt     *PMT
	pending []pendingPES // one per in-flight PID; linear scan beats a map
	units   []AccessUnit
	// ContinuityErrors counts continuity-counter gaps (lost packets).
	ContinuityErrors int
	// lastCC stores continuity counter + 1 per PID; 0 means unseen.
	lastCC [pidLimit]uint8
}

type pendingPES struct {
	pid      uint16
	keyframe bool
	data     []byte
}

// NewDemuxer returns an empty demuxer.
func NewDemuxer() *Demuxer {
	return &Demuxer{}
}

func (d *Demuxer) findPending(pid uint16) *pendingPES {
	for i := range d.pending {
		if d.pending[i].pid == pid && d.pending[i].data != nil {
			return &d.pending[i]
		}
	}
	return nil
}

// Feed consumes any whole packets in data (len must be a multiple of 188).
func (d *Demuxer) Feed(data []byte) error {
	if len(data)%PacketSize != 0 {
		return fmt.Errorf("mpegts: feed length %d not a multiple of %d", len(data), PacketSize)
	}
	for i := 0; i+PacketSize <= len(data); i += PacketSize {
		if err := d.feedPacket(data[i : i+PacketSize]); err != nil {
			return err
		}
	}
	return nil
}

func (d *Demuxer) feedPacket(raw []byte) error {
	pkt, err := ParsePacket(raw)
	if err != nil {
		return err
	}
	if pkt.Payload != nil {
		if last := d.lastCC[pkt.PID]; last != 0 && last&0x0F != pkt.ContinuityCount {
			d.ContinuityErrors++
		}
		d.lastCC[pkt.PID] = (pkt.ContinuityCount+1)&0x0F | 0x10
	}
	switch pkt.PID {
	case PIDPAT:
		if pkt.PUSI && len(pkt.Payload) > 1 {
			ptr := int(pkt.Payload[0])
			if 1+ptr < len(pkt.Payload) {
				if pat, err := ParsePAT(pkt.Payload[1+ptr:]); err == nil {
					d.pat = &pat
				}
			}
		}
		return nil
	case PIDNull:
		return nil
	}
	if d.pat != nil && pkt.PID == d.pat.PMTPID {
		if pkt.PUSI && len(pkt.Payload) > 1 {
			ptr := int(pkt.Payload[0])
			if 1+ptr < len(pkt.Payload) {
				if pmt, err := ParsePMT(pkt.Payload[1+ptr:]); err == nil {
					d.pmt = &pmt
				}
			}
		}
		return nil
	}
	// Elementary stream payload.
	if pkt.PUSI {
		d.flushPID(pkt.PID)
		data := make([]byte, len(pkt.Payload), 4096)
		copy(data, pkt.Payload)
		for i := range d.pending {
			if d.pending[i].data == nil {
				d.pending[i] = pendingPES{pid: pkt.PID, keyframe: pkt.RandomAccess, data: data}
				return nil
			}
		}
		d.pending = append(d.pending, pendingPES{pid: pkt.PID, keyframe: pkt.RandomAccess, data: data})
		return nil
	}
	if p := d.findPending(pkt.PID); p != nil {
		p.data = append(p.data, pkt.Payload...)
	}
	return nil
}

func (d *Demuxer) flushPID(pid uint16) {
	p := d.findPending(pid)
	if p == nil {
		return
	}
	data := p.data
	keyframe := p.keyframe
	p.data = nil // slot reusable
	if len(data) == 0 {
		return
	}
	pes, err := ParsePES(data)
	if err != nil {
		return // incomplete PES at stream start; drop silently
	}
	d.units = append(d.units, AccessUnit{
		PID:      pid,
		StreamID: pes.StreamID,
		PTS:      pes.PTS,
		DTS:      pes.DTS,
		Keyframe: keyframe,
		Data:     pes.Data,
	})
}

// Flush finalizes any pending PES packets (call at end of stream).
func (d *Demuxer) Flush() {
	for i := range d.pending {
		if d.pending[i].data != nil {
			d.flushPID(d.pending[i].pid)
		}
	}
}

// Units returns and clears the reassembled access units.
func (d *Demuxer) Units() []AccessUnit {
	u := d.units
	d.units = nil
	return u
}

// PAT returns the last program association table seen, if any.
func (d *Demuxer) PAT() (PAT, bool) {
	if d.pat == nil {
		return PAT{}, false
	}
	return *d.pat, true
}

// PMT returns the last program map table seen, if any.
func (d *Demuxer) PMT() (PMT, bool) {
	if d.pmt == nil {
		return PMT{}, false
	}
	return *d.pmt, true
}

// DemuxAll is a convenience that demuxes a complete TS buffer (for example
// one HLS segment) into access units.
func DemuxAll(data []byte) ([]AccessUnit, error) {
	d := NewDemuxer()
	if err := d.Feed(data); err != nil {
		return nil, err
	}
	d.Flush()
	units := d.Units()
	if len(units) == 0 {
		return nil, errors.New("mpegts: no access units found")
	}
	return units, nil
}
