package mpegts

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

func TestCRC32KnownValue(t *testing.T) {
	// CRC-32/MPEG-2 of "123456789" is 0x0376E6E7 (standard check value).
	if got := CRC32([]byte("123456789")); got != 0x0376E6E7 {
		t.Errorf("CRC32 = %#x, want 0x0376E6E7", got)
	}
}

func TestPATRoundTrip(t *testing.T) {
	pat := PAT{TransportStreamID: 7, ProgramNumber: 1, PMTPID: PIDPMT}
	got, err := ParsePAT(pat.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != pat {
		t.Errorf("got %+v, want %+v", got, pat)
	}
}

func TestPMTRoundTrip(t *testing.T) {
	pmt := PMT{
		ProgramNumber: 1,
		PCRPID:        PIDVideo,
		Streams: []PMTStream{
			{StreamType: StreamTypeAVC, PID: PIDVideo},
			{StreamType: StreamTypeAAC, PID: PIDAudio},
		},
	}
	got, err := ParsePMT(pmt.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.PCRPID != PIDVideo || len(got.Streams) != 2 {
		t.Fatalf("got %+v", got)
	}
	if got.Streams[0].StreamType != StreamTypeAVC || got.Streams[1].PID != PIDAudio {
		t.Errorf("streams wrong: %+v", got.Streams)
	}
}

func TestPSICorruptionDetected(t *testing.T) {
	sec := PAT{TransportStreamID: 7, ProgramNumber: 1, PMTPID: PIDPMT}.Marshal()
	sec[4] ^= 0xFF
	if _, err := ParsePAT(sec); err == nil {
		t.Error("corrupted PAT must fail CRC")
	}
}

func TestPESTimestampRoundTrip(t *testing.T) {
	cases := []struct{ pts, dts int64 }{
		{0, NoTimestamp},
		{90000, 90000},
		{90000, 87000},
		{1<<33 - 1, 1<<33 - 2},
	}
	for _, c := range cases {
		p := PES{StreamID: StreamIDVideo, PTS: c.pts, DTS: c.dts, Data: []byte{1, 2, 3}}
		got, err := ParsePES(p.Marshal())
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if got.PTS != c.pts {
			t.Errorf("PTS = %d, want %d", got.PTS, c.pts)
		}
		wantDTS := c.dts
		if c.dts == NoTimestamp {
			wantDTS = c.pts // DTS defaults to PTS
		}
		if got.DTS != wantDTS {
			t.Errorf("DTS = %d, want %d", got.DTS, wantDTS)
		}
		if !bytes.Equal(got.Data, p.Data) {
			t.Error("data mismatch")
		}
	}
}

func TestPESLargePayloadUnbounded(t *testing.T) {
	p := PES{StreamID: StreamIDVideo, PTS: 1234, DTS: 1234, Data: make([]byte, 100_000)}
	got, err := ParsePES(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Data) != 100_000 {
		t.Errorf("data len = %d", len(got.Data))
	}
}

func TestTicksConversion(t *testing.T) {
	d := 3600 * time.Millisecond
	if got := FromTicks(ToTicks(d)); got != d {
		t.Errorf("round trip %v -> %v", d, got)
	}
	if ToTicks(time.Second) != 90000 {
		t.Errorf("1s = %d ticks, want 90000", ToTicks(time.Second))
	}
}

func TestBuildPacketSizes(t *testing.T) {
	// Everything must come out exactly 188 bytes regardless of payload.
	for _, n := range []int{0, 1, 10, 183, 184, 200} {
		payload := make([]byte, n)
		pkt, used := buildPacket(PIDVideo, true, 3, false, nil, payload)
		if len(pkt) != PacketSize {
			t.Fatalf("packet size %d", len(pkt))
		}
		if used > n || (n <= 184 && used != n) {
			t.Errorf("payload %d: used %d", n, used)
		}
		parsed, err := ParsePacket(pkt[:])
		if err != nil {
			t.Fatal(err)
		}
		if len(parsed.Payload) != used {
			t.Errorf("payload %d: parsed %d bytes, used %d", n, len(parsed.Payload), used)
		}
	}
}

func TestPacketPCR(t *testing.T) {
	pcr := uint64(27_000_000 * 5) // 5 seconds in 27 MHz
	pkt, _ := buildPacket(PIDVideo, true, 0, true, &pcr, []byte{1, 2, 3})
	parsed, err := ParsePacket(pkt[:])
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.HasPCR || parsed.PCR != pcr {
		t.Errorf("PCR = %d (has=%v), want %d", parsed.PCR, parsed.HasPCR, pcr)
	}
	if !parsed.RandomAccess {
		t.Error("random access flag lost")
	}
}

func TestMuxDemuxRoundTrip(t *testing.T) {
	m := NewMuxer()
	videoData := [][]byte{
		bytes.Repeat([]byte{0xAA}, 3000),
		bytes.Repeat([]byte{0xBB}, 150),
		bytes.Repeat([]byte{0xCC}, 40_000),
	}
	for i, d := range videoData {
		pts := time.Duration(i) * 40 * time.Millisecond
		m.WriteVideo(pts, pts, i == 0, d)
	}
	m.WriteAudio(10*time.Millisecond, bytes.Repeat([]byte{0xDD}, 120))

	ts := m.Bytes()
	if len(ts)%PacketSize != 0 {
		t.Fatalf("stream length %d not packet aligned", len(ts))
	}
	units, err := DemuxAll(ts)
	if err != nil {
		t.Fatal(err)
	}
	var video, audio []AccessUnit
	for _, u := range units {
		switch u.PID {
		case PIDVideo:
			video = append(video, u)
		case PIDAudio:
			audio = append(audio, u)
		}
	}
	if len(video) != 3 || len(audio) != 1 {
		t.Fatalf("video=%d audio=%d", len(video), len(audio))
	}
	for i, u := range video {
		if !bytes.Equal(u.Data, videoData[i]) {
			t.Errorf("video %d data mismatch: %d vs %d bytes", i, len(u.Data), len(videoData[i]))
		}
		wantPTS := ToTicks(time.Duration(i) * 40 * time.Millisecond)
		if u.PTS != wantPTS {
			t.Errorf("video %d PTS = %d, want %d", i, u.PTS, wantPTS)
		}
	}
	if !video[0].Keyframe || video[1].Keyframe {
		t.Error("keyframe flags wrong")
	}
	if !bytes.Equal(audio[0].Data, bytes.Repeat([]byte{0xDD}, 120)) {
		t.Error("audio data mismatch")
	}
}

func TestDemuxTables(t *testing.T) {
	m := NewMuxer()
	m.WriteVideo(0, 0, true, []byte{1})
	d := NewDemuxer()
	if err := d.Feed(m.Bytes()); err != nil {
		t.Fatal(err)
	}
	d.Flush()
	pat, ok := d.PAT()
	if !ok || pat.PMTPID != PIDPMT {
		t.Errorf("PAT = %+v ok=%v", pat, ok)
	}
	pmt, ok := d.PMT()
	if !ok || len(pmt.Streams) != 2 {
		t.Errorf("PMT = %+v ok=%v", pmt, ok)
	}
}

func TestDemuxContinuityErrors(t *testing.T) {
	m := NewMuxer()
	for i := 0; i < 10; i++ {
		m.WriteVideo(time.Duration(i)*time.Millisecond*40, 0, false, bytes.Repeat([]byte{1}, 5000))
	}
	ts := m.Bytes()
	// Drop a mid-stream packet to force a CC gap.
	cut := ts[:30*PacketSize]
	cut = append(cut, ts[31*PacketSize:]...)
	d := NewDemuxer()
	if err := d.Feed(cut); err != nil {
		t.Fatal(err)
	}
	if d.ContinuityErrors == 0 {
		t.Error("dropped packet not detected")
	}
}

func TestFeedMisaligned(t *testing.T) {
	d := NewDemuxer()
	if err := d.Feed(make([]byte, 100)); err == nil {
		t.Error("want error for misaligned feed")
	}
}

func TestPESPropertyRoundTrip(t *testing.T) {
	f := func(data []byte, pts uint32) bool {
		p := PES{StreamID: StreamIDVideo, PTS: int64(pts), DTS: int64(pts), Data: data}
		got, err := ParsePES(p.Marshal())
		return err == nil && bytes.Equal(got.Data, data) && got.PTS == int64(pts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMuxerSpliceableSegments(t *testing.T) {
	// Draining the muxer per segment must keep continuity counters valid
	// across segment boundaries (a client concatenating segments sees no
	// CC errors).
	m := NewMuxer()
	var all []byte
	for seg := 0; seg < 3; seg++ {
		for i := 0; i < 5; i++ {
			m.WriteVideo(0, 0, i == 0, bytes.Repeat([]byte{byte(i)}, 2000))
		}
		all = append(all, m.Bytes()...)
	}
	d := NewDemuxer()
	if err := d.Feed(all); err != nil {
		t.Fatal(err)
	}
	if d.ContinuityErrors != 0 {
		t.Errorf("continuity errors across segments: %d", d.ContinuityErrors)
	}
}
