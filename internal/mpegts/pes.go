package mpegts

import (
	"errors"
	"fmt"
	"time"
)

// Stream IDs for PES packets.
const (
	StreamIDVideo = 0xE0
	StreamIDAudio = 0xC0
)

// ClockFrequency is the 90 kHz PES timestamp clock.
const ClockFrequency = 90000

// NoTimestamp marks an absent PTS/DTS.
const NoTimestamp = int64(-1)

// PES is a packetized elementary stream packet.
type PES struct {
	StreamID uint8
	PTS      int64 // 90 kHz ticks, NoTimestamp if absent
	DTS      int64 // 90 kHz ticks, NoTimestamp if absent
	Data     []byte
}

// ToTicks converts a duration to 90 kHz ticks.
func ToTicks(d time.Duration) int64 {
	return int64(d) * ClockFrequency / int64(time.Second)
}

// FromTicks converts 90 kHz ticks to a duration.
func FromTicks(t int64) time.Duration {
	return time.Duration(t * int64(time.Second) / ClockFrequency)
}

// pesMaxHeaderLen is the largest header this muxer emits: 9 fixed bytes
// plus PTS and DTS fields.
const pesMaxHeaderLen = 9 + 5 + 5

// marshalHeader encodes the PES header (everything before Data) into dst,
// which must hold pesMaxHeaderLen bytes, and returns the encoded length.
// Video PES uses packet length 0 (unbounded) when the payload exceeds
// 16 bits, as permitted for video.
func (p PES) marshalHeader(dst []byte) int {
	var flags byte
	hdrLen := 0
	if p.PTS != NoTimestamp {
		flags |= 0x80
		hdrLen += 5
	}
	if p.DTS != NoTimestamp && p.DTS != p.PTS {
		flags |= 0x40
		hdrLen += 5
	}
	pesLen := 3 + hdrLen + len(p.Data)
	if pesLen > 0xFFFF {
		pesLen = 0 // unbounded, video only
	}
	out := dst[:0]
	out = append(out, 0x00, 0x00, 0x01, p.StreamID)
	out = append(out, byte(pesLen>>8), byte(pesLen))
	out = append(out, 0x80) // marker '10', no scrambling
	out = append(out, flags)
	out = append(out, byte(hdrLen))
	if flags&0x80 != 0 {
		prefix := byte(0x2)
		if flags&0x40 != 0 {
			prefix = 0x3
		}
		out = appendTimestamp(out, prefix, p.PTS)
	}
	if flags&0x40 != 0 {
		out = appendTimestamp(out, 0x1, p.DTS)
	}
	return len(out)
}

// Marshal encodes the PES packet into a single contiguous buffer.
func (p PES) Marshal() []byte {
	var hdr [pesMaxHeaderLen]byte
	n := p.marshalHeader(hdr[:])
	out := make([]byte, 0, n+len(p.Data))
	out = append(out, hdr[:n]...)
	return append(out, p.Data...)
}

// appendTimestamp writes a 33-bit timestamp in the 5-byte marker format.
func appendTimestamp(out []byte, prefix byte, ts int64) []byte {
	v := uint64(ts) & 0x1FFFFFFFF
	return append(out,
		prefix<<4|byte(v>>29)&0x0E|1,
		byte(v>>22),
		byte(v>>14)|1,
		byte(v>>7),
		byte(v<<1)|1,
	)
}

func parseTimestamp(b []byte) int64 {
	return int64(b[0]>>1&0x7)<<30 | int64(b[1])<<22 |
		int64(b[2]>>1)<<15 | int64(b[3])<<7 | int64(b[4]>>1)
}

// ParsePES decodes a PES packet (header plus all following bytes as data;
// an unbounded length field is accepted).
func ParsePES(b []byte) (PES, error) {
	if len(b) < 9 {
		return PES{}, errors.New("mpegts: PES too short")
	}
	if b[0] != 0 || b[1] != 0 || b[2] != 1 {
		return PES{}, errors.New("mpegts: bad PES start code")
	}
	p := PES{StreamID: b[3], PTS: NoTimestamp, DTS: NoTimestamp}
	pesLen := int(b[4])<<8 | int(b[5])
	flags := b[7]
	hdrLen := int(b[8])
	dataStart := 9 + hdrLen
	if dataStart > len(b) {
		return PES{}, errors.New("mpegts: PES header overflows packet")
	}
	pos := 9
	if flags&0x80 != 0 {
		if pos+5 > len(b) {
			return PES{}, errors.New("mpegts: truncated PTS")
		}
		p.PTS = parseTimestamp(b[pos : pos+5])
		p.DTS = p.PTS
		pos += 5
	}
	if flags&0x40 != 0 {
		if pos+5 > len(b) {
			return PES{}, errors.New("mpegts: truncated DTS")
		}
		p.DTS = parseTimestamp(b[pos : pos+5])
	}
	end := len(b)
	if pesLen != 0 {
		want := 6 + pesLen
		if want > len(b) {
			return PES{}, fmt.Errorf("mpegts: PES length %d exceeds buffer %d", want, len(b))
		}
		end = want
	}
	p.Data = b[dataStart:end]
	return p, nil
}
