package mpegts

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// PAT is the program association table (single program).
type PAT struct {
	TransportStreamID uint16
	ProgramNumber     uint16
	PMTPID            uint16
}

// PMT is the program map table.
type PMT struct {
	ProgramNumber uint16
	PCRPID        uint16
	Streams       []PMTStream
}

// PMTStream is one elementary-stream entry in the PMT.
type PMTStream struct {
	StreamType uint8
	PID        uint16
}

// marshalSection wraps a PSI table body in the section header and CRC and
// returns the full section (starting at table_id).
func marshalSection(tableID uint8, idExt uint16, body []byte) []byte {
	// section_length covers everything after it, including the CRC.
	sectionLen := 5 + len(body) + 4
	sec := make([]byte, 0, 3+sectionLen)
	sec = append(sec, tableID)
	sec = append(sec, 0xB0|byte(sectionLen>>8), byte(sectionLen))
	sec = binary.BigEndian.AppendUint16(sec, idExt)
	sec = append(sec, 0xC1) // version 0, current_next 1
	sec = append(sec, 0, 0) // section_number, last_section_number
	sec = append(sec, body...)
	crc := CRC32(sec)
	return binary.BigEndian.AppendUint32(sec, crc)
}

// Marshal encodes the PAT as a PSI section.
func (p PAT) Marshal() []byte {
	body := make([]byte, 0, 4)
	body = binary.BigEndian.AppendUint16(body, p.ProgramNumber)
	body = append(body, 0xE0|byte(p.PMTPID>>8), byte(p.PMTPID))
	return marshalSection(0x00, p.TransportStreamID, body)
}

// Marshal encodes the PMT as a PSI section.
func (p PMT) Marshal() []byte {
	body := make([]byte, 0, 4+5*len(p.Streams))
	body = append(body, 0xE0|byte(p.PCRPID>>8), byte(p.PCRPID))
	body = append(body, 0xF0, 0x00) // program_info_length = 0
	for _, s := range p.Streams {
		body = append(body, s.StreamType)
		body = append(body, 0xE0|byte(s.PID>>8), byte(s.PID))
		body = append(body, 0xF0, 0x00) // ES_info_length = 0
	}
	return marshalSection(0x02, p.ProgramNumber, body)
}

// checkSection validates the generic section framing and CRC, returning the
// body (between last_section_number and the CRC).
func checkSection(sec []byte, wantTableID uint8) (idExt uint16, body []byte, err error) {
	if len(sec) < 12 {
		return 0, nil, errors.New("mpegts: PSI section too short")
	}
	if sec[0] != wantTableID {
		return 0, nil, fmt.Errorf("mpegts: table id %#x, want %#x", sec[0], wantTableID)
	}
	sectionLen := int(sec[1]&0x0F)<<8 | int(sec[2])
	total := 3 + sectionLen
	if total > len(sec) {
		return 0, nil, errors.New("mpegts: truncated PSI section")
	}
	sec = sec[:total]
	if CRC32(sec[:total-4]) != binary.BigEndian.Uint32(sec[total-4:]) {
		return 0, nil, errors.New("mpegts: PSI CRC mismatch")
	}
	return binary.BigEndian.Uint16(sec[3:5]), sec[8 : total-4], nil
}

// ParsePAT decodes a PAT section.
func ParsePAT(sec []byte) (PAT, error) {
	idExt, body, err := checkSection(sec, 0x00)
	if err != nil {
		return PAT{}, err
	}
	if len(body) < 4 {
		return PAT{}, errors.New("mpegts: PAT body too short")
	}
	return PAT{
		TransportStreamID: idExt,
		ProgramNumber:     binary.BigEndian.Uint16(body[0:2]),
		PMTPID:            binary.BigEndian.Uint16(body[2:4]) & 0x1FFF,
	}, nil
}

// ParsePMT decodes a PMT section.
func ParsePMT(sec []byte) (PMT, error) {
	idExt, body, err := checkSection(sec, 0x02)
	if err != nil {
		return PMT{}, err
	}
	if len(body) < 4 {
		return PMT{}, errors.New("mpegts: PMT body too short")
	}
	pmt := PMT{
		ProgramNumber: idExt,
		PCRPID:        binary.BigEndian.Uint16(body[0:2]) & 0x1FFF,
	}
	progInfoLen := int(binary.BigEndian.Uint16(body[2:4]) & 0x0FFF)
	p := 4 + progInfoLen
	for p+5 <= len(body) {
		esInfoLen := int(binary.BigEndian.Uint16(body[p+3:p+5]) & 0x0FFF)
		pmt.Streams = append(pmt.Streams, PMTStream{
			StreamType: body[p],
			PID:        binary.BigEndian.Uint16(body[p+1:p+3]) & 0x1FFF,
		})
		p += 5 + esInfoLen
	}
	return pmt, nil
}
