package service

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"periscope/internal/geo"
	"periscope/internal/hls"
)

// newTestTopology builds an origin tier plus POPs placed in the given
// regions, with the fill topology wired (nearest-peer candidate lists)
// but modelled link latency disabled so tests measure structure, not
// sleeps.
func newTestTopology(t testing.TB, popRegions ...string) (*Service, []*cdnPOP) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.CDNPOPRegions = popRegions
	cfg.CDNLinkRTTScale = -1
	origin, err := newOriginTier()
	if err != nil {
		t.Fatal(err)
	}
	svc := &Service{cfg: cfg, origin: origin, regions: geo.Regions()}
	svc.originRegion, _ = geo.RegionByName(svc.regions, cfg.CDNOriginRegion)
	regions, err := resolvePOPRegions(cfg, svc.regions)
	if err != nil {
		origin.close()
		t.Fatal(err)
	}
	for i, reg := range regions {
		pop, err := newCDNPOP(svc, i, reg)
		if err != nil {
			t.Fatal(err)
		}
		svc.cdn = append(svc.cdn, pop)
	}
	svc.wireCDNTopology()
	t.Cleanup(func() {
		for _, pop := range svc.cdn {
			pop.close()
		}
		origin.close()
	})
	return svc, svc.cdn
}

// TestCDNTopologyPeerSelection pins the hierarchy: peer candidates are
// exactly the POPs strictly nearer than the origin, nearest first — two
// same-region POPs form a cluster, transatlantic POPs do not qualify when
// the origin is closer.
func TestCDNTopologyPeerSelection(t *testing.T) {
	// Origin is us-east: the us-west POPs are ~2300 km from it, the
	// eu-west POPs ~7400 km; cross-ocean peers (>8000 km) are farther
	// than each side's origin path, so clusters are per region.
	_, pops := newTestTopology(t, "us-west", "us-west", "eu-west", "eu-west")
	wantPeers := map[int][]int{0: {1}, 1: {0}, 2: {3}, 3: {2}}
	for i, pop := range pops {
		var got []int
		for _, pr := range pop.peers {
			got = append(got, pr.pop.index)
		}
		want := wantPeers[i]
		if len(got) != len(want) {
			t.Errorf("POP %d (%s) peers = %v, want %v", i, pop.region.Name, got, want)
			continue
		}
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("POP %d peers = %v, want %v", i, got, want)
			}
		}
	}
}

// TestCDNTopologyNearerForeignPeerQualifies: the candidate rule is
// "strictly nearer than the origin", not "same region" — an eu-east POP
// prefers an eu-west peer over the us-east origin.
func TestCDNTopologyNearerForeignPeerQualifies(t *testing.T) {
	_, pops := newTestTopology(t, "eu-east", "eu-west")
	if len(pops[0].peers) != 1 || pops[0].peers[0].pop.index != 1 {
		t.Errorf("eu-east POP peers = %+v, want the eu-west POP", pops[0].peers)
	}
}

// TestCDNTopologyLinkRTTs checks the modelled latency at default scale:
// every link RTT is positive, and a same-region peer is nearer than the
// transatlantic origin path.
func TestCDNTopologyLinkRTTs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CDNPOPRegions = []string{"eu-west", "eu-west"}
	origin, err := newOriginTier()
	if err != nil {
		t.Fatal(err)
	}
	defer origin.close()
	svc := &Service{cfg: cfg, origin: origin, regions: geo.Regions()}
	svc.originRegion, _ = geo.RegionByName(svc.regions, cfg.CDNOriginRegion)
	regions, _ := resolvePOPRegions(cfg, svc.regions)
	for i, reg := range regions {
		pop, err := newCDNPOP(svc, i, reg)
		if err != nil {
			t.Fatal(err)
		}
		defer pop.close()
		svc.cdn = append(svc.cdn, pop)
	}
	svc.wireCDNTopology()
	p := svc.cdn[0]
	if p.originLink.RTT <= 0 {
		t.Error("origin link has no modelled RTT at default scale")
	}
	if len(p.peers) != 1 {
		t.Fatalf("peers = %d, want 1", len(p.peers))
	}
	if got, origin := p.peers[0].link.RTT, p.originLink.RTT; got <= 0 || got >= origin {
		t.Errorf("peer RTT %v not in (0, origin %v)", got, origin)
	}
}

func fetchSegment(t testing.TB, pop *cdnPOP, id, uri string) []byte {
	t.Helper()
	rec := httptest.NewRecorder()
	pop.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/hls/"+id+"/"+uri, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("POP %d segment %s status %d", pop.index, uri, rec.Code)
	}
	return rec.Body.Bytes()
}

// TestPeerFillHierarchy is the tentpole acceptance test: with two POPs in
// each of two regions, a cold segment reaches the origin at most once per
// region — the second POP of a cluster fills from its warm peer — and the
// snapshot surfaces the peer-fill split.
func TestPeerFillHierarchy(t *testing.T) {
	svc, pops := newTestTopology(t, "us-west", "us-west", "eu-west", "eu-west")
	seg := buildSegments(6*time.Second, 800*time.Millisecond, 0, true)
	svc.origin.register("cast", seg)
	for _, pop := range pops {
		pop.register("cast", seg)
	}
	pl := seg.Playlist()
	if len(pl.Segments) < 2 {
		t.Fatal("need at least 2 segments")
	}

	const regionCount = 2
	for _, s := range pl.Segments {
		before := svc.origin.SegmentRequests.Load()
		want := fetchSegment(t, pops[0], "cast", s.URI) // cluster 1: origin fill
		for _, pop := range pops[1:] {
			got := fetchSegment(t, pop, "cast", s.URI)
			if string(got) != string(want) {
				t.Fatalf("POP %d served different bytes for %s", pop.index, s.URI)
			}
		}
		originFills := svc.origin.SegmentRequests.Load() - before
		if originFills > regionCount {
			t.Errorf("segment %s: %d origin fills across 4 POPs, want <= %d (one per region)",
				s.URI, originFills, regionCount)
		}
		if originFills < 1 {
			t.Errorf("segment %s: no origin fill at all", s.URI)
		}
	}

	n := int64(len(pl.Segments))
	// Cluster followers filled from their warm peers.
	for _, i := range []int{1, 3} {
		st := pops[i].stats()
		if st.PeerFills != n {
			t.Errorf("POP %d peer fills = %d, want %d", i, st.PeerFills, n)
		}
		if st.OriginFills != 0 {
			t.Errorf("POP %d went to origin %d times despite a warm peer", i, st.OriginFills)
		}
		if st.PeerFillBytes == 0 {
			t.Errorf("POP %d peer fill bytes not accounted", i)
		}
	}
	// Cluster anchors served their peers and count the probes.
	for _, i := range []int{0, 2} {
		st := pops[i].stats()
		if st.PeerServes != n {
			t.Errorf("POP %d peer serves = %d, want %d", i, st.PeerServes, n)
		}
		if st.OriginFills != n {
			t.Errorf("POP %d origin fills = %d, want %d", i, st.OriginFills, n)
		}
	}
	// The service snapshot carries the topology and the peer-fill split.
	snap := svc.Snapshot()
	if snap.Origin.Region != "us-east" {
		t.Errorf("origin region = %q", snap.Origin.Region)
	}
	var peerFills int64
	for _, ps := range snap.POPs {
		if ps.Region == "" {
			t.Errorf("POP %d snapshot lacks a region", ps.Index)
		}
		peerFills += ps.PeerFills
	}
	if peerFills != 2*n {
		t.Errorf("snapshot peer fills = %d, want %d", peerFills, 2*n)
	}
}

// TestPeerFillSingleFlight: single-flight is preserved across the peer
// hop — N viewers fanning in at a cold POP produce exactly one probe to
// the warm peer and none to the origin.
func TestPeerFillSingleFlight(t *testing.T) {
	svc, pops := newTestTopology(t, "us-west", "us-west")
	seg := buildSegments(6*time.Second, 800*time.Millisecond, 0, true)
	svc.origin.register("cast", seg)
	for _, pop := range pops {
		pop.register("cast", seg)
	}
	pl := seg.Playlist()
	uri := pl.Segments[0].URI
	fetchSegment(t, pops[0], "cast", uri) // warm the anchor from origin
	originBefore := svc.origin.SegmentRequests.Load()

	const viewers = 50
	var wg sync.WaitGroup
	for i := 0; i < viewers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fetchSegment(t, pops[1], "cast", uri)
		}()
	}
	wg.Wait()

	if got := pops[0].PeerServes.Load(); got != 1 {
		t.Errorf("peer saw %d probes for %d fanned-in viewers, want 1", got, viewers)
	}
	if got := svc.origin.SegmentRequests.Load() - originBefore; got != 0 {
		t.Errorf("origin saw %d fetches although the peer held the segment", got)
	}
	st := pops[1].stats()
	if st.PeerFills != 1 || st.SingleFlightHits == 0 {
		t.Errorf("cold POP stats = peerFills %d singleFlightHits %d", st.PeerFills, st.SingleFlightHits)
	}
}

// TestPeerProbeIsCacheOnly: a probe for a segment nobody holds must not
// cascade — the probed peer answers 404 without filling, and the prober
// falls back to the origin exactly once.
func TestPeerProbeIsCacheOnly(t *testing.T) {
	svc, pops := newTestTopology(t, "us-west", "us-west")
	seg := buildSegments(6*time.Second, 800*time.Millisecond, 0, true)
	svc.origin.register("cast", seg)
	for _, pop := range pops {
		pop.register("cast", seg)
	}
	pl := seg.Playlist()
	uri := pl.Segments[0].URI

	fetchSegment(t, pops[1], "cast", uri) // both caches cold
	if got := svc.origin.SegmentRequests.Load(); got != 1 {
		t.Errorf("origin fetches = %d, want 1", got)
	}
	st0 := pops[0].stats()
	if st0.Fills != 0 {
		t.Errorf("probed peer performed %d fills; probes must be cache-only", st0.Fills)
	}
	if st0.PeerRequests != 1 || st0.PeerServes != 0 {
		t.Errorf("peer counters = %d requests / %d serves, want 1 / 0", st0.PeerRequests, st0.PeerServes)
	}
	st1 := pops[1].stats()
	if st1.PeerMisses != 1 || st1.OriginFills != 1 {
		t.Errorf("prober counters = %d misses / %d origin fills, want 1 / 1", st1.PeerMisses, st1.OriginFills)
	}
}

// TestPromotionWarmsClusterAnchorsOnly: enableHLS warms one replica per
// cluster (the anchor), not every POP — otherwise the promotion burst
// itself would hit the origin once per POP while every peer cache is
// still cold.
func TestPromotionWarmsClusterAnchorsOnly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PopConfig.TargetConcurrent = 120
	cfg.SegmentTarget = 800 * time.Millisecond
	cfg.CDNPOPRegions = []string{"us-west", "us-west", "eu-west", "eu-west"}
	cfg.CDNLinkRTTScale = -1
	svc, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	b := pickBroadcast(t, svc, true)
	if _, err := svc.AccessVideo(b.ID); err != nil {
		t.Fatal(err)
	}
	// Anchors warm at promotion and re-warm when the first segment lands;
	// followers never warm — their fills probe the warm anchor instead.
	anchors := map[int]bool{0: true, 1: false, 2: true, 3: false}
	for _, ps := range svc.Snapshot().POPs {
		if anchors[ps.Index] && ps.Warmups == 0 {
			t.Errorf("anchor POP %d (%s) never warmed", ps.Index, ps.Region)
		}
		if !anchors[ps.Index] && ps.Warmups != 0 {
			t.Errorf("follower POP %d (%s) warmups = %d, want 0", ps.Index, ps.Region, ps.Warmups)
		}
	}
	// Once the first segment lands, the anchors' re-warm prefetches it:
	// each cluster's anchor holds the window without any viewer touching
	// it, so followers' first fills peer-hit.
	h := svc.hubFor(b.ID)
	waitFor(t, func() bool { return h.Segmenter().SegmentCount() >= 1 }, "first segment")
	for _, i := range []int{0, 2} {
		pop := svc.cdn[i]
		waitFor(t, func() bool {
			rep := pop.replica(b.ID)
			return rep != nil && rep.Stats().CachedSegments >= 1
		}, fmt.Sprintf("anchor POP %d warmed cache", i))
	}
}

// TestSnapshotFillCountersSurviveUnregister: a churned broadcast's fill
// and peer counters fold into the POP's retired aggregate, so cumulative
// snapshot metrics never dip as broadcasts come and go.
func TestSnapshotFillCountersSurviveUnregister(t *testing.T) {
	svc, pops := newTestTopology(t, "us-west", "us-west")
	seg := buildSegments(6*time.Second, 800*time.Millisecond, 0, true)
	svc.origin.register("cast", seg)
	for _, pop := range pops {
		pop.register("cast", seg)
	}
	pl := seg.Playlist()
	fetchSegment(t, pops[0], "cast", pl.Segments[0].URI) // origin fill at anchor
	fetchSegment(t, pops[1], "cast", pl.Segments[0].URI) // peer fill at follower

	before0, before1 := pops[0].stats(), pops[1].stats()
	if before0.Fills != 1 || before1.PeerFills != 1 {
		t.Fatalf("pre-churn stats: anchor fills %d, follower peer fills %d", before0.Fills, before1.PeerFills)
	}
	for _, pop := range pops {
		pop.unregister("cast", nil)
	}
	after0, after1 := pops[0].stats(), pops[1].stats()
	if after0.Fills != before0.Fills || after0.FillBytes != before0.FillBytes ||
		after0.OriginFills != before0.OriginFills || after0.PeerServes != before0.PeerServes {
		t.Errorf("anchor counters dipped after unregister: before %+v after %+v", before0, after0)
	}
	if after1.PeerFills != before1.PeerFills || after1.PeerFillBytes != before1.PeerFillBytes {
		t.Errorf("follower peer counters dipped after unregister: before %+v after %+v", before1, after1)
	}
	if after0.Broadcasts != 0 || after0.CachedSegments != 0 {
		t.Errorf("gauges should drop with the replica: %+v", after0)
	}
}

// TestScheduledEndChurnsBroadcastEndToEnd drives the full lifecycle from
// the population's fake clock, with no manual EndBroadcast call:
// scheduled end → ENDLIST at every POP → relaunch mid-linger is spared →
// second end → linger → unregistered everywhere.
func TestScheduledEndChurnsBroadcastEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PopConfig.TargetConcurrent = 120
	cfg.SegmentTarget = 800 * time.Millisecond
	cfg.CDNPOPRegions = []string{"us-west", "us-west", "eu-west", "eu-west"}
	cfg.CDNLinkRTTScale = -1
	// The linger must comfortably outlast the edge playlist TTL
	// (SegmentTarget/2 = 400ms): POPs only learn about the end by
	// revalidating a stale playlist, and that has to happen before the
	// linger unregisters the replicas.
	cfg.CDNUnregisterLinger = 1500 * time.Millisecond
	svc, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	b := pickBroadcast(t, svc, true)
	if _, err := svc.AccessVideo(b.ID); err != nil {
		t.Fatal(err)
	}
	h := svc.hubFor(b.ID)
	waitFor(t, func() bool { return h.Segmenter().SegmentCount() >= 1 }, "first segment")
	// Warm the edge playlist caches so the POPs have something to go
	// final about.
	for _, pop := range svc.cdn {
		rec := httptest.NewRecorder()
		pop.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/hls/"+b.ID+"/playlist.m3u8", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("POP %d playlist status %d", pop.index, rec.Code)
		}
	}

	// The population's scheduled end drives the teardown: no manual
	// EndBroadcast anywhere in this test.
	svc.Pop.EndAt(b.ID, svc.Pop.Now().Add(time.Second))
	svc.Pop.Advance(2 * time.Second)

	if svc.hubFor(b.ID) != nil {
		t.Fatal("hub still routed after the scheduled end")
	}
	// Every POP's playlist revalidates to ENDLIST during the linger.
	for _, pop := range svc.cdn {
		pop := pop
		waitFor(t, func() bool {
			rec := httptest.NewRecorder()
			pop.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/hls/"+b.ID+"/playlist.m3u8", nil))
			if rec.Code != http.StatusOK {
				return false
			}
			pl, err := hls.ParseMediaPlaylist(rec.Body.Bytes())
			return err == nil && pl.Ended
		}, fmt.Sprintf("ENDLIST at POP %d", pop.index))
	}

	// Relaunch mid-linger: the broadcaster restarts the same stream. The
	// fresh registration must replace the ended mounts, and the stale
	// linger timer must leave it alone.
	if _, ok := svc.Pop.Relaunch(b.ID, 10*time.Minute); !ok {
		t.Fatal("relaunch failed")
	}
	if _, err := svc.AccessVideo(b.ID); err != nil {
		t.Fatal(err)
	}
	h2 := svc.hubFor(b.ID)
	if h2 == nil || h2.Segmenter() == nil || h2.Segmenter() == h.Segmenter() {
		t.Fatal("relaunch did not build a fresh pipeline")
	}
	time.Sleep(2 * cfg.CDNUnregisterLinger) // let the first end's timer fire
	if !svc.origin.has(b.ID) {
		t.Fatal("linger timer tore down the relaunched broadcast at origin")
	}
	for _, pop := range svc.cdn {
		if !pop.has(b.ID) {
			t.Fatalf("linger timer tore down the relaunched broadcast at POP %d", pop.index)
		}
	}

	// Second scheduled end: after the linger, the broadcast is gone from
	// the origin tier and every POP.
	svc.Pop.EndAt(b.ID, svc.Pop.Now().Add(time.Second))
	svc.Pop.Advance(2 * time.Second)
	if svc.hubFor(b.ID) != nil {
		t.Fatal("hub still routed after the second scheduled end")
	}
	waitFor(t, func() bool {
		if svc.origin.has(b.ID) {
			return false
		}
		for _, pop := range svc.cdn {
			if pop.has(b.ID) {
				return false
			}
		}
		return true
	}, "unregistration after linger")
}

// TestChurnLoopEndsBroadcasts covers the background churn driver: with
// ChurnInterval set, real time advances the population and scheduled ends
// fire without anyone calling Advance.
func TestChurnLoopEndsBroadcasts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PopConfig.TargetConcurrent = 120
	cfg.SegmentTarget = 800 * time.Millisecond
	cfg.CDNLinkRTTScale = -1
	cfg.CDNUnregisterLinger = 0
	cfg.ChurnInterval = 50 * time.Millisecond
	svc, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	b := pickBroadcast(t, svc, true)
	// Schedule the end before starting the pipeline so the churn loop has
	// an event to find; the margin outlives pipeline startup.
	svc.Pop.EndAt(b.ID, svc.Pop.Now().Add(3*time.Second))
	if _, err := svc.AccessVideo(b.ID); err != nil {
		t.Fatal(err)
	}
	if svc.hubFor(b.ID) == nil {
		t.Fatal("no hub after AccessVideo")
	}
	deadline := time.Now().Add(15 * time.Second)
	for svc.hubFor(b.ID) != nil || svc.origin.has(b.ID) {
		if time.Now().After(deadline) {
			t.Fatal("churn loop never ended the broadcast")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// BenchmarkPeerFill measures the intra-cluster fill path next to
// BenchmarkPOPFill's origin path: V viewers fan in on a cold POP whose
// same-region peer already holds the segment, so every op is one peer
// fill (zero origin egress) plus V-1 coalesced/cached serves.
func BenchmarkPeerFill(b *testing.B) {
	for _, viewers := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("viewers=%d", viewers), func(b *testing.B) {
			svc, pops := newTestTopology(b, "us-west", "us-west")
			seg := buildSegments(6*time.Second, 800*time.Millisecond, 0, true)
			svc.origin.register("bench", seg)
			pops[0].register("bench", seg)
			pl := seg.Playlist()
			uri := "/hls/bench/" + pl.Segments[0].URI
			segBytes := 0
			if s, ok := seg.Segment(pl.Segments[0].Sequence); ok {
				segBytes = len(s.Data)
			}
			// Warm the anchor; after this the origin must see no traffic.
			fetchSegment(b, pops[0], "bench", pl.Segments[0].URI)

			originBefore := svc.origin.SegmentRequests.Load()
			peerBefore := pops[0].PeerServes.Load()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pops[1].unregister("bench", nil)
				pops[1].register("bench", seg)
				var wg sync.WaitGroup
				for v := 0; v < viewers; v++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						w := &discardResponseWriter{}
						pops[1].ServeHTTP(w, httptest.NewRequest(http.MethodGet, uri, nil))
						if w.n == 0 {
							b.Error("empty segment response")
						}
					}()
				}
				wg.Wait()
			}
			b.StopTimer()
			b.ReportMetric(float64(svc.origin.SegmentRequests.Load()-originBefore)/float64(b.N), "origin-fills/op")
			b.ReportMetric(float64(pops[0].PeerServes.Load()-peerBefore)/float64(b.N), "peer-fills/op")
			b.SetBytes(int64(segBytes * viewers))
		})
	}
}
