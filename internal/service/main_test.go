package service

import (
	"net/http"
	"testing"

	"periscope/internal/api"
	"periscope/internal/leakcheck"
)

// TestMain enforces the runtime half of the gostop contract: every
// goroutine the service plane starts (hub fanout shards, fill workers,
// churn loops) must be gone once the tests finish tearing down. The
// cleanup drops idle keep-alive sockets first: both the api package's
// shared transport and http.DefaultTransport (used by the tests' plain
// http.Get calls) hold warm connections by design, and their
// readLoop/writeLoop goroutines are not leaks.
func TestMain(m *testing.M) {
	leakcheck.Main(m, leakcheck.Cleanup(func() {
		api.CloseIdleConnections()
		http.DefaultClient.CloseIdleConnections()
	}))
}
