package service

import (
	"testing"
	"time"

	"periscope/internal/api"
	"periscope/internal/chat"
)

// TestEndBroadcastClosesChatRoom is the chat-room leak regression: ending
// a broadcast must close its room (no linger here) and fold the room's
// counters into the chat server aggregate, monotonically.
func TestEndBroadcastClosesChatRoom(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PopConfig.TargetConcurrent = 120
	cfg.SegmentTarget = 800 * time.Millisecond
	cfg.CDNUnregisterLinger = 0
	svc, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	cli := api.NewClient(svc.APIBaseURL(), "s1", nil)
	b := pickBroadcast(t, svc, true)
	if _, err := cli.AccessVideo(b.ID); err != nil {
		t.Fatal(err)
	}
	room := svc.Chat.Lookup(b.ID)
	if room == nil {
		t.Fatal("no chat room after AccessVideo")
	}
	room.Heart(9)
	room.Broadcast(chat.Message{User: "u", Text: "pre-end"})
	before := svc.Snapshot().Chat
	if before.Rooms == 0 || before.RoomsOpened == 0 {
		t.Fatalf("chat snapshot shows no rooms before end: %+v", before)
	}

	svc.EndBroadcast(b.ID)

	if svc.Chat.Lookup(b.ID) != nil {
		t.Error("chat room still registered after EndBroadcast with no linger")
	}
	after := svc.Snapshot().Chat
	if after.RoomsClosed != before.RoomsClosed+1 {
		t.Errorf("RoomsClosed = %d, want %d", after.RoomsClosed, before.RoomsClosed+1)
	}
	if after.HeartTaps < 9 {
		t.Errorf("room's heart taps lost in the fold: HeartTaps = %d", after.HeartTaps)
	}
	if after.MessagesIn < before.MessagesIn || after.MembersJoined < before.MembersJoined ||
		after.HeartTaps < before.HeartTaps {
		t.Errorf("chat counters dipped across room close:\nbefore %+v\nafter  %+v", before, after)
	}
}

// TestEndBroadcastChatRoomHonorsLinger: with a CDN linger configured, the
// room stays open through the drain window (viewers can keep chatting)
// and closes when the linger fires — unless the broadcast relaunched, in
// which case the fresh room survives the stale deferred close.
func TestEndBroadcastChatRoomHonorsLinger(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PopConfig.TargetConcurrent = 120
	cfg.SegmentTarget = 800 * time.Millisecond
	cfg.CDNUnregisterLinger = 200 * time.Millisecond
	svc, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	cli := api.NewClient(svc.APIBaseURL(), "s1", nil)
	b := pickBroadcast(t, svc, true)
	if _, err := cli.AccessVideo(b.ID); err != nil {
		t.Fatal(err)
	}
	oldRoom := svc.Chat.Lookup(b.ID)
	if oldRoom == nil {
		t.Fatal("no chat room after AccessVideo")
	}
	svc.EndBroadcast(b.ID)
	if svc.Chat.Lookup(b.ID) != oldRoom {
		t.Fatal("chat room closed before the linger elapsed")
	}

	// The broadcast is still live in the population: the next access
	// relaunches it, reclaiming the still-open room and cancelling the
	// pending deferred close.
	if _, err := cli.AccessVideo(b.ID); err != nil {
		t.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond)
	if got := svc.Chat.Lookup(b.ID); got != oldRoom {
		t.Fatalf("stale linger close tore down the relaunched broadcast's room (got %p, want %p)", got, oldRoom)
	}

	// End it again with no relaunch: after the linger the room must close.
	svc.EndBroadcast(b.ID)
	waitFor(t, func() bool { return svc.Chat.Lookup(b.ID) == nil }, "chat room close after linger")
}
