package service

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"periscope/internal/aac"
	"periscope/internal/avc"
	"periscope/internal/broadcastmodel"
	"periscope/internal/flv"
	"periscope/internal/hls"
	"periscope/internal/media"
	"periscope/internal/rtmp"
)

// ingestServer is one regional RTMP server of the "vidman" fleet.
type ingestServer struct {
	svc    *Service
	region string
	srv    *rtmp.Server
}

func newIngestServer(svc *Service, region string) (*ingestServer, error) {
	ing := &ingestServer{svc: svc, region: region}
	srv, err := rtmp.ListenAndServe("127.0.0.1:0", ing)
	if err != nil {
		return nil, err
	}
	srv.Name = region
	ing.srv = srv
	return ing, nil
}

// OnConnect accepts every app.
func (ing *ingestServer) OnConnect(c *rtmp.ServerConn, app string) error { return nil }

// OnPlay attaches a viewer to the broadcast's hub.
func (ing *ingestServer) OnPlay(c *rtmp.ServerConn, name string) error {
	h := ing.svc.hubFor(name)
	if h == nil {
		return fmt.Errorf("service: no live broadcast %q", name)
	}
	h.addViewer(c)
	return nil
}

// OnPublish registers the broadcaster connection.
func (ing *ingestServer) OnPublish(c *rtmp.ServerConn, name string) error { return nil }

// OnMedia routes publisher media into the hub pipeline.
func (ing *ingestServer) OnMedia(c *rtmp.ServerConn, msg rtmp.Message) {
	if h := ing.svc.hubFor(c.StreamName); h != nil {
		h.onMedia(msg)
	}
}

// OnClose detaches viewers.
func (ing *ingestServer) OnClose(c *rtmp.ServerConn) {
	if c.Playing {
		if h := ing.svc.hubFor(c.StreamName); h != nil {
			h.removeViewer(c)
		}
	}
}

// hubFor looks up a live pipeline.
func (s *Service) hubFor(id string) *hub {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hubs[id]
}

// ensureHub starts the broadcast pipeline on first access.
func (s *Service) ensureHub(b *broadcastmodel.Broadcast) (*hub, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return nil, fmt.Errorf("service: closed")
	}
	if h, ok := s.hubs[b.ID]; ok {
		return h, nil
	}
	h := newHub(s, b)
	s.hubs[b.ID] = h
	if err := h.startBroadcaster(); err != nil {
		delete(s.hubs, b.ID)
		return nil, err
	}
	return h, nil
}

// viewerQueueDepth bounds each viewer's async send queue. At ~30 media
// messages per second this is several seconds of backlog.
const viewerQueueDepth = 256

// viewerMaxDrops disconnects a viewer that the drop-oldest policy has had
// to penalize this many times — it is not keeping up at all.
const viewerMaxDrops = 4096

// outMsg is one queued media message for a viewer.
type outMsg struct {
	typeID    uint8
	timestamp uint32
	payload   []byte
}

// viewerState tracks one attached RTMP viewer. Media is enqueued on a
// bounded channel and written by a dedicated goroutine, so a slow or
// stalled viewer socket never blocks the publisher's fan-out loop.
type viewerState struct {
	conn *rtmp.ServerConn
	ch   chan outMsg
	quit chan struct{}
	once sync.Once
	// waiting is true until the next keyframe; streams always start
	// decodable, which costs up to a GOP of join delay, as real relays do.
	// It is touched only by the hub's single fan-out goroutine (and at
	// attach time, before the viewer is published to that goroutine).
	waiting bool
	// needSeq is set when the drop-oldest policy may have evicted the
	// queued sequence headers; they are re-sent at the next resync.
	needSeq bool
	// dropped counts messages discarded by the drop-oldest policy.
	dropped int
}

// enqueue offers a message to the viewer's queue without ever blocking.
// When the queue is full the oldest entry is dropped to make room; it
// reports whether anything was dropped.
func (v *viewerState) enqueue(m outMsg) bool {
	select {
	case v.ch <- m:
		return false
	default:
	}
	select {
	case <-v.ch:
	default:
	}
	select {
	case v.ch <- m:
	default:
	}
	return true
}

// stop wakes the sender goroutine for shutdown; it is idempotent.
func (v *viewerState) stop() {
	v.once.Do(func() { close(v.quit) })
}

// run drains the queue onto the viewer's connection. A write error closes
// the connection; the viewer's read loop then triggers OnClose and the
// hub removes it.
func (v *viewerState) run() {
	for {
		select {
		case <-v.quit:
			return
		case m := <-v.ch:
			var err error
			switch m.typeID {
			case rtmp.TypeVideo:
				err = v.conn.SendVideo(m.timestamp, m.payload)
			case rtmp.TypeAudio:
				err = v.conn.SendAudio(m.timestamp, m.payload)
			}
			if err != nil {
				v.conn.Close()
				return
			}
		}
	}
}

// hub is the per-broadcast distribution pipeline.
type hub struct {
	svc *Service
	b   *broadcastmodel.Broadcast

	mu       sync.Mutex
	viewers  []*viewerState
	videoSeq []byte // cached AVC sequence header tag data
	audioSeq []byte // cached AAC sequence header tag data
	seg      *hls.Segmenter
	stopCh   chan struct{}
	stopped  bool
	pub      *rtmp.Client
	enc      *media.Encoder
}

func newHub(s *Service, b *broadcastmodel.Broadcast) *hub {
	return &hub{svc: s, b: b, stopCh: make(chan struct{})}
}

// startBroadcaster dials the regional ingest server and begins pushing the
// synthetic stream in real time.
func (h *hub) startBroadcaster() error {
	ing, ok := h.svc.ingest[h.b.Region]
	if !ok {
		return fmt.Errorf("service: region %q has no ingest", h.b.Region)
	}
	nc, err := net.Dial("tcp", ing.srv.Addr().String())
	if err != nil {
		return err
	}
	cli, err := rtmp.NewClientConn(nc, "live", "rtmp://vidman-"+h.b.Region+".periscope.tv:80/live")
	if err != nil {
		nc.Close()
		return err
	}
	if err := cli.Publish(h.b.ID); err != nil {
		cli.Close()
		return err
	}
	h.pub = cli

	rng := rand.New(rand.NewSource(h.b.Seed))
	cfg := media.RandomEncoderConfig(rng)
	cfg.EmitPayload = true
	cfg.SEIPeriod = 500 * time.Millisecond
	enc := media.NewEncoder(cfg, time.Now())
	h.enc = enc

	go h.produce(cli, enc, rng)
	return nil
}

// produce runs the broadcaster: FLV sequence headers, then paced AV tags.
func (h *hub) produce(cli *rtmp.Client, enc *media.Encoder, rng *rand.Rand) {
	defer cli.Close()
	// Sequence headers first.
	acfg := aac.DefaultConfig()
	if rng.Intn(2) == 1 {
		acfg.Bitrate = 64000 // paper: ~32 or 64 kbps VBR
	}
	videoSeq := flv.VideoTagData{
		FrameType:  flv.VideoKeyFrame,
		PacketType: flv.AVCSeqHeader,
		Data:       flv.DecoderConfig(enc.SPS(), enc.PPS()),
	}.Marshal()
	audioSeq := flv.AudioTagData{PacketType: flv.AACSeqHeader, Data: acfg.AudioSpecificConfig()}.Marshal()
	h.mu.Lock()
	h.videoSeq = videoSeq
	h.audioSeq = audioSeq
	h.mu.Unlock()
	if err := cli.WriteVideo(0, videoSeq); err != nil {
		return
	}
	if err := cli.WriteAudio(0, audioSeq); err != nil {
		return
	}

	sizer := aac.NewFrameSizer(acfg, rng.Int63())
	start := time.Now()
	var audioPTS time.Duration
	for {
		select {
		case <-h.stopCh:
			return
		default:
		}
		f := enc.NextFrame()
		// Pace production to real time.
		if sleep := time.Until(start.Add(f.PTS)); sleep > 0 {
			select {
			case <-h.stopCh:
				return
			case <-time.After(sleep):
			}
		}
		if !f.Dropped {
			frameType := flv.VideoInterFrame
			if f.Keyframe {
				frameType = flv.VideoKeyFrame
			}
			tag := flv.VideoTagData{
				FrameType:       frameType,
				PacketType:      flv.AVCNALU,
				CompositionTime: int32((f.PTS - f.DTS).Milliseconds()),
				Data:            avc.MarshalAVCC(f.NALs),
			}.Marshal()
			if err := cli.WriteVideo(uint32(f.DTS.Milliseconds()), tag); err != nil {
				return
			}
		}
		// Interleave audio frames up to the video position.
		for audioPTS <= f.PTS {
			atag := flv.AudioTagData{PacketType: flv.AACRaw, Data: sizer.NextFrame()}.Marshal()
			if err := cli.WriteAudio(uint32(audioPTS.Milliseconds()), atag); err != nil {
				return
			}
			audioPTS += aac.FrameDuration
		}
	}
}

// addViewer attaches an RTMP viewer; it receives the sequence headers
// immediately and media from the next keyframe. The sequence headers are
// enqueued while the viewer is registered, so they always precede media.
func (h *hub) addViewer(c *rtmp.ServerConn) {
	v := &viewerState{
		conn:    c,
		ch:      make(chan outMsg, viewerQueueDepth),
		quit:    make(chan struct{}),
		waiting: true,
	}
	h.mu.Lock()
	if h.stopped {
		// Racing hub.stop(): nothing will ever stop a viewer attached
		// now, so refuse it instead of leaking its sender goroutine.
		h.mu.Unlock()
		c.Close()
		return
	}
	if h.videoSeq != nil {
		v.enqueue(outMsg{typeID: rtmp.TypeVideo, payload: h.videoSeq})
	}
	if h.audioSeq != nil {
		v.enqueue(outMsg{typeID: rtmp.TypeAudio, payload: h.audioSeq})
	}
	h.viewers = append(h.viewers, v)
	h.mu.Unlock()
	go v.run()
}

func (h *hub) removeViewer(c *rtmp.ServerConn) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, v := range h.viewers {
		if v.conn == c {
			v.stop()
			h.viewers = append(h.viewers[:i], h.viewers[i+1:]...)
			return
		}
	}
}

// ViewerCount reports attached RTMP viewers (tests).
func (h *hub) ViewerCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.viewers)
}

// onMedia fans publisher media out to viewers and the HLS pipeline.
func (h *hub) onMedia(msg rtmp.Message) {
	h.mu.Lock()
	// Cache sequence headers for late joiners.
	isVideoKey := false
	var vt flv.VideoTagData
	if msg.TypeID == rtmp.TypeVideo {
		if parsed, err := flv.ParseVideoTagData(msg.Payload); err == nil {
			vt = parsed
			if vt.PacketType == flv.AVCSeqHeader {
				h.videoSeq = msg.Payload
			}
			isVideoKey = vt.FrameType == flv.VideoKeyFrame && vt.PacketType == flv.AVCNALU
		}
	} else if msg.TypeID == rtmp.TypeAudio {
		if parsed, err := flv.ParseAudioTagData(msg.Payload); err == nil && parsed.PacketType == flv.AACSeqHeader {
			h.audioSeq = msg.Payload
		}
	}
	viewers := append([]*viewerState(nil), h.viewers...)
	videoSeq, audioSeq := h.videoSeq, h.audioSeq
	seg := h.seg
	h.mu.Unlock()

	// The FLV tag header was parsed once above; fan-out is non-blocking:
	// each viewer has its own bounded queue and sender goroutine, so a
	// stalled socket penalizes only that viewer, never the broadcast.
	out := outMsg{typeID: msg.TypeID, timestamp: msg.Timestamp, payload: msg.Payload}
	for _, v := range viewers {
		if v.waiting {
			if !isVideoKey {
				continue
			}
			if v.needSeq {
				// Drops may have evicted the queued sequence headers; the
				// stream is undecodable without them, so re-send before
				// the keyframe that restarts playback.
				if videoSeq != nil {
					v.enqueue(outMsg{typeID: rtmp.TypeVideo, payload: videoSeq})
				}
				if audioSeq != nil {
					v.enqueue(outMsg{typeID: rtmp.TypeAudio, payload: audioSeq})
				}
				v.needSeq = false
			}
			v.waiting = false
		}
		if v.enqueue(out) {
			v.dropped++
			// A dropped message may have been video (or the sequence
			// headers), leaving the decoder mid-GOP: hold this viewer
			// until the next keyframe and refresh its headers there.
			v.waiting = true
			v.needSeq = true
			if v.dropped >= viewerMaxDrops {
				v.conn.Close() // hopeless consumer: disconnect
			}
		}
	}

	if seg != nil {
		h.feedSegmenter(seg, msg, vt)
	}
}

// feedSegmenter repackages FLV tags into the MPEG-TS segmenter — the
// "transcode, repackage and deliver to Fastly" step the paper hypothesises
// for popular broadcasts.
func (h *hub) feedSegmenter(seg *hls.Segmenter, msg rtmp.Message, vt flv.VideoTagData) {
	now := time.Now()
	switch msg.TypeID {
	case rtmp.TypeVideo:
		if vt.PacketType != flv.AVCNALU {
			return
		}
		units, err := avc.ParseAVCC(vt.Data)
		if err != nil {
			return
		}
		dts := time.Duration(msg.Timestamp) * time.Millisecond
		pts := dts + time.Duration(vt.CompositionTime)*time.Millisecond
		seg.WriteVideo(now, pts, dts, vt.FrameType == flv.VideoKeyFrame, avc.MarshalAnnexB(units))
	case rtmp.TypeAudio:
		at, err := flv.ParseAudioTagData(msg.Payload)
		if err != nil || at.PacketType != flv.AACRaw {
			return
		}
		pts := time.Duration(msg.Timestamp) * time.Millisecond
		seg.WriteAudio(now, pts, at.Data)
	}
}

// enableHLS attaches a segmenter and registers the broadcast with every
// CDN POP (idempotent).
func (h *hub) enableHLS() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.seg != nil {
		return nil
	}
	h.seg = hls.NewSegmenter(h.svc.cfg.SegmentTarget, hls.DefaultWindowSize)
	for _, pop := range h.svc.cdn {
		pop.register(h.b.ID, h.seg)
	}
	return nil
}

// Segmenter exposes the HLS pipeline (tests and analysis).
func (h *hub) Segmenter() *hls.Segmenter {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.seg
}

// stop tears the pipeline down.
func (h *hub) stop() {
	h.mu.Lock()
	if h.stopped {
		h.mu.Unlock()
		return
	}
	h.stopped = true
	close(h.stopCh)
	seg := h.seg
	viewers := append([]*viewerState(nil), h.viewers...)
	h.mu.Unlock()
	for _, v := range viewers {
		v.stop()
	}
	if seg != nil {
		seg.Finish(time.Now())
	}
	h.svc.Chat.CloseRoom(h.b.ID)
}
