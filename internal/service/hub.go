package service

import (
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"periscope/internal/aac"
	"periscope/internal/avc"
	"periscope/internal/broadcastmodel"
	"periscope/internal/flv"
	"periscope/internal/hls"
	"periscope/internal/media"
	"periscope/internal/rtmp"
)

// ingestServer is one regional RTMP server of the "vidman" fleet.
type ingestServer struct {
	svc    *Service
	region string
	srv    *rtmp.Server
}

func newIngestServer(svc *Service, region string) (*ingestServer, error) {
	ing := &ingestServer{svc: svc, region: region}
	srv, err := rtmp.ListenAndServe("127.0.0.1:0", ing)
	if err != nil {
		return nil, err
	}
	srv.Name = region
	ing.srv = srv
	return ing, nil
}

// OnConnect accepts every app.
func (ing *ingestServer) OnConnect(c *rtmp.ServerConn, app string) error { return nil }

// OnPlay attaches a viewer to the broadcast's hub.
func (ing *ingestServer) OnPlay(c *rtmp.ServerConn, name string) error {
	h := ing.svc.hubFor(name)
	if h == nil {
		return fmt.Errorf("service: no live broadcast %q", name)
	}
	h.addViewer(c)
	return nil
}

// OnPublish registers the broadcaster connection.
func (ing *ingestServer) OnPublish(c *rtmp.ServerConn, name string) error { return nil }

// OnMedia routes publisher media into the hub pipeline. The hub takes
// ownership of the pooled payload; without a hub it goes straight back to
// the pool.
func (ing *ingestServer) OnMedia(c *rtmp.ServerConn, msg rtmp.Message) {
	if h := ing.svc.hubFor(c.StreamName); h != nil {
		h.onMedia(msg)
	} else {
		rtmp.RecycleMessagePayload(msg.Payload)
	}
}

// OnClose detaches viewers.
func (ing *ingestServer) OnClose(c *rtmp.ServerConn) {
	if c.Playing {
		if h := ing.svc.hubFor(c.StreamName); h != nil {
			h.removeViewer(c)
		}
	}
}

// hubFor looks up a live pipeline. It runs once per media message, so it
// takes only the read side of the service lock: media routing never waits
// on control-plane writes (hub creation, shutdown).
func (s *Service) hubFor(id string) *hub {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.hubs[id]
}

// ensureHub starts the broadcast pipeline on first access.
func (s *Service) ensureHub(b *broadcastmodel.Broadcast) (*hub, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return nil, fmt.Errorf("service: closed")
	}
	if h, ok := s.hubs[b.ID]; ok {
		return h, nil
	}
	h := newHub(s, b)
	s.hubs[b.ID] = h
	if err := h.startBroadcaster(); err != nil {
		delete(s.hubs, b.ID)
		h.stop()
		return nil, err
	}
	return h, nil
}

// viewerQueueDepth bounds each viewer's async send queue. At ~30 media
// messages per second this is several seconds of backlog.
const viewerQueueDepth = 256

// viewerMaxDrops disconnects a viewer that the drop-oldest policy has had
// to penalize this many times — it is not keeping up at all.
const viewerMaxDrops = 4096

// shardQueueDepth bounds each fan-out shard's descriptor queue. Shard
// workers never block (viewer enqueue is drop-oldest), so the queue only
// absorbs scheduling jitter between the publisher and the workers.
const shardQueueDepth = 256

// feedQueueDepth bounds the HLS feed queue. The feed must not drop (TS
// continuity), so the publisher blocks if the muxer falls this far behind.
const feedQueueDepth = 256

// maxFanoutShards caps the per-hub worker count; past this, per-shard
// batches are large enough that more workers only add wakeup overhead.
const maxFanoutShards = 16

// fanoutShardCount picks K for a production hub: one worker per core.
func fanoutShardCount() int {
	k := runtime.GOMAXPROCS(0)
	if k < 1 {
		k = 1
	}
	if k > maxFanoutShards {
		k = maxFanoutShards
	}
	return k
}

// outMsg is one queued media message for a viewer. ref is nil for
// hub-owned buffers (cached sequence headers); otherwise the queue slot
// holds one reference, dropped via release.
type outMsg struct {
	typeID    uint8
	timestamp uint32
	payload   []byte
	ref       *rtmp.SharedPayload
}

func (m outMsg) release() {
	if m.ref != nil {
		m.ref.Release()
	}
}

// viewerState tracks one attached RTMP viewer. Media is enqueued on a
// bounded channel and written by a dedicated goroutine, so a slow or
// stalled viewer socket never blocks the shard's fan-out loop.
type viewerState struct {
	conn  *rtmp.ServerConn
	shard *fanoutShard
	ch    chan outMsg
	quit  chan struct{}
	once  sync.Once
	// waiting is true until the next keyframe; streams always start
	// decodable, which costs up to a GOP of join delay, as real relays do.
	// It is owned by the shard's delivery path (guarded by shard.mu).
	waiting bool
	// needSeq is set when the drop-oldest policy may have evicted the
	// queued sequence headers; they are re-sent at the next resync.
	needSeq bool
	// dropped counts messages discarded by the drop-oldest policy.
	dropped int
}

// enqueue offers a message to the viewer's queue without ever blocking.
// When the queue is full the oldest entry is dropped (and its payload
// reference released) to make room; it reports whether anything was
// dropped. If the message still cannot be queued, its reference is
// released here, so the caller's handoff is unconditional.
func (v *viewerState) enqueue(m outMsg) bool {
	select {
	case v.ch <- m:
		return false
	default:
	}
	select {
	case old := <-v.ch:
		old.release()
	default:
	}
	select {
	case v.ch <- m:
	default:
		m.release()
	}
	return true
}

// stop wakes the sender goroutine for shutdown; it is idempotent.
func (v *viewerState) stop() {
	v.once.Do(func() { close(v.quit) })
}

// drain releases every payload reference still sitting in the queue. It
// is called after the viewer can no longer be enqueued to (sender exit,
// removal from its shard), and is safe to run concurrently with a late
// consumer.
func (v *viewerState) drain() {
	for {
		select {
		case m := <-v.ch:
			m.release()
		default:
			return
		}
	}
}

// run drains the queue onto the viewer's connection. A write error closes
// the connection; the viewer's read loop then triggers OnClose and the
// hub removes it.
func (v *viewerState) run() {
	defer v.drain()
	for {
		select {
		case <-v.quit:
			return
		case m := <-v.ch:
			var err error
			switch m.typeID {
			case rtmp.TypeVideo:
				err = v.conn.SendVideo(m.timestamp, m.payload)
			case rtmp.TypeAudio:
				err = v.conn.SendAudio(m.timestamp, m.payload)
			}
			m.release()
			if err != nil {
				v.conn.Close()
				return
			}
		}
	}
}

// shardMsg is the per-shard fan-out descriptor: the publisher parses the
// FLV tag header once and publishes one of these to every shard instead
// of touching any viewer itself.
type shardMsg struct {
	typeID     uint8
	timestamp  uint32
	isVideoKey bool
	sp         *rtmp.SharedPayload
}

// fanoutShard owns a disjoint subset of a hub's viewers. In sharded mode
// a dedicated worker delivers descriptors from ch, so K shards spread the
// per-viewer enqueue work across K cores; in serial mode (baseline,
// deterministic tests) deliver runs inline on the publisher goroutine.
// Viewer resync state (waiting/needSeq/dropped) is only touched under mu
// by whichever goroutine is delivering, so it needs no extra locking.
type fanoutShard struct {
	h    *hub
	ch   chan shardMsg
	quit chan struct{}
	// nviewers mirrors len(viewers) so the publisher can skip empty
	// shards without taking mu: most simulated broadcasts have 0-1
	// viewers, and an idle hub must not pay K retains and worker wakeups
	// per message. A viewer attaching in the skip window only misses
	// messages it would have skipped anyway (it waits for a keyframe).
	nviewers atomic.Int32

	mu      sync.Mutex
	viewers []*viewerState
	stopped bool
}

// attach registers v and queues the current sequence headers so they
// always precede media. It reports false when the shard has stopped.
func (sh *fanoutShard) attach(v *viewerState) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.stopped {
		return false
	}
	if hd := sh.h.seqHdrs.Load(); hd != nil {
		if hd.video != nil {
			v.enqueue(outMsg{typeID: rtmp.TypeVideo, payload: hd.video})
		}
		if hd.audio != nil {
			v.enqueue(outMsg{typeID: rtmp.TypeAudio, payload: hd.audio})
		}
	}
	sh.viewers = append(sh.viewers, v)
	sh.nviewers.Store(int32(len(sh.viewers)))
	return true
}

// remove detaches v; afterwards no delivery can enqueue to it, so the
// caller may drain its queue.
func (sh *fanoutShard) remove(v *viewerState) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i, w := range sh.viewers {
		if w == v {
			last := len(sh.viewers) - 1
			sh.viewers[i] = sh.viewers[last]
			sh.viewers[last] = nil
			sh.viewers = sh.viewers[:last]
			sh.nviewers.Store(int32(len(sh.viewers)))
			return
		}
	}
}

// publish hands one descriptor (and one payload reference) to the shard
// worker. After shutdown the reference is dropped instead. A send that
// races shutdown can strand a reference in the channel; the buffer is
// then reclaimed by GC rather than the pool, which is harmless.
func (sh *fanoutShard) publish(m shardMsg) {
	select {
	case sh.ch <- m:
	case <-sh.quit:
		m.sp.Release()
	}
}

// run is the shard worker loop.
func (sh *fanoutShard) run() {
	for {
		select {
		case <-sh.quit:
			sh.drainCh()
			return
		case m := <-sh.ch:
			sh.deliver(m)
			m.sp.Release()
		}
	}
}

func (sh *fanoutShard) drainCh() {
	for {
		select {
		case m := <-sh.ch:
			m.sp.Release()
		default:
			return
		}
	}
}

// deliver fans one message out to this shard's viewers. The caller keeps
// its payload reference; deliver takes one per viewer queue.
func (sh *fanoutShard) deliver(m shardMsg) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i := 0; i < len(sh.viewers); i++ {
		v := sh.viewers[i]
		if v.waiting {
			if !m.isVideoKey {
				continue
			}
			if v.needSeq {
				// Drops may have evicted the queued sequence headers; the
				// stream is undecodable without them, so re-send before
				// the keyframe that restarts playback.
				if hd := sh.h.seqHdrs.Load(); hd != nil {
					if hd.video != nil {
						v.enqueue(outMsg{typeID: rtmp.TypeVideo, payload: hd.video})
					}
					if hd.audio != nil {
						v.enqueue(outMsg{typeID: rtmp.TypeAudio, payload: hd.audio})
					}
				}
				v.needSeq = false
				// Count only drop-induced resyncs (needSeq is set by the
				// drop path), not every viewer's initial join sync — the
				// metric reads as drop-recovery churn in the snapshot.
				sh.h.stats.resyncs.Add(1)
			}
			v.waiting = false
		}
		m.sp.Retain()
		if v.enqueue(outMsg{typeID: m.typeID, timestamp: m.timestamp, payload: m.sp.Bytes(), ref: m.sp}) {
			v.dropped++
			sh.h.stats.drops.Add(1)
			// A dropped message may have been video (or the sequence
			// headers), leaving the decoder mid-GOP: hold this viewer
			// until the next keyframe and refresh its headers there.
			v.waiting = true
			v.needSeq = true
			if v.dropped >= viewerMaxDrops {
				// Hopeless consumer: disconnect exactly once and remove it
				// from the shard so no later message can close it again.
				last := len(sh.viewers) - 1
				sh.viewers[i] = sh.viewers[last]
				sh.viewers[last] = nil
				sh.viewers = sh.viewers[:last]
				sh.nviewers.Store(int32(len(sh.viewers)))
				i--
				v.conn.Close()
				v.stop()
				v.drain()
				sh.h.forget(v.conn)
				sh.h.stats.hopeless.Add(1)
			}
		}
	}
}

// stopShard detaches and stops every viewer, then stops the worker.
func (sh *fanoutShard) stopShard() {
	sh.mu.Lock()
	sh.stopped = true
	viewers := sh.viewers
	sh.viewers = nil
	sh.nviewers.Store(0)
	sh.mu.Unlock()
	close(sh.quit)
	for _, v := range viewers {
		v.stop()
		v.drain()
	}
}

// seqHeaders is an immutable snapshot of the cached FLV sequence headers,
// published on the hub so shard workers can resync viewers without taking
// the hub lock. The buffers are hub-owned copies, never pooled.
type seqHeaders struct {
	video []byte // AVC sequence header tag data
	audio []byte // AAC sequence header tag data
}

// feedMsg carries one media message (and one payload reference) to the
// HLS feed worker. vt is the tag header parsed by the publisher; its Data
// points into the shared payload.
type feedMsg struct {
	typeID    uint8
	timestamp uint32
	vt        flv.VideoTagData
	sp        *rtmp.SharedPayload
}

// hlsFeed repackages media into the segmenter on its own goroutine, so TS
// muxing cost never rides the publisher's read loop.
type hlsFeed struct {
	h    *hub
	ch   chan feedMsg
	quit chan struct{}
}

// publish hands one message to the feed worker, blocking if the muxer is
// behind: segments must not have holes, so there is no drop policy here.
func (f *hlsFeed) publish(m feedMsg) {
	select {
	case f.ch <- m:
	case <-f.quit:
		m.sp.Release()
	}
}

func (f *hlsFeed) run() {
	for {
		select {
		case <-f.quit:
			f.drainCh()
			return
		case m := <-f.ch:
			if seg := f.h.seg.Load(); seg != nil {
				feedSegmenter(seg, m.typeID, m.timestamp, m.sp.Bytes(), m.vt)
				f.h.maybeWarmAfterFirstSegment(seg)
			}
			m.sp.Release()
		}
	}
}

func (f *hlsFeed) drainCh() {
	for {
		select {
		case m := <-f.ch:
			m.sp.Release()
		default:
			return
		}
	}
}

// hub is the per-broadcast distribution pipeline: the publisher's read
// loop parses each message once and publishes a descriptor to K fan-out
// shards (and the HLS feed), instead of walking every viewer inline.
type hub struct {
	svc *Service
	b   *broadcastmodel.Broadcast

	shards []*fanoutShard
	// serial delivers inline on the publisher goroutine — the
	// pre-sharding baseline, kept for benchmarks and deterministic tests.
	serial bool

	seqHdrs atomic.Pointer[seqHeaders]
	seg     atomic.Pointer[hls.Segmenter]
	feed    atomic.Pointer[hlsFeed]
	// warmedWindow flips once the first HLS segment exists and the cluster
	// anchors have been re-warmed: the promotion-time warm-up ran against
	// an empty window, so there was nothing to prefetch yet.
	warmedWindow atomic.Bool

	// stats are the shard-level delivery counters (drops, resyncs,
	// hopeless disconnects), folded into the service aggregate when the
	// broadcast ends.
	stats deliveryCounters

	mu      sync.Mutex
	byConn  map[*rtmp.ServerConn]*viewerState
	next    int // round-robin attach cursor
	stopCh  chan struct{}
	stopped bool
	pub     *rtmp.Client
	enc     *media.Encoder
}

func newHub(s *Service, b *broadcastmodel.Broadcast) *hub {
	return newFanoutHub(s, b, fanoutShardCount(), false)
}

// newFanoutHub builds a hub with an explicit shard count; serial mode
// skips the workers and delivers synchronously.
func newFanoutHub(s *Service, b *broadcastmodel.Broadcast, shards int, serial bool) *hub {
	if shards < 1 {
		shards = 1
	}
	h := &hub{
		svc:    s,
		b:      b,
		serial: serial,
		byConn: map[*rtmp.ServerConn]*viewerState{},
		stopCh: make(chan struct{}),
	}
	for i := 0; i < shards; i++ {
		sh := &fanoutShard{h: h, ch: make(chan shardMsg, shardQueueDepth), quit: make(chan struct{})}
		h.shards = append(h.shards, sh)
		if !serial {
			go sh.run()
		}
	}
	return h
}

// startBroadcaster dials the regional ingest server and begins pushing the
// synthetic stream in real time.
func (h *hub) startBroadcaster() error {
	ing, ok := h.svc.ingest[h.b.Region]
	if !ok {
		return fmt.Errorf("service: region %q has no ingest", h.b.Region)
	}
	nc, err := net.Dial("tcp", ing.srv.Addr().String())
	if err != nil {
		return err
	}
	cli, err := rtmp.NewClientConn(nc, "live", "rtmp://vidman-"+h.b.Region+".periscope.tv:80/live")
	if err != nil {
		nc.Close()
		return err
	}
	if err := cli.Publish(h.b.ID); err != nil {
		cli.Close()
		return err
	}
	h.pub = cli

	rng := rand.New(rand.NewSource(h.b.Seed))
	cfg := media.RandomEncoderConfig(rng)
	cfg.EmitPayload = true
	cfg.SEIPeriod = 500 * time.Millisecond
	enc := media.NewEncoder(cfg, time.Now())
	h.enc = enc

	go h.produce(cli, enc, rng)
	return nil
}

// produce runs the broadcaster: FLV sequence headers, then paced AV tags.
func (h *hub) produce(cli *rtmp.Client, enc *media.Encoder, rng *rand.Rand) {
	defer cli.Close()
	// Sequence headers first.
	acfg := aac.DefaultConfig()
	if rng.Intn(2) == 1 {
		acfg.Bitrate = 64000 // paper: ~32 or 64 kbps VBR
	}
	videoSeq := flv.VideoTagData{
		FrameType:  flv.VideoKeyFrame,
		PacketType: flv.AVCSeqHeader,
		Data:       flv.DecoderConfig(enc.SPS(), enc.PPS()),
	}.Marshal()
	audioSeq := flv.AudioTagData{PacketType: flv.AACSeqHeader, Data: acfg.AudioSpecificConfig()}.Marshal()
	h.seqHdrs.Store(&seqHeaders{video: videoSeq, audio: audioSeq})
	if err := cli.WriteVideo(0, videoSeq); err != nil {
		return
	}
	if err := cli.WriteAudio(0, audioSeq); err != nil {
		return
	}

	sizer := aac.NewFrameSizer(acfg, rng.Int63())
	start := time.Now()
	var audioPTS time.Duration
	for {
		select {
		case <-h.stopCh:
			return
		default:
		}
		f := enc.NextFrame()
		// Pace production to real time.
		if sleep := time.Until(start.Add(f.PTS)); sleep > 0 {
			select {
			case <-h.stopCh:
				return
			case <-time.After(sleep):
			}
		}
		if !f.Dropped {
			frameType := flv.VideoInterFrame
			if f.Keyframe {
				frameType = flv.VideoKeyFrame
			}
			tag := flv.VideoTagData{
				FrameType:       frameType,
				PacketType:      flv.AVCNALU,
				CompositionTime: int32((f.PTS - f.DTS).Milliseconds()),
				Data:            avc.MarshalAVCC(f.NALs),
			}.Marshal()
			if err := cli.WriteVideo(uint32(f.DTS.Milliseconds()), tag); err != nil {
				return
			}
		}
		// Interleave audio frames up to the video position.
		for audioPTS <= f.PTS {
			atag := flv.AudioTagData{PacketType: flv.AACRaw, Data: sizer.NextFrame()}.Marshal()
			if err := cli.WriteAudio(uint32(audioPTS.Milliseconds()), atag); err != nil {
				return
			}
			audioPTS += aac.FrameDuration
		}
	}
}

// addViewer attaches an RTMP viewer to the next shard round-robin; it
// receives the sequence headers immediately and media from the next
// keyframe.
func (h *hub) addViewer(c *rtmp.ServerConn) {
	v := &viewerState{
		conn:    c,
		ch:      make(chan outMsg, viewerQueueDepth),
		quit:    make(chan struct{}),
		waiting: true,
	}
	h.mu.Lock()
	if h.stopped {
		// Racing hub.stop(): nothing will ever stop a viewer attached
		// now, so refuse it instead of leaking its sender goroutine.
		h.mu.Unlock()
		c.Close()
		return
	}
	sh := h.shards[h.next%len(h.shards)]
	h.next++
	v.shard = sh
	h.byConn[c] = v
	h.mu.Unlock()
	if !sh.attach(v) {
		// The shard stopped between the checks; undo the registration.
		h.forget(c)
		c.Close()
		return
	}
	go v.run()
}

// removeViewer detaches c's viewer (OnClose). It is a no-op when the
// delivery path already removed the viewer as hopeless.
func (h *hub) removeViewer(c *rtmp.ServerConn) {
	h.mu.Lock()
	v := h.byConn[c]
	delete(h.byConn, c)
	h.mu.Unlock()
	if v == nil {
		return
	}
	v.shard.remove(v)
	v.stop()
	// Nothing can enqueue after remove, so the queue drains exactly once
	// here (the sender goroutine may race a last consume — both release).
	v.drain()
}

// forget drops the conn→viewer registration without touching the shard
// (used by the delivery path, which edits its own viewer list).
func (h *hub) forget(c *rtmp.ServerConn) {
	h.mu.Lock()
	delete(h.byConn, c)
	h.mu.Unlock()
}

// ViewerCount reports attached RTMP viewers (tests).
func (h *hub) ViewerCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.byConn)
}

// viewerFor returns the live viewer state for c (tests).
func (h *hub) viewerFor(c *rtmp.ServerConn) *viewerState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.byConn[c]
}

// cacheSeqHeader snapshots a sequence-header tag for late joiners. The
// pooled payload will be recycled after fan-out, so the cache keeps its
// own copy. Only the publisher's read goroutine updates the snapshot.
func (h *hub) cacheSeqHeader(typeID uint8, payload []byte) {
	hd := &seqHeaders{}
	if cur := h.seqHdrs.Load(); cur != nil {
		*hd = *cur
	}
	cp := append([]byte(nil), payload...)
	if typeID == rtmp.TypeVideo {
		hd.video = cp
	} else {
		hd.audio = cp
	}
	h.seqHdrs.Store(hd)
}

// onMedia routes one publisher message: parse the FLV tag header once,
// wrap the pooled payload in a refcount, publish a descriptor to every
// shard and the HLS feed, then drop the caller's reference. The payload
// returns to the chunk-layer pool when the last viewer queue drains.
func (h *hub) onMedia(msg rtmp.Message) {
	isVideoKey := false
	var vt flv.VideoTagData
	switch msg.TypeID {
	case rtmp.TypeVideo:
		if parsed, err := flv.ParseVideoTagData(msg.Payload); err == nil {
			vt = parsed
			if vt.PacketType == flv.AVCSeqHeader {
				h.cacheSeqHeader(rtmp.TypeVideo, msg.Payload)
			}
			isVideoKey = vt.FrameType == flv.VideoKeyFrame && vt.PacketType == flv.AVCNALU
		}
	case rtmp.TypeAudio:
		if parsed, err := flv.ParseAudioTagData(msg.Payload); err == nil && parsed.PacketType == flv.AACSeqHeader {
			h.cacheSeqHeader(rtmp.TypeAudio, msg.Payload)
		}
	}

	sp := rtmp.SharePayload(msg.Payload)
	m := shardMsg{typeID: msg.TypeID, timestamp: msg.Timestamp, isVideoKey: isVideoKey, sp: sp}
	for _, sh := range h.shards {
		if sh.nviewers.Load() == 0 {
			continue
		}
		if h.serial {
			sh.deliver(m)
		} else {
			sp.Retain()
			sh.publish(m)
		}
	}
	if seg := h.seg.Load(); seg != nil {
		if f := h.feed.Load(); f != nil {
			sp.Retain()
			f.publish(feedMsg{typeID: msg.TypeID, timestamp: msg.Timestamp, vt: vt, sp: sp})
		} else {
			feedSegmenter(seg, msg.TypeID, msg.Timestamp, msg.Payload, vt)
			h.maybeWarmAfterFirstSegment(seg)
		}
	}
	sp.Release()
}

// maybeWarmAfterFirstSegment re-warms the cluster anchors once the
// segmenter has cut its first segment. The warm-up scheduled at promotion
// fetched an empty playlist, so the prefetch that actually populates the
// anchors — and lets their cluster followers peer-fill instead of hitting
// the origin — has to run again when there is a window to prefetch. If an
// anchor's fill queue rejects the job, the flag reverts so a later media
// message retries instead of losing the re-warm for good.
func (h *hub) maybeWarmAfterFirstSegment(seg *hls.Segmenter) {
	if h.warmedWindow.Load() || seg.SegmentCount() == 0 {
		return
	}
	if !h.warmedWindow.CompareAndSwap(false, true) {
		return
	}
	scheduled := true
	for _, pop := range h.svc.cdn {
		if pop.isClusterAnchor() && !pop.warm(h.b.ID) {
			scheduled = false
		}
	}
	if !scheduled {
		h.warmedWindow.Store(false)
	}
}

// feedSegmenter repackages FLV tags into the MPEG-TS segmenter — the
// "transcode, repackage and deliver to Fastly" step the paper hypothesises
// for popular broadcasts. The segmenter copies into TS packets before
// returning, so the caller may release the payload afterwards.
func feedSegmenter(seg *hls.Segmenter, typeID uint8, timestamp uint32, payload []byte, vt flv.VideoTagData) {
	now := time.Now()
	switch typeID {
	case rtmp.TypeVideo:
		if vt.PacketType != flv.AVCNALU {
			return
		}
		units, err := avc.ParseAVCC(vt.Data)
		if err != nil {
			return
		}
		dts := time.Duration(timestamp) * time.Millisecond
		pts := dts + time.Duration(vt.CompositionTime)*time.Millisecond
		seg.WriteVideo(now, pts, dts, vt.FrameType == flv.VideoKeyFrame, avc.MarshalAnnexB(units))
	case rtmp.TypeAudio:
		at, err := flv.ParseAudioTagData(payload)
		if err != nil || at.PacketType != flv.AACRaw {
			return
		}
		pts := time.Duration(timestamp) * time.Millisecond
		seg.WriteAudio(now, pts, at.Data)
	}
}

// enableHLS attaches a segmenter (with its feed worker), mounts it at the
// CDN origin tier, and registers an edge replica with every POP
// (idempotent).
func (h *hub) enableHLS() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.seg.Load() != nil {
		return nil
	}
	if h.stopped {
		return fmt.Errorf("service: broadcast %s ended", h.b.ID)
	}
	seg := hls.NewSegmenter(h.svc.cfg.SegmentTarget, hls.DefaultWindowSize)
	h.svc.origin.register(h.b.ID, seg)
	for _, pop := range h.svc.cdn {
		pop.register(h.b.ID, seg)
		// Promotion warm-up: cluster anchors prefetch the live window in
		// the background so the first viewer does not eat a cold-cache miss
		// storm. Followers stay cold on purpose — their first fill probes
		// the warm anchor peer, keeping promotion origin egress at
		// O(clusters) instead of every POP warming from origin at once.
		if pop.isClusterAnchor() {
			pop.warm(h.b.ID)
		}
	}
	if !h.serial {
		f := &hlsFeed{h: h, ch: make(chan feedMsg, feedQueueDepth), quit: make(chan struct{})}
		// Publish the feed before the segmenter: onMedia loads them in the
		// opposite order, so a visible segmenter implies a visible feed.
		h.feed.Store(f)
		go f.run()
	}
	h.seg.Store(seg)
	return nil
}

// Segmenter exposes the HLS pipeline (tests and analysis).
func (h *hub) Segmenter() *hls.Segmenter {
	return h.seg.Load()
}

// stop tears the pipeline down: publisher, shards (stopping and draining
// every viewer), HLS feed, segmenter. The chat room is NOT closed here —
// Service.EndBroadcast closes it after the CDN linger, so members can
// keep chatting while HLS viewers drain the final window.
func (h *hub) stop() {
	h.mu.Lock()
	if h.stopped {
		h.mu.Unlock()
		return
	}
	h.stopped = true
	close(h.stopCh)
	h.mu.Unlock()
	for _, sh := range h.shards {
		sh.stopShard()
	}
	if f := h.feed.Load(); f != nil {
		close(f.quit)
	}
	if seg := h.seg.Load(); seg != nil {
		seg.Finish(time.Now())
	}
}
