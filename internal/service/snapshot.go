package service

import (
	"sync/atomic"
	"time"

	"periscope/internal/chat"
)

// deliveryCounters are the shard-level fan-out metrics of one hub: how
// often the drop-oldest policy fired, how many keyframe resyncs it forced,
// and how many hopeless viewers were disconnected.
type deliveryCounters struct {
	drops    atomic.Int64
	resyncs  atomic.Int64
	hopeless atomic.Int64
}

// add accumulates other into c (used when an ended hub's totals fold into
// the service-lifetime aggregate).
func (c *deliveryCounters) add(other *deliveryCounters) {
	c.drops.Add(other.drops.Load())
	c.resyncs.Add(other.resyncs.Load())
	c.hopeless.Add(other.hopeless.Load())
}

// DeliverySnapshot aggregates the RTMP fan-out plane across all hubs that
// have existed (live hubs plus broadcasts already ended).
type DeliverySnapshot struct {
	// LiveHubs is the number of running broadcast pipelines; Viewers the
	// currently attached RTMP viewers across them.
	LiveHubs int
	Viewers  int
	// Drops counts viewer-queue messages discarded by the drop-oldest
	// policy; Resyncs the keyframe (re)syncs the delivery path performed;
	// HopelessDisconnects the viewers evicted for falling ≥4096 drops
	// behind.
	Drops, Resyncs, HopelessDisconnects int64
}

// OriginSnapshot is the origin tier's view of CDN fill traffic.
type OriginSnapshot struct {
	// Region is where the origin tier is placed; POP→origin RTTs derive
	// from it.
	Region string
	// Broadcasts is the number of registered live origins. Replays counts
	// replay (VOD) mounts, which persist by design after their broadcast
	// ends and are therefore tracked apart from the live set.
	Broadcasts int
	Replays    int
	// Requests/Bytes count everything served to the POPs; the split
	// distinguishes playlist revalidations from segment fills.
	Requests, Bytes                   int64
	PlaylistRequests, SegmentRequests int64
}

// POPSnapshot is one edge's aggregated serving and fill metrics.
type POPSnapshot struct {
	Index int
	// Region is the POP's geographic placement; fill-link RTTs and the
	// nearest-peer order derive from it.
	Region string
	// Requests and Bytes count viewer-facing traffic.
	Requests, Bytes int64
	// Broadcasts is the number of registered replicas; CachedSegments the
	// total edge cache occupancy across them.
	Broadcasts, CachedSegments int
	// Fills counts upstream segment fetches (peer or origin), FillBytes
	// their volume, FillErrors the failed ones. SingleFlightHits counts
	// viewer requests that coalesced onto an in-flight fill instead of
	// going upstream.
	Fills, FillBytes, FillErrors, SingleFlightHits int64
	// PeerFills counts segments this POP obtained from a nearer peer
	// instead of the origin (the origin-offload path), PeerFillBytes
	// their volume, PeerMisses the peer probes that came back empty;
	// PeerSkips the probes answered in O(1) by an open peer breaker;
	// OriginFills the fetches that fell through to the origin.
	PeerFills, PeerFillBytes, PeerMisses, PeerSkips, OriginFills int64
	// Health is the POP's steering state ("ok", "degraded", "down");
	// FillErrorRate the windowed fill error rate behind it.
	Health        string
	FillErrorRate float64
	// OriginBreaker is the POP→origin breaker state ("closed", "open",
	// "half-open"); PeerBreakersOpen how many of the POP's peer-link
	// breakers are currently not closed. BreakerTrips/BreakerRejects
	// accumulate trips and fast-rejections across all of the POP's
	// fill-path breakers — cumulative through outage and recovery.
	OriginBreaker    string
	PeerBreakersOpen int
	BreakerTrips     int64
	BreakerRejects   int64
	// FillRetries counts extra upstream attempts spent recovering
	// transient fill failures; NegativeHits requests answered from the
	// negative cache; Reroutes viewers steered away because this
	// (hash-preferred) POP was unhealthy.
	FillRetries, NegativeHits, Reroutes int64
	// PeerRequests counts fill probes arriving from peer POPs, PeerServes
	// the ones answered from cache, PeerBytesOut their volume — this
	// POP's contribution as a fill source for its cluster.
	PeerRequests, PeerServes, PeerBytesOut int64
	// Warmups counts promotion warm-ups scheduled on this POP's replicas.
	Warmups int64
	// FillCapWaits counts demand fills that queued on a broadcast's fill
	// concurrency cap (FillCap, the configured per-broadcast limit): a
	// saturated cap is observable here, not silent.
	FillCapWaits int64
	FillCap      int
	// PlaylistRefreshes counts origin playlist fetches; StaleServes the
	// playlist responses served past the TTL while revalidating
	// (stale-while-revalidate); Evictions the segments aged out of the
	// sliding edge cache; FillQueueDropped the background jobs rejected by
	// the POP's fill queue.
	PlaylistRefreshes, StaleServes, Evictions, FillQueueDropped int64
	// MaxPlaylistAge is the oldest live playlist currently cached at this
	// edge — the POP's worst-case playlist lag at snapshot time.
	MaxPlaylistAge time.Duration
}

// Snapshot is a point-in-time view of the service's delivery plane: the
// RTMP fan-out metrics (PR 3) next to the CDN origin/edge fill metrics
// and the interaction plane (chat/hearts/presence, PR 7).
type Snapshot struct {
	Delivery DeliverySnapshot
	Origin   OriginSnapshot
	POPs     []POPSnapshot
	Chat     chat.Stats
}

// Snapshot collects the service's delivery-plane metrics.
func (s *Service) Snapshot() Snapshot {
	var snap Snapshot

	// One critical section for the fan-out counters: EndBroadcast moves a
	// hub from hubs → ending → endedDelivery under the write lock, so
	// reading all three together keeps the cumulative counters monotonic
	// (no dip while a hub stops, no double count after the fold).
	s.mu.RLock()
	snap.Delivery.LiveHubs = len(s.hubs)
	snap.Delivery.Drops = s.endedDelivery.drops.Load()
	snap.Delivery.Resyncs = s.endedDelivery.resyncs.Load()
	snap.Delivery.HopelessDisconnects = s.endedDelivery.hopeless.Load()
	addHub := func(h *hub) {
		snap.Delivery.Viewers += h.ViewerCount()
		snap.Delivery.Drops += h.stats.drops.Load()
		snap.Delivery.Resyncs += h.stats.resyncs.Load()
		snap.Delivery.HopelessDisconnects += h.stats.hopeless.Load()
	}
	for _, h := range s.hubs {
		addHub(h)
	}
	for h := range s.ending {
		addHub(h)
	}
	s.mu.RUnlock()

	if s.origin != nil {
		live, replays := s.origin.counts()
		snap.Origin = OriginSnapshot{
			Region:           s.originRegion.Name,
			Broadcasts:       live,
			Replays:          replays,
			Requests:         s.origin.Requests.Load(),
			Bytes:            s.origin.Bytes.Load(),
			PlaylistRequests: s.origin.PlaylistRequests.Load(),
			SegmentRequests:  s.origin.SegmentRequests.Load(),
		}
	}
	for _, pop := range s.cdn {
		snap.POPs = append(snap.POPs, pop.stats())
	}
	if s.Chat != nil {
		snap.Chat = s.Chat.Snapshot()
	}
	return snap
}
