package service

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"periscope/internal/broadcastmodel"
	"periscope/internal/flv"
	"periscope/internal/rtmp"
)

// fakeAddr satisfies net.Addr for the in-memory connections below.
type fakeAddr struct{}

func (fakeAddr) Network() string { return "fake" }
func (fakeAddr) String() string  { return "fake" }

// baseConn implements the inert parts of net.Conn.
type baseConn struct{}

func (baseConn) Read(b []byte) (int, error)         { select {} }
func (baseConn) Close() error                       { return nil }
func (baseConn) LocalAddr() net.Addr                { return fakeAddr{} }
func (baseConn) RemoteAddr() net.Addr               { return fakeAddr{} }
func (baseConn) SetDeadline(t time.Time) error      { return nil }
func (baseConn) SetReadDeadline(t time.Time) error  { return nil }
func (baseConn) SetWriteDeadline(t time.Time) error { return nil }

// stallConn blocks every Write until unblocked: a viewer whose TCP window
// has collapsed.
type stallConn struct {
	baseConn
	unblock chan struct{}
}

func (c *stallConn) Write(b []byte) (int, error) {
	<-c.unblock
	return len(b), nil
}

// countConn counts bytes written: a healthy viewer draining instantly.
type countConn struct {
	baseConn
	n atomic.Int64
}

func (c *countConn) Write(b []byte) (int, error) {
	c.n.Add(int64(len(b)))
	return len(b), nil
}

// keyframeTag builds a parseable FLV video keyframe tag of roughly the
// given payload size.
func keyframeTag(size int) []byte {
	return flv.VideoTagData{
		FrameType:  flv.VideoKeyFrame,
		PacketType: flv.AVCNALU,
		Data:       make([]byte, size),
	}.Marshal()
}

func benchHub() *hub {
	return newHub(nil, &broadcastmodel.Broadcast{ID: "bench"})
}

func stopViewers(h *hub) {
	h.mu.Lock()
	viewers := append([]*viewerState(nil), h.viewers...)
	h.mu.Unlock()
	for _, v := range viewers {
		v.stop()
	}
}

// TestSlowViewerDoesNotStallOthers covers the head-of-line requirement: a
// viewer whose connection has stalled completely must not delay delivery
// to the other viewers of the same broadcast.
func TestSlowViewerDoesNotStallOthers(t *testing.T) {
	h := benchHub()
	defer stopViewers(h)

	stalled := &stallConn{unblock: make(chan struct{})}
	defer close(stalled.unblock)
	healthy := &countConn{}
	h.addViewer(&rtmp.ServerConn{Conn: rtmp.NewConn(stalled)})
	h.addViewer(&rtmp.ServerConn{Conn: rtmp.NewConn(healthy)})

	tag := keyframeTag(1024)
	// More messages than the queue holds, so the stalled viewer must hit
	// the drop-oldest policy while the healthy one keeps receiving.
	sent := viewerQueueDepth + 128
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < sent; i++ {
			h.onMedia(rtmp.Message{TypeID: rtmp.TypeVideo, Timestamp: uint32(i * 33), Payload: tag})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("fan-out blocked on the stalled viewer")
	}

	deadline := time.Now().Add(5 * time.Second)
	want := int64(sent) * int64(len(tag)) / 2 // allow chunk overhead slack
	for time.Now().Before(deadline) {
		if healthy.n.Load() >= want {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := healthy.n.Load(); got < want {
		t.Fatalf("healthy viewer received %d bytes, want at least %d", got, want)
	}

	h.mu.Lock()
	stalledDrops := h.viewers[0].dropped
	h.mu.Unlock()
	if stalledDrops == 0 {
		t.Error("stalled viewer never hit the drop-oldest policy")
	}
}

// BenchmarkHubFanout measures fan-out of paced media messages to N
// attached viewers; SetBytes counts the payload delivered per operation
// across all viewers.
func BenchmarkHubFanout(b *testing.B) {
	for _, n := range []int{10, 100, 500} {
		b.Run(fmt.Sprintf("viewers=%d", n), func(b *testing.B) {
			h := benchHub()
			defer stopViewers(h)
			for i := 0; i < n; i++ {
				h.addViewer(&rtmp.ServerConn{Conn: rtmp.NewConn(&countConn{})})
			}
			tag := keyframeTag(4096)
			msg := rtmp.Message{TypeID: rtmp.TypeVideo, Payload: tag}
			b.SetBytes(int64(len(tag)) * int64(n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				msg.Timestamp = uint32(i * 33)
				h.onMedia(msg)
			}
		})
	}
}
