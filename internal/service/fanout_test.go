package service

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"periscope/internal/broadcastmodel"
	"periscope/internal/flv"
	"periscope/internal/rtmp"
)

// fakeAddr satisfies net.Addr for the in-memory connections below.
type fakeAddr struct{}

func (fakeAddr) Network() string { return "fake" }
func (fakeAddr) String() string  { return "fake" }

// baseConn implements the inert parts of net.Conn.
type baseConn struct{}

func (baseConn) Read(b []byte) (int, error)         { select {} }
func (baseConn) Close() error                       { return nil }
func (baseConn) LocalAddr() net.Addr                { return fakeAddr{} }
func (baseConn) RemoteAddr() net.Addr               { return fakeAddr{} }
func (baseConn) SetDeadline(t time.Time) error      { return nil }
func (baseConn) SetReadDeadline(t time.Time) error  { return nil }
func (baseConn) SetWriteDeadline(t time.Time) error { return nil }

// stallConn blocks every Write until unblocked: a viewer whose TCP window
// has collapsed. Close is counted, for the repeated-Close regression.
type stallConn struct {
	baseConn
	unblock chan struct{}
	closes  atomic.Int32
}

func (c *stallConn) Write(b []byte) (int, error) {
	<-c.unblock
	return len(b), nil
}

func (c *stallConn) Close() error {
	c.closes.Add(1)
	return nil
}

// countConn counts bytes written: a healthy viewer draining instantly.
type countConn struct {
	baseConn
	n atomic.Int64
}

func (c *countConn) Write(b []byte) (int, error) {
	c.n.Add(int64(len(b)))
	return len(b), nil
}

// keyframeTag builds a parseable FLV video keyframe tag of roughly the
// given payload size.
func keyframeTag(size int) []byte {
	return flv.VideoTagData{
		FrameType:  flv.VideoKeyFrame,
		PacketType: flv.AVCNALU,
		Data:       make([]byte, size),
	}.Marshal()
}

// interframeTag builds a parseable FLV non-keyframe video tag.
func interframeTag(size int) []byte {
	return flv.VideoTagData{
		FrameType:  flv.VideoInterFrame,
		PacketType: flv.AVCNALU,
		Data:       make([]byte, size),
	}.Marshal()
}

func benchHub() *hub {
	return newHub(nil, &broadcastmodel.Broadcast{ID: "bench"})
}

// pushMedia feeds one tag through the hub the way the ingest read loop
// does: the payload comes from the message pool, because the refcounted
// fan-out recycles it once the last viewer queue drains.
func pushMedia(h *hub, tag []byte, ts uint32) {
	p := rtmp.AcquireMessagePayload(len(tag))
	copy(p, tag)
	h.onMedia(rtmp.Message{TypeID: rtmp.TypeVideo, Timestamp: ts, Payload: p})
}

// TestSlowViewerDoesNotStallOthers covers the head-of-line requirement: a
// viewer whose connection has stalled completely must not delay delivery
// to the other viewers of the same broadcast.
func TestSlowViewerDoesNotStallOthers(t *testing.T) {
	h := benchHub()
	defer h.stop()

	stalled := &stallConn{unblock: make(chan struct{})}
	defer close(stalled.unblock)
	healthy := &countConn{}
	scStalled := &rtmp.ServerConn{Conn: rtmp.NewConn(stalled)}
	h.addViewer(scStalled)
	h.addViewer(&rtmp.ServerConn{Conn: rtmp.NewConn(healthy)})

	tag := keyframeTag(1024)
	// More messages than the queue holds, so the stalled viewer must hit
	// the drop-oldest policy while the healthy one keeps receiving.
	sent := viewerQueueDepth + 128
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < sent; i++ {
			pushMedia(h, tag, uint32(i*33))
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("fan-out blocked on the stalled viewer")
	}

	deadline := time.Now().Add(5 * time.Second)
	want := int64(sent) * int64(len(tag)) / 2 // allow chunk overhead slack
	for time.Now().Before(deadline) {
		if healthy.n.Load() >= want {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := healthy.n.Load(); got < want {
		t.Fatalf("healthy viewer received %d bytes, want at least %d", got, want)
	}

	v := h.viewerFor(scStalled)
	if v == nil {
		t.Fatal("stalled viewer no longer attached")
	}
	v.shard.mu.Lock()
	stalledDrops := v.dropped
	v.shard.mu.Unlock()
	if stalledDrops == 0 {
		t.Error("stalled viewer never hit the drop-oldest policy")
	}
}

// TestHopelessViewerClosedOnce is the regression test for the repeated
// Close() storm: once a viewer crosses viewerMaxDrops it must be closed
// exactly once, its sender stopped, and the viewer removed from the set —
// not re-Closed on every subsequent message until OnClose fires.
func TestHopelessViewerClosedOnce(t *testing.T) {
	// Serial single-shard hub: delivery runs inline, so drop counting is
	// deterministic.
	h := newFanoutHub(nil, &broadcastmodel.Broadcast{ID: "hopeless"}, 1, true)
	defer h.stop()

	stalled := &stallConn{unblock: make(chan struct{})}
	defer close(stalled.unblock)
	sc := &rtmp.ServerConn{Conn: rtmp.NewConn(stalled)}
	h.addViewer(sc)

	tag := keyframeTag(64)
	// The sender takes one message then stalls in Write; the queue fills;
	// every further message then drops one. Push past viewerMaxDrops.
	total := 1 + viewerQueueDepth + viewerMaxDrops + 16
	for i := 0; i < total; i++ {
		pushMedia(h, tag, uint32(i*33))
	}
	if got := stalled.closes.Load(); got != 1 {
		t.Fatalf("hopeless viewer closed %d times, want exactly 1", got)
	}
	if n := h.ViewerCount(); n != 0 {
		t.Fatalf("hopeless viewer still attached (count %d)", n)
	}
	if got := h.stats.hopeless.Load(); got != 1 {
		t.Errorf("hopeless disconnect counter = %d, want 1", got)
	}
	if h.stats.drops.Load() < viewerMaxDrops {
		t.Errorf("drop counter = %d, want ≥ %d", h.stats.drops.Load(), viewerMaxDrops)
	}
	// Old behaviour re-Closed on every later message; these must not.
	for i := 0; i < 32; i++ {
		pushMedia(h, tag, uint32((total+i)*33))
	}
	if got := stalled.closes.Load(); got != 1 {
		t.Fatalf("further media re-closed the removed viewer (%d closes)", got)
	}
}

// TestKeyframeResyncAcrossShards drives the shard delivery path directly
// (serial mode, multiple shards, no sender goroutines) and checks the
// join/resync state machine on every shard: no media before a keyframe,
// and after drops the sequence headers are re-sent at the next keyframe.
func TestKeyframeResyncAcrossShards(t *testing.T) {
	h := newFanoutHub(nil, &broadcastmodel.Broadcast{ID: "resync"}, 4, true)
	defer h.stop()
	h.seqHdrs.Store(&seqHeaders{video: keyframeTag(16), audio: []byte{0xAF, 0x00}})

	// One viewer per shard, attached by hand so no sender consumes the
	// queue and its contents stay observable.
	viewers := make([]*viewerState, len(h.shards))
	for i, sh := range h.shards {
		v := &viewerState{
			conn:    &rtmp.ServerConn{Conn: rtmp.NewConn(&countConn{})},
			shard:   sh,
			ch:      make(chan outMsg, viewerQueueDepth),
			quit:    make(chan struct{}),
			waiting: true,
		}
		if !sh.attach(v) {
			t.Fatal("attach refused")
		}
		viewers[i] = v
	}
	for i, v := range viewers {
		if got := len(v.ch); got != 2 {
			t.Fatalf("shard %d: %d queued after attach, want 2 sequence headers", i, got)
		}
	}

	// An interframe must not reach a waiting viewer on any shard.
	pushMedia(h, interframeTag(64), 33)
	for i, v := range viewers {
		if got := len(v.ch); got != 2 {
			t.Fatalf("shard %d: interframe delivered to waiting viewer (%d queued)", i, got)
		}
	}

	// The next keyframe starts playback on every shard.
	pushMedia(h, keyframeTag(64), 66)
	for i, v := range viewers {
		if got := len(v.ch); got != 3 {
			t.Fatalf("shard %d: keyframe not delivered (%d queued)", i, got)
		}
	}

	// Overflow the queues so drop-oldest kicks in: viewers go back to
	// waiting with needSeq set.
	for i := 0; i < viewerQueueDepth+8; i++ {
		pushMedia(h, interframeTag(64), uint32(99+i*33))
	}
	for i, v := range viewers {
		v.shard.mu.Lock()
		waiting, needSeq, dropped := v.waiting, v.needSeq, v.dropped
		v.shard.mu.Unlock()
		if !waiting || !needSeq || dropped == 0 {
			t.Fatalf("shard %d: want waiting+needSeq after drops, got waiting=%v needSeq=%v dropped=%d",
				i, waiting, needSeq, dropped)
		}
	}

	// A real viewer's sender drains continuously; make room so the resync
	// burst (two headers + keyframe) fits without re-triggering drops.
	for _, v := range viewers {
		for i := 0; i < 8; i++ {
			m := <-v.ch
			m.release()
		}
	}

	// At the next keyframe every shard must resync: headers re-sent, then
	// the keyframe, as the last three queued messages.
	resyncsBefore := h.stats.resyncs.Load()
	pushMedia(h, keyframeTag(64), 9999)
	if got := h.stats.resyncs.Load() - resyncsBefore; got != int64(len(viewers)) {
		t.Errorf("resync counter advanced by %d, want %d", got, len(viewers))
	}
	hd := h.seqHdrs.Load()
	for i, v := range viewers {
		v.shard.mu.Lock()
		waiting, needSeq := v.waiting, v.needSeq
		v.shard.mu.Unlock()
		if waiting || needSeq {
			t.Fatalf("shard %d: viewer did not resync at keyframe", i)
		}
		var last3 []outMsg
		for len(v.ch) > 0 {
			m := <-v.ch
			last3 = append(last3, m)
			if len(last3) > 3 {
				last3 = last3[1:]
			}
			m.release()
		}
		if len(last3) != 3 {
			t.Fatalf("shard %d: queue shorter than resync burst", i)
		}
		if &last3[0].payload[0] != &hd.video[0] || &last3[1].payload[0] != &hd.audio[0] {
			t.Errorf("shard %d: resync did not re-send sequence headers before keyframe", i)
		}
		if last3[2].timestamp != 9999 {
			t.Errorf("shard %d: last queued message is not the resync keyframe", i)
		}
	}
}

// TestViewerChurnDuringShardedFanout hammers concurrent attach/detach
// while a publisher pumps refcounted media through multiple shard
// workers. Run under -race it validates the locking of the shard viewer
// lists and the payload refcount handoffs.
func TestViewerChurnDuringShardedFanout(t *testing.T) {
	h := newFanoutHub(nil, &broadcastmodel.Broadcast{ID: "churn"}, 4, false)
	h.seqHdrs.Store(&seqHeaders{video: keyframeTag(16), audio: []byte{0xAF, 0x00}})

	stop := make(chan struct{})
	var pub sync.WaitGroup
	pub.Add(1)
	go func() {
		defer pub.Done()
		tag := keyframeTag(512)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			pushMedia(h, tag, uint32(i*33))
		}
	}()

	var churn sync.WaitGroup
	for g := 0; g < 4; g++ {
		churn.Add(1)
		go func() {
			defer churn.Done()
			for i := 0; i < 40; i++ {
				c := &rtmp.ServerConn{Conn: rtmp.NewConn(&countConn{})}
				h.addViewer(c)
				time.Sleep(time.Millisecond)
				h.removeViewer(c)
			}
		}()
	}
	churn.Wait()
	close(stop)
	pub.Wait()
	h.stop()
	if n := h.ViewerCount(); n != 0 {
		t.Fatalf("%d viewers leaked after churn", n)
	}
}

// benchFanout drives one hub at n viewers with pool-drawn payloads, the
// relay steady state: every payload is recycled by the refcounted fan-out
// once the last queue drains.
func benchFanout(b *testing.B, h *hub, n int) {
	defer h.stop()
	for i := 0; i < n; i++ {
		h.addViewer(&rtmp.ServerConn{Conn: rtmp.NewConn(&countConn{})})
	}
	tag := keyframeTag(4096)
	b.SetBytes(int64(len(tag)) * int64(n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pushMedia(h, tag, uint32(i*33))
	}
	b.StopTimer()
}

// BenchmarkHubFanout measures the sharded fan-out of paced media messages
// to N attached viewers; SetBytes counts the payload delivered per
// operation across all viewers.
func BenchmarkHubFanout(b *testing.B) {
	for _, n := range []int{10, 100, 1000, 10000} {
		b.Run(fmt.Sprintf("viewers=%d", n), func(b *testing.B) {
			benchFanout(b, benchHub(), n)
		})
	}
}

// BenchmarkHubFanoutSerial is the pre-sharding baseline: one goroutine
// walks every viewer inline. Kept in-tree so the sharded speedup on
// multicore hardware is measurable against it.
func BenchmarkHubFanoutSerial(b *testing.B) {
	for _, n := range []int{10, 100, 1000, 10000} {
		b.Run(fmt.Sprintf("viewers=%d", n), func(b *testing.B) {
			benchFanout(b, newFanoutHub(nil, &broadcastmodel.Broadcast{ID: "bench"}, 1, true), n)
		})
	}
}
