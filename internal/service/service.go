// Package service assembles the Periscope-like backend under measurement:
// the JSON API (internal/api), one RTMP ingest/relay server per world
// region (the "EC2 vidman" machines of §3 — region-nearest to the
// broadcaster), the popularity-triggered HLS pipeline (repackage the RTMP
// stream into MPEG-TS segments at an origin tier and serve them from
// geo-placed CDN POPs, as the paper observed: all HLS streams came from
// two IP addresses — one in San Francisco, one in Europe — while 87 RTMP
// servers were seen), and the WebSocket chat with its avatar store.
//
// The CDN has a geography: each POP lives in a geo.Region, fill paths are
// shaped by links whose RTT derives from great-circle distance, and a
// missing segment fills hierarchically — nearest peer POP first
// (cache-only probes), origin as fallback — so origin egress per cold
// segment is O(clusters), not O(POPs). Promotions warm edge replicas in
// the background, and per-broadcast fill concurrency caps bound a hot
// broadcast's pull on its peers.
//
// The broadcast lifecycle is driven end-to-end by the population: a
// scheduled Broadcast.End fires Service.EndBroadcast through the
// population's end hook (ENDLIST playlists at origin and every POP, a
// linger for draining viewers, then unregistration everywhere), and an
// optional churn loop advances the population in real time.
//
// Broadcasters are synthetic: each watched broadcast gets a broadcaster
// engine that pushes real RTMP (FLV-tagged AVC+AAC from internal/media)
// over loopback into its regional ingest server, where the stream fans out
// to RTMP viewers and, for popular broadcasts, into the segmenter.
package service

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"periscope/internal/api"
	"periscope/internal/broadcastmodel"
	"periscope/internal/chat"
	"periscope/internal/geo"
	"periscope/internal/hls"
)

// Config tunes the assembled service.
type Config struct {
	PopConfig broadcastmodel.Config
	// HLSViewerThreshold is the audience size beyond which a broadcast is
	// served via HLS ("the boundary … is somewhere around 100 viewers").
	HLSViewerThreshold int
	// SegmentTarget is the HLS segment duration target (3.6 s observed).
	SegmentTarget time.Duration
	// CDNPOPs is the number of CDN edge servers (the study saw 2), placed
	// round-robin over the default region order. Ignored when
	// CDNPOPRegions is set.
	CDNPOPs int
	// CDNPOPRegions places one POP per named geo region (repeats allowed:
	// two "us-west" entries are a two-POP cluster). When set it overrides
	// CDNPOPs.
	CDNPOPRegions []string
	// CDNOriginRegion locates the origin tier ("us-east" by default, a
	// stand-in for Periscope's own datacenter); POP→origin link RTTs
	// derive from it.
	CDNOriginRegion string
	// CDNLinkRTTScale scales the geographically derived RTT on every fill
	// link (POP→origin and POP→peer). 0 means the default scale of 1;
	// negative disables modelled latency entirely (tests, benchmarks) —
	// the fill hierarchy is kept either way.
	CDNLinkRTTScale float64
	// CDNLinkBandwidth caps each fill link in bits per second (0 = no
	// cap).
	CDNLinkBandwidth float64
	// CDNFillConcurrency caps one broadcast's concurrent upstream segment
	// fetches per replica (see hls.ReplicaConfig.MaxConcurrentFills);
	// 0 uses hls.DefaultFillConcurrency.
	CDNFillConcurrency int
	// CDNFillTimeout is the overall per-fill budget at each replica
	// (attempts + backoff); 0 uses the hls default of 5 s. Tests and the
	// outage scenario shrink it so failover happens on a player timescale.
	CDNFillTimeout time.Duration
	// CDNFillAttempts is the per-fill retry budget inside the
	// single-flight (see hls.ReplicaConfig.FillAttempts); 0 uses
	// hls.DefaultFillAttempts.
	CDNFillAttempts int
	// CDNBreakerFailures is the consecutive-failure threshold tripping a
	// fill-path circuit breaker (per upstream: origin link and each peer
	// link of every POP); CDNBreakerCooldown how long a tripped breaker
	// stays open before its half-open probe. Zeros use the hls defaults.
	CDNBreakerFailures int
	CDNBreakerCooldown time.Duration
	// CDNUnregisterLinger is how long an ended broadcast stays registered
	// at the origin tier and edge POPs, so viewers mid-stream can fetch
	// the final (ENDLIST) playlist and drain the last window. Zero
	// unregisters immediately.
	CDNUnregisterLinger time.Duration
	// ChurnInterval, when positive, advances the population in real time
	// (one tick per interval), so scheduled broadcast ends fire on their
	// own: the population's Broadcast.End drives Service.EndBroadcast and
	// the CDN churns broadcasts end-to-end. Zero leaves the population
	// static unless the caller advances it (tests drive Pop.Advance with a
	// virtual clock; the scheduled-end hook fires either way).
	ChurnInterval time.Duration
	// APIRateLimit enables 429 responses (requests/second per session).
	APIRateLimit float64
	APIBurst     float64
	Seed         int64
}

// DefaultConfig mirrors the observed service parameters at reduced scale.
func DefaultConfig() Config {
	pc := broadcastmodel.DefaultConfig()
	pc.TargetConcurrent = 300 // wire tier runs small; model tier scales up
	return Config{
		PopConfig:           pc,
		HLSViewerThreshold:  100,
		SegmentTarget:       3600 * time.Millisecond,
		CDNPOPs:             2,
		CDNOriginRegion:     "us-east",
		CDNLinkRTTScale:     1,
		CDNFillConcurrency:  hls.DefaultFillConcurrency,
		CDNUnregisterLinger: 15 * time.Second,
		APIRateLimit:        2,
		APIBurst:            6,
		Seed:                1,
	}
}

// Service is the running backend.
type Service struct {
	cfg Config

	Pop  *broadcastmodel.Population
	API  *api.Server
	Chat *chat.Server

	apiHTTP  *http.Server
	apiLn    net.Listener
	chatHTTP *http.Server
	chatLn   net.Listener

	regions      []geo.Region
	ingest       map[string]*ingestServer // region name -> RTMP ingest
	origin       *originTier              // CDN fill source (one Origin per broadcast)
	originRegion geo.Region               // where the origin tier lives
	cdn          []*cdnPOP

	// churnStop ends the background population-churn loop (ChurnInterval);
	// churnDone is closed when the loop has exited, so Close can wait for
	// any in-flight scheduled-end processing before tearing timers down.
	churnStop chan struct{}
	churnDone chan struct{}

	// endedDelivery accumulates the shard-level fan-out counters of hubs
	// whose broadcasts have ended, so the snapshot stays cumulative.
	endedDelivery deliveryCounters

	// mu guards hubs and done. It is an RWMutex because hubFor runs on
	// every media message: routing takes the read side only, so it never
	// contends with other readers and only waits on the rare control-plane
	// writes (hub creation, shutdown).
	mu   sync.RWMutex
	hubs map[string]*hub // broadcast ID -> live pipeline
	// ending holds hubs removed from hubs but whose delivery counters are
	// not yet folded into endedDelivery (EndBroadcast's stop window), so
	// Snapshot neither misses nor double-counts them.
	ending map[*hub]struct{}
	done   bool

	// timerMu guards the pending CDN unregister timers (broadcast-end
	// linger); a fired timer removes its own entry, Close stops the rest.
	timerMu   sync.Mutex
	endTimers map[*time.Timer]struct{}
}

// Start builds and starts every component on loopback ports.
func Start(cfg Config) (*Service, error) {
	if cfg.HLSViewerThreshold <= 0 {
		cfg.HLSViewerThreshold = 100
	}
	// cfg.CDNPOPs defaulting lives in resolvePOPRegions, its only reader.
	if cfg.CDNOriginRegion == "" {
		cfg.CDNOriginRegion = "us-east"
	}
	s := &Service{
		cfg:     cfg,
		Pop:     broadcastmodel.New(cfg.PopConfig, time.Now()),
		Chat:    chat.NewServer(),
		regions: geo.Regions(),
		ingest:  map[string]*ingestServer{},
		hubs:    map[string]*hub{},
	}

	// Regional RTMP ingest servers.
	for _, r := range s.regions {
		ing, err := newIngestServer(s, r.Name)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("service: starting ingest %s: %w", r.Name, err)
		}
		s.ingest[r.Name] = ing
	}

	// CDN origin tier: the authoritative fill source, placed in a region
	// so POP→origin RTTs have a geography.
	originRegion, ok := geo.RegionByName(s.regions, cfg.CDNOriginRegion)
	if !ok {
		s.Close()
		return nil, fmt.Errorf("service: unknown CDN origin region %q", cfg.CDNOriginRegion)
	}
	s.originRegion = originRegion
	origin, err := newOriginTier()
	if err != nil {
		s.Close()
		return nil, fmt.Errorf("service: starting CDN origin tier: %w", err)
	}
	s.origin = origin

	// CDN POPs ("Fastly" edges), each placed in a geo region; once all
	// exist, wire the fill topology (shaped origin links, nearest-peer
	// candidate lists).
	popRegions, err := resolvePOPRegions(cfg, s.regions)
	if err != nil {
		s.Close()
		return nil, fmt.Errorf("service: %w", err)
	}
	for i, reg := range popRegions {
		pop, err := newCDNPOP(s, i, reg)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("service: starting CDN POP %d: %w", i, err)
		}
		s.cdn = append(s.cdn, pop)
	}
	s.wireCDNTopology()

	// Scheduled broadcast ends drive the real end-of-broadcast path:
	// however the population advances (background churn loop or a test's
	// virtual clock), an expired Broadcast.End tears its pipeline down.
	s.Pop.OnBroadcastEnd(s.onScheduledEnds)
	if cfg.ChurnInterval > 0 {
		s.churnStop = make(chan struct{})
		s.churnDone = make(chan struct{})
		go s.churnLoop(cfg.ChurnInterval)
	}

	// Chat server.
	chatLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.Close()
		return nil, err
	}
	s.chatLn = chatLn
	s.chatHTTP = &http.Server{Handler: s.Chat}
	go s.chatHTTP.Serve(chatLn)

	// API gateway: defaults for the typed-endpoint chain (sharded
	// limiter, ID cap, request deadline) with the service's rate policy.
	scfg := api.DefaultServerConfig()
	scfg.RateLimit = cfg.APIRateLimit
	scfg.Burst = cfg.APIBurst
	scfg.Seed = cfg.Seed
	s.API = api.NewServer(s.Pop, s, scfg)
	apiLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.Close()
		return nil, err
	}
	s.apiLn = apiLn
	s.apiHTTP = &http.Server{Handler: s.API}
	go s.apiHTTP.Serve(apiLn)

	return s, nil
}

// APIBaseURL returns the http:// base of the API server.
func (s *Service) APIBaseURL() string { return "http://" + s.apiLn.Addr().String() }

// ChatBaseURL returns the http:// base of the chat/avatar server.
func (s *Service) ChatBaseURL() string { return "http://" + s.chatLn.Addr().String() }

// RTMPServerNames lists the DNS-style names of the ingest fleet, e.g.
// vidman-eu-west.periscope.tv, with their EC2-style reverse names.
func (s *Service) RTMPServerNames() map[string]string {
	out := map[string]string{}
	for name, ing := range s.ingest {
		addr := ing.srv.Addr().String()
		out["vidman-"+name+".periscope.tv"] = "ec2-" + addr + ".compute.amazonaws.com"
	}
	return out
}

// churnLoop advances the population in real time so scheduled broadcast
// ends fire on their own — the wire tier churns broadcasts end-to-end.
func (s *Service) churnLoop(interval time.Duration) {
	defer close(s.churnDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.churnStop:
			return
		case <-t.C:
			// Real elapsed time maps 1:1 onto virtual time; Advance invokes
			// onScheduledEnds for every broadcast whose End expired.
			s.Pop.Advance(interval)
		}
	}
}

// onScheduledEnds is the population's end listener: any ended broadcast
// with a live pipeline goes through the full EndBroadcast path (segmenter
// finished → ENDLIST at origin and every POP → linger → unregister).
func (s *Service) onScheduledEnds(ended []*broadcastmodel.Broadcast) {
	for _, b := range ended {
		if s.hubFor(b.ID) != nil {
			s.EndBroadcast(b.ID)
		}
	}
}

// CDNTopology describes the wired CDN fill topology, one line per tier
// member: where the origin and each POP live, each POP's modelled origin
// RTT, and the nearest-peer order its fills probe before origin fallback.
func (s *Service) CDNTopology() []string {
	out := []string{fmt.Sprintf("origin @ %s", s.originRegion.Name)}
	for _, p := range s.cdn {
		var b strings.Builder
		fmt.Fprintf(&b, "pop %d @ %s", p.index, p.region.Name)
		if p.originLink != nil {
			fmt.Fprintf(&b, " (origin RTT %v)", p.originLink.RTT.Round(time.Millisecond))
		}
		if len(p.peers) == 0 {
			b.WriteString(" — fills from origin")
		} else {
			b.WriteString(" — fills from")
			for i, pr := range p.peers {
				if i > 0 {
					b.WriteString(",")
				}
				fmt.Fprintf(&b, " pop %d (%v)", pr.pop.index, pr.link.RTT.Round(time.Millisecond))
			}
			b.WriteString(", then origin")
		}
		out = append(out, b.String())
	}
	return out
}

// Close shuts everything down.
func (s *Service) Close() {
	s.mu.Lock()
	wasDone := s.done
	s.done = true
	hubs := make([]*hub, 0, len(s.hubs))
	for _, h := range s.hubs {
		hubs = append(hubs, h)
	}
	s.mu.Unlock()
	if s.churnStop != nil && !wasDone {
		// Stop the churn loop and wait it out: a tick mid-Advance may be
		// inside EndBroadcast, and its linger timer must be armed (and thus
		// stoppable) before the timer teardown below runs.
		close(s.churnStop)
		<-s.churnDone
	}
	s.timerMu.Lock()
	for t := range s.endTimers {
		t.Stop()
	}
	s.endTimers = nil
	s.timerMu.Unlock()
	for _, h := range hubs {
		h.stop()
	}
	for _, ing := range s.ingest {
		ing.srv.Close()
	}
	// POPs drain before the origin tier goes away: an in-flight fill must
	// not lose its upstream mid-drain.
	for _, pop := range s.cdn {
		pop.close()
	}
	if s.origin != nil {
		s.origin.close()
	}
	if s.apiHTTP != nil {
		s.apiHTTP.Close()
	}
	if s.chatHTTP != nil {
		s.chatHTTP.Close()
	}
	// Linger timers are already stopped, so no deferred room close will
	// fire: close every room (and fold its counters) here.
	if s.Chat != nil {
		s.Chat.Close()
	}
}

// EndBroadcast ends a live broadcast's pipeline: the hub stops (finishing
// the segmenter, so origin and edge playlists go final with
// #EXT-X-ENDLIST), its fan-out counters fold into the service aggregate,
// and — after CDNUnregisterLinger, so current viewers can fetch the final
// playlist and drain the last window — the broadcast is unregistered from
// the origin tier and every POP, and its chat room closes (folding its
// interaction counters into the chat server aggregate). Without this,
// ended broadcasts would pin their segmenters in the CDN maps — and their
// chat rooms in the chat server — forever.
func (s *Service) EndBroadcast(id string) {
	s.mu.Lock()
	h := s.hubs[id]
	delete(s.hubs, id)
	if h != nil {
		// Park the hub in the ending set until its counters have settled:
		// Snapshot reads hubs, ending, and endedDelivery under one lock,
		// so the cumulative counters neither dip nor double-count across
		// the stop window.
		if s.ending == nil {
			s.ending = map[*hub]struct{}{}
		}
		s.ending[h] = struct{}{}
	}
	s.mu.Unlock()
	if h == nil {
		return
	}
	h.stop()
	s.mu.Lock()
	s.endedDelivery.add(&h.stats)
	delete(s.ending, h)
	s.mu.Unlock()
	// Chat-room teardown rides the same linger as CDN unregistration, so
	// viewers draining the final window can keep chatting. BeginClose marks
	// the room ending; a relaunch during the linger (AccessVideo reusing
	// the room) clears the mark and the stale deferred close backs off.
	room := s.Chat.BeginClose(id)
	closeChat := func() { s.Chat.CloseRoomIf(id, room) }
	seg := h.Segmenter()
	if seg == nil {
		// HLS never enabled: nothing registered at the CDN, no viewers to
		// drain — the room can close now.
		closeChat()
		return
	}
	// Unregistration is conditional on the ended segmenter: if the
	// broadcast re-goes live during the linger, its re-registration
	// replaces the mounts and this teardown leaves the live one alone.
	unregister := func() {
		s.origin.unregister(id, seg)
		for _, pop := range s.cdn {
			pop.unregister(id, seg)
		}
		closeChat()
	}
	linger := s.cfg.CDNUnregisterLinger
	if linger <= 0 {
		unregister()
		return
	}
	s.timerMu.Lock()
	// Closed-service check inside the timer lock: Close sets done before
	// it clears endTimers (also under timerMu), so either this arming
	// happens first and Close stops the timer, or done is visible here and
	// the broadcast unregisters inline — a linger timer can never outlive
	// the service.
	s.mu.RLock()
	closed := s.done
	s.mu.RUnlock()
	if closed {
		s.timerMu.Unlock()
		unregister()
		return
	}
	if s.endTimers == nil {
		s.endTimers = map[*time.Timer]struct{}{}
	}
	var tm *time.Timer
	tm = time.AfterFunc(linger, func() {
		unregister()
		// Drop our own entry so long-running services with broadcast
		// churn do not accumulate fired timers.
		s.timerMu.Lock()
		delete(s.endTimers, tm)
		s.timerMu.Unlock()
	})
	s.endTimers[tm] = struct{}{}
	s.timerMu.Unlock()
}

// AccessVideo implements api.VideoAccessProvider: it starts the broadcast
// pipeline on demand and applies the protocol-selection policy. Ended
// broadcasts that were made available for replay are served as HLS VOD
// ("Broadcasts can also be made available for replay", §3; replay playback
// is the "video on, not live" scenario of Fig. 7).
func (s *Service) AccessVideo(id string) (api.AccessVideoResponse, error) {
	b, ok := s.Pop.Get(id)
	if !ok {
		if eb, live, found := s.Pop.GetAny(id); found && !live && eb.AvailableForReplay {
			return s.replayAccess(eb)
		}
		return api.AccessVideoResponse{}, fmt.Errorf("broadcast %s not live", id)
	}
	h, err := s.ensureHub(b)
	if err != nil {
		return api.AccessVideoResponse{}, err
	}
	viewers := b.ViewersAt(s.Pop.Now())
	resp := api.AccessVideoResponse{
		NumWatching: viewers,
		ChatURL:     "ws://" + s.chatLn.Addr().String() + "/chat/" + id,
		StreamName:  id,
	}
	if viewers >= s.cfg.HLSViewerThreshold {
		// Popular: serve via HLS from a CDN POP. The POP choice models
		// viewer proximity; a single measurement location therefore always
		// sees the same couple of IPs.
		if err := h.enableHLS(); err != nil {
			return resp, err
		}
		pop := s.selectPOP(id)
		resp.Protocol = "HLS"
		resp.HLSBaseURL = pop.baseURL() + "/hls/" + id
	} else {
		resp.Protocol = "RTMP"
		ing := s.ingest[b.Region]
		resp.RTMPAddr = ing.srv.Addr().String()
		resp.RTMPServer = "vidman-" + b.Region + ".periscope.tv"
	}
	// Chat room mirrors the audience size.
	s.Chat.Room(id, chat.RoomConfigForViewers(viewers, b.Seed))
	return resp, nil
}

// selectPOP is health-driven viewer steering: the hash-preferred POP
// (viewer proximity model) serves while healthy; otherwise the viewer is
// re-routed along the preferred POP's failover order to the nearest
// healthy POP, falling back to the nearest merely-degraded one, and only
// lands on a down POP when every edge is dark. Re-routes are counted on
// the preferred POP — "viewers steered away from here".
func (s *Service) selectPOP(id string) *cdnPOP {
	preferred := s.cdn[int(fnv32(id))%len(s.cdn)]
	if len(s.cdn) == 1 || preferred.health() == HealthOK {
		return preferred
	}
	var degraded *cdnPOP
	if preferred.health() == HealthDegraded {
		// A degraded POP keeps its viewers unless someone healthy exists:
		// locality still beats a farther degraded edge.
		degraded = preferred
	}
	target := preferred
	for _, q := range preferred.failover {
		switch q.health() {
		case HealthOK:
			target = q
		case HealthDegraded:
			if degraded == nil {
				degraded = q
			}
			continue
		default:
			continue
		}
		break
	}
	if target == preferred && degraded != nil {
		target = degraded
	}
	if target != preferred {
		preferred.reroutes.Add(1)
	}
	return target
}

// PreferredPOPIndex reports which POP the steering hash prefers for a
// broadcast — the edge its viewers land on while it is healthy,
// index-aligned with Snapshot().POPs. Scenario timelines use it to aim
// outages at (or away from) a broadcast's serving region.
func (s *Service) PreferredPOPIndex(id string) int {
	return int(fnv32(id)) % len(s.cdn)
}

// PreferredPOPRegion reports the geo region of the hash-preferred POP.
func (s *Service) PreferredPOPRegion(id string) string {
	return s.cdn[s.PreferredPOPIndex(id)].region.Name
}

// BroadcastSegments reports how many HLS segments the broadcast's
// segmenter has produced so far (0 when the broadcast has no live hub or
// HLS was never enabled). Scenario SLOs use it to bound origin egress per
// segment.
func (s *Service) BroadcastSegments(id string) int {
	h := s.hubFor(id)
	if h == nil {
		return 0
	}
	seg := h.Segmenter()
	if seg == nil {
		return 0
	}
	return seg.SegmentCount()
}

// BlackholePOP injects a hard POP outage: POP i refuses every viewer and
// peer request with 503 until RestorePOP. Peers' breakers trip and skip
// it; steering routes its viewers to the next-nearest healthy POP.
func (s *Service) BlackholePOP(i int) {
	if i >= 0 && i < len(s.cdn) {
		s.cdn[i].blackhole.Store(true)
	}
}

// RestorePOP lifts a POP outage and re-warms every registered replica
// through the normal background fill path (peer probes first), so the
// recovered edge returns warm instead of eating a miss storm. Counters
// are untouched — they stay cumulative across outage and recovery.
func (s *Service) RestorePOP(i int) {
	if i < 0 || i >= len(s.cdn) {
		return
	}
	p := s.cdn[i]
	p.blackhole.Store(false)
	p.mu.RLock()
	ids := make([]string, 0, len(p.replicas))
	for id := range p.replicas {
		ids = append(ids, id)
	}
	p.mu.RUnlock()
	for _, id := range ids {
		p.warm(id)
	}
}

// RegionOutage blackholes every POP placed in the named region — the
// scenario-scale fault: a whole geography goes dark at once. It returns
// how many POPs went down.
func (s *Service) RegionOutage(region string) int {
	n := 0
	for i, p := range s.cdn {
		if p.region.Name == region {
			s.BlackholePOP(i)
			n++
		}
	}
	return n
}

// RestoreRegion lifts a regional outage, re-warming each recovered POP.
// It returns how many POPs came back.
func (s *Service) RestoreRegion(region string) int {
	n := 0
	for i, p := range s.cdn {
		if p.region.Name == region && p.blackhole.Load() {
			s.RestorePOP(i)
			n++
		}
	}
	return n
}

// POPHealthStates lists each POP's current steering state, index-aligned
// with Snapshot().POPs.
func (s *Service) POPHealthStates() []string {
	out := make([]string, len(s.cdn))
	for i, p := range s.cdn {
		out[i] = p.health().String()
	}
	return out
}

func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for _, c := range []byte(s) {
		h = (h ^ uint32(c)) * 16777619
	}
	return h
}
