package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestCountingWriterPassthrough covers the capability-masking regression:
// wrapping a ResponseWriter to count bytes must not hide http.Flusher or
// io.ReaderFrom from streaming handlers, and must still count every byte.
func TestCountingWriterPassthrough(t *testing.T) {
	rec := httptest.NewRecorder()
	cw := &countingWriter{ResponseWriter: rec}

	f, ok := any(cw).(http.Flusher)
	if !ok {
		t.Fatal("countingWriter does not expose http.Flusher")
	}
	if _, err := cw.Write([]byte("#EXTM3U\n")); err != nil {
		t.Fatal(err)
	}
	f.Flush()
	if !rec.Flushed {
		t.Error("Flush did not reach the wrapped ResponseWriter")
	}

	// http.ResponseController finds capabilities through Unwrap.
	if err := http.NewResponseController(cw).Flush(); err != nil {
		t.Errorf("ResponseController.Flush: %v", err)
	}

	rf, ok := any(cw).(io.ReaderFrom)
	if !ok {
		t.Fatal("countingWriter does not expose io.ReaderFrom")
	}
	payload := strings.Repeat("x", 4096)
	n, err := rf.ReadFrom(strings.NewReader(payload))
	if err != nil || n != int64(len(payload)) {
		t.Fatalf("ReadFrom = (%d, %v), want (%d, nil)", n, err, len(payload))
	}

	want := int64(len("#EXTM3U\n") + len(payload))
	if cw.n != want {
		t.Errorf("counted %d bytes, want %d", cw.n, want)
	}
	if got := rec.Body.Len(); int64(got) != want {
		t.Errorf("wrapped writer received %d bytes, want %d", got, want)
	}
}
