package service

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"periscope/internal/api"
	"periscope/internal/avc"
	"periscope/internal/geo"
	"periscope/internal/hls"
	"periscope/internal/media"
)

// newTestCDN builds a standalone origin tier plus one POP, without the
// rest of the service (no API, ingest, chat) and without topology wiring
// (no shaped links, no peers): the POP fills straight from the origin.
func newTestCDN(t testing.TB) (*Service, *cdnPOP) {
	t.Helper()
	origin, err := newOriginTier()
	if err != nil {
		t.Fatal(err)
	}
	svc := &Service{cfg: DefaultConfig(), origin: origin, regions: geo.Regions()}
	svc.originRegion, _ = geo.RegionByName(svc.regions, svc.cfg.CDNOriginRegion)
	reg, _ := geo.RegionByName(svc.regions, "us-west")
	pop, err := newCDNPOP(svc, 0, reg)
	if err != nil {
		origin.close()
		t.Fatal(err)
	}
	svc.cdn = []*cdnPOP{pop}
	t.Cleanup(func() {
		pop.close()
		origin.close()
	})
	return svc, pop
}

// buildSegments renders a synthetic stream into a fresh segmenter.
func buildSegments(streamDur, target time.Duration, bitrate int, finish bool) *hls.Segmenter {
	seg := hls.NewSegmenter(target, hls.DefaultWindowSize)
	cfg := media.DefaultEncoderConfig()
	cfg.DropProb = 0
	if bitrate > 0 {
		cfg.TargetBitrate = bitrate
	}
	enc := media.NewEncoder(cfg, time.Unix(1000, 0))
	interval := enc.FrameInterval()
	now := time.Unix(2000, 0)
	for pts := time.Duration(0); pts < streamDur; pts += interval {
		f := enc.NextFrame()
		seg.WriteVideo(now.Add(f.PTS), f.PTS, f.DTS, f.Keyframe, avc.MarshalAnnexB(f.NALs))
	}
	if finish {
		seg.Finish(now.Add(streamDur))
	}
	return seg
}

// TestPOPSingleFlightFanIn pins the tentpole's core property: N viewers
// fanning in on one POP for the same segment produce exactly one
// origin fill per segment.
func TestPOPSingleFlightFanIn(t *testing.T) {
	svc, pop := newTestCDN(t)
	seg := buildSegments(6*time.Second, 800*time.Millisecond, 0, true)
	svc.origin.register("cast", seg)
	pop.register("cast", seg)

	pl := seg.Playlist()
	if len(pl.Segments) == 0 {
		t.Fatal("no segments produced")
	}
	const viewers = 100
	for _, s := range pl.Segments {
		var wg sync.WaitGroup
		for i := 0; i < viewers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				rec := httptest.NewRecorder()
				req := httptest.NewRequest(http.MethodGet, "/hls/cast/"+s.URI, nil)
				pop.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("segment %s status %d", s.URI, rec.Code)
				}
			}()
		}
		wg.Wait()
	}
	if got, want := svc.origin.SegmentRequests.Load(), int64(len(pl.Segments)); got != want {
		t.Fatalf("origin saw %d segment fetches for %d segments × %d viewers, want %d",
			got, len(pl.Segments), viewers, want)
	}
	st := pop.stats()
	if st.Fills != int64(len(pl.Segments)) {
		t.Errorf("POP fills = %d, want %d", st.Fills, len(pl.Segments))
	}
	if st.SingleFlightHits == 0 {
		t.Error("no single-flight hits recorded under 100-way fan-in")
	}
	if st.FillBytes == 0 {
		t.Error("fill bytes not accounted")
	}
}

// TestPOPPlaylistServedFromEdgeCache verifies the stale-while-revalidate
// policy at the service layer: repeated playlist polls within the TTL are
// absorbed by the edge, not forwarded to origin.
func TestPOPPlaylistServedFromEdgeCache(t *testing.T) {
	svc, pop := newTestCDN(t)
	seg := buildSegments(6*time.Second, 800*time.Millisecond, 0, false)
	svc.origin.register("cast", seg)
	pop.register("cast", seg)

	fetch := func() int {
		rec := httptest.NewRecorder()
		pop.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/hls/cast/playlist.m3u8", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("playlist status %d", rec.Code)
		}
		return rec.Body.Len()
	}
	// Burst of polls well inside the TTL (target/2 = 400ms): one origin
	// fetch serves them all.
	for i := 0; i < 20; i++ {
		fetch()
	}
	if got := svc.origin.PlaylistRequests.Load(); got != 1 {
		t.Fatalf("origin saw %d playlist fetches for 20 edge polls within TTL, want 1", got)
	}
	// Past the TTL the next poll is still served instantly from cache and
	// triggers one async revalidation.
	time.Sleep(500 * time.Millisecond)
	fetch()
	waitFor(t, func() bool { return svc.origin.PlaylistRequests.Load() == 2 }, "async revalidation")
	if st := pop.stats(); st.StaleServes == 0 {
		t.Error("stale serve not recorded")
	}
}

// TestEndBroadcastUnregistersOrigins is the leak regression: ending a
// broadcast must remove its origin and every POP replica (no linger).
func TestEndBroadcastUnregistersOrigins(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PopConfig.TargetConcurrent = 120
	cfg.SegmentTarget = 800 * time.Millisecond
	cfg.CDNUnregisterLinger = 0
	svc, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	cli := api.NewClient(svc.APIBaseURL(), "s1", nil)
	b := pickBroadcast(t, svc, true)
	if _, err := cli.AccessVideo(b.ID); err != nil {
		t.Fatal(err)
	}
	h := svc.hubFor(b.ID)
	if h == nil || !svc.origin.has(b.ID) {
		t.Fatal("broadcast not registered at origin tier after AccessVideo")
	}
	for _, pop := range svc.cdn {
		if !pop.has(b.ID) {
			t.Fatal("broadcast not registered at POP after AccessVideo")
		}
	}
	seg := h.Segmenter()

	svc.EndBroadcast(b.ID)

	if svc.hubFor(b.ID) != nil {
		t.Error("hub still routed after EndBroadcast")
	}
	if !seg.Ended() {
		t.Error("segmenter not finished on broadcast end")
	}
	if svc.origin.has(b.ID) {
		t.Error("origin tier still holds the ended broadcast")
	}
	for i, pop := range svc.cdn {
		if pop.has(b.ID) {
			t.Errorf("POP %d still holds the ended broadcast's replica", i)
		}
	}
	if svc.origin.count() != 0 {
		t.Errorf("origin tier count = %d after end, want 0", svc.origin.count())
	}
}

// TestEndBroadcastLingerSparesRelaunchedBroadcast covers the
// re-registration race: a broadcast accessed again during the unregister
// linger re-registers a fresh segmenter, which must replace the ended
// mounts — and the stale linger timer must not tear the live mounts down.
func TestEndBroadcastLingerSparesRelaunchedBroadcast(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PopConfig.TargetConcurrent = 120
	cfg.SegmentTarget = 800 * time.Millisecond
	cfg.CDNUnregisterLinger = 200 * time.Millisecond
	svc, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	cli := api.NewClient(svc.APIBaseURL(), "s1", nil)
	b := pickBroadcast(t, svc, true)
	if _, err := cli.AccessVideo(b.ID); err != nil {
		t.Fatal(err)
	}
	oldSeg := svc.hubFor(b.ID).Segmenter()
	svc.EndBroadcast(b.ID)

	// The broadcast is still live in the population; the next access
	// relaunches the pipeline with a fresh segmenter during the linger.
	if _, err := cli.AccessVideo(b.ID); err != nil {
		t.Fatal(err)
	}
	newSeg := svc.hubFor(b.ID).Segmenter()
	if newSeg == nil || newSeg == oldSeg {
		t.Fatalf("relaunch did not build a fresh segmenter (old=%p new=%p)", oldSeg, newSeg)
	}

	// After the linger timer fires, the relaunched broadcast must still be
	// registered everywhere and serve a live (non-ended) playlist.
	time.Sleep(400 * time.Millisecond)
	if !svc.origin.has(b.ID) {
		t.Fatal("linger timer unregistered the relaunched broadcast from origin")
	}
	for i, pop := range svc.cdn {
		if !pop.has(b.ID) {
			t.Fatalf("linger timer unregistered the relaunched broadcast from POP %d", i)
		}
	}
	pop := svc.cdn[int(fnv32(b.ID))%len(svc.cdn)]
	rec := httptest.NewRecorder()
	pop.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/hls/"+b.ID+"/playlist.m3u8", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("playlist status %d after relaunch", rec.Code)
	}
	pl, err := hls.ParseMediaPlaylist(rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if pl.Ended {
		t.Fatal("relaunched broadcast serves the ended predecessor's playlist")
	}
	if n := timersPending(svc); n != 0 {
		t.Errorf("%d fired linger timers still tracked, want 0", n)
	}
}

// timersPending counts tracked end-linger timers (fired ones must have
// removed themselves).
func timersPending(s *Service) int {
	s.timerMu.Lock()
	defer s.timerMu.Unlock()
	return len(s.endTimers)
}

// TestEndBroadcastServesFinalPlaylistDuringLinger verifies the viewer-side
// ENDLIST semantics: with a linger configured, a viewer polling the POP
// after the broadcast ends receives the final playlist instead of
// spinning (or 404ing) forever.
func TestEndBroadcastServesFinalPlaylistDuringLinger(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PopConfig.TargetConcurrent = 120
	cfg.SegmentTarget = 800 * time.Millisecond
	cfg.CDNUnregisterLinger = time.Minute // longer than the test
	svc, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	cli := api.NewClient(svc.APIBaseURL(), "s1", nil)
	b := pickBroadcast(t, svc, true)
	acc, err := cli.AccessVideo(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Let at least one segment land, and warm the edge playlist cache.
	h := svc.hubFor(b.ID)
	waitFor(t, func() bool { return h.Segmenter().SegmentCount() >= 1 }, "first segment")
	warm, err := http.Get(acc.HLSBaseURL + "/playlist.m3u8")
	if err != nil {
		t.Fatal(err)
	}
	// Drain and close, or the keep-alive conn never goes idle and its
	// transport goroutines outlive the test binary (leakcheck).
	if _, err := io.Copy(io.Discard, warm.Body); err != nil {
		t.Fatal(err)
	}
	warm.Body.Close()

	svc.EndBroadcast(b.ID)

	// The edge revalidates past its TTL and picks up the final playlist.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(acc.HLSBaseURL + "/playlist.m3u8")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("playlist status %d during linger", resp.StatusCode)
		}
		pl, err := hls.ParseMediaPlaylist(body)
		if err != nil {
			t.Fatal(err)
		}
		if pl.Ended {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("edge playlist never went final after EndBroadcast")
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestPOPShutdownDrainsInflight covers the teardown regression: closing a
// POP must not hard-drop an in-flight segment response mid-body. A slow
// reader keeps a large response in flight while close() runs; with
// graceful Shutdown the body completes.
func TestPOPShutdownDrainsInflight(t *testing.T) {
	svc, pop := newTestCDN(t)
	// One very large segment (tens of MB) so the response cannot hide in
	// loopback socket buffers: the handler is still writing when close()
	// runs, and only a graceful drain lets it finish.
	seg := buildSegments(4*time.Minute, time.Hour, 2_000_000, true)
	s0, ok := seg.Segment(0)
	if !ok || len(s0.Data) < 16*1024*1024 {
		t.Fatalf("test segment too small (%d bytes)", len(s0.Data))
	}
	svc.origin.register("big", seg)
	pop.register("big", seg)

	resp, err := http.Get(pop.baseURL() + "/hls/big/" + hls.SegmentName(0))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Read a little, then start the POP teardown while the rest of the
	// body is still streaming.
	buf := make([]byte, 32*1024)
	if _, err := io.ReadFull(resp.Body, buf); err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	go func() {
		pop.close()
		close(closed)
	}()
	// Keep reading slowly, then drain the rest. The trickle stays short:
	// the drain deadline (cdnDrainTimeout) must comfortably cover both it
	// and the tens-of-MB remainder even on a loaded -race runner, or the
	// graceful Shutdown legitimately cuts the body we're asserting on.
	total := len(buf)
	for i := 0; i < 6; i++ {
		time.Sleep(10 * time.Millisecond)
		n, err := resp.Body.Read(buf)
		total += n
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("response truncated after %d of %d bytes: %v", total, len(s0.Data), err)
		}
	}
	rest, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("response truncated after %d of %d bytes: %v", total+len(rest), len(s0.Data), err)
	}
	total += len(rest)
	if total != len(s0.Data) {
		t.Fatalf("read %d bytes, want %d", total, len(s0.Data))
	}
	<-closed
}

// TestSnapshotSurfacesFillAndDeliveryMetrics exercises Service.Snapshot
// end to end: CDN fill counters and shard-level delivery counters appear.
func TestSnapshotSurfacesFillAndDeliveryMetrics(t *testing.T) {
	svc, pop := newTestCDN(t)
	seg := buildSegments(6*time.Second, 800*time.Millisecond, 0, true)
	svc.origin.register("cast", seg)
	pop.register("cast", seg)

	rec := httptest.NewRecorder()
	pop.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/hls/cast/playlist.m3u8", nil))
	pl := seg.Playlist()
	rec = httptest.NewRecorder()
	pop.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/hls/cast/"+pl.Segments[0].URI, nil))

	// Fold in some fan-out counters via the ended-hub aggregate.
	var c deliveryCounters
	c.drops.Add(7)
	c.resyncs.Add(3)
	c.hopeless.Add(1)
	svc.endedDelivery.add(&c)

	snap := svc.Snapshot()
	if snap.Origin.Broadcasts != 1 || snap.Origin.SegmentRequests == 0 {
		t.Errorf("origin snapshot = %+v", snap.Origin)
	}
	if len(snap.POPs) != 1 {
		t.Fatalf("POP snapshots = %d, want 1", len(snap.POPs))
	}
	ps := snap.POPs[0]
	if ps.Fills == 0 || ps.FillBytes == 0 || ps.PlaylistRefreshes == 0 || ps.CachedSegments == 0 {
		t.Errorf("POP snapshot missing fill metrics: %+v", ps)
	}
	if ps.Requests != 2 {
		t.Errorf("POP requests = %d, want 2", ps.Requests)
	}
	if ps.Region != "us-west" {
		t.Errorf("POP region = %q, want us-west", ps.Region)
	}
	// The per-broadcast fill concurrency cap is surfaced even before it
	// ever saturates: a capped broadcast must be observable, not silent.
	if ps.FillCap != hls.DefaultFillConcurrency {
		t.Errorf("POP fill cap = %d, want the default %d", ps.FillCap, hls.DefaultFillConcurrency)
	}
	d := snap.Delivery
	if d.Drops != 7 || d.Resyncs != 3 || d.HopelessDisconnects != 1 {
		t.Errorf("delivery snapshot = %+v", d)
	}
}

// discardResponseWriter is a minimal ResponseWriter for benchmarks: it
// throws the body away without the buffering a Recorder would do.
type discardResponseWriter struct {
	h    http.Header
	code int
	n    int64
}

func (w *discardResponseWriter) Header() http.Header {
	if w.h == nil {
		w.h = http.Header{}
	}
	return w.h
}

func (w *discardResponseWriter) WriteHeader(code int) { w.code = code }

func (w *discardResponseWriter) Write(b []byte) (int, error) {
	w.n += int64(len(b))
	return len(b), nil
}

// BenchmarkPOPFill measures the fan-in path of the replicated CDN: V
// concurrent viewers request the same (cold) segment from one POP, which
// fills it from origin exactly once over HTTP and serves the rest from
// cache. Per iteration the replica is re-registered cold, so every op
// contains one origin fill plus V-1 coalesced/cached serves.
func BenchmarkPOPFill(b *testing.B) {
	for _, viewers := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("viewers=%d", viewers), func(b *testing.B) {
			svc, pop := newTestCDN(b)
			seg := buildSegments(6*time.Second, 800*time.Millisecond, 0, true)
			svc.origin.register("bench", seg)
			pl := seg.Playlist()
			uri := "/hls/bench/" + pl.Segments[0].URI
			segBytes := 0
			if s, ok := seg.Segment(pl.Segments[0].Sequence); ok {
				segBytes = len(s.Data)
			}

			before := svc.origin.SegmentRequests.Load()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pop.unregister("bench", nil)
				pop.register("bench", seg)
				var wg sync.WaitGroup
				for v := 0; v < viewers; v++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						w := &discardResponseWriter{}
						pop.ServeHTTP(w, httptest.NewRequest(http.MethodGet, uri, nil))
						if w.n == 0 {
							b.Error("empty segment response")
						}
					}()
				}
				wg.Wait()
			}
			b.StopTimer()
			fills := svc.origin.SegmentRequests.Load() - before
			b.ReportMetric(float64(fills)/float64(b.N), "origin-fills/op")
			b.SetBytes(int64(segBytes * viewers))
		})
	}
}

// TestCountingWriterPassthrough covers the capability-masking regression:
// wrapping a ResponseWriter to count bytes must not hide http.Flusher or
// io.ReaderFrom from streaming handlers, and must still count every byte.
func TestCountingWriterPassthrough(t *testing.T) {
	rec := httptest.NewRecorder()
	cw := &countingWriter{ResponseWriter: rec}

	f, ok := any(cw).(http.Flusher)
	if !ok {
		t.Fatal("countingWriter does not expose http.Flusher")
	}
	if _, err := cw.Write([]byte("#EXTM3U\n")); err != nil {
		t.Fatal(err)
	}
	f.Flush()
	if !rec.Flushed {
		t.Error("Flush did not reach the wrapped ResponseWriter")
	}

	// http.ResponseController finds capabilities through Unwrap.
	if err := http.NewResponseController(cw).Flush(); err != nil {
		t.Errorf("ResponseController.Flush: %v", err)
	}

	rf, ok := any(cw).(io.ReaderFrom)
	if !ok {
		t.Fatal("countingWriter does not expose io.ReaderFrom")
	}
	payload := strings.Repeat("x", 4096)
	n, err := rf.ReadFrom(strings.NewReader(payload))
	if err != nil || n != int64(len(payload)) {
		t.Fatalf("ReadFrom = (%d, %v), want (%d, nil)", n, err, len(payload))
	}

	want := int64(len("#EXTM3U\n") + len(payload))
	if cw.n != want {
		t.Errorf("counted %d bytes, want %d", cw.n, want)
	}
	if got := rec.Body.Len(); int64(got) != want {
		t.Errorf("wrapped writer received %d bytes, want %d", got, want)
	}
}
