package service

import (
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"periscope/internal/hls"
	"periscope/internal/player"
)

// startOutageService builds a full service with two POP clusters (two
// POPs in us-west, two in eu-west) and resilience knobs tightened so a
// scenario fits in test time: short segments, two fill attempts, a
// two-failure breaker with a sub-second cooldown.
func startOutageService(t *testing.T) *Service {
	t.Helper()
	cfg := DefaultConfig()
	cfg.PopConfig.TargetConcurrent = 120
	cfg.SegmentTarget = 800 * time.Millisecond
	cfg.CDNPOPRegions = []string{"us-west", "us-west", "eu-west", "eu-west"}
	cfg.CDNLinkRTTScale = -1
	cfg.CDNFillAttempts = 2
	cfg.CDNBreakerFailures = 2
	cfg.CDNBreakerCooldown = 400 * time.Millisecond
	svc, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

// outageViewer is one HLS viewer loop: it resolves an edge via
// AccessVideo, polls the playlist, fetches new segments, and — when the
// edge stops answering — re-resolves, which is where health-driven
// steering hands it a live POP. Fetched segments are recorded as player
// chunks so QoE (longest stall) can be replayed afterwards.
type outageViewer struct {
	chunks    []player.Chunk
	reresolve int // how often the viewer had to re-resolve its edge
}

func (ov *outageViewer) run(svc *Service, id string, start, stop time.Time) {
	httpc := &http.Client{Timeout: 2 * time.Second}
	var base string
	var media time.Duration
	next := -1
	get := func(path string) ([]byte, bool) {
		resp, err := httpc.Get(base + "/" + path)
		if err != nil {
			return nil, false
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			return nil, false
		}
		return body, true
	}
	for time.Now().Before(stop) {
		if base == "" {
			acc, err := svc.AccessVideo(id)
			if err != nil || acc.HLSBaseURL == "" {
				time.Sleep(100 * time.Millisecond)
				continue
			}
			base = acc.HLSBaseURL
		}
		body, ok := get("playlist.m3u8")
		if !ok {
			// Edge dark: fail over through a fresh AccessVideo.
			base = ""
			ov.reresolve++
			continue
		}
		pl, err := hls.ParseMediaPlaylist(body)
		if err != nil {
			continue
		}
		for _, s := range pl.Segments {
			if s.Sequence < next {
				continue
			}
			if _, ok := get(s.URI); !ok {
				base = ""
				ov.reresolve++
				break
			}
			dur := time.Duration(s.Duration * float64(time.Second))
			arr := time.Since(start)
			ov.chunks = append(ov.chunks, player.Chunk{
				Arrival:    arr,
				MediaStart: media,
				MediaEnd:   media + dur,
				CaptureEnd: arr,
			})
			media += dur
			next = s.Sequence + 1
		}
		time.Sleep(120 * time.Millisecond)
	}
}

// TestRegionalOutageFailoverAndRecovery is the resilience-plane scenario:
// viewers watch a popular broadcast from their hash-preferred POP, the
// whole preferred region blackholes, steering re-routes everyone to the
// surviving cluster with a bounded stall, the region recovers and
// re-warms, and all counters stay cumulative across the whole arc —
// while origin egress stays O(clusters) per segment, not O(viewers).
func TestRegionalOutageFailoverAndRecovery(t *testing.T) {
	svc := startOutageService(t)
	b := pickBroadcast(t, svc, true)
	if _, err := svc.AccessVideo(b.ID); err != nil {
		t.Fatal(err)
	}
	h := svc.hubFor(b.ID)
	waitFor(t, func() bool { return h.Segmenter().SegmentCount() >= 1 }, "first segment")

	preferred := svc.cdn[int(fnv32(b.ID))%len(svc.cdn)]
	outRegion := preferred.region.Name

	const viewers = 8
	const sessionDur = 9 * time.Second
	start := time.Now()
	stop := start.Add(sessionDur)
	results := make([]outageViewer, viewers)
	var wg sync.WaitGroup
	for v := 0; v < viewers; v++ {
		wg.Add(1)
		go func(ov *outageViewer) {
			defer wg.Done()
			ov.run(svc, b.ID, start, stop)
		}(&results[v])
	}

	// Steady state, then the preferred region goes dark mid-stream.
	time.Sleep(2 * time.Second)
	snapBefore := svc.Snapshot()
	if downed := svc.RegionOutage(outRegion); downed != 2 {
		t.Fatalf("RegionOutage(%s) downed %d POPs, want 2", outRegion, downed)
	}
	for i, st := range svc.POPHealthStates() {
		if svc.cdn[i].region.Name == outRegion && st != "down" {
			t.Errorf("POP %d in %s reports %q during outage, want down", i, outRegion, st)
		}
	}

	// Hold the outage across a few segment periods, snapshot mid-outage,
	// then lift it.
	time.Sleep(2500 * time.Millisecond)
	snapMid := svc.Snapshot()
	if restored := svc.RestoreRegion(outRegion); restored != 2 {
		t.Fatalf("RestoreRegion(%s) restored %d POPs, want 2", outRegion, restored)
	}
	waitFor(t, func() bool {
		for _, st := range svc.POPHealthStates() {
			if st != "ok" {
				return false
			}
		}
		return true
	}, "all POPs healthy after restore")
	// Recovery re-warms the dead cluster through the normal fill path, so
	// the recovered edges come back holding segments before any viewer
	// returns to them.
	for i, pop := range svc.cdn {
		if pop.region.Name != outRegion {
			continue
		}
		pop := pop
		waitFor(t, func() bool {
			rep := pop.replica(b.ID)
			return rep != nil && rep.Stats().CachedSegments >= 1
		}, "recovered POP "+svc.cdn[i].region.Name+" re-warmed")
	}
	wg.Wait()
	snapEnd := svc.Snapshot()

	// Every viewer kept playing through outage and recovery: the failover
	// is allowed to cost one stall, but it must stay bounded, and progress
	// must continue well past the restore point.
	engine := player.DefaultHLSEngine(svc.cfg.SegmentTarget)
	for v := range results {
		res := &results[v]
		if len(res.chunks) < 5 {
			t.Fatalf("viewer %d fetched only %d segments", v, len(res.chunks))
		}
		m := engine.Run(res.chunks, sessionDur)
		if m.LongestStall > 4*time.Second {
			t.Errorf("viewer %d longest stall %v exceeds the failover bound", v, m.LongestStall)
		}
		if last := res.chunks[len(res.chunks)-1].Arrival; last < 6*time.Second {
			t.Errorf("viewer %d stopped making progress at %v", v, last)
		}
	}

	// The failover was real and counted: viewers had to re-resolve, and
	// steering charged the re-routes to the hash-preferred POP.
	var reresolves int
	for v := range results {
		reresolves += results[v].reresolve
	}
	if reresolves == 0 {
		t.Error("no viewer ever re-resolved its edge — the outage was invisible")
	}
	if preferred.reroutes.Load() == 0 {
		t.Error("no failover re-routes counted on the preferred POP")
	}

	// Origin egress stayed O(clusters) per segment: the surviving cluster
	// filled each segment about once, plus the recovery re-warm window —
	// far below the O(viewers) blowup a broken edge would produce.
	totalSegs := h.Segmenter().SegmentCount()
	originSegs := svc.origin.SegmentRequests.Load()
	if limit := int64(2*totalSegs + 24); originSegs > limit {
		t.Errorf("origin saw %d segment fills for %d segments (limit %d) — not O(clusters)",
			originSegs, totalSegs, limit)
	}
	if blowup := int64(viewers * totalSegs); originSegs*2 > blowup {
		t.Errorf("origin fills %d are within 2x of the per-viewer blowup %d", originSegs, blowup)
	}

	// Counters are cumulative across outage and recovery: no snapshot
	// metric ever dips.
	monotonic := func(stage string, a, z Snapshot) {
		for i := range a.POPs {
			p, q := a.POPs[i], z.POPs[i]
			if q.Requests < p.Requests || q.Fills < p.Fills ||
				q.PeerFills < p.PeerFills || q.OriginFills < p.OriginFills ||
				q.Reroutes < p.Reroutes || q.FillRetries < p.FillRetries ||
				q.BreakerTrips < p.BreakerTrips || q.Warmups < p.Warmups {
				t.Errorf("POP %d counters dipped across %s:\nbefore %+v\nafter  %+v", i, stage, p, q)
			}
		}
	}
	monotonic("the outage", snapBefore, snapMid)
	monotonic("the recovery", snapMid, snapEnd)

	// Mid-outage snapshot surfaced the dead POPs and the shifted serving.
	downSeen := 0
	for i, ps := range snapMid.POPs {
		if svc.cdn[i].region.Name == outRegion {
			if ps.Health != "down" {
				t.Errorf("mid-outage snapshot: POP %d health %q, want down", i, ps.Health)
			}
			downSeen++
		}
	}
	if downSeen != 2 {
		t.Errorf("mid-outage snapshot covered %d dead POPs, want 2", downSeen)
	}
	// The recovered cluster's re-warm shows up as warm-ups after restore.
	for i := range snapEnd.POPs {
		if svc.cdn[i].region.Name != outRegion {
			continue
		}
		if snapEnd.POPs[i].Warmups <= snapMid.POPs[i].Warmups {
			t.Errorf("POP %d warmups did not grow across recovery (%d -> %d)",
				i, snapMid.POPs[i].Warmups, snapEnd.POPs[i].Warmups)
		}
	}
}

// TestEndBroadcastDuringPOPOutageRace drives EndBroadcast concurrently
// with a regional outage, its recovery, snapshots and viewer admission —
// the lifecycle race the -race build must keep clean, with the service
// still consistent afterwards.
func TestEndBroadcastDuringPOPOutageRace(t *testing.T) {
	svc := startOutageService(t)
	b := pickBroadcast(t, svc, true)
	if _, err := svc.AccessVideo(b.ID); err != nil {
		t.Fatal(err)
	}
	h := svc.hubFor(b.ID)
	waitFor(t, func() bool { return h.Segmenter().SegmentCount() >= 1 }, "first segment")
	outRegion := svc.cdn[int(fnv32(b.ID))%len(svc.cdn)].region.Name

	start := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		<-start
		svc.RegionOutage(outRegion)
		time.Sleep(50 * time.Millisecond)
		svc.RestoreRegion(outRegion)
	}()
	go func() {
		defer wg.Done()
		<-start
		time.Sleep(20 * time.Millisecond)
		svc.EndBroadcast(b.ID)
	}()
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 40; i++ {
			svc.Snapshot()
			svc.POPHealthStates()
		}
	}()
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 40; i++ {
			// AccessVideo races the end: either answer is fine, the
			// steering and pipeline state just must stay consistent.
			if _, err := svc.AccessVideo(b.ID); err != nil {
				return
			}
		}
	}()
	close(start)
	wg.Wait()

	// The service survived: outage fully lifted, snapshots coherent, and
	// new viewers are still admitted.
	svc.RestoreRegion(outRegion)
	waitFor(t, func() bool {
		for _, st := range svc.POPHealthStates() {
			if st == "down" {
				return false
			}
		}
		return true
	}, "no POP left blackholed")
	snap := svc.Snapshot()
	if len(snap.POPs) != len(svc.cdn) {
		t.Fatalf("snapshot covers %d POPs, want %d", len(snap.POPs), len(svc.cdn))
	}
	other := pickBroadcast(t, svc, false)
	if _, err := svc.AccessVideo(other.ID); err != nil {
		t.Fatalf("service unusable after the race: %v", err)
	}
}
