package service

import (
	"sync"
	"testing"
	"time"
)

// startOutageService builds a full service with two POP clusters (two
// POPs in us-west, two in eu-west) and resilience knobs tightened so a
// scenario fits in test time: short segments, two fill attempts, a
// two-failure breaker with a sub-second cooldown. The full failover QoE
// arc lives in internal/scenario (the regional-outage timeline); what
// stays here is the lifecycle race below.
func startOutageService(t *testing.T) *Service {
	t.Helper()
	cfg := DefaultConfig()
	cfg.PopConfig.TargetConcurrent = 120
	cfg.SegmentTarget = 800 * time.Millisecond
	cfg.CDNPOPRegions = []string{"us-west", "us-west", "eu-west", "eu-west"}
	cfg.CDNLinkRTTScale = -1
	cfg.CDNFillAttempts = 2
	cfg.CDNBreakerFailures = 2
	cfg.CDNBreakerCooldown = 400 * time.Millisecond
	svc, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

// TestEndBroadcastDuringPOPOutageRace drives EndBroadcast concurrently
// with a regional outage, its recovery, snapshots and viewer admission —
// the lifecycle race the -race build must keep clean, with the service
// still consistent afterwards.
func TestEndBroadcastDuringPOPOutageRace(t *testing.T) {
	svc := startOutageService(t)
	b := pickBroadcast(t, svc, true)
	if _, err := svc.AccessVideo(b.ID); err != nil {
		t.Fatal(err)
	}
	h := svc.hubFor(b.ID)
	waitFor(t, func() bool { return h.Segmenter().SegmentCount() >= 1 }, "first segment")
	outRegion := svc.cdn[int(fnv32(b.ID))%len(svc.cdn)].region.Name

	start := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		<-start
		svc.RegionOutage(outRegion)
		time.Sleep(50 * time.Millisecond)
		svc.RestoreRegion(outRegion)
	}()
	go func() {
		defer wg.Done()
		<-start
		time.Sleep(20 * time.Millisecond)
		svc.EndBroadcast(b.ID)
	}()
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 40; i++ {
			svc.Snapshot()
			svc.POPHealthStates()
		}
	}()
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 40; i++ {
			// AccessVideo races the end: either answer is fine, the
			// steering and pipeline state just must stay consistent.
			if _, err := svc.AccessVideo(b.ID); err != nil {
				return
			}
		}
	}()
	close(start)
	wg.Wait()

	// The service survived: outage fully lifted, snapshots coherent, and
	// new viewers are still admitted.
	svc.RestoreRegion(outRegion)
	waitFor(t, func() bool {
		for _, st := range svc.POPHealthStates() {
			if st == "down" {
				return false
			}
		}
		return true
	}, "no POP left blackholed")
	snap := svc.Snapshot()
	if len(snap.POPs) != len(svc.cdn) {
		t.Fatalf("snapshot covers %d POPs, want %d", len(snap.POPs), len(svc.cdn))
	}
	other := pickBroadcast(t, svc, false)
	if _, err := svc.AccessVideo(other.ID); err != nil {
		t.Fatalf("service unusable after the race: %v", err)
	}
}
