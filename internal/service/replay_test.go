package service

import (
	"context"
	"testing"
	"time"

	"periscope/internal/api"
	"periscope/internal/broadcastmodel"
	"periscope/internal/hls"
	"periscope/internal/mpegts"
)

// endedReplayable advances the population until an ended, replayable
// broadcast exists and returns it.
func endedReplayable(t *testing.T, svc *Service) *broadcastmodel.Broadcast {
	t.Helper()
	for i := 0; i < 20; i++ {
		svc.Pop.Advance(10 * time.Minute)
		for _, b := range svc.Pop.Ended() {
			if b.AvailableForReplay && !b.Private {
				return b
			}
		}
	}
	t.Fatal("no ended replayable broadcast after hours of virtual time")
	return nil
}

func TestReplayServedAsVOD(t *testing.T) {
	svc := startService(t)
	b := endedReplayable(t, svc)

	cli := api.NewClient(svc.APIBaseURL(), "replay-test", nil)
	acc, err := cli.AccessVideo(b.ID)
	if err != nil {
		t.Fatalf("accessVideo for replay: %v", err)
	}
	if acc.Protocol != "HLS" || acc.HLSBaseURL == "" {
		t.Fatalf("replay access = %+v", acc)
	}

	var segs []hls.FetchedSegment
	client := hls.NewClient(hls.ClientConfig{
		BaseURL:      acc.HLSBaseURL,
		PollInterval: 50 * time.Millisecond,
		OnSegment:    func(fs hls.FetchedSegment) { segs = append(segs, fs) },
	})
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	n, err := client.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || len(segs) == 0 {
		t.Fatal("no VOD segments fetched")
	}
	// VOD: the client terminates on ENDLIST rather than the context.
	if ctx.Err() != nil {
		t.Error("client did not stop at ENDLIST")
	}
	for _, s := range segs {
		if _, err := mpegts.DemuxAll(s.Data); err != nil {
			t.Fatalf("segment %d corrupt: %v", s.Sequence, err)
		}
	}
}

func TestReplayUnavailableForNonReplayable(t *testing.T) {
	svc := startService(t)
	// Find an ended broadcast not available for replay.
	var target *broadcastmodel.Broadcast
	for i := 0; i < 20 && target == nil; i++ {
		svc.Pop.Advance(10 * time.Minute)
		for _, b := range svc.Pop.Ended() {
			if !b.AvailableForReplay {
				target = b
				break
			}
		}
	}
	if target == nil {
		t.Skip("no non-replayable ended broadcast found")
	}
	cli := api.NewClient(svc.APIBaseURL(), "replay-test", nil)
	if _, err := cli.AccessVideo(target.ID); err == nil {
		t.Error("non-replayable ended broadcast must not be accessible")
	}
}

func TestMapIncludeReplay(t *testing.T) {
	svc := startService(t)
	endedReplayable(t, svc) // ensure some ended casts exist
	cli := api.NewClient(svc.APIBaseURL(), "replay-map", nil)
	withReplay, err := cli.MapGeoBroadcastFeed(api.MapGeoBroadcastFeedRequest{
		P1Lat: -90, P1Lng: -180, P2Lat: 90, P2Lng: 180, IncludeReplay: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ended := 0
	for _, d := range withReplay.Broadcasts {
		if d.State == "ENDED" {
			ended++
		}
	}
	// Live entries cap the response; replays only fill leftover budget, so
	// just assert the flag is honoured when budget exists.
	without, err := cli.MapGeoBroadcastFeed(api.MapGeoBroadcastFeedRequest{
		P1Lat: -90, P1Lng: -180, P2Lat: 90, P2Lng: 180, IncludeReplay: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range without.Broadcasts {
		if d.State == "ENDED" {
			t.Fatal("live-only query returned an ended broadcast")
		}
	}
}
