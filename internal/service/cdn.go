package service

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"periscope/internal/hls"
)

// The CDN is modelled as two tiers, matching the paper's observation that
// HLS always came from two Fastly IPs while 87 RTMP servers were seen:
//
//   - an origin tier holding one hls.Origin per popular broadcast (the
//     "transcode, repackage and deliver to Fastly" output), and
//   - edge POPs, each holding an hls.Replica per broadcast that fills
//     segments origin→POP asynchronously (single-flight per segment,
//     sliding-window cache) and serves stale-while-revalidate playlists.
//
// Edge playlist lag is therefore a real, measurable quantity instead of a
// pointer-sharing fiction; fills, coalesced requests, staleness and
// evictions surface in the service snapshot.

// cdnDrainTimeout bounds the graceful drain of a POP's HTTP server at
// shutdown: in-flight segment responses get this long to complete before
// connections are dropped.
const cdnDrainTimeout = 3 * time.Second

// popFillQueueDepth bounds each POP's background fill queue (playlist
// revalidations and segment prefetches across all of its replicas).
const popFillQueueDepth = 1024

// popFillWorkers is the per-POP fill pool size: fill jobs block on origin
// HTTP fetches, so a few run in parallel or one slow broadcast would
// head-of-line-block every other replica's revalidation.
const popFillWorkers = 8

// originTier serves every registered broadcast's playlist and segments to
// the POPs — the single fill source of the CDN.
type originTier struct {
	ln  net.Listener
	srv *http.Server

	mu      sync.RWMutex
	origins map[string]*hls.Origin

	// Requests and Bytes count fill traffic served to the POPs;
	// PlaylistRequests/SegmentRequests split it by kind (the single-flight
	// tests pin SegmentRequests to one per segment however many viewers
	// fan in at the edge).
	Requests         atomic.Int64
	Bytes            atomic.Int64
	PlaylistRequests atomic.Int64
	SegmentRequests  atomic.Int64
}

func newOriginTier() (*originTier, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	o := &originTier{ln: ln, origins: map[string]*hls.Origin{}}
	o.srv = &http.Server{Handler: o}
	go o.srv.Serve(ln)
	return o, nil
}

func (o *originTier) baseURL() string { return "http://" + o.ln.Addr().String() }

// register mounts a broadcast's segmenter at /hls/<id>/. Re-registering
// the same segmenter is a no-op; a different segmenter replaces the mount
// (a broadcast re-going-live during an unregister linger must win over
// its ended predecessor).
func (o *originTier) register(id string, seg *hls.Segmenter) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if cur, ok := o.origins[id]; ok && cur.Seg == seg {
		return
	}
	o.origins[id] = &hls.Origin{Seg: seg}
}

// unregister removes the broadcast — but only if it is still backed by
// seg, so a lingering end-timer cannot tear down a re-registered live
// broadcast. A nil seg unregisters unconditionally.
func (o *originTier) unregister(id string, seg *hls.Segmenter) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if cur, ok := o.origins[id]; ok && (seg == nil || cur.Seg == seg) {
		delete(o.origins, id)
	}
}

func (o *originTier) has(id string) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	_, ok := o.origins[id]
	return ok
}

func (o *originTier) count() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.origins)
}

// ServeHTTP routes /hls/<broadcastID>/<file> to the broadcast's origin.
func (o *originTier) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	o.Requests.Add(1)
	id, file, ok := splitHLSPath(r.URL.Path)
	if !ok {
		http.NotFound(w, r)
		return
	}
	o.mu.RLock()
	origin := o.origins[id]
	o.mu.RUnlock()
	if origin == nil {
		http.NotFound(w, r)
		return
	}
	if file == "playlist.m3u8" {
		o.PlaylistRequests.Add(1)
	} else {
		o.SegmentRequests.Add(1)
	}
	cw := &countingWriter{ResponseWriter: w}
	origin.ServeHTTP(cw, r)
	o.Bytes.Add(cw.n)
}

func (o *originTier) close() {
	ctx, cancel := context.WithTimeout(context.Background(), cdnDrainTimeout)
	defer cancel()
	if o.srv.Shutdown(ctx) != nil {
		o.srv.Close()
	}
}

// splitHLSPath parses "/hls/<id>/<file>".
func splitHLSPath(path string) (id, file string, ok bool) {
	rest := strings.TrimPrefix(path, "/hls/")
	slash := strings.IndexByte(rest, '/')
	if rest == path || slash < 0 {
		return "", "", false
	}
	return rest[:slash], rest[slash+1:], true
}

// cdnPOP is one CDN edge (the study saw exactly two HLS delivery IPs,
// "located somewhere in Europe and in San Francisco"). Each registered
// broadcast is an hls.Replica filling from the origin tier; one fill
// worker per POP runs the background revalidations and prefetches.
type cdnPOP struct {
	svc   *Service
	index int
	ln    net.Listener
	srv   *http.Server
	fill  *hls.FillWorker

	mu       sync.RWMutex
	replicas map[string]popReplica

	// Requests and Bytes count traffic served to viewers.
	Requests atomic.Int64
	Bytes    atomic.Int64
}

// popReplica pairs an edge replica with the origin segmenter it was
// registered for, so conditional unregistration (end-linger timers) can
// tell an ended broadcast's replica from a re-registered live one.
type popReplica struct {
	seg *hls.Segmenter
	rep *hls.Replica
}

func newCDNPOP(svc *Service, index int) (*cdnPOP, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	pop := &cdnPOP{
		svc:      svc,
		index:    index,
		ln:       ln,
		fill:     hls.NewFillWorker(popFillQueueDepth, popFillWorkers),
		replicas: map[string]popReplica{},
	}
	pop.srv = &http.Server{Handler: pop}
	go pop.srv.Serve(ln)
	return pop, nil
}

func (p *cdnPOP) baseURL() string { return "http://" + p.ln.Addr().String() }

// register exposes a broadcast at /hls/<id>/ through an edge replica
// pulling from the origin tier. Re-registering the same segmenter keeps
// the warm replica; a different segmenter (broadcast re-went live during
// a linger) replaces it with a cold one. The replica's cache window and
// playlist TTL derive from the origin segmenter's parameters.
func (p *cdnPOP) register(id string, seg *hls.Segmenter) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if cur, ok := p.replicas[id]; ok && cur.seg == seg {
		return
	}
	p.replicas[id] = popReplica{
		seg: seg,
		rep: hls.NewReplica(hls.ReplicaConfig{
			Source:         &hls.FillClient{BaseURL: p.svc.origin.baseURL() + "/hls/" + id},
			Window:         seg.WindowSize(),
			TargetDuration: seg.Target(),
			Enqueue:        p.fill.Enqueue,
		}),
	}
}

// unregister drops the broadcast's replica (and its cached segments) —
// but only if it still serves seg; nil unregisters unconditionally.
func (p *cdnPOP) unregister(id string, seg *hls.Segmenter) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if cur, ok := p.replicas[id]; ok && (seg == nil || cur.seg == seg) {
		delete(p.replicas, id)
	}
}

// has reports whether a replica is registered for id.
func (p *cdnPOP) has(id string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	_, ok := p.replicas[id]
	return ok
}

// replica returns the broadcast's edge cache (tests, snapshot).
func (p *cdnPOP) replica(id string) *hls.Replica {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.replicas[id].rep
}

// ServeHTTP routes /hls/<broadcastID>/<file> to the broadcast's replica.
func (p *cdnPOP) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.Requests.Add(1)
	id, _, ok := splitHLSPath(r.URL.Path)
	if !ok {
		http.NotFound(w, r)
		return
	}
	p.mu.RLock()
	rep := p.replicas[id].rep
	p.mu.RUnlock()
	if rep == nil {
		http.NotFound(w, r)
		return
	}
	cw := &countingWriter{ResponseWriter: w}
	rep.ServeHTTP(cw, r)
	p.Bytes.Add(cw.n)
}

// close drains the POP gracefully: in-flight segment responses complete
// (up to cdnDrainTimeout) instead of being cut mid-body, then the fill
// worker stops.
func (p *cdnPOP) close() {
	ctx, cancel := context.WithTimeout(context.Background(), cdnDrainTimeout)
	defer cancel()
	if p.srv.Shutdown(ctx) != nil {
		p.srv.Close()
	}
	p.fill.Stop()
}

// stats aggregates the POP's counters and its replicas' fill metrics.
func (p *cdnPOP) stats() POPSnapshot {
	st := POPSnapshot{
		Index:    p.index,
		Requests: p.Requests.Load(),
		Bytes:    p.Bytes.Load(),
	}
	p.mu.RLock()
	reps := make([]*hls.Replica, 0, len(p.replicas))
	for _, e := range p.replicas {
		reps = append(reps, e.rep)
	}
	p.mu.RUnlock()
	st.Broadcasts = len(reps)
	st.FillQueueDropped = p.fill.Dropped.Load()
	for _, rep := range reps {
		rs := rep.Stats()
		st.Fills += rs.Fills
		st.FillBytes += rs.FillBytes
		st.FillErrors += rs.FillErrors
		st.SingleFlightHits += rs.SingleFlightHits
		st.PlaylistRefreshes += rs.PlaylistRefreshes
		st.StaleServes += rs.StaleServes
		st.Evictions += rs.Evictions
		st.CachedSegments += rs.CachedSegments
		if rs.PlaylistAge > st.MaxPlaylistAge {
			st.MaxPlaylistAge = rs.PlaylistAge
		}
	}
	return st
}

// countingWriter counts bytes served without masking the wrapped
// ResponseWriter's optional interfaces: streaming playlist/segment
// responses still reach http.Flusher (directly or via
// http.ResponseController's Unwrap), and sendfile-style io.ReaderFrom
// copies are passed through.
type countingWriter struct {
	http.ResponseWriter
	n int64
}

func (cw *countingWriter) Write(b []byte) (int, error) {
	n, err := cw.ResponseWriter.Write(b)
	cw.n += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so chunked live-playlist
// responses are not held back by the counting layer.
func (cw *countingWriter) Flush() {
	if f, ok := cw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ReadFrom lets io.Copy use the underlying writer's ReadFrom (sendfile)
// while still counting the bytes.
func (cw *countingWriter) ReadFrom(r io.Reader) (int64, error) {
	n, err := io.Copy(cw.ResponseWriter, r)
	cw.n += n
	return n, err
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (cw *countingWriter) Unwrap() http.ResponseWriter { return cw.ResponseWriter }
