package service

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"periscope/internal/geo"
	"periscope/internal/hls"
	"periscope/internal/netem"
)

// The CDN is modelled as two tiers, matching the paper's observation that
// HLS always came from two Fastly IPs while 87 RTMP servers were seen:
//
//   - an origin tier holding one hls.Origin per popular broadcast (the
//     "transcode, repackage and deliver to Fastly" output), and
//   - edge POPs, each holding an hls.Replica per broadcast that fills
//     segments asynchronously (single-flight per segment, sliding-window
//     cache) and serves stale-while-revalidate playlists.
//
// The POPs have a geography (PR 5): each one is placed in a geo.Region,
// every fill path (POP→origin and POP→peer) runs through a netem.Link
// whose RTT derives from great-circle distance, and fills are
// hierarchical — a missing segment is probed from peer POPs that are
// strictly nearer than the origin (cache-only, nearest first) before
// falling back to the origin, so origin egress per cold segment is
// O(clusters), not O(POPs). Promotions warm replicas in the background,
// and a per-broadcast fill concurrency cap bounds one hot broadcast's
// pull on its peers.
//
// Edge playlist lag is therefore a real, measurable quantity instead of a
// pointer-sharing fiction; fills (peer vs origin), coalesced requests,
// staleness, warm-ups and evictions surface in the service snapshot.

// cdnDrainTimeout bounds the graceful drain of a POP's HTTP server at
// shutdown: in-flight segment responses get this long to complete before
// connections are dropped.
const cdnDrainTimeout = 3 * time.Second

// popFillQueueDepth bounds each POP's background fill queue (playlist
// revalidations and segment prefetches across all of its replicas).
const popFillQueueDepth = 1024

// popFillWorkers is the per-POP fill pool size: fill jobs block on origin
// HTTP fetches, so a few run in parallel or one slow broadcast would
// head-of-line-block every other replica's revalidation.
const popFillWorkers = 8

// originTier serves every registered broadcast's playlist and segments to
// the POPs — the single fill source of the CDN.
type originTier struct {
	ln  net.Listener
	srv *http.Server

	mu      sync.RWMutex
	origins map[string]*hls.Origin

	// Requests and Bytes count fill traffic served to the POPs;
	// PlaylistRequests/SegmentRequests split it by kind (the single-flight
	// tests pin SegmentRequests to one per segment however many viewers
	// fan in at the edge).
	Requests         atomic.Int64
	Bytes            atomic.Int64
	PlaylistRequests atomic.Int64
	SegmentRequests  atomic.Int64
}

func newOriginTier() (*originTier, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	o := &originTier{ln: ln, origins: map[string]*hls.Origin{}}
	o.srv = &http.Server{Handler: o}
	go o.srv.Serve(ln)
	return o, nil
}

func (o *originTier) baseURL() string { return "http://" + o.ln.Addr().String() }

// register mounts a broadcast's segmenter at /hls/<id>/. Re-registering
// the same segmenter is a no-op; a different segmenter replaces the mount
// (a broadcast re-going-live during an unregister linger must win over
// its ended predecessor).
func (o *originTier) register(id string, seg *hls.Segmenter) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if cur, ok := o.origins[id]; ok && cur.Seg == seg {
		return
	}
	o.origins[id] = &hls.Origin{Seg: seg}
}

// unregister removes the broadcast — but only if it is still backed by
// seg, so a lingering end-timer cannot tear down a re-registered live
// broadcast. A nil seg unregisters unconditionally.
func (o *originTier) unregister(id string, seg *hls.Segmenter) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if cur, ok := o.origins[id]; ok && (seg == nil || cur.Seg == seg) {
		delete(o.origins, id)
	}
}

func (o *originTier) has(id string) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	_, ok := o.origins[id]
	return ok
}

func (o *originTier) count() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.origins)
}

// counts splits the registered mounts into live broadcasts and replay
// (VOD) mounts; the latter outlive their broadcast by design.
func (o *originTier) counts() (live, replays int) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	for id := range o.origins {
		if strings.HasSuffix(id, replaySuffix) {
			replays++
		} else {
			live++
		}
	}
	return live, replays
}

// ServeHTTP routes /hls/<broadcastID>/<file> to the broadcast's origin.
func (o *originTier) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	o.Requests.Add(1)
	id, file, ok := splitHLSPath(r.URL.Path)
	if !ok {
		http.NotFound(w, r)
		return
	}
	o.mu.RLock()
	origin := o.origins[id]
	o.mu.RUnlock()
	if origin == nil {
		http.NotFound(w, r)
		return
	}
	if file == "playlist.m3u8" {
		o.PlaylistRequests.Add(1)
	} else {
		o.SegmentRequests.Add(1)
	}
	cw := &countingWriter{ResponseWriter: w}
	origin.ServeHTTP(cw, r)
	o.Bytes.Add(cw.n)
}

func (o *originTier) close() {
	ctx, cancel := context.WithTimeout(context.Background(), cdnDrainTimeout)
	defer cancel()
	if o.srv.Shutdown(ctx) != nil {
		o.srv.Close()
	}
}

// splitMountPath parses "<prefix><id>/<file>" (e.g. "/hls/<id>/<file>").
func splitMountPath(path, prefix string) (id, file string, ok bool) {
	rest := strings.TrimPrefix(path, prefix)
	slash := strings.IndexByte(rest, '/')
	if rest == path || slash < 0 {
		return "", "", false
	}
	return rest[:slash], rest[slash+1:], true
}

// splitHLSPath parses "/hls/<id>/<file>".
func splitHLSPath(path string) (id, file string, ok bool) {
	return splitMountPath(path, "/hls/")
}

// cdnPOP is one CDN edge (the study saw exactly two HLS delivery IPs,
// "located somewhere in Europe and in San Francisco" — the default
// placement). Each registered broadcast is an hls.Replica filling
// hierarchically: peer POPs nearer than the origin first (cache-only,
// over /peer/), then the origin tier. One fill worker pool per POP runs
// the background revalidations, prefetches and promotion warm-ups.
type cdnPOP struct {
	svc    *Service
	index  int
	region geo.Region
	ln     net.Listener
	srv    *http.Server
	fill   *hls.FillWorker

	// originLink/originHTTP shape the POP→origin fill path; peers are the
	// fill candidates strictly nearer than the origin, nearest first, each
	// with its own shaped link. failover is every other POP ordered by
	// RTT — the steering order viewers fall back through when this POP is
	// unhealthy. originBreaker guards the POP→origin path (shared by all
	// of this POP's replicas: link health is per upstream, not per
	// broadcast). Wired once by wireCDNTopology before the service
	// accepts traffic, immutable afterwards.
	originLink    *netem.Link
	originHTTP    *http.Client
	originBreaker *hls.Breaker
	peers         []popPeer
	failover      []*cdnPOP

	// blackhole marks the POP dead: every viewer and peer request is
	// refused with 503 until restored — the fault injection a regional
	// outage flips. reroutes counts viewers steered away from this POP
	// (it was their hash-preferred edge) because it was unhealthy.
	blackhole atomic.Bool
	reroutes  atomic.Int64
	healthT   healthTracker

	mu       sync.RWMutex
	replicas map[string]popReplica
	// retired accumulates the cumulative counters of replicas that have
	// been unregistered (broadcast churn) or replaced (relaunch), so the
	// POP's snapshot metrics stay monotonic however many broadcasts come
	// and go. Guarded by mu.
	retired retiredReplicaStats

	// Requests and Bytes count traffic served to viewers. PeerRequests
	// counts probes arriving from peer POPs, PeerServes the ones answered
	// from cache (PeerBytesOut their volume) — the serving side of the
	// peer-fill protocol.
	Requests     atomic.Int64
	Bytes        atomic.Int64
	PeerRequests atomic.Int64
	PeerServes   atomic.Int64
	PeerBytesOut atomic.Int64
}

// retiredReplicaStats holds the counter-typed (not gauge-typed) fields of
// departed replicas' stats.
type retiredReplicaStats struct {
	fills, fillBytes, fillErrors, singleFlightHits    int64
	peerFills, peerFillBytes, peerMisses, originFills int64
	warmups, fillCapWaits                             int64
	playlistRefreshes, staleServes, evictions         int64
	fillRetries, negativeHits, peerSkips              int64
}

// foldRetiredLocked absorbs a departing replica's counters (caller holds
// p.mu).
func (p *cdnPOP) foldRetiredLocked(e popReplica) {
	rs := e.rep.Stats()
	ts := e.src.Stats()
	r := &p.retired
	r.fills += rs.Fills
	r.fillBytes += rs.FillBytes
	r.fillErrors += rs.FillErrors
	r.singleFlightHits += rs.SingleFlightHits
	r.warmups += rs.Warmups
	r.fillCapWaits += rs.FillCapWaits
	r.playlistRefreshes += rs.PlaylistRefreshes
	r.staleServes += rs.StaleServes
	r.evictions += rs.Evictions
	r.peerFills += ts.PeerFills
	r.peerFillBytes += ts.PeerFillBytes
	r.peerMisses += ts.PeerMisses
	r.peerSkips += ts.PeerSkips
	r.originFills += ts.OriginFills
	r.fillRetries += rs.FillRetries
	r.negativeHits += rs.NegativeHits
}

// popPeer is one fill candidate of a POP: a peer POP, the shaped link to
// it, and the breaker guarding that link (shared by every replica's
// probes — a dead peer is dead for all broadcasts at once).
type popPeer struct {
	pop     *cdnPOP
	link    *netem.Link
	client  *http.Client
	breaker *hls.Breaker
}

// popReplica pairs an edge replica with the origin segmenter it was
// registered for, so conditional unregistration (end-linger timers) can
// tell an ended broadcast's replica from a re-registered live one, and
// with its tiered fill source for the peer/origin split in stats.
type popReplica struct {
	seg *hls.Segmenter
	rep *hls.Replica
	src *hls.TieredSource
}

// POPHealth is the steering-facing health state of one POP.
type POPHealth int

const (
	// HealthOK serves viewers normally.
	HealthOK POPHealth = iota
	// HealthDegraded still answers but its fill paths are struggling (an
	// open origin breaker or a high windowed fill error rate): new
	// viewers are steered to a healthy POP when one exists.
	HealthDegraded
	// HealthDown refuses requests (blackholed); viewers fail over.
	HealthDown
)

func (h POPHealth) String() string {
	switch h {
	case HealthOK:
		return "ok"
	case HealthDegraded:
		return "degraded"
	case HealthDown:
		return "down"
	}
	return "unknown"
}

// healthSampleInterval is how often the windowed fill error rate is
// resampled; degradedErrorRate the windowed rate past which a POP is
// considered degraded.
const (
	healthSampleInterval = 2 * time.Second
	degradedErrorRate    = 0.5
)

// healthTracker turns cumulative fill counters into a windowed error
// rate: the cumulative ratio would never recover after an outage, so the
// rate is computed over deltas between samples.
type healthTracker struct {
	mu         sync.Mutex
	lastAt     time.Time
	lastFills  int64
	lastErrors int64
	rate       float64
}

// sample folds the current cumulative totals in and returns the windowed
// error rate. Totals are resampled at most every healthSampleInterval;
// an idle window (no fills) reads as healthy.
func (t *healthTracker) sample(now time.Time, fills, errors int64) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.lastAt.IsZero() {
		t.lastAt, t.lastFills, t.lastErrors = now, fills, errors
		return t.rate
	}
	if now.Sub(t.lastAt) < healthSampleInterval {
		return t.rate
	}
	df, de := fills-t.lastFills, errors-t.lastErrors
	if df > 0 {
		t.rate = float64(de) / float64(df)
	} else {
		t.rate = 0
	}
	t.lastAt, t.lastFills, t.lastErrors = now, fills, errors
	return t.rate
}

// health classifies the POP for steering: blackholed is down; an open or
// probing origin breaker, or a high windowed fill error rate, is
// degraded. Breaker state is a pair of atomic loads, so the demand-path
// steering check is cheap.
func (p *cdnPOP) health() POPHealth {
	if p.blackhole.Load() {
		return HealthDown
	}
	if p.originBreaker != nil && p.originBreaker.State() != hls.BreakerClosed {
		return HealthDegraded
	}
	if p.fillErrorRate() > degradedErrorRate {
		return HealthDegraded
	}
	return HealthOK
}

// fillErrorRate samples the POP-wide windowed fill error rate across
// live and retired replicas.
func (p *cdnPOP) fillErrorRate() float64 {
	p.mu.RLock()
	fills, errs := p.retired.fills, p.retired.fillErrors
	for _, e := range p.replicas {
		rs := e.rep.Stats()
		fills += rs.Fills
		errs += rs.FillErrors
	}
	p.mu.RUnlock()
	return p.healthT.sample(time.Now(), fills, errs)
}

func newCDNPOP(svc *Service, index int, region geo.Region) (*cdnPOP, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	pop := &cdnPOP{
		svc:      svc,
		index:    index,
		region:   region,
		ln:       ln,
		fill:     hls.NewFillWorker(popFillQueueDepth, popFillWorkers),
		replicas: map[string]popReplica{},
	}
	pop.srv = &http.Server{Handler: pop}
	go pop.srv.Serve(ln)
	return pop, nil
}

func (p *cdnPOP) baseURL() string { return "http://" + p.ln.Addr().String() }

// register exposes a broadcast at /hls/<id>/ through an edge replica
// filling hierarchically: peer POPs nearer than the origin first
// (cache-only probes against their /peer/ mounts), then the origin tier.
// Re-registering the same segmenter keeps the warm replica; a different
// segmenter (broadcast re-went live during a linger) replaces it with a
// cold one. The replica's cache window and playlist TTL derive from the
// origin segmenter's parameters; its fill concurrency cap from the
// service config.
func (p *cdnPOP) register(id string, seg *hls.Segmenter) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if cur, ok := p.replicas[id]; ok {
		if cur.seg == seg {
			return
		}
		// Replacing an ended replica (relaunch): keep its counters.
		p.foldRetiredLocked(cur)
	}
	// Every upstream is gated by the breaker of its link: a dead origin
	// path or peer trips once per POP and every broadcast's fills skip it
	// in O(1) until the half-open probe clears.
	var origin hls.SegmentSource = &hls.FillClient{BaseURL: p.svc.origin.baseURL() + "/hls/" + id, HTTP: p.originHTTP}
	if p.originBreaker != nil {
		origin = &hls.BreakerSource{Source: origin, Breaker: p.originBreaker}
	}
	src := &hls.TieredSource{Origin: origin}
	for _, pr := range p.peers {
		var peer hls.SegmentSource = &hls.FillClient{BaseURL: pr.pop.baseURL() + "/peer/" + id, HTTP: pr.client}
		if pr.breaker != nil {
			peer = &hls.BreakerSource{Source: peer, Breaker: pr.breaker}
		}
		src.Peers = append(src.Peers, peer)
	}
	p.replicas[id] = popReplica{
		seg: seg,
		src: src,
		rep: hls.NewReplica(hls.ReplicaConfig{
			Source:             src,
			Window:             seg.WindowSize(),
			TargetDuration:     seg.Target(),
			MaxConcurrentFills: p.svc.cfg.CDNFillConcurrency,
			FillTimeout:        p.svc.cfg.CDNFillTimeout,
			FillAttempts:       p.svc.cfg.CDNFillAttempts,
			Enqueue:            p.fill.Enqueue,
		}),
	}
}

// warm schedules the broadcast's replica warm-up (background playlist
// fetch plus live-window prefetch), so a promotion does not eat a
// first-viewer miss storm. Live promotions warm; replay (VOD) mounts do
// not — prefetching a whole VOD into every POP would be the opposite of
// an optimization. It reports whether the warm-up was scheduled.
func (p *cdnPOP) warm(id string) bool {
	rep := p.replica(id)
	if rep == nil {
		return false
	}
	return rep.WarmUp()
}

// isClusterAnchor reports whether this POP is its cluster's designated
// origin-filler: the lowest-indexed member among itself and its peer
// candidates. Only anchors warm on promotion — if every POP warmed at
// once, all peer caches would be cold at probe time and each POP's
// warm-up would fall through to the origin, turning the promotion burst
// into O(POPs) origin egress. A follower's first fill instead probes its
// (by then warm) anchor.
func (p *cdnPOP) isClusterAnchor() bool {
	for _, pr := range p.peers {
		if pr.pop.index < p.index {
			return false
		}
	}
	return true
}

// unregister drops the broadcast's replica (and its cached segments) —
// but only if it still serves seg; nil unregisters unconditionally. The
// replica's counters fold into the POP's retired aggregate so snapshot
// metrics stay cumulative across broadcast churn.
func (p *cdnPOP) unregister(id string, seg *hls.Segmenter) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if cur, ok := p.replicas[id]; ok && (seg == nil || cur.seg == seg) {
		p.foldRetiredLocked(cur)
		delete(p.replicas, id)
	}
}

// has reports whether a replica is registered for id.
func (p *cdnPOP) has(id string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	_, ok := p.replicas[id]
	return ok
}

// replica returns the broadcast's edge cache (tests, snapshot).
func (p *cdnPOP) replica(id string) *hls.Replica {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.replicas[id].rep
}

// ServeHTTP routes /hls/<broadcastID>/<file> (viewer-facing, fills on
// miss) and /peer/<broadcastID>/<file> (peer-facing, cache-only).
func (p *cdnPOP) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if p.blackhole.Load() {
		// A dead POP answers nothing — viewers and peer probes alike get
		// an immediate refusal (peers' breakers turn this into O(1)
		// skips). Counted nowhere: a dead machine keeps no counters.
		http.Error(w, "pop offline", http.StatusServiceUnavailable)
		return
	}
	if id, file, ok := splitMountPath(r.URL.Path, "/peer/"); ok {
		p.servePeer(w, r, id, file)
		return
	}
	p.Requests.Add(1)
	id, _, ok := splitHLSPath(r.URL.Path)
	if !ok {
		http.NotFound(w, r)
		return
	}
	p.mu.RLock()
	rep := p.replicas[id].rep
	p.mu.RUnlock()
	if rep == nil {
		http.NotFound(w, r)
		return
	}
	cw := &countingWriter{ResponseWriter: w}
	rep.ServeHTTP(cw, r)
	p.Bytes.Add(cw.n)
}

// servePeer answers another POP's fill probe from cache only: a 404 means
// "I don't hold it, go elsewhere" — a probe must never trigger this POP's
// own fill path, or cold segments would cascade through the mesh.
func (p *cdnPOP) servePeer(w http.ResponseWriter, r *http.Request, id, file string) {
	p.PeerRequests.Add(1)
	rep := p.replica(id)
	if rep == nil {
		http.NotFound(w, r)
		return
	}
	seq, err := hls.ParseSegmentName(file)
	if err != nil {
		// Peers only exchange segments; playlists are origin-only.
		http.Error(w, "peer protocol serves segments only", http.StatusBadRequest)
		return
	}
	data, ok := rep.CachedSegment(seq)
	if !ok {
		http.NotFound(w, r)
		return
	}
	p.PeerServes.Add(1)
	p.PeerBytesOut.Add(int64(len(data)))
	w.Header().Set("Content-Type", "video/MP2T")
	w.Header().Set("Cache-Control", "max-age=3600")
	w.Write(data)
}

// close drains the POP gracefully: in-flight segment responses complete
// (up to cdnDrainTimeout) instead of being cut mid-body, then the fill
// worker stops.
func (p *cdnPOP) close() {
	ctx, cancel := context.WithTimeout(context.Background(), cdnDrainTimeout)
	defer cancel()
	if p.srv.Shutdown(ctx) != nil {
		p.srv.Close()
	}
	p.fill.Stop()
	// Drop the fill paths' keep-alive sockets: a decommissioned POP must
	// not strand origin/peer connections (and their transport
	// goroutines) just because they were warm.
	if p.originHTTP != nil {
		p.originHTTP.CloseIdleConnections()
	}
	for _, pr := range p.peers {
		if pr.client != nil {
			pr.client.CloseIdleConnections()
		}
	}
}

// SetPOPOriginFault installs (or, with a zero profile, clears) a
// probabilistic fault profile on POP i's origin fill link: injected loss
// and latency spikes degrade the fill path without taking the POP dark.
// This is the partial-degradation knob scenario timelines turn — and the
// lever the deliberately-broken SLO fixture uses to prove the harness
// fails on breach.
func (s *Service) SetPOPOriginFault(i int, p netem.FaultProfile) {
	if i < 0 || i >= len(s.cdn) {
		return
	}
	if l := s.cdn[i].originLink; l != nil {
		l.SetFault(p)
	}
}

// stats aggregates the POP's counters and its replicas' fill metrics.
func (p *cdnPOP) stats() POPSnapshot {
	st := POPSnapshot{
		Index:        p.index,
		Region:       p.region.Name,
		Requests:     p.Requests.Load(),
		Bytes:        p.Bytes.Load(),
		PeerRequests: p.PeerRequests.Load(),
		PeerServes:   p.PeerServes.Load(),
		PeerBytesOut: p.PeerBytesOut.Load(),
		Health:       p.health().String(),
		Reroutes:     p.reroutes.Load(),
	}
	if p.originBreaker != nil {
		st.OriginBreaker = p.originBreaker.State().String()
		st.BreakerTrips = p.originBreaker.Trips()
		st.BreakerRejects = p.originBreaker.Rejects()
	}
	for _, pr := range p.peers {
		if pr.breaker == nil {
			continue
		}
		st.BreakerTrips += pr.breaker.Trips()
		st.BreakerRejects += pr.breaker.Rejects()
		if pr.breaker.State() != hls.BreakerClosed {
			st.PeerBreakersOpen++
		}
	}
	st.FillErrorRate = p.fillErrorRate()
	p.mu.RLock()
	entries := make([]popReplica, 0, len(p.replicas))
	for _, e := range p.replicas {
		entries = append(entries, e)
	}
	// Departed replicas' counters: churned broadcasts must not make the
	// cumulative fill metrics dip.
	ret := p.retired
	p.mu.RUnlock()
	st.Fills = ret.fills
	st.FillBytes = ret.fillBytes
	st.FillErrors = ret.fillErrors
	st.SingleFlightHits = ret.singleFlightHits
	st.Warmups = ret.warmups
	st.FillCapWaits = ret.fillCapWaits
	st.PlaylistRefreshes = ret.playlistRefreshes
	st.StaleServes = ret.staleServes
	st.Evictions = ret.evictions
	st.PeerFills = ret.peerFills
	st.PeerFillBytes = ret.peerFillBytes
	st.PeerMisses = ret.peerMisses
	st.PeerSkips = ret.peerSkips
	st.OriginFills = ret.originFills
	st.FillRetries = ret.fillRetries
	st.NegativeHits = ret.negativeHits
	st.Broadcasts = len(entries)
	st.FillQueueDropped = p.fill.Dropped.Load()
	for _, e := range entries {
		rs := e.rep.Stats()
		st.Fills += rs.Fills
		st.FillBytes += rs.FillBytes
		st.FillErrors += rs.FillErrors
		st.SingleFlightHits += rs.SingleFlightHits
		st.PlaylistRefreshes += rs.PlaylistRefreshes
		st.StaleServes += rs.StaleServes
		st.Evictions += rs.Evictions
		st.CachedSegments += rs.CachedSegments
		st.Warmups += rs.Warmups
		st.FillCapWaits += rs.FillCapWaits
		if rs.FillCap > st.FillCap {
			st.FillCap = rs.FillCap
		}
		if rs.PlaylistAge > st.MaxPlaylistAge {
			st.MaxPlaylistAge = rs.PlaylistAge
		}
		st.FillRetries += rs.FillRetries
		st.NegativeHits += rs.NegativeHits
		ts := e.src.Stats()
		st.PeerFills += ts.PeerFills
		st.PeerFillBytes += ts.PeerFillBytes
		st.PeerMisses += ts.PeerMisses
		st.PeerSkips += ts.PeerSkips
		st.OriginFills += ts.OriginFills
	}
	if st.FillCap == 0 {
		st.FillCap = effectiveFillCap(p.svc.cfg.CDNFillConcurrency)
	}
	return st
}

// effectiveFillCap resolves the configured per-broadcast fill concurrency
// cap to the value replicas actually run with.
func effectiveFillCap(configured int) int {
	if configured > 0 {
		return configured
	}
	return hls.DefaultFillConcurrency
}

// defaultPOPRegions is the placement order when the config names none:
// the first two match the paper's observation ("located somewhere in
// Europe and in San Francisco"), further POPs spread across the remaining
// regions.
var defaultPOPRegions = []string{
	"us-west", "eu-west", "us-east", "eu-east",
	"asia-east", "south-america", "middle-east", "oceania",
}

// resolvePOPRegions maps the config onto one region per POP.
func resolvePOPRegions(cfg Config, regions []geo.Region) ([]geo.Region, error) {
	names := cfg.CDNPOPRegions
	if len(names) == 0 {
		n := cfg.CDNPOPs
		if n <= 0 {
			n = 2
		}
		for i := 0; i < n; i++ {
			names = append(names, defaultPOPRegions[i%len(defaultPOPRegions)])
		}
	}
	out := make([]geo.Region, 0, len(names))
	for _, name := range names {
		reg, ok := geo.RegionByName(regions, name)
		if !ok {
			return nil, fmt.Errorf("unknown CDN POP region %q", name)
		}
		out = append(out, reg)
	}
	return out, nil
}

// wireCDNTopology builds each POP's shaped fill paths once every POP
// exists: a link to the origin whose RTT derives from great-circle
// distance, and an ordered peer list holding every POP strictly nearer
// than the origin (nearest first) — the candidates a missing segment is
// probed from before origin fallback. Topology decisions use unscaled
// geographic RTTs; CDNLinkRTTScale only scales the modelled delay (0
// means the default scale of 1; tests and benchmarks set it NEGATIVE to
// keep the hierarchy without the sleeps).
func (s *Service) wireCDNTopology() {
	scale := s.cfg.CDNLinkRTTScale
	if scale == 0 {
		scale = 1
	} else if scale < 0 {
		scale = 0
	}
	originLoc := s.originRegion.Bounds.Center()
	for _, p := range s.cdn {
		pLoc := p.region.Bounds.Center()
		originRTT := geo.LinkRTT(pLoc, originLoc)
		p.originLink = &netem.Link{
			RTT:       time.Duration(float64(originRTT) * scale),
			Bandwidth: s.cfg.CDNLinkBandwidth,
		}
		p.originHTTP = p.originLink.Client()
		type candidate struct {
			pop *cdnPOP
			rtt time.Duration
		}
		var cands []candidate
		for _, q := range s.cdn {
			if q == p {
				continue
			}
			rtt := geo.LinkRTT(pLoc, q.region.Bounds.Center())
			if rtt < originRTT {
				cands = append(cands, candidate{q, rtt})
			}
		}
		sort.SliceStable(cands, func(i, j int) bool {
			if cands[i].rtt != cands[j].rtt {
				return cands[i].rtt < cands[j].rtt
			}
			return cands[i].pop.index < cands[j].pop.index
		})
		for _, c := range cands {
			link := &netem.Link{
				RTT:       time.Duration(float64(c.rtt) * scale),
				Bandwidth: s.cfg.CDNLinkBandwidth,
			}
			p.peers = append(p.peers, popPeer{
				pop:     c.pop,
				link:    link,
				client:  link.Client(),
				breaker: hls.NewBreaker(s.cfg.CDNBreakerFailures, s.cfg.CDNBreakerCooldown, nil),
			})
		}
		p.originBreaker = hls.NewBreaker(s.cfg.CDNBreakerFailures, s.cfg.CDNBreakerCooldown, nil)

		// Failover order for viewer steering: every other POP by RTT —
		// unlike the peer-fill candidates, it is not limited to POPs
		// nearer than the origin, because a viewer must land somewhere
		// even when the whole cluster is dark.
		type ranked struct {
			pop *cdnPOP
			rtt time.Duration
		}
		var all []ranked
		for _, q := range s.cdn {
			if q == p {
				continue
			}
			all = append(all, ranked{q, geo.LinkRTT(pLoc, q.region.Bounds.Center())})
		}
		sort.SliceStable(all, func(i, j int) bool {
			if all[i].rtt != all[j].rtt {
				return all[i].rtt < all[j].rtt
			}
			return all[i].pop.index < all[j].pop.index
		})
		for _, r := range all {
			p.failover = append(p.failover, r.pop)
		}
	}
}

// countingWriter counts bytes served without masking the wrapped
// ResponseWriter's optional interfaces: streaming playlist/segment
// responses still reach http.Flusher (directly or via
// http.ResponseController's Unwrap), and sendfile-style io.ReaderFrom
// copies are passed through.
type countingWriter struct {
	http.ResponseWriter
	n int64
}

func (cw *countingWriter) Write(b []byte) (int, error) {
	n, err := cw.ResponseWriter.Write(b)
	cw.n += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so chunked live-playlist
// responses are not held back by the counting layer.
func (cw *countingWriter) Flush() {
	if f, ok := cw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ReadFrom lets io.Copy use the underlying writer's ReadFrom (sendfile)
// while still counting the bytes.
func (cw *countingWriter) ReadFrom(r io.Reader) (int64, error) {
	n, err := io.Copy(cw.ResponseWriter, r)
	cw.n += n
	return n, err
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (cw *countingWriter) Unwrap() http.ResponseWriter { return cw.ResponseWriter }
