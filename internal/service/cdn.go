package service

import (
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"periscope/internal/hls"
)

// cdnPOP is one CDN edge (the study saw exactly two HLS delivery IPs,
// "located somewhere in Europe and in San Francisco").
type cdnPOP struct {
	svc   *Service
	index int
	ln    net.Listener
	srv   *http.Server

	mu      sync.RWMutex
	origins map[string]*hls.Origin

	// Requests and Bytes count served traffic.
	Requests atomic.Int64
	Bytes    atomic.Int64
}

func newCDNPOP(svc *Service, index int) (*cdnPOP, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	pop := &cdnPOP{svc: svc, index: index, ln: ln, origins: map[string]*hls.Origin{}}
	pop.srv = &http.Server{Handler: pop}
	go pop.srv.Serve(ln)
	return pop, nil
}

func (p *cdnPOP) baseURL() string { return "http://" + p.ln.Addr().String() }

// register exposes a broadcast's segmenter at /hls/<id>/.
func (p *cdnPOP) register(id string, seg *hls.Segmenter) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.origins[id] = &hls.Origin{Seg: seg}
}

// has reports whether an origin is registered for id.
func (p *cdnPOP) has(id string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	_, ok := p.origins[id]
	return ok
}

// ServeHTTP routes /hls/<broadcastID>/<file> to the broadcast's origin.
func (p *cdnPOP) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.Requests.Add(1)
	path := strings.TrimPrefix(r.URL.Path, "/hls/")
	slash := strings.IndexByte(path, '/')
	if slash < 0 {
		http.NotFound(w, r)
		return
	}
	id := path[:slash]
	p.mu.RLock()
	origin := p.origins[id]
	p.mu.RUnlock()
	if origin == nil {
		http.NotFound(w, r)
		return
	}
	cw := &countingWriter{ResponseWriter: w}
	origin.ServeHTTP(cw, r)
	p.Bytes.Add(cw.n)
}

func (p *cdnPOP) close() {
	p.srv.Close()
}

// countingWriter counts bytes served without masking the wrapped
// ResponseWriter's optional interfaces: streaming playlist/segment
// responses still reach http.Flusher (directly or via
// http.ResponseController's Unwrap), and sendfile-style io.ReaderFrom
// copies are passed through.
type countingWriter struct {
	http.ResponseWriter
	n int64
}

func (cw *countingWriter) Write(b []byte) (int, error) {
	n, err := cw.ResponseWriter.Write(b)
	cw.n += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so chunked live-playlist
// responses are not held back by the counting layer.
func (cw *countingWriter) Flush() {
	if f, ok := cw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ReadFrom lets io.Copy use the underlying writer's ReadFrom (sendfile)
// while still counting the bytes.
func (cw *countingWriter) ReadFrom(r io.Reader) (int64, error) {
	n, err := io.Copy(cw.ResponseWriter, r)
	cw.n += n
	return n, err
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (cw *countingWriter) Unwrap() http.ResponseWriter { return cw.ResponseWriter }
