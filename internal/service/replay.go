package service

import (
	"math/rand"
	"sync"
	"time"

	"periscope/internal/api"
	"periscope/internal/avc"
	"periscope/internal/broadcastmodel"
	"periscope/internal/hls"
	"periscope/internal/media"
)

// replayMaxDur caps how much of an ended broadcast is materialised as VOD.
const replayMaxDur = 90 * time.Second

// replaySuffix marks replay (VOD) mounts on the origin and POPs so they
// can be told apart from live broadcasts in snapshots.
const replaySuffix = "-replay"

// replays caches built VOD segmenters keyed by broadcast ID.
var replayMu sync.Mutex

// replayAccess builds (once) and serves an ended broadcast as an HLS VOD
// playlist from the CDN POPs. The content is regenerated from the
// broadcast's media seed, so the replay is bit-identical to what the live
// pipeline produced.
func (s *Service) replayAccess(b *broadcastmodel.Broadcast) (api.AccessVideoResponse, error) {
	replayMu.Lock()
	defer replayMu.Unlock()
	key := b.ID + replaySuffix
	pop := s.cdn[int(fnv32(b.ID))%len(s.cdn)]
	if !pop.has(key) {
		seg := buildReplay(b, s.cfg.SegmentTarget)
		s.origin.register(key, seg)
		for _, p := range s.cdn {
			p.register(key, seg)
		}
	}
	return api.AccessVideoResponse{
		Protocol:   "HLS",
		HLSBaseURL: pop.baseURL() + "/hls/" + key,
		StreamName: b.ID,
		Replay:     true,
	}, nil
}

// buildReplay renders the broadcast's stream into a VOD segment set.
func buildReplay(b *broadcastmodel.Broadcast, target time.Duration) *hls.Segmenter {
	dur := b.Duration()
	if dur > replayMaxDur {
		dur = replayMaxDur
	}
	rng := rand.New(rand.NewSource(b.Seed))
	cfg := media.RandomEncoderConfig(rng)
	cfg.EmitPayload = true
	enc := media.NewEncoder(cfg, b.Start)
	// Unbounded window: a VOD playlist lists every segment and ends with
	// EXT-X-ENDLIST.
	seg := hls.NewSegmenter(target, 1<<30)
	now := b.Start
	for {
		f := enc.NextFrame()
		if f.PTS > dur {
			break
		}
		if f.Dropped {
			continue
		}
		seg.WriteVideo(now.Add(f.PTS), f.PTS, f.DTS, f.Keyframe, avc.MarshalAnnexB(f.NALs))
	}
	seg.Finish(now.Add(dur))
	return seg
}
