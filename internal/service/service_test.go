package service

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"periscope/internal/api"
	"periscope/internal/avc"
	"periscope/internal/broadcastmodel"
	"periscope/internal/flv"
	"periscope/internal/hls"
	"periscope/internal/mpegts"
	"periscope/internal/rtmp"
)

func startService(t *testing.T) *Service {
	t.Helper()
	cfg := DefaultConfig()
	cfg.PopConfig.TargetConcurrent = 120
	cfg.SegmentTarget = 800 * time.Millisecond // short segments keep tests fast
	svc, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

// pickBroadcast returns a live broadcast with the given popularity class.
// AccessVideo classifies by ViewersAt (base level scaled by a ramp-up,
// decay and jitter), so the picks must leave margin: an "unpopular" cast
// must stay under the threshold for the duration of the test, and a
// promoted "popular" cast must be past the arrival ramp, not just have a
// large base level.
func pickBroadcast(t *testing.T, svc *Service, popular bool) *broadcastmodel.Broadcast {
	t.Helper()
	now := svc.Pop.Now()
	th := svc.cfg.HLSViewerThreshold
	if !popular {
		for _, b := range svc.Pop.Live() {
			// Jitter peaks at 1.15× the base level; stay clear of it.
			if !b.Private && b.BaseViewers*1.2 < float64(th) {
				return b
			}
		}
		t.Fatal("no unpopular broadcast found")
	}
	for _, b := range svc.Pop.Live() {
		if !b.Private && b.ViewersAt(now) >= 2*th {
			return b
		}
	}
	// Popular casts are rare at small scale: promote one artificially,
	// backdating the start past the viewer-arrival ramp so ViewersAt
	// agrees with the promotion immediately.
	for _, b := range svc.Pop.Live() {
		if !b.Private {
			b.BaseViewers = 500
			if age := now.Sub(b.Start); age < 10*time.Minute {
				b.Start = now.Add(-10 * time.Minute)
			}
			if v := b.ViewersAt(now); v < th {
				t.Fatalf("promoted broadcast still has %d < %d viewers", v, th)
			}
			return b
		}
	}
	t.Fatal("no broadcast at all")
	return nil
}

func TestProtocolSelectionPolicy(t *testing.T) {
	svc := startService(t)
	cli := api.NewClient(svc.APIBaseURL(), "s1", nil)

	quiet := pickBroadcast(t, svc, false)
	resp, err := cli.AccessVideo(quiet.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Protocol != "RTMP" || resp.RTMPAddr == "" {
		t.Errorf("unpopular cast got %+v", resp)
	}
	if !strings.HasPrefix(resp.RTMPServer, "vidman-") {
		t.Errorf("server name = %q", resp.RTMPServer)
	}

	popular := pickBroadcast(t, svc, true)
	resp2, err := cli.AccessVideo(popular.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Protocol != "HLS" || resp2.HLSBaseURL == "" {
		t.Errorf("popular cast got %+v", resp2)
	}
}

func TestRTMPViewingEndToEnd(t *testing.T) {
	svc := startService(t)
	cli := api.NewClient(svc.APIBaseURL(), "s1", nil)
	b := pickBroadcast(t, svc, false)
	acc, err := cli.AccessVideo(b.ID)
	if err != nil {
		t.Fatal(err)
	}

	viewer, err := rtmp.Dial(acc.RTMPAddr, "live")
	if err != nil {
		t.Fatal(err)
	}
	defer viewer.Close()
	if err := viewer.Play(acc.StreamName); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(15 * time.Second)
	var gotSeqHeader, gotKeyframe, gotAudio, gotTimestamp bool
	for time.Now().Before(deadline) {
		if gotSeqHeader && gotKeyframe && gotAudio && gotTimestamp {
			break
		}
		msg, err := viewer.ReadMessage()
		if err != nil {
			t.Fatalf("viewer read: %v", err)
		}
		switch msg.TypeID {
		case rtmp.TypeVideo:
			vt, err := flv.ParseVideoTagData(msg.Payload)
			if err != nil {
				t.Fatalf("video tag: %v", err)
			}
			switch vt.PacketType {
			case flv.AVCSeqHeader:
				gotSeqHeader = true
				if _, _, err := flv.ParseDecoderConfig(vt.Data); err != nil {
					t.Errorf("decoder config: %v", err)
				}
			case flv.AVCNALU:
				units, err := avc.ParseAVCC(vt.Data)
				if err != nil {
					t.Fatalf("AVCC: %v", err)
				}
				if vt.FrameType == flv.VideoKeyFrame {
					gotKeyframe = true
				}
				if _, ok := avc.FindTimestamp(units); ok {
					gotTimestamp = true
				}
			}
		case rtmp.TypeAudio:
			gotAudio = true
		}
	}
	if !gotSeqHeader || !gotKeyframe || !gotAudio {
		t.Fatalf("seqHeader=%v keyframe=%v audio=%v", gotSeqHeader, gotKeyframe, gotAudio)
	}
	if !gotTimestamp {
		t.Error("no broadcaster NTP timestamp observed in the stream")
	}
}

func TestFirstForwardedFrameIsKeyframe(t *testing.T) {
	svc := startService(t)
	cli := api.NewClient(svc.APIBaseURL(), "s1", nil)
	b := pickBroadcast(t, svc, false)
	acc, err := cli.AccessVideo(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Let the broadcaster run into the middle of a GOP before joining.
	time.Sleep(700 * time.Millisecond)
	viewer, err := rtmp.Dial(acc.RTMPAddr, "live")
	if err != nil {
		t.Fatal(err)
	}
	defer viewer.Close()
	if err := viewer.Play(acc.StreamName); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		msg, err := viewer.ReadMessage()
		if err != nil {
			t.Fatal(err)
		}
		if msg.TypeID != rtmp.TypeVideo {
			continue
		}
		vt, err := flv.ParseVideoTagData(msg.Payload)
		if err != nil || vt.PacketType != flv.AVCNALU {
			continue
		}
		if vt.FrameType != flv.VideoKeyFrame {
			t.Fatal("first forwarded frame is not a keyframe")
		}
		return
	}
	t.Fatal("no video frame within deadline")
}

func TestHLSViewingEndToEnd(t *testing.T) {
	svc := startService(t)
	cli := api.NewClient(svc.APIBaseURL(), "s1", nil)
	b := pickBroadcast(t, svc, true)
	acc, err := cli.AccessVideo(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Protocol != "HLS" {
		t.Fatalf("protocol = %s", acc.Protocol)
	}
	var segMu sync.Mutex
	var segs []hls.FetchedSegment
	client := hls.NewClient(hls.ClientConfig{
		BaseURL:      acc.HLSBaseURL,
		PollInterval: 200 * time.Millisecond,
		OnSegment: func(fs hls.FetchedSegment) {
			segMu.Lock()
			segs = append(segs, fs)
			segMu.Unlock()
		},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 12*time.Second)
	defer cancel()
	go func() {
		<-ctx.Done()
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		client.Run(ctx)
	}()
	// Wait until a few segments arrived, then stop.
	for i := 0; i < 120; i++ {
		time.Sleep(100 * time.Millisecond)
		segMu.Lock()
		n := len(segs)
		segMu.Unlock()
		if n >= 3 {
			cancel()
			break
		}
	}
	<-done
	if len(segs) < 3 {
		t.Fatalf("only %d segments fetched", len(segs))
	}
	for _, s := range segs {
		units, err := mpegts.DemuxAll(s.Data)
		if err != nil {
			t.Fatalf("segment %d: %v", s.Sequence, err)
		}
		var hasVideo, hasAudio bool
		for _, u := range units {
			switch u.PID {
			case mpegts.PIDVideo:
				hasVideo = true
			case mpegts.PIDAudio:
				hasAudio = true
			}
		}
		if !hasVideo || !hasAudio {
			t.Errorf("segment %d video=%v audio=%v", s.Sequence, hasVideo, hasAudio)
		}
	}
}

func TestRTMPServerFleetNaming(t *testing.T) {
	svc := startService(t)
	names := svc.RTMPServerNames()
	if len(names) < 6 {
		t.Fatalf("only %d regional servers", len(names))
	}
	for name, rev := range names {
		if !strings.HasPrefix(name, "vidman-") || !strings.HasSuffix(name, ".periscope.tv") {
			t.Errorf("bad server name %q", name)
		}
		if !strings.HasPrefix(rev, "ec2-") || !strings.HasSuffix(rev, ".compute.amazonaws.com") {
			t.Errorf("bad reverse name %q", rev)
		}
	}
}

func TestAccessVideoUnknownBroadcast(t *testing.T) {
	svc := startService(t)
	cli := api.NewClient(svc.APIBaseURL(), "s1", nil)
	if _, err := cli.AccessVideo("nope0000nope0"); err == nil {
		t.Error("want error for unknown broadcast")
	}
}

func TestHubViewerAccounting(t *testing.T) {
	svc := startService(t)
	cli := api.NewClient(svc.APIBaseURL(), "s1", nil)
	b := pickBroadcast(t, svc, false)
	acc, err := cli.AccessVideo(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	h := svc.hubFor(b.ID)
	if h == nil {
		t.Fatal("no hub after AccessVideo")
	}
	viewer, err := rtmp.Dial(acc.RTMPAddr, "live")
	if err != nil {
		t.Fatal(err)
	}
	if err := viewer.Play(acc.StreamName); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return h.ViewerCount() == 1 }, "viewer attach")
	viewer.Close()
	waitFor(t, func() bool { return h.ViewerCount() == 0 }, "viewer detach")
	_ = net.ErrClosed
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}
