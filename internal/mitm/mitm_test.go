package mitm

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"periscope/internal/api"
	"periscope/internal/broadcastmodel"
)

func TestProxyForwardsAndLogs(t *testing.T) {
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("X-Upstream", "yes")
		w.Write(append([]byte("echo:"), body...))
	}))
	defer upstream.Close()

	p, err := NewProxy(upstream.URL, Hooks{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	defer front.Close()

	resp, err := http.Post(front.URL+"/api/v2/test", "text/plain", strings.NewReader("hello"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "echo:hello" {
		t.Errorf("body = %q", body)
	}
	if resp.Header.Get("X-Upstream") != "yes" {
		t.Error("upstream headers not relayed")
	}
	flows := p.Flows()
	if len(flows) != 1 {
		t.Fatalf("flows = %d", len(flows))
	}
	if string(flows[0].ReqBody) != "hello" || string(flows[0].RespBody) != "echo:hello" {
		t.Error("flow contents wrong")
	}
	if DumpFlow(flows[0]) == "" {
		t.Error("DumpFlow empty")
	}
}

func TestOnRequestRewritesBody(t *testing.T) {
	// The §4 crawler is an inline script that replaces request contents
	// (e.g. swapping the broadcast-id list into /getBroadcasts); verify
	// that mechanism.
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		w.Write(body)
	}))
	defer upstream.Close()
	hooks := Hooks{
		OnRequest: func(req *http.Request, body []byte) []byte {
			return bytes.ToUpper(body)
		},
	}
	p, err := NewProxy(upstream.URL, hooks, nil)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	defer front.Close()
	resp, err := http.Post(front.URL+"/x", "text/plain", strings.NewReader("rewrite me"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "REWRITE ME" {
		t.Errorf("body = %q", body)
	}
}

func TestOnResponseObserves(t *testing.T) {
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"broadcasts":[]}`))
	}))
	defer upstream.Close()
	var observed []string
	hooks := Hooks{OnResponse: func(f *Flow) {
		observed = append(observed, f.Request.URL.Path)
	}}
	p, err := NewProxy(upstream.URL, hooks, nil)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	defer front.Close()
	http.Post(front.URL+"/api/v2/mapGeoBroadcastFeed", "application/json", strings.NewReader("{}"))
	if len(observed) != 1 || observed[0] != "/api/v2/mapGeoBroadcastFeed" {
		t.Errorf("observed = %v", observed)
	}
}

func TestUpstreamUnreachable(t *testing.T) {
	p, err := NewProxy("http://127.0.0.1:1", Hooks{}, &http.Client{Timeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	defer front.Close()
	resp, err := http.Post(front.URL+"/x", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("status = %d, want 502", resp.StatusCode)
	}
}

// TestCrawlerThroughProxy wires the full §2 architecture: the API client
// talks through the MITM proxy to the API server, and an inline-script
// hook harvests the broadcasts from /mapGeoBroadcastFeed responses,
// exactly like the paper's crawler.
func TestCrawlerThroughProxy(t *testing.T) {
	pc := broadcastmodel.DefaultConfig()
	pc.TargetConcurrent = 300
	pop := broadcastmodel.New(pc, time.Date(2016, 4, 1, 12, 0, 0, 0, time.UTC))
	apiSrv := httptest.NewServer(api.NewServer(pop, nil, api.ServerConfig{MapVisibleCap: 50}))
	defer apiSrv.Close()

	harvested := map[string]bool{}
	hooks := Hooks{OnResponse: func(f *Flow) {
		if !strings.HasSuffix(f.Request.URL.Path, "mapGeoBroadcastFeed") {
			return
		}
		var resp api.MapGeoBroadcastFeedResponse
		if json.Unmarshal(f.RespBody, &resp) == nil {
			for _, b := range resp.Broadcasts {
				harvested[b.ID] = true
			}
		}
	}}
	p, err := NewProxy(apiSrv.URL, hooks, nil)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	defer front.Close()

	cli := api.NewClient(front.URL, "through-proxy", nil)
	resp, err := cli.MapGeoBroadcastFeed(api.MapGeoBroadcastFeedRequest{
		P1Lat: -90, P1Lng: -180, P2Lat: 90, P2Lng: 180,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Broadcasts) == 0 {
		t.Fatal("client saw no broadcasts through the proxy")
	}
	if len(harvested) != len(resp.Broadcasts) {
		t.Errorf("inline script harvested %d, client saw %d", len(harvested), len(resp.Broadcasts))
	}
}
