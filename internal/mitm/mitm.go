// Package mitm implements the intercepting proxy that stands in for the
// mitmproxy deployment of §2: the Periscope app's HTTP(S) API traffic is
// routed through the proxy, which can observe and rewrite requests and
// responses via mitmproxy-style "inline scripts" (Go hooks here). The
// crawler of §4 is implemented as exactly such a hook pair: it intercepts
// /mapGeoBroadcastFeed requests, replays them with modified coordinates,
// and harvests the responses.
//
// The study used the Android app because iOS pins certificates; in this
// reproduction the service speaks plain HTTP to the proxy, which matches
// the behaviour of a transparent mitmproxy after TLS termination.
package mitm

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync"
)

// Flow is one intercepted request/response exchange, mirroring the flow
// object mitmproxy hands to inline scripts.
type Flow struct {
	Request  *http.Request
	ReqBody  []byte
	Response *http.Response
	RespBody []byte
}

// Hooks are the inline-script callbacks. Either may be nil. OnRequest may
// mutate the outgoing request (including its body via the returned slice);
// OnResponse sees the response before it reaches the client.
type Hooks struct {
	// OnRequest is called before forwarding; returning a non-nil body
	// replaces the request body.
	OnRequest func(req *http.Request, body []byte) (newBody []byte)
	// OnResponse is called with the upstream response before relaying.
	OnResponse func(flow *Flow)
}

// Proxy is a transparent reverse proxy towards a fixed upstream (the
// Periscope API endpoint), exposing inline-script hooks and a flow log.
type Proxy struct {
	upstream *url.URL
	hooks    Hooks
	client   *http.Client

	mu    sync.Mutex
	flows []*Flow
	// KeepFlows controls whether exchanged flows are retained in memory.
	KeepFlows bool
}

// NewProxy creates a proxy forwarding to upstreamURL. httpClient may be
// nil for the default client (tests inject shaped clients).
func NewProxy(upstreamURL string, hooks Hooks, httpClient *http.Client) (*Proxy, error) {
	u, err := url.Parse(upstreamURL)
	if err != nil {
		return nil, err
	}
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Proxy{upstream: u, hooks: hooks, client: httpClient, KeepFlows: true}, nil
}

// ServeHTTP forwards the request to the upstream, invoking hooks.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "proxy: reading request", http.StatusBadGateway)
		return
	}
	r.Body.Close()

	if p.hooks.OnRequest != nil {
		if nb := p.hooks.OnRequest(r, body); nb != nil {
			body = nb
		}
	}

	outURL := *p.upstream
	outURL.Path = r.URL.Path
	outURL.RawQuery = r.URL.RawQuery
	out, err := http.NewRequestWithContext(r.Context(), r.Method, outURL.String(), bytes.NewReader(body))
	if err != nil {
		http.Error(w, "proxy: building request", http.StatusBadGateway)
		return
	}
	out.Header = r.Header.Clone()
	out.ContentLength = int64(len(body))

	resp, err := p.client.Do(out)
	if err != nil {
		http.Error(w, "proxy: upstream unreachable", http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		http.Error(w, "proxy: reading response", http.StatusBadGateway)
		return
	}

	flow := &Flow{Request: out, ReqBody: body, Response: resp, RespBody: respBody}
	if p.hooks.OnResponse != nil {
		p.hooks.OnResponse(flow)
	}
	if p.KeepFlows {
		p.mu.Lock()
		p.flows = append(p.flows, flow)
		p.mu.Unlock()
	}

	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(flow.RespBody)
}

// Flows returns a snapshot of the intercepted exchanges.
func (p *Proxy) Flows() []*Flow {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*Flow(nil), p.flows...)
}

// DumpFlow renders a flow like mitmproxy's console view, for debugging.
func DumpFlow(f *Flow) string {
	var b bytes.Buffer
	if req, err := httputil.DumpRequestOut(f.Request, false); err == nil {
		b.Write(req)
	}
	b.Write(f.ReqBody)
	b.WriteString("\n---\n")
	if f.Response != nil {
		b.WriteString(f.Response.Status + "\n")
	}
	b.Write(f.RespBody)
	return b.String()
}
