// Package amf implements the AMF0 (Action Message Format) encoding used by
// RTMP command messages (connect, createStream, play, publish, onStatus).
// The supported types cover everything the RTMP control plane exchanges:
// numbers, booleans, strings (short and long), objects, ECMA arrays,
// strict arrays, dates, null and undefined.
package amf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// AMF0 type markers.
const (
	markerNumber      = 0x00
	markerBoolean     = 0x01
	markerString      = 0x02
	markerObject      = 0x03
	markerNull        = 0x05
	markerUndefined   = 0x06
	markerECMAArray   = 0x08
	markerObjectEnd   = 0x09
	markerStrictArray = 0x0A
	markerDate        = 0x0B
	markerLongString  = 0x0C
)

// Undefined is the AMF0 undefined value.
type Undefined struct{}

// Date is an AMF0 date: milliseconds since the Unix epoch (the embedded
// time-zone field is always zero on the wire, per spec recommendation).
type Date struct {
	UnixMillis float64
}

// Object is an AMF0 anonymous object: ordered key/value pairs. Encoding
// sorts keys for determinism; decoding preserves wire order.
type Object map[string]any

// ECMAArray is an associative array with a length hint.
type ECMAArray map[string]any

// ErrTruncated is returned when the buffer ends mid-value.
var ErrTruncated = errors.New("amf: truncated value")

// Marshal appends the AMF0 encoding of each value to a new buffer.
// Supported Go types: float64 (and all int kinds, converted), bool, string,
// Object, ECMAArray, []any, Date, Undefined and nil.
func Marshal(values ...any) ([]byte, error) {
	var buf []byte
	for _, v := range values {
		var err error
		buf, err = appendValue(buf, v)
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func appendValue(buf []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(buf, markerNull), nil
	case Undefined:
		return append(buf, markerUndefined), nil
	case float64:
		return appendNumber(buf, x), nil
	case float32:
		return appendNumber(buf, float64(x)), nil
	case int:
		return appendNumber(buf, float64(x)), nil
	case int32:
		return appendNumber(buf, float64(x)), nil
	case int64:
		return appendNumber(buf, float64(x)), nil
	case uint32:
		return appendNumber(buf, float64(x)), nil
	case bool:
		b := byte(0)
		if x {
			b = 1
		}
		return append(buf, markerBoolean, b), nil
	case string:
		if len(x) > math.MaxUint16 {
			buf = append(buf, markerLongString)
			var l [4]byte
			binary.BigEndian.PutUint32(l[:], uint32(len(x)))
			buf = append(buf, l[:]...)
			return append(buf, x...), nil
		}
		buf = append(buf, markerString)
		return appendUTF8(buf, x), nil
	case Object:
		buf = append(buf, markerObject)
		return appendProperties(buf, x)
	case ECMAArray:
		buf = append(buf, markerECMAArray)
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(x)))
		buf = append(buf, l[:]...)
		return appendProperties(buf, map[string]any(x))
	case []any:
		buf = append(buf, markerStrictArray)
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(x)))
		buf = append(buf, l[:]...)
		for _, item := range x {
			var err error
			buf, err = appendValue(buf, item)
			if err != nil {
				return nil, err
			}
		}
		return buf, nil
	case Date:
		buf = append(buf, markerDate)
		var d [8]byte
		binary.BigEndian.PutUint64(d[:], math.Float64bits(x.UnixMillis))
		buf = append(buf, d[:]...)
		return append(buf, 0, 0), nil // time zone, always zero
	default:
		return nil, fmt.Errorf("amf: unsupported type %T", v)
	}
}

func appendNumber(buf []byte, f float64) []byte {
	buf = append(buf, markerNumber)
	var d [8]byte
	binary.BigEndian.PutUint64(d[:], math.Float64bits(f))
	return append(buf, d[:]...)
}

func appendUTF8(buf []byte, s string) []byte {
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(s)))
	buf = append(buf, l[:]...)
	return append(buf, s...)
}

func appendProperties(buf []byte, m map[string]any) ([]byte, error) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		buf = appendUTF8(buf, k)
		var err error
		buf, err = appendValue(buf, m[k])
		if err != nil {
			return nil, err
		}
	}
	buf = appendUTF8(buf, "")
	return append(buf, markerObjectEnd), nil
}

// Unmarshal decodes every AMF0 value in buf.
func Unmarshal(buf []byte) ([]any, error) {
	var out []any
	for len(buf) > 0 {
		v, rest, err := readValue(buf)
		if err != nil {
			return out, err
		}
		out = append(out, v)
		buf = rest
	}
	return out, nil
}

func readValue(buf []byte) (any, []byte, error) {
	if len(buf) == 0 {
		return nil, nil, ErrTruncated
	}
	marker := buf[0]
	buf = buf[1:]
	switch marker {
	case markerNumber:
		if len(buf) < 8 {
			return nil, nil, ErrTruncated
		}
		f := math.Float64frombits(binary.BigEndian.Uint64(buf[:8]))
		return f, buf[8:], nil
	case markerBoolean:
		if len(buf) < 1 {
			return nil, nil, ErrTruncated
		}
		return buf[0] != 0, buf[1:], nil
	case markerString:
		s, rest, err := readUTF8(buf)
		return s, rest, err
	case markerLongString:
		if len(buf) < 4 {
			return nil, nil, ErrTruncated
		}
		n := int(binary.BigEndian.Uint32(buf[:4]))
		buf = buf[4:]
		if len(buf) < n {
			return nil, nil, ErrTruncated
		}
		return string(buf[:n]), buf[n:], nil
	case markerObject:
		m, rest, err := readProperties(buf)
		return Object(m), rest, err
	case markerECMAArray:
		if len(buf) < 4 {
			return nil, nil, ErrTruncated
		}
		m, rest, err := readProperties(buf[4:])
		return ECMAArray(m), rest, err
	case markerStrictArray:
		if len(buf) < 4 {
			return nil, nil, ErrTruncated
		}
		n := int(binary.BigEndian.Uint32(buf[:4]))
		buf = buf[4:]
		arr := make([]any, 0, n)
		for i := 0; i < n; i++ {
			var v any
			var err error
			v, buf, err = readValue(buf)
			if err != nil {
				return nil, nil, err
			}
			arr = append(arr, v)
		}
		return arr, buf, nil
	case markerDate:
		if len(buf) < 10 {
			return nil, nil, ErrTruncated
		}
		ms := math.Float64frombits(binary.BigEndian.Uint64(buf[:8]))
		return Date{UnixMillis: ms}, buf[10:], nil
	case markerNull:
		return nil, buf, nil
	case markerUndefined:
		return Undefined{}, buf, nil
	case markerObjectEnd:
		return nil, nil, errors.New("amf: unexpected object-end marker")
	default:
		return nil, nil, fmt.Errorf("amf: unsupported marker %#x", marker)
	}
}

func readUTF8(buf []byte) (string, []byte, error) {
	if len(buf) < 2 {
		return "", nil, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(buf[:2]))
	buf = buf[2:]
	if len(buf) < n {
		return "", nil, ErrTruncated
	}
	return string(buf[:n]), buf[n:], nil
}

func readProperties(buf []byte) (map[string]any, []byte, error) {
	m := map[string]any{}
	for {
		key, rest, err := readUTF8(buf)
		if err != nil {
			return nil, nil, err
		}
		buf = rest
		if key == "" {
			if len(buf) == 0 || buf[0] != markerObjectEnd {
				return nil, nil, errors.New("amf: missing object-end marker")
			}
			return m, buf[1:], nil
		}
		var v any
		v, buf, err = readValue(buf)
		if err != nil {
			return nil, nil, err
		}
		m[key] = v
	}
}
