package amf

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, vals ...any) []any {
	t.Helper()
	buf, err := Marshal(vals...)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	out, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	return out
}

func TestNumberRoundTrip(t *testing.T) {
	out := roundTrip(t, 3.5, 42, int64(-7))
	want := []any{3.5, 42.0, -7.0}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("got %v, want %v", out, want)
	}
}

func TestBooleanStringNull(t *testing.T) {
	out := roundTrip(t, true, false, "hello", nil, Undefined{})
	if out[0] != true || out[1] != false || out[2] != "hello" || out[3] != nil {
		t.Errorf("got %v", out)
	}
	if _, ok := out[4].(Undefined); !ok {
		t.Errorf("undefined lost: %T", out[4])
	}
}

func TestLongString(t *testing.T) {
	long := strings.Repeat("x", 70000)
	out := roundTrip(t, long)
	if out[0] != long {
		t.Error("long string mangled")
	}
}

func TestObjectRoundTrip(t *testing.T) {
	obj := Object{
		"app":         "periscope/live",
		"flashVer":    "LNX 11,2,202",
		"tcUrl":       "rtmp://vidman-eu-central-1.periscope.tv:80/live",
		"fpad":        false,
		"audioCodecs": 3191.0,
	}
	out := roundTrip(t, obj)
	got, ok := out[0].(Object)
	if !ok {
		t.Fatalf("type %T", out[0])
	}
	if !reflect.DeepEqual(got, obj) {
		t.Errorf("got %v, want %v", got, obj)
	}
}

func TestNestedObject(t *testing.T) {
	obj := Object{
		"outer": Object{"inner": 1.0, "deep": Object{"x": "y"}},
		"arr":   []any{1.0, "two", nil},
	}
	out := roundTrip(t, obj)
	if !reflect.DeepEqual(out[0], obj) {
		t.Errorf("nested mismatch: %v", out[0])
	}
}

func TestECMAArray(t *testing.T) {
	arr := ECMAArray{"duration": 0.0, "width": 320.0, "height": 568.0}
	out := roundTrip(t, arr)
	if !reflect.DeepEqual(out[0], arr) {
		t.Errorf("got %v", out[0])
	}
}

func TestStrictArray(t *testing.T) {
	arr := []any{1.0, 2.0, "three", true}
	out := roundTrip(t, arr)
	if !reflect.DeepEqual(out[0], arr) {
		t.Errorf("got %v", out[0])
	}
}

func TestDate(t *testing.T) {
	d := Date{UnixMillis: 1478088000000}
	out := roundTrip(t, d)
	if !reflect.DeepEqual(out[0], d) {
		t.Errorf("got %v", out[0])
	}
}

func TestCommandMessageShape(t *testing.T) {
	// The canonical RTMP connect command layout.
	buf, err := Marshal("connect", 1.0, Object{"app": "live"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != "connect" || out[1] != 1.0 {
		t.Errorf("command shape broken: %v", out)
	}
}

func TestTruncatedInputs(t *testing.T) {
	buf, _ := Marshal("hello", 3.14, Object{"k": "v"})
	for cut := 1; cut < len(buf); cut++ {
		// Must never panic; error or short result both acceptable.
		Unmarshal(buf[:cut])
	}
}

func TestUnsupportedType(t *testing.T) {
	if _, err := Marshal(struct{}{}); err == nil {
		t.Error("want error for unsupported type")
	}
}

func TestNumberPropertyQuick(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true // NaN != NaN; skip
		}
		out := roundTripQuiet(x)
		return len(out) == 1 && out[0] == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringPropertyQuick(t *testing.T) {
	f := func(s string) bool {
		out := roundTripQuiet(s)
		return len(out) == 1 && out[0] == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestObjectPropertyQuick(t *testing.T) {
	f := func(keys []string, vals []float64) bool {
		obj := Object{}
		for i, k := range keys {
			if k == "" || i >= len(vals) || math.IsNaN(vals[i]) {
				continue
			}
			obj[k] = vals[i]
		}
		out := roundTripQuiet(obj)
		return len(out) == 1 && reflect.DeepEqual(out[0], obj)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func roundTripQuiet(vals ...any) []any {
	buf, err := Marshal(vals...)
	if err != nil {
		return nil
	}
	out, err := Unmarshal(buf)
	if err != nil {
		return nil
	}
	return out
}
