package hls

import (
	"testing"

	"periscope/internal/leakcheck"
)

// TestMain enforces the runtime half of the gostop contract: replica
// fill workers and origin helpers must exit with their owners.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
