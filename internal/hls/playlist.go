// Package hls implements HTTP Live Streaming as Periscope uses it for
// popular broadcasts (§3, §5): M3U8 media playlists, a live sliding-window
// segmenter cutting MPEG-TS segments at keyframes (most segments ~3.6 s,
// ranging 3-6 s, §5.2), an HTTP delivery handler standing in for the
// Fastly CDN edge, and a polling client that may fetch segments over
// multiple parallel connections, as the paper observed.
package hls

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Segment is one entry of a media playlist.
type Segment struct {
	URI      string
	Duration float64 // seconds
	Sequence int
}

// MediaPlaylist is an HLS media playlist (live window or VOD).
type MediaPlaylist struct {
	Version        int
	TargetDuration int
	MediaSequence  int
	Segments       []Segment
	Ended          bool
}

// Marshal renders the playlist in M3U8 format.
func (p MediaPlaylist) Marshal() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "#EXTM3U\n")
	version := p.Version
	if version == 0 {
		version = 3
	}
	fmt.Fprintf(&b, "#EXT-X-VERSION:%d\n", version)
	fmt.Fprintf(&b, "#EXT-X-TARGETDURATION:%d\n", p.TargetDuration)
	fmt.Fprintf(&b, "#EXT-X-MEDIA-SEQUENCE:%d\n", p.MediaSequence)
	for _, s := range p.Segments {
		fmt.Fprintf(&b, "#EXTINF:%.3f,\n%s\n", s.Duration, s.URI)
	}
	if p.Ended {
		fmt.Fprintf(&b, "#EXT-X-ENDLIST\n")
	}
	return b.Bytes()
}

// ParseMediaPlaylist decodes an M3U8 media playlist.
func ParseMediaPlaylist(data []byte) (MediaPlaylist, error) {
	var p MediaPlaylist
	sc := bufio.NewScanner(bytes.NewReader(data))
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != "#EXTM3U" {
		return p, errors.New("hls: missing #EXTM3U header")
	}
	var pendingDur *float64
	seq := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "#EXT-X-VERSION:"):
			v, err := strconv.Atoi(strings.TrimPrefix(line, "#EXT-X-VERSION:"))
			if err != nil {
				return p, fmt.Errorf("hls: bad version: %w", err)
			}
			p.Version = v
		case strings.HasPrefix(line, "#EXT-X-TARGETDURATION:"):
			v, err := strconv.Atoi(strings.TrimPrefix(line, "#EXT-X-TARGETDURATION:"))
			if err != nil {
				return p, fmt.Errorf("hls: bad target duration: %w", err)
			}
			p.TargetDuration = v
		case strings.HasPrefix(line, "#EXT-X-MEDIA-SEQUENCE:"):
			v, err := strconv.Atoi(strings.TrimPrefix(line, "#EXT-X-MEDIA-SEQUENCE:"))
			if err != nil {
				return p, fmt.Errorf("hls: bad media sequence: %w", err)
			}
			p.MediaSequence = v
			seq = v
		case strings.HasPrefix(line, "#EXTINF:"):
			spec := strings.TrimPrefix(line, "#EXTINF:")
			if i := strings.IndexByte(spec, ','); i >= 0 {
				spec = spec[:i]
			}
			d, err := strconv.ParseFloat(spec, 64)
			if err != nil {
				return p, fmt.Errorf("hls: bad EXTINF: %w", err)
			}
			pendingDur = &d
		case line == "#EXT-X-ENDLIST":
			p.Ended = true
		case strings.HasPrefix(line, "#"):
			continue // unknown tag
		default:
			if pendingDur == nil {
				return p, fmt.Errorf("hls: segment URI %q without EXTINF", line)
			}
			p.Segments = append(p.Segments, Segment{URI: line, Duration: *pendingDur, Sequence: seq})
			seq++
			pendingDur = nil
		}
	}
	return p, sc.Err()
}

// MaxSegmentDuration returns the longest segment duration, or 0.
func (p MediaPlaylist) MaxSegmentDuration() float64 {
	var m float64
	for _, s := range p.Segments {
		m = math.Max(m, s.Duration)
	}
	return m
}
