package hls

import (
	"bytes"
	"context"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"periscope/internal/avc"
	"periscope/internal/media"
	"periscope/internal/mpegts"
)

func TestPlaylistRoundTrip(t *testing.T) {
	p := MediaPlaylist{
		TargetDuration: 4,
		MediaSequence:  12,
		Segments: []Segment{
			{URI: "seg000012.ts", Duration: 3.6},
			{URI: "seg000013.ts", Duration: 3.6},
			{URI: "seg000014.ts", Duration: 4.2},
		},
	}
	got, err := ParseMediaPlaylist(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.TargetDuration != 4 || got.MediaSequence != 12 || len(got.Segments) != 3 {
		t.Fatalf("got %+v", got)
	}
	if got.Segments[2].Duration != 4.2 || got.Segments[2].Sequence != 14 {
		t.Errorf("segment 2 = %+v", got.Segments[2])
	}
	if got.Ended {
		t.Error("live playlist must not be ended")
	}
}

func TestPlaylistEnded(t *testing.T) {
	p := MediaPlaylist{TargetDuration: 4, Ended: true,
		Segments: []Segment{{URI: "seg000000.ts", Duration: 3.0}}}
	got, err := ParseMediaPlaylist(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Ended {
		t.Error("ENDLIST lost")
	}
}

func TestPlaylistBadHeader(t *testing.T) {
	if _, err := ParseMediaPlaylist([]byte("nope\n")); err == nil {
		t.Error("want error for missing #EXTM3U")
	}
}

func TestPlaylistURIWithoutEXTINF(t *testing.T) {
	if _, err := ParseMediaPlaylist([]byte("#EXTM3U\nseg.ts\n")); err == nil {
		t.Error("want error for URI without EXTINF")
	}
}

func TestSegmentName(t *testing.T) {
	if SegmentName(42) != "seg000042.ts" {
		t.Errorf("name = %s", SegmentName(42))
	}
	seq, err := ParseSegmentName("seg000042.ts")
	if err != nil || seq != 42 {
		t.Errorf("seq = %d err = %v", seq, err)
	}
	if _, err := ParseSegmentName("bogus"); err == nil {
		t.Error("want error for bogus name")
	}
}

// feedSegmenter runs a synthetic encoder into the segmenter for the given
// stream duration and returns the segmenter.
func feedSegmenter(t *testing.T, streamDur time.Duration, target time.Duration) *Segmenter {
	t.Helper()
	seg := NewSegmenter(target, 4)
	cfg := media.DefaultEncoderConfig()
	cfg.DropProb = 0
	enc := media.NewEncoder(cfg, time.Unix(1000, 0))
	interval := enc.FrameInterval()
	now := time.Unix(2000, 0)
	for pts := time.Duration(0); pts < streamDur; pts += interval {
		f := enc.NextFrame()
		seg.WriteVideo(now.Add(f.PTS), f.PTS, f.DTS, f.Keyframe, avc.MarshalAnnexB(f.NALs))
	}
	seg.Finish(now.Add(streamDur))
	return seg
}

func TestSegmenterCutsNearTarget(t *testing.T) {
	seg := feedSegmenter(t, 30*time.Second, DefaultSegmentTarget)
	if seg.SegmentCount() < 5 {
		t.Fatalf("only %d segments from 30s", seg.SegmentCount())
	}
	pl := seg.Playlist()
	if !pl.Ended {
		t.Error("finished stream must have ENDLIST")
	}
	// All but the last segment should be within [3, 6] seconds as in §5.2.
	for i, s := range pl.Segments {
		if i == len(pl.Segments)-1 {
			continue
		}
		if s.Duration < 2.9 || s.Duration > 6.1 {
			t.Errorf("segment %d duration %.2f outside [3,6]", i, s.Duration)
		}
	}
}

func TestSegmenterWindowSlides(t *testing.T) {
	seg := feedSegmenter(t, 60*time.Second, DefaultSegmentTarget)
	pl := seg.Playlist()
	if len(pl.Segments) > 4 {
		t.Errorf("window holds %d segments, max 4", len(pl.Segments))
	}
	if pl.MediaSequence == 0 {
		t.Error("media sequence should have advanced")
	}
}

func TestSegmentsDemux(t *testing.T) {
	seg := feedSegmenter(t, 12*time.Second, DefaultSegmentTarget)
	found := false
	for i := 0; i < seg.SegmentCount(); i++ {
		s, ok := seg.Segment(i)
		if !ok {
			continue
		}
		found = true
		units, err := mpegts.DemuxAll(s.Data)
		if err != nil {
			t.Fatalf("segment %d: %v", i, err)
		}
		// First video unit of each segment must be a keyframe (random access).
		for _, u := range units {
			if u.PID == mpegts.PIDVideo {
				if !u.Keyframe {
					t.Errorf("segment %d does not start with a keyframe", i)
				}
				break
			}
		}
	}
	if !found {
		t.Fatal("no fetchable segments")
	}
}

func TestOriginAndClientLive(t *testing.T) {
	seg := NewSegmenter(500*time.Millisecond, 4)
	srv := httptest.NewServer(&Origin{Seg: seg})
	defer srv.Close()

	cfg := media.DefaultEncoderConfig()
	cfg.DropProb = 0
	cfg.IDRPeriod = 12
	enc := media.NewEncoder(cfg, time.Now())

	// Producer: feed in real time (compressed: 1 frame per ms).
	stop := make(chan struct{})
	var prodWG sync.WaitGroup
	prodWG.Add(1)
	go func() {
		defer prodWG.Done()
		for {
			select {
			case <-stop:
				seg.Finish(time.Now())
				return
			default:
			}
			f := enc.NextFrame()
			seg.WriteVideo(time.Now(), f.PTS, f.DTS, f.Keyframe, avc.MarshalAnnexB(f.NALs))
			time.Sleep(time.Millisecond)
		}
	}()

	var mu sync.Mutex
	var fetched []FetchedSegment
	client := NewClient(ClientConfig{
		BaseURL:      srv.URL,
		PollInterval: 50 * time.Millisecond,
		Parallelism:  2,
		OnSegment: func(fs FetchedSegment) {
			mu.Lock()
			fetched = append(fetched, fs)
			mu.Unlock()
		},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Second)
	defer cancel()
	go func() {
		// Let the client run for a while against the live stream, then end it.
		time.Sleep(3 * time.Second)
		close(stop)
	}()
	n, err := client.Run(ctx)
	prodWG.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no segments delivered")
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(fetched); i++ {
		if fetched[i].Sequence != fetched[i-1].Sequence+1 {
			t.Errorf("segments out of order: %d after %d", fetched[i].Sequence, fetched[i-1].Sequence)
		}
	}
	for _, fs := range fetched {
		if _, err := mpegts.DemuxAll(fs.Data); err != nil {
			t.Errorf("segment %d corrupt: %v", fs.Sequence, err)
		}
	}
	if client.Bytes == 0 || client.PlaylistFetches == 0 {
		t.Error("traffic accounting empty")
	}
}

// TestOriginServesEndlistAfterFinish covers the finished-broadcast
// regression: once the segmenter is closed, the origin's playlist must
// carry #EXT-X-ENDLIST (with a final-cacheable header) so a polling viewer
// terminates instead of spinning forever.
func TestOriginServesEndlistAfterFinish(t *testing.T) {
	seg := feedSegmenter(t, 8*time.Second, DefaultSegmentTarget)
	if !seg.Ended() {
		t.Fatal("Finish did not mark the segmenter ended")
	}
	srv := httptest.NewServer(&Origin{Seg: seg})
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/playlist.m3u8")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	pl, err := ParseMediaPlaylist(body)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Ended {
		t.Fatal("finished broadcast's playlist lacks ENDLIST")
	}
	if cc := resp.Header.Get("Cache-Control"); !strings.Contains(cc, "immutable") {
		t.Errorf("final playlist Cache-Control = %q, want immutable", cc)
	}

	// A client polling the completed broadcast returns promptly.
	client := NewClient(ClientConfig{BaseURL: srv.URL, PollInterval: 10 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if _, err := client.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.Err() != nil || time.Since(start) > 4*time.Second {
		t.Error("client did not terminate on the ended playlist")
	}
}

func TestMaxSegmentDuration(t *testing.T) {
	p := MediaPlaylist{Segments: []Segment{{Duration: 3.6}, {Duration: 5.9}, {Duration: 3.0}}}
	if d := p.MaxSegmentDuration(); math.Abs(d-5.9) > 1e-9 {
		t.Errorf("max = %v", d)
	}
}

func TestPlaylistMarshalStable(t *testing.T) {
	p := MediaPlaylist{TargetDuration: 4, Segments: []Segment{{URI: "seg000000.ts", Duration: 3.6}}}
	a := p.Marshal()
	b := p.Marshal()
	if !bytes.Equal(a, b) {
		t.Error("marshal not deterministic")
	}
}
